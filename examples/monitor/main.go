// Monitor: the paper's §2.1 closing scenario — "more complex interactions
// composed of multiple parallel applications, as well as units visualizing
// or otherwise monitoring their progress".
//
// An SPMD solver object runs a long iterative computation. Instead of
// serving requests between jobs only, its computing threads interrupt the
// computation every few iterations to process outstanding requests
// (core.Object.Poll — "PARDIS also allows the server to interrupt its
// computation in order to process outstanding requests"). A separate
// monitoring client polls the solver's progress and residual while it runs.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/rts"
)

// solverState is the per-thread state of the long-running computation.
type solverState struct {
	mu        sync.Mutex
	iteration int
	residual  float64
}

func main() {
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ns.Close()

	const threads = 3
	const totalIters = 400
	state := &solverState{residual: 1}

	progressDesc := core.OpDesc{Name: "progress"}
	sampleDesc := core.OpDesc{Name: "sample", Args: []core.ArgDesc{{Name: "field", Dir: core.Out, Elem: "double"}}}
	shutdownDesc := core.OpDesc{Name: "shutdown"}

	world := rts.NewWorld(threads)
	defer world.Close()
	done := make(chan error, 1)
	ready := make(chan struct{})
	var once sync.Once
	go func() {
		done <- world.Run(func(c *rts.Comm) error {
			obj, err := core.Export(c, core.ExportOptions{
				TypeID:     "IDL:monitor/solver:1.0",
				Multiport:  true,
				Name:       "solver",
				NameServer: ns.Addr(),
			}, []core.Operation{
				{
					Desc:    progressDesc,
					NewArgs: func(*rts.Comm, []int) ([]dseq.Transferable, error) { return nil, nil },
					Handler: func(call *core.ServerCall) error {
						state.mu.Lock()
						call.Out.WriteLong(int32(state.iteration))
						call.Out.WriteDouble(state.residual)
						state.mu.Unlock()
						return nil
					},
				},
				{
					Desc:    sampleDesc,
					NewArgs: core.SeqArgsFloat64(sampleDesc.Args),
					Handler: func(call *core.ServerCall) error {
						// Return a snapshot of the (synthetic) field.
						field := core.ArgSeq[float64](call, 0)
						if err := field.ResizeAlloc(64); err != nil {
							return err
						}
						state.mu.Lock()
						it := state.iteration
						state.mu.Unlock()
						field.FillFunc(func(g int) float64 {
							return math.Sin(float64(g)/8 + float64(it)/50)
						})
						return nil
					},
				},
				{
					Desc:    shutdownDesc,
					NewArgs: func(*rts.Comm, []int) ([]dseq.Transferable, error) { return nil, nil },
					Handler: func(call *core.ServerCall) error { return core.ErrStopServing },
				},
			})
			if err != nil {
				once.Do(func() { close(ready) })
				return err
			}
			if c.Rank() == 0 {
				once.Do(func() { close(ready) })
			}
			defer obj.Close()

			// The long computation, interrupted for request processing.
			for iter := 0; iter < totalIters; iter++ {
				// A slice of "solver work".
				time.Sleep(500 * time.Microsecond)
				if c.Rank() == 0 {
					state.mu.Lock()
					state.iteration = iter + 1
					state.residual = math.Exp(-float64(iter) / 60)
					state.mu.Unlock()
				}
				// Every few iterations, collectively poll for requests.
				if iter%5 == 4 {
					cont, err := obj.Poll(false)
					if err != nil {
						return err
					}
					if !cont {
						return nil
					}
				}
			}
			// Computation finished; keep serving until the monitor is done.
			return obj.Serve()
		})
	}()
	<-ready

	// The monitoring unit: a plain (non-collective) client watching the
	// solver's progress while it runs.
	mon, err := core.Bind("solver", ns.Addr(), core.BindOptions{Timeout: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	for {
		reply, err := mon.Invoke("progress", core.ScalarEncoder().Bytes(), nil)
		if err != nil {
			log.Fatal(err)
		}
		dec, _ := core.ScalarDecoder(reply)
		iter, _ := dec.ReadLong()
		residual, _ := dec.ReadDouble()
		fmt.Printf("monitor: iteration %3d/%d residual %.4f\n", iter, totalIters, residual)
		if int(iter) >= totalIters {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Pull a field snapshot (an Out distributed argument).
	field, err := dseq.New(mon.Comm(), dseq.Float64, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mon.Invoke("sample", core.ScalarEncoder().Bytes(), []core.DistArg{core.OutSeq(field)}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor: sampled %d field values, field[0]=%.3f\n", field.Len(), field.LocalData()[0])

	// Ask the solver to stop serving (its handler returns ErrStopServing,
	// which shuts the Serve loop down collectively on every thread).
	if _, err := mon.Invoke("shutdown", core.ScalarEncoder().Bytes(), nil); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("monitor example complete")
}
