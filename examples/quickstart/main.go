// Quickstart: the smallest complete PARDIS program.
//
// One process hosts the naming service, a conventional (single-threaded)
// object, and a client. The object offers two operations:
//
//	interface greeter {
//	    string greet(in string who);
//	    double mean(in dsequence<double> values);
//	};
//
// The client binds by name and invokes both — the second with a distributed
// sequence, showing that the non-distributed mapping (plain _bind, paper
// §2.1) works without any SPMD setup.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/rts"
)

func main() {
	// 1. Start the naming service.
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ns.Close()

	// 2. Export the object. A conventional object is an SPMD object with
	// one computing thread.
	greetDesc := core.OpDesc{Name: "greet"}
	meanDesc := core.OpDesc{Name: "mean", Args: []core.ArgDesc{{Name: "values", Dir: core.In, Elem: "double"}}}
	serverWorld := rts.NewWorld(1)
	defer serverWorld.Close()
	serverDone := make(chan error, 1)
	objCh := make(chan *core.Object, 1)
	go func() {
		serverDone <- serverWorld.Run(func(c *rts.Comm) error {
			obj, err := core.Export(c, core.ExportOptions{
				TypeID:     "IDL:quickstart/greeter:1.0",
				Name:       "greeter",
				NameServer: ns.Addr(),
			}, []core.Operation{
				{
					Desc:    greetDesc,
					NewArgs: func(*rts.Comm, []int) ([]dseq.Transferable, error) { return nil, nil },
					Handler: func(call *core.ServerCall) error {
						who, err := call.In.ReadString()
						if err != nil {
							return orb.Marshal(err)
						}
						call.Out.WriteString("hello, " + who + "!")
						return nil
					},
				},
				{
					Desc:    meanDesc,
					NewArgs: core.SeqArgsFloat64(meanDesc.Args),
					Handler: func(call *core.ServerCall) error {
						values := core.ArgSeq[float64](call, 0)
						sum := 0.0
						for _, v := range values.LocalData() {
							sum += v
						}
						if values.Len() > 0 {
							sum /= float64(values.Len())
						}
						call.Out.WriteDouble(sum)
						return nil
					},
				},
			})
			if err != nil {
				return err
			}
			objCh <- obj
			return obj.Serve()
		})
	}()
	obj := <-objCh

	// 3. Bind and invoke from a client.
	client, err := core.Bind("greeter", ns.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	enc := core.ScalarEncoder()
	enc.WriteString("PARDIS")
	reply, err := client.Invoke("greet", enc.Bytes(), nil)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := core.ScalarDecoder(reply)
	if err != nil {
		log.Fatal(err)
	}
	greeting, err := dec.ReadString()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(greeting)

	// A distributed argument through the non-distributed mapping: the
	// client's single thread owns the whole sequence.
	values, err := dseq.New(client.Comm(), dseq.Float64, 101, nil)
	if err != nil {
		log.Fatal(err)
	}
	values.FillFunc(func(g int) float64 { return float64(g) })
	reply, err = client.Invoke("mean", core.ScalarEncoder().Bytes(), []core.DistArg{core.InSeq(values)})
	if err != nil {
		log.Fatal(err)
	}
	dec, _ = core.ScalarDecoder(reply)
	mean, err := dec.ReadDouble()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean of 0..100 = %v\n", mean)

	// 4. Shut down.
	obj.Close()
	if err := <-serverDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart complete")
}
