// The paper's running example (§2.1): application A computes a diffusion
// simulation on a distributed array; application B is a parallel client
// that "wants to compute diffusion on data and to use the result".
//
// Everything below the user code — proxies, marshalling, collective
// delivery, distributed argument transfer — comes from the stubs pardisc
// generated from diff.idl (see diffgen/diff_generated.go):
//
//	typedef dsequence<double> diff_array;
//	interface diff_object {
//	    void diffusion(in long timestep, inout diff_array darray) raises (bad_timestep);
//	    double energy(in diff_array darray);
//	};
//
// The server runs as an SPMD object on 4 computing threads; the client as
// an SPMD application on 3. The client makes a blocking invocation with the
// multi-port transfer method, then a non-blocking one (the paper's
// diffusion_nb future), overlapping it with local work.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"repro/examples/diffusion/diffgen"
	"repro/internal/core"
	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/rts"
)

// diffServer implements diffgen.DiffObjectImpl: a 1-D explicit diffusion
// (heat equation) stencil on the distributed array. Each computing thread
// updates its local block and exchanges halo cells with its neighbours over
// the run-time system — exactly the kind of SPMD computation the paper has
// in mind.
type diffServer struct{}

func (diffServer) Diffusion(call *core.ServerCall, timestep int32, darray *dseq.Seq[float64]) error {
	if timestep < 0 {
		return &diffgen.BadTimestep{Timestep: timestep}
	}
	comm := call.Comm
	local := darray.LocalData()
	const alpha = 0.25
	for step := int32(0); step < timestep; step++ {
		leftGhost, rightGhost := exchangeHalos(comm, local)
		next := make([]float64, len(local))
		for i := range local {
			l := leftGhost
			if i > 0 {
				l = local[i-1]
			}
			r := rightGhost
			if i < len(local)-1 {
				r = local[i+1]
			}
			next[i] = local[i] + alpha*(l-2*local[i]+r)
		}
		copy(local, next)
	}
	return nil
}

// exchangeHalos trades boundary cells with the neighbouring threads.
func exchangeHalos(comm *rts.Comm, local []float64) (left, right float64) {
	const tag = 100
	me, n := comm.Rank(), comm.Size()
	if len(local) > 0 {
		if me > 0 {
			comm.Send(me-1, tag, rts.Float64sToBytes(local[:1]))
		}
		if me < n-1 {
			comm.Send(me+1, tag, rts.Float64sToBytes(local[len(local)-1:]))
		}
	}
	if me < n-1 {
		b, _, err := comm.Recv(me+1, tag)
		if err == nil {
			if v, err := rts.BytesToFloat64s(b); err == nil && len(v) == 1 {
				right = v[0]
			}
		}
	}
	if me > 0 {
		b, _, err := comm.Recv(me-1, tag)
		if err == nil {
			if v, err := rts.BytesToFloat64s(b); err == nil && len(v) == 1 {
				left = v[0]
			}
		}
	}
	if len(local) > 0 {
		if me == 0 {
			left = local[0] // insulated boundary
		}
		if me == n-1 {
			right = local[len(local)-1]
		}
	}
	return left, right
}

func (diffServer) Energy(call *core.ServerCall, darray *dseq.Seq[float64]) (float64, error) {
	sum := 0.0
	for _, v := range darray.LocalData() {
		sum += v
	}
	total, err := call.Comm.Allreduce(rts.Float64sToBytes([]float64{sum}), rts.SumFloat64)
	if err != nil {
		return 0, err
	}
	vals, err := rts.BytesToFloat64s(total)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

func main() {
	// The PARDIS naming domain.
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ns.Close()

	// Application A: the diffusion service, an SPMD object on 4 threads.
	const serverThreads = 4
	serverWorld := rts.NewWorld(serverThreads)
	defer serverWorld.Close()
	var objMu sync.Mutex
	objects := make([]*core.Object, serverThreads)
	serverDone := make(chan error, 1)
	ready := make(chan struct{})
	var once sync.Once
	go func() {
		serverDone <- serverWorld.Run(func(c *rts.Comm) error {
			obj, err := diffgen.ExportDiffObject(c, diffServer{}, core.ExportOptions{
				Multiport:  true,
				Name:       "example",
				NameServer: ns.Addr(),
			})
			if err != nil {
				once.Do(func() { close(ready) })
				return err
			}
			objMu.Lock()
			objects[c.Rank()] = obj
			objMu.Unlock()
			if c.Rank() == 0 {
				once.Do(func() { close(ready) })
			}
			return obj.Serve()
		})
	}()
	<-ready

	// Application B: the SPMD client on 3 threads.
	const clientThreads = 3
	const n = 1 << 12
	clientWorld := rts.NewWorld(clientThreads)
	defer clientWorld.Close()
	err = clientWorld.Run(func(c *rts.Comm) error {
		// diff_object* diff = diff_object::_spmd_bind("example", HOST1);
		diff, err := diffgen.SPMDBindDiffObject(c, "example", ns.Addr(),
			core.BindOptions{Method: core.Multiport})
		if err != nil {
			return err
		}
		defer diff.Binding.Close()

		// Build the distributed argument: a heat spike in the middle.
		arr, err := diffgen.NewDiffArray(c, n)
		if err != nil {
			return err
		}
		arr.FillFunc(func(g int) float64 {
			if g == n/2 {
				return 1000
			}
			return 0
		})
		before, err := diff.Energy(arr)
		if err != nil {
			return err
		}

		// diff->diffusion(64, my_diff_array);
		if err := diff.Diffusion(64, arr); err != nil {
			return err
		}
		after, err := diff.Energy(arr)
		if err != nil {
			return err
		}
		mid, err := arr.At(n / 2)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("blocking diffusion(64): energy %.1f → %.1f, peak %.3f\n", before, after, mid)
		}

		// Non-blocking invocation with a future (diffusion_nb): the client
		// overlaps remote diffusion with its own local work (§2.1).
		fut := diff.DiffusionNB(32, arr)
		localWork := 0.0
		for i := 0; i < 100_000; i++ {
			localWork += float64(i%7) * 1e-6
		}
		if _, err := fut.Wait(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("future resolved after overlapping %.2f units of local work\n", localWork)
		}

		// The typed exception travels end to end.
		err = diff.Diffusion(-1, arr)
		var bad *diffgen.BadTimestep
		if errors.As(err, &bad) {
			if c.Rank() == 0 {
				fmt.Printf("typed exception: %v\n", bad)
			}
		} else {
			return fmt.Errorf("expected bad_timestep, got %v", err)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	objMu.Lock()
	for _, o := range objects {
		if o != nil {
			o.Close()
		}
	}
	objMu.Unlock()
	if err := <-serverDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("diffusion example complete")
}
