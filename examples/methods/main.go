// Methods: the paper's §3 experiment in miniature, on the real stack.
//
// A c-thread SPMD client transfers a distributed sequence to an s-thread
// SPMD object over loopback TCP using both argument transfer methods, and
// prints the measured invocation breakdown side by side. It then prints the
// simulated Figure 4 bandwidth curve for the calibrated 1997 platform, so
// the two modes (measured-today vs simulated-then) can be compared.
//
// Usage:
//
//	go run ./examples/methods [-c 4] [-s 4] [-elems 262144] [-reps 5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	c := flag.Int("c", 4, "client computing threads")
	s := flag.Int("s", 4, "server computing threads")
	elems := flag.Int("elems", 1<<18, "sequence length (doubles)")
	reps := flag.Int("reps", 5, "repetitions to average")
	flag.Parse()

	fmt.Printf("real stack over loopback: c=%d s=%d, %d doubles (%.1f MiB), %d reps\n",
		*c, *s, *elems, float64(*elems)*8/(1<<20), *reps)
	central, multi, err := exp.RunRealComparison(*c, *s, *elems, *reps)
	if err != nil {
		log.Fatal(err)
	}
	print := func(name string, b exp.Breakdown) {
		fmt.Printf("  %-12s total %8.3fms  gather %7.3fms  scatter %7.3fms  pack %7.3fms  sendrecv %8.3fms  unpack %7.3fms  barrier %7.3fms\n",
			name, b.Total*1e3, b.Gather*1e3, b.Scatter*1e3, b.Pack*1e3, b.Send*1e3, b.RecvUnpack*1e3, b.Barrier*1e3)
	}
	print("centralized", central)
	print("multi-port", multi)
	if multi.Total < central.Total {
		fmt.Printf("  multi-port wins by %.2fx\n", central.Total/multi.Total)
	} else {
		fmt.Printf("  centralized wins by %.2fx (small transfers favour the single connection)\n", multi.Total/central.Total)
	}

	fmt.Printf("\nsimulated 1997 platform (paper Figure 4 configuration):\n")
	pts, err := exp.Figure4(exp.PaperPlatform())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatFigure4(pts, exp.Figure4Client, exp.Figure4Server))
}
