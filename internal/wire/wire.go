// Package wire defines PGIOP, the PARDIS General Inter-ORB Protocol: the
// message set exchanged between PARDIS clients, servers and the naming
// service.
//
// PGIOP plays the role GIOP/IIOP plays for CORBA. It keeps GIOP's message
// vocabulary (Request, Reply, CancelRequest, LocateRequest, LocateReply,
// CloseConnection, MessageError, Fragment) and adds one PARDIS-specific
// message, Data, which carries a fragment of a distributed argument directly
// between a client computing thread and a server computing thread in the
// multi-port transfer method (paper §3.3). In the centralized method (§3.2)
// arguments travel entirely inside the Request/Reply bodies, exactly as in
// CORBA.
//
// Every message is a 12-byte header followed by a CDR-encoded body:
//
//	offset 0  magic   "PDIS"
//	offset 4  version 0x01
//	offset 5  flags   bit 0: body byte order (1 = little endian)
//	                  bit 1: more fragments follow
//	                  bit 2: trace-context extension present
//	                  bit 3: frame belongs to a streamed chunk transfer
//	offset 6  type    MsgType
//	offset 7  reserved (0)
//	offset 8  size    uint32 body length, in the header's byte order
//
// When flag bit 2 is set, an 8-byte trace-context extension (the request id
// of the message this frame belongs to, in the header's byte order) follows
// the fixed header before the body. Old-format headers — without the flag —
// decode unchanged; the extension is purely additive. Flag bit 3 is likewise
// purely informational: it marks frames carrying a chunk of a streamed
// centralized transfer so per-frame tooling can separate pipelined bulk data
// from control traffic without decoding bodies.
//
// Bodies larger than a connection's fragment threshold are split across a
// leading message and trailing Fragment messages (transport concern; see
// internal/transport).
//
// # Reply ordering and request multiplexing
//
// PGIOP connections are multiplexed: a peer may have any number of requests
// outstanding on one connection, and replies carry the request id they answer.
// A server MAY answer requests in any order — receivers MUST dispatch each
// Reply (and each Data frame) by its request id rather than by arrival order.
// The only ordering PGIOP does guarantee is per-message-stream FIFO: the Data
// chunks of one streamed argument arrive in the order they were sent on that
// connection, and all reply-direction Data chunks of a request precede its
// Reply on the wire.
//
// # Chunked transfers
//
// A streamed centralized transfer moves a distributed argument as a sequence
// of Data messages (the chunk framing) instead of embedding it in the
// Request/Reply body. Each chunk's DstOff/Count address a range of the
// argument's global index space, Flags carries DataFlagChunk (plus
// DataFlagLast on the final chunk of an argument), and the chunk schedule is
// derived deterministically on both sides from the argument length and the
// chunk size announced in the invocation header — so neither side needs
// per-chunk control traffic. Flow control is structural: a sender may never
// have more chunk frames outstanding for one request than the receiver's
// per-request buffer bound (see internal/core), and chunk sizes are chosen so
// a whole argument fits inside that bound.
package wire

import (
	"errors"
	"fmt"

	"repro/internal/cdr"
)

// Protocol constants.
var Magic = [4]byte{'P', 'D', 'I', 'S'}

const (
	Version = 1
	// HeaderLen is the fixed message header size.
	HeaderLen = 12
	// FlagLittleEndian marks the body (and header size field) byte order.
	FlagLittleEndian = 1 << 0
	// FlagMoreFragments marks that the body continues in Fragment messages.
	FlagMoreFragments = 1 << 1
	// FlagTraceContext marks that a TraceExtLen-byte trace-context
	// extension follows the fixed header: the request id of the message the
	// frame belongs to, in the header's byte order. Every frame of a traced
	// message carries it — Fragment frames included — so per-frame tooling
	// can attribute bytes to invocations without decoding bodies. Headers
	// without the flag (the old format) decode exactly as before.
	FlagTraceContext = 1 << 2
	// FlagStreamChunk marks a frame that carries (part of) a Data message of
	// a streamed chunk transfer. Purely informational — the receiver's
	// demultiplexing is driven by the Data body, not this bit — but it lets
	// wire-level tooling meter pipelined bulk bytes without decoding bodies.
	// Headers without the flag (the old format) decode exactly as before.
	FlagStreamChunk = 1 << 3
	// TraceExtLen is the length of the trace-context header extension.
	TraceExtLen = 8
	// MaxHeaderLen is the largest on-wire header: the fixed part plus every
	// extension.
	MaxHeaderLen = HeaderLen + TraceExtLen
)

// MsgType discriminates PGIOP messages.
type MsgType byte

const (
	MsgRequest MsgType = iota
	MsgReply
	MsgCancelRequest
	MsgLocateRequest
	MsgLocateReply
	MsgCloseConnection
	MsgMessageError
	MsgFragment
	// MsgData is the PARDIS extension: one contiguous piece of a
	// distributed argument, addressed to a specific computing thread.
	MsgData
	// MsgPing and MsgPong are liveness keepalives: either peer may send a
	// Ping on an idle connection and expects a Pong echoing the nonce. A
	// connection whose peer stays silent past the keepalive grace period is
	// declared dead, which is how a SIGKILL'd process (no FIN, no RST until
	// much later) is detected promptly on both request and Data connections.
	MsgPing
	MsgPong
	numMsgTypes
)

var msgTypeNames = [...]string{
	"Request", "Reply", "CancelRequest", "LocateRequest", "LocateReply",
	"CloseConnection", "MessageError", "Fragment", "Data", "Ping", "Pong",
}

func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// Valid reports whether t is a known message type.
func (t MsgType) Valid() bool { return t < numMsgTypes }

// Errors reported by this package.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadFlags   = errors.New("wire: reserved flag bits set")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrBadBody    = errors.New("wire: malformed message body")
)

// ReplyStatus mirrors GIOP's reply status values.
type ReplyStatus uint32

const (
	ReplyNoException ReplyStatus = iota
	ReplyUserException
	ReplySystemException
	ReplyLocationForward
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// LocateStatus mirrors GIOP's locate reply status values.
type LocateStatus uint32

const (
	LocateUnknown LocateStatus = iota
	LocateHere
	LocateForward
)

// Message is the interface all PGIOP message bodies implement.
type Message interface {
	// Type returns the header discriminant for this body.
	Type() MsgType
	// EncodeBody writes the body in CDR.
	EncodeBody(e *cdr.Encoder)
}

// Header is a decoded message header. Trace is populated by the transport
// from the trace-context extension when HasTrace; DecodeHeader itself only
// sees the fixed HeaderLen bytes and leaves it zero.
type Header struct {
	Flags byte
	Type  MsgType
	Size  uint32
	Trace uint64
}

// Order returns the byte order declared by the header flags.
func (h Header) Order() cdr.ByteOrder {
	if h.Flags&FlagLittleEndian != 0 {
		return cdr.LittleEndian
	}
	return cdr.BigEndian
}

// More reports whether Fragment messages follow.
func (h Header) More() bool { return h.Flags&FlagMoreFragments != 0 }

// HasTrace reports whether a trace-context extension follows the fixed
// header on the wire.
func (h Header) HasTrace() bool { return h.Flags&FlagTraceContext != 0 }

// StreamChunk reports whether the frame is marked as part of a streamed
// chunk transfer.
func (h Header) StreamChunk() bool { return h.Flags&FlagStreamChunk != 0 }

// ExtLen returns how many extension bytes follow the fixed header.
func (h Header) ExtLen() int {
	if h.HasTrace() {
		return TraceExtLen
	}
	return 0
}

// EncodeHeader renders a header for a body of the given size in order ord.
func EncodeHeader(t MsgType, ord cdr.ByteOrder, more bool, size int) [HeaderLen]byte {
	var b [HeaderLen]byte
	copy(b[:4], Magic[:])
	b[4] = Version
	if ord == cdr.LittleEndian {
		b[5] |= FlagLittleEndian
	}
	if more {
		b[5] |= FlagMoreFragments
	}
	b[6] = byte(t)
	if ord == cdr.LittleEndian {
		b[8] = byte(size)
		b[9] = byte(size >> 8)
		b[10] = byte(size >> 16)
		b[11] = byte(size >> 24)
	} else {
		b[8] = byte(size >> 24)
		b[9] = byte(size >> 16)
		b[10] = byte(size >> 8)
		b[11] = byte(size)
	}
	return b
}

// EncodeHeaderExt renders a header into b and, when withTrace is set, the
// trace-context extension carrying trace after it. It returns the number of
// bytes of b used (HeaderLen, or MaxHeaderLen with the extension). The
// destination is a caller-owned array so per-frame encoding can reuse one
// scratch buffer without heap traffic.
func EncodeHeaderExt(b *[MaxHeaderLen]byte, t MsgType, ord cdr.ByteOrder, more, withTrace bool, size int, trace uint64) int {
	h := EncodeHeader(t, ord, more, size)
	copy(b[:HeaderLen], h[:])
	if !withTrace {
		return HeaderLen
	}
	b[5] |= FlagTraceContext
	PutTraceExt(b[HeaderLen:MaxHeaderLen], ord, trace)
	return MaxHeaderLen
}

// PutTraceExt writes the trace-context extension (TraceExtLen bytes) into b
// in byte order ord.
func PutTraceExt(b []byte, ord cdr.ByteOrder, trace uint64) {
	_ = b[TraceExtLen-1]
	if ord == cdr.LittleEndian {
		for i := 0; i < TraceExtLen; i++ {
			b[i] = byte(trace >> (8 * i))
		}
	} else {
		for i := 0; i < TraceExtLen; i++ {
			b[TraceExtLen-1-i] = byte(trace >> (8 * i))
		}
	}
}

// TraceExt reads a trace-context extension written by PutTraceExt.
func TraceExt(b []byte, ord cdr.ByteOrder) uint64 {
	_ = b[TraceExtLen-1]
	var v uint64
	if ord == cdr.LittleEndian {
		for i := 0; i < TraceExtLen; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
	} else {
		for i := 0; i < TraceExtLen; i++ {
			v = v<<8 | uint64(b[i])
		}
	}
	return v
}

// RequestIDOf returns the request id carried in m's body, for the message
// types that have one. The transport stamps it into the trace-context
// extension of every frame of a traced message.
func RequestIDOf(m Message) (uint32, bool) {
	switch m := m.(type) {
	case *Request:
		return m.RequestID, true
	case *Reply:
		return m.RequestID, true
	case *CancelRequest:
		return m.RequestID, true
	case *LocateRequest:
		return m.RequestID, true
	case *LocateReply:
		return m.RequestID, true
	case *Data:
		return m.RequestID, true
	}
	return 0, false
}

// DecodeHeader parses and validates a header.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("%w: header %d bytes", cdr.ErrTruncated, len(b))
	}
	if [4]byte(b[:4]) != Magic {
		return Header{}, fmt.Errorf("%w: % x", ErrBadMagic, b[:4])
	}
	if b[4] != Version {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, b[4])
	}
	h := Header{Flags: b[5], Type: MsgType(b[6])}
	if h.Flags&^(FlagLittleEndian|FlagMoreFragments|FlagTraceContext|FlagStreamChunk) != 0 {
		// Reserved flag bits must be zero; garbage here means a corrupt or
		// alien frame, and rejecting it now beats misreading the body later.
		return Header{}, fmt.Errorf("%w: reserved flag bits %#x", ErrBadFlags, b[5])
	}
	if !h.Type.Valid() {
		return Header{}, fmt.Errorf("%w: %d", ErrBadType, b[6])
	}
	if h.Flags&FlagLittleEndian != 0 {
		h.Size = uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24
	} else {
		h.Size = uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	}
	return h, nil
}
