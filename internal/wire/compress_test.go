package wire

import (
	"testing"

	"repro/internal/cdr"
)

// The compression handshake trailer must round-trip in both byte orders
// and stay invisible to nonce-only decoders (and vice versa).

func TestPingPongCompressionTrailerRoundTrip(t *testing.T) {
	for _, ord := range []cdr.ByteOrder{cdr.LittleEndian, cdr.BigEndian} {
		ping := &Ping{Nonce: 0xfeedbeef, Offer: true, Codecs: 0x03, Level: 2}
		e := cdr.NewEncoder(ord)
		ping.EncodeBody(e)
		m, err := DecodeBody(MsgPing, e.Bytes(), ord)
		if err != nil {
			t.Fatalf("ord %v: %v", ord, err)
		}
		got := m.(*Ping)
		if *got != *ping {
			t.Fatalf("ord %v: ping %+v != %+v", ord, got, ping)
		}

		pong := &Pong{Nonce: 0xabad1dea, Accept: true, Codecs: 0x02, Level: 0}
		e = cdr.NewEncoder(ord)
		pong.EncodeBody(e)
		m, err = DecodeBody(MsgPong, e.Bytes(), ord)
		if err != nil {
			t.Fatalf("ord %v: %v", ord, err)
		}
		if gp := m.(*Pong); *gp != *pong {
			t.Fatalf("ord %v: pong %+v != %+v", ord, gp, pong)
		}
	}
}

func TestPingOldFormatDecodesWithoutOffer(t *testing.T) {
	// A pre-compression peer encodes only the nonce. That body must
	// decode as a plain keepalive, and a plain Ping we encode must be
	// nonce-only so old peers can read it.
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteULong(42)
	m, err := DecodeBody(MsgPing, e.Bytes(), cdr.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.(*Ping); p.Nonce != 42 || p.Offer || p.Codecs != 0 || p.Level != 0 {
		t.Fatalf("old-format ping decoded as %+v", p)
	}

	plain := &Ping{Nonce: 7}
	e = cdr.NewEncoder(cdr.LittleEndian)
	plain.EncodeBody(e)
	if len(e.Bytes()) != 4 {
		t.Fatalf("plain ping body is %d bytes, want 4 (nonce only)", len(e.Bytes()))
	}
	plainPong := &Pong{Nonce: 7}
	e = cdr.NewEncoder(cdr.LittleEndian)
	plainPong.EncodeBody(e)
	if len(e.Bytes()) != 4 {
		t.Fatalf("plain pong body is %d bytes, want 4 (nonce only)", len(e.Bytes()))
	}
}

func TestPingUnknownTrailerVersionIgnored(t *testing.T) {
	// A future extension version must not be misread as an offer (and
	// must not be an error: worst case is no compression).
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.WriteULong(9)
	e.WriteOctet(99) // unknown extension version
	e.WriteOctet(0xff)
	e.WriteOctet(0xff)
	m, err := DecodeBody(MsgPing, e.Bytes(), cdr.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.(*Ping); p.Offer {
		t.Fatalf("unknown trailer version decoded as an offer: %+v", p)
	}
	// Short trailers are likewise ignored.
	e = cdr.NewEncoder(cdr.LittleEndian)
	e.WriteULong(9)
	e.WriteOctet(CompExtVersion)
	m, err = DecodeBody(MsgPing, e.Bytes(), cdr.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.(*Ping); p.Offer {
		t.Fatalf("short trailer decoded as an offer: %+v", p)
	}
}

func TestDataCompressedFlagRoundTrip(t *testing.T) {
	d := &Data{
		RequestID: 77, ArgIndex: 1, DstOff: 4096, Count: 512,
		Reply: true, Flags: DataFlagChunk | DataFlagLast | DataFlagCompressed,
		Payload: []byte{0x02, 0x02, 0x04, 0x00},
	}
	for _, ord := range []cdr.ByteOrder{cdr.LittleEndian, cdr.BigEndian} {
		e := cdr.NewEncoder(ord)
		d.EncodeBody(e)
		m, err := DecodeBody(MsgData, e.Bytes(), ord)
		if err != nil {
			t.Fatalf("ord %v: %v", ord, err)
		}
		got := m.(*Data)
		if got.Flags != d.Flags || !got.Chunked() || !got.LastChunk() {
			t.Fatalf("ord %v: flags %#x != %#x", ord, got.Flags, d.Flags)
		}
	}
}

func TestDataReservedBitsAboveCompressedStillRejected(t *testing.T) {
	d := &Data{RequestID: 1, Count: 1, Flags: 1 << 3, Payload: []byte{0}}
	e := cdr.NewEncoder(cdr.LittleEndian)
	d.EncodeBody(e)
	if _, err := DecodeBody(MsgData, e.Bytes(), cdr.LittleEndian); err == nil {
		t.Fatal("Data body with reserved flag bit 3 decoded without error")
	}
}
