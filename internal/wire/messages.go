package wire

import (
	"fmt"

	"repro/internal/cdr"
)

// Request asks an object to perform an operation. Body layout mirrors the
// GIOP RequestHeader followed by the marshalled in/inout arguments.
type Request struct {
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	Principal        string // identity of the requester (informational)
	Args             []byte // CDR-encoded argument payload (opaque here)
}

func (*Request) Type() MsgType { return MsgRequest }

func (r *Request) EncodeBody(e *cdr.Encoder) {
	e.WriteULong(r.RequestID)
	e.WriteBool(r.ResponseExpected)
	e.WriteOctets(r.ObjectKey)
	e.WriteString(r.Operation)
	e.WriteString(r.Principal)
	e.WriteOctets(r.Args)
}

func decodeRequest(d *cdr.Decoder) (*Request, error) {
	var r Request
	var err error
	if r.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if r.ResponseExpected, err = d.ReadBool(); err != nil {
		return nil, err
	}
	if r.ObjectKey, err = d.ReadOctets(); err != nil {
		return nil, err
	}
	if r.Operation, err = d.ReadStringInterned(); err != nil {
		return nil, err
	}
	if r.Principal, err = d.ReadStringInterned(); err != nil {
		return nil, err
	}
	if r.Args, err = d.ReadOctets(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Reply answers a Request. For ReplyUserException and ReplySystemException
// the Args payload carries the marshalled exception; for
// ReplyLocationForward it carries a stringified object reference.
type Reply struct {
	RequestID uint32
	Status    ReplyStatus
	Args      []byte
}

func (*Reply) Type() MsgType { return MsgReply }

func (r *Reply) EncodeBody(e *cdr.Encoder) {
	e.WriteULong(r.RequestID)
	e.WriteEnum(uint32(r.Status))
	e.WriteOctets(r.Args)
}

func decodeReply(d *cdr.Decoder) (*Reply, error) {
	var r Reply
	var err error
	if r.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	s, err := d.ReadEnum()
	if err != nil {
		return nil, err
	}
	if s > uint32(ReplyLocationForward) {
		return nil, fmt.Errorf("%w: reply status %d", ErrBadBody, s)
	}
	r.Status = ReplyStatus(s)
	if r.Args, err = d.ReadOctets(); err != nil {
		return nil, err
	}
	return &r, nil
}

// CancelRequest withdraws interest in an outstanding request.
type CancelRequest struct {
	RequestID uint32
}

func (*CancelRequest) Type() MsgType { return MsgCancelRequest }

func (c *CancelRequest) EncodeBody(e *cdr.Encoder) { e.WriteULong(c.RequestID) }

func decodeCancelRequest(d *cdr.Decoder) (*CancelRequest, error) {
	id, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	return &CancelRequest{RequestID: id}, nil
}

// LocateRequest asks whether the peer serves the given object key.
type LocateRequest struct {
	RequestID uint32
	ObjectKey []byte
}

func (*LocateRequest) Type() MsgType { return MsgLocateRequest }

func (l *LocateRequest) EncodeBody(e *cdr.Encoder) {
	e.WriteULong(l.RequestID)
	e.WriteOctets(l.ObjectKey)
}

func decodeLocateRequest(d *cdr.Decoder) (*LocateRequest, error) {
	var l LocateRequest
	var err error
	if l.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if l.ObjectKey, err = d.ReadOctets(); err != nil {
		return nil, err
	}
	return &l, nil
}

// LocateReply answers a LocateRequest; for LocateForward, IOR carries the
// stringified reference of the object's current location.
type LocateReply struct {
	RequestID uint32
	Status    LocateStatus
	IOR       string
}

func (*LocateReply) Type() MsgType { return MsgLocateReply }

func (l *LocateReply) EncodeBody(e *cdr.Encoder) {
	e.WriteULong(l.RequestID)
	e.WriteEnum(uint32(l.Status))
	e.WriteString(l.IOR)
}

func decodeLocateReply(d *cdr.Decoder) (*LocateReply, error) {
	var l LocateReply
	var err error
	if l.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	s, err := d.ReadEnum()
	if err != nil {
		return nil, err
	}
	if s > uint32(LocateForward) {
		return nil, fmt.Errorf("%w: locate status %d", ErrBadBody, s)
	}
	l.Status = LocateStatus(s)
	if l.IOR, err = d.ReadString(); err != nil {
		return nil, err
	}
	return &l, nil
}

// CloseConnection announces an orderly shutdown of the connection.
type CloseConnection struct{}

func (*CloseConnection) Type() MsgType           { return MsgCloseConnection }
func (*CloseConnection) EncodeBody(*cdr.Encoder) {}

// MessageError reports that the peer sent an unintelligible message.
type MessageError struct{}

func (*MessageError) Type() MsgType           { return MsgMessageError }
func (*MessageError) EncodeBody(*cdr.Encoder) {}

// Fragment continues the body of the preceding message on this connection.
// Reassembly is performed by the transport; higher layers never see it.
type Fragment struct {
	Payload []byte
}

func (*Fragment) Type() MsgType { return MsgFragment }

func (f *Fragment) EncodeBody(e *cdr.Encoder) { e.WriteRaw(f.Payload) }

// Data flag bits (the Flags octet of a Data body).
const (
	// DataFlagChunk marks a chunk of a streamed centralized transfer: DstOff
	// and Count address the argument's global index space, and the chunks of
	// one argument follow the deterministic schedule both sides derive from
	// the invocation header (length and chunk size).
	DataFlagChunk = 1 << 0
	// DataFlagLast marks the final chunk of its argument's stream.
	DataFlagLast = 1 << 1
	// DataFlagCompressed marks a payload that carries a compressed chunk
	// envelope (marker octet, zcodec ID, encoded block) instead of a raw
	// CDR block. Senders set it only after the compression handshake has
	// negotiated a codec on the connection: pre-compression decoders
	// reject the bit as reserved, so it can never leak to an old peer.
	DataFlagCompressed = 1 << 2
)

// Data is the PARDIS multi-port extension message: one contiguous piece of
// one distributed argument of one outstanding request, flowing directly
// between computing threads. DstOff and Count are in elements; the payload
// is a packed CDR array of the argument's element type in the sender's byte
// order (declared by the message header).
//
// The Flags octet occupies what older encoders emitted as the first padding
// byte after Reply: old-format bodies therefore decode with Flags zero, and
// old decoders skip a new-format Flags octet as padding — the field is
// backward- and forward-compatible by construction.
type Data struct {
	RequestID uint32
	ArgIndex  uint32 // which distributed argument of the operation
	SrcRank   uint32 // sending computing thread
	DstRank   uint32 // receiving computing thread
	DstOff    uint64 // destination local offset, in elements
	Count     uint64 // number of elements
	Reply     bool   // false: client→server ("in" flow); true: server→client
	Flags     byte   // DataFlag* bits; zero for plain multi-port moves
	Payload   []byte

	// release returns the transport buffer backing Payload to its pool.
	// Set by the transport when the payload borrows a pooled frame buffer;
	// nil for messages whose payload the receiver owns outright.
	release func()
}

// Chunked reports whether the message is a chunk of a streamed transfer.
func (m *Data) Chunked() bool { return m.Flags&DataFlagChunk != 0 }

// LastChunk reports whether the message is the final chunk of its argument.
func (m *Data) LastChunk() bool { return m.Flags&DataFlagLast != 0 }

func (*Data) Type() MsgType { return MsgData }

// DataPrefixLen is the encoded size of a Data body up to and including the
// octet-sequence count that precedes the payload: four uint32 fields (16
// bytes), two 8-aligned uint64s at offsets 16 and 24, the Reply bool at 32,
// the Flags octet at 33 (zero-padding in the old format), padding to 36, and
// the uint32 payload length. Payload bytes start at this offset in every
// Data body.
const DataPrefixLen = 40

// EncodeBodyPrefix encodes everything up to and including the payload length
// count, but not the payload bytes. The transport's vectored write path uses
// it to frame a Data message without copying the payload: it writes the
// prefix from a scratch buffer and hands the payload slice to writev as-is.
// EncodeBody is prefix-then-payload, so the two can never drift apart.
func (m *Data) EncodeBodyPrefix(e *cdr.Encoder) {
	e.WriteULong(m.RequestID)
	e.WriteULong(m.ArgIndex)
	e.WriteULong(m.SrcRank)
	e.WriteULong(m.DstRank)
	e.WriteULongLong(m.DstOff)
	e.WriteULongLong(m.Count)
	e.WriteBool(m.Reply)
	e.WriteOctet(m.Flags)
	e.WriteULong(uint32(len(m.Payload)))
}

func (m *Data) EncodeBody(e *cdr.Encoder) {
	m.EncodeBodyPrefix(e)
	e.WriteRaw(m.Payload)
}

// SetRelease installs the hook that returns the buffer backing Payload to
// its owner. The transport calls this when it hands off a Data message whose
// payload aliases a pooled frame buffer.
func (m *Data) SetRelease(fn func()) { m.release = fn }

// Release returns the message's backing buffer to the transport pool. The
// final consumer of a received Data message must call it exactly once, after
// copying the payload out (e.g. via Seq.UnmarshalRange); Payload must not be
// read afterwards. Release on a message without a pooled buffer, or a second
// Release, is a no-op.
func (m *Data) Release() {
	if m.release != nil {
		fn := m.release
		m.release = nil
		m.Payload = nil
		fn()
	}
}

// DataBodySize inspects the first chunk of a fragmented Data body and
// returns the total body size it declares (prefix + payload length), so
// reassembly can preallocate instead of regrowing. Returns 0 when the chunk
// is too short to contain the payload count — callers must treat the result
// as a capacity hint only and fall back to append-growth.
func DataBodySize(chunk []byte, ord cdr.ByteOrder) int {
	if len(chunk) < DataPrefixLen {
		return 0
	}
	b := chunk[DataPrefixLen-4 : DataPrefixLen]
	var n uint32
	if ord == cdr.LittleEndian {
		n = uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	} else {
		n = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return DataPrefixLen + int(n)
}

func decodeData(d *cdr.Decoder) (*Data, error) {
	var m Data
	var err error
	if m.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if m.ArgIndex, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if m.SrcRank, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if m.DstRank, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if m.DstOff, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	if m.Count, err = d.ReadULongLong(); err != nil {
		return nil, err
	}
	if m.Reply, err = d.ReadBool(); err != nil {
		return nil, err
	}
	if m.Flags, err = d.ReadOctet(); err != nil {
		return nil, err
	}
	if m.Flags&^(DataFlagChunk|DataFlagLast|DataFlagCompressed) != 0 {
		return nil, fmt.Errorf("%w: reserved Data flag bits %#x", ErrBadBody, m.Flags)
	}
	if m.Payload, err = d.ReadOctets(); err != nil {
		return nil, err
	}
	return &m, nil
}

// CompExtVersion is the version octet that introduces the compression
// handshake extension trailing a Ping or Pong body. Old decoders read only
// the nonce and ignore trailing bytes, so the extension is invisible to
// them; an extension with an unknown version octet is likewise ignored by
// this decoder, keeping the trailer forward-compatible.
const CompExtVersion = 1

// Ping probes a peer's liveness on an idle connection. The nonce is echoed
// back in the matching Pong; it carries no semantics beyond letting a debugger
// pair probes with responses on a wire dump.
//
// A Ping may additionally carry a compression offer: a three-octet trailer
// (extension version, supported-codec bitmask, compression level) appended
// after the nonce. Old peers decode such a Ping as a plain keepalive and
// answer with a plain Pong — the absence of an acceptance trailer IS the
// negotiation failure signal, so fallback to raw frames needs no extra
// round trip or message type.
type Ping struct {
	Nonce uint32

	// Compression offer (the handshake trailer). Offer gates whether the
	// trailer is encoded at all; Codecs is a zcodec support bitmask and
	// Level a codec-specific effort hint (currently advisory).
	Offer  bool
	Codecs uint8
	Level  uint8
}

func (*Ping) Type() MsgType { return MsgPing }

func (p *Ping) EncodeBody(e *cdr.Encoder) {
	e.WriteULong(p.Nonce)
	if p.Offer {
		e.WriteOctet(CompExtVersion)
		e.WriteOctet(p.Codecs)
		e.WriteOctet(p.Level)
	}
}

func decodePing(d *cdr.Decoder) (*Ping, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	p := &Ping{Nonce: n}
	p.Offer, p.Codecs, p.Level = decodeCompExt(d)
	return p, nil
}

// Pong answers a Ping, echoing its nonce. When the Ping carried a
// compression offer and the responder negotiates, the Pong carries the
// same trailer with the accepted codec set (the intersection of both
// sides' masks); a plain Pong means the responder predates or declined
// compression and the connection stays on raw frames.
type Pong struct {
	Nonce uint32

	// Compression acceptance (the handshake trailer); see Ping.
	Accept bool
	Codecs uint8
	Level  uint8
}

func (*Pong) Type() MsgType { return MsgPong }

func (p *Pong) EncodeBody(e *cdr.Encoder) {
	e.WriteULong(p.Nonce)
	if p.Accept {
		e.WriteOctet(CompExtVersion)
		e.WriteOctet(p.Codecs)
		e.WriteOctet(p.Level)
	}
}

func decodePong(d *cdr.Decoder) (*Pong, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	p := &Pong{Nonce: n}
	p.Accept, p.Codecs, p.Level = decodeCompExt(d)
	return p, nil
}

// decodeCompExt reads the optional compression trailer of a Ping/Pong
// body. Missing, short, or unknown-version trailers all decode as "no
// offer" — never an error, so a malformed trailer can at worst disable
// compression, not kill the connection.
func decodeCompExt(d *cdr.Decoder) (ok bool, codecs, level uint8) {
	if d.Remaining() < 3 {
		return false, 0, 0
	}
	v, err := d.ReadOctet()
	if err != nil || v != CompExtVersion {
		return false, 0, 0
	}
	c, err := d.ReadOctet()
	if err != nil {
		return false, 0, 0
	}
	l, err := d.ReadOctet()
	if err != nil {
		return false, 0, 0
	}
	return true, c, l
}

// Encode renders a complete single-frame message (header + body) in the
// given byte order. The transport uses lower-level primitives when it needs
// to fragment; Encode is the convenience path and the wire-format oracle for
// tests and the wiredump tool.
func Encode(m Message, ord cdr.ByteOrder) []byte {
	e := cdr.NewEncoder(ord)
	EncodeInto(e, m)
	return e.Bytes()
}

// EncodeInto appends a complete single-frame message (header + body) to e,
// which must be in the message's byte order. Header and body share e's
// buffer: EncodeInto reserves HeaderLen zero bytes, marks them as the body's
// alignment origin (HeaderLen is not 8-aligned, so the body must align
// relative to its own start), encodes the body, then patches the header in
// place once the size is known.
func EncodeInto(e *cdr.Encoder, m Message) {
	start := e.Len()
	e.WriteRaw(emptyHeader[:])
	e.MarkOrigin()
	m.EncodeBody(e)
	h := EncodeHeader(m.Type(), e.Order(), false, e.Len()-start-HeaderLen)
	copy(e.Bytes()[start:], h[:])
}

var emptyHeader [HeaderLen]byte

// DecodeBody parses a message body of the given type.
func DecodeBody(t MsgType, body []byte, ord cdr.ByteOrder) (Message, error) {
	d := cdr.NewDecoder(body, ord)
	var (
		m   Message
		err error
	)
	switch t {
	case MsgRequest:
		m, err = decodeRequest(d)
	case MsgReply:
		m, err = decodeReply(d)
	case MsgCancelRequest:
		m, err = decodeCancelRequest(d)
	case MsgLocateRequest:
		m, err = decodeLocateRequest(d)
	case MsgLocateReply:
		m, err = decodeLocateReply(d)
	case MsgCloseConnection:
		m = &CloseConnection{}
	case MsgMessageError:
		m = &MessageError{}
	case MsgFragment:
		m = &Fragment{Payload: body}
	case MsgData:
		m, err = decodeData(d)
	case MsgPing:
		m, err = decodePing(d)
	case MsgPong:
		m, err = decodePong(d)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, t)
	}
	if err != nil {
		return nil, fmt.Errorf("decoding %v: %w", t, err)
	}
	return m, nil
}
