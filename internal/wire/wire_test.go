package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

var bothOrders = []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian}

func roundTrip(t *testing.T, m Message, ord cdr.ByteOrder) Message {
	t.Helper()
	frame := Encode(m, ord)
	h, err := DecodeHeader(frame[:HeaderLen])
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if h.Type != m.Type() {
		t.Fatalf("type %v, want %v", h.Type, m.Type())
	}
	if h.Order() != ord {
		t.Fatalf("order %v, want %v", h.Order(), ord)
	}
	if int(h.Size) != len(frame)-HeaderLen {
		t.Fatalf("size %d, body %d", h.Size, len(frame)-HeaderLen)
	}
	if h.More() {
		t.Fatal("single frame marked fragmented")
	}
	got, err := DecodeBody(h.Type, frame[HeaderLen:], h.Order())
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	for _, ord := range bothOrders {
		in := &Request{
			RequestID:        42,
			ResponseExpected: true,
			ObjectKey:        []byte{1, 2, 3, 0xFF},
			Operation:        "diffusion",
			Principal:        "client@example",
			Args:             []byte{9, 9, 9},
		}
		got := roundTrip(t, in, ord).(*Request)
		if !reflect.DeepEqual(in, got) {
			t.Fatalf("%v: %+v != %+v", ord, got, in)
		}
	}
}

func TestRequestEmptyFields(t *testing.T) {
	in := &Request{Operation: "op"}
	got := roundTrip(t, in, cdr.NativeOrder).(*Request)
	if got.Operation != "op" || got.ResponseExpected || len(got.Args) != 0 || len(got.ObjectKey) != 0 {
		t.Fatalf("%+v", got)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	for _, st := range []ReplyStatus{ReplyNoException, ReplyUserException, ReplySystemException, ReplyLocationForward} {
		in := &Reply{RequestID: 7, Status: st, Args: []byte("payload")}
		got := roundTrip(t, in, cdr.BigEndian).(*Reply)
		if !reflect.DeepEqual(in, got) {
			t.Fatalf("%v: %+v", st, got)
		}
	}
}

func TestReplyBadStatus(t *testing.T) {
	e := cdr.NewEncoder(cdr.NativeOrder)
	(&Reply{RequestID: 1, Status: ReplyStatus(9)}).EncodeBody(e)
	_, err := DecodeBody(MsgReply, e.Bytes(), cdr.NativeOrder)
	if !errors.Is(err, ErrBadBody) {
		t.Fatalf("want ErrBadBody, got %v", err)
	}
}

func TestCancelAndLocateRoundTrip(t *testing.T) {
	c := roundTrip(t, &CancelRequest{RequestID: 99}, cdr.LittleEndian).(*CancelRequest)
	if c.RequestID != 99 {
		t.Fatalf("cancel %+v", c)
	}
	lr := roundTrip(t, &LocateRequest{RequestID: 5, ObjectKey: []byte("key")}, cdr.BigEndian).(*LocateRequest)
	if lr.RequestID != 5 || string(lr.ObjectKey) != "key" {
		t.Fatalf("locate request %+v", lr)
	}
	for _, st := range []LocateStatus{LocateUnknown, LocateHere, LocateForward} {
		lp := roundTrip(t, &LocateReply{RequestID: 6, Status: st, IOR: "IOR:abc"}, cdr.LittleEndian).(*LocateReply)
		if lp.Status != st || lp.IOR != "IOR:abc" {
			t.Fatalf("locate reply %+v", lp)
		}
	}
}

func TestControlMessages(t *testing.T) {
	if _, ok := roundTrip(t, &CloseConnection{}, cdr.NativeOrder).(*CloseConnection); !ok {
		t.Fatal("close connection")
	}
	if _, ok := roundTrip(t, &MessageError{}, cdr.NativeOrder).(*MessageError); !ok {
		t.Fatal("message error")
	}
}

func TestDataRoundTrip(t *testing.T) {
	for _, ord := range bothOrders {
		in := &Data{
			RequestID: 1000,
			ArgIndex:  2,
			SrcRank:   3,
			DstRank:   7,
			DstOff:    1 << 40,
			Count:     12345,
			Reply:     true,
			Payload:   bytes.Repeat([]byte{0xCD}, 100),
		}
		got := roundTrip(t, in, ord).(*Data)
		if !reflect.DeepEqual(in, got) {
			t.Fatalf("%v: %+v", ord, got)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	good := Encode(&CancelRequest{RequestID: 1}, cdr.NativeOrder)

	short := good[:HeaderLen-1]
	if _, err := DecodeHeader(short); err == nil {
		t.Fatal("short header accepted")
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	if _, err := DecodeHeader(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}

	badVersion := append([]byte(nil), good...)
	badVersion[4] = 9
	if _, err := DecodeHeader(badVersion); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	badType := append([]byte(nil), good...)
	badType[6] = 200
	if _, err := DecodeHeader(badType); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: %v", err)
	}
}

func TestHeaderSizeBothOrders(t *testing.T) {
	for _, ord := range bothOrders {
		h := EncodeHeader(MsgReply, ord, true, 0x01020304)
		got, err := DecodeHeader(h[:])
		if err != nil {
			t.Fatal(err)
		}
		if got.Size != 0x01020304 {
			t.Fatalf("%v: size %#x", ord, got.Size)
		}
		if !got.More() {
			t.Fatalf("%v: more flag lost", ord)
		}
	}
}

func TestTruncatedBodies(t *testing.T) {
	msgs := []Message{
		&Request{RequestID: 1, Operation: "op", ObjectKey: []byte("k"), Args: []byte("a")},
		&Reply{RequestID: 1, Args: []byte("a")},
		&LocateRequest{RequestID: 1, ObjectKey: []byte("k")},
		&LocateReply{RequestID: 1, IOR: "x"},
		&Data{RequestID: 1, Payload: []byte("abc")},
	}
	for _, m := range msgs {
		e := cdr.NewEncoder(cdr.NativeOrder)
		m.EncodeBody(e)
		full := e.Bytes()
		for cut := 0; cut < len(full); cut++ {
			if _, err := DecodeBody(m.Type(), full[:cut], cdr.NativeOrder); err == nil {
				t.Fatalf("%v truncated at %d accepted", m.Type(), cut)
			}
		}
	}
}

func TestDecodeBodyNeverPanics(t *testing.T) {
	prop := func(tByte byte, body []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		DecodeBody(MsgType(tByte%byte(numMsgTypes)), body, cdr.LittleEndian)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgRequest.String() != "Request" || MsgData.String() != "Data" {
		t.Fatal("message type names")
	}
	if MsgType(99).String() == "" {
		t.Fatal("unknown type name empty")
	}
	if MsgType(99).Valid() {
		t.Fatal("unknown type valid")
	}
	if ReplyUserException.String() != "USER_EXCEPTION" {
		t.Fatal("reply status name")
	}
	if ReplyStatus(12).String() == "" {
		t.Fatal("unknown reply status empty")
	}
}

func TestFuzzDecodeRandomFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		frame := make([]byte, rng.Intn(64))
		rng.Read(frame)
		if h, err := DecodeHeader(frame); err == nil {
			body := frame[HeaderLen:]
			DecodeBody(h.Type, body, h.Order()) // must not panic
		}
	}
}
