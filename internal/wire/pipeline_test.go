package wire

import (
	"errors"
	"testing"

	"repro/internal/cdr"
)

// encodeOldFormatData renders a Data body the way pre-pipelining encoders
// did: the byte after Reply is alignment padding (zero), not a Flags octet.
func encodeOldFormatData(d *Data, ord cdr.ByteOrder) []byte {
	e := cdr.NewEncoder(ord)
	e.WriteULong(d.RequestID)
	e.WriteULong(d.ArgIndex)
	e.WriteULong(d.SrcRank)
	e.WriteULong(d.DstRank)
	e.WriteULongLong(d.DstOff)
	e.WriteULongLong(d.Count)
	e.WriteBool(d.Reply)
	e.WriteOctets(d.Payload) // WriteULong count pads 33..35 with zeros
	return e.Bytes()
}

// TestDataOldFormatDecodes pins backward compatibility: a body produced by an
// old encoder (no Flags octet, zero padding) decodes with Flags == 0 and all
// other fields intact, and is byte-identical to a new-format body with zero
// Flags — so old decoders likewise accept new-format zero-flag bodies.
func TestDataOldFormatDecodes(t *testing.T) {
	for _, ord := range bothOrders {
		d := &Data{
			RequestID: 42, ArgIndex: 1, SrcRank: 2, DstRank: 3,
			DstOff: 4096, Count: 512, Reply: true, Payload: []byte{9, 8, 7, 6},
		}
		old := encodeOldFormatData(d, ord)
		e := cdr.NewEncoder(ord)
		d.EncodeBody(e)
		if string(old) != string(e.Bytes()) {
			t.Fatalf("%v: zero-flag new-format body differs from old-format body", ord)
		}
		m, err := DecodeBody(MsgData, old, ord)
		if err != nil {
			t.Fatalf("%v: old-format body rejected: %v", ord, err)
		}
		got := m.(*Data)
		if got.Flags != 0 || got.Chunked() || got.LastChunk() {
			t.Fatalf("%v: old-format body decoded with flags %#x", ord, got.Flags)
		}
		if got.RequestID != d.RequestID || got.DstOff != d.DstOff || got.Count != d.Count ||
			!got.Reply || string(got.Payload) != string(d.Payload) {
			t.Fatalf("%v: old-format body fields corrupted: %+v", ord, got)
		}
	}
}

// TestDataChunkFlagsRoundTrip checks the chunk framing bits survive an
// encode/decode cycle and that the accessors reflect them.
func TestDataChunkFlagsRoundTrip(t *testing.T) {
	for _, ord := range bothOrders {
		for _, flags := range []byte{0, DataFlagChunk, DataFlagChunk | DataFlagLast} {
			d := &Data{RequestID: 7, ArgIndex: 2, DstOff: 65536, Count: 8192,
				Flags: flags, Payload: []byte{1, 2, 3, 4}}
			e := cdr.NewEncoder(ord)
			d.EncodeBody(e)
			m, err := DecodeBody(MsgData, e.Bytes(), ord)
			if err != nil {
				t.Fatalf("%v flags %#x: %v", ord, flags, err)
			}
			got := m.(*Data)
			if got.Flags != flags {
				t.Fatalf("%v: flags %#x decoded as %#x", ord, flags, got.Flags)
			}
			if got.Chunked() != (flags&DataFlagChunk != 0) || got.LastChunk() != (flags&DataFlagLast != 0) {
				t.Fatalf("%v: accessors disagree with flags %#x", ord, flags)
			}
		}
	}
}

// TestDataReservedFlagBitsRejected checks garbage in the flags octet is
// refused instead of silently accepted (only the chunk bits are defined).
func TestDataReservedFlagBitsRejected(t *testing.T) {
	d := &Data{RequestID: 1, Count: 1, Payload: []byte{1}}
	e := cdr.NewEncoder(cdr.NativeOrder)
	d.EncodeBody(e)
	body := append([]byte(nil), e.Bytes()...)
	body[33] = 0x80 // reserved bit in the Flags octet
	if _, err := DecodeBody(MsgData, body, cdr.NativeOrder); !errors.Is(err, ErrBadBody) {
		t.Fatalf("reserved Data flag bits accepted (err=%v)", err)
	}
}

// TestHeaderStreamChunkFlag checks the new header bit decodes, the accessor
// sees it, older-format headers (bit clear) are untouched, and the next
// reserved bit is still rejected.
func TestHeaderStreamChunkFlag(t *testing.T) {
	h := EncodeHeader(MsgData, cdr.LittleEndian, true, 4096)
	h[5] |= FlagStreamChunk
	got, err := DecodeHeader(h[:])
	if err != nil {
		t.Fatalf("stream-chunk header rejected: %v", err)
	}
	if !got.StreamChunk() || !got.More() || got.Type != MsgData || got.Size != 4096 {
		t.Fatalf("stream-chunk header decoded wrong: %+v", got)
	}

	old := EncodeHeader(MsgData, cdr.LittleEndian, false, 64)
	oh, err := DecodeHeader(old[:])
	if err != nil {
		t.Fatalf("old-format header rejected: %v", err)
	}
	if oh.StreamChunk() {
		t.Fatal("old-format header reports stream-chunk")
	}

	bad := EncodeHeader(MsgData, cdr.BigEndian, false, 1)
	bad[5] |= 1 << 4
	if _, err := DecodeHeader(bad[:]); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("reserved header bit 4 accepted (err=%v)", err)
	}
}
