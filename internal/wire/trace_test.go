package wire

import (
	"errors"
	"testing"

	"repro/internal/cdr"
)

func TestEncodeHeaderExtWithoutTraceMatchesOldFormat(t *testing.T) {
	for _, ord := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		for _, more := range []bool{false, true} {
			var b [MaxHeaderLen]byte
			n := EncodeHeaderExt(&b, MsgReply, ord, more, false, 123, 999)
			if n != HeaderLen {
				t.Fatalf("traceless header used %d bytes, want %d", n, HeaderLen)
			}
			old := EncodeHeader(MsgReply, ord, more, 123)
			if [HeaderLen]byte(b[:HeaderLen]) != old {
				t.Fatalf("traceless EncodeHeaderExt diverges from EncodeHeader:\n% x\n% x", b[:HeaderLen], old)
			}
		}
	}
}

func TestTraceExtRoundTrip(t *testing.T) {
	for _, ord := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		for _, trace := range []uint64{0, 1, 0xdeadbeef, 1<<64 - 1} {
			var b [MaxHeaderLen]byte
			n := EncodeHeaderExt(&b, MsgData, ord, true, true, 4096, trace)
			if n != MaxHeaderLen {
				t.Fatalf("traced header used %d bytes, want %d", n, MaxHeaderLen)
			}
			h, err := DecodeHeader(b[:HeaderLen])
			if err != nil {
				t.Fatalf("traced header rejected: %v", err)
			}
			if !h.HasTrace() || h.ExtLen() != TraceExtLen {
				t.Fatalf("trace flag lost: %+v", h)
			}
			if h.Type != MsgData || !h.More() || h.Size != 4096 || h.Order() != ord {
				t.Fatalf("traced header corrupted the fixed fields: %+v", h)
			}
			if got := TraceExt(b[HeaderLen:MaxHeaderLen], ord); got != trace {
				t.Fatalf("trace ext (%v) = %#x, want %#x", ord, got, trace)
			}
		}
	}
}

func TestOldFormatHeaderStillDecodes(t *testing.T) {
	// The exact bytes a pre-extension peer sends: no trace flag, no
	// extension. They must decode exactly as before the extension existed.
	b := EncodeHeader(MsgRequest, cdr.BigEndian, false, 77)
	h, err := DecodeHeader(b[:])
	if err != nil {
		t.Fatalf("old-format header rejected: %v", err)
	}
	if h.HasTrace() || h.ExtLen() != 0 || h.Trace != 0 {
		t.Fatalf("old-format header grew a trace: %+v", h)
	}
	if h.Type != MsgRequest || h.Size != 77 {
		t.Fatalf("old-format header misdecoded: %+v", h)
	}
}

func TestReservedFlagBitsStillRejected(t *testing.T) {
	b := EncodeHeader(MsgRequest, cdr.BigEndian, false, 0)
	b[5] |= 1 << 4 // first still-reserved bit above the stream-chunk flag
	if _, err := DecodeHeader(b[:]); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("reserved bit accepted: %v", err)
	}
}

func TestRequestIDOf(t *testing.T) {
	withID := []Message{
		&Request{RequestID: 11},
		&Reply{RequestID: 12},
		&CancelRequest{RequestID: 13},
		&LocateRequest{RequestID: 14},
		&LocateReply{RequestID: 15},
		&Data{RequestID: 16},
	}
	for i, m := range withID {
		id, ok := RequestIDOf(m)
		if !ok || id != uint32(11+i) {
			t.Fatalf("RequestIDOf(%T) = %d, %v", m, id, ok)
		}
	}
	for _, m := range []Message{&CloseConnection{}, &MessageError{}, &Fragment{}, &Ping{Nonce: 1}, &Pong{Nonce: 1}} {
		if id, ok := RequestIDOf(m); ok || id != 0 {
			t.Fatalf("RequestIDOf(%T) = %d, %v, want 0, false", m, id, ok)
		}
	}
}
