package wire

import (
	"testing"

	"repro/internal/cdr"
)

// FuzzDecodeHeader throws arbitrary bytes at the header parser. Any input
// must produce a Header or an error — never a panic — and an accepted
// header must carry a valid type and round-trip through EncodeHeaderExt
// (which preserves the trace-context flag DecodeHeader may have accepted).
func FuzzDecodeHeader(f *testing.F) {
	good := EncodeHeader(MsgRequest, cdr.LittleEndian, false, 16)
	f.Add(good[:])
	big := EncodeHeader(MsgData, cdr.BigEndian, true, 1<<20)
	f.Add(big[:])
	var traced [MaxHeaderLen]byte
	EncodeHeaderExt(&traced, MsgData, cdr.LittleEndian, true, true, 4096, 0xdeadbeef)
	f.Add(traced[:HeaderLen]) // trace-flagged fixed header alone
	f.Add(traced[:])          // with the extension bytes trailing
	var tbig [MaxHeaderLen]byte
	EncodeHeaderExt(&tbig, MsgFragment, cdr.BigEndian, false, true, 1<<16, 1)
	f.Add(tbig[:])
	f.Add([]byte("PDIS"))                                 // truncated
	f.Add([]byte("GIOP\x01\x00\x00\x00\x00\x00\x00\x00")) // wrong protocol
	f.Add([]byte("PDIS\x01\x08\x08\x00\x00\x00\x00\x40")) // stream-chunk flag on a Data frame
	f.Add([]byte("PDIS\x01\x0f\x08\x00\x00\x00\x00\x40")) // every defined flag at once
	f.Add([]byte("PDIS\x01\x10\x00\x00\x00\x00\x00\x00")) // reserved flag bit 4
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeHeader(b)
		if err != nil {
			return
		}
		if !h.Type.Valid() {
			t.Fatalf("accepted header with invalid type %d", h.Type)
		}
		var re [MaxHeaderLen]byte
		EncodeHeaderExt(&re, h.Type, h.Order(), h.More(), h.HasTrace(), int(h.Size), 0)
		if h.StreamChunk() {
			// The stream-chunk marker is OR'd onto frames by the transport
			// rather than passed through EncodeHeaderExt; mirror that here.
			re[5] |= FlagStreamChunk
		}
		if rh, err := DecodeHeader(re[:HeaderLen]); err != nil || rh != h {
			t.Fatalf("header %+v does not round-trip: %+v, %v", h, rh, err)
		}
	})
}

// FuzzDecodeBody drives every message body decoder with arbitrary bytes.
// The first two input bytes select the message type and byte order so the
// fuzzer can reach all decoders from a single corpus.
func FuzzDecodeBody(f *testing.F) {
	for _, m := range []Message{
		&Request{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("key"), Operation: "op", Args: []byte("abcd")},
		&Reply{RequestID: 2, Status: ReplyNoException, Args: []byte("efgh")},
		&CancelRequest{RequestID: 3},
		&LocateRequest{RequestID: 4, ObjectKey: []byte("key")},
		&LocateReply{RequestID: 5, Status: LocateHere},
		&CloseConnection{},
		&MessageError{},
		&Fragment{Payload: []byte("tail")},
		&Data{RequestID: 6, ArgIndex: 1, SrcRank: 2, DstRank: 3, DstOff: 4, Count: 2, Payload: []byte("xyzw")},
		&Data{RequestID: 9, ArgIndex: 0, DstOff: 8192, Count: 4, Flags: DataFlagChunk, Payload: []byte("chnk")},
		&Data{RequestID: 10, ArgIndex: 2, DstOff: 0, Count: 4, Reply: true, Flags: DataFlagChunk | DataFlagLast, Payload: []byte("last")},
		&Data{RequestID: 11, ArgIndex: 0, DstOff: 0, Count: 8, Flags: DataFlagChunk | DataFlagCompressed, Payload: []byte{0x02, 0x02, 0x08, 0x3f}},
		&Ping{Nonce: 7},
		&Pong{Nonce: 8},
		&Ping{Nonce: 12, Offer: true, Codecs: 0x03, Level: 1},
		&Pong{Nonce: 13, Accept: true, Codecs: 0x02, Level: 0},
	} {
		e := cdr.NewEncoder(cdr.NativeOrder)
		m.EncodeBody(e)
		f.Add([]byte{byte(m.Type()), byte(cdr.NativeOrder)}, e.Bytes())
	}

	f.Fuzz(func(t *testing.T, sel, body []byte) {
		if len(sel) < 2 {
			return
		}
		typ := MsgType(sel[0] % byte(numMsgTypes))
		ord := cdr.ByteOrder(sel[1] & 1)
		m, err := DecodeBody(typ, body, ord)
		if err != nil {
			return
		}
		if m.Type() != typ {
			t.Fatalf("decoded %v from a %v body", m.Type(), typ)
		}
		// An accepted body must survive re-encoding.
		e := cdr.NewEncoder(ord)
		m.EncodeBody(e)
	})
}
