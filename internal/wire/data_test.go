package wire

import (
	"bytes"
	"testing"

	"repro/internal/cdr"
)

// TestDataPrefixOracle pins the EncodeBodyPrefix/EncodeBody split the
// transport's vectored write path depends on: the prefix is exactly
// DataPrefixLen bytes, and prefix ++ payload is byte-identical to the full
// body encoding.
func TestDataPrefixOracle(t *testing.T) {
	for _, ord := range bothOrders {
		for _, payload := range [][]byte{nil, {0xAB}, bytes.Repeat([]byte{0x5C}, 300)} {
			d := &Data{
				RequestID: 7, ArgIndex: 1, SrcRank: 2, DstRank: 3,
				DstOff: 99, Count: 11, Reply: true, Payload: payload,
			}
			pe := cdr.NewEncoder(ord)
			d.EncodeBodyPrefix(pe)
			if pe.Len() != DataPrefixLen {
				t.Fatalf("%v: prefix is %d bytes, want %d", ord, pe.Len(), DataPrefixLen)
			}
			be := cdr.NewEncoder(ord)
			d.EncodeBody(be)
			want := append(append([]byte{}, pe.Bytes()...), payload...)
			if !bytes.Equal(be.Bytes(), want) {
				t.Fatalf("%v: prefix+payload differs from EncodeBody", ord)
			}
		}
	}
}

// TestDataBodySize checks the reassembly size hint parses the payload count
// in both byte orders and degrades to 0 on chunks too short to contain it.
func TestDataBodySize(t *testing.T) {
	for _, ord := range bothOrders {
		d := &Data{RequestID: 1, Count: 40, Payload: bytes.Repeat([]byte{1}, 320)}
		e := cdr.NewEncoder(ord)
		d.EncodeBody(e)
		body := e.Bytes()
		if got := DataBodySize(body, ord); got != len(body) {
			t.Fatalf("%v: hint %d, want %d", ord, got, len(body))
		}
		// A leading chunk of any length >= the prefix yields the same hint.
		if got := DataBodySize(body[:DataPrefixLen], ord); got != len(body) {
			t.Fatalf("%v: prefix-only hint %d, want %d", ord, got, len(body))
		}
		if got := DataBodySize(body[:DataPrefixLen-1], ord); got != 0 {
			t.Fatalf("%v: short chunk hint %d, want 0", ord, got)
		}
	}
}

// TestDataRelease checks the release hook fires exactly once and clears the
// payload, so double releases and use-after-release are inert.
func TestDataRelease(t *testing.T) {
	var fired int
	d := &Data{Payload: []byte{1, 2, 3}}
	d.Release() // no hook installed: no-op
	d.SetRelease(func() { fired++ })
	d.Release()
	if fired != 1 {
		t.Fatalf("release fired %d times, want 1", fired)
	}
	if d.Payload != nil {
		t.Fatal("payload survives Release")
	}
	d.Release()
	if fired != 1 {
		t.Fatalf("second Release fired the hook again (%d)", fired)
	}
}

// TestEncodeSingleBuffer checks Encode produces the same frame as a
// separately-encoded header and body, with the body aligned to its own
// origin rather than the frame start.
func TestEncodeSingleBuffer(t *testing.T) {
	for _, ord := range bothOrders {
		msgs := []Message{
			&Request{RequestID: 5, Operation: "op", Args: []byte{1, 2, 3}},
			&Data{RequestID: 9, Count: 2, DstOff: 1, Payload: []byte{7, 8}},
			&Reply{RequestID: 5, Status: ReplyNoException, Args: []byte{4}},
		}
		for _, m := range msgs {
			frame := Encode(m, ord)
			body := cdr.NewEncoder(ord)
			m.EncodeBody(body)
			h := EncodeHeader(m.Type(), ord, false, body.Len())
			want := append(append([]byte{}, h[:]...), body.Bytes()...)
			if !bytes.Equal(frame, want) {
				t.Fatalf("%v %v: single-buffer frame differs from header+body", ord, m.Type())
			}
		}
	}
}
