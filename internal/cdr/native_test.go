package cdr

import (
	"math"
	"math/rand"
	"testing"
)

// refWriteDoubles is the per-element reference encoding, independent of the
// block fast paths, used to pin down the wire bytes they must produce.
func refWriteDoubles(e *Encoder, v []float64) {
	e.WriteULong(uint32(len(v)))
	e.pad(8)
	for _, f := range v {
		e.buf = e.order.order().AppendUint64(e.buf, math.Float64bits(f))
	}
}

func refWriteLongs(e *Encoder, v []int32) {
	e.WriteULong(uint32(len(v)))
	for _, x := range v {
		e.buf = e.order.order().AppendUint32(e.buf, uint32(x))
	}
}

func randomDoubles(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestNativeFastPathBytes checks that the memcpy fast path and the
// per-element loop produce identical wire bytes in both stream orders (only
// one of which takes the fast path on any given machine).
func TestNativeFastPathBytes(t *testing.T) {
	for _, ord := range []ByteOrder{LittleEndian, BigEndian} {
		for _, n := range []int{0, 1, 7, 64, 1023} {
			doubles := randomDoubles(n, int64(n))
			fast := NewEncoder(ord)
			fast.WriteDoubles(doubles)
			ref := NewEncoder(ord)
			refWriteDoubles(ref, doubles)
			if string(fast.Bytes()) != string(ref.Bytes()) {
				t.Errorf("%v doubles n=%d: fast path bytes differ from reference", ord, n)
			}

			longs := make([]int32, n)
			for i := range longs {
				longs[i] = int32(i*2654435761 + 1)
			}
			fast.Reset()
			fast.WriteLongs(longs)
			ref.Reset()
			refWriteLongs(ref, longs)
			if string(fast.Bytes()) != string(ref.Bytes()) {
				t.Errorf("%v longs n=%d: fast path bytes differ from reference", ord, n)
			}
		}
	}
}

// TestCrossOrderBlockRoundTrip drives both orders through encode and decode,
// so whatever the host order is, both the memcpy path and the fallback loops
// are exercised, including the foreign-order stream through the native
// decoder (receiver-makes-right).
func TestCrossOrderBlockRoundTrip(t *testing.T) {
	doubles := randomDoubles(513, 42)
	for _, encOrd := range []ByteOrder{LittleEndian, BigEndian} {
		e := NewEncoder(encOrd)
		e.WriteDoubles(doubles)

		got, err := NewDecoder(e.Bytes(), encOrd).ReadDoubles()
		if err != nil {
			t.Fatalf("%v: %v", encOrd, err)
		}
		if len(got) != len(doubles) {
			t.Fatalf("%v: got %d doubles, want %d", encOrd, len(got), len(doubles))
		}
		for i := range got {
			if got[i] != doubles[i] {
				t.Fatalf("%v: element %d: got %v, want %v", encOrd, i, got[i], doubles[i])
			}
		}

		dst := make([]float64, len(doubles))
		n, err := NewDecoder(e.Bytes(), encOrd).ReadDoublesInto(dst)
		if err != nil {
			t.Fatalf("%v into: %v", encOrd, err)
		}
		if n != len(doubles) {
			t.Fatalf("%v into: got %d, want %d", encOrd, n, len(doubles))
		}
		for i := range dst {
			if dst[i] != doubles[i] {
				t.Fatalf("%v into: element %d: got %v, want %v", encOrd, i, dst[i], doubles[i])
			}
		}
	}
}

func TestReadLongsInto(t *testing.T) {
	longs := []int32{0, -1, math.MaxInt32, math.MinInt32, 7}
	for _, ord := range []ByteOrder{LittleEndian, BigEndian} {
		e := NewEncoder(ord)
		e.WriteLongs(longs)
		dst := make([]int32, len(longs))
		n, err := NewDecoder(e.Bytes(), ord).ReadLongsInto(dst)
		if err != nil || n != len(longs) {
			t.Fatalf("%v: n=%d err=%v", ord, n, err)
		}
		for i := range dst {
			if dst[i] != longs[i] {
				t.Fatalf("%v: element %d: got %d, want %d", ord, i, dst[i], longs[i])
			}
		}
	}
}

// TestReadDoublesUsing checks the recycled-destination decode: a destination
// with capacity is reused in place, growth allocates exactly once, and the
// steady state (result fed back in) allocates nothing.
func TestReadDoublesUsing(t *testing.T) {
	doubles := randomDoubles(257, 7)
	e := NewEncoder(NativeOrder)
	e.WriteDoubles(doubles)
	buf := e.Bytes()

	// Growth from nil, then reuse: the second decode must land in the same
	// backing array, truncating the view to the stream's count.
	dst, err := NewDecoder(buf, NativeOrder).ReadDoublesUsing(nil)
	if err != nil || len(dst) != len(doubles) {
		t.Fatalf("grow: len=%d err=%v", len(dst), err)
	}
	for i := range dst {
		if dst[i] != doubles[i] {
			t.Fatalf("grow: element %d: got %v, want %v", i, dst[i], doubles[i])
		}
	}
	short := NewEncoder(NativeOrder)
	short.WriteDoubles(doubles[:3])
	reused, err := NewDecoder(short.Bytes(), NativeOrder).ReadDoublesUsing(dst)
	if err != nil || len(reused) != 3 {
		t.Fatalf("reuse: len=%d err=%v", len(reused), err)
	}
	if &reused[0] != &dst[0] {
		t.Fatal("reuse: capacity was available but a new array was allocated")
	}

	// Steady state: decoding into the previous result is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = NewDecoder(buf, NativeOrder).ReadDoublesUsing(dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ReadDoublesUsing allocated %.1f/run", allocs)
	}

	// Truncated streams fail like ReadDoubles does.
	if _, err := NewDecoder(buf[:9], NativeOrder).ReadDoublesUsing(nil); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// TestReadIntoTooSmall checks the decode-into variants refuse a destination
// smaller than the stream's count instead of truncating silently.
func TestReadIntoTooSmall(t *testing.T) {
	e := NewEncoder(NativeOrder)
	e.WriteDoubles([]float64{1, 2, 3})
	if _, err := NewDecoder(e.Bytes(), NativeOrder).ReadDoublesInto(make([]float64, 2)); err == nil {
		t.Fatal("ReadDoublesInto accepted an undersized destination")
	}
	e.Reset()
	e.WriteLongs([]int32{1, 2, 3})
	if _, err := NewDecoder(e.Bytes(), NativeOrder).ReadLongsInto(make([]int32, 2)); err == nil {
		t.Fatal("ReadLongsInto accepted an undersized destination")
	}
}

// TestMarkOrigin checks alignment is computed relative to the mark, the
// mechanism that lets a message header and an aligned CDR body share one
// buffer.
func TestMarkOrigin(t *testing.T) {
	e := NewEncoder(NativeOrder)
	e.WriteRaw(make([]byte, 12)) // unaligned header-sized preamble
	e.MarkOrigin()
	e.WriteULong(0xdeadbeef) // must land immediately: position 12 is origin 0
	if e.Len() != 16 {
		t.Fatalf("ULong after mark at 12: len=%d, want 16 (no padding)", e.Len())
	}
	e.WriteDouble(1.5) // origin offset 4 → 4 bytes of padding to reach 8
	if e.Len() != 12+16 {
		t.Fatalf("Double after mark: len=%d, want 28", e.Len())
	}

	// The body bytes after the preamble must be exactly what a fresh
	// encoder produces.
	ref := NewEncoder(NativeOrder)
	ref.WriteULong(0xdeadbeef)
	ref.WriteDouble(1.5)
	if string(e.Bytes()[12:]) != string(ref.Bytes()) {
		t.Fatal("body encoded after MarkOrigin differs from a fresh stream")
	}

	// Reset clears the mark.
	e.Reset()
	e.WriteOctet(1)
	e.WriteULong(2)
	if e.Len() != 8 {
		t.Fatalf("after Reset: len=%d, want 8 (1 octet + 3 pad + 4)", e.Len())
	}
}

// TestGrowAmortized checks Grow at least doubles capacity, the fix for the
// O(n²) exact-size growth.
func TestGrowAmortized(t *testing.T) {
	e := NewEncoder(NativeOrder)
	e.WriteRaw(make([]byte, 100))
	c := e.Cap()
	e.Grow(c - e.Len() + 1) // one byte past the free space forces a reallocation
	if e.Cap() < 2*c {
		t.Fatalf("growing past cap %d gave cap %d, want >= %d", c, e.Cap(), 2*c)
	}
	// A large request still lands in one step.
	e.Grow(1 << 20)
	if e.Cap() < e.Len()+1<<20 {
		t.Fatalf("Grow(1MiB): cap %d below len+n", e.Cap())
	}
}

// TestDoublesRoundTripAllocs is the allocation-regression guard for the CDR
// hot path: a reused encoder plus decode-into must not allocate at all.
func TestDoublesRoundTripAllocs(t *testing.T) {
	src := randomDoubles(4096, 7)
	dst := make([]float64, len(src))
	e := NewEncoder(NativeOrder)
	e.WriteDoubles(src) // warm the buffer so growth is out of the measured loop
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		e.WriteDoubles(src)
		d := Decoder{buf: e.Bytes(), order: NativeOrder}
		if _, err := d.ReadDoublesInto(dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("doubles round trip allocates %.1f times per run, want 0", allocs)
	}
	if dst[100] != src[100] {
		t.Fatal("round trip corrupted data")
	}
}
