package cdr

import (
	"fmt"
	"math"
	"sync"
)

// Decoder reads CDR-encoded values from a buffer produced by an Encoder of
// any byte order (receiver-makes-right). Alignment is computed relative to
// the start of the buffer.
type Decoder struct {
	buf   []byte
	pos   int
	order ByteOrder
}

// NewDecoder reads from buf, interpreting multi-byte values in the given
// order.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

// Order returns the decoder's byte order.
func (d *Decoder) Order() ByteOrder { return d.order }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the current read offset.
func (d *Decoder) Pos() int { return d.pos }

func (d *Decoder) need(n int) error {
	if d.Remaining() < n {
		return fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, d.pos, d.Remaining())
	}
	return nil
}

func (d *Decoder) skipPad(n int) error {
	p := align(d.pos, n)
	if err := d.need(p); err != nil {
		return err
	}
	d.pos += p
	return nil
}

// ReadOctet reads one raw byte.
func (d *Decoder) ReadOctet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// ReadBool reads a boolean octet, rejecting values other than 0 and 1.
func (d *Decoder) ReadBool() (bool, error) {
	v, err := d.ReadOctet()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: boolean octet 0x%02x", ErrInvalid, v)
	}
}

// ReadChar reads a single-byte character.
func (d *Decoder) ReadChar() (byte, error) { return d.ReadOctet() }

// ReadShort reads a 2-aligned int16.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadUShort reads a 2-aligned uint16.
func (d *Decoder) ReadUShort() (uint16, error) {
	if err := d.skipPad(2); err != nil {
		return 0, err
	}
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := d.order.order().Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

// ReadLong reads a 4-aligned int32.
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadULong reads a 4-aligned uint32.
func (d *Decoder) ReadULong() (uint32, error) {
	if err := d.skipPad(4); err != nil {
		return 0, err
	}
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := d.order.order().Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// ReadLongLong reads an 8-aligned int64.
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadULongLong reads an 8-aligned uint64.
func (d *Decoder) ReadULongLong() (uint64, error) {
	if err := d.skipPad(8); err != nil {
		return 0, err
	}
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := d.order.order().Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

// ReadFloat reads a 4-aligned float32.
func (d *Decoder) ReadFloat() (float32, error) {
	v, err := d.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble reads an 8-aligned float64.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString reads a CDR string (length prefix includes the NUL).
func (d *Decoder) ReadString() (string, error) {
	s, err := d.readStringBytes()
	if err != nil {
		return "", err
	}
	return string(s), nil
}

// readStringBytes reads a CDR string and returns a view of its bytes
// (excluding the NUL), valid only until the decoder's buffer is released.
func (d *Decoder) readStringBytes() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxLen {
		return nil, fmt.Errorf("%w: string length %d", ErrInvalid, n)
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	s := d.buf[d.pos : d.pos+int(n)-1]
	if d.buf[d.pos+int(n)-1] != 0 {
		return nil, fmt.Errorf("%w: string missing NUL terminator", ErrInvalid)
	}
	d.pos += int(n)
	return s, nil
}

// internCap bounds the process-wide interned-string table so a peer cannot
// grow it without limit by inventing fresh identifiers; past the cap, new
// values simply allocate per decode like ReadString.
const internCap = 1024

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string)
)

func internBytes(b []byte) string {
	internMu.RLock()
	s, ok := internTab[string(b)] // map lookup by converted key does not allocate
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) < internCap {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

// ReadStringInterned is ReadString for protocol identifiers — operation
// names, element-type names, principals — that recur on every request. The
// value is served from a shared intern table, so steady-state decoding of a
// repeated identifier performs no allocation.
func (d *Decoder) ReadStringInterned() (string, error) {
	s, err := d.readStringBytes()
	if err != nil {
		return "", err
	}
	return internBytes(s), nil
}

// ReadOctets reads a sequence<octet>, returning a view into the buffer.
func (d *Decoder) ReadOctets() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("%w: octet sequence length %d", ErrInvalid, n)
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+int(n) : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// ReadRaw reads exactly n bytes with no count and no alignment.
func (d *Decoder) ReadRaw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative raw read %d", ErrInvalid, n)
	}
	if err := d.need(n); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return b, nil
}

// ReadDoubles reads a sequence<double> written by WriteDoubles.
func (d *Decoder) ReadDoubles() ([]float64, error) {
	n, err := d.doublesHeader()
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	d.readDoublesBody(out)
	return out, nil
}

// ReadDoublesInto reads a sequence<double> directly into dst, returning the
// element count. It fails without consuming elements when the stream's count
// exceeds len(dst), so callers can hand it exactly the storage the transfer
// plan promised. This is the zero-allocation decode path for distributed
// sequence chunks.
func (d *Decoder) ReadDoublesInto(dst []float64) (int, error) {
	n, err := d.doublesHeader()
	if err != nil {
		return 0, err
	}
	if n > len(dst) {
		return 0, fmt.Errorf("%w: double sequence length %d exceeds destination %d", ErrInvalid, n, len(dst))
	}
	d.readDoublesBody(dst[:n])
	return n, nil
}

// ReadDoublesUsing is ReadDoubles with a caller-recycled destination: the
// decoded sequence lands in dst's backing array when it has the capacity,
// and a fresh slice is allocated only on growth. Callers that feed the
// previous result back in decode repeated sequences without churning the
// heap (ReadDoubles allocates len(result) every call, which at megabyte
// sequence sizes distorts the memory profile of everything around it).
func (d *Decoder) ReadDoublesUsing(dst []float64) ([]float64, error) {
	n, err := d.doublesHeader()
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	d.readDoublesBody(dst)
	return dst, nil
}

// doublesHeader reads the count prefix of a sequence<double>, skips the
// 8-alignment padding, and verifies the packed elements are present.
func (d *Decoder) doublesHeader() (int, error) {
	n, err := d.ReadULong()
	if err != nil {
		return 0, err
	}
	if n > maxLen/8 {
		return 0, fmt.Errorf("%w: double sequence length %d", ErrInvalid, n)
	}
	if err := d.skipPad(8); err != nil {
		return 0, err
	}
	if err := d.need(8 * int(n)); err != nil {
		return 0, err
	}
	return int(n), nil
}

// readDoublesBody copies len(dst) packed elements into dst; availability was
// checked by doublesHeader.
func (d *Decoder) readDoublesBody(dst []float64) {
	if d.order == hostOrder {
		copy(float64Bytes(dst), d.buf[d.pos:])
	} else {
		ord := d.order.order()
		for i := range dst {
			dst[i] = math.Float64frombits(ord.Uint64(d.buf[d.pos+8*i:]))
		}
	}
	d.pos += 8 * len(dst)
}

// ReadLongs reads a sequence<long> written by WriteLongs.
func (d *Decoder) ReadLongs() ([]int32, error) {
	n, err := d.longsHeader()
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	d.readLongsBody(out)
	return out, nil
}

// ReadLongsInto is ReadDoublesInto for sequence<long>.
func (d *Decoder) ReadLongsInto(dst []int32) (int, error) {
	n, err := d.longsHeader()
	if err != nil {
		return 0, err
	}
	if n > len(dst) {
		return 0, fmt.Errorf("%w: long sequence length %d exceeds destination %d", ErrInvalid, n, len(dst))
	}
	d.readLongsBody(dst[:n])
	return n, nil
}

func (d *Decoder) longsHeader() (int, error) {
	n, err := d.ReadULong()
	if err != nil {
		return 0, err
	}
	if n > maxLen/4 {
		return 0, fmt.Errorf("%w: long sequence length %d", ErrInvalid, n)
	}
	if err := d.need(4 * int(n)); err != nil {
		return 0, err
	}
	return int(n), nil
}

func (d *Decoder) readLongsBody(dst []int32) {
	if d.order == hostOrder {
		copy(int32Bytes(dst), d.buf[d.pos:])
	} else {
		ord := d.order.order()
		for i := range dst {
			dst[i] = int32(ord.Uint32(d.buf[d.pos+4*i:]))
		}
	}
	d.pos += 4 * len(dst)
}

// ReadEncapsulation opens a nested encapsulation and returns a decoder over
// its body whose byte order is the one recorded in the encapsulation and
// whose alignment origin is the encapsulation start.
func (d *Decoder) ReadEncapsulation() (*Decoder, error) {
	body, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	if len(body) < 1 {
		return nil, fmt.Errorf("%w: empty encapsulation", ErrInvalid)
	}
	flag := body[0]
	if flag > 1 {
		return nil, fmt.Errorf("%w: encapsulation byte-order flag 0x%02x", ErrInvalid, flag)
	}
	inner := NewDecoder(body, ByteOrder(flag))
	inner.pos = 1 // alignment origin includes the flag octet, as written
	return inner, nil
}

// ReadEnum reads an enum discriminant.
func (d *Decoder) ReadEnum() (uint32, error) { return d.ReadULong() }
