// Package cdr implements a Common Data Representation style binary encoding
// for PARDIS argument marshalling.
//
// The paper relies on CORBA's CDR for its stubs' marshalling code. This
// package reproduces the properties PARDIS depends on:
//
//   - primitive types are aligned to their natural size, measured from the
//     start of the stream (or enclosing encapsulation), so fixed layouts can
//     be computed statically;
//   - both byte orders are supported and declared by the producer
//     (receiver-makes-right), so heterogeneous components can interoperate
//     without double conversion;
//   - strings are length-prefixed and NUL-terminated; sequences carry a
//     uint32 element count;
//   - encapsulations nest a complete CDR stream (with its own byte-order
//     flag and alignment origin) inside an octet sequence, which is how
//     object references and distribution templates travel inside requests.
//
// Encoder and Decoder are deliberately free of reflection: generated stub
// code (see internal/idlgen) and hand-written codecs call the typed
// Write*/Read* methods directly, as the IDL compiler's output would.
package cdr

import (
	"encoding/binary"
	"errors"
)

// ByteOrder identifies the endianness of an encoded stream.
type ByteOrder byte

const (
	BigEndian    ByteOrder = 0
	LittleEndian ByteOrder = 1
)

// byteOrder joins the read and append views of encoding/binary's orders;
// both binary.LittleEndian and binary.BigEndian satisfy it.
type byteOrder interface {
	binary.ByteOrder
	binary.AppendByteOrder
}

func (o ByteOrder) order() byteOrder {
	if o == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// NativeOrder is the byte order new encoders use by default. Using little
// endian matches the common case on current hardware so that the
// receiver-makes-right rule usually avoids byte swapping.
const NativeOrder = LittleEndian

// Errors reported by the decoder.
var (
	ErrTruncated = errors.New("cdr: truncated stream")
	ErrInvalid   = errors.New("cdr: invalid encoding")
)

// maxLen bounds length prefixes so corrupt or hostile streams cannot force
// enormous allocations.
const maxLen = 1 << 30

// align returns the padding needed to bring pos up to a multiple of n.
func align(pos, n int) int {
	return (n - pos%n) % n
}
