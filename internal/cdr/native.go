package cdr

import "unsafe"

// Native-order block fast paths.
//
// CDR's receiver-makes-right rule means that in the common case — both peers
// little-endian, as all current benchmark hardware is — the bytes of a
// sequence<double> on the wire are exactly the bytes of the []float64 in
// memory. The encoders and decoders below exploit that: when the stream's
// byte order matches the machine's, a block transfer is a single memcpy of
// the backing array instead of a per-element load/convert/store loop. When
// the orders differ (a big-endian peer, or a test forcing the cross-order
// path), the existing per-element loops run unchanged, so heterogeneous
// interop is untouched.
//
// The unsafe.Slice views are byte views of numeric slices used only as
// memcpy operands within a single call; they never escape, are never
// retained, and never produce unaligned numeric loads (the numeric side of
// every copy is a real []float64/[]int32).

// hostOrder is the byte order of this machine's memory representation,
// probed once at init.
var hostOrder = func() ByteOrder {
	var x uint16 = 1
	if *(*byte)(unsafe.Pointer(&x)) == 1 {
		return LittleEndian
	}
	return BigEndian
}()

// HostOrder returns the machine's native memory byte order. Streams in this
// order take the block memcpy fast paths; others fall back to per-element
// conversion.
func HostOrder() ByteOrder { return hostOrder }

// float64Bytes views v's backing array as raw bytes.
func float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

// int32Bytes views v's backing array as raw bytes.
func int32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}
