package cdr

import (
	"fmt"
	"math"
)

// Encoder appends CDR-encoded values to a buffer. The zero value is ready to
// use and encodes in NativeOrder. Alignment is computed relative to the
// start of the buffer (or the mark set by MarkOrigin), matching the
// alignment origin of a CDR message or encapsulation body.
type Encoder struct {
	buf    []byte
	order  ByteOrder
	origin int

	// arr seeds buf in NewEncoder so small streams (directives, scalar
	// argument payloads, headers) encode without a separate buffer
	// allocation; append migrates to the heap only past this capacity.
	arr [64]byte
}

// NewEncoder returns an encoder in the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	e := &Encoder{order: order}
	e.buf = e.arr[:0:len(e.arr)]
	return e
}

// Order returns the encoder's byte order.
func (e *Encoder) Order() ByteOrder {
	return e.order
}

// Bytes returns the encoded stream. The slice aliases the encoder's
// internal buffer; it is valid until the next Write call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoded data, retaining the buffer for reuse.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.origin = 0
}

// Cap returns the capacity of the underlying buffer.
func (e *Encoder) Cap() int { return cap(e.buf) }

// MarkOrigin makes the current position the alignment origin for subsequent
// writes. Framing layers use it to encode a fixed-size header and an aligned
// CDR body into one contiguous buffer: append the header bytes raw, mark,
// then encode the body as if it started a fresh stream.
func (e *Encoder) MarkOrigin() { e.origin = len(e.buf) }

// pad writes zero bytes until the position is n-aligned.
func (e *Encoder) pad(n int) {
	for i := align(len(e.buf)-e.origin, n); i > 0; i-- {
		e.buf = append(e.buf, 0)
	}
}

// WriteOctet appends a raw byte.
func (e *Encoder) WriteOctet(v byte) { e.buf = append(e.buf, v) }

// WriteBool appends a boolean as one octet (0 or 1).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteChar appends a single-byte character.
func (e *Encoder) WriteChar(v byte) { e.WriteOctet(v) }

// WriteShort appends an int16 aligned to 2.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteUShort appends a uint16 aligned to 2.
func (e *Encoder) WriteUShort(v uint16) {
	e.pad(2)
	e.buf = e.order.order().AppendUint16(e.buf, v)
}

// WriteLong appends an int32 aligned to 4. (CORBA "long" is 32 bits.)
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteULong appends a uint32 aligned to 4.
func (e *Encoder) WriteULong(v uint32) {
	e.pad(4)
	e.buf = e.order.order().AppendUint32(e.buf, v)
}

// WriteLongLong appends an int64 aligned to 8.
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteULongLong appends a uint64 aligned to 8.
func (e *Encoder) WriteULongLong(v uint64) {
	e.pad(8)
	e.buf = e.order.order().AppendUint64(e.buf, v)
}

// WriteFloat appends a float32 aligned to 4.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble appends a float64 aligned to 8.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a string as uint32 length (including the terminating
// NUL) followed by the bytes and a NUL, per CDR.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctets appends a sequence<octet>: uint32 count then raw bytes.
func (e *Encoder) WriteOctets(b []byte) {
	e.WriteULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteRaw appends bytes with no count and no alignment; used for payloads
// whose framing is established elsewhere.
func (e *Encoder) WriteRaw(b []byte) { e.buf = append(e.buf, b...) }

// WriteDoubles appends a sequence<double>: uint32 count, 8-alignment, then
// the packed elements. This is the hot path for distributed sequence
// chunks, so it avoids per-element calls.
func (e *Encoder) WriteDoubles(v []float64) {
	e.WriteULong(uint32(len(v)))
	e.pad(8)
	if e.order == hostOrder {
		// Stream order matches memory order: the packed elements are the
		// backing array's bytes, so one memcpy replaces the element loop.
		e.buf = append(e.buf, float64Bytes(v)...)
		return
	}
	ord := e.order.order()
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, 8*len(v))...)
	for i, f := range v {
		ord.PutUint64(e.buf[off+8*i:], math.Float64bits(f))
	}
}

// WriteLongs appends a sequence<long>.
func (e *Encoder) WriteLongs(v []int32) {
	e.WriteULong(uint32(len(v)))
	if e.order == hostOrder {
		e.buf = append(e.buf, int32Bytes(v)...)
		return
	}
	ord := e.order.order()
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, 4*len(v))...)
	for i, x := range v {
		ord.PutUint32(e.buf[off+4*i:], uint32(x))
	}
}

// WriteEncapsulation appends the body produced by fn as a CDR
// encapsulation: an octet sequence whose first octet is the byte-order flag
// and whose alignment origin is its own start.
func (e *Encoder) WriteEncapsulation(fn func(*Encoder)) {
	inner := NewEncoder(e.order)
	inner.WriteOctet(byte(e.order))
	fn(inner)
	e.WriteOctets(inner.Bytes())
}

// WriteEnum appends an enum discriminant as uint32.
func (e *Encoder) WriteEnum(v uint32) { e.WriteULong(v) }

// Grow pre-allocates capacity for n additional bytes. Growth is amortized:
// the buffer at least doubles, so a sequence of small Grow calls costs O(total)
// copying rather than O(total²).
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) >= n {
		return
	}
	c := 2 * cap(e.buf)
	if c < len(e.buf)+n {
		c = len(e.buf) + n
	}
	nb := make([]byte, len(e.buf), c)
	copy(nb, e.buf)
	e.buf = nb
}

// String summarizes the encoder state for debugging.
func (e *Encoder) String() string {
	return fmt.Sprintf("cdr.Encoder{%s, %d bytes}", e.order, len(e.buf))
}
