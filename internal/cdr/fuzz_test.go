package cdr

import "testing"

// FuzzDecoder cycles a decoder through every primitive reader over
// arbitrary bytes, in both byte orders. Every reader must either yield a
// value or fail with an error — no panics, no unbounded allocation (the
// length-prefixed readers must validate counts against Remaining before
// allocating).
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(NativeOrder)
	e.WriteOctet(7)
	e.WriteBool(true)
	e.WriteShort(-2)
	e.WriteULong(40)
	e.WriteDouble(3.25)
	e.WriteString("seed")
	e.WriteOctets([]byte("opaque"))
	e.WriteDoubles([]float64{1, 2, 3})
	e.WriteLongs([]int32{-1, 0, 1})
	f.Add(e.Bytes())
	f.Add([]byte("\xff\xff\xff\xff"))   // huge length prefix
	f.Add([]byte("\x00\x00\x00\x04se")) // truncated string
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, ord := range []ByteOrder{BigEndian, LittleEndian} {
			d := NewDecoder(data, ord)
			// Cycle through the readers until the first error. Every
			// successful read consumes at least one byte, so this
			// terminates.
			steps := []func() error{
				func() error { _, err := d.ReadOctet(); return err },
				func() error { _, err := d.ReadBool(); return err },
				func() error { _, err := d.ReadChar(); return err },
				func() error { _, err := d.ReadShort(); return err },
				func() error { _, err := d.ReadUShort(); return err },
				func() error { _, err := d.ReadLong(); return err },
				func() error { _, err := d.ReadULong(); return err },
				func() error { _, err := d.ReadLongLong(); return err },
				func() error { _, err := d.ReadULongLong(); return err },
				func() error { _, err := d.ReadFloat(); return err },
				func() error { _, err := d.ReadDouble(); return err },
				func() error { _, err := d.ReadString(); return err },
				func() error { _, err := d.ReadOctets(); return err },
				func() error { _, err := d.ReadRaw(1); return err },
				func() error { _, err := d.ReadDoubles(); return err },
				func() error { _, err := d.ReadLongs(); return err },
				func() error { _, err := d.ReadEnum(); return err },
				func() error {
					sub, err := d.ReadEncapsulation()
					if err != nil {
						return err
					}
					_, err = sub.ReadOctet()
					return err
				},
			}
			i := 0
			for {
				if err := steps[i%len(steps)](); err != nil {
					break
				}
				i++
			}
		}
	})
}
