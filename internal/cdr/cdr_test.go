package cdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

var bothOrders = []ByteOrder{BigEndian, LittleEndian}

func TestPrimitiveRoundTrip(t *testing.T) {
	for _, ord := range bothOrders {
		e := NewEncoder(ord)
		e.WriteOctet(0xAB)
		e.WriteBool(true)
		e.WriteBool(false)
		e.WriteChar('z')
		e.WriteShort(-12345)
		e.WriteUShort(54321)
		e.WriteLong(-2000000000)
		e.WriteULong(4000000000)
		e.WriteLongLong(-9e18)
		e.WriteULongLong(18446744073709551615)
		e.WriteFloat(3.5)
		e.WriteDouble(math.Pi)
		e.WriteString("hello, pardis")
		e.WriteString("")
		e.WriteEnum(7)

		d := NewDecoder(e.Bytes(), ord)
		check := func(name string, got, want any, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s (%v): %v", name, ord, err)
			}
			if got != want {
				t.Fatalf("%s (%v): got %v want %v", name, ord, got, want)
			}
		}
		v1, err := d.ReadOctet()
		check("octet", v1, byte(0xAB), err)
		b1, err := d.ReadBool()
		check("bool true", b1, true, err)
		b2, err := d.ReadBool()
		check("bool false", b2, false, err)
		ch, err := d.ReadChar()
		check("char", ch, byte('z'), err)
		s1, err := d.ReadShort()
		check("short", s1, int16(-12345), err)
		u1, err := d.ReadUShort()
		check("ushort", u1, uint16(54321), err)
		l1, err := d.ReadLong()
		check("long", l1, int32(-2000000000), err)
		ul1, err := d.ReadULong()
		check("ulong", ul1, uint32(4000000000), err)
		ll1, err := d.ReadLongLong()
		check("longlong", ll1, int64(-9e18), err)
		ull1, err := d.ReadULongLong()
		check("ulonglong", ull1, uint64(18446744073709551615), err)
		f1, err := d.ReadFloat()
		check("float", f1, float32(3.5), err)
		d1, err := d.ReadDouble()
		check("double", d1, math.Pi, err)
		str, err := d.ReadString()
		check("string", str, "hello, pardis", err)
		str2, err := d.ReadString()
		check("empty string", str2, "", err)
		en, err := d.ReadEnum()
		check("enum", en, uint32(7), err)
		if d.Remaining() != 0 {
			t.Fatalf("%v: %d trailing bytes", ord, d.Remaining())
		}
	}
}

func TestAlignment(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.WriteOctet(1)  // pos 0
	e.WriteULong(2)  // pads to 4
	e.WriteOctet(3)  // pos 8
	e.WriteDouble(4) // pads to 16
	e.WriteOctet(5)  // pos 24
	e.WriteUShort(6) // pads to 26
	buf := e.Bytes()
	if len(buf) != 28 {
		t.Fatalf("encoded length %d, want 28", len(buf))
	}
	// Padding bytes must be zero.
	for _, i := range []int{1, 2, 3, 9, 10, 11, 12, 13, 14, 15, 25} {
		if buf[i] != 0 {
			t.Errorf("pad byte %d = %#x", i, buf[i])
		}
	}
	d := NewDecoder(buf, LittleEndian)
	for i, read := range []func() (any, error){
		func() (any, error) { return d.ReadOctet() },
		func() (any, error) { return d.ReadULong() },
		func() (any, error) { return d.ReadOctet() },
		func() (any, error) { return d.ReadDouble() },
		func() (any, error) { return d.ReadOctet() },
		func() (any, error) { return d.ReadUShort() },
	} {
		if _, err := read(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func TestCrossEndianValues(t *testing.T) {
	// Big-endian bytes of 0x01020304 decoded as declared.
	e := NewEncoder(BigEndian)
	e.WriteULong(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("big-endian encoding %v", e.Bytes())
	}
	e = NewEncoder(LittleEndian)
	e.WriteULong(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{4, 3, 2, 1}) {
		t.Fatalf("little-endian encoding %v", e.Bytes())
	}
}

func TestOctetsAndRaw(t *testing.T) {
	e := NewEncoder(NativeOrder)
	e.WriteOctets([]byte{9, 8, 7})
	e.WriteRaw([]byte{1, 2})
	d := NewDecoder(e.Bytes(), NativeOrder)
	got, err := d.ReadOctets()
	if err != nil || !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("octets %v err %v", got, err)
	}
	raw, err := d.ReadRaw(2)
	if err != nil || !bytes.Equal(raw, []byte{1, 2}) {
		t.Fatalf("raw %v err %v", raw, err)
	}
	if _, err := d.ReadRaw(-1); err == nil {
		t.Fatal("negative raw read accepted")
	}
}

func TestDoubleSliceRoundTrip(t *testing.T) {
	prop := func(v []float64, little bool) bool {
		ord := BigEndian
		if little {
			ord = LittleEndian
		}
		e := NewEncoder(ord)
		e.WriteOctet(1) // misalign on purpose
		e.WriteDoubles(v)
		d := NewDecoder(e.Bytes(), ord)
		if _, err := d.ReadOctet(); err != nil {
			return false
		}
		got, err := d.ReadDoubles()
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLongSliceRoundTrip(t *testing.T) {
	prop := func(v []int32, little bool) bool {
		ord := BigEndian
		if little {
			ord = LittleEndian
		}
		e := NewEncoder(ord)
		e.WriteLongs(v)
		d := NewDecoder(e.Bytes(), ord)
		got, err := d.ReadLongs()
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	prop := func(parts []string) bool {
		e := NewEncoder(NativeOrder)
		clean := make([]string, 0, len(parts))
		for _, s := range parts {
			// CDR strings cannot contain NUL.
			if bytes.IndexByte([]byte(s), 0) >= 0 {
				continue
			}
			clean = append(clean, s)
			e.WriteString(s)
		}
		d := NewDecoder(e.Bytes(), NativeOrder)
		for _, want := range clean {
			got, err := d.ReadString()
			if err != nil || got != want {
				return false
			}
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncapsulation(t *testing.T) {
	for _, ord := range bothOrders {
		e := NewEncoder(ord)
		e.WriteLong(42)
		e.WriteEncapsulation(func(inner *Encoder) {
			inner.WriteDouble(2.75)
			inner.WriteString("nested")
		})
		e.WriteLong(43)

		d := NewDecoder(e.Bytes(), ord)
		if v, err := d.ReadLong(); err != nil || v != 42 {
			t.Fatalf("%v pre: %v %v", ord, v, err)
		}
		inner, err := d.ReadEncapsulation()
		if err != nil {
			t.Fatalf("%v encapsulation: %v", ord, err)
		}
		if inner.Order() != ord {
			t.Fatalf("inner order %v, want %v", inner.Order(), ord)
		}
		if v, err := inner.ReadDouble(); err != nil || v != 2.75 {
			t.Fatalf("%v inner double: %v %v", ord, v, err)
		}
		if s, err := inner.ReadString(); err != nil || s != "nested" {
			t.Fatalf("%v inner string: %q %v", ord, s, err)
		}
		if v, err := d.ReadLong(); err != nil || v != 43 {
			t.Fatalf("%v post: %v %v", ord, v, err)
		}
	}
}

func TestEncapsulationAlignmentIndependence(t *testing.T) {
	// The same encapsulation body must decode identically regardless of the
	// outer offset it lands at.
	build := func(prefix int) []byte {
		e := NewEncoder(LittleEndian)
		for i := 0; i < prefix; i++ {
			e.WriteOctet(0xFF)
		}
		e.WriteEncapsulation(func(inner *Encoder) {
			inner.WriteDouble(1.5)
		})
		return e.Bytes()
	}
	for prefix := 0; prefix < 9; prefix++ {
		d := NewDecoder(build(prefix), LittleEndian)
		if _, err := d.ReadRaw(prefix); err != nil {
			t.Fatal(err)
		}
		inner, err := d.ReadEncapsulation()
		if err != nil {
			t.Fatalf("prefix %d: %v", prefix, err)
		}
		v, err := inner.ReadDouble()
		if err != nil || v != 1.5 {
			t.Fatalf("prefix %d: %v %v", prefix, v, err)
		}
	}
}

func TestTruncationErrors(t *testing.T) {
	e := NewEncoder(NativeOrder)
	e.WriteDouble(1)
	e.WriteString("abc")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut], NativeOrder)
		_, err1 := d.ReadDouble()
		if err1 != nil {
			if !errors.Is(err1, ErrTruncated) {
				t.Fatalf("cut %d: double err %v", cut, err1)
			}
			continue
		}
		if _, err2 := d.ReadString(); err2 == nil {
			t.Fatalf("cut %d: truncated string accepted", cut)
		}
	}
}

func TestInvalidEncodings(t *testing.T) {
	// Bad boolean octet.
	d := NewDecoder([]byte{7}, NativeOrder)
	if _, err := d.ReadBool(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bool: %v", err)
	}
	// Zero-length string (prefix must be >= 1 for the NUL).
	e := NewEncoder(NativeOrder)
	e.WriteULong(0)
	d = NewDecoder(e.Bytes(), NativeOrder)
	if _, err := d.ReadString(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("zero-length string: %v", err)
	}
	// String whose terminator is not NUL.
	e = NewEncoder(NativeOrder)
	e.WriteULong(3)
	e.WriteRaw([]byte{'a', 'b', 'c'})
	d = NewDecoder(e.Bytes(), NativeOrder)
	if _, err := d.ReadString(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unterminated string: %v", err)
	}
	// Huge length prefix must not allocate.
	e = NewEncoder(NativeOrder)
	e.WriteULong(0xFFFFFFFF)
	d = NewDecoder(e.Bytes(), NativeOrder)
	if _, err := d.ReadOctets(); err == nil {
		t.Fatal("huge octet sequence accepted")
	}
	// Empty encapsulation.
	e = NewEncoder(NativeOrder)
	e.WriteOctets(nil)
	d = NewDecoder(e.Bytes(), NativeOrder)
	if _, err := d.ReadEncapsulation(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty encapsulation: %v", err)
	}
	// Bad byte-order flag in encapsulation.
	e = NewEncoder(NativeOrder)
	e.WriteOctets([]byte{9})
	d = NewDecoder(e.Bytes(), NativeOrder)
	if _, err := d.ReadEncapsulation(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad encapsulation flag: %v", err)
	}
}

func TestEncoderReuse(t *testing.T) {
	e := NewEncoder(NativeOrder)
	e.WriteLong(1)
	first := append([]byte(nil), e.Bytes()...)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("len after reset %d", e.Len())
	}
	e.WriteLong(1)
	if !bytes.Equal(first, e.Bytes()) {
		t.Fatal("reset encoder produced different bytes")
	}
}

func TestGrow(t *testing.T) {
	e := NewEncoder(NativeOrder)
	e.WriteOctet(1)
	e.Grow(1 << 16)
	if cap(e.buf)-len(e.buf) < 1<<16 {
		t.Fatal("Grow did not reserve capacity")
	}
	e.WriteOctet(2)
	if !bytes.Equal(e.Bytes(), []byte{1, 2}) {
		t.Fatal("Grow corrupted contents")
	}
}

// Fuzz-like property: a decoder over arbitrary bytes never panics and never
// reads past the buffer, whatever sequence of reads we attempt.
func TestDecoderNeverPanics(t *testing.T) {
	prop := func(data []byte, ops []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		d := NewDecoder(data, LittleEndian)
		for _, op := range ops {
			switch op % 12 {
			case 0:
				d.ReadOctet()
			case 1:
				d.ReadBool()
			case 2:
				d.ReadShort()
			case 3:
				d.ReadULong()
			case 4:
				d.ReadLongLong()
			case 5:
				d.ReadFloat()
			case 6:
				d.ReadDouble()
			case 7:
				d.ReadString()
			case 8:
				d.ReadOctets()
			case 9:
				d.ReadDoubles()
			case 10:
				d.ReadEncapsulation()
			case 11:
				d.ReadLongs()
			}
			if d.Remaining() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
