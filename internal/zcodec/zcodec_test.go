package zcodec

import (
	"math"
	"math/rand"
	"testing"
)

func doubleCases() map[string][]float64 {
	r := rand.New(rand.NewSource(8))
	rnd := make([]float64, 512)
	for i := range rnd {
		rnd[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10))
	}
	ramp := make([]float64, 4096)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	walk := make([]float64, 1024)
	v := 100.0
	for i := range walk {
		v += r.Float64() - 0.5
		walk[i] = v
	}
	return map[string][]float64{
		"empty":    nil,
		"one":      {3.25},
		"const":    {7, 7, 7, 7, 7, 7, 7},
		"ramp":     ramp,
		"walk":     walk,
		"random":   rnd,
		"specials": {0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
}

func TestDoublesRoundTrip(t *testing.T) {
	for name, vals := range doubleCases() {
		t.Run(name, func(t *testing.T) {
			enc := AppendDoubles(nil, vals)
			got, err := DecodeDoubles(enc, MaxBlockElems)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(vals) {
				t.Fatalf("len=%d want %d", len(got), len(vals))
			}
			for i := range vals {
				if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
					t.Fatalf("[%d] %v != %v", i, got[i], vals[i])
				}
			}
			into := make([]float64, len(vals))
			if err := DecodeDoublesInto(into, enc); err != nil {
				t.Fatalf("decode into: %v", err)
			}
			for i := range vals {
				if math.Float64bits(into[i]) != math.Float64bits(vals[i]) {
					t.Fatalf("into[%d] %v != %v", i, into[i], vals[i])
				}
			}
		})
	}
}

func TestDoublesRampRatio(t *testing.T) {
	// The headline workload: the smooth float64(i) ramp RunReal streams.
	// The acceptance bar is >=2x; the XOR codec should beat that easily.
	vals := make([]float64, 1<<15)
	for i := range vals {
		vals[i] = float64(i)
	}
	enc := AppendDoubles(nil, vals)
	ratio := float64(8*len(vals)) / float64(len(enc))
	if ratio < 2 {
		t.Fatalf("ramp compression ratio %.2fx, want >= 2x (encoded %d bytes for %d raw)",
			ratio, len(enc), 8*len(vals))
	}
	t.Logf("ramp ratio %.2fx (%d -> %d bytes)", ratio, 8*len(vals), len(enc))
}

func TestInt64sRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cases := map[string][]int64{
		"empty":    nil,
		"one":      {-42},
		"two":      {5, -5},
		"ramp":     {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		"extremes": {math.MaxInt64, math.MinInt64, 0, math.MaxInt64, math.MinInt64 + 1},
	}
	rnd := make([]int64, 700)
	for i := range rnd {
		rnd[i] = r.Int63() - r.Int63()
	}
	cases["random"] = rnd
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			enc := AppendInt64s(nil, vals)
			got, err := DecodeInt64s(enc, MaxBlockElems)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(vals) {
				t.Fatalf("len=%d want %d", len(got), len(vals))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("[%d] %d != %d", i, got[i], vals[i])
				}
			}
			into := make([]int64, len(vals))
			if err := DecodeInt64sInto(into, enc); err != nil {
				t.Fatalf("decode into: %v", err)
			}
		})
	}
}

func TestInt32sRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	cases := map[string][]int32{
		"empty":    nil,
		"one":      {7},
		"ramp":     {100, 101, 102, 103, 104},
		"extremes": {math.MaxInt32, math.MinInt32, 0, -1, 1},
	}
	rnd := make([]int32, 600)
	for i := range rnd {
		rnd[i] = int32(r.Uint32())
	}
	cases["random"] = rnd
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			enc := AppendInt32s(nil, vals)
			got, err := DecodeInt32s(enc, MaxBlockElems)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(vals) {
				t.Fatalf("len=%d want %d", len(got), len(vals))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("[%d] %d != %d", i, got[i], vals[i])
				}
			}
		})
	}
}

func TestIntRampRatio(t *testing.T) {
	vals := make([]int64, 1<<14)
	for i := range vals {
		vals[i] = int64(i) * 3
	}
	enc := AppendInt64s(nil, vals)
	if ratio := float64(8*len(vals)) / float64(len(enc)); ratio < 2 {
		t.Fatalf("int ramp ratio %.2fx, want >= 2x", ratio)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	enc := AppendDoubles(nil, vals)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeDoubles(enc[:cut], MaxBlockElems); err == nil {
			t.Fatalf("truncated to %d of %d bytes decoded without error", cut, len(enc))
		}
	}
	ints := AppendInt64s(nil, []int64{1, 2, 3, 4, 5})
	for cut := 0; cut < len(ints)-1; cut++ {
		if _, err := DecodeInt64s(ints[:cut], MaxBlockElems); err == nil {
			t.Fatalf("truncated ints to %d bytes decoded without error", cut)
		}
	}
}

func TestDecodeRejectsOversizedCount(t *testing.T) {
	enc := AppendDoubles(nil, []float64{1, 2, 3})
	if _, err := DecodeDoubles(enc, 2); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if err := DecodeDoublesInto(make([]float64, 2), enc); err != ErrCount {
		t.Fatalf("want ErrCount, got %v", err)
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeDoubles(huge, MaxBlockElems); err != ErrTooLarge {
		t.Fatalf("huge count: want ErrTooLarge, got %v", err)
	}
	if _, err := DecodeInt64s(huge, MaxBlockElems); err != ErrTooLarge {
		t.Fatalf("huge int count: want ErrTooLarge, got %v", err)
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	base := AppendDoubles(nil, []float64{1, 2, 4, 8, 16, 32, 64})
	for trial := 0; trial < 2000; trial++ {
		b := append([]byte(nil), base...)
		for f := 0; f < 1+r.Intn(4); f++ {
			b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
		}
		DecodeDoubles(b, 1<<20) //nolint:errcheck — must not panic
		DecodeInt64s(b, 1<<20)  //nolint:errcheck
		DecodeInt32s(b, 1<<20)  //nolint:errcheck
		rb := make([]byte, r.Intn(40))
		r.Read(rb)
		DecodeDoubles(rb, 1<<20) //nolint:errcheck
		DecodeInt64s(rb, 1<<20)  //nolint:errcheck
	}
}

func TestAppendDoublesNoAllocWithCapacity(t *testing.T) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i)
	}
	buf := make([]byte, 0, 10*len(vals)+16)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendDoubles(buf[:0], vals)
	})
	if allocs != 0 {
		t.Fatalf("AppendDoubles with capacity allocates %.1f/op, want 0", allocs)
	}
	out := make([]float64, len(vals))
	allocs = testing.AllocsPerRun(100, func() {
		if err := DecodeDoublesInto(out, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeDoublesInto allocates %.1f/op, want 0", allocs)
	}
}

func TestParseMask(t *testing.T) {
	for s, want := range map[string]uint8{
		"": 0, "off": 0, "none": 0,
		"delta": MaskDelta | MaskSubBlock, "xor": MaskXOR | MaskSubBlock,
		"all": Supported, "auto": Supported, "always": Supported,
	} {
		got, err := ParseMask(s)
		if err != nil || got != want {
			t.Fatalf("ParseMask(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := ParseMask("zstd"); err == nil {
		t.Fatal("ParseMask accepted unknown codec")
	}
	if MaskString(MaskXOR) != "xor" || MaskString(0) != "off" || MaskString(MaskAll) != "all" {
		t.Fatal("MaskString mismatch")
	}
	if MaskString(Supported) != "all+sub" || MaskString(MaskDelta|MaskSubBlock) != "delta+sub" {
		t.Fatalf("MaskString sub-block mismatch: %q, %q", MaskString(Supported), MaskString(MaskDelta|MaskSubBlock))
	}
	if MaskString(0x80) != "mask(0x80)" || MaskString(MaskAll|0x80) != "mask(0x83)" {
		t.Fatal("MaskString unknown-bit mismatch")
	}
	if XOR.String() != "xor" || Delta.String() != "delta" || None.String() != "none" {
		t.Fatal("ID.String mismatch")
	}
	if !HasCodec(MaskAll, XOR) || !HasCodec(MaskAll, Delta) || HasCodec(MaskDelta, XOR) || HasCodec(MaskAll, None) {
		t.Fatal("HasCodec mismatch")
	}
	if HasCodec(MaskSubBlock, XOR) || HasCodec(MaskSubBlock, Delta) {
		t.Fatal("capability bit must not admit a codec")
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		mask uint8
		pol  Policy
	}{
		{"off", 0, PolicyNever},
		{"", 0, PolicyNever},
		{"delta", MaskDelta | MaskSubBlock, PolicyAlways},
		{"xor", MaskXOR | MaskSubBlock, PolicyAlways},
		{"all", Supported, PolicyAlways},
		{"always", Supported, PolicyAlways},
		{"auto", Supported, PolicyAuto},
	} {
		mask, pol, err := ParseMode(tc.in)
		if err != nil || mask != tc.mask || pol != tc.pol {
			t.Fatalf("ParseMode(%q) = (%#x, %v, %v); want (%#x, %v)", tc.in, mask, pol, err, tc.mask, tc.pol)
		}
	}
	if _, _, err := ParseMode("zstd"); err == nil {
		t.Fatal("ParseMode accepted unknown mode")
	}
	if PolicyAuto.String() != "auto" || PolicyAlways.String() != "always" || PolicyNever.String() != "never" {
		t.Fatal("Policy.String mismatch")
	}
}

func TestCompressionWins(t *testing.T) {
	const MBps = float64(1 << 20)
	for _, tc := range []struct {
		name                string
		ratio, encBps, wire float64
		want                bool
	}{
		{"cold-encoder", 0, 0, 10000 * MBps, true},
		{"cold-wire", 4.6, 800 * MBps, 0, true},
		{"incompressible", 1.02, 800 * MBps, 1 * MBps, false},
		{"slow-link", 4.6, 800 * MBps, 64 * MBps, true},
		{"fast-loopback", 4.6, 800 * MBps, 8000 * MBps, false},
		{"marginal", 4.6, 90 * MBps, 64 * MBps, false},
	} {
		if got := compressionWins(tc.ratio, tc.encBps, tc.wire); got != tc.want {
			t.Errorf("%s: compressionWins(%.2f, %.0f, %.0f) = %v, want %v",
				tc.name, tc.ratio, tc.encBps, tc.wire, got, tc.want)
		}
	}
}

func TestEncodeThroughputLedger(t *testing.T) {
	ResetStats()
	defer ResetStats()
	if EncodeThroughput() != 0 {
		t.Fatal("throughput nonzero before any encode")
	}
	vals := make([]float64, 1<<14)
	for i := range vals {
		vals[i] = float64(i)
	}
	enc := AppendDoubles(nil, vals)
	if EncodeThroughput() <= 0 {
		t.Fatal("throughput not recorded after encode")
	}
	if _, err := DecodeDoubles(enc, MaxBlockElems); err != nil {
		t.Fatal(err)
	}
	if decNanos.Load() <= 0 {
		t.Fatal("decode nanoseconds not recorded")
	}
	// CompressionWins must route through the live ledgers without error
	// in both warm and cold states.
	_ = CompressionWins(1 << 30)
	ResetStats()
	if !CompressionWins(1 << 30) {
		t.Fatal("cold ledger must decide optimistically")
	}
}
