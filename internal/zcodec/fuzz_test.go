package zcodec

import (
	"math"
	"testing"
)

// FuzzDecodeDoubles drives the XOR decoder with arbitrary bytes: it
// must reject garbage with an error, never panic, and re-encode any
// block it accepts to the same values.
func FuzzDecodeDoubles(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(AppendDoubles(nil, []float64{1, 2, 3, 4, 5, 6, 7, 8}))
	f.Add(AppendDoubles(nil, []float64{0, math.Inf(1), math.NaN(), -1e300}))
	f.Add(AppendDoubles(nil, []float64{3.25}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeDoubles(data, 1<<16)
		if err != nil {
			return
		}
		enc := AppendDoubles(nil, vals)
		back, err := DecodeDoubles(enc, 1<<16)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("re-encode changed length %d -> %d", len(vals), len(back))
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("[%d] %v != %v after re-encode", i, back[i], vals[i])
			}
		}
	})
}

// FuzzDecodeInts drives both integer decoders with arbitrary bytes and
// checks the accepted-block round-trip property for int64.
func FuzzDecodeInts(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(AppendInt64s(nil, []int64{1, 2, 3, 4, 5}))
	f.Add(AppendInt64s(nil, []int64{math.MaxInt64, math.MinInt64, 0}))
	f.Add(AppendInt32s(nil, []int32{-7, 7, 1 << 30}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := DecodeInt32s(data, 1<<16); err != nil {
			_ = err
		}
		vals, err := DecodeInt64s(data, 1<<16)
		if err != nil {
			return
		}
		enc := AppendInt64s(nil, vals)
		back, err := DecodeInt64s(enc, 1<<16)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("[%d] %d != %d after re-encode", i, back[i], vals[i])
			}
		}
	})
}
