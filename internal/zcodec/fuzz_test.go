package zcodec

import (
	"encoding/binary"
	"math"
	"testing"
)

// subEnvelopeSeed hand-rolls a dseq sub-block chunk envelope
// ([0x03][codec][uvarint nsub][nsub × uvarint len + block]) around the
// given encoded blocks. The envelope container lives in dseq, but its
// bytes reaching a bare block decoder is exactly the garbage-tolerance
// case the fuzzers guard, so the corpora seed it here.
func subEnvelopeSeed(codec ID, blocks ...[]byte) []byte {
	out := []byte{0x03, byte(codec)}
	out = binary.AppendUvarint(out, uint64(len(blocks)))
	for _, b := range blocks {
		out = binary.AppendUvarint(out, uint64(len(b)))
		out = append(out, b...)
	}
	return out
}

// FuzzDecodeDoubles drives the XOR decoder with arbitrary bytes: it
// must reject garbage with an error, never panic, and re-encode any
// block it accepts to the same values.
func FuzzDecodeDoubles(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(AppendDoubles(nil, []float64{1, 2, 3, 4, 5, 6, 7, 8}))
	f.Add(AppendDoubles(nil, []float64{0, math.Inf(1), math.NaN(), -1e300}))
	f.Add(AppendDoubles(nil, []float64{3.25}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(subEnvelopeSeed(XOR,
		AppendDoubles(nil, []float64{1, 2, 3, 4}),
		AppendDoubles(nil, []float64{5, 6, 7, 8})))
	f.Add(subEnvelopeSeed(XOR, AppendDoubles(nil, []float64{math.NaN(), math.Inf(-1)})))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeDoubles(data, 1<<16)
		if err != nil {
			return
		}
		enc := AppendDoubles(nil, vals)
		back, err := DecodeDoubles(enc, 1<<16)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("re-encode changed length %d -> %d", len(vals), len(back))
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("[%d] %v != %v after re-encode", i, back[i], vals[i])
			}
		}
	})
}

// FuzzDecodeInts drives both integer decoders with arbitrary bytes and
// checks the accepted-block round-trip property for int64.
func FuzzDecodeInts(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(AppendInt64s(nil, []int64{1, 2, 3, 4, 5}))
	f.Add(AppendInt64s(nil, []int64{math.MaxInt64, math.MinInt64, 0}))
	f.Add(AppendInt32s(nil, []int32{-7, 7, 1 << 30}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(subEnvelopeSeed(Delta,
		AppendInt64s(nil, []int64{1, 2, 3}),
		AppendInt64s(nil, []int64{4, 5, 6})))
	f.Add(subEnvelopeSeed(Delta, AppendInt32s(nil, []int32{-1, 0, 1})))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := DecodeInt32s(data, 1<<16); err != nil {
			_ = err
		}
		vals, err := DecodeInt64s(data, 1<<16)
		if err != nil {
			return
		}
		enc := AppendInt64s(nil, vals)
		back, err := DecodeInt64s(enc, 1<<16)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("[%d] %d != %d after re-encode", i, back[i], vals[i])
			}
		}
	})
}
