package zcodec

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Package-wide byte ledgers. Encoders add the raw (pre-compression)
// and encoded sizes; decoders add the decoded and consumed sizes. The
// encode ratio is the headline compression number: raw bytes that
// would have crossed the wire divided by bytes that actually did.
var (
	encRawBytes atomic.Int64
	encOutBytes atomic.Int64
	decRawBytes atomic.Int64
	decInBytes  atomic.Int64
)

func statEncode(raw, out int) {
	encRawBytes.Add(int64(raw))
	encOutBytes.Add(int64(out))
}

func statDecode(raw, in int) {
	decRawBytes.Add(int64(raw))
	decInBytes.Add(int64(in))
}

// Stats returns the cumulative (rawOut, wireOut, rawIn, wireIn) byte
// counts: bytes before/after encoding and after/before decoding.
func Stats() (rawOut, wireOut, rawIn, wireIn int64) {
	return encRawBytes.Load(), encOutBytes.Load(), decRawBytes.Load(), decInBytes.Load()
}

// ResetStats zeroes the ledgers (tests and benchmarks).
func ResetStats() {
	encRawBytes.Store(0)
	encOutBytes.Store(0)
	decRawBytes.Store(0)
	decInBytes.Store(0)
}

// EncodeRatio returns raw/wire for the encode direction, or 0 when
// nothing has been encoded.
func EncodeRatio() float64 {
	out := encOutBytes.Load()
	if out == 0 {
		return 0
	}
	return float64(encRawBytes.Load()) / float64(out)
}

// EnableMetrics registers the codec ledgers with a registry:
// bytes-in/bytes-out for both directions plus a milli-ratio gauge
// (encode ratio ×1000, so 2.5× reads as 2500).
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterPull("zcodec", func(put func(name string, v int64)) {
		put("zcodec.encode_raw_bytes", encRawBytes.Load())
		put("zcodec.encode_wire_bytes", encOutBytes.Load())
		put("zcodec.decode_raw_bytes", decRawBytes.Load())
		put("zcodec.decode_wire_bytes", decInBytes.Load())
		if out := encOutBytes.Load(); out > 0 {
			put("zcodec.encode_ratio_milli", encRawBytes.Load()*1000/out)
		} else {
			put("zcodec.encode_ratio_milli", 0)
		}
	})
}
