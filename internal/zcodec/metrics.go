package zcodec

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Package-wide byte ledgers. Encoders add the raw (pre-compression)
// and encoded sizes; decoders add the decoded and consumed sizes. The
// encode ratio is the headline compression number: raw bytes that
// would have crossed the wire divided by bytes that actually did.
//
// Alongside the byte ledgers the encoders and decoders accumulate CPU
// nanoseconds, giving the adaptive policy an observed encode
// throughput. Sub-block encodes run on several workers at once, so the
// ledger measures CPU-seconds, not wall time: the derived throughput
// is per-core and therefore a conservative lower bound on what the
// parallel encoder actually sustains.
var (
	encRawBytes atomic.Int64
	encOutBytes atomic.Int64
	decRawBytes atomic.Int64
	decInBytes  atomic.Int64
	encNanos    atomic.Int64
	decNanos    atomic.Int64

	encHist atomic.Pointer[obs.Histogram]
	decHist atomic.Pointer[obs.Histogram]
)

func statEncode(raw, out int, dur time.Duration) {
	encRawBytes.Add(int64(raw))
	encOutBytes.Add(int64(out))
	encNanos.Add(int64(dur))
	encHist.Load().Observe(dur)
}

func statDecode(raw, in int, dur time.Duration) {
	decRawBytes.Add(int64(raw))
	decInBytes.Add(int64(in))
	decNanos.Add(int64(dur))
	decHist.Load().Observe(dur)
}

// Stats returns the cumulative (rawOut, wireOut, rawIn, wireIn) byte
// counts: bytes before/after encoding and after/before decoding.
func Stats() (rawOut, wireOut, rawIn, wireIn int64) {
	return encRawBytes.Load(), encOutBytes.Load(), decRawBytes.Load(), decInBytes.Load()
}

// ResetStats zeroes the ledgers (tests and benchmarks).
func ResetStats() {
	encRawBytes.Store(0)
	encOutBytes.Store(0)
	decRawBytes.Store(0)
	decInBytes.Store(0)
	encNanos.Store(0)
	decNanos.Store(0)
}

// EncodeRatio returns raw/wire for the encode direction, or 0 when
// nothing has been encoded.
func EncodeRatio() float64 {
	out := encOutBytes.Load()
	if out == 0 {
		return 0
	}
	return float64(encRawBytes.Load()) / float64(out)
}

// EncodeThroughput returns the observed encode rate in raw bytes per
// CPU-second, or 0 when nothing has been timed yet.
func EncodeThroughput() float64 {
	ns := encNanos.Load()
	if ns <= 0 {
		return 0
	}
	return float64(encRawBytes.Load()) * float64(time.Second) / float64(ns)
}

// Tuning constants for the Auto policy decision.
const (
	// autoMinRatio is the observed encode ratio below which
	// compressing is judged not worth the cycles on any link.
	autoMinRatio = 1.15
	// autoMargin is how much faster than the wire the encoder must
	// be before compression is predicted to win: the codec stage is
	// pipelined but still has to keep ahead of the link.
	autoMargin = 1.5
)

// CompressionWins is the Auto-policy decision: given the estimated
// wire bandwidth of the connection a leg will use (bytes/sec; <= 0
// when unknown), decide from the cumulative encode ledgers whether
// compressing that leg is predicted to net out. Missing evidence —
// no timed encodes yet, or no bandwidth estimate — answers true, so
// a cold path compresses optimistically and thereby generates the
// measurements the next decision needs.
func CompressionWins(wireBps float64) bool {
	return compressionWins(EncodeRatio(), EncodeThroughput(), wireBps)
}

func compressionWins(ratio, encBps, wireBps float64) bool {
	if encBps <= 0 {
		return true // nothing timed yet: warm up optimistically
	}
	if ratio > 0 && ratio < autoMinRatio {
		return false // workload is incompressible; skip everywhere
	}
	if wireBps <= 0 {
		return true // no wire estimate yet: warm up optimistically
	}
	return encBps >= autoMargin*wireBps
}

// EnableMetrics registers the codec ledgers with a registry:
// bytes-in/bytes-out for both directions plus a milli-ratio gauge
// (encode ratio ×1000, so 2.5× reads as 2500), and wires the
// per-block zcodec.encode_ns / zcodec.decode_ns histograms. A nil
// registry detaches the histograms.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		encHist.Store(nil)
		decHist.Store(nil)
		return
	}
	encHist.Store(reg.Histogram("zcodec.encode_ns"))
	decHist.Store(reg.Histogram("zcodec.decode_ns"))
	reg.RegisterPull("zcodec", func(put func(name string, v int64)) {
		put("zcodec.encode_raw_bytes", encRawBytes.Load())
		put("zcodec.encode_wire_bytes", encOutBytes.Load())
		put("zcodec.decode_raw_bytes", decRawBytes.Load())
		put("zcodec.decode_wire_bytes", decInBytes.Load())
		put("zcodec.encode_cpu_ns", encNanos.Load())
		put("zcodec.decode_cpu_ns", decNanos.Load())
		if out := encOutBytes.Load(); out > 0 {
			put("zcodec.encode_ratio_milli", encRawBytes.Load()*1000/out)
		} else {
			put("zcodec.encode_ratio_milli", 0)
		}
	})
}
