package zcodec

// bitWriter appends an MSB-first bit stream to a byte slice. It is a
// value type embedded in the encoders so steady-state encoding does
// not allocate beyond the destination buffer's own growth.
type bitWriter struct {
	buf []byte
	acc uint64
	n   uint // valid low-order bits in acc, always < 8 after write
}

// write appends the low `bits` bits of v, most significant first.
func (w *bitWriter) write(v uint64, bits uint) {
	if bits > 32 {
		w.write(v>>32, bits-32)
		v &= 0xffffffff
		bits = 32
	}
	w.acc = w.acc<<bits | v&(uint64(1)<<bits-1)
	w.n += bits
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.acc>>w.n))
	}
}

// finish flushes any partial byte (zero padded) and returns the buffer.
func (w *bitWriter) finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.n)))
		w.acc, w.n = 0, 0
	}
	return w.buf
}

// bitReader consumes an MSB-first bit stream.
type bitReader struct {
	buf []byte
	pos int
	acc uint64
	n   uint
}

// read returns the next `bits` bits, or ErrTruncated past the end.
func (r *bitReader) read(bits uint) (uint64, error) {
	if bits > 32 {
		hi, err := r.read(bits - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.read(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	for r.n < bits {
		if r.pos >= len(r.buf) {
			return 0, ErrTruncated
		}
		r.acc = r.acc<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
	r.n -= bits
	return r.acc >> r.n & (uint64(1)<<bits - 1), nil
}
