// Package zcodec implements the numeric block codecs negotiated by the
// PGIOP compression handshake: a Gorilla-style XOR codec for float64
// blocks and a zig-zag varint delta-of-delta codec for integer blocks.
//
// Both codecs target the smooth numeric payloads that dominate
// dsequence streaming: consecutive values whose bit patterns (floats)
// or magnitudes (integers) change slowly, so most of each 8-byte value
// is redundant. The encoded layout is byte-order independent (an
// explicit bit stream), so compressed chunks need no CDR order octet.
//
// Encoders append to a caller-supplied buffer and never allocate when
// the buffer has capacity; decoders are strict — truncated or corrupt
// blocks return an error, never panic, and never allocate more than
// the caller-supplied element bound.
package zcodec

import (
	"encoding/binary"
	"fmt"
)

// ID identifies one codec on the wire (one octet in the compressed
// chunk envelope and in wiredump output).
type ID uint8

const (
	// None means no compression was negotiated.
	None ID = 0
	// Delta is the zig-zag varint delta-of-delta codec for integer blocks.
	Delta ID = 1
	// XOR is the Gorilla-style XOR codec for float64 blocks.
	XOR ID = 2
)

// String returns the codec's wire name.
func (id ID) String() string {
	switch id {
	case None:
		return "none"
	case Delta:
		return "delta"
	case XOR:
		return "xor"
	default:
		return fmt.Sprintf("codec(%d)", uint8(id))
	}
}

// Codec-support bitmask, as advertised in the Ping/Pong handshake
// extension. One bit per codec so the intersection of two offers is a
// single AND. High bits are capability flags negotiated the same way:
// MaskSubBlock advertises that the peer's decoder understands the
// parallel sub-block chunk envelope (marker 0x03). A peer that predates
// sub-blocks simply never offers the bit, the AND strips it, and the
// sender falls back to single-block 0x02 envelopes — structural
// backward compatibility with no version handshake.
const (
	MaskDelta    uint8 = 1 << 0
	MaskXOR      uint8 = 1 << 1
	MaskAll            = MaskDelta | MaskXOR
	MaskSubBlock uint8 = 1 << 6

	// MaskCodecs selects the codec bits of a mask, excluding
	// capability flags.
	MaskCodecs = MaskAll
)

// Supported is the mask this build advertises: every codec plus the
// sub-block envelope capability.
const Supported = MaskAll | MaskSubBlock

// HasCodec reports whether mask admits the given codec.
func HasCodec(mask uint8, id ID) bool {
	switch id {
	case Delta:
		return mask&MaskDelta != 0
	case XOR:
		return mask&MaskXOR != 0
	default:
		return false
	}
}

// ParseMask parses a user-facing codec selection ("off", "delta",
// "xor", "all"/"auto") into a support mask. Codec selections other
// than "off" include the sub-block capability bit; negotiation strips
// it against peers that lack it.
func ParseMask(s string) (uint8, error) {
	switch s {
	case "", "off", "none":
		return 0, nil
	case "delta":
		return MaskDelta | MaskSubBlock, nil
	case "xor":
		return MaskXOR | MaskSubBlock, nil
	case "all", "auto", "always":
		return Supported, nil
	default:
		return 0, fmt.Errorf("zcodec: unknown codec %q (want off, delta, xor, or all)", s)
	}
}

// MaskString renders a support mask for logs and wiredump output.
func MaskString(mask uint8) string {
	if mask == 0 {
		return "off"
	}
	if mask&^(MaskCodecs|MaskSubBlock) != 0 {
		return fmt.Sprintf("mask(0x%02x)", mask)
	}
	var s string
	switch mask & MaskCodecs {
	case MaskDelta:
		s = "delta"
	case MaskXOR:
		s = "xor"
	case MaskAll:
		s = "all"
	default: // capability bits with no codec
		return fmt.Sprintf("mask(0x%02x)", mask)
	}
	if mask&MaskSubBlock != 0 {
		s += "+sub"
	}
	return s
}

// Policy selects how a negotiated codec mask is applied per transfer
// leg. The zero value is Auto.
type Policy uint8

const (
	// PolicyAuto compresses only when the bandwidth/throughput
	// estimator predicts a net win (see CompressionWins).
	PolicyAuto Policy = iota
	// PolicyAlways compresses whenever a codec is negotiated.
	PolicyAlways
	// PolicyNever disables compression entirely: no codecs are
	// offered or accepted.
	PolicyNever
)

// String returns the policy's user-facing name.
func (p Policy) String() string {
	switch p {
	case PolicyAuto:
		return "auto"
	case PolicyAlways:
		return "always"
	case PolicyNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParseMode parses a user-facing compression mode into a (mask,
// policy) pair: "off" disables, codec names ("delta", "xor", "all")
// pin PolicyAlways — preserving the pre-adaptive meaning of selecting
// a codec — and "auto" enables every codec under the adaptive policy.
func ParseMode(s string) (uint8, Policy, error) {
	mask, err := ParseMask(s)
	if err != nil {
		return 0, PolicyAuto, err
	}
	switch {
	case mask == 0:
		return 0, PolicyNever, nil
	case s == "auto":
		return mask, PolicyAuto, nil
	default:
		return mask, PolicyAlways, nil
	}
}

// Errors returned by the decoders. Both are deliberately values (not
// wrapped per call) so hot decode paths stay allocation-free.
var (
	ErrTruncated = fmt.Errorf("zcodec: truncated block")
	ErrCorrupt   = fmt.Errorf("zcodec: corrupt block")
	ErrTooLarge  = fmt.Errorf("zcodec: block element count exceeds bound")
	ErrCount     = fmt.Errorf("zcodec: block element count mismatch")
)

// MaxBlockElems bounds the element count a decoder will accept when
// the caller has no tighter bound; it caps the allocation a corrupt
// header can force.
const MaxBlockElems = 1 << 27

// BlockCount reads the element count every encoded block leads with,
// without decoding the body.
func BlockCount(src []byte) (int, error) {
	c, k := binary.Uvarint(src)
	if k <= 0 {
		return 0, ErrTruncated
	}
	if c > MaxBlockElems {
		return 0, ErrTooLarge
	}
	return int(c), nil
}

// DoublesBound returns the largest possible encoded size of an n-element
// float64 block: the count varint plus a worst case of 78 bits per value
// (2 control bits, 12 window bits, 64 payload bits).
func DoublesBound(n int) int { return 10 + 10*n }

// Int64sBound returns the largest possible encoded size of an n-element
// int64 block (10-byte varints throughout).
func Int64sBound(n int) int { return 10 + 10*n }

// Int32sBound returns the largest possible encoded size of an n-element
// int32 block (delta-of-delta of int32 values fits 5-byte varints).
func Int32sBound(n int) int { return 10 + 5*n }
