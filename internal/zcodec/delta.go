package zcodec

import (
	"encoding/binary"
	"time"
)

// Zig-zag varint delta-of-delta codec for integer blocks.
//
// Layout: uvarint element count, then the first value (zig-zag
// varint), the first delta (zig-zag varint), and one zig-zag varint
// delta-of-delta per remaining value. Linear ramps — the common shape
// of index-like integer payloads — collapse to one byte per value.
//
// All arithmetic is two's-complement wraparound in 64 bits on both
// sides, so blocks round-trip exactly even when deltas overflow.

// AppendInt64s appends the encoded block for vals to dst.
func AppendInt64s(dst []byte, vals []int64) []byte {
	t0 := time.Now()
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	var prev, prevDelta int64
	for i, v := range vals {
		switch i {
		case 0:
			dst = binary.AppendVarint(dst, v)
		case 1:
			prevDelta = v - prev
			dst = binary.AppendVarint(dst, prevDelta)
		default:
			d := v - prev
			dst = binary.AppendVarint(dst, d-prevDelta)
			prevDelta = d
		}
		prev = v
	}
	statEncode(8*len(vals), len(dst)-start, time.Since(t0))
	return dst
}

// AppendInt32s appends the encoded block for vals to dst.
func AppendInt32s(dst []byte, vals []int32) []byte {
	t0 := time.Now()
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	var prev, prevDelta int64
	for i, v := range vals {
		switch i {
		case 0:
			dst = binary.AppendVarint(dst, int64(v))
		case 1:
			prevDelta = int64(v) - prev
			dst = binary.AppendVarint(dst, prevDelta)
		default:
			d := int64(v) - prev
			dst = binary.AppendVarint(dst, d-prevDelta)
			prevDelta = d
		}
		prev = int64(v)
	}
	statEncode(4*len(vals), len(dst)-start, time.Since(t0))
	return dst
}

// DecodeInt64sInto decodes a block produced by AppendInt64s into dst,
// whose length must equal the encoded element count.
func DecodeInt64sInto(dst []int64, src []byte) error {
	t0 := time.Now()
	n, rest, err := intHeader(src, MaxBlockElems)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return ErrCount
	}
	used, err := decodeInt64sBody(dst, rest)
	if err != nil {
		return err
	}
	statDecode(8*len(dst), len(src)-len(rest)+used, time.Since(t0))
	return nil
}

// DecodeInt64s decodes a block produced by AppendInt64s, allocating
// the result, with maxElems bounding the accepted count.
func DecodeInt64s(src []byte, maxElems int) ([]int64, error) {
	t0 := time.Now()
	n, rest, err := intHeader(src, maxElems)
	if err != nil {
		return nil, err
	}
	dst := make([]int64, n)
	used, err := decodeInt64sBody(dst, rest)
	if err != nil {
		return nil, err
	}
	statDecode(8*n, len(src)-len(rest)+used, time.Since(t0))
	return dst, nil
}

// DecodeInt32sInto decodes a block produced by AppendInt32s into dst,
// whose length must equal the encoded element count.
func DecodeInt32sInto(dst []int32, src []byte) error {
	t0 := time.Now()
	n, rest, err := intHeader(src, MaxBlockElems)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return ErrCount
	}
	used, err := decodeInt32sBody(dst, rest)
	if err != nil {
		return err
	}
	statDecode(4*len(dst), len(src)-len(rest)+used, time.Since(t0))
	return nil
}

// DecodeInt32s decodes a block produced by AppendInt32s, allocating
// the result, with maxElems bounding the accepted count.
func DecodeInt32s(src []byte, maxElems int) ([]int32, error) {
	t0 := time.Now()
	n, rest, err := intHeader(src, maxElems)
	if err != nil {
		return nil, err
	}
	dst := make([]int32, n)
	used, err := decodeInt32sBody(dst, rest)
	if err != nil {
		return nil, err
	}
	statDecode(4*n, len(src)-len(rest)+used, time.Since(t0))
	return dst, nil
}

func intHeader(src []byte, maxElems int) (int, []byte, error) {
	c, k := binary.Uvarint(src)
	if k <= 0 {
		return 0, nil, ErrTruncated
	}
	if c > uint64(maxElems) || c > MaxBlockElems {
		return 0, nil, ErrTooLarge
	}
	return int(c), src[k:], nil
}

func decodeInt64sBody(dst []int64, src []byte) (int, error) {
	var prev, prevDelta int64
	pos := 0
	for i := range dst {
		v, k := binary.Varint(src[pos:])
		if k <= 0 {
			return 0, ErrTruncated
		}
		pos += k
		switch i {
		case 0:
			prev = v
		case 1:
			prevDelta = v
			prev += v
		default:
			prevDelta += v
			prev += prevDelta
		}
		dst[i] = prev
	}
	return pos, nil
}

func decodeInt32sBody(dst []int32, src []byte) (int, error) {
	var prev, prevDelta int64
	pos := 0
	for i := range dst {
		v, k := binary.Varint(src[pos:])
		if k <= 0 {
			return 0, ErrTruncated
		}
		pos += k
		switch i {
		case 0:
			prev = v
		case 1:
			prevDelta = v
			prev += v
		default:
			prevDelta += v
			prev += prevDelta
		}
		dst[i] = int32(prev)
	}
	return pos, nil
}
