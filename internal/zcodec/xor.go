package zcodec

import (
	"encoding/binary"
	"math"
	"math/bits"
	"time"
)

// Gorilla-style XOR codec for float64 blocks.
//
// Layout: uvarint element count, then a bit stream. The first value is
// 64 raw bits. Each subsequent value is XORed with its predecessor:
//
//	0                        — identical to predecessor
//	10 <sig bits>            — meaningful bits fit the previous window
//	11 <6:lead> <6:sig-1> <sig bits>
//	                         — new window: leading-zero count and
//	                           significant-bit count, then the bits
//
// Smooth data keeps the window narrow, so most values cost a handful
// of bits instead of 64.

// AppendDoubles appends the encoded block for vals to dst and returns
// the extended slice. It allocates only if dst lacks capacity.
func AppendDoubles(dst []byte, vals []float64) []byte {
	t0 := time.Now()
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	w := bitWriter{buf: dst}
	prev := math.Float64bits(vals[0])
	w.write(prev, 64)
	lead, sig := uint(0xff), uint(0) // invalid window: first XOR opens one
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.write(0, 1)
			continue
		}
		l := uint(bits.LeadingZeros64(x))
		if l > 63 {
			l = 63
		}
		t := uint(bits.TrailingZeros64(x))
		s := 64 - l - t
		if lead != 0xff && l >= lead && t >= 64-lead-sig {
			// Previous window still covers the meaningful bits.
			w.write(2, 2)
			w.write(x>>(64-lead-sig), sig)
			continue
		}
		lead, sig = l, s
		w.write(3, 2)
		w.write(uint64(l), 6)
		w.write(uint64(s-1), 6)
		w.write(x>>t, s)
	}
	out := w.finish()
	statEncode(8*len(vals), len(out)-start, time.Since(t0))
	return out
}

// DecodeDoublesInto decodes a block produced by AppendDoubles into
// dst, whose length must equal the encoded element count.
func DecodeDoublesInto(dst []float64, src []byte) error {
	n, err := decodeDoublesHeader(src, MaxBlockElems)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return ErrCount
	}
	return decodeDoublesBody(dst, src)
}

// DecodeDoubles decodes a block produced by AppendDoubles, allocating
// the result. maxElems bounds the accepted element count (pass
// MaxBlockElems when no tighter bound is known).
func DecodeDoubles(src []byte, maxElems int) ([]float64, error) {
	n, err := decodeDoublesHeader(src, maxElems)
	if err != nil {
		return nil, err
	}
	dst := make([]float64, n)
	if err := decodeDoublesBody(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

func decodeDoublesHeader(src []byte, maxElems int) (int, error) {
	c, k := binary.Uvarint(src)
	if k <= 0 {
		return 0, ErrTruncated
	}
	if c > uint64(maxElems) || c > MaxBlockElems {
		return 0, ErrTooLarge
	}
	return int(c), nil
}

func decodeDoublesBody(dst []float64, src []byte) error {
	t0 := time.Now()
	_, k := binary.Uvarint(src)
	if len(dst) == 0 {
		statDecode(0, k, time.Since(t0))
		return nil
	}
	r := bitReader{buf: src[k:]}
	bitsv, err := r.read(64)
	if err != nil {
		return err
	}
	prev := bitsv
	dst[0] = math.Float64frombits(prev)
	lead, sig := uint(0), uint(0)
	haveWindow := false
	for i := 1; i < len(dst); i++ {
		b, err := r.read(1)
		if err != nil {
			return err
		}
		if b == 0 {
			dst[i] = math.Float64frombits(prev)
			continue
		}
		b, err = r.read(1)
		if err != nil {
			return err
		}
		if b == 1 {
			l, err := r.read(6)
			if err != nil {
				return err
			}
			s, err := r.read(6)
			if err != nil {
				return err
			}
			lead, sig = uint(l), uint(s)+1
			haveWindow = true
			if lead+sig > 64 {
				return ErrCorrupt
			}
		} else if !haveWindow {
			return ErrCorrupt
		}
		m, err := r.read(sig)
		if err != nil {
			return err
		}
		prev ^= m << (64 - lead - sig)
		dst[i] = math.Float64frombits(prev)
	}
	statDecode(8*len(dst), k+r.pos, time.Since(t0))
	return nil
}
