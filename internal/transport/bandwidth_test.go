package transport

import (
	"math"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestWriteBandwidthEWMA(t *testing.T) {
	c := &Conn{}
	if c.WriteBandwidth() != 0 {
		t.Fatal("fresh conn reports nonzero bandwidth")
	}
	// Samples below the size floor or without elapsed time must not count.
	c.noteWrite(bwMinSampleBytes-1, time.Second)
	c.noteWrite(1<<20, 0)
	if c.WriteBandwidth() != 0 {
		t.Fatal("undersized/zero-duration samples moved the estimate")
	}
	// First sample seeds the EWMA directly: 1 MiB in 10ms = 100 MiB/s.
	c.noteWrite(1<<20, 10*time.Millisecond)
	first := c.WriteBandwidth()
	want := float64(1<<20) / 0.010
	if math.Abs(first-want) > want*1e-9 {
		t.Fatalf("first sample = %.0f B/s, want %.0f", first, want)
	}
	// A second, slower sample blends in at bwAlpha.
	c.noteWrite(1<<20, 100*time.Millisecond)
	slow := float64(1<<20) / 0.100
	wantBlend := first + bwAlpha*(slow-first)
	if got := c.WriteBandwidth(); math.Abs(got-wantBlend) > wantBlend*1e-9 {
		t.Fatalf("blended estimate = %.0f B/s, want %.0f", got, wantBlend)
	}
}

func TestWriteBandwidthMeasuredOnDataWrites(t *testing.T) {
	a, b := Pipe(nil)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 64<<10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			m, err := b.ReadMessage()
			if err != nil {
				return
			}
			if d, ok := m.(*wire.Data); ok {
				d.Release()
			}
		}
	}()
	for i := 0; i < 4; i++ {
		if err := a.WriteMessage(&wire.Data{RequestID: uint32(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if a.WriteBandwidth() <= 0 {
		t.Fatal("Data writes produced no bandwidth estimate")
	}
	// The reader never writes: its estimate must remain unset.
	if b.WriteBandwidth() != 0 {
		t.Fatal("read-only side acquired a bandwidth estimate")
	}
}
