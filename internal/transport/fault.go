package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks failures produced by a FaultInjector rather than the
// real network. Chaos tests match on it to tell injected faults from
// accidental ones.
var ErrInjected = errors.New("transport: injected fault")

// FaultPlan is a deterministic, seed-driven fault schedule. A plan is a
// value; Wrap stamps out one FaultInjector per connection, each with its own
// seed derived from Seed and the connection's ordinal, so a multi-connection
// run (multi-port SPMD traffic) faults reproducibly without every connection
// failing identically.
//
// The zero plan injects nothing. Counters are per connection.
type FaultPlan struct {
	// Seed drives every random choice (corruption positions, delay jitter).
	Seed int64

	// Delay is added to every DelayEveryth write (1 = every write).
	Delay      time.Duration
	DelayEvery int

	// CorruptEvery flips one random bit in every Nth written chunk,
	// producing corrupt headers or bodies on the peer's decoder.
	CorruptEvery int

	// DropEvery silently discards every Nth written chunk (the bytes vanish
	// mid-stream, desynchronizing the peer's framing).
	DropEvery int

	// CutAfterWriteBytes hard-closes the stream once this many bytes have
	// been written; the write that crosses the boundary is truncated first,
	// so the peer sees a frame cut mid-body. Zero disables.
	CutAfterWriteBytes int64

	// CutAfterReadBytes hard-closes the stream once this many bytes have
	// been read. Zero disables.
	CutAfterReadBytes int64

	// FaultConns bounds how many connections the plan faults: only the
	// first FaultConns streams handed to Wrap get the schedule above; later
	// ones pass through clean. Zero faults every connection. This models a
	// peer that drops a connection once and then recovers, the case
	// reconnect+backoff must survive.
	FaultConns int

	// conns counts streams wrapped so far (shared across copies made by
	// Wrap via pointer).
	conns *atomic.Int64
}

// NewFaultPlan returns a plan with the given seed and no faults enabled;
// callers fill in the schedule fields they want.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{Seed: seed, conns: new(atomic.Int64)}
}

// Wrap implements the Options.Wrap hook: it returns rw wrapped in a
// FaultInjector following this plan. Safe for concurrent use.
func (p *FaultPlan) Wrap(rw io.ReadWriteCloser) io.ReadWriteCloser {
	if p.conns == nil {
		p.conns = new(atomic.Int64)
	}
	n := p.conns.Add(1)
	if p.FaultConns > 0 && n > int64(p.FaultConns) {
		return rw
	}
	return NewFaultInjector(rw, *p, p.Seed+n)
}

// Wrapped reports how many streams the plan has wrapped (faulted or clean).
func (p *FaultPlan) Wrapped() int {
	if p.conns == nil {
		return 0
	}
	return int(p.conns.Load())
}

// FaultInjector wraps a byte stream and injects faults per a FaultPlan. It
// implements io.ReadWriteCloser, so it slots between a Conn and its
// underlying TCP or pipe stream. All faults are deterministic functions of
// the plan, the seed, and the byte/operation counters, which makes chaos
// failures replayable.
type FaultInjector struct {
	inner io.ReadWriteCloser
	plan  FaultPlan

	mu         sync.Mutex
	rng        *rand.Rand
	readBytes  int64
	writeBytes int64
	writes     int64
	cut        bool
}

// NewFaultInjector wraps rw with the given plan and seed.
func NewFaultInjector(rw io.ReadWriteCloser, plan FaultPlan, seed int64) *FaultInjector {
	return &FaultInjector{inner: rw, plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// Read passes reads through until the read-cut point, after which the stream
// is hard-closed and reads fail.
func (f *FaultInjector) Read(p []byte) (int, error) {
	f.mu.Lock()
	if f.cut {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: stream cut", ErrInjected)
	}
	limit := len(p)
	if c := f.plan.CutAfterReadBytes; c > 0 {
		remain := c - f.readBytes
		if remain <= 0 {
			f.cutLocked()
			f.mu.Unlock()
			return 0, fmt.Errorf("%w: read cut after %d bytes", ErrInjected, c)
		}
		if int64(limit) > remain {
			limit = int(remain)
		}
	}
	f.mu.Unlock()

	n, err := f.inner.Read(p[:limit])

	f.mu.Lock()
	f.readBytes += int64(n)
	if c := f.plan.CutAfterReadBytes; c > 0 && f.readBytes >= c {
		f.cutLocked()
		if err == nil {
			err = fmt.Errorf("%w: read cut after %d bytes", ErrInjected, c)
		}
	}
	f.mu.Unlock()
	return n, err
}

// Write applies the plan to the outgoing chunk: delay, drop, corrupt, or
// truncate-and-cut. A dropped or corrupted write still reports full success
// to the caller — exactly what a buffered kernel socket does when the wire
// eats the bytes later.
func (f *FaultInjector) Write(p []byte) (int, error) {
	f.mu.Lock()
	if f.cut {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: stream cut", ErrInjected)
	}
	f.writes++
	var delay time.Duration
	if f.plan.Delay > 0 && f.plan.DelayEvery > 0 && f.writes%int64(f.plan.DelayEvery) == 0 {
		delay = f.plan.Delay
	}
	drop := f.plan.DropEvery > 0 && f.writes%int64(f.plan.DropEvery) == 0

	chunk := p
	corrupt := f.plan.CorruptEvery > 0 && f.writes%int64(f.plan.CorruptEvery) == 0
	if corrupt && len(p) > 0 {
		chunk = append([]byte(nil), p...)
		bit := f.rng.Intn(len(chunk) * 8)
		chunk[bit/8] ^= 1 << (bit % 8)
	}

	truncate := -1
	if c := f.plan.CutAfterWriteBytes; c > 0 {
		remain := c - f.writeBytes
		if remain <= 0 {
			f.cutLocked()
			f.mu.Unlock()
			return 0, fmt.Errorf("%w: write cut after %d bytes", ErrInjected, c)
		}
		if int64(len(chunk)) >= remain {
			truncate = int(remain)
		}
	}
	f.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		f.mu.Lock()
		f.writeBytes += int64(len(p))
		f.mu.Unlock()
		return len(p), nil
	}
	if truncate >= 0 {
		// Deliver the leading bytes, then kill the stream: the peer sees a
		// frame truncated mid-body.
		if truncate > 0 {
			f.inner.Write(chunk[:truncate])
		}
		f.mu.Lock()
		f.writeBytes += int64(truncate)
		f.cutLocked()
		f.mu.Unlock()
		return truncate, fmt.Errorf("%w: write cut after %d bytes", ErrInjected, f.plan.CutAfterWriteBytes)
	}

	n, err := f.inner.Write(chunk)
	f.mu.Lock()
	f.writeBytes += int64(n)
	f.mu.Unlock()
	return n, err
}

// cutLocked hard-closes the underlying stream. Callers hold f.mu.
func (f *FaultInjector) cutLocked() {
	if !f.cut {
		f.cut = true
		f.inner.Close()
	}
}

// Cut hard-closes the stream immediately, independent of the schedule.
func (f *FaultInjector) Cut() {
	f.mu.Lock()
	f.cutLocked()
	f.mu.Unlock()
}

// Close closes the underlying stream.
func (f *FaultInjector) Close() error {
	f.mu.Lock()
	already := f.cut
	f.cut = true
	f.mu.Unlock()
	if already {
		return nil
	}
	return f.inner.Close()
}

// Stats reports the byte counters, for tests asserting schedule progress.
func (f *FaultInjector) Stats() (readBytes, writeBytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readBytes, f.writeBytes
}
