package transport

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestAcceptAfterClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err == nil {
		t.Fatal("Accept succeeded on a closed listener")
	}
}

func TestDoubleConnClose(t *testing.T) {
	a, b := Pipe(nil)
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPipeBufferReadAfterClose(t *testing.T) {
	pb := newPipeBuffer()
	if _, err := pb.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	pb.close()
	// Buffered bytes drain first...
	buf := make([]byte, 16)
	n, err := pb.Read(buf)
	if n != 4 || err != nil || string(buf[:4]) != "tail" {
		t.Fatalf("drain: n=%d err=%v buf=%q", n, err, buf[:n])
	}
	// ...then EOF, and writes are refused.
	if _, err := pb.Read(buf); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if _, err := pb.Write([]byte("more")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: want ErrClosed, got %v", err)
	}
}

func TestBlockedReadUnblockedByClose(t *testing.T) {
	a, b := Pipe(nil)
	defer b.Close()

	errs := make(chan error, 1)
	go func() {
		_, err := a.ReadMessage()
		errs <- err
	}()
	// Give the reader time to block on the empty pipe, then close under it.
	time.Sleep(50 * time.Millisecond)
	a.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked ReadMessage not released by Close")
	}
}

// TestPerConnMaxFrameSize checks the limit is a property of each Conn: a
// writer with default limits can emit a frame that a size-limited reader
// must reject before allocating the body.
func TestPerConnMaxFrameSize(t *testing.T) {
	ab, ba := newPipeBuffer(), newPipeBuffer()
	writer := NewConn(&pipeEnd{r: ba, w: ab}, nil)
	reader := NewConn(&pipeEnd{r: ab, w: ba}, &Options{MaxFrameSize: 64})
	defer writer.Close()
	defer reader.Close()

	if err := writer.WriteMessage(&wire.Data{RequestID: 1, Payload: make([]byte, 128)}); err != nil {
		t.Fatalf("unlimited writer refused a small message: %v", err)
	}
	if _, err := reader.ReadMessage(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limited reader: want ErrTooLarge, got %v", err)
	}
	// The limited side also refuses to send oversize bodies.
	if err := reader.WriteMessage(&wire.Data{RequestID: 2, Payload: make([]byte, 128)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limited writer: want ErrTooLarge, got %v", err)
	}
}
