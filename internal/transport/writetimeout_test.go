package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestWriteTimeoutUnsticksSlowReader pins the slow-client defence: a peer
// that stops reading eventually backs TCP up into our writer, and without a
// deadline the write blocks forever. With Options.WriteTimeout set, the
// write must fail within roughly the timeout.
func TestWriteTimeoutUnsticksSlowReader(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c // held open, never read: the classic stuck client
		}
	}()

	conn, err := Dial(lis.Addr().String(), &Options{WriteTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	defer func() {
		select {
		case c := <-accepted:
			c.Close()
		default:
		}
	}()

	// Big payloads overwhelm both socket buffers, so some WriteMessage call
	// must block on the stuck peer and be released by the deadline.
	payload := make([]byte, 1<<20)
	start := time.Now()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err = conn.WriteMessage(&wire.Data{RequestID: 1, Count: uint64(len(payload) / 8), Payload: payload})
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes to a stuck reader kept succeeding")
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("write deadline fired after %v, want well under the fallback", elapsed)
	}
	if nerr, ok := err.(net.Error); ok && !nerr.Timeout() {
		t.Fatalf("write failed with a non-timeout error: %v", err)
	}
}
