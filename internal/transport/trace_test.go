package transport

import (
	"sync"
	"testing"

	"repro/internal/wire"
)

// frameLog collects inbound frame headers via Options.FrameHook.
type frameLog struct {
	mu     sync.Mutex
	frames []wire.Header
}

func (l *frameLog) hook(h wire.Header) {
	l.mu.Lock()
	l.frames = append(l.frames, h)
	l.mu.Unlock()
}

func (l *frameLog) snapshot() []wire.Header {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]wire.Header(nil), l.frames...)
}

// tracePipe builds a pipe whose writer stamps trace-context extensions and
// whose reader logs every frame header.
func tracePipe(t *testing.T, log *frameLog) (w, r *Conn) {
	t.Helper()
	// Pipe shares one Options for both ends; build the ends separately so
	// only the writer stamps and only the reader hooks.
	a2b := newPipeBuffer()
	b2a := newPipeBuffer()
	w = NewConn(&pipeEnd{r: b2a, w: a2b}, &Options{TraceHeaders: true, FragmentThreshold: 64})
	r = NewConn(&pipeEnd{r: a2b, w: b2a}, &Options{FrameHook: log.hook, FragmentThreshold: 64})
	return w, r
}

func TestTraceHeadersStampEveryFrame(t *testing.T) {
	var log frameLog
	w, r := tracePipe(t, &log)
	defer w.Close()
	defer r.Close()

	// A small Request: one frame.
	req := &wire.Request{RequestID: 71, ResponseExpected: true, ObjectKey: []byte("k"), Operation: "op"}
	if err := w.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got.(*wire.Request).RequestID != 71 {
		t.Fatalf("request corrupted: %+v", got)
	}

	// A Data message big enough to fragment: every frame, Fragments
	// included, must carry the same trace id.
	payload := make([]byte, 300)
	d := &wire.Data{RequestID: 72, Count: uint64(len(payload)), Payload: payload}
	if err := w.WriteMessage(d); err != nil {
		t.Fatal(err)
	}
	dm, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	rd := dm.(*wire.Data)
	if rd.RequestID != 72 || len(rd.Payload) != len(payload) {
		t.Fatalf("data corrupted: id=%d len=%d", rd.RequestID, len(rd.Payload))
	}
	rd.Release()

	frames := log.snapshot()
	if len(frames) < 3 {
		t.Fatalf("expected request + fragmented data frames, saw %d", len(frames))
	}
	if !frames[0].HasTrace() || frames[0].Trace != 71 {
		t.Fatalf("request frame trace = %+v, want 71", frames[0])
	}
	sawFragment := false
	for _, h := range frames[1:] {
		if !h.HasTrace() || h.Trace != 72 {
			t.Fatalf("data frame lost its trace: %+v", h)
		}
		if h.Type == wire.MsgFragment {
			sawFragment = true
		}
	}
	if !sawFragment {
		t.Fatal("payload did not fragment; threshold misconfigured")
	}
}

func TestUntracedPeerInteroperates(t *testing.T) {
	// Writer predates the extension (TraceHeaders off); reader is current.
	var log frameLog
	a2b := newPipeBuffer()
	b2a := newPipeBuffer()
	w := NewConn(&pipeEnd{r: b2a, w: a2b}, nil)
	r := NewConn(&pipeEnd{r: a2b, w: b2a}, &Options{FrameHook: log.hook})
	defer w.Close()
	defer r.Close()

	if err := w.WriteMessage(&wire.Reply{RequestID: 9, Status: wire.ReplyNoException}); err != nil {
		t.Fatal(err)
	}
	m, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if m.(*wire.Reply).RequestID != 9 {
		t.Fatalf("reply corrupted: %+v", m)
	}
	frames := log.snapshot()
	if len(frames) != 1 || frames[0].HasTrace() || frames[0].Trace != 0 {
		t.Fatalf("old-format frame grew a trace: %+v", frames)
	}
}

func TestTracedMessagesWithoutRequestIDCarryZero(t *testing.T) {
	var log frameLog
	w, r := tracePipe(t, &log)
	defer w.Close()
	defer r.Close()
	if err := w.WriteMessage(&wire.Ping{Nonce: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMessage(); err != nil {
		t.Fatal(err)
	}
	frames := log.snapshot()
	if len(frames) != 1 || !frames[0].HasTrace() || frames[0].Trace != 0 {
		t.Fatalf("ping frame = %+v, want trace ext with 0", frames)
	}
}

func TestPoolStatsMove(t *testing.T) {
	before := PoolStats()
	p := getBuf(1 << minPoolClass)
	putBuf(p)
	p2 := getBuf(1 << minPoolClass) // likely a hit now that one is pooled
	putBuf(p2)
	after := PoolStats()
	if after.Hits+after.Misses <= before.Hits+before.Misses {
		t.Fatalf("getBuf did not count: %+v -> %+v", before, after)
	}
	if after.Puts < before.Puts+2 {
		t.Fatalf("putBuf did not count: %+v -> %+v", before, after)
	}
	// Oversize buffers are misses and are never pooled.
	big := getBuf(1<<maxPoolClass + 1)
	putBuf(big)
	final := PoolStats()
	if final.Misses != after.Misses+1 {
		t.Fatalf("oversize getBuf not a miss: %+v -> %+v", after, final)
	}
	if final.Puts != after.Puts {
		t.Fatalf("oversize putBuf counted as pooled: %+v -> %+v", after, final)
	}
}
