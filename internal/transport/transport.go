// Package transport moves PGIOP messages over byte streams.
//
// It provides the network plumbing the paper gets from NexusLite: framed,
// ordered delivery of wire messages over TCP connections (one per
// client-thread/server-thread pair in the multi-port method, a single one in
// the centralized method), plus an in-process pipe transport for tests and
// co-located components.
//
// Large message bodies are transparently split into PGIOP Fragment frames on
// write and reassembled on read, so higher layers see whole messages
// regardless of size. Writes from multiple goroutines are serialized per
// connection; fragments of one message are never interleaved with another
// message's frames.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/wire"
)

// Errors reported by this package.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrTooLarge    = errors.New("transport: message exceeds size limit")
	ErrBadFragment = errors.New("transport: fragment sequencing violation")
)

const (
	// DefaultFragmentThreshold is the largest body sent in a single frame;
	// bigger bodies are fragmented. 256 KiB keeps frames small enough to
	// interleave fairly on a shared link, the property the paper's
	// multi-port experiments depend on.
	DefaultFragmentThreshold = 256 << 10
	// MaxMessageSize bounds a reassembled body. It is deliberately far
	// above any benchmark's needs (a 2^19-double sequence is 4 MiB).
	MaxMessageSize = 1 << 30
)

// maxMessageSize is the enforced limit; tests lower it to exercise the
// oversize paths without allocating gigabyte buffers.
var maxMessageSize = MaxMessageSize

// Options configure a Conn.
type Options struct {
	// Order is the byte order this side produces. Zero value (BigEndian)
	// is valid; NewConn defaults to cdr.NativeOrder when Options is nil.
	Order cdr.ByteOrder
	// FragmentThreshold overrides DefaultFragmentThreshold when > 0.
	FragmentThreshold int
	// MaxFrameSize bounds both a single frame's declared body length and a
	// reassembled message, overriding MaxMessageSize when > 0. A frame
	// header claiming more is rejected before any allocation, so a corrupt
	// or hostile header cannot force an unbounded make([]byte, size).
	MaxFrameSize int
	// Wrap, when set, is applied to the underlying byte stream before
	// framing. Fault-injection tests use it to slot a FaultInjector between
	// the Conn and the real network.
	Wrap func(io.ReadWriteCloser) io.ReadWriteCloser
	// WriteTimeout bounds each WriteMessage call when the underlying stream
	// supports write deadlines (TCP does; the in-process pipe, which never
	// blocks on writes, does not need them). A peer that stops reading then
	// fails the writer with a deadline error instead of wedging it — and
	// every other goroutine queued on the connection's write lock — forever.
	// Zero disables.
	WriteTimeout time.Duration
	// TraceHeaders stamps every outbound frame with the PGIOP trace-context
	// header extension carrying the message's request id, Fragment frames
	// included, so per-frame tooling can attribute bytes to invocations
	// without decoding bodies. Inbound extensions are always understood,
	// whether or not this side stamps its own; peers predating the extension
	// reject it, so enable only on connections whose peer runs this code.
	TraceHeaders bool
	// FrameHook, when set, observes every inbound frame header (with
	// Header.Trace populated from the extension) before the body is read.
	// It runs on the reading goroutine; keep it cheap.
	FrameHook func(h wire.Header)
}

// writeDeadliner is the optional deadline surface of an underlying stream
// (satisfied by net.Conn). It is captured before Options.Wrap is applied, so
// fault-injection wrappers do not hide it.
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// Conn is a framed PGIOP connection over any byte stream. WriteMessage is
// safe for concurrent use; ReadMessage must be called from one goroutine at
// a time.
type Conn struct {
	rw       io.ReadWriteCloser
	br       *bufio.Reader
	bw       *bufio.Writer
	order    cdr.ByteOrder
	frag     int
	max      int
	wd       writeDeadliner
	wtimeout time.Duration
	trace    bool
	hook     func(h wire.Header)
	ext      [wire.TraceExtLen]byte // scratch for inbound trace extensions (reader-owned)

	// vectored enables the gathered-write (writev) Data path. Only real TCP
	// connections qualify: on any other stream net.Buffers degrades to one
	// Write call per slice, which changes the write granularity that
	// fault-injection wrappers and the in-process pipe meter by.
	vectored bool

	wmu    sync.Mutex
	enc    *cdr.Encoder            // scratch body encoder, guarded by wmu
	vec    [][]byte                // scratch iovec for vectored writes, guarded by wmu
	harena []byte                  // scratch frame-header arena backing vec, guarded by wmu
	hdr    [wire.MaxHeaderLen]byte // scratch frame header (+ extension), guarded by wmu
	closed bool
	cmu    sync.Mutex

	// comp holds the compression state negotiated by the Ping/Pong
	// handshake: the accepted zcodec bitmask in the low byte and the
	// level in the next. Zero until (unless) the handshake succeeds, so
	// un-negotiated connections read as "raw frames only". Stored on the
	// Conn because both orb endpoints and the core data plane need the
	// same per-connection answer.
	comp atomic.Uint32

	// wbw is an EWMA of this connection's effective write bandwidth in
	// bytes/sec (float64 bits), fed by Data writes large enough to
	// measure. Zero until the first sample. The adaptive compression
	// policy reads it to decide whether a codec can outrun the link.
	wbw atomic.Uint64
}

// Write-bandwidth estimator tuning: samples below bwMinSampleBytes are
// dominated by fixed per-write costs and are skipped; bwAlpha is the
// EWMA smoothing factor (higher adapts faster, noisier).
const (
	bwMinSampleBytes = 4096
	bwAlpha          = 0.25
)

// noteWrite folds one timed Data write into the bandwidth EWMA.
func (c *Conn) noteWrite(n int, dur time.Duration) {
	if n < bwMinSampleBytes || dur <= 0 {
		return
	}
	bps := float64(n) / dur.Seconds()
	for {
		old := c.wbw.Load()
		est := bps
		if prev := math.Float64frombits(old); prev > 0 {
			est = prev + bwAlpha*(bps-prev)
		}
		if c.wbw.CompareAndSwap(old, math.Float64bits(est)) {
			return
		}
	}
}

// WriteBandwidth returns the estimated effective write bandwidth of
// this connection in bytes/sec, or 0 before any measurable Data write.
func (c *Conn) WriteBandwidth() float64 {
	return math.Float64frombits(c.wbw.Load())
}

// SetCompression records the negotiated codec bitmask and level for this
// connection. Called once by whichever endpoint completes the handshake.
func (c *Conn) SetCompression(codecs, level uint8) {
	c.comp.Store(uint32(codecs) | uint32(level)<<8)
}

// Compression returns the negotiated codec bitmask and level; both zero
// when no handshake has completed on this connection.
func (c *Conn) Compression() (codecs, level uint8) {
	v := c.comp.Load()
	return uint8(v), uint8(v >> 8)
}

// Frame-buffer pool. Read frames borrow power-of-two-capacity buffers from
// per-size-class pools instead of allocating per frame. Ownership is
// explicit: a pooled buffer is returned by putBuf exactly once, either by
// the transport itself after copying a fragment into the reassembly
// accumulator, or by the consumer of a Data message via Data.Release once
// the payload has been copied out. Only MsgData and MsgFragment frames use
// pooled buffers — every other message type's body is aliased and retained
// by higher layers (Request.Args, Reply.Args, ...), so those frames keep
// plain allocations that the garbage collector owns.
const (
	minPoolClass = 9  // 512 B: smaller frames are cheap to allocate
	maxPoolClass = 22 // 4 MiB: covers reassembled benchmark payloads
)

var bufPools [maxPoolClass + 1]sync.Pool

// Frame-pool counters, exported through PoolStats so the observability
// layer can pull them into a metrics snapshot. A hit is a getBuf served from
// a pool; a miss is a fresh allocation (cold pool or oversize); a put is a
// buffer actually returned to a pool.
var (
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
	poolPuts   atomic.Uint64
	// poolReturns counts every putBuf of a live buffer, whether or not the
	// buffer re-enters a pool (grown and oversize buffers are dropped to the
	// GC but still count as returned). Borrows (hits+misses) minus returns is
	// therefore the number of buffers currently on loan — the balance the
	// leak-checked suites assert returns to its baseline after a drain.
	poolReturns atomic.Uint64
)

// PoolStat is a point-in-time copy of the frame-pool counters.
type PoolStat struct {
	Hits, Misses, Puts uint64
	// Returns counts buffers handed back (pooled or GC-dropped).
	Returns uint64
}

// Outstanding is the number of borrowed frame buffers not yet returned. A
// quiescent process (no in-flight messages, all Data consumers done) owes the
// pool nothing, so a non-zero steady-state value is a frame leak.
func (s PoolStat) Outstanding() int64 {
	return int64(s.Hits+s.Misses) - int64(s.Returns)
}

// PoolStats reads the cumulative frame-pool counters. They are process-wide:
// the pools are shared by every connection.
func PoolStats() PoolStat {
	return PoolStat{
		Hits:    poolHits.Load(),
		Misses:  poolMisses.Load(),
		Puts:    poolPuts.Load(),
		Returns: poolReturns.Load(),
	}
}

// PoolOutstanding is a convenience for leak checks: the current borrow
// balance of the process-wide frame pool.
func PoolOutstanding() int64 { return PoolStats().Outstanding() }

// poolClass returns the smallest class whose buffers hold n bytes.
func poolClass(n int) int {
	c := minPoolClass
	for 1<<c < n {
		c++
	}
	return c
}

// getBuf returns a buffer of length n. Buffers over the largest pool class
// are plain allocations; putBuf recognizes and drops them.
func getBuf(n int) *[]byte {
	if n > 1<<maxPoolClass {
		poolMisses.Add(1)
		b := make([]byte, n)
		return &b
	}
	cl := poolClass(n)
	if p, ok := bufPools[cl].Get().(*[]byte); ok {
		poolHits.Add(1)
		*p = (*p)[:n]
		return p
	}
	poolMisses.Add(1)
	b := make([]byte, n, 1<<cl)
	return &b
}

// putBuf returns a buffer to its size-class pool. Buffers whose capacity is
// not an exact pool class (grown by append, oversize, or foreign) are left
// to the garbage collector.
func putBuf(p *[]byte) {
	if p == nil {
		return
	}
	poolReturns.Add(1)
	c := cap(*p)
	if c < 1<<minPoolClass || c > 1<<maxPoolClass || c&(c-1) != 0 {
		return
	}
	*p = (*p)[:0]
	bufPools[poolClass(c)].Put(p)
	poolPuts.Add(1)
}

// NewConn wraps a byte stream in PGIOP framing.
func NewConn(rw io.ReadWriteCloser, opts *Options) *Conn {
	wd, _ := rw.(writeDeadliner)
	_, isTCP := rw.(*net.TCPConn)
	if opts != nil && opts.Wrap != nil {
		rw = opts.Wrap(rw)
		isTCP = false
	}
	c := &Conn{
		vectored: isTCP,
		rw:       rw,
		br:       bufio.NewReaderSize(rw, 64<<10),
		bw:       bufio.NewWriterSize(rw, 64<<10),
		order:    cdr.NativeOrder,
		frag:     DefaultFragmentThreshold,
		max:      maxMessageSize,
	}
	if opts != nil {
		c.order = opts.Order
		if opts.FragmentThreshold > 0 {
			c.frag = opts.FragmentThreshold
		}
		if opts.MaxFrameSize > 0 {
			c.max = opts.MaxFrameSize
		}
		if opts.WriteTimeout > 0 {
			c.wd = wd
			c.wtimeout = opts.WriteTimeout
		}
		c.trace = opts.TraceHeaders
		c.hook = opts.FrameHook
	}
	return c
}

// WriteMessage encodes and sends m, fragmenting the body when it exceeds
// the connection's threshold. Data messages take a vectored write path that
// hands the payload slice to the socket directly; everything else is encoded
// into a per-connection scratch buffer (reused across messages) and written
// through the buffered writer.
func (c *Conn) WriteMessage(m wire.Message) error {
	if d, ok := m.(*wire.Data); ok {
		return c.writeData(d)
	}

	c.wmu.Lock()
	defer c.wmu.Unlock()
	e := c.scratch()
	m.EncodeBody(e)
	b := e.Bytes()
	if len(b) > c.max {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(b))
	}
	if c.isClosed() {
		return ErrClosed
	}
	if c.wd != nil {
		// The deadline covers the whole message (all fragments and the
		// flush); a deadline error leaves the stream mid-frame, so callers
		// must treat it as fatal to the connection.
		_ = c.wd.SetWriteDeadline(time.Now().Add(c.wtimeout))
		defer c.wd.SetWriteDeadline(time.Time{})
	}
	err := c.writeFrames(m.Type(), b, c.traceOf(m), 0)
	c.dropHugeScratch()
	return err
}

// traceOf returns the trace id to stamp on m's frames: the message's
// request id when trace-context headers are enabled, zero otherwise (and
// for the few message types that carry no id).
func (c *Conn) traceOf(m wire.Message) uint64 {
	if !c.trace {
		return 0
	}
	id, _ := wire.RequestIDOf(m)
	return uint64(id)
}

// scratch returns the connection's reusable body encoder, reset. Callers
// must hold wmu.
func (c *Conn) scratch() *cdr.Encoder {
	if c.enc == nil {
		c.enc = cdr.NewEncoder(c.order)
	}
	c.enc.Reset()
	return c.enc
}

// dropHugeScratch releases the scratch encoder when a one-off giant message
// has grown it past the pool ceiling, so an idle connection does not pin
// megabytes. Callers must hold wmu.
func (c *Conn) dropHugeScratch() {
	if c.enc != nil && c.enc.Cap() > 1<<maxPoolClass {
		c.enc = nil
	}
}

// writeFrames sends an already-encoded body through the buffered writer,
// splitting it at the fragment threshold. xflags is OR'd into every frame
// header's flag byte (the stream-chunk marker). Callers must hold wmu.
func (c *Conn) writeFrames(t wire.MsgType, b []byte, trace uint64, xflags byte) error {
	writeFrame := func(t wire.MsgType, more bool, chunk []byte) error {
		// The header goes through the connection's scratch array: a local
		// header array would be heap-allocated per frame because it
		// escapes into the io.Writer call.
		n := wire.EncodeHeaderExt(&c.hdr, t, c.order, more, c.trace, len(chunk), trace)
		c.hdr[5] |= xflags
		if _, err := c.bw.Write(c.hdr[:n]); err != nil {
			return err
		}
		_, err := c.bw.Write(chunk)
		return err
	}

	if len(b) <= c.frag {
		if err := writeFrame(t, false, b); err != nil {
			return err
		}
		return c.bw.Flush()
	}
	// Leading frame carries the first chunk with the more-fragments flag;
	// Fragment frames carry the rest.
	if err := writeFrame(t, true, b[:c.frag]); err != nil {
		return err
	}
	for off := c.frag; off < len(b); off += c.frag {
		end := min(off+c.frag, len(b))
		if err := writeFrame(wire.MsgFragment, end < len(b), b[off:end]); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// writeData sends a Data message without staging the payload: the frame
// headers and the 40-byte body prefix are encoded into per-connection
// scratch buffers, and the payload slice itself is handed to the stream as
// part of one gathered write (writev on TCP). The payload travels from the
// sequence's backing array to the socket with zero copies in our code.
func (c *Conn) writeData(d *wire.Data) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	e := c.scratch()
	d.EncodeBodyPrefix(e)
	prefix := e.Bytes()
	total := len(prefix) + len(d.Payload)
	if total > c.max {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, total)
	}
	if c.isClosed() {
		return ErrClosed
	}
	if c.wd != nil {
		_ = c.wd.SetWriteDeadline(time.Now().Add(c.wtimeout))
		defer c.wd.SetWriteDeadline(time.Time{})
	}
	var trace uint64
	if c.trace {
		trace = uint64(d.RequestID)
	}
	// Chunked Data frames advertise themselves in the header so per-frame
	// tooling can meter streamed bulk bytes without decoding bodies.
	var xflags byte
	if d.Chunked() {
		xflags = wire.FlagStreamChunk
	}
	// Time the write for the bandwidth EWMA: from here to the final flush
	// is the serialized wire work, including any stall the stream imposes
	// (a throttled link back-pressures right here).
	t0 := time.Now()
	if !c.vectored {
		// Non-TCP streams (pipes, fault-injection wrappers) get the staged
		// path: append the payload to the scratch body and frame it through
		// the buffered writer, preserving one-flush-per-message granularity.
		e.WriteRaw(d.Payload)
		err := c.writeFrames(wire.MsgData, e.Bytes(), trace, xflags)
		c.dropHugeScratch()
		if err == nil {
			c.noteWrite(total, time.Since(t0))
		}
		return err
	}
	// bw is empty between messages (every write path flushes before
	// releasing wmu), so the gathered write cannot reorder bytes; the flush
	// is a cheap no-op that keeps the invariant explicit.
	if err := c.bw.Flush(); err != nil {
		return err
	}

	nframes := 1
	if total > c.frag {
		nframes = (total + c.frag - 1) / c.frag
	}
	hlen := wire.HeaderLen
	if c.trace {
		hlen = wire.MaxHeaderLen
	}
	c.vec = c.vec[:0]
	c.harena = c.harena[:0]
	if cap(c.harena) < nframes*hlen {
		// Reserve all header space up front: vec holds slices into harena,
		// so it must not regrow mid-loop.
		c.harena = make([]byte, 0, nframes*hlen)
	}
	t := wire.MsgData
	for off := 0; off < total; off += max(c.frag, 1) {
		end := min(off+c.frag, total)
		n := wire.EncodeHeaderExt(&c.hdr, t, c.order, end < total, c.trace, end-off, trace)
		c.hdr[5] |= xflags
		hoff := len(c.harena)
		c.harena = append(c.harena, c.hdr[:n]...)
		c.vec = append(c.vec, c.harena[hoff:hoff+n])
		// The frame body is [off, end) of the virtual concatenation
		// prefix ++ payload; a chunk may straddle the boundary.
		if off < len(prefix) {
			c.vec = append(c.vec, prefix[off:min(end, len(prefix))])
		}
		if end > len(prefix) {
			c.vec = append(c.vec, d.Payload[max(off-len(prefix), 0):end-len(prefix)])
		}
		t = wire.MsgFragment
	}
	bufs := net.Buffers(c.vec)
	_, err := bufs.WriteTo(c.rw)
	// Drop payload references so a released buffer is not pinned by scratch.
	for i := range c.vec {
		c.vec[i] = nil
	}
	c.vec = c.vec[:0]
	if err == nil {
		c.noteWrite(total, time.Since(t0))
	}
	return err
}

// ReadMessage reads the next complete message, reassembling fragments.
// A returned *wire.Data may borrow a pooled frame buffer: its payload is
// valid until Release, which the final consumer must call after copying the
// elements out.
func (c *Conn) ReadMessage() (wire.Message, error) {
	h, body, bufp, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if h.Type == wire.MsgFragment {
		putBuf(bufp)
		return nil, fmt.Errorf("%w: unexpected leading fragment", ErrBadFragment)
	}
	if h.More() {
		body, bufp, err = c.reassemble(h, body, bufp)
		if err != nil {
			return nil, err
		}
	}
	m, err := wire.DecodeBody(h.Type, body, h.Order())
	if err != nil {
		if bufp != nil {
			putBuf(bufp)
		}
		return nil, err
	}
	if d, ok := m.(*wire.Data); ok && bufp != nil {
		// The decoded payload aliases the pooled buffer; hand the pool
		// reference to the message so the consumer controls its lifetime.
		p := bufp
		d.SetRelease(func() { putBuf(p) })
	}
	return m, nil
}

// reassemble collects the trailing Fragment frames of a message whose
// leading chunk (and pool reference, when the frame was pooled) it takes
// ownership of. For Data messages it preallocates the accumulator to the
// total size declared in the body prefix — the declared size is used as a
// capacity hint only, so a corrupt or hostile value cannot misframe the
// body, and when the leading chunk is too short to contain the prefix
// (fragment threshold below DataPrefixLen) it falls back to append growth.
// The returned pool reference is non-nil when the reassembled body backs a
// pooled buffer the caller must eventually release.
func (c *Conn) reassemble(h wire.Header, chunk []byte, chunkBuf *[]byte) ([]byte, *[]byte, error) {
	var body []byte
	var acc *[]byte
	if h.Type == wire.MsgData {
		if hint := wire.DataBodySize(chunk, h.Order()); hint > 0 && hint <= c.max {
			acc = getBuf(hint)
			*acc = append((*acc)[:0], chunk...)
			body = *acc
		}
	}
	if acc == nil {
		body = append([]byte(nil), chunk...)
	}
	putBuf(chunkBuf)
	fail := func(err error) ([]byte, *[]byte, error) {
		if acc != nil {
			putBuf(acc)
		}
		return nil, nil, err
	}
	for more := true; more; {
		fh, fbody, fbuf, err := c.readFrame()
		if err != nil {
			return fail(err)
		}
		if fh.Type != wire.MsgFragment {
			putBuf(fbuf)
			return fail(fmt.Errorf("%w: %v interleaved into fragmented message", ErrBadFragment, fh.Type))
		}
		if fh.Order() != h.Order() {
			putBuf(fbuf)
			return fail(fmt.Errorf("%w: fragment changed byte order", ErrBadFragment))
		}
		if len(body)+len(fbody) > c.max {
			putBuf(fbuf)
			return fail(fmt.Errorf("%w: reassembled body", ErrTooLarge))
		}
		if acc != nil {
			*acc = append(*acc, fbody...)
			body = *acc
		} else {
			body = append(body, fbody...)
		}
		putBuf(fbuf)
		more = fh.More()
	}
	return body, acc, nil
}

// readFrame reads one frame. MsgData and MsgFragment bodies borrow pooled
// buffers — for those the returned pool reference is non-nil and the caller
// must putBuf it (directly, or via Data.Release) when the body is no longer
// referenced. Other message types get plain allocations because their
// decoded forms alias and retain the body.
func (c *Conn) readFrame() (wire.Header, []byte, *[]byte, error) {
	var hb [wire.HeaderLen]byte
	if _, err := io.ReadFull(c.br, hb[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return wire.Header{}, nil, nil, ErrClosed
		}
		return wire.Header{}, nil, nil, err
	}
	h, err := wire.DecodeHeader(hb[:])
	if err != nil {
		return wire.Header{}, nil, nil, err
	}
	if h.HasTrace() {
		// The trace-context extension sits between the fixed header and the
		// body; c.ext is reader-owned scratch (ReadMessage is single-
		// goroutine), so reading it costs no allocation.
		if _, err := io.ReadFull(c.br, c.ext[:]); err != nil {
			return wire.Header{}, nil, nil, fmt.Errorf("transport: truncated trace extension: %w", err)
		}
		h.Trace = wire.TraceExt(c.ext[:], h.Order())
	}
	if c.hook != nil {
		c.hook(h)
	}
	if int(h.Size) > c.max {
		return wire.Header{}, nil, nil, fmt.Errorf("%w: frame body %d", ErrTooLarge, h.Size)
	}
	var body []byte
	var bufp *[]byte
	if h.Type == wire.MsgData || h.Type == wire.MsgFragment {
		bufp = getBuf(int(h.Size))
		body = *bufp
	} else {
		body = make([]byte, h.Size)
	}
	if _, err := io.ReadFull(c.br, body); err != nil {
		if bufp != nil {
			putBuf(bufp)
		}
		return wire.Header{}, nil, nil, fmt.Errorf("transport: truncated frame: %w", err)
	}
	return h, body, bufp, nil
}

func (c *Conn) isClosed() bool {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.closed
}

// Close tears down the connection. It is idempotent.
func (c *Conn) Close() error {
	c.cmu.Lock()
	if c.closed {
		c.cmu.Unlock()
		return nil
	}
	c.closed = true
	c.cmu.Unlock()
	return c.rw.Close()
}

// Listener accepts PGIOP connections.
type Listener struct {
	nl   net.Listener
	opts *Options
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string, opts *Options) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl, opts: opts}, nil
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (*Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConn(nc, l.opts), nil
}

// Addr returns the listener's bound address ("host:port").
func (l *Listener) Addr() string { return l.nl.Addr().String() }

// Port returns the listener's bound TCP port.
func (l *Listener) Port() int {
	if ta, ok := l.nl.Addr().(*net.TCPAddr); ok {
		return ta.Port
	}
	return 0
}

// Close stops accepting; established connections are unaffected.
func (l *Listener) Close() error { return l.nl.Close() }

// Dial connects to a PGIOP endpoint at addr.
func Dial(addr string, opts *Options) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConn(nc, opts), nil
}

// Pipe returns two connected in-process endpoints, one per side, with
// unbounded buffering (writes never block on the peer's reads). It serves
// tests and co-located client/server pairs.
func Pipe(opts *Options) (*Conn, *Conn) {
	a2b := newPipeBuffer()
	b2a := newPipeBuffer()
	a := NewConn(&pipeEnd{r: b2a, w: a2b}, opts)
	b := NewConn(&pipeEnd{r: a2b, w: b2a}, opts)
	return a, b
}

// pipeBuffer is a byte queue usable as one direction of an in-process duplex
// stream: Write appends, Read blocks until data or close.
type pipeBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipeBuffer() *pipeBuffer {
	b := &pipeBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.buf) == 0 {
		if b.closed {
			return 0, io.EOF
		}
		b.cond.Wait()
	}
	n := copy(p, b.buf)
	b.buf = b.buf[n:]
	return n, nil
}

func (b *pipeBuffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// pipeEnd glues a read buffer and a write buffer into one ReadWriteCloser.
type pipeEnd struct {
	r, w *pipeBuffer
}

func (p *pipeEnd) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipeEnd) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *pipeEnd) Close() error {
	p.r.close()
	p.w.close()
	return nil
}
