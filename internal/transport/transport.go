// Package transport moves PGIOP messages over byte streams.
//
// It provides the network plumbing the paper gets from NexusLite: framed,
// ordered delivery of wire messages over TCP connections (one per
// client-thread/server-thread pair in the multi-port method, a single one in
// the centralized method), plus an in-process pipe transport for tests and
// co-located components.
//
// Large message bodies are transparently split into PGIOP Fragment frames on
// write and reassembled on read, so higher layers see whole messages
// regardless of size. Writes from multiple goroutines are serialized per
// connection; fragments of one message are never interleaved with another
// message's frames.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/wire"
)

// Errors reported by this package.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrTooLarge    = errors.New("transport: message exceeds size limit")
	ErrBadFragment = errors.New("transport: fragment sequencing violation")
)

const (
	// DefaultFragmentThreshold is the largest body sent in a single frame;
	// bigger bodies are fragmented. 256 KiB keeps frames small enough to
	// interleave fairly on a shared link, the property the paper's
	// multi-port experiments depend on.
	DefaultFragmentThreshold = 256 << 10
	// MaxMessageSize bounds a reassembled body. It is deliberately far
	// above any benchmark's needs (a 2^19-double sequence is 4 MiB).
	MaxMessageSize = 1 << 30
)

// maxMessageSize is the enforced limit; tests lower it to exercise the
// oversize paths without allocating gigabyte buffers.
var maxMessageSize = MaxMessageSize

// Options configure a Conn.
type Options struct {
	// Order is the byte order this side produces. Zero value (BigEndian)
	// is valid; NewConn defaults to cdr.NativeOrder when Options is nil.
	Order cdr.ByteOrder
	// FragmentThreshold overrides DefaultFragmentThreshold when > 0.
	FragmentThreshold int
	// MaxFrameSize bounds both a single frame's declared body length and a
	// reassembled message, overriding MaxMessageSize when > 0. A frame
	// header claiming more is rejected before any allocation, so a corrupt
	// or hostile header cannot force an unbounded make([]byte, size).
	MaxFrameSize int
	// Wrap, when set, is applied to the underlying byte stream before
	// framing. Fault-injection tests use it to slot a FaultInjector between
	// the Conn and the real network.
	Wrap func(io.ReadWriteCloser) io.ReadWriteCloser
	// WriteTimeout bounds each WriteMessage call when the underlying stream
	// supports write deadlines (TCP does; the in-process pipe, which never
	// blocks on writes, does not need them). A peer that stops reading then
	// fails the writer with a deadline error instead of wedging it — and
	// every other goroutine queued on the connection's write lock — forever.
	// Zero disables.
	WriteTimeout time.Duration
}

// writeDeadliner is the optional deadline surface of an underlying stream
// (satisfied by net.Conn). It is captured before Options.Wrap is applied, so
// fault-injection wrappers do not hide it.
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// Conn is a framed PGIOP connection over any byte stream. WriteMessage is
// safe for concurrent use; ReadMessage must be called from one goroutine at
// a time.
type Conn struct {
	rw       io.ReadWriteCloser
	br       *bufio.Reader
	bw       *bufio.Writer
	order    cdr.ByteOrder
	frag     int
	max      int
	wd       writeDeadliner
	wtimeout time.Duration

	wmu    sync.Mutex
	closed bool
	cmu    sync.Mutex
}

// NewConn wraps a byte stream in PGIOP framing.
func NewConn(rw io.ReadWriteCloser, opts *Options) *Conn {
	wd, _ := rw.(writeDeadliner)
	if opts != nil && opts.Wrap != nil {
		rw = opts.Wrap(rw)
	}
	c := &Conn{
		rw:    rw,
		br:    bufio.NewReaderSize(rw, 64<<10),
		bw:    bufio.NewWriterSize(rw, 64<<10),
		order: cdr.NativeOrder,
		frag:  DefaultFragmentThreshold,
		max:   maxMessageSize,
	}
	if opts != nil {
		c.order = opts.Order
		if opts.FragmentThreshold > 0 {
			c.frag = opts.FragmentThreshold
		}
		if opts.MaxFrameSize > 0 {
			c.max = opts.MaxFrameSize
		}
		if opts.WriteTimeout > 0 {
			c.wd = wd
			c.wtimeout = opts.WriteTimeout
		}
	}
	return c
}

// WriteMessage encodes and sends m, fragmenting the body when it exceeds
// the connection's threshold.
func (c *Conn) WriteMessage(m wire.Message) error {
	body := cdr.NewEncoder(c.order)
	m.EncodeBody(body)
	b := body.Bytes()
	if len(b) > c.max {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(b))
	}

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.isClosed() {
		return ErrClosed
	}
	if c.wd != nil {
		// The deadline covers the whole message (all fragments and the
		// flush); a deadline error leaves the stream mid-frame, so callers
		// must treat it as fatal to the connection.
		_ = c.wd.SetWriteDeadline(time.Now().Add(c.wtimeout))
		defer c.wd.SetWriteDeadline(time.Time{})
	}

	writeFrame := func(t wire.MsgType, more bool, chunk []byte) error {
		h := wire.EncodeHeader(t, c.order, more, len(chunk))
		if _, err := c.bw.Write(h[:]); err != nil {
			return err
		}
		_, err := c.bw.Write(chunk)
		return err
	}

	if len(b) <= c.frag {
		if err := writeFrame(m.Type(), false, b); err != nil {
			return err
		}
		return c.bw.Flush()
	}
	// Leading frame carries the first chunk with the more-fragments flag;
	// Fragment frames carry the rest.
	if err := writeFrame(m.Type(), true, b[:c.frag]); err != nil {
		return err
	}
	for off := c.frag; off < len(b); off += c.frag {
		end := min(off+c.frag, len(b))
		if err := writeFrame(wire.MsgFragment, end < len(b), b[off:end]); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// ReadMessage reads the next complete message, reassembling fragments.
func (c *Conn) ReadMessage() (wire.Message, error) {
	h, body, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if h.Type == wire.MsgFragment {
		return nil, fmt.Errorf("%w: unexpected leading fragment", ErrBadFragment)
	}
	for more := h.More(); more; {
		fh, fbody, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		if fh.Type != wire.MsgFragment {
			return nil, fmt.Errorf("%w: %v interleaved into fragmented message", ErrBadFragment, fh.Type)
		}
		if fh.Order() != h.Order() {
			return nil, fmt.Errorf("%w: fragment changed byte order", ErrBadFragment)
		}
		if len(body)+len(fbody) > c.max {
			return nil, fmt.Errorf("%w: reassembled body", ErrTooLarge)
		}
		body = append(body, fbody...)
		more = fh.More()
	}
	return wire.DecodeBody(h.Type, body, h.Order())
}

func (c *Conn) readFrame() (wire.Header, []byte, error) {
	var hb [wire.HeaderLen]byte
	if _, err := io.ReadFull(c.br, hb[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return wire.Header{}, nil, ErrClosed
		}
		return wire.Header{}, nil, err
	}
	h, err := wire.DecodeHeader(hb[:])
	if err != nil {
		return wire.Header{}, nil, err
	}
	if int(h.Size) > c.max {
		return wire.Header{}, nil, fmt.Errorf("%w: frame body %d", ErrTooLarge, h.Size)
	}
	body := make([]byte, h.Size)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return wire.Header{}, nil, fmt.Errorf("transport: truncated frame: %w", err)
	}
	return h, body, nil
}

func (c *Conn) isClosed() bool {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.closed
}

// Close tears down the connection. It is idempotent.
func (c *Conn) Close() error {
	c.cmu.Lock()
	if c.closed {
		c.cmu.Unlock()
		return nil
	}
	c.closed = true
	c.cmu.Unlock()
	return c.rw.Close()
}

// Listener accepts PGIOP connections.
type Listener struct {
	nl   net.Listener
	opts *Options
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string, opts *Options) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl, opts: opts}, nil
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (*Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConn(nc, l.opts), nil
}

// Addr returns the listener's bound address ("host:port").
func (l *Listener) Addr() string { return l.nl.Addr().String() }

// Port returns the listener's bound TCP port.
func (l *Listener) Port() int {
	if ta, ok := l.nl.Addr().(*net.TCPAddr); ok {
		return ta.Port
	}
	return 0
}

// Close stops accepting; established connections are unaffected.
func (l *Listener) Close() error { return l.nl.Close() }

// Dial connects to a PGIOP endpoint at addr.
func Dial(addr string, opts *Options) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConn(nc, opts), nil
}

// Pipe returns two connected in-process endpoints, one per side, with
// unbounded buffering (writes never block on the peer's reads). It serves
// tests and co-located client/server pairs.
func Pipe(opts *Options) (*Conn, *Conn) {
	a2b := newPipeBuffer()
	b2a := newPipeBuffer()
	a := NewConn(&pipeEnd{r: b2a, w: a2b}, opts)
	b := NewConn(&pipeEnd{r: a2b, w: b2a}, opts)
	return a, b
}

// pipeBuffer is a byte queue usable as one direction of an in-process duplex
// stream: Write appends, Read blocks until data or close.
type pipeBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipeBuffer() *pipeBuffer {
	b := &pipeBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.buf) == 0 {
		if b.closed {
			return 0, io.EOF
		}
		b.cond.Wait()
	}
	n := copy(p, b.buf)
	b.buf = b.buf[n:]
	return n, nil
}

func (b *pipeBuffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// pipeEnd glues a read buffer and a write buffer into one ReadWriteCloser.
type pipeEnd struct {
	r, w *pipeBuffer
}

func (p *pipeEnd) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipeEnd) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *pipeEnd) Close() error {
	p.r.close()
	p.w.close()
	return nil
}
