package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cdr"
	"repro/internal/wire"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(nil)
	defer a.Close()
	defer b.Close()

	want := &wire.Request{RequestID: 1, ResponseExpected: true, Operation: "op", Args: []byte("abc")}
	if err := a.WriteMessage(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	req, ok := got.(*wire.Request)
	if !ok || req.Operation != "op" || string(req.Args) != "abc" {
		t.Fatalf("got %#v", got)
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	// Threshold small enough that a modest payload spans many fragments.
	opts := &Options{Order: cdr.NativeOrder, FragmentThreshold: 64}
	a, b := Pipe(opts)
	defer a.Close()
	defer b.Close()

	payload := make([]byte, 10_000)
	rand.New(rand.NewSource(7)).Read(payload)
	want := &wire.Data{RequestID: 9, SrcRank: 1, DstRank: 2, Count: 10, Payload: payload}
	done := make(chan error, 1)
	go func() { done <- a.WriteMessage(want) }()
	got, err := b.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	data, ok := got.(*wire.Data)
	if !ok || !bytes.Equal(data.Payload, payload) || data.RequestID != 9 {
		t.Fatalf("fragmented payload corrupted (ok=%v)", ok)
	}
}

func TestFragmentBoundaries(t *testing.T) {
	// Exercise payloads around the fragmentation threshold.
	const threshold = 128
	for _, extra := range []int{-2, -1, 0, 1, 2, threshold, 3*threshold + 5} {
		size := threshold + extra
		opts := &Options{Order: cdr.NativeOrder, FragmentThreshold: threshold}
		a, b := Pipe(opts)
		payload := bytes.Repeat([]byte{byte(size)}, size)
		done := make(chan error, 1)
		go func() { done <- a.WriteMessage(&wire.Data{RequestID: 1, Payload: payload}) }()
		got, err := b.ReadMessage()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("size %d write: %v", size, err)
		}
		if d := got.(*wire.Data); !bytes.Equal(d.Payload, payload) {
			t.Fatalf("size %d: payload corrupted", size)
		}
		a.Close()
		b.Close()
	}
}

func TestLeadingFragmentRejected(t *testing.T) {
	a, b := Pipe(nil)
	defer a.Close()
	defer b.Close()
	if err := a.WriteMessage(&wire.Fragment{Payload: []byte("loose")}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadMessage(); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("want ErrBadFragment, got %v", err)
	}
}

func TestConcurrentWritersDoNotInterleave(t *testing.T) {
	opts := &Options{Order: cdr.NativeOrder, FragmentThreshold: 32}
	a, b := Pipe(opts)
	defer a.Close()
	defer b.Close()

	const writers, msgs = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				payload := bytes.Repeat([]byte{byte(w)}, 100+w)
				if err := a.WriteMessage(&wire.Data{RequestID: uint32(w), Payload: payload}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	got := 0
	for got < writers*msgs {
		m, err := b.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		d := m.(*wire.Data)
		for _, x := range d.Payload {
			if x != byte(d.RequestID) {
				t.Fatalf("message from writer %d contains byte %d (interleaved fragments)", d.RequestID, x)
			}
		}
		if len(d.Payload) != 100+int(d.RequestID) {
			t.Fatalf("writer %d: length %d", d.RequestID, len(d.Payload))
		}
		got++
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Port() == 0 {
		t.Fatal("listener port 0")
	}

	type result struct {
		m   wire.Message
		err error
	}
	res := make(chan result, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			res <- result{err: err}
			return
		}
		defer conn.Close()
		m, err := conn.ReadMessage()
		if err != nil {
			res <- result{err: err}
			return
		}
		// Echo a reply back.
		req := m.(*wire.Request)
		err = conn.WriteMessage(&wire.Reply{RequestID: req.RequestID, Status: wire.ReplyNoException, Args: req.Args})
		res <- result{m: m, err: err}
	}()

	c, err := Dial(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteMessage(&wire.Request{RequestID: 5, Operation: "echo", Args: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	r := reply.(*wire.Reply)
	if r.RequestID != 5 || string(r.Args) != "ping" {
		t.Fatalf("reply %+v", r)
	}
	if sr := <-res; sr.err != nil {
		t.Fatal(sr.err)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	l, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 4<<20) // a 2^19-double sequence
	rand.New(rand.NewSource(3)).Read(payload)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.WriteMessage(&wire.Data{RequestID: 1, Payload: payload})
	}()
	c, err := Dial(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if d := m.(*wire.Data); !bytes.Equal(d.Payload, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestReadAfterPeerClose(t *testing.T) {
	a, b := Pipe(nil)
	a.Close()
	if _, err := b.ReadMessage(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := b.WriteMessage(&wire.CloseConnection{}); err == nil {
		t.Fatal("write to closed pipe accepted")
	}
}

func TestWriteAfterLocalClose(t *testing.T) {
	a, _ := Pipe(nil)
	a.Close()
	if err := a.WriteMessage(&wire.CloseConnection{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	old := maxMessageSize
	maxMessageSize = 1 << 16
	defer func() { maxMessageSize = old }()

	a, b := Pipe(nil)
	defer a.Close()
	defer b.Close()
	huge := &wire.Data{Payload: make([]byte, maxMessageSize+1)}
	if err := a.WriteMessage(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("write side: want ErrTooLarge, got %v", err)
	}

	// Read side: forge a frame whose header claims an oversize body.
	r, w := Pipe(nil)
	defer r.Close()
	defer w.Close()
	h := wire.EncodeHeader(wire.MsgData, cdr.NativeOrder, false, maxMessageSize+1)
	end := &pipeEnd{r: newPipeBuffer(), w: newPipeBuffer()}
	end.r.Write(h[:])
	end.r.close()
	c := NewConn(end, nil)
	if _, err := c.ReadMessage(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("read side: want ErrTooLarge, got %v", err)
	}
}

func TestGarbageStream(t *testing.T) {
	// A reader over garbage bytes must fail cleanly, not panic or hang.
	garbage := &pipeEnd{r: newPipeBuffer(), w: newPipeBuffer()}
	garbage.r.Write([]byte("this is not a PGIOP frame at all........"))
	garbage.r.close()
	c := NewConn(garbage, nil)
	if _, err := c.ReadMessage(); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPipeBufferSemantics(t *testing.T) {
	pb := newPipeBuffer()
	if n, err := pb.Write([]byte("xy")); n != 2 || err != nil {
		t.Fatal(n, err)
	}
	buf := make([]byte, 1)
	if n, err := pb.Read(buf); n != 1 || err != nil || buf[0] != 'x' {
		t.Fatal(n, err, buf)
	}
	pb.close()
	if n, err := pb.Read(buf); n != 1 || err != nil || buf[0] != 'y' {
		t.Fatalf("drain after close: %d %v %v", n, err, buf)
	}
	if _, err := pb.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if _, err := pb.Write([]byte("z")); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestManySequentialMessages(t *testing.T) {
	a, b := Pipe(&Options{Order: cdr.BigEndian, FragmentThreshold: 48})
	defer a.Close()
	defer b.Close()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			payload := bytes.Repeat([]byte{byte(i)}, i%97)
			if err := a.WriteMessage(&wire.Data{RequestID: uint32(i), Payload: payload}); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		d := m.(*wire.Data)
		if d.RequestID != uint32(i) {
			t.Fatalf("message %d arrived as %d (reordered)", i, d.RequestID)
		}
		if len(d.Payload) != i%97 {
			t.Fatalf("message %d: %d bytes", i, len(d.Payload))
		}
	}
}

func BenchmarkPipeThroughput(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			x, y := Pipe(nil)
			defer x.Close()
			defer y.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < b.N; i++ {
					if _, err := y.ReadMessage(); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			for i := 0; i < b.N; i++ {
				if err := x.WriteMessage(&wire.Data{RequestID: uint32(i), Payload: payload}); err != nil {
					b.Fatal(err)
				}
			}
			<-done
		})
	}
}
