package transport

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cdr"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// tcpPair returns two connected TCP Conns, so tests exercise the vectored
// (writev) Data path, which the in-process pipe deliberately does not take.
func tcpPair(t *testing.T, opts *Options) (client, server *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	client, err = Dial(l.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func echoData(t *testing.T, from, to *Conn, want *wire.Data) *wire.Data {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- from.WriteMessage(want) }()
	m, err := to.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	d, ok := m.(*wire.Data)
	if !ok {
		t.Fatalf("got %#v", m)
	}
	return d
}

// TestVectoredDataTCP drives the writev path over a real socket across the
// interesting framing shapes: empty payload, single frame, fragmented with
// the chunk boundary landing inside the body prefix, and fragmented large.
func TestVectoredDataTCP(t *testing.T) {
	cases := []struct {
		name    string
		frag    int
		payload int
	}{
		{"empty", 0, 0},
		{"single-frame", 0, 1 << 10},
		{"fragmented", 1 << 10, 10_000},
		{"threshold-below-prefix", wire.DataPrefixLen - 8, 300},
		{"threshold-one", 1, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer testutil.LeakCheck(t)()
			defer testutil.BalanceCheck(t, "frame pool", PoolOutstanding)()
			opts := &Options{Order: cdr.NativeOrder}
			if tc.frag > 0 {
				opts.FragmentThreshold = tc.frag
			}
			a, b := tcpPair(t, opts)
			payload := make([]byte, tc.payload)
			rand.New(rand.NewSource(int64(tc.payload))).Read(payload)
			want := &wire.Data{
				RequestID: 77, ArgIndex: 1, SrcRank: 2, DstRank: 3,
				DstOff: 40, Count: uint64(tc.payload), Reply: true, Payload: payload,
			}
			got := echoData(t, a, b, want)
			if got.RequestID != want.RequestID || got.DstOff != want.DstOff ||
				got.Count != want.Count || !got.Reply || !bytes.Equal(got.Payload, payload) {
				t.Fatalf("vectored Data corrupted: %+v", got)
			}
			// Always legal, whether or not a pooled buffer backs the payload
			// (hint-less reassemblies have no hook and keep their payload).
			got.Release()
		})
	}
}

// TestVectoredDataBigEndianTCP checks the vectored path against a big-endian
// stream, covering the cross-order header/prefix encoding.
func TestVectoredDataBigEndianTCP(t *testing.T) {
	defer testutil.LeakCheck(t)()
	defer testutil.BalanceCheck(t, "frame pool", PoolOutstanding)()
	opts := &Options{Order: cdr.BigEndian, FragmentThreshold: 128}
	a, b := tcpPair(t, opts)
	payload := bytes.Repeat([]byte{0xA5}, 1000)
	got := echoData(t, a, b, &wire.Data{RequestID: 5, Count: 125, Payload: payload})
	if got.RequestID != 5 || got.Count != 125 || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("big-endian vectored Data corrupted: %+v", got)
	}
	got.Release()
}

// TestVectoredFrameOracle captures the exact bytes the vectored path puts on
// the wire and checks them against wire.Encode, the format oracle — the
// gathered write must be indistinguishable from the staged encoding.
func TestVectoredFrameOracle(t *testing.T) {
	var sink bytes.Buffer
	c := NewConn(nopCloser{&sink}, nil)
	// Force the vectored branch even though the sink is not a TCP conn:
	// net.Buffers degrades to sequential writes, which still must produce
	// the same byte stream.
	c.vectored = true
	d := &wire.Data{
		RequestID: 3, ArgIndex: 2, SrcRank: 1, DstRank: 0,
		DstOff: 16, Count: 8, Payload: bytes.Repeat([]byte{0x42}, 64),
	}
	if err := c.WriteMessage(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(), wire.Encode(d, cdr.NativeOrder)) {
		t.Fatal("vectored frame bytes differ from wire.Encode")
	}
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

// TestDataEchoAllocs is the transport-level allocation-regression guard: a
// loopback Data echo with pooled frames, reused scratch encoders, and
// Release must stay within a small constant number of allocations per
// message (the Data/decoder headers and channel plumbing — not buffers).
func TestDataEchoAllocs(t *testing.T) {
	defer testutil.LeakCheck(t)()
	defer testutil.BalanceCheck(t, "frame pool", PoolOutstanding)()
	a, b := Pipe(nil)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 64<<10)
	msg := &wire.Data{RequestID: 1, Count: uint64(len(payload) / 8), Payload: payload}

	errs := make(chan error, 1)
	run := func() {
		go func() { errs <- a.WriteMessage(msg) }()
		m, err := b.ReadMessage()
		if err != nil {
			t.Error(err)
			return
		}
		if err := <-errs; err != nil {
			t.Error(err)
			return
		}
		m.(*wire.Data).Release()
	}
	run() // warm the pools and scratch buffers
	allocs := testing.AllocsPerRun(50, run)
	// The steady state allocates only fixed-size bookkeeping: the decoded
	// *wire.Data, its release closure, and goroutine plumbing. The 64 KiB
	// payload buffer itself must come from the pool, so anything near the
	// payload size is a regression.
	if allocs > 20 {
		t.Fatalf("Data echo allocates %.0f times per message, want <= 20", allocs)
	}
}

// TestFragmentedDataPreallocation checks a fragmented Data message is
// reassembled correctly when the size hint is available (normal thresholds)
// — covered above — and here that a hint-less reassembly (leading chunk
// shorter than the prefix) still produces an intact message on the pipe
// transport too.
func TestFragmentedDataPreallocation(t *testing.T) {
	defer testutil.LeakCheck(t)()
	defer testutil.BalanceCheck(t, "frame pool", PoolOutstanding)()
	opts := &Options{Order: cdr.NativeOrder, FragmentThreshold: 16} // < DataPrefixLen
	a, b := Pipe(opts)
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte{7}, 500)
	got := echoData(t, a, b, &wire.Data{RequestID: 2, Count: 500, Payload: payload})
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("hint-less reassembly corrupted payload")
	}
	got.Release()
}
