package transport

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

// faultedPair wires two Conns over in-process buffers with the plan applied
// to the client side only; the server side stays clean so assertions about
// the peer's view are unambiguous.
func faultedPair(plan *FaultPlan) (client, server *Conn) {
	ab, ba := newPipeBuffer(), newPipeBuffer()
	client = NewConn(&pipeEnd{r: ba, w: ab}, &Options{Wrap: plan.Wrap})
	server = NewConn(&pipeEnd{r: ab, w: ba}, nil)
	return client, server
}

func TestFaultCutAfterWriteBytes(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.CutAfterWriteBytes = wire.HeaderLen + 3 // mid-body of the first frame
	client, server := faultedPair(plan)
	defer client.Close()
	defer server.Close()

	err := client.WriteMessage(&wire.Request{RequestID: 1, Operation: "op", Args: []byte("abcdefgh")})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("writer: want ErrInjected, got %v", err)
	}
	// The peer sees the frame cut mid-body: a truncated frame or a closed
	// stream, never a clean message.
	if m, err := server.ReadMessage(); err == nil {
		t.Fatalf("peer read a message %#v across a cut stream", m)
	}
	// Further writes fail fast.
	if err := client.WriteMessage(&wire.CancelRequest{RequestID: 1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut write: want ErrInjected, got %v", err)
	}
}

func TestFaultCutAfterReadBytes(t *testing.T) {
	plan := NewFaultPlan(2)
	plan.CutAfterReadBytes = 5 // inside the frame header
	client, server := faultedPair(plan)
	defer client.Close()
	defer server.Close()

	if err := server.WriteMessage(&wire.Reply{RequestID: 7, Status: wire.ReplyNoException}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReadMessage(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestFaultDropSchedule(t *testing.T) {
	plan := NewFaultPlan(3)
	plan.DropEvery = 2 // every second flushed frame vanishes
	client, server := faultedPair(plan)
	defer client.Close()
	defer server.Close()

	// Three small messages are three flushes, i.e. three injector writes;
	// the second is swallowed. Dropping desynchronizes nothing here because
	// whole frames vanish (each flush is one complete frame).
	for id := uint32(1); id <= 3; id++ {
		if err := client.WriteMessage(&wire.Data{RequestID: id, Payload: []byte{byte(id)}}); err != nil {
			t.Fatalf("write %d: %v", id, err)
		}
	}
	for _, want := range []uint32{1, 3} {
		m, err := server.ReadMessage()
		if err != nil {
			t.Fatalf("reading message %d: %v", want, err)
		}
		d, ok := m.(*wire.Data)
		if !ok || d.RequestID != want {
			t.Fatalf("want Data %d, got %#v", want, m)
		}
	}
}

func TestFaultCorruptSchedule(t *testing.T) {
	plan := NewFaultPlan(4)
	plan.CorruptEvery = 1
	client, server := faultedPair(plan)
	defer server.Close()

	want := &wire.Data{RequestID: 9, Payload: bytes.Repeat([]byte{0x5a}, 64)}
	if err := client.WriteMessage(want); err != nil {
		t.Fatal(err)
	}
	// Close the writer so a size-field flip cannot leave the reader waiting
	// for bytes that will never come.
	client.Close()

	m, err := server.ReadMessage()
	if err != nil {
		return // the flip landed somewhere the decoder rejects — fine
	}
	if reflect.DeepEqual(m, want) {
		t.Fatal("corrupted frame arrived intact")
	}
}

func TestFaultDelaySchedule(t *testing.T) {
	plan := NewFaultPlan(5)
	plan.Delay = 40 * time.Millisecond
	plan.DelayEvery = 1
	client, server := faultedPair(plan)
	defer client.Close()
	defer server.Close()

	start := time.Now()
	if err := client.WriteMessage(&wire.Data{RequestID: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < plan.Delay {
		t.Fatalf("write returned in %v, want >= %v", elapsed, plan.Delay)
	}
	if _, err := server.ReadMessage(); err != nil {
		t.Fatalf("delayed message lost: %v", err)
	}
}

func TestFaultPlanConnBudget(t *testing.T) {
	plan := NewFaultPlan(6)
	plan.CutAfterWriteBytes = 1
	plan.FaultConns = 1

	// First stream gets the schedule, second passes through clean.
	faulted, server := faultedPair(plan)
	defer faulted.Close()
	defer server.Close()
	if err := faulted.WriteMessage(&wire.CancelRequest{RequestID: 1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("first conn: want ErrInjected, got %v", err)
	}

	ab, ba := newPipeBuffer(), newPipeBuffer()
	clean := NewConn(&pipeEnd{r: ba, w: ab}, &Options{Wrap: plan.Wrap})
	peer := NewConn(&pipeEnd{r: ab, w: ba}, nil)
	defer clean.Close()
	defer peer.Close()
	if err := clean.WriteMessage(&wire.CancelRequest{RequestID: 2}); err != nil {
		t.Fatalf("second conn should pass clean: %v", err)
	}
	if _, err := peer.ReadMessage(); err != nil {
		t.Fatalf("second conn peer: %v", err)
	}
	if got := plan.Wrapped(); got != 2 {
		t.Fatalf("Wrapped() = %d, want 2", got)
	}
}

func TestFaultInjectorCutAndStats(t *testing.T) {
	ab, ba := newPipeBuffer(), newPipeBuffer()
	inj := NewFaultInjector(&pipeEnd{r: ba, w: ab}, FaultPlan{}, 8)

	if n, err := inj.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatal(n, err)
	}
	ba.Write([]byte("yo"))
	buf := make([]byte, 8)
	if n, err := inj.Read(buf); n != 2 || err != nil {
		t.Fatal(n, err)
	}
	r, w := inj.Stats()
	if r != 2 || w != 5 {
		t.Fatalf("Stats() = (%d, %d), want (2, 5)", r, w)
	}

	inj.Cut()
	if _, err := inj.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after Cut: want ErrInjected, got %v", err)
	}
	if _, err := inj.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after Cut: want ErrInjected, got %v", err)
	}
	if err := inj.Close(); err != nil {
		t.Fatalf("close after Cut: %v", err)
	}
	// Cut closed the inner stream: the peer's next write fails.
	if _, err := ab.Write([]byte("z")); !errors.Is(err, ErrClosed) {
		t.Fatalf("inner stream should be closed, write got %v", err)
	}
}
