package transport

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/cdr"
	"repro/internal/wire"
)

// byteStream serves a fixed byte string as one side of a connection: reads
// drain the bytes, writes vanish. It lets the fuzzer drive ReadMessage's
// framing and reassembly with arbitrary wire data.
type byteStream struct{ r *bytes.Reader }

func (s *byteStream) Read(p []byte) (int, error)  { return s.r.Read(p) }
func (s *byteStream) Write(p []byte) (int, error) { return len(p), nil }
func (s *byteStream) Close() error                { return nil }

// captureRWC collects everything written to it; reads report EOF.
type captureRWC struct{ buf bytes.Buffer }

func (c *captureRWC) Read(p []byte) (int, error)  { return 0, io.EOF }
func (c *captureRWC) Write(p []byte) (int, error) { return c.buf.Write(p) }
func (c *captureRWC) Close() error                { return nil }

// encodeFrames renders messages to raw frame bytes through a real Conn, so
// fuzz seeds are exactly what the writer side produces.
func encodeFrames(t *testing.F, frag int, msgs ...wire.Message) []byte {
	t.Helper()
	var cap captureRWC
	c := NewConn(&cap, &Options{FragmentThreshold: frag})
	for _, m := range msgs {
		if err := c.WriteMessage(m); err != nil {
			t.Fatal(err)
		}
	}
	return cap.buf.Bytes()
}

// FuzzReadMessage feeds arbitrary byte streams to the framing layer. Any
// input must produce a sequence of messages ending in an error or EOF —
// never a panic, hang, or oversized allocation (MaxFrameSize bounds every
// body before it is allocated).
func FuzzReadMessage(f *testing.F) {
	f.Add(encodeFrames(f, 0,
		&wire.Request{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("key"), Operation: "op", Args: []byte("abcd")},
		&wire.Reply{RequestID: 1, Status: wire.ReplyNoException, Args: []byte("efgh")}))
	f.Add(encodeFrames(f, 0, &wire.Data{RequestID: 2, SrcRank: 1, DstRank: 0, Count: 8, Payload: make([]byte, 64)}))
	// A fragmented message: 256 bytes over a 32-byte threshold.
	f.Add(encodeFrames(f, 32, &wire.Data{RequestID: 3, Payload: bytes.Repeat([]byte{0xab}, 256)}))
	// Truncated frame: a header promising more than follows.
	h := wire.EncodeHeader(wire.MsgData, cdr.NativeOrder, false, 100)
	f.Add(append(h[:], 1, 2, 3))
	// Oversize declaration.
	huge := wire.EncodeHeader(wire.MsgData, cdr.NativeOrder, false, 1<<30)
	f.Add(huge[:])
	f.Add([]byte("PDIS garbage that is not a frame at all....."))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(&byteStream{r: bytes.NewReader(data)}, &Options{MaxFrameSize: 1 << 20})
		// Bounded: the stream is finite, so reads hit EOF; the cap just
		// guards against an accidental infinite accept loop.
		for i := 0; i < 64; i++ {
			if _, err := c.ReadMessage(); err != nil {
				return
			}
		}
	})
}
