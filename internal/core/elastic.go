package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rts"
)

// This file implements elastic membership for exported SPMD objects: a
// running object can change its computing-thread count without restarting
// the process or losing its distributed state. An rts world is fixed-size by
// construction, so elasticity is realized as a succession of worlds — one
// per membership epoch — with the live dsequence state repartitioned between
// them along a minimal-move plan (dist.Diff of the old and new layouts).
//
// The resize protocol has five phases, each a distinct fault-injection point
// for the membership-chaos harness:
//
//	quiesce  — new arrivals are shed with TRANSIENT; queued calls drain
//	           through the collective loop ahead of the resize ticket.
//	snapshot — inside the collective loop (so no invocation is in flight)
//	           every old thread marshals the ranges it owns that move,
//	           per the diff plan, into the transfer buffer.
//	spawn    — the successor world launches, rebuilds the state sequences
//	           at the new size, and applies the transfer chunks.
//	publish  — the new epoch's reference replaces the old one in the naming
//	           domain. This is the commit point: failures before it roll
//	           back to the old epoch (commit=false resumes serving);
//	           failures after it are forced to completion.
//	retire   — the old epoch's serve loops exit, stranded queue entries are
//	           refused re-resolvably, listeners close, the world closes.
//
// Clients bound through naming.Rebinder observe at most one retried
// invocation: a stale request is refused before any data transfer — wrong
// epoch (OBJECT_NOT_EXIST), draining (TRANSIENT) or dead endpoint
// (ErrConnBroken) — never answered with a wrong-shape scatter.

// resizeOp is the reserved admin operation exposed (when
// orb.ServerOptions.AdminResize is set on an elastic export) to trigger a
// membership change remotely: one Long argument, the target thread count;
// the reply is the epoch current at acceptance.
const resizeOp = "_pardis_resize"

// ResizePhase identifies one phase of the resize protocol, primarily for
// fault injection by the membership-chaos harness.
type ResizePhase int

const (
	// ResizeQuiesce sheds new arrivals on the old epoch.
	ResizeQuiesce ResizePhase = iota
	// ResizeSnapshot marshals moving state ranges inside the collective loop.
	ResizeSnapshot
	// ResizeSpawn launches the successor world and applies the transfer.
	ResizeSpawn
	// ResizePublish replaces the name binding — the commit point.
	ResizePublish
	// ResizeRetire tears the old epoch down (post-commit; faults here are
	// forced to completion).
	ResizeRetire
	numResizePhases
)

// NumResizePhases is the number of fault-injectable resize phases.
const NumResizePhases = int(numResizePhases)

var resizePhaseNames = [numResizePhases]string{
	"quiesce", "snapshot", "spawn", "publish", "retire",
}

func (p ResizePhase) String() string {
	if p < 0 || p >= numResizePhases {
		return fmt.Sprintf("ResizePhase(%d)", int(p))
	}
	return resizePhaseNames[p]
}

// StateDesc declares one live distributed sequence an elastic object carries
// across resizes.
type StateDesc struct {
	// Name keys the sequence in EpochState.
	Name string
	// Length is the initial global length.
	Length int
	// Spec is the distribution law (nil for Block). It must be meaningful at
	// any thread count — Block and Cyclic are; a Proportions pinned to one
	// size will fail the first resize.
	Spec dist.Spec
	// New builds the sequence at the given length on a fresh epoch's
	// communicator. Contents need not be initialized: the elastic engine
	// overwrites them from the previous epoch (or calls Seed on the first).
	New func(comm *rts.Comm, length int, spec dist.Spec) (dseq.Transferable, error)
	// Seed populates the sequence on the first epoch only; nil leaves zeros.
	Seed func(st dseq.Transferable, comm *rts.Comm) error
}

func (sd StateDesc) build(c *rts.Comm, length int) (dseq.Transferable, error) {
	if sd.New == nil {
		return nil, fmt.Errorf("core: state %q has no factory", sd.Name)
	}
	return sd.New(c, length, sd.Spec)
}

// Float64State is the common-case StateDesc: a Block-distributed double
// sequence seeded from a function of the global index.
func Float64State(name string, length int, seed func(global int) float64) StateDesc {
	return StateDesc{
		Name:   name,
		Length: length,
		New: func(c *rts.Comm, length int, spec dist.Spec) (dseq.Transferable, error) {
			if spec == nil {
				spec = dist.Block{}
			}
			return dseq.New(c, dseq.Float64, length, spec)
		},
		Seed: func(st dseq.Transferable, _ *rts.Comm) error {
			s, ok := st.(*dseq.Seq[float64])
			if !ok {
				return fmt.Errorf("core: state %q is not a float64 sequence", name)
			}
			if seed != nil {
				s.FillFunc(seed)
			}
			return nil
		},
	}
}

// EpochState is one epoch's view of the live state, handed to the Ops
// factory so handlers close over the current epoch's sequences.
type EpochState struct {
	// Comm is the epoch's engine communicator (this thread's rank).
	Comm *rts.Comm
	// Epoch is the membership epoch (1 on first launch).
	Epoch int
	seqs  map[string]dseq.Transferable
}

// Seq returns the named state sequence, or nil if undeclared.
func (es *EpochState) Seq(name string) dseq.Transferable { return es.seqs[name] }

// ElasticOptions configure NewElastic.
type ElasticOptions struct {
	// Export configures each epoch's underlying Export. Name and NameServer
	// are required: re-resolution through the naming domain is how clients
	// follow the object across epochs. Epoch is owned by the engine.
	Export ExportOptions
	// World configures each epoch's rts world (mailbox depths, timeouts).
	// Epoch is owned by the engine.
	World rts.Options
	// State declares the live sequences carried across resizes.
	State []StateDesc
	// Ops builds the epoch's operation table over its state view. Called
	// once per epoch on every computing thread.
	Ops func(es *EpochState) []Operation
	// ChunkElems bounds one state-transfer chunk (elements); defaults to
	// DefaultStreamChunkElems.
	ChunkElems int
	// Metrics, when set, receives the core.resize.* instruments.
	Metrics *obs.Registry
	// FaultHook, when set, is consulted at every resize phase (on the
	// controller for quiesce/spawn/publish/retire; on every computing
	// thread for snapshot — it must be goroutine-safe and deterministic in
	// (phase, epoch) so the threads agree). A non-nil return aborts the
	// resize at that phase; post-commit (retire) faults are recorded and
	// forced to completion. Test instrumentation.
	FaultHook func(phase ResizePhase, epoch int) error
}

// Elastic is the controller of one elastic SPMD object: it owns the current
// epoch's world and serve goroutines and serializes resizes against it.
type Elastic struct {
	opts ElasticOptions
	rec  *obs.Recorder

	// resizeMu serializes Resize/Close; mu guards the snapshot fields below
	// for cheap accessors.
	resizeMu sync.Mutex
	mu       sync.Mutex
	cur      *epochRun
	pending  *pendingResize
	closed   bool

	insTotal, insAborted, insLate *obs.Counter
	insMovedElems, insMovedChunks *obs.Counter
	insEpoch, insRanks            *obs.Gauge
	insDur                        *obs.Histogram
}

// epochRun is one epoch's live incarnation.
type epochRun struct {
	epoch   int
	size    int
	lengths []int // per-state global lengths at launch
	world   *rts.World
	objs    []*Object
	errc    chan error // World.Run's result (one send)
}

// pendingResize is the in-flight resize visible to the snapshot hooks.
type pendingResize struct {
	epoch int
	size  int
	xfer  *stateXfer
}

// stateXfer accumulates the marshalled state ranges moving between epochs.
// Old threads append concurrently under mu; the new epoch's threads read
// their buckets after launch (ordered by the snapshot-completion channel and
// goroutine creation, so no lock is needed on the read side).
type stateXfer struct {
	mu         sync.Mutex
	lengths    []int         // per-state global length, recorded by thread 0
	chunks     [][]xferChunk // per destination (new-epoch) rank
	crossElems int           // elements that crossed ranks
	chunkCount int
}

type xferChunk struct {
	state   int
	off     int // destination-local element offset
	payload []byte
}

func newStateXfer(states, dstRanks int) *stateXfer {
	return &stateXfer{lengths: make([]int, states), chunks: make([][]xferChunk, dstRanks)}
}

func (x *stateXfer) add(dst, state, off int, payload []byte, crossed int) {
	x.mu.Lock()
	x.chunks[dst] = append(x.chunks[dst], xferChunk{state: state, off: off, payload: payload})
	x.chunkCount++
	x.crossElems += crossed
	x.mu.Unlock()
}

func (x *stateXfer) setLength(state, length int) {
	x.mu.Lock()
	x.lengths[state] = length
	x.mu.Unlock()
}

// ErrNotElastic reports a Resize on a conventionally exported object.
var ErrNotElastic = errors.New("core: object is not an elastic export")

// Resize delegates to the elastic engine owning this object.
func (o *Object) Resize(n int) error {
	if o.elastic == nil {
		return ErrNotElastic
	}
	return o.elastic.Resize(n)
}

// NewElastic exports an elastic SPMD object at the given initial thread
// count (epoch 1) and registers it in the naming domain. The caller drives
// membership through Resize and must Close the engine when done.
func NewElastic(opts ElasticOptions, size int) (*Elastic, error) {
	if size < 1 {
		return nil, fmt.Errorf("core: elastic export with %d threads", size)
	}
	if opts.Export.Name == "" || opts.Export.NameServer == "" {
		return nil, errors.New("core: elastic export requires Name and NameServer")
	}
	if opts.Ops == nil {
		return nil, errors.New("core: elastic export requires an Ops factory")
	}
	if opts.ChunkElems <= 0 {
		opts.ChunkElems = DefaultStreamChunkElems
	}
	el := &Elastic{opts: opts, rec: opts.Export.Trace}
	if m := opts.Metrics; m != nil {
		el.insTotal = m.Counter("core.resize.total")
		el.insAborted = m.Counter("core.resize.aborted")
		el.insLate = m.Counter("core.resize.late_faults")
		el.insMovedElems = m.Counter("core.resize.moved_elems")
		el.insMovedChunks = m.Counter("core.resize.moved_chunks")
		el.insEpoch = m.Gauge("core.resize.epoch")
		el.insRanks = m.Gauge("core.resize.ranks")
		el.insDur = m.Histogram("core.resize.duration_ns")
	}
	lengths := make([]int, len(opts.State))
	for i, sd := range opts.State {
		lengths[i] = sd.Length
	}
	run, err := el.launch(nil, 1, size, lengths, nil)
	if err != nil {
		return nil, err
	}
	if err := el.republish(run.objs[0].Ref()); err != nil {
		el.teardownRun(run)
		return nil, fmt.Errorf("core: registering %q: %w", opts.Export.Name, err)
	}
	el.cur = run
	el.insEpoch.Set(1)
	el.insRanks.Set(int64(size))
	return el, nil
}

// Epoch returns the current membership epoch (0 after Close).
func (el *Elastic) Epoch() int {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.cur == nil {
		return 0
	}
	return el.cur.epoch
}

// Size returns the current thread count (0 after Close).
func (el *Elastic) Size() int {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.cur == nil {
		return 0
	}
	return el.cur.size
}

// Ref returns the current epoch's object reference.
func (el *Elastic) Ref() orb.IOR {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.cur == nil {
		return orb.IOR{}
	}
	return el.cur.objs[0].Ref()
}

// Close retires the current epoch: serve loops stop, listeners and the
// world close. Idempotent.
func (el *Elastic) Close() {
	el.resizeMu.Lock()
	defer el.resizeMu.Unlock()
	el.mu.Lock()
	run := el.cur
	el.cur = nil
	el.closed = true
	el.mu.Unlock()
	if run != nil {
		el.teardownRun(run)
	}
}

func (el *Elastic) teardownRun(run *epochRun) {
	for _, o := range run.objs {
		if o != nil {
			o.Close()
		}
	}
	<-run.errc
	run.world.Close()
}

// launch starts one epoch: a fresh world (the previous epoch's successor
// when prev is set), one serve goroutine per rank, state sequences rebuilt
// at the new size and populated from xfer (or seeded on the first epoch).
// It returns once every thread is exported and serving.
func (el *Elastic) launch(prev *rts.World, epoch, size int, lengths []int, xfer *stateXfer) (*epochRun, error) {
	var w *rts.World
	if prev != nil {
		w = prev.Successor(size)
	} else {
		wopts := el.opts.World
		wopts.Epoch = epoch
		w = rts.NewWorld(size, wopts)
	}
	run := &epochRun{
		epoch:   epoch,
		size:    size,
		lengths: append([]int(nil), lengths...),
		world:   w,
		objs:    make([]*Object, size),
		errc:    make(chan error, 1),
	}
	ready := make(chan error, 1)
	go func() {
		run.errc <- w.Run(func(c *rts.Comm) error {
			return el.rankMain(run, c, xfer, ready)
		})
	}()
	select {
	case err := <-ready:
		if err != nil {
			w.Close()
			<-run.errc
			return nil, err
		}
	case err := <-run.errc:
		w.Close()
		if err == nil {
			err = errors.New("core: elastic epoch exited before export")
		}
		return nil, err
	}
	return run, nil
}

// rankMain is one computing thread's life in one epoch: build state, apply
// the inbound transfer, export, wire the elastic hooks, serve.
func (el *Elastic) rankMain(run *epochRun, c *rts.Comm, xfer *stateXfer, ready chan<- error) error {
	me := c.Rank()
	fail := func(err error) error {
		// Closing the world unwedges the other threads' collectives so the
		// whole epoch fails promptly and coherently.
		run.world.Close()
		if me == 0 {
			ready <- err
		}
		return err
	}
	states := make([]dseq.Transferable, len(el.opts.State))
	seqs := make(map[string]dseq.Transferable, len(el.opts.State))
	for i, sd := range el.opts.State {
		st, err := sd.build(c, run.lengths[i])
		if err != nil {
			return fail(fmt.Errorf("core: state %q: %w", sd.Name, err))
		}
		if xfer == nil && sd.Seed != nil {
			if err := sd.Seed(st, c); err != nil {
				return fail(fmt.Errorf("core: seeding state %q: %w", sd.Name, err))
			}
		}
		states[i] = st
		seqs[sd.Name] = st
	}
	if xfer != nil {
		for _, ch := range xfer.chunks[me] {
			if err := states[ch.state].UnmarshalRange(ch.off, ch.payload); err != nil {
				return fail(fmt.Errorf("core: applying transfer to state %q: %w", el.opts.State[ch.state].Name, err))
			}
		}
	}
	es := &EpochState{Comm: c, Epoch: run.epoch, seqs: seqs}
	eopts := el.opts.Export
	eopts.Epoch = run.epoch
	// The controller publishes the name at the commit point; Export must not
	// re-bind it early (a pre-commit abort would leave the name dangling).
	eopts.NameServer = ""
	obj, err := Export(c, eopts, el.opts.Ops(es))
	if err != nil {
		return fail(err)
	}
	obj.elastic = el
	obj.onResize = func() error { return el.snapshotRank(run, c, states) }
	if me == 0 {
		obj.resizeCh = make(chan *resizeTicket, 1)
	}
	run.objs[me] = obj
	// The barrier publishes objs (and the hooks) to the controller: it reads
	// them only after thread 0 signals ready, which happens after the
	// barrier completes on every thread.
	if err := c.Barrier(); err != nil {
		obj.Close()
		return fail(err)
	}
	if me == 0 {
		ready <- nil
	}
	return obj.Serve()
}

// snapshotRank runs inside the collective serve loop on every old-epoch
// thread (via Object.onResize): it diffs each state's old and new layouts
// and marshals the ranges this thread owns that move, chunked, into the
// pending transfer buffer. Compression-eligible sequences are probed through
// dseq.RangeCompressor; receivers auto-detect, so no negotiation is needed.
func (el *Elastic) snapshotRank(run *epochRun, c *rts.Comm, states []dseq.Transferable) error {
	el.mu.Lock()
	p := el.pending
	el.mu.Unlock()
	if p == nil || p.epoch != run.epoch+1 {
		return &orb.SystemException{RepoID: orb.RepoInternal, Message: "core: resize directive with no pending resize"}
	}
	if hook := el.opts.FaultHook; hook != nil {
		if err := hook(ResizeSnapshot, p.epoch); err != nil {
			return err
		}
	}
	me := c.Rank()
	start := time.Now()
	mask := el.opts.Export.Compression
	for si, st := range states {
		oldL := st.Layout()
		spec := st.Spec()
		if spec == nil {
			spec = dist.Block{}
		}
		newL, err := spec.Layout(st.Len(), p.size)
		if err != nil {
			return &orb.SystemException{RepoID: orb.RepoInternal,
				Message: fmt.Sprintf("core: state %q at %d threads: %v", el.opts.State[si].Name, p.size, err)}
		}
		local, cross, err := dist.Diff(oldL, newL)
		if err != nil {
			return &orb.SystemException{RepoID: orb.RepoInternal, Message: err.Error()}
		}
		if me == 0 {
			p.xfer.setLength(si, st.Len())
		}
		// Both lists ship: the epochs are distinct worlds, so even a
		// same-rank move crosses goroutines through the transfer buffer.
		for _, moves := range [2][]dist.Move{local, cross} {
			for _, m := range moves {
				if m.SrcRank != me {
					continue
				}
				crossed := 0
				if m.SrcRank != m.DstRank {
					crossed = m.Len
				}
				for off := 0; off < m.Len; off += el.opts.ChunkElems {
					n := m.Len - off
					if n > el.opts.ChunkElems {
						n = el.opts.ChunkElems
					}
					payload, err := marshalRangeZ(st, m.SrcOff+off, n, mask)
					if err != nil {
						return &orb.SystemException{RepoID: orb.RepoMarshal, Message: err.Error()}
					}
					cn := 0
					if crossed > 0 {
						cn = n
					}
					p.xfer.add(m.DstRank, si, m.DstOff+off, payload, cn)
				}
			}
		}
	}
	if el.rec != nil {
		el.rec.Record(obs.Span{Trace: uint64(p.epoch), Phase: obs.PhaseResizeMove,
			Rank: int32(me), Start: start.UnixNano(), Dur: int64(time.Since(start))})
	}
	return nil
}

// marshalRangeZ marshals one local state range, compressing when the mask
// allows and the sequence supports it.
func marshalRangeZ(st dseq.Transferable, off, n int, mask uint8) ([]byte, error) {
	if mask != 0 {
		if z, ok := st.(dseq.RangeCompressor); ok {
			return z.MarshalRangeZ(off, n, mask)
		}
	}
	return st.MarshalRange(off, n)
}

func (el *Elastic) fault(ph ResizePhase, epoch int) error {
	if el.opts.FaultHook == nil {
		return nil
	}
	return el.opts.FaultHook(ph, epoch)
}

func (el *Elastic) span(ph obs.Phase, epoch int, start time.Time) {
	if el.rec == nil {
		return
	}
	el.rec.Record(obs.Span{Trace: uint64(epoch), Phase: ph, Rank: -1,
		Start: start.UnixNano(), Dur: int64(time.Since(start))})
}

// republish binds the given reference under the elastic object's name,
// replacing the previous epoch's. This is the resize commit point.
func (el *Elastic) republish(ref orb.IOR) error {
	cli := orb.NewClient()
	defer cli.Close()
	if to := el.opts.Export.DataTimeout; to > 0 {
		cli.Timeout = to
	}
	res := naming.NewResolver(cli, el.opts.Export.NameServer)
	if el.opts.Export.Replica {
		return res.BindReplica(el.opts.Export.Name, ref)
	}
	return res.Bind(el.opts.Export.Name, ref, true)
}

// Resize changes the object's computing-thread count to n, repartitioning
// the live state onto a successor epoch. It blocks until the new epoch
// serves (or the resize aborts, leaving the old epoch serving). Resizes are
// serialized; a resize to the current size is a no-op.
func (el *Elastic) Resize(n int) error {
	el.resizeMu.Lock()
	defer el.resizeMu.Unlock()
	el.mu.Lock()
	run := el.cur
	closed := el.closed
	el.mu.Unlock()
	if closed || run == nil {
		return ErrStopped
	}
	if n < 1 {
		return fmt.Errorf("core: resize to %d threads", n)
	}
	if n == run.size {
		return nil
	}
	newEpoch := run.epoch + 1
	start := time.Now()
	el.insTotal.Inc()
	abort := func(ph ResizePhase, err error) error {
		el.insAborted.Inc()
		return fmt.Errorf("core: resize to %d (epoch %d) aborted at %s: %w", n, newEpoch, ph, err)
	}

	// Quiesce: shed new arrivals everywhere; queued calls drain ahead of
	// the ticket via the collective loop's priority select.
	if err := el.fault(ResizeQuiesce, newEpoch); err != nil {
		return abort(ResizeQuiesce, err)
	}
	for _, o := range run.objs {
		o.draining.Store(true)
	}
	p := &pendingResize{epoch: newEpoch, size: n, xfer: newStateXfer(len(el.opts.State), n)}
	el.mu.Lock()
	el.pending = p
	el.mu.Unlock()
	undrain := func() {
		el.mu.Lock()
		el.pending = nil
		el.mu.Unlock()
		for _, o := range run.objs {
			o.draining.Store(false)
		}
	}

	// Snapshot: ticket into the collective loop, wait for the agreed
	// outcome. The wait is bounded like a data transfer.
	t := &resizeTicket{snapDone: make(chan error, 1), commit: make(chan bool, 1)}
	select {
	case run.objs[0].resizeCh <- t:
	default:
		undrain()
		return abort(ResizeQuiesce, errors.New("a resize ticket is already pending"))
	}
	var deadline <-chan time.Time
	if to := run.objs[0].opts.DataTimeout; to > 0 {
		tm := time.NewTimer(to)
		defer tm.Stop()
		deadline = tm.C
	}
	select {
	case err := <-t.snapDone:
		if err != nil {
			t.commit <- false
			undrain()
			return abort(ResizeSnapshot, err)
		}
	case err := <-run.errc:
		// The old epoch died under us: nothing to resume. The engine is
		// unusable from here on.
		el.mu.Lock()
		el.cur = nil
		el.closed = true
		el.pending = nil
		el.mu.Unlock()
		for _, o := range run.objs {
			o.Close()
		}
		run.world.Close()
		if err == nil {
			err = errors.New("core: serve loops exited during resize")
		}
		return abort(ResizeSnapshot, err)
	case <-deadline:
		// The buffered commit=false lets a late ticket pickup resume
		// cleanly; its snapshot will fail on the cleared pending anyway.
		t.commit <- false
		undrain()
		return abort(ResizeSnapshot, errors.New("timed out waiting for the collective loop to quiesce"))
	}
	el.span(obs.PhaseResizeQuiesce, newEpoch, start)

	// Spawn: successor world, state rebuilt at the new size, transfer
	// applied.
	if err := el.fault(ResizeSpawn, newEpoch); err != nil {
		t.commit <- false
		undrain()
		return abort(ResizeSpawn, err)
	}
	newRun, err := el.launch(run.world, newEpoch, n, p.xfer.lengths, p.xfer)
	if err != nil {
		t.commit <- false
		undrain()
		return abort(ResizeSpawn, err)
	}

	// Publish: the commit point.
	pubStart := time.Now()
	err = el.fault(ResizePublish, newEpoch)
	if err == nil {
		err = el.republish(newRun.objs[0].Ref())
	}
	if err != nil {
		el.teardownRun(newRun)
		t.commit <- false
		undrain()
		return abort(ResizePublish, err)
	}
	el.span(obs.PhaseResizePublish, newEpoch, pubStart)

	// Retire: committed — post-commit faults are recorded, not honored.
	if err := el.fault(ResizeRetire, newEpoch); err != nil {
		el.insLate.Inc()
	}
	t.commit <- true
	<-run.errc
	// A request can race past the draining check into the queue while the
	// ticket is being served; its adapter goroutine is parked on replyCh.
	// Refuse it re-resolvably so the client rebinds to the new epoch.
	for drained := false; !drained; {
		select {
		case call := <-run.objs[0].queue:
			call.replyCh <- callResult{err: orb.ObjectNotExist(run.objs[0].ref.Key)}
		default:
			drained = true
		}
	}
	for _, o := range run.objs {
		o.Close()
	}
	run.world.Close()
	el.mu.Lock()
	el.cur = newRun
	el.pending = nil
	el.mu.Unlock()
	el.insMovedElems.Add(uint64(p.xfer.crossElems))
	el.insMovedChunks.Add(uint64(p.xfer.chunkCount))
	el.insEpoch.Set(int64(newEpoch))
	el.insRanks.Set(int64(n))
	if el.insDur != nil {
		el.insDur.Observe(time.Since(start))
	}
	return nil
}
