package core

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/dseq"
	"repro/internal/wire"
)

// consumeMoves drains ch until every expected transfer for (argIdx,
// wantReply) has arrived and been stored into seq. Transfers belonging to
// other arguments of the same invocation are set aside and requeued.
// A nil stop channel disables cancellation; a zero timeout disables the
// deadline.
func consumeMoves(ch chan *wire.Data, stop <-chan struct{}, timeout time.Duration,
	argIdx uint32, wantReply bool, expected []dist.Move, seq dseq.Transferable) error {

	want := make(map[uint64]int, len(expected)) // dstOff → element count
	for _, m := range expected {
		want[uint64(m.DstOff)] = m.Len
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	var stashed []*wire.Data
	for len(want) > 0 {
		var d *wire.Data
		for i, m := range stashed {
			if m.ArgIndex == argIdx && m.Reply == wantReply {
				d = m
				stashed = append(stashed[:i], stashed[i+1:]...)
				break
			}
		}
		if d == nil {
			select {
			case d = <-ch:
			case <-stop:
				return ErrStopped
			case <-deadline:
				return fmt.Errorf("core: timed out awaiting %d transfers for arg %d", len(want), argIdx)
			}
			if d == nil {
				// Poison sentinel: a data connection feeding this transfer
				// set died (peer crash detected by keepalive, orderly close,
				// or I/O failure). Fail now instead of waiting out the
				// timeout.
				return fmt.Errorf("core: data connection lost awaiting %d transfers for arg %d", len(want), argIdx)
			}
			if d.ArgIndex != argIdx || d.Reply != wantReply {
				stashed = append(stashed, d)
				if len(stashed) > bucketCapacity {
					return fmt.Errorf("core: transfer flood: %d unexpected messages", len(stashed))
				}
				continue
			}
		}
		n, ok := want[d.DstOff]
		if !ok {
			return fmt.Errorf("core: unexpected transfer at offset %d for arg %d", d.DstOff, argIdx)
		}
		if int(d.Count) != n {
			return fmt.Errorf("core: transfer at offset %d has %d elements, want %d", d.DstOff, d.Count, n)
		}
		err := seq.UnmarshalRange(int(d.DstOff), d.Payload)
		// UnmarshalRange copied the elements out (or rejected the chunk), so
		// the borrowed transport buffer goes back to the pool either way.
		d.Release()
		if err != nil {
			return err
		}
		delete(want, d.DstOff)
	}
	// Requeue transfers that belong to other arguments.
	for _, d := range stashed {
		ch <- d
	}
	return nil
}
