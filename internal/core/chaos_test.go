package core

// Chaos tests: drive SPMD invocations through a faulted transport and
// assert the failure contract — every rank returns the same error within
// the deadline, no rank hangs in a collective, futures always resolve, and
// no goroutine leaks.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dseq"
	"repro/internal/rts"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// chaosTimeout bounds one faulted invocation as seen by the client; well
// under testTimeout so a clean failure is distinguishable from a hung
// collective resolved only by the rts receive timeout.
const chaosTimeout = 3 * time.Second

// faultRig abstracts the two injection styles used below: schedule-driven
// FaultPlan wrapping and the deterministic magic-byte corruptor.
type faultRig interface {
	Options() *transport.Options
	Arm()
}

// armedWrap applies a FaultPlan to dialed streams, but only once armed:
// binding and interface discovery run clean, and the schedule starts
// counting at the moment of arming, which pins the faults to the
// invocation under test.
type armedWrap struct {
	plan  *transport.FaultPlan
	armed atomic.Bool
}

func (a *armedWrap) Options() *transport.Options {
	return &transport.Options{Wrap: func(rw io.ReadWriteCloser) io.ReadWriteCloser {
		return &armedStream{owner: a, inner: rw}
	}}
}

func (a *armedWrap) Arm() { a.armed.Store(true) }

type armedStream struct {
	owner *armedWrap
	mu    sync.Mutex
	inner io.ReadWriteCloser
	inj   io.ReadWriteCloser
}

func (s *armedStream) target() io.ReadWriteCloser {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.owner.armed.Load() {
		if s.inj == nil {
			s.inj = s.owner.plan.Wrap(s.inner)
		}
		return s.inj
	}
	return s.inner
}

func (s *armedStream) Read(p []byte) (int, error)  { return s.target().Read(p) }
func (s *armedStream) Write(p []byte) (int, error) { return s.target().Write(p) }
func (s *armedStream) Close() error                { return s.inner.Close() }

// magicCorruptor flips a bit in the frame magic of the first write after
// arming. A flip in payload bytes would be silent (PGIOP carries no
// checksums), so targeting the magic makes the peer's rejection
// deterministic: the server kills the connection on the bad header.
type magicCorruptor struct {
	armed atomic.Bool
	hit   atomic.Bool
}

func (m *magicCorruptor) Options() *transport.Options {
	return &transport.Options{Wrap: func(rw io.ReadWriteCloser) io.ReadWriteCloser {
		return &magicStream{owner: m, inner: rw}
	}}
}

func (m *magicCorruptor) Arm() { m.armed.Store(true) }

type magicStream struct {
	owner *magicCorruptor
	inner io.ReadWriteCloser
}

func (s *magicStream) Read(p []byte) (int, error) { return s.inner.Read(p) }

func (s *magicStream) Write(p []byte) (int, error) {
	if len(p) > 0 && s.owner.armed.Load() && s.owner.hit.CompareAndSwap(false, true) {
		c := append([]byte(nil), p...)
		c[0] ^= 0x40
		return s.inner.Write(c)
	}
	return s.inner.Write(p)
}

func (s *magicStream) Close() error { return s.inner.Close() }

// runClientOpts is runClient with explicit bind options (chaos tests pass
// fault-injecting transports and short timeouts).
func (tc *testCluster) runClientOpts(t *testing.T, cRanks int, opts BindOptions, fn func(c *rts.Comm, b *Binding) error) {
	t.Helper()
	w := rts.NewWorld(cRanks, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err := w.Run(func(c *rts.Comm) error {
		b, err := SPMDBind(c, "example", tc.ns.Addr(), opts)
		if err != nil {
			return err
		}
		defer b.Close()
		return fn(c, b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// assertCoherentFailure gathers every rank's error at rank 0 and checks
// they all failed with the very same error.
func assertCoherentFailure(c *rts.Comm, err error) error {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	all, gerr := c.Gather(0, []byte(msg))
	if gerr != nil {
		return gerr
	}
	if c.Rank() != 0 {
		return nil
	}
	for r, p := range all {
		if len(p) == 0 {
			return fmt.Errorf("rank %d saw no error from the faulted invocation", r)
		}
		if !bytes.Equal(p, all[0]) {
			return fmt.Errorf("incoherent errors: rank 0 %q, rank %d %q", all[0], r, p)
		}
	}
	return nil
}

func TestChaosInvocationFailsCoherently(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		for _, mode := range []string{"cut-mid-frame", "corrupt-header"} {
			method, mode := method, mode
			testutil.CheckGoroutines(t, fmt.Sprintf("%v/%s", method, mode), func(t *testing.T) {
				var rig faultRig
				if mode == "cut-mid-frame" {
					plan := transport.NewFaultPlan(7)
					// Well below one rank's data chunk, so the frame that
					// crosses it is truncated mid-body before the hard close.
					plan.CutAfterWriteBytes = 700
					rig = &armedWrap{plan: plan}
				} else {
					rig = &magicCorruptor{}
				}
				tc := startCluster(t, 2, true, nil)
				opts := BindOptions{Method: method, Timeout: chaosTimeout, Transport: rig.Options()}
				tc.runClientOpts(t, 2, opts, func(c *rts.Comm, b *Binding) error {
					const n = 512
					arr, err := dseq.New(c, dseq.Float64, n, nil)
					if err != nil {
						return err
					}
					arr.FillFunc(func(g int) float64 { return float64(g) })

					// A clean invocation first proves the plumbing.
					if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err != nil {
						return fmt.Errorf("pre-fault invoke: %w", err)
					}

					rig.Arm()
					start := time.Now()
					_, err = b.Invoke("scale", scaleScalars(3), []DistArg{InOutSeq(arr)})
					elapsed := time.Since(start)
					if err == nil {
						return errors.New("invocation over faulted transport succeeded")
					}
					// Clean failure, not an rts-receive-timeout rescue.
					if elapsed > testTimeout-5*time.Second {
						return fmt.Errorf("failure took %v, wanted well under the rts timeout", elapsed)
					}
					return assertCoherentFailure(c, err)
				})
			})
		}
	}
}

func TestFutureWaitTwice(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	tc.runClient(t, 2, Centralized, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 100, nil)
		if err != nil {
			return err
		}
		arr.FillFunc(func(int) float64 { return 1 })
		f := b.InvokeNB("sum", ScalarEncoder().Bytes(), []DistArg{InSeq(arr)})
		s1, e1 := f.Wait()
		s2, e2 := f.Wait() // second Wait must return the same result, not hang
		if e1 != nil || e2 != nil {
			return fmt.Errorf("waits: %v, %v", e1, e2)
		}
		if !bytes.Equal(s1, s2) {
			return errors.New("second Wait returned different scalars")
		}
		if s3, e3, ok := f.WaitTimeout(time.Second); !ok || e3 != nil || !bytes.Equal(s1, s3) {
			return fmt.Errorf("WaitTimeout after Wait: ok=%v err=%v", ok, e3)
		}
		return nil
	})
}

func TestFutureWaitAfterConnDied(t *testing.T) {
	testutil.CheckGoroutines(t, "body", func(t *testing.T) {
		plan := transport.NewFaultPlan(5)
		plan.CutAfterWriteBytes = 1 // first armed write kills the stream
		rig := &armedWrap{plan: plan}
		tc := startCluster(t, 2, true, nil)
		opts := BindOptions{Method: Multiport, Timeout: chaosTimeout, Transport: rig.Options()}
		tc.runClientOpts(t, 2, opts, func(c *rts.Comm, b *Binding) error {
			arr, err := dseq.New(c, dseq.Float64, 64, nil)
			if err != nil {
				return err
			}
			rig.Arm()
			f := b.InvokeNB("scale", scaleScalars(2), []DistArg{InOutSeq(arr)})
			_, e1, ok := f.WaitTimeout(testTimeout)
			if !ok {
				return errors.New("future unresolved after connection death")
			}
			if e1 == nil {
				return errors.New("invocation over dead connection succeeded")
			}
			if _, e2 := f.Wait(); e2 == nil || e2.Error() != e1.Error() {
				return fmt.Errorf("second Wait: %v, first %v", e2, e1)
			}
			return assertCoherentFailure(c, e1)
		})
	})
}

func TestFutureOutstandingAtWorldShutdown(t *testing.T) {
	testutil.CheckGoroutines(t, "body", func(t *testing.T) {
		tc := startCluster(t, 2, true, nil)
		plan := transport.NewFaultPlan(3)
		plan.CutAfterWriteBytes = 1
		rig := &armedWrap{plan: plan}
		const cRanks = 2
		w := rts.NewWorld(cRanks, rts.Options{RecvTimeout: testTimeout})
		futs := make([]*Future, cRanks)
		binds := make([]*Binding, cRanks)
		err := w.Run(func(c *rts.Comm) error {
			b, err := SPMDBind(c, "example", tc.ns.Addr(),
				BindOptions{Method: Centralized, Timeout: chaosTimeout, Transport: rig.Options()})
			if err != nil {
				return err
			}
			binds[c.Rank()] = b
			arr, err := dseq.New(c, dseq.Float64, 64, nil)
			if err != nil {
				return err
			}
			rig.Arm()
			futs[c.Rank()] = b.InvokeNB("scale", scaleScalars(2), []DistArg{InOutSeq(arr)})
			return nil // leave the future outstanding
		})
		if err != nil {
			t.Fatal(err)
		}
		// The world dies under the in-flight invocation; the futures must
		// still resolve (with errors), not hang.
		w.Close()
		for r, f := range futs {
			if _, ferr, ok := f.WaitTimeout(testTimeout); !ok {
				t.Fatalf("rank %d future unresolved after world shutdown", r)
			} else if ferr == nil {
				t.Errorf("rank %d future succeeded against a cut transport", r)
			}
		}
		for _, b := range binds {
			if b != nil {
				b.Close()
			}
		}
	})
}

// blackholeRig simulates a SIGKILL'd peer from the moment it is armed: every
// wrapped stream swallows writes (they "succeed" into a dead peer's kernel
// buffer) and delivers silence on reads (inbound bytes are discarded), with
// no error ever surfacing from the stream itself. The only way out is
// liveness detection.
type blackholeRig struct{ armed atomic.Bool }

func (r *blackholeRig) Options() *transport.Options {
	return &transport.Options{Wrap: func(rw io.ReadWriteCloser) io.ReadWriteCloser {
		return &blackholeStream{owner: r, inner: rw, done: make(chan struct{})}
	}}
}

func (r *blackholeRig) Arm() { r.armed.Store(true) }

type blackholeStream struct {
	owner *blackholeRig
	inner io.ReadWriteCloser
	done  chan struct{}
	once  sync.Once
}

func (s *blackholeStream) Read(p []byte) (int, error) {
	for {
		n, err := s.inner.Read(p)
		if !s.owner.armed.Load() {
			return n, err
		}
		if err != nil {
			// The real stream ended; stay silent (like a dead peer) until
			// the wrapper itself is closed locally.
			<-s.done
			return 0, err
		}
		_ = n // swallow delivered bytes: a killed peer sent nothing
	}
}

func (s *blackholeStream) Write(p []byte) (int, error) {
	if s.owner.armed.Load() {
		return len(p), nil
	}
	return s.inner.Write(p)
}

func (s *blackholeStream) Close() error {
	s.once.Do(func() { close(s.done) })
	return s.inner.Close()
}

// TestKeepaliveSurfacesKilledServerCoherently is the SIGKILL acceptance
// case: mid-run, the whole server side goes silent without so much as a FIN
// (blackholed streams). The client-side keepalive must declare the peers
// dead within roughly twice the keepalive interval and every client rank
// must surface the same error through the collective agreement — no
// DataTimeout stall, no incoherent split.
func TestKeepaliveSurfacesKilledServerCoherently(t *testing.T) {
	testutil.CheckGoroutines(t, "body", func(t *testing.T) {
		rig := &blackholeRig{}
		tc := startCluster(t, 2, true, nil)
		const interval = 100 * time.Millisecond
		opts := BindOptions{
			Method:            Multiport,
			Timeout:           testTimeout, // detection must not come from here
			Transport:         rig.Options(),
			KeepaliveInterval: interval,
		}
		tc.runClientOpts(t, 2, opts, func(c *rts.Comm, b *Binding) error {
			const n = 512
			arr, err := dseq.New(c, dseq.Float64, n, nil)
			if err != nil {
				return err
			}
			arr.FillFunc(func(g int) float64 { return float64(g) })
			if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err != nil {
				return fmt.Errorf("pre-fault invoke: %w", err)
			}

			rig.Arm()
			start := time.Now()
			_, err = b.Invoke("scale", scaleScalars(3), []DistArg{InOutSeq(arr)})
			elapsed := time.Since(start)
			if err == nil {
				return errors.New("invocation against a killed server succeeded")
			}
			// The property under test is that detection came from the
			// keepalive (nominally ~2x the interval), not from the binding's
			// 20s invocation timeout or the 30s DataTimeout. The bound leaves
			// generous scheduler headroom so loaded -race runs don't flake on
			// wall-clock jitter.
			if elapsed > testTimeout/2 {
				return fmt.Errorf("dead server surfaced after %v, want keepalive-scale detection (interval %v), not a timeout rescue",
					elapsed, interval)
			}
			return assertCoherentFailure(c, err)
		})
	})
}

// TestObjectShutdownRacesInFlightInvocations drains the served object while
// a client hammers it with collective invocations: completed calls must stay
// completed, the drain must not wedge either side, every rank must agree on
// the eventual failure, and nothing may leak.
func TestObjectShutdownRacesInFlightInvocations(t *testing.T) {
	testutil.CheckGoroutines(t, "body", func(t *testing.T) {
		tc := startCluster(t, 2, true, nil)
		tc.runClient(t, 2, Multiport, func(c *rts.Comm, b *Binding) error {
			const n = 256
			arr, err := dseq.New(c, dseq.Float64, n, nil)
			if err != nil {
				return err
			}
			arr.FillFunc(func(g int) float64 { return float64(g) })
			if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err != nil {
				return fmt.Errorf("pre-drain invoke: %w", err)
			}

			// Rank 0 triggers the drain concurrently with the invocation
			// stream below; the communicating thread's object drains first so
			// its in-flight dispatch can finish collectively. The trigger is
			// event-driven — it fires once the stream has completed a call —
			// rather than a wall-clock sleep racing the loop.
			drainReady := make(chan struct{})
			if c.Rank() == 0 {
				go func() {
					<-drainReady
					tc.objMu.Lock()
					objs := append([]*Object(nil), tc.objects...)
					tc.objMu.Unlock()
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					for _, o := range objs {
						if o != nil {
							o.Shutdown(ctx)
						}
					}
				}()
			}

			var ierr error
			start := time.Now()
			for i := 0; i < 10000; i++ {
				if _, ierr = b.Invoke("scale", scaleScalars(1), []DistArg{InOutSeq(arr)}); ierr != nil {
					break
				}
				if c.Rank() == 0 && i == 0 {
					close(drainReady)
				}
				if time.Since(start) > testTimeout-5*time.Second {
					return errors.New("invocations kept succeeding long after the drain began")
				}
			}
			if ierr == nil {
				return errors.New("invocations never observed the drain")
			}
			return assertCoherentFailure(c, ierr)
		})
	})
}

// TestChaosServerSurvivesFaultedClient exercises the server half of the
// degradation story: after a client's multiport invocation dies mid-frame,
// the same cluster must keep serving fresh, healthy clients.
func TestChaosServerSurvivesFaultedClient(t *testing.T) {
	// A short data timeout so the server sheds the faulted invocation
	// quickly instead of holding the collective loop for the 30s default.
	tc := startCluster(t, 2, true, nil, func(o *ExportOptions) { o.DataTimeout = 2 * time.Second })

	plan := transport.NewFaultPlan(9)
	plan.CutAfterWriteBytes = 700
	rig := &armedWrap{plan: plan}
	opts := BindOptions{Method: Multiport, Timeout: chaosTimeout, Transport: rig.Options()}
	tc.runClientOpts(t, 2, opts, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 512, nil)
		if err != nil {
			return err
		}
		rig.Arm()
		if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err == nil {
			return errors.New("faulted invocation succeeded")
		}
		return nil
	})

	// A fresh client over a clean transport must succeed on the same object.
	tc.runClient(t, 2, Multiport, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 256, nil)
		if err != nil {
			return err
		}
		arr.FillFunc(func(int) float64 { return 1 })
		reply, err := b.Invoke("scale", scaleScalars(4), []DistArg{InOutSeq(arr)})
		if err != nil {
			return fmt.Errorf("post-chaos invoke: %w", err)
		}
		d, err := ScalarDecoder(reply)
		if err != nil {
			return err
		}
		if n, err := d.ReadLong(); err != nil || n != 256 {
			return fmt.Errorf("post-chaos reply: %d, %v", n, err)
		}
		return nil
	})
}
