package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rts"
	"repro/internal/testutil"
)

// The elastic harness: one Block-distributed double state of elasticLen
// elements seeded g+1, so its sum is the exact integer
// elasticLen*(elasticLen+1)/2 at any membership — the conservation invariant
// every test asserts.
const elasticLen = 96
const elasticSum = float64(elasticLen * (elasticLen + 1) / 2)

// elasticOps exposes the state: esum (idempotent collective reduction),
// eget (Out-arg copy of the full state, for multiset conservation checks)
// and ebump (adds a scalar to every element, to prove mutations survive
// resizes).
func elasticOps(es *EpochState) []Operation {
	data := es.Seq("data").(*dseq.Seq[float64])
	sumDesc := OpDesc{Name: "esum"}
	getDesc := OpDesc{Name: "eget", Args: []ArgDesc{{Name: "arr", Dir: Out, Elem: "double"}}}
	bumpDesc := OpDesc{Name: "ebump"}
	return []Operation{
		{
			Desc:    sumDesc,
			NewArgs: SeqArgsFloat64(sumDesc.Args),
			Handler: func(call *ServerCall) error {
				local := 0.0
				for _, v := range data.LocalData() {
					local += v
				}
				total, err := call.Comm.Allreduce(rts.Float64sToBytes([]float64{local}), rts.SumFloat64)
				if err != nil {
					return err
				}
				vals, err := rts.BytesToFloat64s(total)
				if err != nil {
					return err
				}
				call.Out.WriteDouble(vals[0])
				return nil
			},
		},
		{
			Desc:    getDesc,
			NewArgs: SeqArgsFloat64(getDesc.Args),
			Handler: func(call *ServerCall) error {
				out := ArgSeq[float64](call, 0)
				if err := out.ResizeAlloc(data.Len()); err != nil {
					return err
				}
				// Same length, spec and communicator: identical layouts, so
				// the local windows line up.
				copy(out.LocalData(), data.LocalData())
				return nil
			},
		},
		{
			Desc:    bumpDesc,
			NewArgs: SeqArgsFloat64(bumpDesc.Args),
			Handler: func(call *ServerCall) error {
				delta, err := call.In.ReadDouble()
				if err != nil {
					return orb.Marshal(err)
				}
				local := data.LocalData()
				for i := range local {
					local[i] += delta
				}
				return nil
			},
		},
	}
}

// startElastic exports an elastic object named "elastic" behind a fresh name
// server. Cleanup closes both (both are idempotent, so tests that need the
// engine down before a leak check may close it themselves first).
func startElastic(t *testing.T, size int, tweak ...func(*ElasticOptions)) (*Elastic, *naming.Server) {
	t.Helper()
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts := ElasticOptions{
		Export: ExportOptions{
			TypeID:      "IDL:elastic_object:1.0",
			Name:        "elastic",
			NameServer:  ns.Addr(),
			DataTimeout: testTimeout,
		},
		World: rts.Options{RecvTimeout: testTimeout},
		State: []StateDesc{Float64State("data", elasticLen, func(g int) float64 { return float64(g + 1) })},
		Ops:   elasticOps,
	}
	for _, f := range tweak {
		f(&opts)
	}
	el, err := NewElastic(opts, size)
	if err != nil {
		ns.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		el.Close()
		ns.Close()
	})
	return el, ns
}

// retryableDuringResize classifies the only failures a well-behaved client
// may observe across a membership change: stale bindings (re-resolve) and
// transient shedding (retry).
func retryableDuringResize(err error) bool {
	return naming.Stale(err) || orb.IsTransient(err)
}

// elasticInvoke runs one client invocation with rebind-and-retry until
// deadline: the contract under test is that an idempotent operation never
// fails for a cause a Rebinder-style client cannot absorb.
func elasticInvoke(c *rts.Comm, nsAddr, op string, scalars []byte, args []DistArg) ([]byte, error) {
	deadline := time.Now().Add(testTimeout)
	var lastErr error
	for time.Now().Before(deadline) {
		b, err := SPMDBind(c, "elastic", nsAddr, BindOptions{Timeout: testTimeout})
		if err != nil {
			if retryableDuringResize(err) {
				lastErr = err
				time.Sleep(2 * time.Millisecond)
				continue
			}
			return nil, err
		}
		reply, err := b.Invoke(op, scalars, args)
		b.Close()
		if err == nil {
			return reply, nil
		}
		if !retryableDuringResize(err) {
			return nil, err
		}
		lastErr = err
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("retries exhausted: %w", lastErr)
}

// elasticSumOnce reads the state total through a fresh single-rank client.
func elasticSumOnce(t *testing.T, nsAddr string) float64 {
	t.Helper()
	var total float64
	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err := w.Run(func(c *rts.Comm) error {
		reply, err := elasticInvoke(c, nsAddr, "esum", nil, nil)
		if err != nil {
			return err
		}
		d, err := ScalarDecoder(reply)
		if err != nil {
			return err
		}
		total, err = d.ReadDouble()
		return err
	})
	if err != nil {
		t.Fatalf("esum: %v", err)
	}
	return total
}

// elasticGetOnce copies the full state out through a fresh single-rank
// client (one rank, so the local window is the whole sequence).
func elasticGetOnce(t *testing.T, nsAddr string) []float64 {
	t.Helper()
	var vals []float64
	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err := w.Run(func(c *rts.Comm) error {
		arr, err := dseq.New(c, dseq.Float64, 0, nil)
		if err != nil {
			return err
		}
		if _, err := elasticInvoke(c, nsAddr, "eget", nil, []DistArg{OutSeq(arr)}); err != nil {
			return err
		}
		vals = append([]float64(nil), arr.LocalData()...)
		return nil
	})
	if err != nil {
		t.Fatalf("eget: %v", err)
	}
	return vals
}

func TestElasticResizeGrowShrink(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	el, ns := startElastic(t, 2, func(o *ElasticOptions) {
		o.Metrics = reg
		o.Export.Multiport = true
		o.Export.Compression = ^uint8(0) // exercise compressed state transfer
	})
	if el.Epoch() != 1 || el.Size() != 2 {
		t.Fatalf("fresh engine at epoch %d size %d", el.Epoch(), el.Size())
	}
	if got := elasticSumOnce(t, ns.Addr()); got != elasticSum {
		t.Fatalf("initial sum %v, want %v", got, elasticSum)
	}

	// Grow. The repartitioned state must sum identically.
	if err := el.Resize(5); err != nil {
		t.Fatal(err)
	}
	if el.Epoch() != 2 || el.Size() != 5 {
		t.Fatalf("after grow: epoch %d size %d", el.Epoch(), el.Size())
	}
	if got := elasticSumOnce(t, ns.Addr()); got != elasticSum {
		t.Fatalf("sum after grow %v, want %v", got, elasticSum)
	}

	// Mutate, then shrink: the mutation must survive the move.
	e := ScalarEncoder()
	e.WriteDouble(10)
	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	err := w.Run(func(c *rts.Comm) error {
		_, err := elasticInvoke(c, ns.Addr(), "ebump", e.Bytes(), nil)
		return err
	})
	w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := el.Resize(1); err != nil {
		t.Fatal(err)
	}
	if el.Epoch() != 3 || el.Size() != 1 {
		t.Fatalf("after shrink: epoch %d size %d", el.Epoch(), el.Size())
	}
	wantSum := elasticSum + 10*elasticLen
	if got := elasticSumOnce(t, ns.Addr()); got != wantSum {
		t.Fatalf("sum after shrink %v, want %v", got, wantSum)
	}
	want := make([]float64, elasticLen)
	for i := range want {
		want[i] = float64(i+1) + 10
	}
	if err := testutil.Conserved(want, elasticGetOnce(t, ns.Addr())); err != nil {
		t.Fatal(err)
	}

	// Resize to the current size is a no-op.
	if err := el.Resize(1); err != nil {
		t.Fatal(err)
	}
	if el.Epoch() != 3 {
		t.Fatalf("no-op resize advanced the epoch to %d", el.Epoch())
	}

	if v := reg.Counter("core.resize.total").Value(); v != 2 {
		t.Errorf("core.resize.total = %d, want 2", v)
	}
	if v := reg.Counter("core.resize.aborted").Value(); v != 0 {
		t.Errorf("core.resize.aborted = %d, want 0", v)
	}
	if v := reg.Counter("core.resize.moved_elems").Value(); v == 0 {
		t.Error("core.resize.moved_elems = 0 after 2 repartitions")
	}
	if v := reg.Counter("core.resize.moved_chunks").Value(); v == 0 {
		t.Error("core.resize.moved_chunks = 0 after 2 repartitions")
	}
	if v := reg.Gauge("core.resize.epoch").Value(); v != 3 {
		t.Errorf("core.resize.epoch = %d, want 3", v)
	}
	if v := reg.Gauge("core.resize.ranks").Value(); v != 1 {
		t.Errorf("core.resize.ranks = %d, want 1", v)
	}
	if v := reg.Histogram("core.resize.duration_ns").Count(); v != 2 {
		t.Errorf("core.resize.duration_ns count = %d, want 2", v)
	}
}

func TestElasticAdminResize(t *testing.T) {
	t.Parallel()
	el, ns := startElastic(t, 1, func(o *ElasticOptions) { o.Export.Server.AdminResize = true })
	cli := orb.NewClient()
	cli.Timeout = testTimeout
	defer cli.Close()
	res := naming.NewResolver(cli, ns.Addr())
	ref, err := res.Resolve("elastic", "")
	if err != nil {
		t.Fatal(err)
	}

	e := ScalarEncoder()
	e.WriteLong(3)
	reply, err := cli.Invoke(ref, resizeOp, e.Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ScalarDecoder(reply)
	if err != nil {
		t.Fatal(err)
	}
	if ep, err := d.ReadLong(); err != nil || ep != 1 {
		t.Fatalf("admin resize acknowledged epoch %d (%v), want 1", ep, err)
	}
	testutil.Eventually(t, testTimeout, "admin resize applied", func() bool {
		return el.Epoch() == 2 && el.Size() == 3
	})

	// Out-of-range targets are refused without touching membership.
	e = ScalarEncoder()
	e.WriteLong(0)
	ref2, err := res.Resolve("elastic", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Invoke(ref2, resizeOp, e.Bytes(), false); err == nil {
		t.Fatal("admin resize to 0 threads succeeded")
	}
	if el.Epoch() != 2 || el.Size() != 3 {
		t.Fatalf("refused resize changed membership: epoch %d size %d", el.Epoch(), el.Size())
	}
}

func TestElasticAdminResizeDisabled(t *testing.T) {
	t.Parallel()
	el, ns := startElastic(t, 1) // AdminResize off (the default)
	cli := orb.NewClient()
	cli.Timeout = testTimeout
	defer cli.Close()
	ref, err := naming.NewResolver(cli, ns.Addr()).Resolve("elastic", "")
	if err != nil {
		t.Fatal(err)
	}
	e := ScalarEncoder()
	e.WriteLong(2)
	_, err = cli.Invoke(ref, resizeOp, e.Bytes(), false)
	var sys *orb.SystemException
	if !errors.As(err, &sys) || sys.RepoID != orb.RepoBadOperation {
		t.Fatalf("disabled admin resize: %v, want BAD_OPERATION", err)
	}
	if el.Epoch() != 1 {
		t.Fatalf("disabled admin resize advanced the epoch to %d", el.Epoch())
	}
}

func TestElasticEpochMismatchRefusedStale(t *testing.T) {
	t.Parallel()
	el, ns := startElastic(t, 2)
	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err := w.Run(func(c *rts.Comm) error {
		ref := el.Ref()
		ref.Epoch = 99 // a binding from a resize the server never saw
		b, err := SPMDBindRef(c, ref, BindOptions{Timeout: testTimeout})
		if err != nil {
			return fmt.Errorf("bind: %w", err) // describe carries no epoch tag
		}
		defer b.Close()
		_, err = b.Invoke("esum", nil, nil)
		if err == nil {
			return errors.New("wrong-epoch invocation succeeded")
		}
		var sys *orb.SystemException
		if !errors.As(err, &sys) || sys.RepoID != orb.RepoObjectNotExist {
			return fmt.Errorf("wrong-epoch refusal = %v, want OBJECT_NOT_EXIST", err)
		}
		if !naming.Stale(err) {
			return fmt.Errorf("wrong-epoch refusal %v is not Stale (no re-resolve)", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = ns
}

// TestElasticMixedVersionClient is the interop guarantee: a client built
// before elasticity existed (its reference carries no epoch, so its headers
// are untagged) keeps working against a resized server through the ordinary
// resolve path.
func TestElasticMixedVersionClient(t *testing.T) {
	t.Parallel()
	el, ns := startElastic(t, 2)
	if err := el.Resize(3); err != nil {
		t.Fatal(err)
	}
	w := rts.NewWorld(2, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err := w.Run(func(c *rts.Comm) error {
		// Resolve as an old client would, then strip the epoch: the binding
		// now encodes pre-elastic wire headers (method codes 0..2).
		cli := orb.NewClient()
		cli.Timeout = testTimeout
		defer cli.Close()
		var ref orb.IOR
		if c.Rank() == 0 {
			r, err := naming.NewResolver(cli, ns.Addr()).Resolve("elastic", "")
			if err != nil {
				return err
			}
			r.Epoch = 0
			ref = r
		}
		refBytes, err := c.Bcast(0, []byte(ref.String()))
		if err != nil {
			return err
		}
		if ref, err = orb.ParseIOR(string(refBytes)); err != nil {
			return err
		}
		if ref.Epoch != 0 {
			return fmt.Errorf("test setup: epoch %d survived the strip", ref.Epoch)
		}
		b, err := SPMDBindRef(c, ref, BindOptions{Timeout: testTimeout})
		if err != nil {
			return err
		}
		defer b.Close()
		reply, err := b.Invoke("esum", nil, nil)
		if err != nil {
			return fmt.Errorf("untagged invocation on resized server: %w", err)
		}
		d, err := ScalarDecoder(reply)
		if err != nil {
			return err
		}
		if total, err := d.ReadDouble(); err != nil || total != elasticSum {
			return fmt.Errorf("sum = %v (%v), want %v", total, err, elasticSum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestElasticStaleBindingRebinds is the client-visible resize contract: a
// binding from the old epoch fails its next invocation with a stale
// (re-resolvable) error, and one rebind lands on the new epoch.
func TestElasticStaleBindingRebinds(t *testing.T) {
	t.Parallel()
	el, ns := startElastic(t, 2)
	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err := w.Run(func(c *rts.Comm) error {
		b, err := SPMDBind(c, "elastic", ns.Addr(), BindOptions{Timeout: testTimeout})
		if err != nil {
			return err
		}
		if _, err := b.Invoke("esum", nil, nil); err != nil {
			b.Close()
			return fmt.Errorf("pre-resize: %w", err)
		}
		if err := el.Resize(3); err != nil {
			b.Close()
			return err
		}
		_, err = b.Invoke("esum", nil, nil)
		b.Close()
		if err == nil {
			return errors.New("stale binding kept working after the resize")
		}
		if !naming.Stale(err) && !orb.IsTransient(err) {
			return fmt.Errorf("stale binding failed non-retryably: %v", err)
		}
		// Exactly one re-resolve recovers.
		nb, err := SPMDBind(c, "elastic", ns.Addr(), BindOptions{Timeout: testTimeout})
		if err != nil {
			return fmt.Errorf("rebind: %w", err)
		}
		defer nb.Close()
		reply, err := nb.Invoke("esum", nil, nil)
		if err != nil {
			return fmt.Errorf("first invocation after rebind: %w", err)
		}
		d, err := ScalarDecoder(reply)
		if err != nil {
			return err
		}
		if total, err := d.ReadDouble(); err != nil || total != elasticSum {
			return fmt.Errorf("sum = %v (%v), want %v", total, err, elasticSum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectResizeNonElastic(t *testing.T) {
	t.Parallel()
	tc := startCluster(t, 1, false, nil)
	tc.objMu.Lock()
	o := tc.objects[0]
	tc.objMu.Unlock()
	if err := o.Resize(2); !errors.Is(err, ErrNotElastic) {
		t.Fatalf("Resize on a conventional export: %v, want ErrNotElastic", err)
	}
}
