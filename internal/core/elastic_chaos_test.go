package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rts"
	"repro/internal/testutil"
)

// The membership-chaos harness: each seed derives a deterministic schedule
// of resizes with a fault planned at one protocol phase (or none), replays
// it against a live elastic object under continuous idempotent client load,
// and asserts the three invariants:
//
//   - element conservation — the state holds exactly the seeded multiset of
//     values after every step, however membership moved;
//   - epoch monotonicity — committed resizes advance the epoch strictly;
//     aborted ones leave epoch and size untouched;
//   - zero client-visible failures — the load client, which rebinds on
//     stale errors and retries on transient ones (exactly what
//     naming.Rebinder-style callers do), never sees a non-retryable error
//     or a wrong answer.

const (
	chaosSeeds   = 50
	chaosSteps   = 4
	chaosMaxSize = 4
)

// plannedFault is the atomic cell the fault hook consults: the target epoch
// in the high bits, the phase+1 in the low byte, zero for no fault. One cell
// per harness, written only between resizes.
type plannedFault struct{ v atomic.Int64 }

func (p *plannedFault) arm(epoch int, phase int) { p.v.Store(int64(epoch)<<8 | int64(phase+1)) }
func (p *plannedFault) disarm()                  { p.v.Store(0) }
func (p *plannedFault) hits(ph ResizePhase, epoch int) bool {
	v := p.v.Load()
	return v != 0 && int(v>>8) == epoch && int(v&0xff)-1 == int(ph)
}

// errInjected marks a fault injected by the harness; the resize must surface
// it (pre-commit) or absorb it (post-commit), never mistake it for its own.
var errInjected = fmt.Errorf("injected membership fault")

func TestResizeChaos(t *testing.T) {
	// The seed set is fixed, so phase coverage is a deterministic property
	// of the harness itself: prove every resize phase gets faulted before
	// spending any time replaying.
	covered := map[int]bool{}
	for seed := int64(0); seed < chaosSeeds; seed++ {
		s := testutil.NewChaosSchedule(seed, chaosSteps, 1, chaosMaxSize, NumResizePhases)
		for p := range s.FaultPhases(NumResizePhases) {
			covered[p] = true
		}
	}
	for p := 0; p < NumResizePhases; p++ {
		if !covered[p] {
			t.Fatalf("seed set [0,%d) never faults phase %s — widen it", chaosSeeds, ResizePhase(p))
		}
	}
	for seed := int64(0); seed < chaosSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			testutil.CheckGoroutines(t, "chaos", func(t *testing.T) {
				runResizeChaos(t, seed)
			})
		})
	}
}

func runResizeChaos(t *testing.T, seed int64) {
	sched := testutil.NewChaosSchedule(seed, chaosSteps, 1, chaosMaxSize, NumResizePhases)
	var fault plannedFault
	el, ns := startElastic(t, 2, func(o *ElasticOptions) {
		o.FaultHook = func(ph ResizePhase, epoch int) error {
			if fault.hits(ph, epoch) {
				return fmt.Errorf("%w at %s (epoch %d)", errInjected, ph, epoch)
			}
			return nil
		}
	})

	// Continuous load: one client goroutine summing in a loop for the whole
	// replay, with the standard rebind-and-retry envelope. It fails the test
	// only on a non-retryable error or a wrong total.
	stopLoad := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() { loadErr <- chaosLoad(ns.Addr(), stopLoad) }()

	var clock testutil.VirtualClock
	epochs := []int{el.Epoch()}
	size := el.Size()
	for i, step := range sched.Steps {
		if err := clock.AdvanceTo(step.Time); err != nil {
			t.Fatal(err)
		}
		epoch := el.Epoch()
		if step.FaultPhase >= 0 {
			fault.arm(epoch+1, step.FaultPhase)
		}
		err := el.Resize(step.Target)
		fault.disarm()
		switch {
		case step.Target == size:
			// No-op resize (only the first step can collide with the
			// initial size): nothing changes, no fault is consulted.
			if err != nil {
				t.Fatalf("step %d: no-op resize to %d: %v", i, step.Target, err)
			}
			if el.Epoch() != epoch {
				t.Fatalf("step %d: no-op resize advanced the epoch", i)
			}
		case step.FaultPhase >= 0 && ResizePhase(step.FaultPhase) != ResizeRetire:
			// Pre-commit fault: the resize must abort, surfacing the
			// injected error, and membership must be untouched.
			if err == nil {
				t.Fatalf("step %d: fault at %s did not abort the resize",
					i, ResizePhase(step.FaultPhase))
			}
			if el.Epoch() != epoch || el.Size() != size {
				t.Fatalf("step %d: aborted resize moved membership to epoch %d size %d",
					i, el.Epoch(), el.Size())
			}
		default:
			// Clean resize, or a post-commit (retire) fault that must be
			// absorbed: the new epoch commits either way.
			if err != nil {
				t.Fatalf("step %d: resize to %d: %v", i, step.Target, err)
			}
			if el.Epoch() != epoch+1 || el.Size() != step.Target {
				t.Fatalf("step %d: committed resize at epoch %d size %d, want epoch %d size %d",
					i, el.Epoch(), el.Size(), epoch+1, step.Target)
			}
			size = step.Target
			epochs = append(epochs, el.Epoch())
		}
		// The object is always reachable and always sums to the seeded
		// total, whatever just happened.
		if got := elasticSumOnce(t, ns.Addr()); got != elasticSum {
			t.Fatalf("step %d: sum %v, want %v", i, got, elasticSum)
		}
	}
	close(stopLoad)
	if err := <-loadErr; err != nil {
		t.Fatalf("load client: %v", err)
	}
	if err := testutil.Monotonic(epochs); err != nil {
		t.Fatalf("committed epochs %v: %v", epochs, err)
	}
	// Element conservation, value by value: the live state is exactly the
	// seeded multiset after the whole schedule.
	want := make([]float64, elasticLen)
	for i := range want {
		want[i] = float64(i + 1)
	}
	if err := testutil.Conserved(want, elasticGetOnce(t, ns.Addr())); err != nil {
		t.Fatal(err)
	}
	el.Close()
	ns.Close()
}

// chaosLoad hammers the object with the idempotent reduction until stopped,
// rebinding on stale errors and retrying on transient ones. Any other
// failure — or a wrong total — is a client-visible resize defect.
func chaosLoad(nsAddr string, stop <-chan struct{}) error {
	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	return w.Run(func(c *rts.Comm) error {
		var b *Binding
		defer func() {
			if b != nil {
				b.Close()
			}
		}()
		for {
			select {
			case <-stop:
				return nil
			default:
			}
			if b == nil {
				nb, err := SPMDBind(c, "elastic", nsAddr, BindOptions{Timeout: testTimeout})
				if err != nil {
					if retryableDuringResize(err) {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					return fmt.Errorf("bind: %w", err)
				}
				b = nb
			}
			reply, err := b.Invoke("esum", nil, nil)
			if err != nil {
				b.Close()
				b = nil
				if retryableDuringResize(err) {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				return fmt.Errorf("non-retryable invocation failure: %w", err)
			}
			d, err := ScalarDecoder(reply)
			if err != nil {
				return err
			}
			if total, err := d.ReadDouble(); err != nil || total != elasticSum {
				return fmt.Errorf("sum = %v (%v), want %v", total, err, elasticSum)
			}
		}
	})
}
