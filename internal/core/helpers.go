package core

import (
	"fmt"

	"repro/internal/dseq"
	"repro/internal/rts"
)

// SeqArgsFloat64 builds an Operation.NewArgs factory for an operation whose
// distributed arguments are all sequences of double (the common case in the
// paper), using the per-argument server templates from descs. Out arguments
// (length -1) start empty; the handler sets their length.
func SeqArgsFloat64(descs []ArgDesc) func(comm *rts.Comm, lengths []int) ([]dseq.Transferable, error) {
	return func(comm *rts.Comm, lengths []int) ([]dseq.Transferable, error) {
		if len(lengths) != len(descs) {
			return nil, fmt.Errorf("%w: %d lengths for %d args", ErrArgMismatch, len(lengths), len(descs))
		}
		out := make([]dseq.Transferable, len(descs))
		for i, d := range descs {
			n := lengths[i]
			if n < 0 {
				n = 0
			}
			s, err := dseq.New(comm, dseq.Float64, n, d.specOrBlock())
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
}

// ArgSeq recovers the concrete sequence type inside a handler:
//
//	arr := core.ArgSeq[float64](call, 0)
//
// It panics on element-type mismatch, which indicates a generated-code bug
// rather than a runtime condition.
func ArgSeq[T any](call *ServerCall, i int) *dseq.Seq[T] {
	s, ok := call.Args[i].(*dseq.Seq[T])
	if !ok {
		panic(fmt.Sprintf("core: argument %d of %s is %T", i, call.Op, call.Args[i]))
	}
	return s
}
