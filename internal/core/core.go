// Package core implements PARDIS SPMD objects: the paper's primary
// contribution. An SPMD object is "an object associated with a set of one or
// more computing threads visible to the request broker, capable of
// satisfying services if and only if a request for them is delivered to all
// the computing threads" (paper §2).
//
// The package provides:
//
//   - Export: server-side registration of an SPMD object implementation
//     across all its computing threads, producing an IOR that carries one
//     endpoint per thread (multi-port) or the communicating thread's
//     endpoint only (centralized), and registering the name in the naming
//     domain.
//
//   - SPMDBind: the collective bind ("has to be called by all the computing
//     threads of a client... used by clients wishing to act as one entity");
//     Bind: the per-thread non-collective bind for the non-distributed
//     mapping.
//
//   - Invoke / InvokeNB: collective operation invocation with distributed
//     arguments, blocking or future-returning, over either argument
//     transfer method of §3:
//
//     Centralized (§3.2): distributed arguments are gathered at the client's
//     communicating thread, travel inside the request body over the single
//     connection, and are scattered by the server's communicating thread;
//     results flow back the same way.
//
//     Multi-port (§3.3): the invocation header is still delivered centrally
//     (avoiding inter-client contention), but argument data flows directly
//     between the owning computing threads over per-thread connections,
//     according to the redistribution plan between the client's and the
//     server's distribution templates.
package core

import (
	"errors"
	"fmt"

	"repro/internal/cdr"
	"repro/internal/dist"
	"repro/internal/dseq"
)

// Method selects the distributed argument transfer method of an invocation.
type Method int

const (
	// Centralized routes all argument data through the communicating
	// threads (paper §3.2).
	Centralized Method = iota
	// Multiport moves argument data directly between owning threads
	// (paper §3.3).
	Multiport
)

func (m Method) String() string {
	switch m {
	case Centralized:
		return "centralized"
	case Multiport:
		return "multi-port"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Dir is an IDL parameter passing mode.
type Dir int

const (
	In Dir = iota
	Out
	InOut
)

func (d Dir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// Errors reported by the SPMD engine.
var (
	ErrBadHeader   = errors.New("core: malformed invocation header")
	ErrArgMismatch = errors.New("core: arguments do not match operation signature")
	ErrNotSPMD     = errors.New("core: object reference is not an SPMD object")
	ErrNoMultiport = errors.New("core: object does not expose multi-port endpoints")
	ErrStopped     = errors.New("core: SPMD object stopped serving")
	ErrBusy        = errors.New("core: invocation already in progress on this binding")
	ErrShardMethod = errors.New("core: shard routing requires the centralized transfer method")
)

// ErrStopServing is the sentinel a server-side operation handler returns
// (wrapped or bare) to make Serve return on every computing thread after
// the current request completes.
var ErrStopServing = errors.New("core: stop serving")

// ArgDesc describes one distributed parameter of an operation, as published
// by the server's interface description ("the server can set the
// distribution of a distributed sequence which is an `in' parameter to any
// of its operations before registering; otherwise, the distribution for that
// sequence will default to uniform blockwise", §2.2).
type ArgDesc struct {
	Name string
	Dir  Dir
	Elem string    // element type name; must match the client's codec
	Spec dist.Spec // server-side distribution template (nil = Block)
}

// specOrBlock returns the server's template, defaulting to uniform block.
func (a ArgDesc) specOrBlock() dist.Spec {
	if a.Spec == nil {
		return dist.Block{}
	}
	return a.Spec
}

// OpDesc describes an operation's distributed-argument signature. Scalar
// (non-distributed) arguments are opaque to the engine: they travel as a
// marshalled payload produced and consumed by generated stub code.
type OpDesc struct {
	Name string
	Args []ArgDesc
}

// DistArg pairs a client-side sequence with its passing mode for one
// invocation.
type DistArg struct {
	Dir Dir
	Seq dseq.Transferable
}

// InSeq declares an "in" distributed argument.
func InSeq(s dseq.Transferable) DistArg { return DistArg{Dir: In, Seq: s} }

// OutSeq declares an "out" distributed argument; the sequence is resized to
// the server-chosen length and overwritten.
func OutSeq(s dseq.Transferable) DistArg { return DistArg{Dir: Out, Seq: s} }

// InOutSeq declares an "inout" distributed argument, like the paper's
// diff_array in diffusion().
func InOutSeq(s dseq.Transferable) DistArg { return DistArg{Dir: InOut, Seq: s} }

// describeOp is the reserved operation name the engine serves directly for
// bind-time interface discovery.
const describeOp = "_pardis_describe"

// encodeOpTable writes the server's operation table (reply of describeOp).
func encodeOpTable(e *cdr.Encoder, ops []OpDesc) {
	e.WriteULong(uint32(len(ops)))
	for _, op := range ops {
		e.WriteString(op.Name)
		e.WriteULong(uint32(len(op.Args)))
		for _, a := range op.Args {
			e.WriteString(a.Name)
			e.WriteEnum(uint32(a.Dir))
			e.WriteString(a.Elem)
			dist.EncodeSpec(e, a.specOrBlock())
		}
	}
}

// decodeOpTable reads an operation table.
func decodeOpTable(d *cdr.Decoder) ([]OpDesc, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("%w: %d operations", ErrBadHeader, n)
	}
	ops := make([]OpDesc, n)
	for i := range ops {
		if ops[i].Name, err = d.ReadString(); err != nil {
			return nil, err
		}
		na, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if na > 1<<12 {
			return nil, fmt.Errorf("%w: %d args", ErrBadHeader, na)
		}
		ops[i].Args = make([]ArgDesc, na)
		for j := range ops[i].Args {
			a := &ops[i].Args[j]
			if a.Name, err = d.ReadString(); err != nil {
				return nil, err
			}
			dir, err := d.ReadEnum()
			if err != nil {
				return nil, err
			}
			if dir > uint32(InOut) {
				return nil, fmt.Errorf("%w: dir %d", ErrBadHeader, dir)
			}
			a.Dir = Dir(dir)
			if a.Elem, err = d.ReadString(); err != nil {
				return nil, err
			}
			if a.Spec, err = dist.DecodeSpec(d); err != nil {
				return nil, err
			}
		}
	}
	return ops, nil
}
