package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cdr"
	"repro/internal/dist"
	"repro/internal/dseq"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/zcodec"
)

// Directive kinds broadcast from the communicating thread to the others.
const (
	directiveCall byte = iota
	directiveStop
)

// Serve processes requests until an operation handler returns ErrStopServing
// or Close is called on thread 0. It must be called collectively by all the
// computing threads of the object — this is the paper's requirement that a
// request be "delivered to all the computing threads". Serve returns nil on
// an orderly stop.
func (o *Object) Serve() error {
	for {
		proceed, err := o.Poll(true)
		if err != nil {
			return err
		}
		if !proceed {
			return nil
		}
	}
}

// Poll processes at most one pending request, collectively. With block set
// it waits for a request (or stop); without it, it returns immediately when
// no request is queued — this is the hook that lets a busy server
// "interrupt its computation in order to process outstanding requests"
// (paper §2.1). The boolean result reports whether serving should continue.
func (o *Object) Poll(block bool) (bool, error) {
	if o.comm.Rank() == 0 {
		var call *pendingCall
		if block {
			// Priority select: requests already queued drain before a pending
			// resize ticket is honored, so in-flight collectives complete in
			// the old epoch (the quiesce phase sheds new arrivals upstream).
			select {
			case call = <-o.queue:
			default:
				select {
				case call = <-o.queue:
				case t := <-o.resizeCh:
					return o.serveResize(t)
				case <-o.stop:
				}
			}
		} else {
			select {
			case call = <-o.queue:
			case t := <-o.resizeCh:
				return o.serveResize(t)
			case <-o.stop:
			default:
			}
		}
		if call == nil {
			// Either stopping, or a non-blocking poll found nothing.
			stopping := false
			select {
			case <-o.stop:
				stopping = true
			default:
			}
			if !block && !stopping {
				// Tell the other threads there is nothing to do. A "none"
				// verdict reuses the stop directive space with a third value.
				if _, err := o.comm.Bcast(0, directiveNoneMsg); err != nil {
					return false, err
				}
				return true, nil
			}
			if _, err := o.comm.Bcast(0, directiveStopMsg); err != nil {
				return false, err
			}
			return false, nil
		}
		if o.rec != nil && call.enqueuedNS != 0 {
			o.rec.Record(obs.Span{Trace: uint64(call.token), Phase: obs.PhaseQueue, Rank: 0,
				Start: call.enqueuedNS, Dur: time.Now().UnixNano() - call.enqueuedNS})
		}
		// Broadcast the call to every thread.
		e := cdr.NewEncoder(cdr.NativeOrder)
		e.WriteOctet(directiveCall)
		call.header.encode(e)
		if _, err := o.comm.Bcast(0, e.Bytes()); err != nil {
			call.replyCh <- callResult{err: &orb.SystemException{RepoID: orb.RepoInternal, Message: err.Error()}}
			return false, err
		}
		reply, stop, err := o.processCall(call.header)
		call.replyCh <- callResult{reply: reply, err: err}
		// Agree on whether to continue.
		verdict := 0
		if stop {
			verdict = 1
		}
		if _, err := o.comm.Bcast(0, verdictMsgs[verdict]); err != nil {
			return false, err
		}
		return !stop, nil
	}

	// Non-communicating threads follow thread 0's directives.
	dir, err := o.comm.Bcast(0, nil)
	if err != nil {
		return false, err
	}
	if len(dir) == 0 {
		return false, fmt.Errorf("%w: empty directive", ErrBadHeader)
	}
	switch dir[0] {
	case directiveStop:
		return false, nil
	case directiveNone:
		return true, nil
	case directiveResize:
		agreed := agreeError(o.comm, o.callResizeHook())
		_ = agreed // thread 0 reports the agreed outcome to the controller
		verdict, err := o.comm.Bcast(0, nil)
		if err != nil {
			return false, err
		}
		if len(verdict) == 1 && verdict[0] == 1 {
			// Snapshot committed: this epoch retires and Serve returns nil.
			return false, nil
		}
		// Aborted: resume serving in the old epoch.
		return true, nil
	case directiveCall:
		d := cdr.NewDecoder(dir, cdr.NativeOrder)
		if _, err := d.ReadOctet(); err != nil {
			return false, err
		}
		hdr, err := decodeInvocationHeader(d)
		if err != nil {
			return false, err
		}
		if _, _, err := o.processCall(hdr); err != nil {
			// Handler errors are reported through thread 0's reply; other
			// threads keep serving.
			_ = err
		}
		verdict, err := o.comm.Bcast(0, nil)
		if err != nil {
			return false, err
		}
		if len(verdict) == 1 && verdict[0] == 1 {
			return false, nil
		}
		return true, nil
	default:
		return false, fmt.Errorf("%w: directive %d", ErrBadHeader, dir[0])
	}
}

const directiveNone byte = 2

// directiveResize tells the computing threads to snapshot their live state
// for a membership change: each runs its onResize hook, the outcome is
// agreed collectively, and thread 0's follow-up verdict broadcast either
// retires the epoch (1: Serve returns nil everywhere) or resumes it (0: the
// resize aborted upstream and serving continues).
const directiveResize byte = 3

// Shared one-byte directive and verdict messages: the broadcast payloads are
// read-only everywhere, so every Poll round reuses these instead of
// allocating fresh single-byte slices.
var (
	directiveNoneMsg   = []byte{directiveNone}
	directiveStopMsg   = []byte{directiveStop}
	directiveResizeMsg = []byte{directiveResize}
	verdictMsgs        = [2][]byte{{0}, {1}}
)

// resizeTicket is the controller's handle on one in-loop resize: the serving
// loop reports the collectively-agreed snapshot outcome on snapDone, then
// blocks until the controller decides on commit (true retires the epoch,
// false resumes it).
type resizeTicket struct {
	snapDone chan error
	commit   chan bool
}

// callResizeHook runs this thread's snapshot callback, guarding against a
// resize directive reaching an object without elastic wiring.
func (o *Object) callResizeHook() error {
	if o.onResize == nil {
		return &orb.SystemException{RepoID: orb.RepoInternal, Message: "core: resize directive on non-elastic object"}
	}
	return o.onResize()
}

// serveResize is thread 0's side of the resize directive: broadcast it, run
// the collective snapshot, report the agreed outcome to the controller, and
// relay the controller's commit decision as the verdict. The boolean result
// mirrors Poll's: false when the epoch retired.
func (o *Object) serveResize(t *resizeTicket) (bool, error) {
	if _, err := o.comm.Bcast(0, directiveResizeMsg); err != nil {
		t.snapDone <- err
		return false, err
	}
	agreed := agreeError(o.comm, o.callResizeHook())
	t.snapDone <- agreed
	retire := <-t.commit
	verdict := 0
	if retire {
		verdict = 1
	}
	if _, err := o.comm.Bcast(0, verdictMsgs[verdict]); err != nil {
		return false, err
	}
	return !retire, nil
}

// processCall runs one collective invocation on this computing thread. The
// returned reply bytes are meaningful on thread 0 only; stop reports whether
// the handler requested an orderly shutdown.
func (o *Object) processCall(h *invocationHeader) (reply []byte, stop bool, err error) {
	op := o.ops[h.Op] // validated on thread 0 before broadcast
	if op == nil {
		return nil, false, orb.BadOperation(h.Op)
	}
	me := o.comm.Rank()
	sRanks := o.comm.Size()

	// Build the server-side argument sequences.
	lengths := make([]int, len(h.Args))
	for i, a := range h.Args {
		if a.Dir == Out {
			lengths[i] = -1
		} else {
			lengths[i] = a.Layout.Length
		}
	}
	args, err := op.NewArgs(o.comm, lengths)
	if err != nil {
		return nil, false, &orb.SystemException{RepoID: orb.RepoInternal, Message: err.Error()}
	}
	if len(args) != len(h.Args) {
		return nil, false, &orb.SystemException{
			RepoID:  orb.RepoInternal,
			Message: fmt.Sprintf("NewArgs built %d sequences for %d args", len(args), len(h.Args)),
		}
	}

	// Buckets exist to accumulate multi-port and streamed transfers (plus
	// attachments); plain centralized calls carry their data inline, so skip
	// the bucket (and its buffered channel) entirely for them. dropBucket
	// still runs in case a stray Data message created one for this token.
	var bucket *dataBucket
	if h.Method == Multiport || h.Streamed {
		bucket = o.bucket(h.Token)
	}
	defer o.dropBucket(h.Token)

	// Receive the In/InOut argument data. Failures are captured, not
	// returned: every thread must reach the agreement below so a client
	// that died mid-transfer (this thread's receive timed out) fails the
	// upcall coherently everywhere instead of wedging the collective loop.
	recvStart := time.Now()
	recvErr := func() error {
		if h.Streamed {
			return o.receiveStreamed(bucket, h, args)
		}
		for i, a := range h.Args {
			if a.Dir == Out {
				continue
			}
			switch h.Method {
			case Centralized:
				// Thread 0 holds the full payload; scatter it per the server
				// layout (collective).
				if err := args[i].ScatterUnmarshal(0, a.Data); err != nil {
					return &orb.SystemException{RepoID: orb.RepoMarshal, Message: err.Error()}
				}
			case Multiport:
				moves, err := dist.Plan(a.Layout, args[i].Layout())
				if err != nil {
					return &orb.SystemException{RepoID: orb.RepoMarshal, Message: err.Error()}
				}
				if err := o.receiveMoves(bucket, uint32(i), dist.PlanByDest(moves, sRanks)[me], args[i]); err != nil {
					return &orb.SystemException{RepoID: orb.RepoMarshal, Message: err.Error()}
				}
			}
		}
		return nil
	}()
	o.span(h.Token, obs.PhaseRecvXfer, recvStart)
	if agreed := agreeError(o.comm, recvErr); agreed != nil {
		// No thread runs the handler; thread 0 replies with the agreed
		// error and serving continues.
		return nil, false, agreed
	}

	// The collective upcall. The scalar-results encoder is per-object
	// scratch: rh.encode copies its bytes into the reply stream before the
	// next invocation can reset it.
	if o.outScratch == nil {
		o.outScratch = orb.NewArgEncoder()
	} else {
		orb.ResetArgEncoder(o.outScratch)
	}
	out := o.outScratch
	upcallStart := time.Now()
	herr := func() error {
		scalars, err := orb.ArgDecoder(h.Scalars)
		if err != nil {
			return orb.Marshal(err)
		}
		call := &ServerCall{Comm: o.comm, Op: h.Op, In: scalars, Out: out, Args: args}
		return safeInvoke(op.Handler, call)
	}()
	o.span(h.Token, obs.PhaseUpcall, upcallStart)
	if herr != nil && errors.Is(herr, ErrStopServing) {
		stop = true
		herr = nil
	}
	// Synchronize after the invocation (the paper's post-invocation
	// synchronization of the server's computing threads), fused with error
	// agreement: a handler failure on any thread — previously invisible to
	// the client unless it was thread 0's — fails the upcall everywhere.
	if agreed := agreeError(o.comm, herr); agreed != nil {
		return nil, stop, agreed
	}

	// Return the Out/InOut argument data.
	sendStart := time.Now()
	rh := &replyHeader{Scalars: out.Bytes(), Args: make([]replyArg, len(h.Args))}
	sendErr := func() error {
		for i, a := range h.Args {
			rh.Args[i] = replyArg{Dir: a.Dir, Length: args[i].Len()}
			if a.Dir == InOut && args[i].Len() != a.Layout.Length {
				return &orb.SystemException{
					RepoID:  orb.RepoMarshal,
					Message: fmt.Sprintf("handler resized inout arg %d from %d to %d", i, a.Layout.Length, args[i].Len()),
				}
			}
		}
		if h.Streamed {
			return o.sendStreamed(bucket, h, args)
		}
		for i, a := range h.Args {
			if a.Dir == In {
				continue
			}
			switch h.Method {
			case Centralized:
				payload, err := args[i].GatherMarshal(0)
				if err != nil {
					return &orb.SystemException{RepoID: orb.RepoMarshal, Message: err.Error()}
				}
				rh.Args[i].Data = payload
			case Multiport:
				// Compute the client's final layout for this argument.
				var clientLayout dist.Layout
				if a.Dir == InOut {
					clientLayout = a.Layout
				} else {
					spec := a.Spec
					if spec == nil {
						spec = dist.Block{}
					}
					cl, err := spec.Layout(args[i].Len(), h.ClientRanks)
					if err != nil {
						return &orb.SystemException{RepoID: orb.RepoMarshal, Message: err.Error()}
					}
					clientLayout = cl
				}
				moves, err := dist.Plan(args[i].Layout(), clientLayout)
				if err != nil {
					return &orb.SystemException{RepoID: orb.RepoMarshal, Message: err.Error()}
				}
				if err := o.sendMoves(bucket, h.Token, uint32(i), dist.PlanBySource(moves, sRanks)[me], args[i]); err != nil {
					return &orb.SystemException{RepoID: orb.RepoComm, Message: err.Error()}
				}
			}
		}
		return nil
	}()
	o.span(h.Token, obs.PhaseSendXfer, sendStart)
	if agreed := agreeError(o.comm, sendErr); agreed != nil {
		return nil, stop, agreed
	}

	if me == 0 {
		e := orb.NewArgEncoder()
		rh.encode(e, h.Method, h.Streamed)
		reply = e.Bytes()
	}
	return reply, stop, nil
}

// receiveStreamed consumes a streamed centralized request's chunk schedule:
// for every In/InOut argument, thread 0 pulls the scheduled chunks off the
// token's bucket and the threads collectively scatter each one. The schedule
// always runs to completion — after a failure thread 0 substitutes fail
// markers instead of pulling — so the collective loop cannot desynchronize,
// and the first failure is reported once the schedule is done.
func (o *Object) receiveStreamed(bucket *dataBucket, h *invocationHeader, args []dseq.Transferable) error {
	me := o.comm.Rank()
	ce := int(h.ChunkElems)
	var firstErr error
	for i, a := range h.Args {
		if a.Dir == Out {
			continue
		}
		st, ok := args[i].(dseq.StreamTransferable)
		if !ok {
			// Deterministic from the sequence types, so every thread returns
			// here together, before any chunk collective.
			return &orb.SystemException{RepoID: orb.RepoMarshal, Message: fmt.Sprintf("arg %d does not support streamed transfers", i)}
		}
		l := a.Layout.Length
		nchunks := chunkCount(l, ce)
		for k := 0; k < nchunks; k++ {
			start, n := chunkRange(l, ce, k)
			chunkStart := time.Now()
			var payload []byte
			var frame *wire.Data
			if me == 0 {
				if firstErr != nil {
					payload = dseq.FailMarker
				} else if d, err := nextChunk(bucket.ch, o.stop, o.opts.DataTimeout, uint32(i), false, start, n, k == nchunks-1); err != nil {
					firstErr = err
					payload = dseq.FailMarker
				} else {
					frame, payload = d, d.Payload
				}
			}
			err := st.ScatterUnmarshalRange(o.comm, 0, start, n, payload)
			if frame != nil {
				frame.Release()
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			o.span(h.Token, obs.PhaseChunkRecv, chunkStart)
		}
	}
	if firstErr != nil {
		return &orb.SystemException{RepoID: orb.RepoMarshal, Message: firstErr.Error()}
	}
	return nil
}

// sendStreamed returns a streamed centralized invocation's Out/InOut results
// as chunked Data messages: the threads collectively gather-marshal each
// scheduled chunk and thread 0 writes it to the client's connection, before
// the Reply is encoded — same-connection ordering then guarantees the client
// holds every chunk once it sees the Reply. The reply-leg chunk size is
// recomputed from the final result lengths exactly as the client will.
func (o *Object) sendStreamed(bucket *dataBucket, h *invocationHeader, args []dseq.Transferable) error {
	me := o.comm.Rank()
	outLens := make([]int, 0, len(args))
	for i, a := range h.Args {
		if a.Dir != In {
			outLens = append(outLens, args[i].Len())
		}
	}
	ce := chunkElemsFor(int(h.ChunkElems), outLens)
	var conn *transport.Conn
	var firstErr error
	gatherDown := false // stop issuing collectives after one fails
	connDown := false   // stop writing after the connection fails

	// Agree on the reply leg's compression mask: the request arrived on the
	// connection the reply chunks leave on, so thread 0 reads the mask its
	// adapter negotiated during the handshake and shares it before the first
	// collective marshal. Deterministically skipped (on every thread — the
	// options are replicated) when the object never accepts offers, so the
	// raw engine's collective schedule is untouched.
	mask := uint8(0)
	if o.opts.Server.Compression != 0 {
		var mb []byte
		if me == 0 {
			if c, err := bucket.conn(0, o.stop, attachTimeout); err == nil {
				conn = c
				codecs, _ := c.Compression()
				mask = codecs
			}
			// Under Auto the estimator can veto the negotiated codec for
			// this reply leg: on a connection we can write faster than we
			// can encode, raw wins. Decided once here, then broadcast, so
			// the collective marshal schedule stays deterministic.
			if mask != 0 && o.opts.Server.CompressionPolicy == zcodec.PolicyAuto && !compressionWins(conn.WriteBandwidth()) {
				mask = 0
				o.compSkipped.Inc()
			}
			// A missing attachment resolves to raw here; the send loop's own
			// conn fetch reports the failure through the usual error path.
			mb = []byte{mask}
		}
		mb, err := o.comm.Bcast(0, mb)
		if err != nil {
			return &orb.SystemException{RepoID: orb.RepoInternal, Message: err.Error()}
		}
		if len(mb) == 1 {
			mask = mb[0]
		}
	}

	// With a codec engaged, thread 0 hands finished frames to a bounded
	// send worker so chunk k+1 is gathered and encoded while chunk k is
	// still being written — the server-side mirror of the client's
	// pipelined request leg. A single worker draining a FIFO channel keeps
	// frames in schedule order; raw replies keep the exact serial send.
	var (
		sendCh   chan *wire.Data
		sendDone chan struct{}
		sendErr  error // owned by the worker until sendDone is closed
	)
	if me == 0 && mask != 0 && conn != nil {
		sendCh = make(chan *wire.Data, encodeAheadDepth)
		sendDone = make(chan struct{})
		go func() {
			defer close(sendDone)
			for msg := range sendCh {
				if err := conn.WriteMessage(msg); err != nil && sendErr == nil {
					sendErr = err
				}
			}
		}()
	}

	for i, a := range h.Args {
		if a.Dir == In {
			continue
		}
		st, ok := args[i].(dseq.StreamTransferable)
		if !ok {
			if sendCh != nil {
				close(sendCh)
				<-sendDone
			}
			return &orb.SystemException{RepoID: orb.RepoMarshal, Message: fmt.Sprintf("arg %d does not support streamed transfers", i)}
		}
		l := args[i].Len()
		nchunks := chunkCount(l, ce)
		for k := 0; k < nchunks; k++ {
			start, n := chunkRange(l, ce, k)
			chunkStart := time.Now()
			var payload []byte
			if !gatherDown {
				p, err := st.GatherMarshalRangeZ(o.comm, 0, start, n, mask)
				if err != nil {
					gatherDown = true
					if firstErr == nil {
						firstErr = err
					}
				} else {
					payload = p
				}
			}
			if me != 0 {
				o.spanCodec(h.Token, obs.PhaseChunkSend, chunkStart, mask)
				continue
			}
			if firstErr != nil {
				payload = dseq.FailMarker
			}
			if !connDown && conn == nil {
				c, err := bucket.conn(0, o.stop, attachTimeout)
				if err != nil {
					connDown = true
					if firstErr == nil {
						firstErr = err
					}
				} else {
					conn = c
				}
			}
			if !connDown {
				msg := &wire.Data{
					RequestID: h.Token, ArgIndex: uint32(i), SrcRank: 0, DstRank: 0,
					DstOff: uint64(start), Count: uint64(n), Reply: true,
					Flags: chunkFlagsZ(k == nchunks-1, payload), Payload: payload,
				}
				if sendCh != nil {
					sendCh <- msg
				} else if err := conn.WriteMessage(msg); err != nil {
					connDown = true
					if firstErr == nil {
						firstErr = err
					}
				}
			}
			o.spanCodec(h.Token, obs.PhaseChunkSend, chunkStart, mask)
		}
	}
	if sendCh != nil {
		close(sendCh)
		<-sendDone
		if firstErr == nil {
			firstErr = sendErr
		}
	}
	if firstErr != nil {
		return &orb.SystemException{RepoID: orb.RepoComm, Message: firstErr.Error()}
	}
	return nil
}

// receiveMoves consumes the expected inbound transfers for one argument on
// this computing thread and stores them into seq. The wait is bounded by
// the object's DataTimeout so a client thread that died mid-transfer fails
// this upcall instead of blocking the collective loop until Close.
func (o *Object) receiveMoves(bucket *dataBucket, argIdx uint32, expected []dist.Move, seq dseq.Transferable) error {
	return consumeMoves(bucket.ch, o.stop, o.opts.DataTimeout, argIdx, false, expected, seq)
}

// attachTimeout bounds how long a return-flow sender waits for a client
// attachment that has not yet arrived.
const attachTimeout = 30 * time.Second

// sendMoves ships this computing thread's outbound transfers for one
// argument back to the client threads over the connections they attached.
func (o *Object) sendMoves(bucket *dataBucket, token, argIdx uint32, mine []dist.Move, seq dseq.Transferable) error {
	for _, m := range mine {
		payload, err := seq.MarshalRange(m.SrcOff, m.Len)
		if err != nil {
			return err
		}
		conn, err := bucket.conn(m.DstRank, o.stop, attachTimeout)
		if err != nil {
			return err
		}
		msg := &wire.Data{
			RequestID: token,
			ArgIndex:  argIdx,
			SrcRank:   uint32(o.comm.Rank()),
			DstRank:   uint32(m.DstRank),
			DstOff:    uint64(m.DstOff),
			Count:     uint64(m.Len),
			Reply:     true,
			Payload:   payload,
		}
		if err := conn.WriteMessage(msg); err != nil {
			return err
		}
	}
	return nil
}

// safeInvoke contains handler panics.
func safeInvoke(h func(*ServerCall) error, call *ServerCall) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &orb.SystemException{RepoID: orb.RepoInternal, Message: fmt.Sprint("handler panic: ", p)}
		}
	}()
	return h(call)
}
