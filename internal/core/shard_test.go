package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rts"
)

// shardTestOps builds the op table each shard group exports: "who" returns
// the shard's tag, "scale" exercises a distributed inout argument so the
// routed path carries real SPMD payloads, not just scalars.
func shardTestOps(tag string) []Operation {
	whoDesc := OpDesc{Name: "who"}
	scaleDesc := OpDesc{Name: "scale", Args: []ArgDesc{{Name: "arr", Dir: InOut, Elem: "double"}}}
	return []Operation{
		{
			Desc:    whoDesc,
			NewArgs: func(*rts.Comm, []int) ([]dseq.Transferable, error) { return nil, nil },
			Handler: func(call *ServerCall) error {
				call.Out.WriteString(tag)
				return nil
			},
		},
		{
			Desc:    scaleDesc,
			NewArgs: SeqArgsFloat64(scaleDesc.Args),
			Handler: func(call *ServerCall) error {
				factor, err := call.In.ReadLong()
				if err != nil {
					return orb.Marshal(err)
				}
				arr := ArgSeq[float64](call, 0)
				local := arr.LocalData()
				for i := range local {
					local[i] *= float64(factor)
				}
				call.Out.WriteString(tag)
				return nil
			},
		},
	}
}

// shardWorld is one single-thread SPMD server group acting as a shard.
type shardWorld struct {
	world *rts.World
	obj   *Object
	errCh chan error
}

// startShardGroup exports n independent shard groups under one name via
// Replica registration, sequentially so profile order is announcement order.
func startShardGroup(t *testing.T, ns *naming.Server, n int) []*shardWorld {
	t.Helper()
	shards := make([]*shardWorld, n)
	for i := range shards {
		sw := &shardWorld{
			world: rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout}),
			errCh: make(chan error, 1),
		}
		tag := "shard-" + string(rune('0'+i))
		ready := make(chan struct{})
		var mu sync.Mutex
		go func() {
			sw.errCh <- sw.world.Run(func(c *rts.Comm) error {
				obj, err := Export(c, ExportOptions{
					TypeID:     "IDL:shard_object:1.0",
					Name:       "shardgrp",
					NameServer: ns.Addr(),
					Replica:    true,
				}, shardTestOps(tag))
				if err != nil {
					close(ready)
					return err
				}
				mu.Lock()
				sw.obj = obj
				mu.Unlock()
				close(ready)
				return obj.Serve()
			})
		}()
		select {
		case <-ready:
		case <-time.After(testTimeout):
			t.Fatal("shard never became ready")
		}
		mu.Lock()
		if sw.obj == nil {
			mu.Unlock()
			t.Fatalf("shard %d failed to export: %v", i, <-sw.errCh)
		}
		mu.Unlock()
		shards[i] = sw
		t.Cleanup(func() {
			sw.obj.Close()
			select {
			case err := <-sw.errCh:
				if err != nil && !errors.Is(err, ErrStopped) {
					t.Errorf("shard world: %v", err)
				}
			case <-time.After(testTimeout):
				t.Error("shard world did not shut down")
			}
			sw.world.Close()
		})
	}
	return shards
}

func readTag(t *testing.T, reply []byte) string {
	t.Helper()
	d, err := ScalarDecoder(reply)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := d.ReadString()
	if err != nil {
		t.Fatal(err)
	}
	return tag
}

// TestShardRoutingCoreEndToEnd drives the whole stack: three shard groups
// published through Replica registration, a sharded SPMD binding routing
// keyed invocations — sticky per key, spread across the group, carrying real
// distributed arguments — and transparent reroute when the owner of a key is
// killed mid-run.
func TestShardRoutingCoreEndToEnd(t *testing.T) {
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	shards := startShardGroup(t, ns, 3)
	reg := obs.NewRegistry()

	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err = w.Run(func(c *rts.Comm) error {
		b, err := SPMDBind(c, "shardgrp", ns.Addr(), BindOptions{
			Method:  Centralized,
			Timeout: testTimeout,
			Breaker: orb.BreakerPolicy{Threshold: 1, Cooldown: time.Hour},
			Metrics: reg,
			Sharding: ShardingOptions{
				Enabled:    true,
				Idempotent: true,
			},
		})
		if err != nil {
			return err
		}
		defer b.Close()

		// Keyed invocations: sticky per key and spread over the group.
		tagOf := map[string]string{}
		for round := 0; round < 3; round++ {
			for i := 0; i < 12; i++ {
				key := []byte{'k', byte('0' + i)}
				reply, err := b.InvokeSharded("who", key, nil, nil)
				if err != nil {
					t.Errorf("round %d key %q: %v", round, key, err)
					continue
				}
				tag := readTag(t, reply)
				if prev, ok := tagOf[string(key)]; ok && prev != tag {
					t.Errorf("key %q moved from %s to %s on a healthy group", key, prev, tag)
				}
				tagOf[string(key)] = tag
			}
		}
		serving := map[string]bool{}
		for _, tag := range tagOf {
			serving[tag] = true
		}
		if len(serving) < 2 {
			t.Errorf("12 keys all landed on %v; expected a spread", serving)
		}

		// A distributed inout argument rides the routed invocation.
		arr, err := dseq.New(c, dseq.Float64, 8, nil)
		if err != nil {
			return err
		}
		arr.FillFunc(func(g int) float64 { return float64(g + 1) })
		reply, err := b.InvokeSharded("scale", []byte("k0"), scaleScalars(3), []DistArg{InOutSeq(arr)})
		if err != nil {
			t.Fatalf("sharded scale: %v", err)
		}
		if tag := readTag(t, reply); tag != tagOf["k0"] {
			t.Errorf("scale for k0 served by %s, who said %s", tag, tagOf["k0"])
		}
		for i, v := range arr.LocalData() {
			if v != float64(i+1)*3 {
				t.Fatalf("scale result [%d] = %v, want %v", i, v, float64(i+1)*3)
			}
		}

		// Kill the shard owning k0; the idempotent invocation reroutes.
		victim := tagOf["k0"]
		idx := int(victim[len(victim)-1] - '0')
		shards[idx].obj.Close()
		select {
		case err := <-shards[idx].errCh:
			if err != nil && !errors.Is(err, ErrStopped) {
				t.Fatalf("killed shard: %v", err)
			}
			shards[idx].errCh <- nil // keep the cleanup's read satisfied
		case <-time.After(testTimeout):
			t.Fatal("killed shard did not stop")
		}

		reply, err = b.InvokeSharded("who", []byte("k0"), nil, nil)
		if err != nil {
			t.Fatalf("invocation after killing %s: %v", victim, err)
		}
		if tag := readTag(t, reply); tag == victim {
			t.Fatalf("killed shard %s answered", victim)
		}
		if got := reg.Counter("shard.reroute_total").Value(); got == 0 {
			t.Error("reroute not visible in the binding's metrics registry")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardRoutingCoreMethodGuard: shard routing is defined only for the
// centralized transfer method; a multi-port sharded invocation fails fast
// with ErrShardMethod on every thread.
func TestShardRoutingCoreMethodGuard(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	tc.runClient(t, 2, Multiport, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 8, nil)
		if err != nil {
			return err
		}
		_, err = b.InvokeSharded("scale", []byte("k"), scaleScalars(2), []DistArg{InOutSeq(arr)})
		if !errors.Is(err, ErrShardMethod) {
			t.Errorf("rank %d: multi-port sharded invocation: %v, want ErrShardMethod", c.Rank(), err)
		}
		return nil
	})
}

// TestShardRoutingCoreSpanAttribute: a shard-routed invocation's send/recv
// span carries the 1-based index of the serving shard; unrouted invocations
// carry 0.
func TestShardRoutingCoreSpanAttribute(t *testing.T) {
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	startShardGroup(t, ns, 2)
	rec := obs.NewRecorder(64)

	w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err = w.Run(func(c *rts.Comm) error {
		b, err := SPMDBind(c, "shardgrp", ns.Addr(), BindOptions{
			Method:   Centralized,
			Timeout:  testTimeout,
			Trace:    rec,
			Sharding: ShardingOptions{Enabled: true, Idempotent: true},
		})
		if err != nil {
			return err
		}
		defer b.Close()
		if _, err := b.InvokeSharded("who", []byte("spankey"), nil, nil); err != nil {
			return err
		}
		if _, err := b.Invoke("who", nil, nil); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var sharded, unsharded []int32
	for _, sp := range rec.Spans() {
		if sp.Phase != obs.PhaseSendRecv {
			continue
		}
		if sp.Shard > 0 {
			sharded = append(sharded, sp.Shard)
		} else {
			unsharded = append(unsharded, sp.Shard)
		}
	}
	if len(sharded) != 1 {
		t.Fatalf("sharded send/recv spans: %v, want exactly one with Shard > 0", sharded)
	}
	if len(unsharded) == 0 {
		t.Fatal("plain invocation produced no send/recv span with Shard == 0")
	}
}
