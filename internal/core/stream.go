package core

import (
	"fmt"
	"time"

	"repro/internal/dseq"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rts"
	"repro/internal/wire"
	"repro/internal/zcodec"
)

// Streamed centralized transfers: instead of gathering a whole argument at
// thread 0, marshalling it, and only then sending one giant request, the
// engine walks each large argument in fixed chunks — gathering chunk k+1
// over the runtime system while chunk k is on the wire. The reply leg is
// symmetric: the server gathers and writes result chunks before the Reply,
// and the client scatters them as it drains its sink. Both sides derive the
// same chunk schedule from the lengths and the chunk size in the header, so
// no per-chunk control traffic is needed.

// DefaultStreamChunkElems is the streamed-transfer chunk size when
// BindOptions.StreamChunkElems is zero. 8192 doubles (64 KiB payloads) sit
// comfortably above the per-message overhead and below the frame limit.
const DefaultStreamChunkElems = 8192

// encodeAheadDepth bounds how many encoded chunks the pipelined send
// worker may hold ahead of the wire. Depth 2 is enough to overlap the
// encode of chunk k+1 with the write of chunk k without letting a slow
// link pile up compressed frames (and their memory) unboundedly.
const encodeAheadDepth = 2

// maxStreamChunks bounds the total number of chunks in one direction of one
// invocation; the chunk size is raised until the schedule fits. The bound
// keeps a whole reply leg inside one data sink (capacity bucketCapacity):
// reply chunks are written before the Reply message, so they may all be
// buffered before the client starts draining.
const maxStreamChunks = 1024

// chunkElemsFor returns the chunk size for a transfer leg: base elements,
// doubled until the leg's total chunk count (across all its arguments, whose
// element lengths are given) fits maxStreamChunks. Both peers compute it
// from the same inputs, so the schedules agree without negotiation.
func chunkElemsFor(base int, lengths []int) int {
	ce := base
	if ce < 1 {
		ce = 1
	}
	for {
		total := 0
		for _, l := range lengths {
			total += chunkCount(l, ce)
		}
		if total <= maxStreamChunks {
			return ce
		}
		ce *= 2
	}
}

func chunkCount(length, ce int) int {
	if length <= 0 {
		return 0
	}
	return (length + ce - 1) / ce
}

// chunkRange returns the k-th chunk's [start, start+n) range.
func chunkRange(length, ce, k int) (start, n int) {
	start = k * ce
	n = ce
	if length-start < n {
		n = length - start
	}
	return start, n
}

func chunkFlags(last bool) byte {
	f := byte(wire.DataFlagChunk)
	if last {
		f |= wire.DataFlagLast
	}
	return f
}

// chunkFlagsZ is chunkFlags plus the compressed bit when the payload carries
// a compressed chunk envelope. The flag is per chunk, not per connection:
// incompressible chunks fall back to raw mid-stream and simply omit it.
func chunkFlagsZ(last bool, payload []byte) byte {
	f := chunkFlags(last)
	if dseq.IsCompressedChunk(payload) {
		f |= wire.DataFlagCompressed
	}
	return f
}

// streamMask agrees on the compression mask for one streamed invocation:
// thread 0 resolves the connection's negotiated mask (running the handshake
// on first use) and shares it, so every thread feeds the collective chunk
// marshalling the same mask. With compression off on the binding there is
// nothing to agree on — the collective schedule is exactly the raw engine's.
func (b *Binding) streamMask(comm *rts.Comm) (uint8, error) {
	if b.comp == 0 {
		return 0, nil
	}
	var mb []byte
	if comm.Rank() == 0 {
		wait := b.client.Timeout
		if wait <= 0 || wait > 5*time.Second {
			wait = 5 * time.Second
		}
		m := b.client.NegotiatedCompression(b.ref, wait) & b.comp
		// Under Auto the estimator can veto a negotiated codec for this
		// invocation: on a link faster than we can encode, raw wins. The
		// decision is made once, at the same single point the mask is
		// resolved, and broadcast — so the collective schedule stays
		// deterministic across threads.
		if m != 0 && b.policy == zcodec.PolicyAuto && !compressionWins(b.client.WireBandwidth(b.ref)) {
			m = 0
			b.compSkipped.Inc()
		}
		mb = []byte{m}
	}
	mb, err := comm.Bcast(0, mb)
	if err != nil {
		return 0, err
	}
	if len(mb) != 1 {
		return 0, fmt.Errorf("%w: compression mask agreement", ErrBadHeader)
	}
	return mb[0], nil
}

// streamEligible decides whether an invocation takes the streamed
// centralized path. The decision is a pure function of the binding options
// and the arguments' global lengths and types, so every SPMD thread decides
// identically without communicating: streaming must be enabled, every
// argument must support range transfers, and at least one In/InOut argument
// must be large enough (two chunks) for the overlap to pay.
func (b *Binding) streamEligible(args []DistArg) bool {
	if b.chunkElems <= 0 || len(args) == 0 {
		return false
	}
	big := false
	for _, a := range args {
		if _, ok := a.Seq.(dseq.StreamTransferable); !ok {
			return false
		}
		if a.Dir != Out && a.Seq.Len() >= 2*b.chunkElems {
			big = true
		}
	}
	return big
}

// gatherMarshalOn gathers and marshals a whole sequence at root 0 over the
// given (lane) communicator. Sequences that support range transfers use
// them — required under pipelining, where a transfer on the sequence's own
// communicator could interleave with another lane's — and others fall back
// to the sequence's communicator (safe only at pipeline depth 1).
func gatherMarshalOn(c *rts.Comm, seq dseq.Transferable) ([]byte, error) {
	if st, ok := seq.(dseq.StreamTransferable); ok {
		return st.GatherMarshalRange(c, 0, 0, seq.Len())
	}
	return seq.GatherMarshal(0)
}

// scatterUnmarshalOn is the inverse of gatherMarshalOn.
func scatterUnmarshalOn(c *rts.Comm, seq dseq.Transferable, payload []byte) error {
	if st, ok := seq.(dseq.StreamTransferable); ok {
		return st.ScatterUnmarshalRange(c, 0, 0, seq.Len(), payload)
	}
	return seq.ScatterUnmarshal(0, payload)
}

// nextChunk pulls the next expected stream chunk from a data channel,
// validating that it is exactly the scheduled one. A nil message is the
// connection-loss poison. On any error the frame (if any) has been
// released; on success the caller owns the frame and must Release it.
func nextChunk(ch <-chan *wire.Data, stop <-chan struct{}, timeout time.Duration, argIdx uint32, reply bool, start, n int, last bool) (*wire.Data, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case d := <-ch:
		if d == nil {
			return nil, &orb.SystemException{RepoID: orb.RepoComm, Message: "data connection lost mid-stream"}
		}
		if d.ArgIndex != argIdx || d.Reply != reply || !d.Chunked() ||
			d.DstOff != uint64(start) || d.Count != uint64(n) || d.LastChunk() != last {
			err := fmt.Errorf("%w: stream chunk arg %d off %d count %d last %v, want arg %d off %d count %d last %v",
				ErrBadHeader, d.ArgIndex, d.DstOff, d.Count, d.LastChunk(), argIdx, start, n, last)
			d.Release()
			return nil, err
		}
		return d, nil
	case <-stop:
		return nil, ErrStopped
	case <-deadline:
		return nil, fmt.Errorf("core: stream chunk (arg %d, off %d) timed out after %v", argIdx, start, timeout)
	}
}

// drainData empties a data channel without blocking, returning any pooled
// frames still buffered in it.
func drainData(ch chan *wire.Data) {
	for {
		select {
		case d := <-ch:
			if d != nil {
				d.Release()
			}
		default:
			return
		}
	}
}

// invokeCentralizedStreamed is invokeCentralized with the staged
// gather→pack→send replaced by a chunked pipeline. The collective schedule
// is fixed: every thread walks the same chunks of the same arguments in the
// same order, and local failures are carried through the schedule (thread 0
// substitutes fail-marker payloads) rather than breaking it, so a failure
// surfaces as one agreed error instead of a stranded collective.
func (b *Binding) invokeCentralizedStreamed(comm *rts.Comm, token uint32, op string, scalars []byte, args []DistArg, desc OpDesc, timing *Timing) ([]byte, error) {
	me := comm.Rank()
	inLens := make([]int, 0, len(args))
	for _, a := range args {
		if a.Dir != Out {
			inLens = append(inLens, a.Seq.Len())
		}
	}
	ce := chunkElemsFor(b.chunkElems, inLens)
	mask, err := b.streamMask(comm)
	if err != nil {
		return nil, err
	}

	type replyResult struct {
		payload []byte
		err     error
	}
	var sink chan *wire.Data
	replyCh := make(chan replyResult, 1)
	launched := false
	sendStart := time.Now()

	// The communicating thread launches the request first — the header
	// travels ahead of the chunks, which the server buffers per token
	// either way — then joins the collective chunk schedule.
	if me == 0 {
		sink = make(chan *wire.Data, bucketCapacity)
		b.client.RegisterDataSink(token, sink)
		defer func() {
			b.client.UnregisterDataSink(token)
			drainData(sink)
		}()
		packStart := time.Now()
		h := &invocationHeader{
			Op: op, Method: Centralized, Streamed: true, ChunkElems: uint32(ce),
			Token: token, ClientRanks: comm.Size(), Epoch: b.refEpoch,
			Scalars: scalars, Args: make([]headerArg, len(args)),
		}
		for i, a := range args {
			h.Args[i] = headerArg{Dir: a.Dir, Elem: a.Seq.ElemName()}
			if a.Dir == Out {
				h.Args[i].Spec = a.Seq.Spec()
			} else {
				h.Args[i].Layout = a.Seq.Layout()
			}
		}
		e := orb.NewArgEncoder()
		h.encode(e)
		if timing != nil {
			timing.Pack = time.Since(packStart)
		}
		b.span(token, obs.PhasePack, packStart)
		launched = true
		go func() {
			payload, err := b.client.Invoke(b.ref, op, e.Bytes(), false)
			replyCh <- replyResult{payload: payload, err: err}
		}()
	}

	// Request leg: gather-marshal chunk k over the runtime system while
	// chunk k-1 is on the wire. After a collective gather fails on this
	// thread it stops issuing gathers (the peers fail their next collective
	// and stop too); thread 0 keeps the wire schedule alive with fail
	// markers so the server's receive loop stays aligned.
	//
	// With a codec engaged, thread 0 additionally hands finished frames to
	// a bounded send worker: chunk k+1 is gathered and encoded while chunk
	// k is still being written to the wire. The worker is a single
	// goroutine draining a FIFO channel, so frames hit the wire in schedule
	// order; the raw path keeps the exact serial send (and its alloc
	// profile) because no codec means nothing to overlap.
	gatherTotal := time.Duration(0)
	var streamErr error // this thread's first failure
	gatherDown := false
	var (
		sendCh   chan *wire.Data
		sendDone chan struct{}
		sendErr  error // owned by the worker until sendDone is closed
	)
	if me == 0 && mask != 0 {
		sendCh = make(chan *wire.Data, encodeAheadDepth)
		sendDone = make(chan struct{})
		go func() {
			defer close(sendDone)
			for d := range sendCh {
				if err := b.client.SendData(b.ref, d); err != nil && sendErr == nil {
					sendErr = &orb.SystemException{RepoID: orb.RepoComm, Message: err.Error()}
				}
			}
		}()
	}
	for i, a := range args {
		if a.Dir == Out {
			continue
		}
		st := a.Seq.(dseq.StreamTransferable)
		l := a.Seq.Len()
		nchunks := chunkCount(l, ce)
		for k := 0; k < nchunks; k++ {
			start, n := chunkRange(l, ce, k)
			chunkStart := time.Now()
			var payload []byte
			if !gatherDown {
				p, err := st.GatherMarshalRangeZ(comm, 0, start, n, mask)
				if err != nil {
					gatherDown = true
					if streamErr == nil {
						streamErr = err
					}
				} else {
					payload = p
				}
			}
			gatherTotal += time.Since(chunkStart)
			if me != 0 {
				b.spanCodec(token, obs.PhaseChunkSend, chunkStart, mask)
				continue
			}
			if streamErr != nil {
				payload = dseq.FailMarker
			}
			d := &wire.Data{
				RequestID: token, ArgIndex: uint32(i), SrcRank: 0, DstRank: 0,
				DstOff: uint64(start), Count: uint64(n),
				Flags: chunkFlagsZ(k == nchunks-1, payload), Payload: payload,
			}
			if sendCh != nil {
				sendCh <- d
			} else if err := b.client.SendData(b.ref, d); err != nil && streamErr == nil {
				// Wire failures surface in the control path's error taxonomy
				// (COMM_FAILURE), not as raw transport errors, so callers can
				// classify a dead peer the same way on every transfer path.
				streamErr = &orb.SystemException{RepoID: orb.RepoComm, Message: err.Error()}
			}
			b.spanCodec(token, obs.PhaseChunkSend, chunkStart, mask)
		}
	}
	if sendCh != nil {
		close(sendCh)
		<-sendDone
		if streamErr == nil {
			streamErr = sendErr
		}
	}
	if timing != nil {
		timing.Gather = gatherTotal
	}
	b.spanDur(token, obs.PhaseGather, sendStart, gatherTotal)

	// The communicating thread collects the reply (bounded by the client
	// timeout); everyone shares it, then agrees on the request leg.
	var meta invokeMeta
	if me == 0 && launched {
		res := <-replyCh
		meta = metaFromReply(res.payload, res.err, Centralized, true)
	}
	if timing != nil {
		timing.SendRecv = time.Since(sendStart)
	}
	b.span(token, obs.PhaseSendRecv, sendStart)
	if err := shareMeta(comm, &meta); err != nil {
		return nil, err
	}
	phaseErr := streamErr
	if phaseErr == nil {
		phaseErr = meta.err
	}
	if agreed := agreeError(comm, phaseErr); agreed != nil {
		return nil, agreed
	}

	// Reply leg: the server wrote every reply chunk before the Reply on the
	// same connection, so by now they are in (or streaming into) the sink in
	// schedule order. The reply chunk size is recomputed from the result
	// lengths exactly as the server did, so the schedules agree.
	outLens := make([]int, 0, len(args))
	for i, a := range args {
		if a.Dir != In {
			outLens = append(outLens, meta.lengths[i])
		}
	}
	ceOut := chunkElemsFor(ce, outLens)
	scatterStart := time.Now()
	scatterErr := func() error {
		var firstErr error
		for i, a := range args {
			if a.Dir == In {
				continue
			}
			if a.Dir == Out {
				if err := a.Seq.ResizeAlloc(meta.lengths[i]); err != nil {
					return err
				}
			} else if meta.lengths[i] != a.Seq.Len() {
				return fmt.Errorf("%w: inout arg %d length %d from server, have %d", ErrBadHeader, i, meta.lengths[i], a.Seq.Len())
			}
			st := a.Seq.(dseq.StreamTransferable)
			l := meta.lengths[i]
			nchunks := chunkCount(l, ceOut)
			for k := 0; k < nchunks; k++ {
				start, n := chunkRange(l, ceOut, k)
				chunkStart := time.Now()
				var payload []byte
				var frame *wire.Data
				if me == 0 {
					if firstErr != nil {
						payload = dseq.FailMarker
					} else if d, err := nextChunk(sink, nil, b.client.Timeout, uint32(i), true, start, n, k == nchunks-1); err != nil {
						firstErr = err
						payload = dseq.FailMarker
					} else {
						frame, payload = d, d.Payload
					}
				}
				err := st.ScatterUnmarshalRange(comm, 0, start, n, payload)
				if frame != nil {
					frame.Release()
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
				b.span(token, obs.PhaseChunkRecv, chunkStart)
			}
		}
		return firstErr
	}()
	if timing != nil {
		timing.Scatter = time.Since(scatterStart)
	}
	b.span(token, obs.PhaseScatter, scatterStart)
	if agreed := agreeError(comm, scatterErr); agreed != nil {
		return nil, agreed
	}
	return meta.scalars, nil
}
