package core

import (
	"fmt"

	"repro/internal/cdr"
	"repro/internal/dist"
)

// invocationHeader is the SPMD extension of a request: it rides inside the
// PGIOP Request's argument payload and tells the server everything it needs
// to receive the distributed arguments. In the centralized method the
// In/InOut argument data is embedded; in the multi-port method only the
// client layouts travel and the data follows as Data messages.
type invocationHeader struct {
	Op          string
	Method      Method
	Streamed    bool   // centralized only: argument data follows as chunked Data messages
	ChunkElems  uint32 // streamed only: request-leg chunk size, in elements
	Token       uint32 // ties multi-port and streamed Data transfers to this invocation
	ClientRanks int
	// Epoch is the membership epoch the client bound at (from the IOR of an
	// elastic object); 0 means the binding predates elastic membership or the
	// object is not elastic. A non-zero epoch shifts the wire method code
	// into the epoch-tagged range so untagged peers reject the header cleanly
	// instead of misreading the epoch field.
	Epoch   uint32
	Scalars []byte // opaque marshalled non-distributed arguments
	Args    []headerArg
}

// wireMethodStreamed is the on-the-wire method code for a streamed
// centralized invocation. It is a distinct code (not a flag) so that peers
// predating the streaming protocol reject the header cleanly instead of
// misreading the chunk-size field as argument data.
const wireMethodStreamed = uint32(Multiport) + 1

// wireMethodEpochBase shifts a method code into the epoch-tagged range:
// codes [base, base+streamed] are the corresponding untagged codes with a
// membership-epoch ULong following immediately. Untagged codes remain valid
// (clients whose reference carries no epoch — conventional objects, old
// clients of a resized object — send them), which is what makes mixed-version
// interop across a resize work: the server checks epochs only when the
// header carries one.
const wireMethodEpochBase = wireMethodStreamed + 1

type headerArg struct {
	Dir    Dir
	Elem   string
	Layout dist.Layout // In/InOut: the client's current layout
	Spec   dist.Spec   // Out: the client's template for the result
	Data   []byte      // centralized In/InOut: full marshalled sequence
}

func (h *invocationHeader) encode(e *cdr.Encoder) {
	e.WriteString(h.Op)
	m := uint32(h.Method)
	if h.Streamed {
		m = wireMethodStreamed
	}
	if h.Epoch != 0 {
		m += wireMethodEpochBase
	}
	e.WriteEnum(m)
	if h.Epoch != 0 {
		e.WriteULong(h.Epoch)
	}
	if h.Streamed {
		e.WriteULong(h.ChunkElems)
	}
	e.WriteULong(h.Token)
	e.WriteULong(uint32(h.ClientRanks))
	e.WriteOctets(h.Scalars)
	e.WriteULong(uint32(len(h.Args)))
	for _, a := range h.Args {
		e.WriteEnum(uint32(a.Dir))
		e.WriteString(a.Elem)
		if a.Dir == Out {
			spec := a.Spec
			if spec == nil {
				spec = dist.Block{}
			}
			dist.EncodeSpec(e, spec)
		} else {
			dist.EncodeLayout(e, a.Layout)
		}
		if h.Method == Centralized && !h.Streamed && a.Dir != Out {
			e.WriteOctets(a.Data)
		}
	}
}

func decodeInvocationHeader(d *cdr.Decoder) (*invocationHeader, error) {
	var h invocationHeader
	var err error
	if h.Op, err = d.ReadStringInterned(); err != nil {
		return nil, fmt.Errorf("%w: op: %v", ErrBadHeader, err)
	}
	m, err := d.ReadEnum()
	if err != nil {
		return nil, fmt.Errorf("%w: method: %v", ErrBadHeader, err)
	}
	if m > wireMethodEpochBase+wireMethodStreamed {
		return nil, fmt.Errorf("%w: method %d", ErrBadHeader, m)
	}
	if m >= wireMethodEpochBase {
		m -= wireMethodEpochBase
		if h.Epoch, err = d.ReadULong(); err != nil {
			return nil, fmt.Errorf("%w: epoch: %v", ErrBadHeader, err)
		}
		if h.Epoch == 0 || h.Epoch > 1<<30 {
			return nil, fmt.Errorf("%w: epoch %d", ErrBadHeader, h.Epoch)
		}
	}
	if m == wireMethodStreamed {
		h.Method = Centralized
		h.Streamed = true
		if h.ChunkElems, err = d.ReadULong(); err != nil {
			return nil, fmt.Errorf("%w: chunk elems: %v", ErrBadHeader, err)
		}
		if h.ChunkElems == 0 || h.ChunkElems > 1<<30 {
			return nil, fmt.Errorf("%w: chunk elems %d", ErrBadHeader, h.ChunkElems)
		}
	} else {
		h.Method = Method(m)
	}
	if h.Token, err = d.ReadULong(); err != nil {
		return nil, fmt.Errorf("%w: token: %v", ErrBadHeader, err)
	}
	ranks, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("%w: ranks: %v", ErrBadHeader, err)
	}
	if ranks == 0 || ranks > 1<<20 {
		return nil, fmt.Errorf("%w: %d client ranks", ErrBadHeader, ranks)
	}
	h.ClientRanks = int(ranks)
	if h.Scalars, err = d.ReadOctets(); err != nil {
		return nil, fmt.Errorf("%w: scalars: %v", ErrBadHeader, err)
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("%w: arg count: %v", ErrBadHeader, err)
	}
	if n > 1<<12 {
		return nil, fmt.Errorf("%w: %d dist args", ErrBadHeader, n)
	}
	h.Args = make([]headerArg, n)
	for i := range h.Args {
		a := &h.Args[i]
		dir, err := d.ReadEnum()
		if err != nil {
			return nil, fmt.Errorf("%w: arg %d dir: %v", ErrBadHeader, i, err)
		}
		if dir > uint32(InOut) {
			return nil, fmt.Errorf("%w: arg %d dir %d", ErrBadHeader, i, dir)
		}
		a.Dir = Dir(dir)
		if a.Elem, err = d.ReadStringInterned(); err != nil {
			return nil, fmt.Errorf("%w: arg %d elem: %v", ErrBadHeader, i, err)
		}
		if a.Dir == Out {
			if a.Spec, err = dist.DecodeSpec(d); err != nil {
				return nil, fmt.Errorf("%w: arg %d spec: %v", ErrBadHeader, i, err)
			}
		} else {
			if a.Layout, err = dist.DecodeLayout(d); err != nil {
				return nil, fmt.Errorf("%w: arg %d layout: %v", ErrBadHeader, i, err)
			}
		}
		if h.Method == Centralized && !h.Streamed && a.Dir != Out {
			if a.Data, err = d.ReadOctets(); err != nil {
				return nil, fmt.Errorf("%w: arg %d data: %v", ErrBadHeader, i, err)
			}
		}
	}
	return &h, nil
}

// replyHeader is the SPMD extension of a reply: scalar results plus, per
// Out/InOut distributed argument, the final length (the client needs it to
// size Out results) and, in the centralized method, the full result data.
type replyHeader struct {
	Scalars []byte
	Args    []replyArg
}

type replyArg struct {
	Dir    Dir
	Length int
	Data   []byte // centralized Out/InOut only
}

// encode writes the reply extension. In a streamed centralized invocation
// (streamed true) result data travels as chunked Data messages written
// before the Reply, so only the lengths ride in the header.
func (h *replyHeader) encode(e *cdr.Encoder, method Method, streamed bool) {
	e.WriteOctets(h.Scalars)
	e.WriteULong(uint32(len(h.Args)))
	for _, a := range h.Args {
		e.WriteEnum(uint32(a.Dir))
		e.WriteULongLong(uint64(a.Length))
		if method == Centralized && !streamed && a.Dir != In {
			e.WriteOctets(a.Data)
		}
	}
}

func decodeReplyHeader(d *cdr.Decoder, method Method, streamed bool) (*replyHeader, error) {
	var h replyHeader
	var err error
	if h.Scalars, err = d.ReadOctets(); err != nil {
		return nil, fmt.Errorf("%w: reply scalars: %v", ErrBadHeader, err)
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("%w: reply arg count: %v", ErrBadHeader, err)
	}
	if n > 1<<12 {
		return nil, fmt.Errorf("%w: %d reply args", ErrBadHeader, n)
	}
	h.Args = make([]replyArg, n)
	for i := range h.Args {
		a := &h.Args[i]
		dir, err := d.ReadEnum()
		if err != nil {
			return nil, fmt.Errorf("%w: reply arg %d dir: %v", ErrBadHeader, i, err)
		}
		if dir > uint32(InOut) {
			return nil, fmt.Errorf("%w: reply arg %d dir %d", ErrBadHeader, i, dir)
		}
		a.Dir = Dir(dir)
		length, err := d.ReadULongLong()
		if err != nil {
			return nil, fmt.Errorf("%w: reply arg %d length: %v", ErrBadHeader, i, err)
		}
		if length > 1<<40 {
			return nil, fmt.Errorf("%w: reply arg %d length %d", ErrBadHeader, i, length)
		}
		a.Length = int(length)
		if method == Centralized && !streamed && a.Dir != In {
			if a.Data, err = d.ReadOctets(); err != nil {
				return nil, fmt.Errorf("%w: reply arg %d data: %v", ErrBadHeader, i, err)
			}
		}
	}
	return &h, nil
}
