package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rts"
	"repro/internal/wire"
)

// Timing records where a blocking invocation spent its time, as observed by
// the calling thread (the paper's Tables 1 and 2 report the analogous
// server- and client-side phases measured on dedicated hardware; the
// discrete-event models in internal/exp reproduce that full breakdown).
type Timing struct {
	Total time.Duration
	// Gather is the time spent collecting distributed arguments at the
	// communicating thread (centralized method only).
	Gather time.Duration
	// Scatter is the time spent distributing results from the
	// communicating thread (centralized method only).
	Scatter time.Duration
	// Pack is the time spent marshalling this thread's chunks (multi-port)
	// or the full argument payload (centralized, thread 0).
	Pack time.Duration
	// SendRecv spans the remote exchange: request out to reply in.
	SendRecv time.Duration
	// Unpack is the time spent storing inbound result chunks (multi-port).
	Unpack time.Duration
	// Barrier is the post-invocation synchronization (multi-port).
	Barrier time.Duration
}

// span records one phase of invocation token as observed by this thread.
// The token doubles as the trace id: it is what the wire-level trace-context
// extension carries, so client and server spans of one invocation share a key.
func (b *Binding) span(token uint32, ph obs.Phase, start time.Time) {
	if b.rec == nil {
		return
	}
	b.rec.Record(obs.Span{Trace: uint64(token), Phase: ph, Rank: int32(b.comm.Rank()),
		Start: start.UnixNano(), Dur: int64(time.Since(start))})
}

// spanDur is span for phases whose duration is accumulated piecewise (the
// multi-port pack time) rather than spanning one contiguous interval.
func (b *Binding) spanDur(token uint32, ph obs.Phase, start time.Time, dur time.Duration) {
	if b.rec == nil {
		return
	}
	b.rec.Record(obs.Span{Trace: uint64(token), Phase: ph, Rank: int32(b.comm.Rank()),
		Start: start.UnixNano(), Dur: int64(dur)})
}

// spanCodec is span carrying the negotiated wire-compression mask in effect
// for the phase (0 when the transfer ran raw).
func (b *Binding) spanCodec(token uint32, ph obs.Phase, start time.Time, mask uint8) {
	if b.rec == nil {
		return
	}
	b.rec.Record(obs.Span{Trace: uint64(token), Phase: ph, Rank: int32(b.comm.Rank()),
		Start: start.UnixNano(), Dur: int64(time.Since(start)), Codec: int32(mask)})
}

// spanShard is span carrying the 1-based shard attribute: which shard group
// served the phase (0 when the invocation was not shard-routed).
func (b *Binding) spanShard(token uint32, ph obs.Phase, start time.Time, shard int32) {
	if b.rec == nil {
		return
	}
	b.rec.Record(obs.Span{Trace: uint64(token), Phase: ph, Rank: int32(b.comm.Rank()),
		Start: start.UnixNano(), Dur: int64(time.Since(start)), Shard: shard})
}

// wireInvoke performs rank 0's request/reply exchange for one invocation,
// shard-routing it when the binding has sharding enabled and the invocation
// carries a shard key. It returns the reply payload and the 1-based index of
// the shard that served (0 when the primary-first path handled it).
func (b *Binding) wireInvoke(op string, payload, shardKey []byte) ([]byte, int32, error) {
	if b.sharding.Enabled && len(shardKey) > 0 {
		out, idx, err := b.client.InvokeSharded(b.ref, op, payload, orb.InvokeOptions{
			ShardKey: shardKey, Idempotent: b.sharding.Idempotent,
		})
		return out, int32(idx) + 1, err
	}
	out, err := b.client.Invoke(b.ref, op, payload, false)
	return out, 0, err
}

// tokenCounter seeds invocation tokens; the random base makes collisions
// between concurrent client processes unlikely.
var tokenCounter atomic.Uint32

func init() {
	tokenCounter.Store(rand.Uint32())
}

// Invoke performs a blocking collective invocation using the binding's
// default transfer method. scalars is the marshalled non-distributed
// argument payload (build it with ScalarEncoder); args lists the distributed
// arguments in the operation's declaration order. It returns the reply's
// scalar payload (open it with ScalarDecoder). All threads of the binding
// must call Invoke with equal scalar payloads and compatible sequences.
func (b *Binding) Invoke(op string, scalars []byte, args []DistArg) ([]byte, error) {
	return b.InvokeMethod(b.method, op, scalars, args, nil)
}

// InvokeSharded is Invoke routed by consistent hash of shardKey across the
// shard groups behind the binding's reference (BindOptions.Sharding must be
// enabled, and the transfer method must be centralized — a shard owns all
// its endpoints, so multi-port flows cannot straddle the routing decision).
// Every SPMD thread must pass the same shardKey; only the communicating
// thread consults it. Derive key-range keys with shard.RangeKey.
func (b *Binding) InvokeSharded(op string, shardKey, scalars []byte, args []DistArg) ([]byte, error) {
	ln, err := b.acquireLane()
	if err != nil {
		return nil, err
	}
	defer b.releaseLane(ln)
	return b.invoke(ln, b.method, op, shardKey, scalars, args, nil)
}

// InvokeMethod is Invoke with an explicit transfer method and optional
// timing collection.
func (b *Binding) InvokeMethod(method Method, op string, scalars []byte, args []DistArg, timing *Timing) ([]byte, error) {
	ln, err := b.acquireLane()
	if err != nil {
		return nil, err
	}
	defer b.releaseLane(ln)
	return b.invoke(ln, method, op, nil, scalars, args, timing)
}

// invoke runs one collective invocation on the given lane. Every collective
// in the invocation (token agreement, gathers/scatters, meta share, error
// agreement) rides the lane's communicator, so invocations on different
// lanes overlap without their traffic interleaving.
func (b *Binding) invoke(ln *bindLane, method Method, op string, shardKey, scalars []byte, args []DistArg, timing *Timing) ([]byte, error) {
	comm := ln.comm
	start := time.Now()
	if timing != nil {
		*timing = Timing{}
		defer func() { timing.Total = time.Since(start) }()
	}
	desc, ok := b.ops[op]
	if !ok {
		return nil, fmt.Errorf("%w: unknown operation %q", ErrArgMismatch, op)
	}
	if len(args) != len(desc.Args) {
		return nil, fmt.Errorf("%w: %s takes %d distributed args, got %d", ErrArgMismatch, op, len(desc.Args), len(args))
	}
	for i, a := range args {
		if a.Seq == nil {
			return nil, fmt.Errorf("%w: arg %d is nil", ErrArgMismatch, i)
		}
		if a.Dir != desc.Args[i].Dir {
			return nil, fmt.Errorf("%w: arg %d is %v, want %v", ErrArgMismatch, i, a.Dir, desc.Args[i].Dir)
		}
		if a.Seq.ElemName() != desc.Args[i].Elem {
			return nil, fmt.Errorf("%w: arg %d has element type %q, want %q", ErrArgMismatch, i, a.Seq.ElemName(), desc.Args[i].Elem)
		}
	}
	if method == Multiport && !b.ref.Multiport() {
		return nil, ErrNoMultiport
	}
	if len(shardKey) > 0 && method != Centralized {
		// A shard is a whole server group: multi-port data flows target the
		// endpoints of one profile, so the transfer method cannot straddle
		// the per-invocation routing decision. (Uniform across threads —
		// every thread passes the same shardKey and method.)
		return nil, ErrShardMethod
	}

	// Agree on the invocation token.
	var tokenBytes []byte
	if comm.Rank() == 0 {
		e := cdr.NewEncoder(cdr.NativeOrder)
		e.WriteULong(tokenCounter.Add(1))
		tokenBytes = e.Bytes()
	}
	tokenBytes, err := comm.Bcast(0, tokenBytes)
	if err != nil {
		return nil, err
	}
	token, err := cdr.NewDecoder(tokenBytes, cdr.NativeOrder).ReadULong()
	if err != nil {
		return nil, err
	}
	defer b.span(token, obs.PhaseInvoke, start)

	switch method {
	case Centralized:
		// Streamed transfers ship chunk Data messages to the primary
		// profile's endpoints, so a shard-routed invocation takes the
		// whole-payload path (the request itself carries everything and
		// follows the ring).
		if len(shardKey) == 0 && b.streamEligible(args) {
			return b.invokeCentralizedStreamed(comm, token, op, scalars, args, desc, timing)
		}
		return b.invokeCentralized(comm, token, op, shardKey, scalars, args, desc, timing)
	case Multiport:
		return b.invokeMultiport(comm, token, op, scalars, args, desc, timing)
	default:
		return nil, fmt.Errorf("core: unknown method %v", method)
	}
}

// invokeCentralized implements the paper's §3.2 client side: synchronize,
// gather and marshal at the communicating thread, one request message, then
// scatter the results.
func (b *Binding) invokeCentralized(comm *rts.Comm, token uint32, op string, shardKey, scalars []byte, args []DistArg, desc OpDesc, timing *Timing) ([]byte, error) {
	// Gather the distributed arguments at thread 0. The gathers run on the
	// lane communicator so concurrent invocations on other lanes cannot
	// intercept the traffic.
	gatherStart := time.Now()
	payloads := make([][]byte, len(args))
	for i, a := range args {
		if a.Dir == Out {
			continue
		}
		p, err := gatherMarshalOn(comm, a.Seq)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	if timing != nil {
		timing.Gather = time.Since(gatherStart)
	}
	b.span(token, obs.PhaseGather, gatherStart)

	var meta invokeMeta
	if comm.Rank() == 0 {
		packStart := time.Now()
		h := &invocationHeader{
			Op: op, Method: Centralized, Token: token,
			ClientRanks: comm.Size(), Epoch: b.refEpoch, Scalars: scalars,
			Args: make([]headerArg, len(args)),
		}
		for i, a := range args {
			h.Args[i] = headerArg{Dir: a.Dir, Elem: a.Seq.ElemName()}
			if a.Dir == Out {
				h.Args[i].Spec = a.Seq.Spec()
			} else {
				h.Args[i].Layout = a.Seq.Layout()
				h.Args[i].Data = payloads[i]
			}
		}
		e := orb.NewArgEncoder()
		h.encode(e)
		if timing != nil {
			timing.Pack = time.Since(packStart)
		}
		b.span(token, obs.PhasePack, packStart)
		sendStart := time.Now()
		replyBytes, served, err := b.wireInvoke(op, e.Bytes(), shardKey)
		if timing != nil {
			timing.SendRecv = time.Since(sendStart)
		}
		b.spanShard(token, obs.PhaseSendRecv, sendStart, served)
		meta = metaFromReply(replyBytes, err, Centralized, false)
	}
	if err := shareMeta(comm, &meta); err != nil {
		return nil, err
	}
	if meta.err != nil {
		return nil, meta.err
	}

	// Scatter the results. The loop's own collectives keep the threads in
	// step on success; the trailing agreement turns any thread-local
	// failure (a result resize, a bad scatter payload) into one error seen
	// identically everywhere instead of a divergent early return.
	scatterStart := time.Now()
	scatterErr := func() error {
		for i, a := range args {
			if a.Dir == In {
				continue
			}
			if a.Dir == Out {
				if err := a.Seq.ResizeAlloc(meta.lengths[i]); err != nil {
					return err
				}
			}
			var data []byte
			if comm.Rank() == 0 {
				data = meta.datas[i]
			}
			if err := scatterUnmarshalOn(comm, a.Seq, data); err != nil {
				return err
			}
		}
		return nil
	}()
	if timing != nil {
		timing.Scatter = time.Since(scatterStart)
	}
	b.span(token, obs.PhaseScatter, scatterStart)
	if agreed := agreeError(comm, scatterErr); agreed != nil {
		return nil, agreed
	}
	return meta.scalars, nil
}

// invokeMultiport implements the paper's §3.3 client side: the header is
// delivered centrally, the argument data flows directly between the owning
// threads, and the threads synchronize after the invocation.
//
// The function is a fixed collective skeleton: every thread executes the
// same sequence of collectives (shareMeta, then two agreeError exchanges)
// no matter where its local work fails. Local errors are captured and fed
// into the agreement instead of returned early, so a thread whose data
// connection was cut mid-frame cannot strand the others in a collective
// they entered and it skipped.
func (b *Binding) invokeMultiport(comm *rts.Comm, token uint32, op string, scalars []byte, args []DistArg, desc OpDesc, timing *Timing) ([]byte, error) {
	me := comm.Rank()
	cRanks := comm.Size()
	sRanks := b.ref.Threads

	sink := make(chan *wire.Data, bucketCapacity)
	b.client.RegisterDataSink(token, sink)
	defer b.client.UnregisterDataSink(token)

	type argPlan struct {
		serverLayout dist.Layout
		fwdMine      []dist.Move
	}
	plans := make([]argPlan, len(args))

	type replyResult struct {
		payload []byte
		err     error
	}
	replyCh := make(chan replyResult, 1)
	launched := false
	packTotal := time.Duration(0)
	sendStart := time.Now()

	// Forward phase (purely local): plan the flows, launch the header from
	// the communicating thread, attach for return flows, and send this
	// thread's chunks directly to their owning server threads.
	localErr := func() error {
		sendTargets := map[int]bool{}
		attachTargets := map[int]bool{}
		for i, a := range args {
			spec := desc.Args[i].specOrBlock()
			if a.Dir != Out {
				sl, err := spec.Layout(a.Seq.Len(), sRanks)
				if err != nil {
					return err
				}
				plans[i].serverLayout = sl
				moves, err := dist.Plan(a.Seq.Layout(), sl)
				if err != nil {
					return err
				}
				plans[i].fwdMine = dist.PlanBySource(moves, cRanks)[me]
				for _, m := range plans[i].fwdMine {
					sendTargets[m.DstRank] = true
				}
				if a.Dir == InOut {
					rev, err := dist.Plan(sl, a.Seq.Layout())
					if err != nil {
						return err
					}
					for _, m := range dist.PlanByDest(rev, cRanks)[me] {
						attachTargets[m.SrcRank] = true
					}
				}
			} else {
				// The result length is unknown; conservatively attach to every
				// server thread so any of them can reach us.
				for r := 0; r < sRanks; r++ {
					attachTargets[r] = true
				}
			}
		}

		// The communicating thread launches the request; the header travels
		// first and alone, as §3.3 prescribes, so concurrent clients contend
		// only at the communicating thread.
		if me == 0 {
			h := &invocationHeader{
				Op: op, Method: Multiport, Token: token,
				ClientRanks: cRanks, Epoch: b.refEpoch, Scalars: scalars,
				Args: make([]headerArg, len(args)),
			}
			for i, a := range args {
				h.Args[i] = headerArg{Dir: a.Dir, Elem: a.Seq.ElemName()}
				if a.Dir == Out {
					h.Args[i].Spec = a.Seq.Spec()
				} else {
					h.Args[i].Layout = a.Seq.Layout()
				}
			}
			e := orb.NewArgEncoder()
			h.encode(e)
			launched = true
			go func() {
				payload, err := b.client.Invoke(b.ref, op, e.Bytes(), false)
				replyCh <- replyResult{payload: payload, err: err}
			}()
		}

		// Attach to return-flow sources we are not already sending to.
		for r := range attachTargets {
			if sendTargets[r] {
				continue
			}
			attach := &wire.Data{RequestID: token, SrcRank: uint32(me), DstRank: uint32(r), Count: 0}
			if err := b.client.SendData(b.ref, attach); err != nil {
				return err
			}
		}

		for i, a := range args {
			if a.Dir == Out {
				continue
			}
			for _, m := range plans[i].fwdMine {
				packStart := time.Now()
				payload, err := a.Seq.MarshalRange(m.SrcOff, m.Len)
				packTotal += time.Since(packStart)
				if err != nil {
					return err
				}
				msg := &wire.Data{
					RequestID: token,
					ArgIndex:  uint32(i),
					SrcRank:   uint32(me),
					DstRank:   uint32(m.DstRank),
					DstOff:    uint64(m.DstOff),
					Count:     uint64(m.Len),
					Payload:   payload,
				}
				if err := b.client.SendData(b.ref, msg); err != nil {
					return err
				}
			}
		}
		return nil
	}()
	if timing != nil {
		timing.Pack = packTotal
	}
	b.spanDur(token, obs.PhasePack, sendStart, packTotal)

	// The communicating thread collects the reply (bounded by the client
	// timeout even when another thread's sends failed and the server never
	// answers); everyone shares it.
	var meta invokeMeta
	if me == 0 && launched {
		res := <-replyCh
		meta = metaFromReply(res.payload, res.err, Multiport, false)
	}
	if timing != nil {
		timing.SendRecv = time.Since(sendStart)
	}
	b.span(token, obs.PhaseSendRecv, sendStart)
	if err := shareMeta(comm, &meta); err != nil {
		return nil, err
	}
	phaseErr := localErr
	if phaseErr == nil {
		phaseErr = meta.err
	}
	if agreed := agreeError(comm, phaseErr); agreed != nil {
		return nil, agreed
	}

	// Receive the return flows (purely local; bounded by the client
	// timeout).
	unpackStart := time.Now()
	recvErr := func() error {
		for i, a := range args {
			if a.Dir == In {
				continue
			}
			var clientLayout dist.Layout
			var serverLayout dist.Layout
			if a.Dir == Out {
				if err := a.Seq.ResizeAlloc(meta.lengths[i]); err != nil {
					return err
				}
				clientLayout = a.Seq.Layout()
				spec := desc.Args[i].specOrBlock()
				sl, err := spec.Layout(meta.lengths[i], sRanks)
				if err != nil {
					return err
				}
				serverLayout = sl
			} else {
				clientLayout = a.Seq.Layout()
				serverLayout = plans[i].serverLayout
			}
			rev, err := dist.Plan(serverLayout, clientLayout)
			if err != nil {
				return err
			}
			mine := dist.PlanByDest(rev, cRanks)[me]
			if err := consumeMoves(sink, nil, b.client.Timeout, uint32(i), true, mine, a.Seq); err != nil {
				return err
			}
		}
		return nil
	}()
	if timing != nil {
		timing.Unpack = time.Since(unpackStart)
	}
	b.span(token, obs.PhaseUnpack, unpackStart)

	// Post-invocation synchronization (the t_barrier of Table 2), fused
	// with error agreement so a thread whose return flows failed cannot
	// leave the others in a hung barrier.
	barrierStart := time.Now()
	agreed := agreeError(comm, recvErr)
	if timing != nil {
		timing.Barrier = time.Since(barrierStart)
	}
	b.span(token, obs.PhaseBarrier, barrierStart)
	if agreed != nil {
		return nil, agreed
	}
	return meta.scalars, nil
}

// agreeError merges per-thread outcomes into one collective verdict: every
// thread contributes its local error (nil when clean) and all threads
// return the same agreed error, the lowest failing rank's. The
// gather+broadcast doubles as a synchronization point, which is what lets
// the invocation and upcall paths replace bare barriers with it: a faulted
// thread reports instead of disappearing, so no thread waits on a
// collective its peers will never enter.
// okOutcome is the pre-encoded "no error" outcome (encodeMetaErr of nil is
// the single metaOK octet). Agreements run several times per upcall on every
// thread, almost always on clean outcomes, so the success path shares these
// read-only bytes instead of encoding and decoding each time.
var okOutcome = []byte{metaOK}

func isOKOutcome(p []byte) bool { return len(p) == 1 && p[0] == metaOK }

func agreeError(comm *rts.Comm, local error) error {
	contrib := okOutcome
	if local != nil {
		e := cdr.NewEncoder(cdr.NativeOrder)
		encodeMetaErr(e, local)
		contrib = e.Bytes()
	}
	all, err := comm.Gather(0, contrib)
	if err != nil {
		return err
	}
	var payload []byte
	if comm.Rank() == 0 {
		var chosen error
		for r, p := range all {
			if isOKOutcome(p) {
				continue
			}
			rerr, derr := decodeMetaErr(cdr.NewDecoder(p, cdr.NativeOrder))
			if derr != nil {
				// Never return early here: the other threads are already
				// waiting in the broadcast below.
				rerr = fmt.Errorf("core: thread %d outcome undecodable: %v", r, derr)
			}
			if chosen == nil && rerr != nil {
				chosen = rerr
			}
		}
		if chosen == nil {
			payload = okOutcome
		} else {
			ec := cdr.NewEncoder(cdr.NativeOrder)
			encodeMetaErr(ec, chosen)
			payload = ec.Bytes()
		}
	}
	payload, err = comm.Bcast(0, payload)
	if err != nil {
		return err
	}
	if isOKOutcome(payload) {
		return nil
	}
	agreed, derr := decodeMetaErr(cdr.NewDecoder(payload, cdr.NativeOrder))
	if derr != nil {
		return derr
	}
	return agreed
}

// invokeMeta is the invocation outcome the communicating thread shares with
// the others.
type invokeMeta struct {
	err     error
	scalars []byte
	lengths []int
	datas   [][]byte // centralized only; not broadcast (thread 0 scatters)
}

func metaFromReply(payload []byte, err error, method Method, streamed bool) invokeMeta {
	if err != nil {
		return invokeMeta{err: err}
	}
	d, derr := orb.ArgDecoder(payload)
	if derr != nil {
		return invokeMeta{err: derr}
	}
	rh, derr := decodeReplyHeader(d, method, streamed)
	if derr != nil {
		return invokeMeta{err: derr}
	}
	m := invokeMeta{scalars: rh.Scalars, lengths: make([]int, len(rh.Args)), datas: make([][]byte, len(rh.Args))}
	for i, a := range rh.Args {
		m.lengths[i] = a.Length
		m.datas[i] = a.Data
	}
	return m
}

// shareMeta broadcasts thread 0's invocation outcome (status, scalar
// results, result lengths) to all threads over the invocation's lane
// communicator. The centralized data payloads stay at thread 0, which
// scatters them.
func shareMeta(comm *rts.Comm, m *invokeMeta) error {
	var payload []byte
	if comm.Rank() == 0 {
		e := cdr.NewEncoder(cdr.NativeOrder)
		encodeMetaErr(e, m.err)
		e.WriteOctets(m.scalars)
		e.WriteULong(uint32(len(m.lengths)))
		for _, l := range m.lengths {
			e.WriteULongLong(uint64(l))
		}
		payload = e.Bytes()
	}
	payload, err := comm.Bcast(0, payload)
	if err != nil {
		return err
	}
	if comm.Rank() == 0 {
		return nil
	}
	d := cdr.NewDecoder(payload, cdr.NativeOrder)
	m.err, err = decodeMetaErr(d)
	if err != nil {
		return err
	}
	if m.scalars, err = d.ReadOctets(); err != nil {
		return err
	}
	n, err := d.ReadULong()
	if err != nil {
		return err
	}
	m.lengths = make([]int, n)
	m.datas = make([][]byte, n)
	for i := range m.lengths {
		l, err := d.ReadULongLong()
		if err != nil {
			return err
		}
		m.lengths[i] = int(l)
	}
	return nil
}

// Error kinds shared between threads.
const (
	metaOK byte = iota
	metaUserExc
	metaSystemExc
	metaPlain
)

func encodeMetaErr(e *cdr.Encoder, err error) {
	if err == nil {
		e.WriteOctet(metaOK)
		return
	}
	var ue *orb.UserException
	if errors.As(err, &ue) {
		e.WriteOctet(metaUserExc)
		e.WriteString(ue.RepoID)
		e.WriteString(ue.Message)
		e.WriteOctets(ue.Payload)
		return
	}
	var se *orb.SystemException
	if errors.As(err, &se) {
		e.WriteOctet(metaSystemExc)
		e.WriteString(se.RepoID)
		e.WriteULong(se.Minor)
		e.WriteString(se.Message)
		return
	}
	e.WriteOctet(metaPlain)
	e.WriteString(err.Error())
}

func decodeMetaErr(d *cdr.Decoder) (error, error) {
	kind, err := d.ReadOctet()
	if err != nil {
		return nil, err
	}
	switch kind {
	case metaOK:
		return nil, nil
	case metaUserExc:
		var ue orb.UserException
		if ue.RepoID, err = d.ReadString(); err != nil {
			return nil, err
		}
		if ue.Message, err = d.ReadString(); err != nil {
			return nil, err
		}
		if ue.Payload, err = d.ReadOctets(); err != nil {
			return nil, err
		}
		return &ue, nil
	case metaSystemExc:
		var se orb.SystemException
		if se.RepoID, err = d.ReadString(); err != nil {
			return nil, err
		}
		if se.Minor, err = d.ReadULong(); err != nil {
			return nil, err
		}
		if se.Message, err = d.ReadString(); err != nil {
			return nil, err
		}
		return &se, nil
	case metaPlain:
		msg, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		return errors.New(msg), nil
	default:
		return nil, fmt.Errorf("%w: meta error kind %d", ErrBadHeader, kind)
	}
}
