package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rts"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/zcodec"
)

// Operation is the server-side registration of one operation of an SPMD
// object: its distributed-argument signature, a factory for the server-side
// sequences of one invocation, and the collective handler.
type Operation struct {
	Desc OpDesc
	// NewArgs builds this invocation's server-side sequences, one per
	// entry of Desc.Args, on the given communicator. lengths[i] is the
	// client-declared length for In/InOut arguments and -1 for Out
	// arguments (whose length the handler chooses). Generated skeletons
	// supply this; SeqArgsFloat64 covers the common all-double case.
	NewArgs func(comm *rts.Comm, lengths []int) ([]dseq.Transferable, error)
	// Handler performs the operation. It runs on every computing thread
	// (the collective upcall); the scalar results written by thread 0 form
	// the reply.
	Handler func(call *ServerCall) error
}

// ServerCall is the context of one collective upcall.
type ServerCall struct {
	// Comm is the object's engine communicator: Rank identifies this
	// computing thread. Handlers may use it for their own collectives; the
	// engine serializes invocations, so no interleaving can occur.
	Comm *rts.Comm
	// Op is the invoked operation name.
	Op string
	// In decodes the non-distributed arguments (identical on all threads,
	// as the paper requires: "all threads will invoke the request with
	// identical values of non-distributed arguments").
	In *cdr.Decoder
	// Out collects scalar results; thread 0's bytes form the reply.
	Out *cdr.Encoder
	// Args are the operation's distributed arguments in declaration order,
	// already populated for In/InOut.
	Args []dseq.Transferable
}

// ExportOptions configure Export.
type ExportOptions struct {
	// TypeID is the object's repository id (e.g. "IDL:diff_object:1.0").
	TypeID string
	// Host is the address to listen on; default loopback.
	Host string
	// Multiport exposes one endpoint per computing thread, enabling the
	// multi-port transfer method. Without it only the communicating
	// thread's endpoint is advertised (centralized only).
	Multiport bool
	// Name and NameServer, when both set, register the object in the
	// PARDIS naming domain at export time (thread 0 performs the
	// registration).
	Name       string
	NameServer string
	// Replica announces the object as one member of a replicated or sharded
	// group instead of overwriting the name: registration goes through
	// BindReplica, so the naming domain merges this object's profile into
	// the group's multi-profile reference. Clients binding with
	// BindOptions.Sharding then treat each profile as one shard.
	Replica bool
	// QueueDepth bounds pending requests awaiting the collective loop. A
	// request arriving with the queue full is refused immediately with a
	// TRANSIENT system exception rather than parked without bound.
	QueueDepth int
	// DataTimeout bounds how long a computing thread waits for one
	// argument's multi-port transfers from the client threads. A client
	// that dies mid-transfer then fails the upcall instead of wedging the
	// collective loop. Defaults to DefaultDataTimeout; negative disables.
	DataTimeout time.Duration
	// Server configures the per-thread object adapters' robustness layer:
	// admission-control caps, write deadlines, liveness keepalives. The zero
	// value uses orb's defaults.
	Server orb.ServerOptions
	// Trace, when set, receives one span per server-side invocation phase
	// (queue, recv-xfer, upcall, send-xfer) on this thread, keyed by the
	// invocation token carried in the request header. The adapter's own
	// admission spans go to Server.Trace, which defaults to this recorder.
	Trace *obs.Recorder
	// Compression is the wire-compression codec mask (zcodec mask bits)
	// this object accepts and uses: the per-thread adapters answer client
	// handshake offers with the intersection, and streamed reply legs
	// compress their chunks with the connection's negotiated mask. Zero
	// declines every offer and keeps all transfers raw.
	Compression uint8
	// CompressionPolicy selects how reply legs apply the negotiated mask:
	// PolicyAuto (the zero default) lets the adaptive estimator send raw
	// when the client's connection is faster than the codec, PolicyAlways
	// compresses whenever a codec was negotiated, and PolicyNever declines
	// every handshake offer (equivalent to Compression == 0). Merged into
	// Server.CompressionPolicy when that field is left at its zero value.
	CompressionPolicy zcodec.Policy
	// Epoch is the membership epoch of an elastic export (set by the elastic
	// engine; leave 0 for conventional exports). A non-zero epoch is suffixed
	// into the object key — so a stale client whose request reaches a reused
	// endpoint gets OBJECT_NOT_EXIST, which the naming Rebinder treats as
	// stale and re-resolves — carried in the published IOR, and checked
	// against epoch-tagged invocation headers before any data transfer.
	Epoch int
}

// DefaultDataTimeout is the default ExportOptions.DataTimeout.
const DefaultDataTimeout = 30 * time.Second

// Object is one computing thread's handle on an exported SPMD object.
type Object struct {
	comm *rts.Comm
	opts ExportOptions
	ops  map[string]*Operation
	srv  *orb.Server // nil on threads without a listener
	ref  orb.IOR
	rec  *obs.Recorder
	// compSkipped counts reply legs where the Auto estimator chose raw
	// despite a negotiated codec (nil-safe no-op without Server.Metrics).
	compSkipped *obs.Counter

	// rank 0 only: requests from the object adapter awaiting the
	// collective loop.
	queue chan *pendingCall
	stop  chan struct{}

	bucketMu sync.Mutex
	buckets  map[uint32]*dataBucket

	// draining sheds new requests with TRANSIENT once Shutdown begins.
	draining  atomic.Bool
	closeOnce sync.Once

	// outScratch is the reusable scalar-results encoder for processCall.
	// Safe because each computing thread owns its own Object and the bytes
	// are copied into the reply stream before the next call resets it.
	outScratch *cdr.Encoder

	// Elastic wiring, installed between Export and Serve by the elastic
	// engine (all fields nil/zero on conventional objects). resizeCh (thread
	// 0 only) delivers resize tickets into the collective loop; onResize is
	// this thread's snapshot callback, run inside the loop when thread 0
	// broadcasts a resize directive; elastic is the owning engine, consulted
	// by Resize and the admin operation.
	resizeCh chan *resizeTicket
	onResize func() error
	elastic  *Elastic
}

type pendingCall struct {
	token      uint32
	header     *invocationHeader
	replyCh    chan callResult
	enqueuedNS int64 // when dispatch queued the call; 0 when tracing is off
}

type callResult struct {
	reply []byte
	err   error
}

// dataBucket accumulates multi-port transfers and connection attachments
// for one invocation token on one computing thread.
type dataBucket struct {
	ch     chan *wire.Data
	connMu sync.Mutex
	conns  map[int]*transport.Conn // client rank → connection for replies
	// notify wakes a return-flow sender waiting for a client attachment
	// that is still in flight (a pure-out operation can reach its send
	// phase before the attach message lands).
	notify chan struct{}
}

// conn returns the recorded connection for a client rank, waiting up to
// timeout for the attachment to arrive. A nil stop channel disables
// cancellation; timeout <= 0 disables the deadline.
func (b *dataBucket) conn(rank int, stop <-chan struct{}, timeout time.Duration) (*transport.Conn, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		b.connMu.Lock()
		c := b.conns[rank]
		b.connMu.Unlock()
		if c != nil {
			return c, nil
		}
		select {
		case <-b.notify:
		case <-stop:
			return nil, ErrStopped
		case <-deadline:
			return nil, fmt.Errorf("core: no attachment from client thread %d", rank)
		}
	}
}

// bucketCapacity bounds buffered in-flight transfers per invocation; the
// block→block worst case is client ranks + server ranks transfers in total,
// so this is generous.
const bucketCapacity = 4096

// Export collectively registers an SPMD object implementation. Every
// computing thread calls it with identical options and operation tables.
// The returned handles share one object; thread 0's carries the
// communicating-thread endpoint.
func Export(comm *rts.Comm, opts ExportOptions, operations []Operation) (*Object, error) {
	engine, err := comm.Dup()
	if err != nil {
		return nil, err
	}
	if opts.Host == "" {
		opts.Host = "127.0.0.1"
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.DataTimeout == 0 {
		opts.DataTimeout = DefaultDataTimeout
	} else if opts.DataTimeout < 0 {
		opts.DataTimeout = 0
	}
	if opts.Server.Trace == nil {
		opts.Server.Trace = opts.Trace
	}
	// The adapters must accept what the reply leg intends to use; merging
	// here lets callers set either knob.
	opts.Compression &= zcodec.Supported
	opts.Server.Compression = (opts.Server.Compression | opts.Compression) & zcodec.Supported
	if opts.Server.CompressionPolicy == zcodec.PolicyAuto {
		opts.Server.CompressionPolicy = opts.CompressionPolicy
	}
	if opts.Server.CompressionPolicy == zcodec.PolicyNever {
		// Never means never: don't even accept offers, so the handshake
		// resolves to raw and the reply leg skips mask agreement entirely.
		opts.Compression = 0
		opts.Server.Compression = 0
	}
	o := &Object{
		comm:    engine,
		opts:    opts,
		ops:     make(map[string]*Operation, len(operations)),
		buckets: make(map[uint32]*dataBucket),
		stop:    make(chan struct{}),
		rec:     opts.Trace,
	}
	o.compSkipped = opts.Server.Metrics.Counter("core.compress.skipped_total")
	for i := range operations {
		op := &operations[i]
		if _, dup := o.ops[op.Desc.Name]; dup {
			return nil, fmt.Errorf("core: duplicate operation %q", op.Desc.Name)
		}
		if op.Desc.Name == describeOp || op.Desc.Name == resizeOp {
			return nil, fmt.Errorf("core: operation name %q is reserved", op.Desc.Name)
		}
		o.ops[op.Desc.Name] = op
	}

	// Listeners: the communicating thread always listens; other threads
	// listen only when the multi-port method is advertised.
	if engine.Rank() == 0 || opts.Multiport {
		srv, err := orb.NewServerOpts(opts.Host+":0", opts.Server)
		if err != nil {
			return nil, err
		}
		o.srv = srv
		srv.SetDataHandler(o.handleData)
		srv.SetConnLostHandler(o.connLost)
	}

	// Collect endpoints at thread 0 and build the reference.
	var epPayload []byte
	if o.srv != nil {
		ep := o.srv.Endpoint(engine.Rank())
		e := cdr.NewEncoder(cdr.NativeOrder)
		e.WriteString(ep.Host)
		e.WriteULong(uint32(ep.Port))
		epPayload = e.Bytes()
	}
	eps, err := engine.Gather(0, epPayload)
	if err != nil {
		o.closeListeners()
		return nil, err
	}
	var refStr string
	if engine.Rank() == 0 {
		key := []byte(fmt.Sprintf("spmd/%s/%s", opts.TypeID, opts.Name))
		if opts.Epoch > 0 {
			// Per-epoch keys: a stale client reaching a reused endpoint with
			// an old key gets OBJECT_NOT_EXIST (a re-resolvable refusal)
			// rather than a silently different epoch of the object.
			key = []byte(fmt.Sprintf("spmd/%s/%s@e%d", opts.TypeID, opts.Name, opts.Epoch))
		}
		ref := orb.IOR{TypeID: opts.TypeID, Key: key, Threads: engine.Size(), Epoch: opts.Epoch}
		for r, p := range eps {
			if len(p) == 0 {
				continue
			}
			d := cdr.NewDecoder(p, cdr.NativeOrder)
			host, err := d.ReadString()
			if err != nil {
				o.closeListeners()
				return nil, err
			}
			port, err := d.ReadULong()
			if err != nil {
				o.closeListeners()
				return nil, err
			}
			ref.Endpoints = append(ref.Endpoints, orb.Endpoint{Host: host, Port: int(port), Rank: r})
		}
		refStr = ref.String()
	}
	refBytes, err := engine.Bcast(0, []byte(refStr))
	if err != nil {
		o.closeListeners()
		return nil, err
	}
	if o.ref, err = orb.ParseIOR(string(refBytes)); err != nil {
		o.closeListeners()
		return nil, err
	}

	// The communicating thread installs the servant and registers the name.
	if engine.Rank() == 0 {
		o.queue = make(chan *pendingCall, opts.QueueDepth)
		o.srv.Register(o.ref.Key, orb.ServantFunc(o.dispatch))
		if opts.Name != "" && opts.NameServer != "" {
			client := orb.NewClient()
			defer client.Close()
			res := naming.NewResolver(client, opts.NameServer)
			bind := func() error { return res.Bind(opts.Name, o.ref, true) }
			if opts.Replica {
				bind = func() error { return res.BindReplica(opts.Name, o.ref) }
			}
			if err := bind(); err != nil {
				o.closeListeners()
				return nil, fmt.Errorf("core: registering %q: %w", opts.Name, err)
			}
		}
	}
	// Everyone waits until registration is complete before serving.
	if err := engine.Barrier(); err != nil {
		o.closeListeners()
		return nil, err
	}
	return o, nil
}

// span records one server-side phase of invocation token on this computing
// thread. The token is the same trace id the client side records under, so a
// merged dump interleaves both halves of an invocation.
func (o *Object) span(token uint32, ph obs.Phase, start time.Time) {
	if o.rec == nil {
		return
	}
	o.rec.Record(obs.Span{Trace: uint64(token), Phase: ph, Rank: int32(o.comm.Rank()),
		Start: start.UnixNano(), Dur: int64(time.Since(start))})
}

// spanCodec is span carrying the wire-compression mask in effect for the
// phase (0 when the transfer ran raw).
func (o *Object) spanCodec(token uint32, ph obs.Phase, start time.Time, mask uint8) {
	if o.rec == nil {
		return
	}
	o.rec.Record(obs.Span{Trace: uint64(token), Phase: ph, Rank: int32(o.comm.Rank()),
		Start: start.UnixNano(), Dur: int64(time.Since(start)), Codec: int32(mask)})
}

// Ref returns the object's reference.
func (o *Object) Ref() orb.IOR { return o.ref }

// Comm returns the object's engine communicator.
func (o *Object) Comm() *rts.Comm { return o.comm }

// dispatch is the communicating thread's servant: it answers interface
// discovery directly and funnels operation requests into the collective
// queue, blocking the adapter goroutine until the collective loop replies.
func (o *Object) dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op == describeOp {
		descs := make([]OpDesc, 0, len(o.ops))
		for _, operation := range o.ops {
			descs = append(descs, operation.Desc)
		}
		encodeOpTable(out, descs)
		return nil
	}
	if op == resizeOp {
		return o.adminResize(in, out)
	}
	hdr, err := decodeInvocationHeader(in)
	if err != nil {
		return orb.Marshal(err)
	}
	if hdr.Op != op {
		return orb.Marshal(fmt.Errorf("%w: header op %q != request op %q", ErrBadHeader, hdr.Op, op))
	}
	// Validate cheaply before involving the other computing threads.
	if err := o.validate(hdr); err != nil {
		return err
	}
	if o.draining.Load() {
		return orb.Transient("object draining")
	}
	call := &pendingCall{token: hdr.Token, header: hdr, replyCh: make(chan callResult, 1)}
	if o.rec != nil {
		call.enqueuedNS = time.Now().UnixNano()
	}
	// Never park the adapter goroutine on an unbounded wait: a full
	// collective queue sheds immediately with TRANSIENT (the request was
	// never dispatched, so the client may retry here or on a replica).
	select {
	case o.queue <- call:
	case <-o.stop:
		return &orb.SystemException{RepoID: orb.RepoInternal, Message: ErrStopped.Error()}
	default:
		return orb.Transient(fmt.Sprintf("collective queue full (%d pending)", cap(o.queue)))
	}
	select {
	case res := <-call.replyCh:
		if res.err != nil {
			return res.err
		}
		// res.reply is a complete argument payload; out already carries
		// the byte-order octet, so splice in the body after the flag. Both
		// were produced by NewArgEncoder, so orders and alignment agree.
		if len(res.reply) > 0 {
			out.WriteRaw(res.reply[1:])
		}
		return nil
	case <-o.stop:
		return &orb.SystemException{RepoID: orb.RepoInternal, Message: ErrStopped.Error()}
	}
}

// adminResize serves the reserved "_pardis_resize" operation: it accepts a
// target thread count and triggers the membership change asynchronously
// (synchronous would deadlock — the resize quiesces this very adapter). The
// reply reports the epoch current at acceptance time; callers observe the
// transition through re-resolution.
func (o *Object) adminResize(in *cdr.Decoder, out *cdr.Encoder) error {
	if !o.opts.Server.AdminResize || o.elastic == nil {
		return orb.BadOperation(resizeOp)
	}
	n, err := in.ReadLong()
	if err != nil {
		return orb.Marshal(err)
	}
	if n < 1 || n > 1<<20 {
		return &orb.SystemException{RepoID: orb.RepoBadOperation,
			Message: fmt.Sprintf("%s: target size %d", resizeOp, n)}
	}
	el := o.elastic
	go func() { _ = el.Resize(int(n)) }()
	out.WriteLong(int32(el.Epoch()))
	return nil
}

// validate checks an inbound header against the operation table.
func (o *Object) validate(h *invocationHeader) error {
	if h.Epoch != 0 && int(h.Epoch) != o.opts.Epoch {
		// Wrong membership epoch: the client bound before (or, during a
		// rollback window, after) a resize. Refuse before any data moves —
		// the client must never scatter against the wrong shape — with the
		// re-resolvable refusal, so the Rebinder path retries at most once.
		return orb.ObjectNotExist(o.ref.Key)
	}
	op, ok := o.ops[h.Op]
	if !ok {
		return orb.BadOperation(h.Op)
	}
	if len(h.Args) != len(op.Desc.Args) {
		return &orb.SystemException{
			RepoID:  orb.RepoBadOperation,
			Message: fmt.Sprintf("%s: %d distributed args, want %d", h.Op, len(h.Args), len(op.Desc.Args)),
		}
	}
	for i, a := range h.Args {
		want := op.Desc.Args[i]
		if a.Dir != want.Dir {
			return &orb.SystemException{
				RepoID:  orb.RepoBadOperation,
				Message: fmt.Sprintf("%s arg %d: dir %v, want %v", h.Op, i, a.Dir, want.Dir),
			}
		}
		if a.Elem != want.Elem {
			return &orb.SystemException{
				RepoID:  orb.RepoBadOperation,
				Message: fmt.Sprintf("%s arg %d: element type %q, want %q", h.Op, i, a.Elem, want.Elem),
			}
		}
	}
	if h.Method == Multiport && !o.opts.Multiport {
		return &orb.SystemException{RepoID: orb.RepoBadOperation, Message: ErrNoMultiport.Error()}
	}
	return nil
}

// handleData routes an inbound multi-port transfer (or connection
// attachment) to its invocation's bucket on this computing thread.
func (o *Object) handleData(d *wire.Data, conn *transport.Conn) {
	b := o.bucket(d.RequestID)
	b.connMu.Lock()
	if _, ok := b.conns[int(d.SrcRank)]; !ok {
		if b.conns == nil {
			b.conns = make(map[int]*transport.Conn)
		}
		b.conns[int(d.SrcRank)] = conn
	}
	b.connMu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
	if d.Count > 0 {
		b.ch <- d
	} else {
		// Pure attachment message: no payload will be consumed, so return
		// any borrowed frame buffer now.
		d.Release()
	}
}

func (o *Object) bucket(token uint32) *dataBucket {
	o.bucketMu.Lock()
	defer o.bucketMu.Unlock()
	b, ok := o.buckets[token]
	if !ok {
		// conns is created lazily on first attachment; reads of the nil
		// map below are safe and miss.
		b = &dataBucket{
			ch:     make(chan *wire.Data, bucketCapacity),
			notify: make(chan struct{}, 1),
		}
		o.buckets[token] = b
	}
	return b
}

func (o *Object) dropBucket(token uint32) {
	o.bucketMu.Lock()
	b := o.buckets[token]
	delete(o.buckets, token)
	o.bucketMu.Unlock()
	if b != nil {
		// Return any frames still buffered — e.g. chunks past the first
		// failure of a streamed transfer, which the receive loop stopped
		// pulling — to the transport pool. A late handleData racing this
		// drain can at worst strand its one frame for the garbage collector;
		// it cannot block, because nothing else drains b.ch after the drop.
		drainData(b.ch)
	}
}

// connLost poisons every bucket fed by the lost connection with a nil
// sentinel: an upcall mid-receive on that bucket then fails promptly (and
// coherently, through the collective error agreement) instead of waiting out
// the data timeout. Invoked by the adapter after a connection's serve loop
// ends — peer death via keepalive included.
func (o *Object) connLost(conn *transport.Conn) {
	o.bucketMu.Lock()
	defer o.bucketMu.Unlock()
	for _, b := range o.buckets {
		b.connMu.Lock()
		fed := false
		for _, c := range b.conns {
			if c == conn {
				fed = true
				break
			}
		}
		b.connMu.Unlock()
		if fed {
			select {
			case b.ch <- nil:
			default: // bucket full; the consumer will fail on its own
			}
		}
	}
}

func (o *Object) closeListeners() {
	if o.srv != nil {
		o.srv.Close()
	}
}

// Shutdown drains this thread's adapter gracefully: new requests are shed
// with TRANSIENT, the adapter stops accepting connections, in-flight
// dispatches get until ctx's deadline to finish (the collective loop must
// still be running — call Shutdown from another goroutine while Serve runs,
// or between Poll calls), peers are told CloseConnection, and finally the
// collective loop is released. Local (not collective) and idempotent.
func (o *Object) Shutdown(ctx context.Context) error {
	o.draining.Store(true)
	var err error
	if o.srv != nil {
		err = o.srv.Shutdown(ctx)
	}
	o.closeOnce.Do(func() {
		close(o.stop)
	})
	return err
}

// Close tears down this thread's listener and unblocks the adapter. It is
// local (not collective) and idempotent; Serve on this thread returns.
func (o *Object) Close() {
	o.draining.Store(true)
	o.closeOnce.Do(func() {
		close(o.stop)
		o.closeListeners()
	})
}
