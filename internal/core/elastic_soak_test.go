package core

import (
	"runtime"
	"testing"

	"repro/internal/testutil"
)

// TestResizeSoak drives 200 grow/shrink cycles through one elastic object
// under continuous client load, then checks that nothing leaked: goroutines
// settle back to the baseline (every epoch's worlds, listeners and clients
// are torn down) and the heap stays bounded (no per-epoch state is
// retained). State integrity is asserted at the end — 200 repartitions must
// still conserve the seeded multiset exactly.
func TestResizeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const cycles = 200
	testutil.CheckGoroutines(t, "soak", func(t *testing.T) {
		el, ns := startElastic(t, 1)

		stopLoad := make(chan struct{})
		loadErr := make(chan error, 1)
		go func() { loadErr <- chaosLoad(ns.Addr(), stopLoad) }()

		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)

		// 1 → 2 → 3 → 1 → ... : consecutive targets always differ, so every
		// cycle is a real membership change.
		size := 1
		for i := 0; i < cycles; i++ {
			target := 1 + (i+1)%3
			if err := el.Resize(target); err != nil {
				t.Fatalf("cycle %d (%d -> %d): %v", i, size, target, err)
			}
			if el.Size() != target || el.Epoch() != i+2 {
				t.Fatalf("cycle %d: epoch %d size %d, want epoch %d size %d",
					i, el.Epoch(), el.Size(), i+2, target)
			}
			size = target
		}
		close(stopLoad)
		if err := <-loadErr; err != nil {
			t.Fatalf("load client: %v", err)
		}

		if got := elasticSumOnce(t, ns.Addr()); got != elasticSum {
			t.Fatalf("sum after %d cycles: %v, want %v", cycles, got, elasticSum)
		}
		want := make([]float64, elasticLen)
		for i := range want {
			want[i] = float64(i + 1)
		}
		if err := testutil.Conserved(want, elasticGetOnce(t, ns.Addr())); err != nil {
			t.Fatalf("after %d cycles: %v", cycles, err)
		}

		// Heap bound: repeated epochs must not accumulate state. The bound is
		// deliberately generous (transport buffers, test bookkeeping) — a
		// leak of even one world or transfer buffer per cycle would blow it.
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 32<<20 {
			t.Fatalf("heap grew %d bytes over %d cycles", grew, cycles)
		}
	})
}
