package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cdr"
	"repro/internal/dist"
	"repro/internal/dseq"
	"repro/internal/orb"
	"repro/internal/rts"
)

func mustLayout(t *testing.T, length, ranks int) dist.Layout {
	t.Helper()
	l, err := dist.Block{}.Layout(length, ranks)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestInvocationHeaderRoundTrip(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		h := &invocationHeader{
			Op: "diffusion", Method: method, Token: 12345, ClientRanks: 4,
			Scalars: []byte{1, 2, 3},
			Args: []headerArg{
				{Dir: In, Elem: "double", Layout: mustLayout(t, 100, 4), Data: []byte{9, 9}},
				{Dir: InOut, Elem: "long", Layout: mustLayout(t, 50, 4), Data: []byte{7}},
				{Dir: Out, Elem: "double", Spec: dist.Proportions{P: []int{1, 2, 3, 4}}},
			},
		}
		e := cdr.NewEncoder(cdr.NativeOrder)
		h.encode(e)
		got, err := decodeInvocationHeader(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder))
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if got.Op != h.Op || got.Method != h.Method || got.Token != h.Token || got.ClientRanks != 4 {
			t.Fatalf("%v: header %+v", method, got)
		}
		if !bytes.Equal(got.Scalars, h.Scalars) || len(got.Args) != 3 {
			t.Fatalf("%v: payloads %+v", method, got)
		}
		if got.Args[2].Spec.String() != "proportions(1,2,3,4)" {
			t.Fatalf("out spec %v", got.Args[2].Spec)
		}
		if method == Centralized {
			if !bytes.Equal(got.Args[0].Data, h.Args[0].Data) {
				t.Fatalf("centralized lost inline data")
			}
		} else if got.Args[0].Data != nil {
			t.Fatalf("multi-port carried inline data")
		}
		if !got.Args[1].Layout.Equal(h.Args[1].Layout) {
			t.Fatalf("%v: layout mangled", method)
		}
	}
}

func TestReplyHeaderRoundTrip(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		h := &replyHeader{
			Scalars: []byte{5},
			Args: []replyArg{
				{Dir: In, Length: 100},
				{Dir: InOut, Length: 100, Data: []byte{1, 2, 3}},
				{Dir: Out, Length: 321, Data: []byte{4}},
			},
		}
		e := cdr.NewEncoder(cdr.NativeOrder)
		h.encode(e, method, false)
		got, err := decodeReplyHeader(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder), method, false)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if got.Args[2].Length != 321 {
			t.Fatalf("%v: lengths %+v", method, got.Args)
		}
		if method == Centralized && !bytes.Equal(got.Args[1].Data, h.Args[1].Data) {
			t.Fatal("centralized reply lost data")
		}
	}
	// Streamed replies carry lengths only: the result data travels as chunked
	// Data messages written before the Reply.
	sh := &replyHeader{Args: []replyArg{{Dir: Out, Length: 77, Data: []byte{1, 2}}}}
	se := cdr.NewEncoder(cdr.NativeOrder)
	sh.encode(se, Centralized, true)
	sgot, err := decodeReplyHeader(cdr.NewDecoder(se.Bytes(), cdr.NativeOrder), Centralized, true)
	if err != nil {
		t.Fatal(err)
	}
	if sgot.Args[0].Length != 77 || sgot.Args[0].Data != nil {
		t.Fatalf("streamed reply header %+v", sgot.Args[0])
	}
}

// TestStreamedInvocationHeaderRoundTrip pins the streamed header wiring: the
// wire method code is distinct (old decoders reject it cleanly), the chunk
// size travels, and no inline data is encoded.
func TestStreamedInvocationHeaderRoundTrip(t *testing.T) {
	h := &invocationHeader{
		Op: "diffusion", Method: Centralized, Streamed: true, ChunkElems: 8192,
		Token: 99, ClientRanks: 4, Scalars: []byte{1},
		Args: []headerArg{
			{Dir: In, Elem: "double", Layout: mustLayout(t, 100000, 4)},
			{Dir: Out, Elem: "double", Spec: dist.Block{}},
		},
	}
	e := cdr.NewEncoder(cdr.NativeOrder)
	h.encode(e)
	got, err := decodeInvocationHeader(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Streamed || got.Method != Centralized || got.ChunkElems != 8192 {
		t.Fatalf("streamed header %+v", got)
	}
	if got.Args[0].Data != nil {
		t.Fatal("streamed header carried inline data")
	}
	// A zero chunk size is rejected (it would make the schedule infinite).
	bad := *h
	bad.ChunkElems = 0
	e = cdr.NewEncoder(cdr.NativeOrder)
	bad.encode(e)
	if _, err := decodeInvocationHeader(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder)); err == nil {
		t.Fatal("zero chunk size accepted")
	}
	// Method codes past the streamed one stay rejected.
	e = cdr.NewEncoder(cdr.NativeOrder)
	e.WriteString("op")
	e.WriteEnum(wireMethodStreamed + 1)
	if _, err := decodeInvocationHeader(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestHeaderDecodeNeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		decodeInvocationHeader(cdr.NewDecoder(data, cdr.LittleEndian))
		decodeReplyHeader(cdr.NewDecoder(data, cdr.LittleEndian), Centralized, false)
		decodeReplyHeader(cdr.NewDecoder(data, cdr.LittleEndian), Centralized, true)
		decodeReplyHeader(cdr.NewDecoder(data, cdr.LittleEndian), Multiport, false)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderTruncations(t *testing.T) {
	h := &invocationHeader{Op: "f", Method: Centralized, Token: 1, ClientRanks: 2,
		Args: []headerArg{{Dir: In, Elem: "double", Layout: mustLayout(t, 10, 2), Data: []byte{1}}}}
	e := cdr.NewEncoder(cdr.NativeOrder)
	h.encode(e)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeInvocationHeader(cdr.NewDecoder(full[:cut], cdr.NativeOrder)); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestMetaErrRoundTrip(t *testing.T) {
	check := func(in error) error {
		t.Helper()
		e := cdr.NewEncoder(cdr.NativeOrder)
		encodeMetaErr(e, in)
		out, err := decodeMetaErr(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return out
	}
	if check(nil) != nil {
		t.Fatal("nil error mangled")
	}
	if got := check(errors.New("plain problem")); got == nil || got.Error() != "plain problem" {
		t.Fatalf("plain error %v", got)
	}
	var ue *orb.UserException
	got := check(&orb.UserException{RepoID: "IDL:x:1.0", Message: "boom", Payload: []byte{1}})
	if !errors.As(got, &ue) || ue.RepoID != "IDL:x:1.0" || ue.Message != "boom" || len(ue.Payload) != 1 {
		t.Fatalf("user exception %v", got)
	}
	var se *orb.SystemException
	got = check(&orb.SystemException{RepoID: orb.RepoComm, Minor: 7, Message: "net"})
	if !errors.As(got, &se) || se.Minor != 7 || se.RepoID != orb.RepoComm {
		t.Fatalf("system exception %v", got)
	}
	// Unknown kind byte is rejected.
	if _, err := decodeMetaErr(cdr.NewDecoder([]byte{99}, cdr.NativeOrder)); err == nil {
		t.Fatal("unknown meta kind accepted")
	}
}

func TestFutureWaitTimeoutAndReady(t *testing.T) {
	f := newFuture()
	if f.Ready() {
		t.Fatal("fresh future ready")
	}
	if _, _, ok := f.WaitTimeout(10 * time.Millisecond); ok {
		t.Fatal("unresolved future reported ready")
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		f.complete([]byte("done"), nil)
	}()
	scalars, err, ok := f.WaitTimeout(5 * time.Second)
	if !ok || err != nil || string(scalars) != "done" {
		t.Fatalf("%q %v %v", scalars, err, ok)
	}
	if !f.Ready() {
		t.Fatal("resolved future not ready")
	}
	select {
	case <-f.Done():
	default:
		t.Fatal("Done channel not closed")
	}
}

func TestArgSeqPanicsOnWrongType(t *testing.T) {
	w := rts.NewWorld(1)
	defer w.Close()
	s, err := dseq.New(w.Comm(0), dseq.Float64, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := &ServerCall{Op: "op", Args: []dseq.Transferable{s}}
	if got := ArgSeq[float64](call, 0); got != s {
		t.Fatal("ArgSeq returned wrong sequence")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	ArgSeq[int32](call, 0)
}

func TestSeqArgsFloat64Validation(t *testing.T) {
	w := rts.NewWorld(2)
	defer w.Close()
	descs := []ArgDesc{{Name: "a", Dir: In, Elem: "double"}, {Name: "b", Dir: Out, Elem: "double"}}
	factory := SeqArgsFloat64(descs)
	err := w.Run(func(c *rts.Comm) error {
		args, err := factory(c, []int{10, -1})
		if err != nil {
			return err
		}
		if len(args) != 2 || args[0].Len() != 10 || args[1].Len() != 0 {
			t.Errorf("args %v", args)
		}
		if _, err := factory(c, []int{1}); !errors.Is(err, ErrArgMismatch) {
			t.Errorf("length mismatch: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMethodAndDirStrings(t *testing.T) {
	if Centralized.String() != "centralized" || Multiport.String() != "multi-port" {
		t.Fatal("method names")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method name")
	}
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" || Dir(9).String() == "" {
		t.Fatal("dir names")
	}
}

func TestOpTableRoundTrip(t *testing.T) {
	ops := []OpDesc{
		{Name: "f", Args: []ArgDesc{{Name: "a", Dir: In, Elem: "double", Spec: dist.Cyclic{BlockSize: 2}}}},
		{Name: "g"},
	}
	e := cdr.NewEncoder(cdr.NativeOrder)
	encodeOpTable(e, ops)
	got, err := decodeOpTable(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "f" || got[0].Args[0].Spec.String() != "cyclic(2)" {
		t.Fatalf("table %+v", got)
	}
	if len(got[1].Args) != 0 {
		t.Fatalf("empty op grew args: %+v", got[1])
	}
}
