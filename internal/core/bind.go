package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rts"
	"repro/internal/transport"
	"repro/internal/zcodec"
)

// BindOptions configure SPMDBind and Bind.
type BindOptions struct {
	// TypeID, when set, constrains the name resolution to that repository
	// id (CORBA-style typed narrowing at bind time).
	TypeID string
	// Method is the default argument transfer method for invocations on
	// this binding.
	Method Method
	// Timeout bounds each blocking remote interaction; zero means no bound.
	Timeout time.Duration
	// Transport, when set, configures the binding's connections (frame
	// limits, byte order, fault-injection wrappers for chaos tests).
	Transport *transport.Options
	// Retry is the binding's policy for retrying idempotent client
	// operations (locate, oneway sends) after connection failures.
	Retry orb.RetryPolicy
	// KeepaliveInterval, when positive, probes idle connections (control and
	// multi-port data alike) and declares a peer dead after KeepaliveTimeout
	// of further silence, so a SIGKILL'd server rank surfaces as a prompt
	// coherent error through the collective error agreement instead of a
	// data-timeout stall.
	KeepaliveInterval time.Duration
	KeepaliveTimeout  time.Duration
	// Breaker is the per-endpoint circuit breaker policy applied when the
	// bound reference carries multiple replica profiles.
	Breaker orb.BreakerPolicy
	// Trace, when set, receives one span per invocation phase (bind, invoke,
	// gather, pack, sendrecv, scatter, unpack, barrier) as observed by this
	// thread, keyed by the invocation token. Setting it also turns on the
	// wire-level trace-context extension so server-side spans of the same
	// invocation correlate by request id. Only enable against servers that
	// understand the extension (anything running this code).
	Trace *obs.Recorder
	// Metrics, when set, receives the binding's client-side resilience
	// counters (see orb.Client.Metrics) and the pipeline inflight gauge
	// ("core.pipeline_inflight").
	Metrics *obs.Registry
	// PipelineDepth is the number of invocations that may be outstanding on
	// this binding at once (0 and 1 both mean the classic one-at-a-time
	// engine). Each extra lane gets its own duplicated communicator, so the
	// collective traffic of overlapping invocations cannot interleave;
	// replies demultiplex by request id on the shared connection. Issuing
	// more than PipelineDepth concurrent invocations fails with ErrBusy —
	// as with the depth-1 engine, the SPMD discipline requires every thread
	// to issue the same invocations in the same order.
	PipelineDepth int
	// StreamChunkElems tunes the streamed centralized transfer: large
	// centralized arguments are gathered, shipped, and scattered in chunks
	// of this many elements, overlapping collective (un)marshalling with
	// the wire. 0 means DefaultStreamChunkElems; negative disables
	// streaming (whole-sequence transfers, the pre-pipelining behavior).
	StreamChunkElems int
	// Sharding configures consistent-hash routing across the profiles of a
	// multi-profile reference, each profile being one shard group announced
	// through naming.BindReplica. Only InvokeSharded invocations (the ones
	// carrying a shard key) are routed; everything else — the bind-time
	// describe, plain Invoke — keeps the primary-first failover order.
	Sharding ShardingOptions
	// Compression is the wire-compression codec mask (zcodec.MaskAll and
	// friends; build one with zcodec.ParseMask) this binding offers on its
	// connections. When the server accepts, streamed centralized transfers
	// compress their numeric chunks with the negotiated block codec; a
	// server that declines — or predates the handshake — keeps every
	// transfer raw, transparently. Zero disables the offer entirely and the
	// engine's raw path is untouched.
	Compression uint8
	// CompressionPolicy selects how the negotiated mask is applied per
	// transfer leg. PolicyAuto (the zero default) consults the adaptive
	// estimator — compress only when the observed encode throughput and
	// ratio beat the connection's measured wire bandwidth — so a binding
	// on a fast loopback skips the codec it would want on a thin WAN
	// link. PolicyAlways compresses whenever a codec is negotiated (the
	// pre-adaptive behavior); PolicyNever is equivalent to Compression
	// == 0.
	CompressionPolicy zcodec.Policy
	// ShareConnection lets this binding share one multiplexed client engine
	// — and therefore one connection per endpoint — with every other
	// ShareConnection binding in the process whose client-relevant options
	// match. The orb client already demultiplexes concurrent replies by
	// request id, so sharing costs nothing in correctness; what it buys is
	// massive fan-in: thousands of cheap bindings to one server ride a
	// handful of connections instead of opening one each. Shared clients are
	// reference-counted — the last Close of a sharing binding closes the
	// underlying client. The shared client reports the generic principal
	// "spmd-client/shared" instead of a per-rank one.
	ShareConnection bool
}

// ShardingOptions configure a binding's consistent-hash shard routing.
type ShardingOptions struct {
	// Enabled turns shard routing on for invocations carrying a shard key.
	Enabled bool
	// VirtualNodes is the per-shard ring point count; 0 uses the package
	// default. Every client of one shard group must agree on it.
	VirtualNodes int
	// Idempotent declares this binding's operations safe to re-execute: an
	// invocation whose shard dies mid-flight reroutes transparently to the
	// next ring successor. Leave false for operations with side effects —
	// those surface a single coherent shard error instead of re-sending.
	Idempotent bool
}

// sharedClients holds the process-wide reference-counted client engines
// behind ShareConnection bindings.
var sharedClients = orb.NewClientPool()

// clientKey fingerprints every option that changes the built client's wire
// behaviour, so only identically-configured bindings share an engine.
// Pointer-valued options (Transport, Trace, Metrics) are identified by
// pointer: distinct instances mean distinct wiring even when the contents
// happen to match.
func (o BindOptions) clientKey() string {
	return fmt.Sprintf("to=%v tr=%p retry=%v ka=%v/%v bk=%v rec=%p met=%p sh=%v cp=%02x/%d",
		o.Timeout, o.Transport, o.Retry, o.KeepaliveInterval, o.KeepaliveTimeout,
		o.Breaker, o.Trace, o.Metrics, o.Sharding, o.effComp(), o.CompressionPolicy)
}

// effComp is the compression mask this binding actually offers:
// the configured mask clipped to this build's codecs, or nothing at
// all under PolicyNever (which must suppress even the handshake offer).
func (o BindOptions) effComp() uint8 {
	if o.CompressionPolicy == zcodec.PolicyNever {
		return 0
	}
	return o.Compression & zcodec.Supported
}

// maxPipelineDepth bounds the lane fan-out so a typo'd depth cannot allocate
// thousands of communicator contexts.
const maxPipelineDepth = 64

// newClient builds an orb client configured per the options.
func (o BindOptions) newClient() *orb.Client {
	cli := orb.NewClient()
	cli.Timeout = o.Timeout
	cli.Transport = o.Transport
	if o.Trace != nil {
		// Stamp outbound frames with the trace-context extension. Copy the
		// options so the caller's struct is not mutated.
		topts := transport.Options{}
		if o.Transport != nil {
			topts = *o.Transport
		}
		topts.TraceHeaders = true
		cli.Transport = &topts
	}
	cli.Metrics = o.Metrics
	cli.Retry = o.Retry
	cli.KeepaliveInterval = o.KeepaliveInterval
	cli.KeepaliveTimeout = o.KeepaliveTimeout
	cli.Breaker = o.Breaker
	cli.Shard = orb.ShardPolicy{VirtualNodes: o.Sharding.VirtualNodes}
	cli.Compression = o.effComp()
	return cli
}

// Binding is one computing thread's handle on a bound SPMD object. All the
// threads that took part in the SPMDBind share one logical binding; every
// invocation through it is collective ("after spmd_bind, every invocation to
// the object must be called by all the threads that participated in the bind
// call, and will result in making one request on the object", paper §2.1).
type Binding struct {
	comm    *rts.Comm
	client  *orb.Client
	ref     orb.IOR
	ops     map[string]OpDesc
	method  Method
	ownsCli bool
	// sharedKey, when non-empty, marks the client as borrowed from the
	// process-wide shared pool under that key; Close releases the reference
	// instead of closing the client.
	sharedKey string
	rec       *obs.Recorder

	// lanes carry invocations: each lane owns a duplicated communicator so
	// overlapping invocations' collective traffic stays separated, plus a
	// one-slot free channel acting as its busy latch. Lane 0 reuses the
	// engine communicator. Lanes are assigned round-robin by laneSeq under
	// laneMu — a deterministic cursor, so every SPMD thread picks the same
	// lane for the same invocation without communicating.
	lanes    []bindLane
	laneMu   sync.Mutex
	laneSeq  uint64
	inflight *obs.Gauge // lanes currently busy; nil when metrics are off

	// chunkElems is the streamed-transfer chunk size in elements; 0 disables
	// streaming on this binding.
	chunkElems int

	// comp is the binding's offered compression mask (BindOptions.Compression
	// clipped to this build's codecs); 0 keeps every transfer raw and skips
	// the per-invocation mask agreement entirely. policy is the per-leg
	// application rule (Auto/Always; Never already zeroed comp), and
	// compSkipped counts request legs where the Auto estimator chose to
	// send raw despite a negotiated codec (nil when metrics are off).
	comp        uint8
	policy      zcodec.Policy
	compSkipped *obs.Counter

	// sharding is the binding's shard-routing configuration (see
	// BindOptions.Sharding); InvokeSharded consults it at rank 0.
	sharding ShardingOptions

	// refEpoch is the membership epoch the bound reference carries (0 for
	// non-elastic objects). Invocation headers are tagged with it so a
	// request that lands on a stale or future epoch of an elastic object is
	// refused before any data transfer — the client never scatters against
	// the wrong shape.
	refEpoch uint32
}

// bindLane is one pipeline slot of a binding.
type bindLane struct {
	comm *rts.Comm
	free chan struct{} // holds one token when the lane is idle
}

func newLane(c *rts.Comm) bindLane {
	ln := bindLane{comm: c, free: make(chan struct{}, 1)}
	ln.free <- struct{}{}
	return ln
}

// acquireLane claims the next lane in the deterministic round-robin order,
// failing with ErrBusy when that lane is still carrying an invocation. The
// cursor advances even on failure so all threads stay in lockstep provided
// they observe the SPMD discipline (same calls, same order, at most
// PipelineDepth outstanding).
func (b *Binding) acquireLane() (*bindLane, error) {
	b.laneMu.Lock()
	ln := &b.lanes[b.laneSeq%uint64(len(b.lanes))]
	b.laneSeq++
	b.laneMu.Unlock()
	select {
	case <-ln.free:
		b.inflight.Add(1)
		return ln, nil
	default:
		return nil, ErrBusy
	}
}

// releaseLane returns a lane to the pool. Callers must release before
// completing the invocation's future, so that a caller who has observed
// completion can immediately issue the next invocation.
func (b *Binding) releaseLane(ln *bindLane) {
	b.inflight.Add(-1)
	ln.free <- struct{}{}
}

// PipelineDepth reports the number of lanes this binding was built with.
func (b *Binding) PipelineDepth() int { return len(b.lanes) }

// SPMDBind collectively binds all the computing threads of comm to the named
// SPMD object, resolving the name through the PARDIS naming domain at
// nameServer. It is the paper's _spmd_bind.
func SPMDBind(comm *rts.Comm, name, nameServer string, opts ...BindOptions) (*Binding, error) {
	var o BindOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	var payload []byte
	if comm.Rank() == 0 {
		cli := o.newClient()
		res := naming.NewResolver(cli, nameServer)
		ref, err := res.Resolve(name, o.TypeID)
		cli.Close()
		if err != nil {
			payload = append([]byte{'!'}, flattenErr(err)...)
		} else {
			payload = []byte(ref.String())
		}
	}
	// Share the resolution outcome.
	shared, err := comm.Bcast(0, payload)
	if err != nil {
		return nil, err
	}
	if len(shared) > 1 && shared[0] == '!' {
		return nil, unflattenErr(fmt.Sprintf("binding %q", name), shared[1:])
	}
	ref, err := orb.ParseIOR(string(shared))
	if err != nil {
		return nil, err
	}
	return SPMDBindRef(comm, ref, o)
}

// SPMDBindRef is SPMDBind for a reference obtained out of band (a
// stringified IOR passed between processes). Collective.
func SPMDBindRef(comm *rts.Comm, ref orb.IOR, opts ...BindOptions) (*Binding, error) {
	var o BindOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if ref.Threads < 1 {
		return nil, ErrNotSPMD
	}
	bindStart := time.Now()
	engine, err := comm.Dup()
	if err != nil {
		return nil, err
	}
	var sharedKey string
	var client *orb.Client
	if o.ShareConnection {
		sharedKey = o.clientKey()
		client = sharedClients.Acquire(sharedKey, func() *orb.Client {
			cli := o.newClient()
			cli.Principal = "spmd-client/shared"
			return cli
		})
	} else {
		client = o.newClient()
		client.Principal = fmt.Sprintf("spmd-client/%d", engine.Rank())
	}
	// closeCli is the error-path teardown: drop the pool reference for a
	// shared client, close a private one.
	closeCli := func() {
		if sharedKey != "" {
			sharedClients.Release(sharedKey)
		} else {
			client.Close()
		}
	}

	// Thread 0 fetches the interface description; everyone shares it.
	var tableBytes []byte
	if engine.Rank() == 0 {
		reply, err := client.Invoke(ref, describeOp, orb.NewArgEncoder().Bytes(), false)
		if err != nil {
			tableBytes = append([]byte{'!'}, flattenErr(err)...)
		} else {
			tableBytes = append([]byte{0}, reply...)
		}
	}
	tableBytes, err = engine.Bcast(0, tableBytes)
	if err != nil {
		closeCli()
		return nil, err
	}
	if len(tableBytes) == 0 {
		closeCli()
		return nil, fmt.Errorf("%w: empty interface description", ErrBadHeader)
	}
	if tableBytes[0] == '!' {
		closeCli()
		return nil, unflattenErr("describing object", tableBytes[1:])
	}
	d, err := orb.ArgDecoder(tableBytes[1:])
	if err != nil {
		closeCli()
		return nil, err
	}
	descs, err := decodeOpTable(d)
	if err != nil {
		closeCli()
		return nil, err
	}
	ops := make(map[string]OpDesc, len(descs))
	for _, desc := range descs {
		ops[desc.Name] = desc
	}
	depth := o.PipelineDepth
	if depth < 1 {
		depth = 1
	}
	if depth > maxPipelineDepth {
		depth = maxPipelineDepth
	}
	// Lane 0 rides the engine communicator; the extra lanes each get a
	// duplicated context, allocated in one collective round. Every rank
	// clamps depth from the shared options identically, so the Dups call
	// count agrees.
	lanes := make([]bindLane, 1, depth)
	lanes[0] = newLane(engine)
	if depth > 1 {
		extra, err := engine.Dups(depth - 1)
		if err != nil {
			closeCli()
			return nil, err
		}
		for _, c := range extra {
			lanes = append(lanes, newLane(c))
		}
	}
	ce := o.StreamChunkElems
	if ce == 0 {
		ce = DefaultStreamChunkElems
	} else if ce < 0 {
		ce = 0
	}
	b := &Binding{
		comm:       engine,
		client:     client,
		ref:        ref,
		ops:        ops,
		method:     o.Method,
		ownsCli:    true,
		sharedKey:  sharedKey,
		rec:        o.Trace,
		lanes:      lanes,
		chunkElems: ce,
		comp:       o.effComp(),
		policy:     o.CompressionPolicy,
		sharding:   o.Sharding,
		refEpoch:   uint32(ref.Epoch),
	}
	if o.Metrics != nil {
		b.inflight = o.Metrics.Gauge("core.pipeline_inflight")
		b.compSkipped = o.Metrics.Counter("core.compress.skipped_total")
	}
	if o.Method == Multiport && !ref.Multiport() {
		b.Close()
		return nil, ErrNoMultiport
	}
	b.span(0, obs.PhaseBind, bindStart)
	return b, nil
}

// Bind is the paper's non-collective _bind: it gives the calling thread its
// own independent binding using the non-distributed mapping (a private
// single-thread world, so the shared collective machinery degenerates to
// local operations). Different threads of a parallel client can Bind to
// different objects and invoke them concurrently.
func Bind(name, nameServer string, opts ...BindOptions) (*Binding, error) {
	w := rts.NewWorld(1)
	b, err := SPMDBind(w.Comm(0), name, nameServer, opts...)
	if err != nil {
		w.Close()
		return nil, err
	}
	return b, nil
}

// BindRef is Bind for an out-of-band reference.
func BindRef(ref orb.IOR, opts ...BindOptions) (*Binding, error) {
	w := rts.NewWorld(1)
	b, err := SPMDBindRef(w.Comm(0), ref, opts...)
	if err != nil {
		w.Close()
		return nil, err
	}
	return b, nil
}

// Ref returns the bound object's reference.
func (b *Binding) Ref() orb.IOR { return b.ref }

// Comm returns the binding's engine communicator.
func (b *Binding) Comm() *rts.Comm { return b.comm }

// Ops returns the bound object's operation descriptions, keyed by name.
func (b *Binding) Ops() map[string]OpDesc { return b.ops }

// Close releases this thread's client connections: a private client is
// closed, a shared one has its pool reference dropped (the last sharer's
// Close closes it). Local, idempotent.
func (b *Binding) Close() {
	if b.sharedKey != "" {
		sharedClients.Release(b.sharedKey)
		b.sharedKey = ""
		return
	}
	if b.ownsCli {
		b.client.Close()
	}
}

// flattenErr renders thread 0's bind-time error for a collective broadcast,
// leading with its retry classification: only strings cross the broadcast,
// and a Rebinder-style caller must still be able to tell a stale reference
// ('S': re-resolve) and transient shedding ('T': retry) from a hard failure
// ('!') after the error is rebuilt on the other threads. Without the class
// byte a resize would strand clients: a binding that raced the epoch switch
// would fail with an unclassifiable flattened error instead of rebinding.
func flattenErr(err error) []byte {
	class := byte('!')
	switch {
	case naming.Stale(err):
		class = 'S'
	case orb.IsTransient(err):
		class = 'T'
	}
	return append([]byte{class}, err.Error()...)
}

// unflattenErr rebuilds a flattenErr payload as an error of the same retry
// class.
func unflattenErr(context string, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("core: %s: lost error", context)
	}
	msg := fmt.Sprintf("%s: %s", context, payload[1:])
	switch payload[0] {
	case 'S':
		return &orb.SystemException{RepoID: orb.RepoComm, Message: msg}
	case 'T':
		return orb.Transient(msg)
	}
	return fmt.Errorf("core: %s", msg)
}

// scalarEncoder is a convenience for building the non-distributed argument
// payload of an invocation.
func ScalarEncoder() *cdr.Encoder { return orb.NewArgEncoder() }

// ScalarDecoder opens a reply's scalar results.
func ScalarDecoder(payload []byte) (*cdr.Decoder, error) { return orb.ArgDecoder(payload) }
