package core

import "repro/internal/zcodec"

// compressionWins is the Auto-policy decision function: given the
// connection's measured wire bandwidth (bytes/sec, 0 when unmeasured),
// report whether compressing the next transfer leg is expected to net
// out faster than sending raw. It is a package variable so the
// deterministic flip test can substitute a pure threshold function;
// production always uses zcodec.CompressionWins, which combines the
// process-wide encode-throughput/ratio ledger with the per-connection
// EWMA.
var compressionWins = zcodec.CompressionWins
