package core

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Future represents the result of a non-blocking invocation, in the style
// of the ABC++ futures the paper adopts for its diffusion_nb methods: "this
// allows the client to use remote resources concurrently with its own, and
// provides the programmer with an elegant way of representing results which
// are not yet available."
type Future struct {
	mu      sync.Mutex
	done    chan struct{}
	scalars []byte
	err     error

	// rec/rank record how long the caller blocked in Wait (the future-wait
	// span) when the binding traces. The invocation token is not known when
	// the future is handed out, so future-wait spans carry trace 0.
	rec  *obs.Recorder
	rank int32
}

func newFuture() *Future {
	return &Future{done: make(chan struct{})}
}

func (f *Future) complete(scalars []byte, err error) {
	f.mu.Lock()
	f.scalars = scalars
	f.err = err
	f.mu.Unlock()
	close(f.done)
}

// Done returns a channel closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Ready reports whether the result is available without blocking.
func (f *Future) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the invocation completes and returns the reply's scalar
// payload. Distributed out/inout arguments have been updated in place by
// the time Wait returns.
func (f *Future) Wait() ([]byte, error) {
	if f.rec != nil && !f.Ready() {
		start := time.Now()
		<-f.done
		f.rec.Record(obs.Span{Phase: obs.PhaseFutureWait, Rank: f.rank,
			Start: start.UnixNano(), Dur: int64(time.Since(start))})
	} else {
		<-f.done
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.scalars, f.err
}

// WaitTimeout is Wait with a deadline; ok reports whether the result
// arrived in time.
func (f *Future) WaitTimeout(d time.Duration) (scalars []byte, err error, ok bool) {
	select {
	case <-f.done:
		s, e := f.Wait()
		return s, e, true
	case <-time.After(d):
		return nil, nil, false
	}
}

// InvokeNB performs a collective non-blocking invocation: it returns
// immediately with a Future per computing thread; the invocation proceeds
// on background goroutines over the binding's communicator. All threads
// must call InvokeNB collectively, and must not touch the distributed
// arguments until their futures resolve. Each thread's future resolves when
// that thread's share of the invocation (including result delivery and the
// post-invocation synchronization) is complete.
//
// Up to the binding's PipelineDepth invocations may be outstanding at
// once, each on its own lane (duplicated communicator); issuing more
// fails with ErrBusy rather than interleaving collective traffic. All
// threads must issue overlapping invocations in the same order, so they
// agree on the lane assignments.
func (b *Binding) InvokeNB(op string, scalars []byte, args []DistArg) *Future {
	return b.InvokeNBMethod(b.method, op, scalars, args)
}

// InvokeNBMethod is InvokeNB with an explicit transfer method.
func (b *Binding) InvokeNBMethod(method Method, op string, scalars []byte, args []DistArg) *Future {
	f := newFuture()
	f.rec, f.rank = b.rec, int32(b.comm.Rank())
	ln, err := b.acquireLane()
	if err != nil {
		f.complete(nil, err)
		return f
	}
	go func() {
		res, err := b.invoke(ln, method, op, nil, scalars, args, nil)
		// Release before completing, so a caller that has waited on the
		// future can immediately issue the next invocation on this lane.
		b.releaseLane(ln)
		f.complete(res, err)
	}()
	return f
}
