package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dseq"
	"repro/internal/obs"
	"repro/internal/rts"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// pendingCheck records what a window slot's outstanding invocation must
// deliver when its future resolves.
type pendingCheck struct {
	op      string
	wantVal float64 // value every element must hold after completion
	wantSum float64 // expected "sum" reply (op == "sum" only)
}

// TestPipelinedWindowStress keeps a window of overlapping invocations
// outstanding per binding — chunk-streamed both ways, staggered by injected
// write delays — and checks every future resolves with its own invocation's
// results (no cross-token mixups) and no goroutines leak. Run under -race via
// the race Makefile target, this is the data-race check for the lane engine.
func TestPipelinedWindowStress(t *testing.T) {
	testutil.CheckGoroutines(t, "stress", func(t *testing.T) {
		const (
			depth = 4
			reps  = 24
			n     = 768 // 6 chunks of 128: every invocation streams both legs
		)
		tc := startCluster(t, 2, false, nil)
		plan := transport.NewFaultPlan(7)
		plan.Delay = 200 * time.Microsecond
		plan.DelayEvery = 3
		opts := BindOptions{
			Method: Centralized, Timeout: testTimeout,
			PipelineDepth:    depth,
			StreamChunkElems: 128,
			Transport:        &transport.Options{Wrap: plan.Wrap},
		}
		tc.runClientOpts(t, 2, opts, func(c *rts.Comm, b *Binding) error {
			if got := b.PipelineDepth(); got != depth {
				return fmt.Errorf("PipelineDepth() = %d, want %d", got, depth)
			}
			// Each window slot owns its sequence and a distinct element value,
			// so a reply delivered to the wrong token is detectable.
			seqs := make([]*dseq.Seq[float64], depth)
			vals := make([]float64, depth)
			for s := range seqs {
				seq, err := dseq.New(c, dseq.Float64, n, nil)
				if err != nil {
					return err
				}
				vals[s] = float64(s + 1)
				v := vals[s]
				seq.FillFunc(func(int) float64 { return v })
				seqs[s] = seq
			}
			window := make([]*Future, depth)
			pending := make([]pendingCheck, depth)

			settle := func(s int) error {
				f := window[s]
				if f == nil {
					return nil
				}
				window[s] = nil
				reply, err := f.Wait()
				if err != nil {
					return fmt.Errorf("slot %d (%s): %w", s, pending[s].op, err)
				}
				d, err := ScalarDecoder(reply)
				if err != nil {
					return err
				}
				switch pending[s].op {
				case "scale":
					got, err := d.ReadLong()
					if err != nil {
						return err
					}
					if got != n {
						return fmt.Errorf("slot %d: scale reply %d, want %d", s, got, n)
					}
				case "sum":
					got, err := d.ReadDouble()
					if err != nil {
						return err
					}
					if got != pending[s].wantSum {
						return fmt.Errorf("slot %d: sum reply %v, want %v", s, got, pending[s].wantSum)
					}
				}
				for i, v := range seqs[s].LocalData() {
					if v != pending[s].wantVal {
						return fmt.Errorf("slot %d: element %d holds %v, want %v", s, i, v, pending[s].wantVal)
					}
				}
				return nil
			}

			for rep := 0; rep < reps; rep++ {
				s := rep % depth
				if err := settle(s); err != nil {
					return err
				}
				if rep%2 == 0 {
					// scale doubles the slot's value in place (InOut, streamed
					// both directions).
					pending[s] = pendingCheck{op: "scale", wantVal: vals[s] * 2}
					vals[s] *= 2
					window[s] = b.InvokeNB("scale", scaleScalars(2), []DistArg{InOutSeq(seqs[s])})
				} else {
					// sum reads the slot's value (In, streamed request leg) —
					// powers of two times small integers, so sums are exact.
					pending[s] = pendingCheck{op: "sum", wantVal: vals[s], wantSum: vals[s] * n}
					window[s] = b.InvokeNB("sum", ScalarEncoder().Bytes(), []DistArg{InSeq(seqs[s])})
				}
			}
			for s := range window {
				if err := settle(s); err != nil {
					return err
				}
			}
			// The engine is still healthy after the storm: a blocking call works.
			reply, err := b.Invoke("sum", ScalarEncoder().Bytes(), []DistArg{InSeq(seqs[0])})
			if err != nil {
				return err
			}
			d, err := ScalarDecoder(reply)
			if err != nil {
				return err
			}
			got, err := d.ReadDouble()
			if err != nil {
				return err
			}
			if want := vals[0] * n; got != want {
				return fmt.Errorf("final sum %v, want %v", got, want)
			}
			return nil
		})
	})
}

// TestPipelineErrBusy checks the lane discipline at its edge: an invocation
// issued while its round-robin lane is still carrying one fails with ErrBusy
// on every rank, the cursor still advances (so all ranks stay in lockstep),
// and the binding keeps working afterwards.
func TestPipelineErrBusy(t *testing.T) {
	tc := startCluster(t, 1, false, nil)
	opts := BindOptions{Method: Centralized, Timeout: testTimeout, PipelineDepth: 2}
	tc.runClientOpts(t, 2, opts, func(c *rts.Comm, b *Binding) error {
		seq, err := dseq.New(c, dseq.Float64, 64, nil)
		if err != nil {
			return err
		}
		seq.FillFunc(func(int) float64 { return 1 })
		// Make the next round-robin lane busy by taking its token directly —
		// deterministic on every rank, unlike racing a real invocation.
		b.laneMu.Lock()
		ln := &b.lanes[b.laneSeq%uint64(len(b.lanes))]
		b.laneMu.Unlock()
		<-ln.free
		f := b.InvokeNB("sum", ScalarEncoder().Bytes(), []DistArg{InSeq(seq)})
		if _, err := f.Wait(); !errors.Is(err, ErrBusy) {
			return fmt.Errorf("overflowing the window: %v, want ErrBusy", err)
		}
		ln.free <- struct{}{}
		// The failed issue advanced the cursor on every rank equally, so the
		// binding is still coherent: the next collective call succeeds.
		reply, err := b.Invoke("sum", ScalarEncoder().Bytes(), []DistArg{InSeq(seq)})
		if err != nil {
			return fmt.Errorf("after ErrBusy: %w", err)
		}
		d, err := ScalarDecoder(reply)
		if err != nil {
			return err
		}
		if got, err := d.ReadDouble(); err != nil || got != 64 {
			return fmt.Errorf("after ErrBusy: sum %v err %v, want 64", got, err)
		}
		return nil
	})
}

// TestPipelineDepthClamps pins the lane-count policy: zero and one both mean
// the classic engine, and absurd depths clamp to maxPipelineDepth instead of
// allocating thousands of communicator contexts.
func TestPipelineDepthClamps(t *testing.T) {
	tc := startCluster(t, 1, false, nil)
	for _, tt := range []struct{ ask, want int }{{0, 1}, {1, 1}, {3, 3}, {10 * maxPipelineDepth, maxPipelineDepth}} {
		opts := BindOptions{Method: Centralized, Timeout: testTimeout, PipelineDepth: tt.ask}
		tc.runClientOpts(t, 1, opts, func(c *rts.Comm, b *Binding) error {
			if got := b.PipelineDepth(); got != tt.want {
				return fmt.Errorf("PipelineDepth(ask %d) = %d, want %d", tt.ask, got, tt.want)
			}
			return nil
		})
	}
}

// TestStreamedChunkAllocs is the allocation guard for the chunked transfer
// path: the marginal cost of each extra chunk in a streamed invocation's
// steady state must stay within a small fixed budget (pooled frames, recycled
// chunk buffers — not a fresh payload per chunk). Measured end to end, so it
// bounds both the send and receive sides of both legs.
func TestStreamedChunkAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short mode")
	}
	const (
		chunk      = 256
		smallElems = 8 * chunk  // 8 chunks per leg
		bigElems   = 40 * chunk // 40 chunks per leg
		extraChunk = 2 * (40 - 8)
	)
	tc := startCluster(t, 1, false, nil)
	opts := BindOptions{Method: Centralized, Timeout: testTimeout, StreamChunkElems: chunk}
	tc.runClientOpts(t, 1, opts, func(c *rts.Comm, b *Binding) error {
		measure := func(elems int) (float64, error) {
			seq, err := dseq.New(c, dseq.Float64, elems, nil)
			if err != nil {
				return 0, err
			}
			seq.FillFunc(func(int) float64 { return 1 })
			// Warm pools and connections outside the measured runs.
			if _, err := b.Invoke("scale", scaleScalars(1), []DistArg{InOutSeq(seq)}); err != nil {
				return 0, err
			}
			var invokeErr error
			allocs := testing.AllocsPerRun(6, func() {
				if _, err := b.Invoke("scale", scaleScalars(1), []DistArg{InOutSeq(seq)}); err != nil {
					invokeErr = err
				}
			})
			return allocs, invokeErr
		}
		small, err := measure(smallElems)
		if err != nil {
			return err
		}
		big, err := measure(bigElems)
		if err != nil {
			return err
		}
		perChunk := (big - small) / extraChunk
		t.Logf("streamed invocation allocs: %.0f at %d chunks/leg, %.0f at %d chunks/leg (%.1f per extra chunk)",
			small, smallElems/chunk, big, bigElems/chunk, perChunk)
		// The whole-process budget per marginal chunk (client marshal, server
		// scatter, reply gather, client store, channel plumbing). Without the
		// pooled frame and recycled payload paths this is hundreds.
		const budget = 40
		if perChunk > budget {
			return fmt.Errorf("streamed transfer allocates %.1f per extra chunk, budget %d", perChunk, budget)
		}
		return nil
	})
}

// TestSpansAllocFreeWhenTracingOff pins the per-chunk observability cost when
// no recorder is attached: the span helpers sit on the chunk hot loops, so
// with tracing off they must record nothing and allocate nothing.
func TestSpansAllocFreeWhenTracingOff(t *testing.T) {
	b := &Binding{}
	o := &Object{}
	allocs := testing.AllocsPerRun(200, func() {
		b.span(7, obs.PhaseChunkSend, time.Time{})
		b.spanDur(7, obs.PhaseChunkRecv, time.Time{}, time.Millisecond)
		o.span(7, obs.PhaseChunkRecv, time.Time{})
	})
	if allocs != 0 {
		t.Fatalf("span helpers with tracing off allocate %.1f/run, want 0", allocs)
	}
}
