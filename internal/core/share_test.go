package core

import (
	"fmt"
	"testing"

	"repro/internal/dseq"
	"repro/internal/rts"
	"repro/internal/testutil"
)

// TestShareConnectionPoolsOneClient is the core-level ShareConnection proof:
// four SPMD ranks binding with identical options ride exactly one pooled
// client engine, a matching re-bind on the same rank reuses it, invocations
// still work through the shared engine, and the pool drains to empty once
// every sharing binding has closed.
func TestShareConnectionPoolsOneClient(t *testing.T) {
	testutil.CheckGoroutines(t, "share", func(t *testing.T) {
		tc := startCluster(t, 2, true, nil)
		opts := BindOptions{Method: Centralized, Timeout: testTimeout, ShareConnection: true}
		w := rts.NewWorld(4, rts.Options{RecvTimeout: testTimeout})
		defer w.Close()
		err := w.Run(func(c *rts.Comm) error {
			b, err := SPMDBind(c, "example", tc.ns.Addr(), opts)
			if err != nil {
				return err
			}
			defer b.Close()
			// SPMDBindRef acquires the pooled client before its collective
			// describe round, so once any rank is bound, all four acquisitions
			// have landed — and they must have coalesced into one entry.
			if n := sharedClients.Size(); n != 1 {
				return fmt.Errorf("rank %d: pool holds %d clients with 4 sharing ranks bound, want 1", c.Rank(), n)
			}
			// A second identically-configured binding reuses the same engine.
			b2, err := SPMDBind(c, "example", tc.ns.Addr(), opts)
			if err != nil {
				return err
			}
			defer b2.Close()
			if b.client != b2.client {
				return fmt.Errorf("rank %d: identically-configured sharing bindings got distinct clients", c.Rank())
			}
			if n := sharedClients.Size(); n != 1 {
				return fmt.Errorf("rank %d: pool grew to %d on a matching re-bind, want 1", c.Rank(), n)
			}
			// The shared engine still carries a real collective invocation.
			const n = 128
			arr, err := dseq.New(c, dseq.Float64, n, nil)
			if err != nil {
				return err
			}
			arr.FillFunc(func(g int) float64 { return float64(g) })
			if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err != nil {
				return fmt.Errorf("invoke through shared client: %w", err)
			}
			full, err := arr.Collect()
			if err != nil {
				return err
			}
			for i, v := range full {
				if v != float64(i)*2 {
					return fmt.Errorf("full[%d] = %v through shared client, want %v", i, v, float64(i)*2)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n := sharedClients.Size(); n != 0 {
			t.Errorf("pool holds %d clients after every sharing binding closed, want 0", n)
		}
	})
}

// TestShareConnectionKeysAndRelease pins the pool's keying and refcount
// semantics: differently-configured sharing bindings get distinct engines,
// private bindings never touch the pool, Close is idempotent per binding,
// and the last release empties the pool.
func TestShareConnectionKeysAndRelease(t *testing.T) {
	testutil.CheckGoroutines(t, "keys", func(t *testing.T) {
		tc := startCluster(t, 1, false, nil)
		w := rts.NewWorld(1, rts.Options{RecvTimeout: testTimeout})
		defer w.Close()
		err := w.Run(func(c *rts.Comm) error {
			a, err := SPMDBind(c, "example", tc.ns.Addr(),
				BindOptions{Timeout: testTimeout, ShareConnection: true})
			if err != nil {
				return err
			}
			defer a.Close()
			b, err := SPMDBind(c, "example", tc.ns.Addr(),
				BindOptions{Timeout: testTimeout / 2, ShareConnection: true})
			if err != nil {
				return err
			}
			defer b.Close()
			if a.client == b.client {
				return fmt.Errorf("bindings with different timeouts shared one client engine")
			}
			if n := sharedClients.Size(); n != 2 {
				return fmt.Errorf("pool holds %d clients for 2 distinct configurations, want 2", n)
			}
			// A private binding stays out of the pool entirely.
			priv, err := SPMDBind(c, "example", tc.ns.Addr(), BindOptions{Timeout: testTimeout})
			if err != nil {
				return err
			}
			if n := sharedClients.Size(); n != 2 {
				priv.Close()
				return fmt.Errorf("private binding changed the pool size to %d", n)
			}
			priv.Close()
			// Close releases exactly one reference and is idempotent: the
			// second Close must not underflow b's entry or touch a's.
			b.Close()
			b.Close()
			if n := sharedClients.Size(); n != 1 {
				return fmt.Errorf("pool holds %d after releasing one of two configurations, want 1", n)
			}
			a.Close()
			if n := sharedClients.Size(); n != 0 {
				return fmt.Errorf("pool holds %d after the last release, want 0", n)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
