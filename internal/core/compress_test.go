package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dseq"
	"repro/internal/obs"
	"repro/internal/rts"
	"repro/internal/zcodec"
)

// invokeScaleSmooth runs one InOut "scale" invocation over a smooth ramp of
// doubles (the workload wire compression is built for) and verifies both the
// scalar reply and every local element. Both legs stream when n exceeds the
// binding's chunk size.
func invokeScaleSmooth(c *rts.Comm, b *Binding, n int, factor int32) error {
	arr, err := dseq.New(c, dseq.Float64, n, nil)
	if err != nil {
		return err
	}
	arr.FillFunc(func(g int) float64 { return float64(g) })
	reply, err := b.Invoke("scale", scaleScalars(factor), []DistArg{InOutSeq(arr)})
	if err != nil {
		return err
	}
	d, err := ScalarDecoder(reply)
	if err != nil {
		return err
	}
	if got, err := d.ReadLong(); err != nil || got != int32(n) {
		return fmt.Errorf("scale reply %d err %v, want %d", got, err, n)
	}
	full, err := arr.Collect()
	if err != nil {
		return err
	}
	for i, v := range full {
		if want := float64(i) * float64(factor); v != want {
			return fmt.Errorf("element %d holds %v, want %v", i, v, want)
		}
	}
	return nil
}

// TestCompressedStreamedRoundTrip is the end-to-end check for negotiated wire
// compression: server exported with compression on, client binding offering
// it, a streamed InOut invocation over smooth doubles. The data must round
// trip exactly, the zcodec ledgers must show the wire carried fewer bytes
// than the raw payload (≥2× on this workload), and the chunk-send spans must
// carry the negotiated codec mask.
func TestCompressedStreamedRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ c, s int }{{1, 1}, {2, 2}} {
		cfg := cfg
		t.Run(fmt.Sprintf("c%d-s%d", cfg.c, cfg.s), func(t *testing.T) {
			zcodec.ResetStats()
			tc := startCluster(t, cfg.s, false, nil, func(o *ExportOptions) {
				o.Compression = zcodec.MaskAll
				o.CompressionPolicy = zcodec.PolicyAlways
			})
			rec := obs.NewRecorder(256)
			opts := BindOptions{
				Method: Centralized, Timeout: testTimeout,
				StreamChunkElems:  128,
				Compression:       zcodec.MaskAll,
				CompressionPolicy: zcodec.PolicyAlways,
				Trace:             rec,
			}
			tc.runClientOpts(t, cfg.c, opts, func(c *rts.Comm, b *Binding) error {
				return invokeScaleSmooth(c, b, 1024, 3)
			})
			rawOut, wireOut, rawIn, wireIn := zcodec.Stats()
			if rawOut == 0 || wireOut == 0 {
				t.Fatalf("no compressed encodes recorded (raw %d wire %d): negotiation never engaged", rawOut, wireOut)
			}
			if ratio := float64(rawOut) / float64(wireOut); ratio < 2 {
				t.Errorf("encode ratio %.2f× (raw %d wire %d), want ≥2× on smooth doubles", ratio, rawOut, wireOut)
			}
			if rawIn == 0 || wireIn == 0 {
				t.Errorf("no compressed decodes recorded (raw %d wire %d)", rawIn, wireIn)
			}
			var sends, coded int
			for _, sp := range rec.Spans() {
				if sp.Phase != obs.PhaseChunkSend {
					continue
				}
				sends++
				if sp.Codec != 0 {
					coded++
					if sp.Codec&int32(zcodec.MaskAll) == 0 {
						t.Errorf("chunk-send span carries codec mask %#x outside %#x", sp.Codec, zcodec.MaskAll)
					}
				}
			}
			if sends == 0 || coded == 0 {
				t.Errorf("chunk-send spans: %d total, %d with a codec mask; want both nonzero", sends, coded)
			}
		})
	}
}

// TestCompressedChunkAllocs bounds the marginal allocation cost of each
// extra chunk when compression is negotiated — which is also the pipelined
// encode-ahead path: with a codec engaged both legs route their frames
// through the bounded send worker, so this budget pins that path's
// per-chunk cost too (the worker itself is one goroutine and one channel
// per invocation, amortized away by the per-chunk delta). The compressed
// path buys its byte savings with one encode buffer per chunk (plus codec
// state), so its budget sits above the raw path's — but it must stay
// fixed, not grow with traffic. The raw path's own budget is pinned by
// TestStreamedChunkAllocs and is unaffected by compression existing in
// the binary (no codec negotiated means no worker and the exact serial
// send loop).
func TestCompressedChunkAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short mode")
	}
	const (
		chunk      = 256
		smallElems = 8 * chunk
		bigElems   = 40 * chunk
		extraChunk = 2 * (40 - 8)
	)
	tc := startCluster(t, 1, false, nil, func(o *ExportOptions) {
		o.Compression = zcodec.MaskAll
		o.CompressionPolicy = zcodec.PolicyAlways
	})
	opts := BindOptions{
		Method: Centralized, Timeout: testTimeout,
		StreamChunkElems:  chunk,
		Compression:       zcodec.MaskAll,
		CompressionPolicy: zcodec.PolicyAlways,
	}
	tc.runClientOpts(t, 1, opts, func(c *rts.Comm, b *Binding) error {
		measure := func(elems int) (float64, error) {
			seq, err := dseq.New(c, dseq.Float64, elems, nil)
			if err != nil {
				return 0, err
			}
			seq.FillFunc(func(g int) float64 { return float64(g) })
			if _, err := b.Invoke("scale", scaleScalars(1), []DistArg{InOutSeq(seq)}); err != nil {
				return 0, err
			}
			var invokeErr error
			allocs := testing.AllocsPerRun(6, func() {
				if _, err := b.Invoke("scale", scaleScalars(1), []DistArg{InOutSeq(seq)}); err != nil {
					invokeErr = err
				}
			})
			return allocs, invokeErr
		}
		small, err := measure(smallElems)
		if err != nil {
			return err
		}
		big, err := measure(bigElems)
		if err != nil {
			return err
		}
		// The transfer really ran compressed — otherwise this guards nothing.
		if rawOut, wireOut, _, _ := zcodec.Stats(); rawOut == 0 || wireOut >= rawOut {
			return fmt.Errorf("compression not engaged during measurement (raw %d wire %d)", rawOut, wireOut)
		}
		perChunk := (big - small) / extraChunk
		t.Logf("compressed invocation allocs: %.0f at %d chunks/leg, %.0f at %d chunks/leg (%.1f per extra chunk)",
			small, smallElems/chunk, big, bigElems/chunk, perChunk)
		const budget = 48
		if perChunk > budget {
			return fmt.Errorf("compressed transfer allocates %.1f per extra chunk, budget %d", perChunk, budget)
		}
		return nil
	})
}

// TestCompressionInterop is the mixed-version matrix. The raw pairings put
// a peer that never negotiates compression (Compression zero — the
// pre-compression wire behavior) on either side of one that offers it:
// every such pairing must complete on the raw path with the zcodec
// encoders never engaged. The sub-block pairings put a peer that only
// speaks single-block envelopes (MaskAll — a pre-sub-block build) on
// either side of one offering the sub-block capability bit: negotiation
// must strip the bit, the transfer must still compress, and the data must
// round trip exactly. Chunks are sized past the sub-block threshold so a
// faulty negotiation would actually emit the new envelope at an old peer.
func TestCompressionInterop(t *testing.T) {
	cases := []struct {
		name           string
		server, client uint8
		chunk, elems   int
		compressed     bool
	}{
		{"client-offers-server-declines", 0, zcodec.MaskAll, 128, 1024, false},
		{"server-accepts-client-silent", zcodec.MaskAll, 0, 128, 1024, false},
		{"subblock-client-old-server", zcodec.MaskAll, zcodec.Supported, 8192, 16384, true},
		{"subblock-server-old-client", zcodec.Supported, zcodec.MaskAll, 8192, 16384, true},
		{"subblock-both", zcodec.Supported, zcodec.Supported, 8192, 16384, true},
	}
	for _, tt := range cases {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			zcodec.ResetStats()
			tc := startCluster(t, 2, false, nil, func(o *ExportOptions) {
				o.Compression = tt.server
				o.CompressionPolicy = zcodec.PolicyAlways
			})
			opts := BindOptions{
				Method: Centralized, Timeout: testTimeout,
				StreamChunkElems:  tt.chunk,
				Compression:       tt.client,
				CompressionPolicy: zcodec.PolicyAlways,
			}
			tc.runClientOpts(t, 2, opts, func(c *rts.Comm, b *Binding) error {
				return invokeScaleSmooth(c, b, tt.elems, 2)
			})
			rawOut, wireOut, _, _ := zcodec.Stats()
			if tt.compressed {
				if rawOut == 0 || wireOut == 0 || wireOut >= rawOut {
					t.Errorf("%s: compression not engaged (raw %d wire %d)", tt.name, rawOut, wireOut)
				}
			} else if rawOut != 0 || wireOut != 0 {
				t.Errorf("%s: zcodec encoders engaged (raw %d wire %d), want raw path", tt.name, rawOut, wireOut)
			}
		})
	}
}

// TestCompressionAutoFlip drives the Auto policy end to end through the
// compressionWins seam: a deterministic stand-in estimator approves the
// first invocation's two leg decisions (client request mask, server reply
// mask) and vetoes everything after. The first invocation must compress,
// the second must run fully raw, and both sides must count the skip in
// core.compress.skipped_total.
func TestCompressionAutoFlip(t *testing.T) {
	zcodec.ResetStats()
	var calls atomic.Int64
	orig := compressionWins
	compressionWins = func(float64) bool { return calls.Add(1) <= 2 }
	defer func() { compressionWins = orig }()

	srvReg := obs.NewRegistry()
	cliReg := obs.NewRegistry()
	tc := startCluster(t, 1, false, nil, func(o *ExportOptions) {
		o.Compression = zcodec.MaskAll
		o.Server.Metrics = srvReg
	})
	opts := BindOptions{
		Method: Centralized, Timeout: testTimeout,
		StreamChunkElems: 128,
		Compression:      zcodec.MaskAll,
		Metrics:          cliReg,
	}
	tc.runClientOpts(t, 1, opts, func(c *rts.Comm, b *Binding) error {
		if err := invokeScaleSmooth(c, b, 1024, 3); err != nil {
			return err
		}
		rawOut, wireOut, _, _ := zcodec.Stats()
		if rawOut == 0 || wireOut == 0 {
			return fmt.Errorf("approved invocation did not compress (raw %d wire %d)", rawOut, wireOut)
		}
		zcodec.ResetStats()
		if err := invokeScaleSmooth(c, b, 1024, 3); err != nil {
			return err
		}
		if rawOut, wireOut, _, _ := zcodec.Stats(); rawOut != 0 || wireOut != 0 {
			return fmt.Errorf("vetoed invocation still compressed (raw %d wire %d)", rawOut, wireOut)
		}
		return nil
	})
	if got := cliReg.Counter("core.compress.skipped_total").Value(); got != 1 {
		t.Errorf("client skipped counter = %d, want 1", got)
	}
	if got := srvReg.Counter("core.compress.skipped_total").Value(); got != 1 {
		t.Errorf("server skipped counter = %d, want 1", got)
	}
}
