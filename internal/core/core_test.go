package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/dseq"
	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/rts"
)

const testTimeout = 20 * time.Second

// testObjectOps builds the operation table used across the tests: a
// diffusion-style mix of scalar and distributed arguments.
func testObjectOps(argSpec dist.Spec) []Operation {
	scaleDesc := OpDesc{Name: "scale", Args: []ArgDesc{{Name: "arr", Dir: InOut, Elem: "double", Spec: argSpec}}}
	sumDesc := OpDesc{Name: "sum", Args: []ArgDesc{{Name: "arr", Dir: In, Elem: "double", Spec: argSpec}}}
	iotaDesc := OpDesc{Name: "iota", Args: []ArgDesc{{Name: "arr", Dir: Out, Elem: "double", Spec: argSpec}}}
	axpyDesc := OpDesc{Name: "axpy", Args: []ArgDesc{
		{Name: "x", Dir: In, Elem: "double", Spec: argSpec},
		{Name: "y", Dir: InOut, Elem: "double", Spec: argSpec},
	}}
	return []Operation{
		{
			Desc:    scaleDesc,
			NewArgs: SeqArgsFloat64(scaleDesc.Args),
			Handler: func(call *ServerCall) error {
				factor, err := call.In.ReadLong()
				if err != nil {
					return orb.Marshal(err)
				}
				arr := ArgSeq[float64](call, 0)
				local := arr.LocalData()
				for i := range local {
					local[i] *= float64(factor)
				}
				call.Out.WriteLong(int32(arr.Len()))
				return nil
			},
		},
		{
			Desc:    sumDesc,
			NewArgs: SeqArgsFloat64(sumDesc.Args),
			Handler: func(call *ServerCall) error {
				arr := ArgSeq[float64](call, 0)
				local := 0.0
				for _, v := range arr.LocalData() {
					local += v
				}
				total, err := call.Comm.Allreduce(rts.Float64sToBytes([]float64{local}), rts.SumFloat64)
				if err != nil {
					return err
				}
				vals, err := rts.BytesToFloat64s(total)
				if err != nil {
					return err
				}
				call.Out.WriteDouble(vals[0])
				return nil
			},
		},
		{
			Desc:    iotaDesc,
			NewArgs: SeqArgsFloat64(iotaDesc.Args),
			Handler: func(call *ServerCall) error {
				n, err := call.In.ReadLong()
				if err != nil {
					return orb.Marshal(err)
				}
				arr := ArgSeq[float64](call, 0)
				if err := arr.ResizeAlloc(int(n)); err != nil {
					return err
				}
				arr.FillFunc(func(g int) float64 { return float64(g) + 0.5 })
				return nil
			},
		},
		{
			Desc:    axpyDesc,
			NewArgs: SeqArgsFloat64(axpyDesc.Args),
			Handler: func(call *ServerCall) error {
				a, err := call.In.ReadDouble()
				if err != nil {
					return orb.Marshal(err)
				}
				x := ArgSeq[float64](call, 0)
				y := ArgSeq[float64](call, 1)
				xv, yv := x.LocalData(), y.LocalData()
				if len(xv) != len(yv) {
					return fmt.Errorf("mismatched local lengths %d/%d", len(xv), len(yv))
				}
				for i := range yv {
					yv[i] += a * xv[i]
				}
				return nil
			},
		},
		{
			Desc: OpDesc{Name: "boom"},
			NewArgs: func(*rts.Comm, []int) ([]dseq.Transferable, error) {
				return nil, nil
			},
			Handler: func(call *ServerCall) error {
				return &orb.UserException{RepoID: "IDL:test/Kaboom:1.0", Message: "requested failure"}
			},
		},
	}
}

// testCluster wires a name server, an SPMD server world running Serve, and
// leaves the client side to the test body.
type testCluster struct {
	ns        *naming.Server
	serverW   *rts.World
	objMu     sync.Mutex
	objects   []*Object
	serverErr chan error
}

func startCluster(t *testing.T, sRanks int, multiport bool, argSpec dist.Spec, tweak ...func(*ExportOptions)) *testCluster {
	t.Helper()
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{
		ns:        ns,
		serverW:   rts.NewWorld(sRanks, rts.Options{RecvTimeout: testTimeout}),
		objects:   make([]*Object, sRanks),
		serverErr: make(chan error, 1),
	}
	ready := make(chan struct{})
	var once sync.Once
	go func() {
		tc.serverErr <- tc.serverW.Run(func(c *rts.Comm) error {
			opts := ExportOptions{
				TypeID:     "IDL:diff_object:1.0",
				Multiport:  multiport,
				Name:       "example",
				NameServer: ns.Addr(),
			}
			for _, f := range tweak {
				f(&opts)
			}
			obj, err := Export(c, opts, testObjectOps(argSpec))
			if err != nil {
				once.Do(func() { close(ready) })
				return err
			}
			tc.objMu.Lock()
			tc.objects[c.Rank()] = obj
			tc.objMu.Unlock()
			if c.Rank() == 0 {
				once.Do(func() { close(ready) })
			}
			return obj.Serve()
		})
	}()
	select {
	case <-ready:
	case <-time.After(testTimeout):
		t.Fatal("server never became ready")
	}
	t.Cleanup(func() {
		tc.objMu.Lock()
		objs := append([]*Object(nil), tc.objects...)
		tc.objMu.Unlock()
		for _, o := range objs {
			if o != nil {
				o.Close()
			}
		}
		select {
		case err := <-tc.serverErr:
			if err != nil && !errors.Is(err, ErrStopped) {
				t.Errorf("server world: %v", err)
			}
		case <-time.After(testTimeout):
			t.Error("server world did not shut down")
		}
		tc.serverW.Close()
		ns.Close()
	})
	return tc
}

// runClient executes fn on a fresh client world bound to the cluster's
// object.
func (tc *testCluster) runClient(t *testing.T, cRanks int, method Method, fn func(c *rts.Comm, b *Binding) error) {
	t.Helper()
	w := rts.NewWorld(cRanks, rts.Options{RecvTimeout: testTimeout})
	defer w.Close()
	err := w.Run(func(c *rts.Comm) error {
		b, err := SPMDBind(c, "example", tc.ns.Addr(), BindOptions{Method: method, Timeout: testTimeout})
		if err != nil {
			return err
		}
		defer b.Close()
		return fn(c, b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func scaleScalars(factor int32) []byte {
	e := ScalarEncoder()
	e.WriteLong(factor)
	return e.Bytes()
}

func TestInvokeInOutBothMethods(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		method := method
		for _, cfg := range []struct{ c, s int }{{1, 1}, {2, 1}, {1, 3}, {2, 4}, {4, 2}, {3, 5}} {
			cfg := cfg
			t.Run(fmt.Sprintf("%v/c%d-s%d", method, cfg.c, cfg.s), func(t *testing.T) {
				t.Parallel()
				tc := startCluster(t, cfg.s, true, nil)
				tc.runClient(t, cfg.c, method, func(c *rts.Comm, b *Binding) error {
					const n = 1000
					arr, err := dseq.New(c, dseq.Float64, n, nil)
					if err != nil {
						return err
					}
					arr.FillFunc(func(g int) float64 { return float64(g) })
					reply, err := b.Invoke("scale", scaleScalars(3), []DistArg{InOutSeq(arr)})
					if err != nil {
						return err
					}
					d, err := ScalarDecoder(reply)
					if err != nil {
						return err
					}
					ln, err := d.ReadLong()
					if err != nil || ln != n {
						return fmt.Errorf("reply length %d, %v", ln, err)
					}
					full, err := arr.Collect()
					if err != nil {
						return err
					}
					for i, v := range full {
						if v != float64(i)*3 {
							return fmt.Errorf("full[%d] = %v, want %v", i, v, float64(i)*3)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestInvokeInOnly(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			tc := startCluster(t, 3, true, nil)
			tc.runClient(t, 2, method, func(c *rts.Comm, b *Binding) error {
				const n = 777
				arr, err := dseq.New(c, dseq.Float64, n, nil)
				if err != nil {
					return err
				}
				arr.FillFunc(func(g int) float64 { return 1 })
				reply, err := b.Invoke("sum", ScalarEncoder().Bytes(), []DistArg{InSeq(arr)})
				if err != nil {
					return err
				}
				d, err := ScalarDecoder(reply)
				if err != nil {
					return err
				}
				total, err := d.ReadDouble()
				if err != nil || total != n {
					return fmt.Errorf("sum = %v, %v", total, err)
				}
				return nil
			})
		})
	}
}

func TestInvokeOutArg(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			tc := startCluster(t, 4, true, nil)
			tc.runClient(t, 3, method, func(c *rts.Comm, b *Binding) error {
				arr, err := dseq.New(c, dseq.Float64, 0, nil)
				if err != nil {
					return err
				}
				e := ScalarEncoder()
				e.WriteLong(321)
				if _, err := b.Invoke("iota", e.Bytes(), []DistArg{OutSeq(arr)}); err != nil {
					return err
				}
				if arr.Len() != 321 {
					return fmt.Errorf("out length %d", arr.Len())
				}
				full, err := arr.Collect()
				if err != nil {
					return err
				}
				for i, v := range full {
					if v != float64(i)+0.5 {
						return fmt.Errorf("full[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestInvokeTwoDistArgs(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			tc := startCluster(t, 2, true, nil)
			tc.runClient(t, 4, method, func(c *rts.Comm, b *Binding) error {
				const n = 640
				x, err := dseq.New(c, dseq.Float64, n, nil)
				if err != nil {
					return err
				}
				y, err := dseq.New(c, dseq.Float64, n, nil)
				if err != nil {
					return err
				}
				x.FillFunc(func(g int) float64 { return float64(g) })
				y.FillFunc(func(g int) float64 { return 100 })
				e := ScalarEncoder()
				e.WriteDouble(2)
				if _, err := b.Invoke("axpy", e.Bytes(), []DistArg{InSeq(x), InOutSeq(y)}); err != nil {
					return err
				}
				full, err := y.Collect()
				if err != nil {
					return err
				}
				for i, v := range full {
					if v != 100+2*float64(i) {
						return fmt.Errorf("y[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestServerPresetProportions(t *testing.T) {
	// The paper's Proportions(2,4,2,4): the server predefines an uneven
	// distribution before registration; transfers must respect it.
	spec := dist.Proportions{P: []int{2, 4, 2, 4}}
	for _, method := range []Method{Centralized, Multiport} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			tc := startCluster(t, 4, true, spec)
			tc.runClient(t, 3, method, func(c *rts.Comm, b *Binding) error {
				const n = 1200
				arr, err := dseq.New(c, dseq.Float64, n, nil)
				if err != nil {
					return err
				}
				arr.FillFunc(func(g int) float64 { return float64(g) })
				if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err != nil {
					return err
				}
				full, err := arr.Collect()
				if err != nil {
					return err
				}
				for i, v := range full {
					if v != 2*float64(i) {
						return fmt.Errorf("full[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestClientUnevenDistribution(t *testing.T) {
	// §3.3: "cases when the sequence is split unevenly are of comparable
	// efficiency" — here we check they are correct.
	for _, method := range []Method{Centralized, Multiport} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			tc := startCluster(t, 5, true, nil)
			tc.runClient(t, 3, method, func(c *rts.Comm, b *Binding) error {
				const n = 999
				arr, err := dseq.New(c, dseq.Float64, n, dist.Proportions{P: []int{1, 5, 2}})
				if err != nil {
					return err
				}
				arr.FillFunc(func(g int) float64 { return float64(g) })
				if _, err := b.Invoke("scale", scaleScalars(-1), []DistArg{InOutSeq(arr)}); err != nil {
					return err
				}
				full, err := arr.Collect()
				if err != nil {
					return err
				}
				for i, v := range full {
					if v != -float64(i) {
						return fmt.Errorf("full[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestUserExceptionPropagatesToAllThreads(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	for _, method := range []Method{Centralized, Multiport} {
		tc.runClient(t, 3, method, func(c *rts.Comm, b *Binding) error {
			_, err := b.Invoke("boom", ScalarEncoder().Bytes(), nil)
			var ue *orb.UserException
			if !errors.As(err, &ue) || ue.RepoID != "IDL:test/Kaboom:1.0" {
				return fmt.Errorf("rank %d got %v", c.Rank(), err)
			}
			return nil
		})
	}
}

func TestUnknownOperationRejectedLocally(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	tc.runClient(t, 2, Centralized, func(c *rts.Comm, b *Binding) error {
		_, err := b.Invoke("no_such_op", nil, nil)
		if !errors.Is(err, ErrArgMismatch) {
			return fmt.Errorf("got %v", err)
		}
		return nil
	})
}

func TestArgValidation(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	tc.runClient(t, 2, Centralized, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 10, nil)
		if err != nil {
			return err
		}
		// Wrong direction.
		if _, err := b.Invoke("scale", scaleScalars(1), []DistArg{InSeq(arr)}); !errors.Is(err, ErrArgMismatch) {
			return fmt.Errorf("wrong dir: %v", err)
		}
		// Wrong arity.
		if _, err := b.Invoke("scale", scaleScalars(1), nil); !errors.Is(err, ErrArgMismatch) {
			return fmt.Errorf("wrong arity: %v", err)
		}
		// Wrong element type.
		iarr, err := dseq.New(c, dseq.Int32, 10, nil)
		if err != nil {
			return err
		}
		if _, err := b.Invoke("scale", scaleScalars(1), []DistArg{InOutSeq(iarr)}); !errors.Is(err, ErrArgMismatch) {
			return fmt.Errorf("wrong elem: %v", err)
		}
		return nil
	})
}

func TestMultiportRefusedWithoutEndpoints(t *testing.T) {
	tc := startCluster(t, 2, false, nil) // centralized-only export
	tc.runClient(t, 2, Centralized, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 10, nil)
		if err != nil {
			return err
		}
		_, err = b.InvokeMethod(Multiport, "scale", scaleScalars(1), []DistArg{InOutSeq(arr)}, nil)
		if !errors.Is(err, ErrNoMultiport) {
			return fmt.Errorf("got %v", err)
		}
		// Centralized still works.
		_, err = b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)})
		return err
	})
}

func TestFutureNonBlockingInvocation(t *testing.T) {
	for _, method := range []Method{Centralized, Multiport} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			tc := startCluster(t, 2, true, nil)
			tc.runClient(t, 2, method, func(c *rts.Comm, b *Binding) error {
				const n = 500
				arr, err := dseq.New(c, dseq.Float64, n, nil)
				if err != nil {
					return err
				}
				arr.FillFunc(func(g int) float64 { return 1 })
				fut := b.InvokeNB("scale", scaleScalars(5), []DistArg{InOutSeq(arr)})
				// The client can compute concurrently here (paper §2.1).
				if _, err := fut.Wait(); err != nil {
					return err
				}
				if !fut.Ready() {
					return errors.New("future not ready after Wait")
				}
				full, err := arr.Collect()
				if err != nil {
					return err
				}
				for i, v := range full {
					if v != 5 {
						return fmt.Errorf("full[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestSecondInvocationWhileBusy(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	tc.runClient(t, 2, Centralized, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 100, nil)
		if err != nil {
			return err
		}
		fut := b.InvokeNB("scale", scaleScalars(1), []DistArg{InOutSeq(arr)})
		// A concurrent second invocation on the same binding must fail
		// cleanly rather than corrupt collective state. It may also succeed
		// if the first already finished; both are acceptable, a hang is not.
		fut2 := b.InvokeNB("boom", ScalarEncoder().Bytes(), nil)
		if _, err := fut.Wait(); err != nil {
			return err
		}
		_, err2 := fut2.Wait()
		if err2 != nil && !errors.Is(err2, ErrBusy) {
			var ue *orb.UserException
			if !errors.As(err2, &ue) {
				return fmt.Errorf("second invocation: %v", err2)
			}
		}
		return nil
	})
}

func TestSequentialInvocations(t *testing.T) {
	tc := startCluster(t, 3, true, nil)
	tc.runClient(t, 2, Multiport, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 256, nil)
		if err != nil {
			return err
		}
		arr.FillFunc(func(g int) float64 { return 1 })
		for i := 0; i < 5; i++ {
			if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err != nil {
				return fmt.Errorf("iteration %d: %w", i, err)
			}
		}
		v, err := arr.At(100)
		if err != nil {
			return err
		}
		if v != 32 {
			return fmt.Errorf("after 5 doublings: %v", v)
		}
		return nil
	})
}

func TestNonCollectiveBind(t *testing.T) {
	// The paper's plain _bind: each client thread binds independently and
	// uses the non-distributed mapping.
	tc := startCluster(t, 3, true, nil)
	clientW := rts.NewWorld(4, rts.Options{RecvTimeout: testTimeout})
	defer clientW.Close()
	err := clientW.Run(func(c *rts.Comm) error {
		b, err := Bind("example", tc.ns.Addr(), BindOptions{Timeout: testTimeout})
		if err != nil {
			return err
		}
		defer b.Close()
		// Each thread owns a full (non-distributed) array.
		arr, err := dseq.New(b.Comm(), dseq.Float64, 100, nil)
		if err != nil {
			return err
		}
		arr.FillFunc(func(g int) float64 { return float64(c.Rank()) })
		if _, err := b.Invoke("scale", scaleScalars(10), []DistArg{InOutSeq(arr)}); err != nil {
			return err
		}
		for _, v := range arr.LocalData() {
			if v != float64(c.Rank())*10 {
				return fmt.Errorf("thread %d saw %v", c.Rank(), v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSPMDClients(t *testing.T) {
	// Two independent SPMD clients hammer one SPMD object concurrently;
	// header centralization must keep their requests untangled (§3.3's
	// contention argument).
	tc := startCluster(t, 3, true, nil)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for k := range errs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			method := Centralized
			if k%2 == 1 {
				method = Multiport
			}
			w := rts.NewWorld(2, rts.Options{RecvTimeout: testTimeout})
			defer w.Close()
			errs[k] = w.Run(func(c *rts.Comm) error {
				b, err := SPMDBind(c, "example", tc.ns.Addr(), BindOptions{Method: method, Timeout: testTimeout})
				if err != nil {
					return err
				}
				defer b.Close()
				arr, err := dseq.New(c, dseq.Float64, 400, nil)
				if err != nil {
					return err
				}
				arr.FillFunc(func(g int) float64 { return float64(k + 1) })
				for i := 0; i < 3; i++ {
					if _, err := b.Invoke("scale", scaleScalars(2), []DistArg{InOutSeq(arr)}); err != nil {
						return err
					}
				}
				for _, v := range arr.LocalData() {
					if v != float64(k+1)*8 {
						return fmt.Errorf("client %d saw %v", k, v)
					}
				}
				return nil
			})
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", k, err)
		}
	}
}

func TestStopServingViaHandler(t *testing.T) {
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	serverW := rts.NewWorld(2, rts.Options{RecvTimeout: testTimeout})
	defer serverW.Close()
	stopDesc := OpDesc{Name: "shutdown"}
	serverDone := make(chan error, 1)
	ready := make(chan struct{})
	var once sync.Once
	go func() {
		serverDone <- serverW.Run(func(c *rts.Comm) error {
			obj, err := Export(c, ExportOptions{
				TypeID: "IDL:test/stoppable:1.0", Name: "stoppable", NameServer: ns.Addr(),
			}, []Operation{{
				Desc:    stopDesc,
				NewArgs: func(*rts.Comm, []int) ([]dseq.Transferable, error) { return nil, nil },
				Handler: func(call *ServerCall) error {
					call.Out.WriteString("bye")
					return ErrStopServing
				},
			}})
			if err != nil {
				once.Do(func() { close(ready) })
				return err
			}
			if c.Rank() == 0 {
				once.Do(func() { close(ready) })
			}
			defer obj.Close()
			return obj.Serve()
		})
	}()
	<-ready

	b, err := Bind("stoppable", ns.Addr(), BindOptions{Timeout: testTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	reply, err := b.Invoke("shutdown", ScalarEncoder().Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := ScalarDecoder(reply)
	if s, _ := d.ReadString(); s != "bye" {
		t.Fatalf("reply %q", s)
	}
	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("server world: %v", err)
		}
	case <-time.After(testTimeout):
		t.Fatal("Serve did not stop after ErrStopServing")
	}
}

func TestPollNonBlocking(t *testing.T) {
	ns, err := naming.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	serverW := rts.NewWorld(2, rts.Options{RecvTimeout: testTimeout})
	defer serverW.Close()

	polled := make(chan struct{})
	invoked := make(chan struct{})
	scaleDesc := OpDesc{Name: "noop"}
	serverDone := make(chan error, 1)
	refCh := make(chan orb.IOR, 1)
	go func() {
		serverDone <- serverW.Run(func(c *rts.Comm) error {
			obj, err := Export(c, ExportOptions{TypeID: "IDL:test/pollable:1.0", Multiport: false},
				[]Operation{{
					Desc:    scaleDesc,
					NewArgs: func(*rts.Comm, []int) ([]dseq.Transferable, error) { return nil, nil },
					Handler: func(call *ServerCall) error { return nil },
				}})
			if err != nil {
				return err
			}
			defer obj.Close()
			if c.Rank() == 0 {
				refCh <- obj.Ref()
			}
			// Empty polls first: the "interrupt computation" pattern.
			for i := 0; i < 3; i++ {
				cont, err := obj.Poll(false)
				if err != nil || !cont {
					return fmt.Errorf("empty poll %d: cont=%v err=%v", i, cont, err)
				}
			}
			if c.Rank() == 0 {
				close(polled)
			}
			<-invoked
			// One blocking poll serves the queued request.
			cont, err := obj.Poll(true)
			if err != nil || !cont {
				return fmt.Errorf("serving poll: cont=%v err=%v", cont, err)
			}
			return nil
		})
	}()
	ref := <-refCh
	<-polled

	done := make(chan error, 1)
	go func() {
		b, err := BindRef(ref, BindOptions{Timeout: testTimeout})
		if err != nil {
			done <- err
			return
		}
		defer b.Close()
		_, err = b.Invoke("noop", ScalarEncoder().Bytes(), nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request hit the queue
	close(invoked)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
}

func TestTimingPopulated(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	tc.runClient(t, 2, Multiport, func(c *rts.Comm, b *Binding) error {
		arr, err := dseq.New(c, dseq.Float64, 4096, nil)
		if err != nil {
			return err
		}
		var tm Timing
		if _, err := b.InvokeMethod(Multiport, "scale", scaleScalars(2), []DistArg{InOutSeq(arr)}, &tm); err != nil {
			return err
		}
		if tm.Total <= 0 {
			return fmt.Errorf("timing not populated: %+v", tm)
		}
		var tc2 Timing
		if _, err := b.InvokeMethod(Centralized, "scale", scaleScalars(2), []DistArg{InOutSeq(arr)}, &tc2); err != nil {
			return err
		}
		if tc2.Total <= 0 || tc2.SendRecv < 0 {
			return fmt.Errorf("centralized timing: %+v", tc2)
		}
		return nil
	})
}
