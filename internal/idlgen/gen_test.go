package idlgen

import (
	"os"
	"strings"
	"testing"

	"repro/internal/idl"
)

func generate(t *testing.T, src string) string {
	t.Helper()
	spec, err := idl.Parse("test.idl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := idl.MustAnalyze(spec); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	code, err := Generate(spec, Options{Package: "testpkg", Source: "test.idl"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return string(code)
}

func TestGoldenDiffusionExample(t *testing.T) {
	// The committed generated file for the paper's diffusion example must
	// match what the generator produces today — the file's compilation is
	// covered by the ordinary build.
	src, err := os.ReadFile("../../examples/diffusion/diff.idl")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := idl.Parse("diff.idl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := idl.MustAnalyze(spec); err != nil {
		t.Fatal(err)
	}
	code, err := Generate(spec, Options{Package: "diffgen", Source: "diff.idl"})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../examples/diffusion/diffgen/diff_generated.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(code) != string(golden) {
		t.Error("generated code differs from the committed examples/diffusion/diffgen/diff_generated.go; regenerate with cmd/pardisc")
	}
}

func TestPaperInterfaceSurface(t *testing.T) {
	code := generate(t, `
typedef dsequence<double, 1024> diff_array;
interface diff_object {
    void diffusion(in long timestep, inout diff_array darray);
};
`)
	for _, want := range []string{
		"type DiffArray = dseq.Seq[float64]",
		"func NewDiffArray(comm *rts.Comm, length int)",
		"length %d exceeds bound 1024",
		"type DiffObjectClient struct",
		"func SPMDBindDiffObject(comm *rts.Comm, objName, nameServer string",
		"func BindDiffObject(objName, nameServer string",
		"func (c DiffObjectClient) Diffusion(timestep int32, darray *dseq.Seq[float64]) (err error)",
		"func (c DiffObjectClient) DiffusionNB(timestep int32, darray *dseq.Seq[float64]) *core.Future",
		"type DiffObjectImpl interface",
		"Diffusion(call *core.ServerCall, timestep int32, darray *dseq.Seq[float64]) (err error)",
		"func ExportDiffObject(comm *rts.Comm, impl DiffObjectImpl, opts core.ExportOptions)",
		`const RepoDiffObject = "IDL:diff_object:1.0"`,
		`{Name: "darray", Dir: core.InOut, Elem: "double", Spec: nil}`,
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code lacks %q", want)
		}
	}
}

func TestScalarDirections(t *testing.T) {
	code := generate(t, `
interface calc {
    double mix(in long a, inout double b, out string c);
};
`)
	for _, want := range []string{
		// inout as pointer parameter, out and return as results.
		"func (c CalcClient) Mix(a int32, b *float64) (c_ string, result float64, err error)",
		"Mix(call *core.ServerCall, a int32, b *float64) (c_ string, result float64, err error)",
		// wire order: inout, out, then return.
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code lacks %q\n----\n%s", want, code)
		}
	}
}

func TestStructEnumConstException(t *testing.T) {
	code := generate(t, `
struct Sample { long id; double value; string tag; };
enum Mode { FAST, SAFE };
const long LIMIT = 64;
exception Overflow { long limit; };
interface sampler {
    Sample get(in Mode m) raises (Overflow);
    void put(in sequence<Sample> batch);
};
`)
	for _, want := range []string{
		"type Sample struct",
		"func EncodeSample(e *cdr.Encoder, v Sample)",
		"func DecodeSample(d *cdr.Decoder) (Sample, error)",
		"type Mode uint32",
		"ModeFAST Mode = iota",
		"const LIMIT = 64",
		"type Overflow struct",
		`const RepoOverflow = "IDL:Overflow:1.0"`,
		"func (e *Overflow) Error() string",
		"toUserException",
		"decodeOverflow",
		"func (c SamplerClient) Get(m Mode) (result Sample, err error)",
		"func (c SamplerClient) Put(batch []Sample) (err error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code lacks %q", want)
		}
	}
}

func TestModulesFlattenWithPrefix(t *testing.T) {
	code := generate(t, `
module pardis {
    module demo {
        interface thing { void go(); };
    };
};
`)
	for _, want := range []string{
		"type PardisDemoThingClient struct",
		`const RepoPardisDemoThing = "IDL:pardis/demo/thing:1.0"`,
		// "go" is a Go keyword as a local but fine as exported method name.
		"func (c PardisDemoThingClient) Go() (err error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code lacks %q", want)
		}
	}
}

func TestInheritedOperationsIncluded(t *testing.T) {
	code := generate(t, `
interface base { void ping(); };
interface derived : base { void pong(); };
`)
	if !strings.Contains(code, "func (c DerivedClient) Ping() (err error)") {
		t.Error("inherited operation missing from derived stub")
	}
	if !strings.Contains(code, "Ping(call *core.ServerCall) (err error)") {
		t.Error("inherited operation missing from derived impl interface")
	}
}

func TestDistributedReturn(t *testing.T) {
	code := generate(t, `
interface gen {
    dsequence<double> make(in long n);
};
`)
	for _, want := range []string{
		"func (c GenClient) Make(n int32) (result *dseq.Seq[float64], err error)",
		`{Name: "_return", Dir: core.Out, Elem: "double", Spec: nil}`,
		"Make(call *core.ServerCall, n int32, result *dseq.Seq[float64]) (err error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code lacks %q", want)
		}
	}
}

func TestDistributionClausesCarryOver(t *testing.T) {
	code := generate(t, `
typedef dsequence<double, proportions(2,4,2,4)> props;
typedef dsequence<long, cyclic(8)> wheel;
interface o {
    void f(in props p, in wheel w);
};
`)
	for _, want := range []string{
		"dist.Proportions{P: []int{2, 4, 2, 4}}",
		"dist.Cyclic{BlockSize: 8}",
		`Elem: "long"`,
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code lacks %q", want)
		}
	}
}

func TestUnsupportedConstructsFail(t *testing.T) {
	cases := []string{
		// dsequence of struct needs a custom codec.
		"struct S { long x; }; typedef dsequence<S> t; interface i { void f(in t a); };",
		// interface-typed parameter (object references as arguments are
		// outside the subset).
		"interface a { void f(); }; interface b { void g(in a obj); };",
	}
	for _, src := range cases {
		spec, err := idl.Parse("bad.idl", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if err := idl.MustAnalyze(spec); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if _, err := Generate(spec, Options{Package: "x"}); err == nil {
			t.Errorf("generator accepted %q", src)
		}
	}
}

func TestGoNameConversion(t *testing.T) {
	cases := map[string]string{
		"diff_object": "DiffObject",
		"x":           "X",
		"already":     "Already",
		"two_words":   "TwoWords",
		"__odd__":     "Odd",
	}
	for in, want := range cases {
		if got := goName(in); got != want {
			t.Errorf("goName(%q) = %q, want %q", in, got, want)
		}
	}
	if goLocal("type") != "type_" || goLocal("range") != "range_" {
		t.Error("keyword locals not escaped")
	}
	if goLocal("value") != "value" {
		t.Errorf("goLocal(value) = %q", goLocal("value"))
	}
}

func TestGeneratedCodeIsDeterministic(t *testing.T) {
	src := `
interface a { void f(in long x); };
interface b { void g(in double y); };
`
	if generate(t, src) != generate(t, src) {
		t.Fatal("generation is not deterministic")
	}
}
