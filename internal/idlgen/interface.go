package idlgen

import (
	"fmt"
	"strings"

	"repro/internal/idl"
)

// opModel is the analyzed shape of one operation, shared by the client and
// server generators.
type opModel struct {
	op       *idl.Operation
	goName   string
	scalars  []scalarParam // non-distributed params, declaration order
	dists    []distParam   // distributed params, declaration order
	retScal  *scalarInfo   // non-void scalar return
	retDist  *distParam    // distributed return (appended as a trailing Out arg)
	raises   []*idl.Exception
	excNames []string // Go type names of raised exceptions
}

type scalarParam struct {
	name string
	dir  idl.ParamDir
	info scalarInfo
}

type distParam struct {
	name string
	dir  idl.ParamDir
	elem elemInfo
	spec string // dist.Spec expression
	ds   *idl.DSequence
}

func coreDir(d idl.ParamDir) string {
	switch d {
	case idl.DirIn:
		return "core.In"
	case idl.DirOut:
		return "core.Out"
	default:
		return "core.InOut"
	}
}

func (g *generator) buildOpModel(prefix string, iface *idl.Interface, op *idl.Operation) (*opModel, bool) {
	m := &opModel{op: op, goName: goName(op.Name)}
	for _, p := range op.Params {
		if ds := idl.ResolveDSequence(p.Type); ds != nil {
			elem, err := dseqElem(ds.Elem)
			if err != nil {
				g.fail(p.Pos, "%s.%s: %v", iface.Name, op.Name, err)
				return nil, false
			}
			m.dists = append(m.dists, distParam{name: goLocal(p.Name), dir: p.Dir, elem: elem, spec: distSpecExpr(ds), ds: ds})
			continue
		}
		sc, ok := g.scalarFor(prefix, p.Type, p.Pos)
		if !ok {
			g.fail(p.Pos, "%s.%s: unsupported parameter type %s", iface.Name, op.Name, p.Type.TypeName())
			return nil, false
		}
		m.scalars = append(m.scalars, scalarParam{name: goLocal(p.Name), dir: p.Dir, info: sc})
	}
	if op.Returns != nil {
		if ds := idl.ResolveDSequence(op.Returns); ds != nil {
			elem, err := dseqElem(ds.Elem)
			if err != nil {
				g.fail(op.Pos, "%s.%s: %v", iface.Name, op.Name, err)
				return nil, false
			}
			// "The distribution of return values is always assumed to be
			// blockwise" (§2.2).
			m.retDist = &distParam{name: "result", dir: idl.DirOut, elem: elem, spec: "nil", ds: ds}
		} else {
			sc, ok := g.scalarFor(prefix, op.Returns, op.Pos)
			if !ok {
				g.fail(op.Pos, "%s.%s: unsupported return type %s", iface.Name, op.Name, op.Returns.TypeName())
				return nil, false
			}
			m.retScal = &sc
		}
	}
	m.raises = op.RaisesRefs
	for _, e := range m.raises {
		m.excNames = append(m.excNames, prefix+goName(e.Name))
	}
	return m, true
}

// allOps flattens inherited operations (bases first, then own).
func allOps(iface *idl.Interface) []*idl.Operation {
	var out []*idl.Operation
	seen := map[string]bool{}
	var walk func(i *idl.Interface)
	walk = func(i *idl.Interface) {
		for _, b := range i.BaseRefs {
			walk(b)
		}
		for _, op := range i.Ops {
			if !seen[op.Name] {
				seen[op.Name] = true
				out = append(out, op)
			}
		}
	}
	walk(iface)
	return out
}

// distArgsExpr renders the []core.ArgDesc literal for an op.
func (m *opModel) argDescs() string {
	var parts []string
	for _, d := range m.dists {
		parts = append(parts, fmt.Sprintf("{Name: %q, Dir: %s, Elem: %q, Spec: %s}", d.name, coreDir(d.dir), d.elem.elemName, d.spec))
	}
	if m.retDist != nil {
		parts = append(parts, fmt.Sprintf("{Name: \"_return\", Dir: core.Out, Elem: %q, Spec: nil}", m.retDist.elem.elemName))
	}
	if len(parts) == 0 {
		return "nil"
	}
	return "[]core.ArgDesc{" + strings.Join(parts, ", ") + "}"
}

func (g *generator) interfaceDef(prefix string, iface *idl.Interface) {
	// Nested definitions first (types the operations may reference).
	g.walk(prefix+goName(iface.Name), iface.Defs)
	if g.err != nil {
		return
	}
	name := prefix + goName(iface.Name)
	ops := allOps(iface)
	models := make([]*opModel, 0, len(ops))
	for _, op := range ops {
		m, ok := g.buildOpModel(prefix, iface, op)
		if !ok {
			return
		}
		models = append(models, m)
	}

	g.p("")
	g.p("// Repo%s is the repository id of interface %s.", name, iface.Name)
	g.p("const Repo%s = %q", name, iface.RepoID)

	g.clientStub(name, iface, models)
	g.serverSkeleton(name, iface, models)
}

func (g *generator) clientStub(name string, iface *idl.Interface, models []*opModel) {
	g.p("")
	g.p("// %sClient is the client stub for interface %s (the PARDIS::Object", name, iface.Name)
	g.p("// proxy of paper §2.1).")
	g.p("type %sClient struct {", name)
	g.p("\tBinding *core.Binding")
	g.p("}")
	g.p("")
	g.p("// SPMDBind%s is the collective _spmd_bind: all computing threads of", name)
	g.p("// comm bind to the named object as one entity.")
	g.p("func SPMDBind%s(comm *rts.Comm, objName, nameServer string, opts ...core.BindOptions) (%sClient, error) {", name, name)
	g.p("\to := bindOpts(Repo%s, opts)", name)
	g.p("\tb, err := core.SPMDBind(comm, objName, nameServer, o)")
	g.p("\treturn %sClient{Binding: b}, err", name)
	g.p("}")
	g.p("")
	g.p("// Bind%s is the non-collective _bind: the calling thread gets its own", name)
	g.p("// independent binding using the non-distributed mapping.")
	g.p("func Bind%s(objName, nameServer string, opts ...core.BindOptions) (%sClient, error) {", name, name)
	g.p("\to := bindOpts(Repo%s, opts)", name)
	g.p("\tb, err := core.Bind(objName, nameServer, o)")
	g.p("\treturn %sClient{Binding: b}, err", name)
	g.p("}")
	g.p("")
	g.p("// SPMDBindRef%s binds to a reference obtained out of band.", name)
	g.p("func SPMDBindRef%s(comm *rts.Comm, ref orb.IOR, opts ...core.BindOptions) (%sClient, error) {", name, name)
	g.p("\to := bindOpts(Repo%s, opts)", name)
	g.p("\tb, err := core.SPMDBindRef(comm, ref, o)")
	g.p("\treturn %sClient{Binding: b}, err", name)
	g.p("}")

	for _, m := range models {
		g.clientMethod(name, m)
		g.clientMethodNB(name, m)
	}

	// Exception mapping helper.
	g.p("")
	g.p("func map%sError(err error) error {", name)
	g.p("\tif err == nil {")
	g.p("\t\treturn nil")
	g.p("\t}")
	excs := map[string]bool{}
	var lines []string
	for _, m := range models {
		for i, e := range m.raises {
			goExc := m.excNames[i]
			if !excs[goExc] {
				excs[goExc] = true
				lines = append(lines, fmt.Sprintf("\tcase Repo%s:\n\t\treturn decode%s(ue)", goExc, goExc), goExc)
				_ = e
			}
		}
	}
	if len(lines) > 0 {
		g.p("\tvar ue *orb.UserException")
		g.p("\tif !errors.As(err, &ue) {")
		g.p("\t\treturn err")
		g.p("\t}")
		g.p("\tswitch ue.RepoID {")
		for i := 0; i < len(lines); i += 2 {
			g.p("%s", lines[i])
		}
		g.p("\t}")
	}
	g.p("\treturn err")
	g.p("}")
}

// methodParams renders the Go parameter list of a client method.
func (m *opModel) methodParams() string {
	var parts []string
	for _, s := range m.scalars {
		switch s.dir {
		case idl.DirIn:
			parts = append(parts, fmt.Sprintf("%s %s", s.name, s.info.goType))
		case idl.DirInOut:
			parts = append(parts, fmt.Sprintf("%s *%s", s.name, s.info.goType))
		}
	}
	for _, d := range m.dists {
		parts = append(parts, fmt.Sprintf("%s *dseq.Seq[%s]", d.name, d.elem.goType))
	}
	return strings.Join(parts, ", ")
}

// methodResults renders the Go result list (out scalars, scalar return,
// dist return, error).
func (m *opModel) methodResults() string {
	var parts []string
	for _, s := range m.scalars {
		if s.dir == idl.DirOut {
			parts = append(parts, fmt.Sprintf("%s %s", s.name, s.info.goType))
		}
	}
	if m.retScal != nil {
		parts = append(parts, "result "+m.retScal.goType)
	}
	if m.retDist != nil {
		parts = append(parts, fmt.Sprintf("result *dseq.Seq[%s]", m.retDist.elem.goType))
	}
	parts = append(parts, "err error")
	return "(" + strings.Join(parts, ", ") + ")"
}

func (m *opModel) distArgsCall(extraRet string) string {
	var parts []string
	for _, d := range m.dists {
		switch d.dir {
		case idl.DirIn:
			parts = append(parts, fmt.Sprintf("core.InSeq(%s)", d.name))
		case idl.DirOut:
			parts = append(parts, fmt.Sprintf("core.OutSeq(%s)", d.name))
		default:
			parts = append(parts, fmt.Sprintf("core.InOutSeq(%s)", d.name))
		}
	}
	if m.retDist != nil {
		parts = append(parts, fmt.Sprintf("core.OutSeq(%s)", extraRet))
	}
	if len(parts) == 0 {
		return "nil"
	}
	return "[]core.DistArg{" + strings.Join(parts, ", ") + "}"
}

func (g *generator) clientMethod(name string, m *opModel) {
	g.p("")
	g.p("// %s invokes the IDL operation %s collectively.", m.goName, m.op.Name)
	g.p("func (c %sClient) %s(%s) %s {", name, m.goName, m.methodParams(), m.methodResults())
	g.p("\tenc := core.ScalarEncoder()")
	for _, s := range m.scalars {
		switch s.dir {
		case idl.DirIn:
			g.p("\t%s", s.info.write("enc", s.name))
		case idl.DirInOut:
			g.p("\t%s", s.info.write("enc", "*"+s.name))
		}
	}
	if m.retDist != nil {
		g.p("\tresult, err = dseq.New(c.Binding.Comm(), %s, 0, nil)", m.retDist.elem.codec)
		g.p("\tif err != nil {")
		g.p("\t\treturn")
		g.p("\t}")
	}
	g.p("\treply, ierr := c.Binding.Invoke(%q, enc.Bytes(), %s)", m.op.Name, m.distArgsCall("result"))
	g.p("\tif ierr != nil {")
	g.p("\t\terr = map%sError(ierr)", name)
	g.p("\t\treturn")
	g.p("\t}")
	if m.hasScalarResults() {
		g.p("\tdec, derr := core.ScalarDecoder(reply)")
		g.p("\tif derr != nil {")
		g.p("\t\terr = derr")
		g.p("\t\treturn")
		g.p("\t}")
		g.decodeScalarResults(m, "dec")
	} else {
		g.p("\t_ = reply")
	}
	g.p("\treturn")
	g.p("}")
}

func (m *opModel) hasScalarResults() bool {
	if m.retScal != nil {
		return true
	}
	for _, s := range m.scalars {
		if s.dir != idl.DirIn {
			return true
		}
	}
	return false
}

// decodeScalarResults emits reads for inout/out scalars and the scalar
// return, in wire order (inout+out in declaration order, then return).
func (g *generator) decodeScalarResults(m *opModel, dec string) {
	for _, s := range m.scalars {
		switch s.dir {
		case idl.DirInOut:
			g.p("\tif *%s, err = %s; err != nil {", s.name, s.info.read(dec))
			g.p("\t\treturn")
			g.p("\t}")
		case idl.DirOut:
			g.p("\tif %s, err = %s; err != nil {", s.name, s.info.read(dec))
			g.p("\t\treturn")
			g.p("\t}")
		}
	}
	if m.retScal != nil {
		g.p("\tif result, err = %s; err != nil {", m.retScal.read(dec))
		g.p("\t\treturn")
		g.p("\t}")
	}
}

func (g *generator) clientMethodNB(name string, m *opModel) {
	// Futures make no sense for a distributed return the caller has no
	// handle on before completion; generate NB with the result sequence as
	// an explicit argument in that case.
	g.p("")
	g.p("// %sNB is the non-blocking form of %s, returning a future (the", m.goName, m.goName)
	g.p("// paper's %s_nb). Scalar results, if any, can be decoded from the", m.op.Name)
	g.p("// future's payload with core.ScalarDecoder.")
	params := m.methodParams()
	if m.retDist != nil {
		if params != "" {
			params += ", "
		}
		params += fmt.Sprintf("result *dseq.Seq[%s]", m.retDist.elem.goType)
	}
	g.p("func (c %sClient) %sNB(%s) *core.Future {", name, m.goName, params)
	g.p("\tenc := core.ScalarEncoder()")
	for _, s := range m.scalars {
		switch s.dir {
		case idl.DirIn:
			g.p("\t%s", s.info.write("enc", s.name))
		case idl.DirInOut:
			g.p("\t%s", s.info.write("enc", "*"+s.name))
		}
	}
	g.p("\treturn c.Binding.InvokeNB(%q, enc.Bytes(), %s)", m.op.Name, m.distArgsCall("result"))
	g.p("}")
}

func (g *generator) serverSkeleton(name string, iface *idl.Interface, models []*opModel) {
	g.p("")
	g.p("// %sImpl is the server-side implementation interface for %s; the", name, iface.Name)
	g.p("// skeleton invokes these methods collectively on every computing thread")
	g.p("// (the CORBA inheritance mapping of paper §2.1).")
	g.p("type %sImpl interface {", name)
	for _, m := range models {
		g.p("\t%s(%s) %s", m.goName, m.implParams(), m.implResults())
	}
	g.p("}")

	g.p("")
	g.p("// %sOperations builds the engine operation table for impl.", name)
	g.p("func %sOperations(impl %sImpl) []core.Operation {", name, name)
	g.p("\treturn []core.Operation{")
	for _, m := range models {
		g.serverOperation(name, m)
	}
	g.p("\t}")
	g.p("}")

	g.p("")
	g.p("// Export%s registers impl as an SPMD object on every computing thread", name)
	g.p("// of comm. The repository id defaults to Repo%s.", name)
	g.p("func Export%s(comm *rts.Comm, impl %sImpl, opts core.ExportOptions) (*core.Object, error) {", name, name)
	g.p("\tif opts.TypeID == \"\" {")
	g.p("\t\topts.TypeID = Repo%s", name)
	g.p("\t}")
	g.p("\treturn core.Export(comm, opts, %sOperations(impl))", name)
	g.p("}")
}

func (m *opModel) implParams() string {
	parts := []string{"call *core.ServerCall"}
	for _, s := range m.scalars {
		switch s.dir {
		case idl.DirIn:
			parts = append(parts, fmt.Sprintf("%s %s", s.name, s.info.goType))
		case idl.DirInOut:
			parts = append(parts, fmt.Sprintf("%s *%s", s.name, s.info.goType))
		}
	}
	for _, d := range m.dists {
		parts = append(parts, fmt.Sprintf("%s *dseq.Seq[%s]", d.name, d.elem.goType))
	}
	if m.retDist != nil {
		parts = append(parts, fmt.Sprintf("result *dseq.Seq[%s]", m.retDist.elem.goType))
	}
	return strings.Join(parts, ", ")
}

func (m *opModel) implResults() string {
	var parts []string
	for _, s := range m.scalars {
		if s.dir == idl.DirOut {
			parts = append(parts, fmt.Sprintf("%s %s", s.name, s.info.goType))
		}
	}
	if m.retScal != nil {
		parts = append(parts, "result "+m.retScal.goType)
	}
	parts = append(parts, "err error")
	return "(" + strings.Join(parts, ", ") + ")"
}

func (g *generator) serverOperation(name string, m *opModel) {
	nDist := len(m.dists)
	if m.retDist != nil {
		nDist++
	}
	g.p("\t\t{")
	g.p("\t\t\tDesc: core.OpDesc{Name: %q, Args: %s},", m.op.Name, m.argDescs())
	g.p("\t\t\tNewArgs: func(comm *rts.Comm, lengths []int) ([]dseq.Transferable, error) {")
	g.p("\t\t\t\tout := make([]dseq.Transferable, 0, %d)", nDist)
	idx := 0
	emit := func(d distParam) {
		g.p("\t\t\t\t{")
		g.p("\t\t\t\t\tn := lengths[%d]", idx)
		g.p("\t\t\t\t\tif n < 0 {")
		g.p("\t\t\t\t\t\tn = 0")
		g.p("\t\t\t\t\t}")
		g.p("\t\t\t\t\ts, err := dseq.New(comm, %s, n, %s)", d.elem.codec, d.spec)
		g.p("\t\t\t\t\tif err != nil {")
		g.p("\t\t\t\t\t\treturn nil, err")
		g.p("\t\t\t\t\t}")
		g.p("\t\t\t\t\tout = append(out, s)")
		g.p("\t\t\t\t}")
		idx++
	}
	for _, d := range m.dists {
		emit(d)
	}
	if m.retDist != nil {
		emit(*m.retDist)
	}
	g.p("\t\t\t\treturn out, nil")
	g.p("\t\t\t},")
	g.p("\t\t\tHandler: func(call *core.ServerCall) error {")
	// Decode scalars.
	for _, s := range m.scalars {
		if s.dir == idl.DirOut {
			continue
		}
		g.p("\t\t\t\t%s, err := %s", s.name, s.info.read("call.In"))
		g.p("\t\t\t\tif err != nil {")
		g.p("\t\t\t\t\treturn orb.Marshal(err)")
		g.p("\t\t\t\t}")
	}
	// Typed sequence views.
	args := []string{"call"}
	for _, s := range m.scalars {
		switch s.dir {
		case idl.DirIn:
			args = append(args, s.name)
		case idl.DirInOut:
			args = append(args, "&"+s.name)
		}
	}
	for i, d := range m.dists {
		g.p("\t\t\t\t%sSeq := core.ArgSeq[%s](call, %d)", d.name, d.elem.goType, i)
		args = append(args, d.name+"Seq")
	}
	if m.retDist != nil {
		g.p("\t\t\t\tresultSeq := core.ArgSeq[%s](call, %d)", m.retDist.elem.goType, len(m.dists))
		args = append(args, "resultSeq")
	}
	// Call the implementation.
	var rets []string
	for _, s := range m.scalars {
		if s.dir == idl.DirOut {
			rets = append(rets, s.name)
		}
	}
	if m.retScal != nil {
		rets = append(rets, "result")
	}
	rets = append(rets, "herr")
	g.p("\t\t\t\t%s := impl.%s(%s)", strings.Join(rets, ", "), m.goName, strings.Join(args, ", "))
	g.p("\t\t\t\tif herr != nil {")
	for i, exc := range m.excNames {
		g.p("\t\t\t\t\tvar exc%d *%s", i, exc)
		g.p("\t\t\t\t\tif errors.As(herr, &exc%d) {", i)
		g.p("\t\t\t\t\t\treturn exc%d.toUserException()", i)
		g.p("\t\t\t\t\t}")
	}
	g.p("\t\t\t\t\treturn herr")
	g.p("\t\t\t\t}")
	// Encode scalar results in wire order.
	for _, s := range m.scalars {
		switch s.dir {
		case idl.DirInOut:
			g.p("\t\t\t\t%s", s.info.write("call.Out", s.name))
		case idl.DirOut:
			g.p("\t\t\t\t%s", s.info.write("call.Out", s.name))
		}
	}
	if m.retScal != nil {
		g.p("\t\t\t\t%s", m.retScal.write("call.Out", "result"))
	}
	g.p("\t\t\t\treturn nil")
	g.p("\t\t\t},")
	g.p("\t\t},")
}
