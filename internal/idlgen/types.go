package idlgen

import (
	"fmt"
	"strings"

	"repro/internal/idl"
)

// goName converts an IDL identifier to an exported Go identifier
// (diff_object → DiffObject).
func goName(ident string) string {
	parts := strings.Split(ident, "_")
	var sb strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		sb.WriteString(strings.ToUpper(p[:1]))
		sb.WriteString(p[1:])
	}
	if sb.Len() == 0 {
		return "X"
	}
	return sb.String()
}

// goLocal converts an IDL identifier to an unexported Go identifier,
// escaping Go keywords and every identifier the generated method bodies use
// themselves (receiver, error values, encoder/decoder handles, ...).
func goLocal(ident string) string {
	n := goName(ident)
	lower := strings.ToLower(n[:1]) + n[1:]
	switch lower {
	case "type", "func", "range", "map", "chan", "var", "const", "return",
		"go", "select", "interface", "defer", "package", "import",
		"c", "err", "result", "reply", "enc", "dec", "ierr", "derr",
		"call", "impl", "herr", "comm", "lengths", "out", "opts":
		return lower + "_"
	}
	return lower
}

// scalarInfo describes how a non-distributed IDL type maps to Go and CDR.
type scalarInfo struct {
	goType string
	write  func(enc, val string) string // statement writing val
	read   func(dec string) string      // expression reading (value, error)
}

func basicScalar(k idl.BasicKind) (scalarInfo, bool) {
	switch k {
	case idl.TShort:
		return scalarInfo{"int16", wr("WriteShort"), rd("ReadShort")}, true
	case idl.TUShort:
		return scalarInfo{"uint16", wr("WriteUShort"), rd("ReadUShort")}, true
	case idl.TLong:
		return scalarInfo{"int32", wr("WriteLong"), rd("ReadLong")}, true
	case idl.TULong:
		return scalarInfo{"uint32", wr("WriteULong"), rd("ReadULong")}, true
	case idl.TLongLong:
		return scalarInfo{"int64", wr("WriteLongLong"), rd("ReadLongLong")}, true
	case idl.TULongLong:
		return scalarInfo{"uint64", wr("WriteULongLong"), rd("ReadULongLong")}, true
	case idl.TFloat:
		return scalarInfo{"float32", wr("WriteFloat"), rd("ReadFloat")}, true
	case idl.TDouble:
		return scalarInfo{"float64", wr("WriteDouble"), rd("ReadDouble")}, true
	case idl.TBoolean:
		return scalarInfo{"bool", wr("WriteBool"), rd("ReadBool")}, true
	case idl.TChar:
		return scalarInfo{"byte", wr("WriteChar"), rd("ReadChar")}, true
	case idl.TOctet:
		return scalarInfo{"byte", wr("WriteOctet"), rd("ReadOctet")}, true
	case idl.TString:
		return scalarInfo{"string", wr("WriteString"), rd("ReadString")}, true
	default:
		return scalarInfo{}, false
	}
}

func wr(method string) func(enc, val string) string {
	return func(enc, val string) string { return fmt.Sprintf("%s.%s(%s)", enc, method, val) }
}

func rd(method string) func(dec string) string {
	return func(dec string) string { return fmt.Sprintf("%s.%s()", dec, method) }
}

// elemInfo describes how a dsequence element type maps to Go.
type elemInfo struct {
	goType   string // element Go type
	codec    string // dseq codec expression
	elemName string // wire element name (must match the codec's Name)
}

// dseqElem maps a (resolved, non-aliased) element type.
func dseqElem(t idl.Type) (elemInfo, error) {
	t = idl.ResolveAlias(t)
	b, ok := t.(idl.Basic)
	if !ok {
		return elemInfo{}, fmt.Errorf("idlgen: dsequence element %s is not a basic type (user-defined elements need a custom dseq.StructCodec)", t.TypeName())
	}
	switch b.Kind {
	case idl.TDouble:
		return elemInfo{"float64", "dseq.Float64", "double"}, nil
	case idl.TFloat:
		return elemInfo{"float32", "dseq.Float32", "float"}, nil
	case idl.TLong:
		return elemInfo{"int32", "dseq.Int32", "long"}, nil
	case idl.TLongLong:
		return elemInfo{"int64", "dseq.Int64", "long long"}, nil
	case idl.TOctet, idl.TChar:
		return elemInfo{"byte", "dseq.Octet", "octet"}, nil
	case idl.TBoolean:
		return elemInfo{"bool", "dseq.Bool", "boolean"}, nil
	case idl.TString:
		return elemInfo{"string", "dseq.String", "string"}, nil
	default:
		return elemInfo{}, fmt.Errorf("idlgen: dsequence element type %s is not supported", t.TypeName())
	}
}

// distSpecExpr renders a dsequence's declared distribution as a dist.Spec
// expression ("nil" for unspecified, which the engine defaults to block).
func distSpecExpr(ds *idl.DSequence) string {
	switch ds.Dist {
	case idl.DistBlock:
		return "dist.Block{}"
	case idl.DistCyclic:
		return fmt.Sprintf("dist.Cyclic{BlockSize: %d}", ds.CyclicBlock)
	case idl.DistProportions:
		parts := make([]string, len(ds.Proportions))
		for i, p := range ds.Proportions {
			parts[i] = fmt.Sprint(p)
		}
		return fmt.Sprintf("dist.Proportions{P: []int{%s}}", strings.Join(parts, ", "))
	default:
		return "nil"
	}
}
