// Package naming implements the PARDIS naming domain: the service that maps
// object names to object references, which _bind and _spmd_bind consult
// ("PARDIS provides a naming domain for objects. At the time of binding the
// client has to identify which particular object of a given type it wants to
// work with; specifying a host is optional", paper §2.1).
//
// The name server is itself a PARDIS object served through the ordinary ORB
// machinery (object key "NameService", type id TypeID), so the naming
// protocol exercises the same request path as application objects — the same
// bootstrap trick CORBA uses for its initial services.
//
// Names are qualified by type: a registration binds (name → IOR), and
// resolution can constrain the expected type id so a client binding a
// diff_object proxy cannot accidentally receive an unrelated object.
package naming

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// TypeID is the repository id of the naming service itself.
const TypeID = "IDL:PARDIS/NameService:1.0"

// Key is the well-known object key of the naming service.
var Key = []byte("NameService")

// Exception repository ids raised by the service.
const (
	RepoNotFound     = "IDL:PARDIS/NameService/NotFound:1.0"
	RepoAlreadyBound = "IDL:PARDIS/NameService/AlreadyBound:1.0"
	RepoTypeMismatch = "IDL:PARDIS/NameService/TypeMismatch:1.0"
)

// ErrNotFound is returned by Resolve when the name is unbound. It wraps the
// wire-level user exception for ergonomic errors.Is checks.
var ErrNotFound = errors.New("naming: name not bound")

// Registry is the in-memory name table; it is the servant state of a name
// server and usable directly for in-process naming.
type Registry struct {
	mu    sync.RWMutex
	table map[string]orb.IOR
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{table: make(map[string]orb.IOR)}
}

// Bind registers name → ref. Rebinding an existing name fails unless
// replace is set.
func (r *Registry) Bind(name string, ref orb.IOR, replace bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.table[name]; ok && !replace {
		return &orb.UserException{RepoID: RepoAlreadyBound, Message: name}
	}
	r.table[name] = ref
	return nil
}

// Resolve looks up name. If wantType is non-empty the bound reference must
// carry that type id.
func (r *Registry) Resolve(name, wantType string) (orb.IOR, error) {
	r.mu.RLock()
	ref, ok := r.table[name]
	r.mu.RUnlock()
	if !ok {
		return orb.IOR{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if wantType != "" && ref.TypeID != wantType {
		return orb.IOR{}, &orb.UserException{
			RepoID:  RepoTypeMismatch,
			Message: fmt.Sprintf("%q is %s, want %s", name, ref.TypeID, wantType),
		}
	}
	return ref, nil
}

// BindReplica registers ref as one replica of name: the first registration
// binds normally, and subsequent registrations merge the replica's endpoint
// set into the existing binding as alternate profiles (deduplicated by
// primary address). All replicas must share a type id and object key;
// mismatches raise TypeMismatch. Clients that resolve the name receive a
// multi-profile reference and fail over between replicas transparently.
func (r *Registry) BindReplica(name string, ref orb.IOR) error {
	if ref.Nil() {
		return &orb.UserException{RepoID: RepoTypeMismatch, Message: name + ": nil replica reference"}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.table[name]
	if !ok {
		r.table[name] = ref
		return nil
	}
	if cur.TypeID != ref.TypeID {
		return &orb.UserException{
			RepoID:  RepoTypeMismatch,
			Message: fmt.Sprintf("%q is %s, replica is %s", name, cur.TypeID, ref.TypeID),
		}
	}
	if string(cur.Key) != string(ref.Key) {
		return &orb.UserException{
			RepoID:  RepoTypeMismatch,
			Message: fmt.Sprintf("%q: replica object key %q does not match %q", name, ref.Key, cur.Key),
		}
	}
	for _, prof := range ref.Profiles() {
		cur.AddProfile(prof)
	}
	r.table[name] = cur
	return nil
}

// Unbind removes a name; it is not an error if the name is unbound.
func (r *Registry) Unbind(name string) {
	r.mu.Lock()
	delete(r.table, name)
	r.mu.Unlock()
}

// List returns the bound names in sorted order.
func (r *Registry) List() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.table))
	for n := range r.table {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of bindings.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.table)
}

// Dispatch implements orb.Servant, exposing the registry's operations over
// the wire: bind(name, ior, replace), resolve(name, type) → ior,
// unbind(name), list() → sequence<string>.
func (r *Registry) Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case "bind":
		name, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		iorStr, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		replace, err := in.ReadBool()
		if err != nil {
			return orb.Marshal(err)
		}
		ref, err := orb.ParseIOR(iorStr)
		if err != nil {
			return orb.Marshal(err)
		}
		return r.Bind(name, ref, replace)
	case "bind_replica":
		name, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		iorStr, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		ref, err := orb.ParseIOR(iorStr)
		if err != nil {
			return orb.Marshal(err)
		}
		return r.BindReplica(name, ref)
	case "resolve":
		name, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		wantType, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		ref, err := r.Resolve(name, wantType)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				return &orb.UserException{RepoID: RepoNotFound, Message: name}
			}
			return err
		}
		out.WriteString(ref.String())
		return nil
	case "unbind":
		name, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		r.Unbind(name)
		return nil
	case "list":
		names := r.List()
		out.WriteULong(uint32(len(names)))
		for _, n := range names {
			out.WriteString(n)
		}
		return nil
	default:
		return orb.BadOperation(op)
	}
}

// Server is a running name server: an ORB server hosting a Registry.
type Server struct {
	*Registry
	srv *orb.Server
}

// NewServer starts a name server on addr (port 0 for ephemeral).
func NewServer(addr string) (*Server, error) {
	srv, err := orb.NewServer(addr)
	if err != nil {
		return nil, err
	}
	reg := NewRegistry()
	srv.Register(Key, reg)
	return &Server{Registry: reg, srv: srv}, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Ref returns the service's own object reference.
func (s *Server) Ref() orb.IOR {
	return orb.IOR{TypeID: TypeID, Key: Key, Threads: 1, Endpoints: []orb.Endpoint{s.srv.Endpoint(0)}}
}

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Resolver is a client handle on a remote name server.
type Resolver struct {
	client *orb.Client
	ref    orb.IOR
}

// NewResolver builds a resolver that talks to the name server at addr using
// the given client engine.
func NewResolver(client *orb.Client, addr string) *Resolver {
	host, port := splitHostPort(addr)
	return &Resolver{
		client: client,
		ref: orb.IOR{TypeID: TypeID, Key: Key, Threads: 1,
			Endpoints: []orb.Endpoint{{Host: host, Port: port, Rank: 0}}},
	}
}

func splitHostPort(addr string) (string, int) {
	host := addr
	port := 0
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			host = addr[:i]
			fmt.Sscanf(addr[i+1:], "%d", &port)
			break
		}
	}
	return host, port
}

// Bind registers name → ref at the remote server.
func (r *Resolver) Bind(name string, ref orb.IOR, replace bool) error {
	args := orb.NewArgEncoder()
	args.WriteString(name)
	args.WriteString(ref.String())
	args.WriteBool(replace)
	_, err := r.client.Invoke(r.ref, "bind", args.Bytes(), false)
	return err
}

// BindReplica registers ref as one replica of name at the remote server:
// replicas registered under the same name are merged into a single
// multi-profile reference that resolves clients onto any live replica.
func (r *Resolver) BindReplica(name string, ref orb.IOR) error {
	args := orb.NewArgEncoder()
	args.WriteString(name)
	args.WriteString(ref.String())
	_, err := r.client.Invoke(r.ref, "bind_replica", args.Bytes(), false)
	return err
}

// Resolve looks name up at the remote server, optionally constraining the
// type id. A NotFound user exception is mapped back to ErrNotFound.
func (r *Resolver) Resolve(name, wantType string) (orb.IOR, error) {
	args := orb.NewArgEncoder()
	args.WriteString(name)
	args.WriteString(wantType)
	replyArgs, err := r.client.Invoke(r.ref, "resolve", args.Bytes(), false)
	if err != nil {
		var ue *orb.UserException
		if errors.As(err, &ue) && ue.RepoID == RepoNotFound {
			return orb.IOR{}, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return orb.IOR{}, err
	}
	d, err := orb.ArgDecoder(replyArgs)
	if err != nil {
		return orb.IOR{}, err
	}
	s, err := d.ReadString()
	if err != nil {
		return orb.IOR{}, err
	}
	return orb.ParseIOR(s)
}

// Unbind removes name at the remote server.
func (r *Resolver) Unbind(name string) error {
	args := orb.NewArgEncoder()
	args.WriteString(name)
	_, err := r.client.Invoke(r.ref, "unbind", args.Bytes(), false)
	return err
}

// List fetches the sorted bound names from the remote server.
func (r *Resolver) List() ([]string, error) {
	replyArgs, err := r.client.Invoke(r.ref, "list", orb.NewArgEncoder().Bytes(), false)
	if err != nil {
		return nil, err
	}
	d, err := orb.ArgDecoder(replyArgs)
	if err != nil {
		return nil, err
	}
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	names := make([]string, n)
	for i := range names {
		if names[i], err = d.ReadString(); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// Stale reports whether err looks like a stale object reference: the
// endpoint is gone, the connection died, or the object key is no longer
// served there. These are the failures where re-resolving the name through
// the naming domain can transparently recover (the server re-registered
// after moving hosts or restarting on a new port).
func Stale(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, orb.ErrConnBroken) || errors.Is(err, orb.ErrInvokeTimeout) {
		return true
	}
	var se *orb.SystemException
	if errors.As(err, &se) {
		switch se.RepoID {
		case orb.RepoComm, orb.RepoObjectNotExist:
			return true
		}
	}
	return false
}

// Rebinder is a self-healing handle on named objects: it resolves names
// lazily, caches the resulting references, and when an invocation fails in
// a way that suggests the cached IOR went stale (Stale), it re-resolves the
// name and retries the invocation once against the fresh reference. This is
// the client-side half of server mobility: a server that re-registers its
// name after restarting on a new endpoint is picked up without client
// involvement.
type Rebinder struct {
	res *Resolver

	mu    sync.Mutex
	cache map[string]orb.IOR
}

// NewRebinder builds a rebinder over the name server at addr using the
// given client engine (shared with the Resolver and the invocations).
func NewRebinder(client *orb.Client, addr string) *Rebinder {
	return &Rebinder{res: NewResolver(client, addr), cache: make(map[string]orb.IOR)}
}

// Resolve returns the cached reference for name, consulting the name
// server only on a cache miss.
func (rb *Rebinder) Resolve(name, wantType string) (orb.IOR, error) {
	rb.mu.Lock()
	ref, ok := rb.cache[name]
	rb.mu.Unlock()
	if ok {
		return ref, nil
	}
	return rb.refresh(name, wantType)
}

// refresh re-resolves name and replaces the cache entry.
func (rb *Rebinder) refresh(name, wantType string) (orb.IOR, error) {
	ref, err := rb.res.Resolve(name, wantType)
	if err != nil {
		return orb.IOR{}, err
	}
	rb.mu.Lock()
	rb.cache[name] = ref
	rb.mu.Unlock()
	return ref, nil
}

// Invalidate drops the cached reference for name, forcing the next Resolve
// to consult the name server.
func (rb *Rebinder) Invalidate(name string) {
	rb.mu.Lock()
	delete(rb.cache, name)
	rb.mu.Unlock()
}

// Invoke performs a request/reply invocation on the named object,
// re-resolving and retrying once when the cached reference is stale.
func (rb *Rebinder) Invoke(name, wantType, op string, args []byte) ([]byte, error) {
	ref, err := rb.Resolve(name, wantType)
	if err != nil {
		return nil, err
	}
	reply, err := rb.res.client.Invoke(ref, op, args, false)
	if !Stale(err) {
		return reply, err
	}
	// The reference may be stale; rebind through the naming domain and
	// retry once. A second failure is the caller's problem.
	rb.Invalidate(name)
	fresh, rerr := rb.refresh(name, wantType)
	if rerr != nil || fresh.String() == ref.String() {
		return nil, err
	}
	return rb.res.client.Invoke(fresh, op, args, false)
}
