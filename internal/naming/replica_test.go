package naming

import (
	"errors"
	"testing"

	"repro/internal/orb"
)

func replicaRef(host string, port int) orb.IOR {
	return orb.IOR{
		TypeID:    "IDL:test/rep:1.0",
		Key:       []byte("rep"),
		Threads:   1,
		Endpoints: []orb.Endpoint{{Host: host, Port: port, Rank: 0}},
	}
}

func TestRegistryBindReplicaMergesProfiles(t *testing.T) {
	r := NewRegistry()
	if err := r.BindReplica("svc", replicaRef("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.BindReplica("svc", replicaRef("b", 2)); err != nil {
		t.Fatal(err)
	}
	// Re-registration of a known replica is idempotent.
	if err := r.BindReplica("svc", replicaRef("b", 2)); err != nil {
		t.Fatal(err)
	}
	ref, err := r.Resolve("svc", "")
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := ref.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "a:1" || addrs[1] != "b:2" {
		t.Fatalf("merged profiles %v, want [a:1 b:2]", addrs)
	}
}

// TestRegistryBindReplicaRepeatedAnnouncements pins the merge hygiene a
// shard group depends on: replicas re-announce periodically, and the merged
// reference must not inflate — the ring over its profiles would otherwise
// grow phantom shards.
func TestRegistryBindReplicaRepeatedAnnouncements(t *testing.T) {
	r := NewRegistry()
	a, b := replicaRef("a", 1), replicaRef("b", 2)

	// A replica that has already resolved the group may announce the merged
	// reference back, rotated so itself is primary. Both profiles are known:
	// nothing may be added.
	if err := r.BindReplica("svc", a); err != nil {
		t.Fatal(err)
	}
	if err := r.BindReplica("svc", b); err != nil {
		t.Fatal(err)
	}
	rotated := b
	rotated.Alternates = [][]orb.Endpoint{a.Endpoints}
	if err := r.BindReplica("svc", rotated); err != nil {
		t.Fatal(err)
	}
	ref, err := r.Resolve("svc", "")
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := ref.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 {
		t.Fatalf("rotated re-announcement inflated the group: %v", addrs)
	}

	// A replica announcing with duplicate endpoints inside one profile must
	// have them collapsed.
	dup := replicaRef("c", 3)
	dup.Endpoints = append(dup.Endpoints, dup.Endpoints[0])
	if err := r.BindReplica("svc", dup); err != nil {
		t.Fatal(err)
	}
	ref, _ = r.Resolve("svc", "")
	for i, prof := range ref.Profiles() {
		seen := map[string]bool{}
		for _, ep := range prof {
			k := ep.Addr()
			if seen[k] {
				t.Fatalf("profile %d carries duplicate endpoint %s", i, k)
			}
			seen[k] = true
		}
	}
}

// TestRegistryBindReplicaRefreshReplacesEndpoints: a replica that restarts on
// the same primary address but with different secondary ports must have its
// profile replaced in place, not duplicated alongside the stale one.
func TestRegistryBindReplicaRefreshReplacesEndpoints(t *testing.T) {
	r := NewRegistry()
	old := orb.IOR{TypeID: "IDL:test/rep:1.0", Key: []byte("rep"), Threads: 2,
		Endpoints: []orb.Endpoint{{Host: "a", Port: 1, Rank: 0}, {Host: "a", Port: 100, Rank: 1}}}
	if err := r.BindReplica("svc", old); err != nil {
		t.Fatal(err)
	}
	if err := r.BindReplica("svc", replicaRef("b", 2)); err != nil {
		t.Fatal(err)
	}
	// Restart: same communicating endpoint a:1, new data port for rank 1.
	fresh := old
	fresh.Endpoints = []orb.Endpoint{{Host: "a", Port: 1, Rank: 0}, {Host: "a", Port: 200, Rank: 1}}
	if err := r.BindReplica("svc", fresh); err != nil {
		t.Fatal(err)
	}
	ref, err := r.Resolve("svc", "")
	if err != nil {
		t.Fatal(err)
	}
	profs := ref.Profiles()
	if len(profs) != 2 {
		t.Fatalf("refresh duplicated the profile: %d profiles", len(profs))
	}
	if got := profs[0][1].Port; got != 200 {
		t.Fatalf("rank-1 port after refresh is %d, want the new 200", got)
	}
}

func TestRegistryBindReplicaRejectsMismatches(t *testing.T) {
	r := NewRegistry()
	if err := r.BindReplica("svc", replicaRef("a", 1)); err != nil {
		t.Fatal(err)
	}
	var ue *orb.UserException

	wrongType := replicaRef("b", 2)
	wrongType.TypeID = "IDL:test/other:1.0"
	if err := r.BindReplica("svc", wrongType); !errors.As(err, &ue) || ue.RepoID != RepoTypeMismatch {
		t.Fatalf("type mismatch: %v", err)
	}

	wrongKey := replicaRef("b", 2)
	wrongKey.Key = []byte("different")
	if err := r.BindReplica("svc", wrongKey); !errors.As(err, &ue) || ue.RepoID != RepoTypeMismatch {
		t.Fatalf("key mismatch: %v", err)
	}

	if err := r.BindReplica("svc", orb.IOR{}); err == nil {
		t.Fatal("nil replica reference accepted")
	}
}

func TestRemoteBindReplica(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cli := orb.NewClient()
	defer cli.Close()
	res := NewResolver(cli, s.Addr())

	if err := res.BindReplica("svc", replicaRef("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := res.BindReplica("svc", replicaRef("b", 2)); err != nil {
		t.Fatal(err)
	}
	ref, err := res.Resolve("svc", "IDL:test/rep:1.0")
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := ref.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "a:1" || addrs[1] != "b:2" {
		t.Fatalf("resolved profiles %v, want [a:1 b:2]", addrs)
	}

	wrongType := replicaRef("c", 3)
	wrongType.TypeID = "IDL:test/other:1.0"
	var ue *orb.UserException
	if err := res.BindReplica("svc", wrongType); !errors.As(err, &ue) || ue.RepoID != RepoTypeMismatch {
		t.Fatalf("remote type mismatch: %v", err)
	}
}
