package naming

import (
	"errors"
	"testing"

	"repro/internal/orb"
)

func replicaRef(host string, port int) orb.IOR {
	return orb.IOR{
		TypeID:    "IDL:test/rep:1.0",
		Key:       []byte("rep"),
		Threads:   1,
		Endpoints: []orb.Endpoint{{Host: host, Port: port, Rank: 0}},
	}
}

func TestRegistryBindReplicaMergesProfiles(t *testing.T) {
	r := NewRegistry()
	if err := r.BindReplica("svc", replicaRef("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.BindReplica("svc", replicaRef("b", 2)); err != nil {
		t.Fatal(err)
	}
	// Re-registration of a known replica is idempotent.
	if err := r.BindReplica("svc", replicaRef("b", 2)); err != nil {
		t.Fatal(err)
	}
	ref, err := r.Resolve("svc", "")
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := ref.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "a:1" || addrs[1] != "b:2" {
		t.Fatalf("merged profiles %v, want [a:1 b:2]", addrs)
	}
}

func TestRegistryBindReplicaRejectsMismatches(t *testing.T) {
	r := NewRegistry()
	if err := r.BindReplica("svc", replicaRef("a", 1)); err != nil {
		t.Fatal(err)
	}
	var ue *orb.UserException

	wrongType := replicaRef("b", 2)
	wrongType.TypeID = "IDL:test/other:1.0"
	if err := r.BindReplica("svc", wrongType); !errors.As(err, &ue) || ue.RepoID != RepoTypeMismatch {
		t.Fatalf("type mismatch: %v", err)
	}

	wrongKey := replicaRef("b", 2)
	wrongKey.Key = []byte("different")
	if err := r.BindReplica("svc", wrongKey); !errors.As(err, &ue) || ue.RepoID != RepoTypeMismatch {
		t.Fatalf("key mismatch: %v", err)
	}

	if err := r.BindReplica("svc", orb.IOR{}); err == nil {
		t.Fatal("nil replica reference accepted")
	}
}

func TestRemoteBindReplica(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cli := orb.NewClient()
	defer cli.Close()
	res := NewResolver(cli, s.Addr())

	if err := res.BindReplica("svc", replicaRef("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := res.BindReplica("svc", replicaRef("b", 2)); err != nil {
		t.Fatal(err)
	}
	ref, err := res.Resolve("svc", "IDL:test/rep:1.0")
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := ref.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "a:1" || addrs[1] != "b:2" {
		t.Fatalf("resolved profiles %v, want [a:1 b:2]", addrs)
	}

	wrongType := replicaRef("c", 3)
	wrongType.TypeID = "IDL:test/other:1.0"
	var ue *orb.UserException
	if err := res.BindReplica("svc", wrongType); !errors.As(err, &ue) || ue.RepoID != RepoTypeMismatch {
		t.Fatalf("remote type mismatch: %v", err)
	}
}
