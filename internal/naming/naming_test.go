package naming

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
)

func sampleRef(name string) orb.IOR {
	return orb.IOR{
		TypeID:    "IDL:test/" + name + ":1.0",
		Key:       []byte(name),
		Threads:   1,
		Endpoints: []orb.Endpoint{{Host: "10.0.0.9", Port: 1234, Rank: 0}},
	}
}

func TestRegistryBindResolve(t *testing.T) {
	r := NewRegistry()
	ref := sampleRef("alpha")
	if err := r.Bind("alpha", ref, false); err != nil {
		t.Fatal(err)
	}
	got, err := r.Resolve("alpha", "")
	if err != nil || got.TypeID != ref.TypeID {
		t.Fatalf("resolve: %+v, %v", got, err)
	}
	// Type-constrained resolution.
	if _, err := r.Resolve("alpha", ref.TypeID); err != nil {
		t.Fatalf("typed resolve: %v", err)
	}
	var ue *orb.UserException
	if _, err := r.Resolve("alpha", "IDL:other:1.0"); !errors.As(err, &ue) || ue.RepoID != RepoTypeMismatch {
		t.Fatalf("type mismatch: %v", err)
	}
	if _, err := r.Resolve("missing", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
}

func TestRegistryRebind(t *testing.T) {
	r := NewRegistry()
	if err := r.Bind("x", sampleRef("x1"), false); err != nil {
		t.Fatal(err)
	}
	var ue *orb.UserException
	if err := r.Bind("x", sampleRef("x2"), false); !errors.As(err, &ue) || ue.RepoID != RepoAlreadyBound {
		t.Fatalf("rebind without replace: %v", err)
	}
	if err := r.Bind("x", sampleRef("x2"), true); err != nil {
		t.Fatalf("rebind with replace: %v", err)
	}
	got, _ := r.Resolve("x", "")
	if got.TypeID != "IDL:test/x2:1.0" {
		t.Fatalf("replace did not take: %v", got.TypeID)
	}
}

func TestRegistryUnbindAndList(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"c", "a", "b"} {
		if err := r.Bind(n, sampleRef(n), false); err != nil {
			t.Fatal(err)
		}
	}
	names := r.List()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("list %v", names)
	}
	r.Unbind("b")
	r.Unbind("b") // idempotent
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
}

func newServerAndResolver(t *testing.T) (*Server, *Resolver) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client := orb.NewClient()
	client.Timeout = 10 * time.Second
	t.Cleanup(client.Close)
	return srv, NewResolver(client, srv.Addr())
}

func TestRemoteBindResolveUnbind(t *testing.T) {
	_, res := newServerAndResolver(t)
	ref := sampleRef("diffusion")
	if err := res.Bind("example", ref, false); err != nil {
		t.Fatal(err)
	}
	got, err := res.Resolve("example", "")
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != ref.TypeID || got.Endpoints[0] != ref.Endpoints[0] {
		t.Fatalf("resolved %+v", got)
	}
	// Typed resolve across the wire.
	if _, err := res.Resolve("example", "IDL:wrong:1.0"); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if err := res.Unbind("example"); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Resolve("example", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after unbind: %v", err)
	}
}

func TestRemoteNotFound(t *testing.T) {
	_, res := newServerAndResolver(t)
	if _, err := res.Resolve("ghost", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestRemoteAlreadyBound(t *testing.T) {
	_, res := newServerAndResolver(t)
	if err := res.Bind("dup", sampleRef("dup"), false); err != nil {
		t.Fatal(err)
	}
	err := res.Bind("dup", sampleRef("dup"), false)
	var ue *orb.UserException
	if !errors.As(err, &ue) || ue.RepoID != RepoAlreadyBound {
		t.Fatalf("got %v", err)
	}
}

func TestRemoteList(t *testing.T) {
	_, res := newServerAndResolver(t)
	for i := 0; i < 5; i++ {
		if err := res.Bind(fmt.Sprintf("obj-%d", i), sampleRef("x"), false); err != nil {
			t.Fatal(err)
		}
	}
	names, err := res.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 || names[0] != "obj-0" || names[4] != "obj-4" {
		t.Fatalf("list %v", names)
	}
}

func TestServerRef(t *testing.T) {
	srv, _ := newServerAndResolver(t)
	ref := srv.Ref()
	if ref.TypeID != TypeID || string(ref.Key) != string(Key) || len(ref.Endpoints) != 1 {
		t.Fatalf("ref %+v", ref)
	}
}

func TestConcurrentRemoteClients(t *testing.T) {
	srv, _ := newServerAndResolver(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := orb.NewClient()
			client.Timeout = 10 * time.Second
			defer client.Close()
			res := NewResolver(client, srv.Addr())
			name := fmt.Sprintf("client-%d", i)
			if err := res.Bind(name, sampleRef(name), false); err != nil {
				errs[i] = err
				return
			}
			got, err := res.Resolve(name, "")
			if err != nil {
				errs[i] = err
				return
			}
			if got.TypeID != "IDL:test/"+name+":1.0" {
				errs[i] = fmt.Errorf("wrong ref %v", got.TypeID)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if srv.Len() != 8 {
		t.Fatalf("registry has %d entries", srv.Len())
	}
}

func TestSplitHostPort(t *testing.T) {
	h, p := splitHostPort("127.0.0.1:8080")
	if h != "127.0.0.1" || p != 8080 {
		t.Fatalf("%q %d", h, p)
	}
	h, p = splitHostPort("nohost")
	if h != "nohost" || p != 0 {
		t.Fatalf("%q %d", h, p)
	}
}

// echoServer hosts one echo object under key and returns (server, ref).
func echoServer(t *testing.T, key []byte, typeID string) (*orb.Server, orb.IOR) {
	t.Helper()
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(key, orb.ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		msg, err := in.ReadString()
		if err != nil {
			return orb.Marshal(err)
		}
		out.WriteString(msg)
		return nil
	}))
	ref := orb.IOR{TypeID: typeID, Key: key, Threads: 1, Endpoints: []orb.Endpoint{srv.Endpoint(0)}}
	return srv, ref
}

func TestRebinderRecoversFromStaleIOR(t *testing.T) {
	ns, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	const typeID = "IDL:test/echo:1.0"
	key := []byte("echo")
	srvA, refA := echoServer(t, key, typeID)
	if err := ns.Bind("echo", refA, false); err != nil {
		t.Fatal(err)
	}

	client := orb.NewClient()
	client.Timeout = 5 * time.Second
	defer client.Close()
	rb := NewRebinder(client, ns.Addr())

	call := func(msg string) (string, error) {
		args := orb.NewArgEncoder()
		args.WriteString(msg)
		reply, err := rb.Invoke("echo", typeID, "echo", args.Bytes())
		if err != nil {
			return "", err
		}
		d, err := orb.ArgDecoder(reply)
		if err != nil {
			return "", err
		}
		return d.ReadString()
	}

	if got, err := call("one"); err != nil || got != "one" {
		t.Fatalf("first call: %q, %v", got, err)
	}

	// The server "moves": old endpoint dies, a replacement comes up on a
	// fresh port and re-registers the name.
	srvA.Close()
	srvB, refB := echoServer(t, key, typeID)
	defer srvB.Close()
	if err := ns.Bind("echo", refB, true); err != nil {
		t.Fatal(err)
	}

	// The rebinder's cached IOR is now stale; the invocation must recover
	// transparently via re-resolution.
	if got, err := call("two"); err != nil || got != "two" {
		t.Fatalf("post-move call: %q, %v", got, err)
	}
}

func TestRebinderDoesNotMaskUserErrors(t *testing.T) {
	ns, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	srv, err2 := orb.NewServer("127.0.0.1:0")
	if err2 != nil {
		t.Fatal(err2)
	}
	defer srv.Close()
	key := []byte("grumpy")
	srv.Register(key, orb.ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		return &orb.UserException{RepoID: "IDL:test/No:1.0", Message: "no"}
	}))
	ref := orb.IOR{TypeID: "IDL:test/grumpy:1.0", Key: key, Threads: 1, Endpoints: []orb.Endpoint{srv.Endpoint(0)}}
	if err := ns.Bind("grumpy", ref, false); err != nil {
		t.Fatal(err)
	}
	client := orb.NewClient()
	client.Timeout = 5 * time.Second
	defer client.Close()
	rb := NewRebinder(client, ns.Addr())
	_, err = rb.Invoke("grumpy", "", "poke", orb.NewArgEncoder().Bytes())
	var ue *orb.UserException
	if !errors.As(err, &ue) || ue.RepoID != "IDL:test/No:1.0" {
		t.Fatalf("user exception lost: %v", err)
	}
}
