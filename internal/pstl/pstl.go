// Package pstl is the direct package mapping the paper's conclusions call
// for: "we plan to continue our work on direct mapping strategies for
// concrete packages such as HPC++ [PSTL] and POOMA. This will enable us to
// test the capabilities of PARDIS on real world applications."
//
// HPC++'s Parallel Standard Template Library exposes distributed vectors
// with parallel algorithms; this package provides the Go equivalent over
// PARDIS distributed sequences, so that a dsequence argument received from
// the request broker can be processed in place with data-parallel
// algorithms instead of hand-written rank loops:
//
//	arr := core.ArgSeq[float64](call, 0)
//	pstl.Transform(arr, func(v float64) float64 { return v * 2 })
//	total, err := pstl.Reduce(arr, 0, func(a, b float64) float64 { return a + b })
//
// All algorithms follow the SPMD discipline of the rest of the system:
// collective operations must be called by every computing thread of the
// sequence's communicator; purely local ones are marked as such.
package pstl

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dseq"
	"repro/internal/rts"
)

// ErrEmpty is returned by reductions over empty sequences that need at
// least one element.
var ErrEmpty = errors.New("pstl: empty sequence")

// Transform applies f to every element in place. Local: each thread
// processes only its own elements, no communication.
func Transform[T any](s *dseq.Seq[T], f func(T) T) {
	local := s.LocalData()
	for i, v := range local {
		local[i] = f(v)
	}
}

// TransformIndexed is Transform with the element's global index.
func TransformIndexed[T any](s *dseq.Seq[T], f func(global int, v T) T) {
	local := s.LocalData()
	off := 0
	layout := s.Layout()
	for _, iv := range layout.Intervals[s.Comm().Rank()] {
		for j := 0; j < iv.Len; j++ {
			local[off+j] = f(iv.Start+j, local[off+j])
		}
		off += iv.Len
	}
}

// ForEach visits every local element. Local.
func ForEach[T any](s *dseq.Seq[T], f func(T)) {
	for _, v := range s.LocalData() {
		f(v)
	}
}

// Reduce combines all elements with the associative op, starting from
// identity, and returns the result on every thread. Collective.
func Reduce[T any](s *dseq.Seq[T], identity T, op func(T, T) T) (T, error) {
	acc := identity
	for _, v := range s.LocalData() {
		acc = op(acc, v)
	}
	// Exchange the per-thread partials through the sequence's codec so the
	// reduction works for any element type.
	payload := dseq.MarshalChunk(s.Codec(), []T{acc})
	parts, err := s.Comm().Allgather(payload)
	if err != nil {
		return identity, err
	}
	acc = identity
	for r, p := range parts {
		vals, err := dseq.UnmarshalChunk(s.Codec(), p)
		if err != nil {
			return identity, fmt.Errorf("pstl: partial from thread %d: %w", r, err)
		}
		if len(vals) != 1 {
			return identity, fmt.Errorf("pstl: thread %d sent %d partials", r, len(vals))
		}
		acc = op(acc, vals[0])
	}
	return acc, nil
}

// MapReduce applies m to every element and reduces the results with op.
// Collective.
func MapReduce[T any, R any](s *dseq.Seq[T], codec dseq.Codec[R], identity R, m func(T) R, op func(R, R) R) (R, error) {
	acc := identity
	for _, v := range s.LocalData() {
		acc = op(acc, m(v))
	}
	payload := dseq.MarshalChunk(codec, []R{acc})
	parts, err := s.Comm().Allgather(payload)
	if err != nil {
		return identity, err
	}
	acc = identity
	for r, p := range parts {
		vals, err := dseq.UnmarshalChunk(codec, p)
		if err != nil {
			return identity, fmt.Errorf("pstl: partial from thread %d: %w", r, err)
		}
		if len(vals) != 1 {
			return identity, fmt.Errorf("pstl: thread %d sent %d partials", r, len(vals))
		}
		acc = op(acc, vals[0])
	}
	return acc, nil
}

// Count returns the number of elements satisfying pred. Collective.
func Count[T any](s *dseq.Seq[T], pred func(T) bool) (int, error) {
	local := int64(0)
	for _, v := range s.LocalData() {
		if pred(v) {
			local++
		}
	}
	out, err := s.Comm().Allreduce(rts.Int64sToBytes([]int64{local}), rts.SumInt64)
	if err != nil {
		return 0, err
	}
	vals, err := rts.BytesToInt64s(out)
	if err != nil {
		return 0, err
	}
	return int(vals[0]), nil
}

// InclusiveScan replaces every element with the inclusive prefix
// combination of all elements up to and including it (global order).
// Collective.
func InclusiveScan[T any](s *dseq.Seq[T], identity T, op func(T, T) T) error {
	if !blockOrdered(s) {
		return fmt.Errorf("pstl: InclusiveScan requires a rank-ordered contiguous layout (got %v intervals)", s.Layout().Intervals)
	}
	local := s.LocalData()
	// Local inclusive scan.
	acc := identity
	for i, v := range local {
		acc = op(acc, v)
		local[i] = acc
	}
	// Exclusive prefix of the per-thread totals via the RTS scan.
	totalPayload := dseq.MarshalChunk(s.Codec(), []T{acc})
	prefixes, err := s.Comm().Allgather(totalPayload)
	if err != nil {
		return err
	}
	carry := identity
	for r := 0; r < s.Comm().Rank(); r++ {
		vals, err := dseq.UnmarshalChunk(s.Codec(), prefixes[r])
		if err != nil {
			return err
		}
		if len(vals) != 1 {
			return fmt.Errorf("pstl: thread %d sent %d totals", r, len(vals))
		}
		carry = op(carry, vals[0])
	}
	if s.Comm().Rank() > 0 {
		for i := range local {
			local[i] = op(carry, local[i])
		}
	}
	return nil
}

// blockOrdered reports whether each thread owns one contiguous run and the
// runs appear in rank order — the layout InclusiveScan and Sort rely on.
func blockOrdered[T any](s *dseq.Seq[T]) bool {
	next := 0
	for _, ivs := range s.Layout().Intervals {
		if len(ivs) > 1 {
			return false
		}
		for _, iv := range ivs {
			if iv.Start != next {
				return false
			}
			next = iv.End()
		}
	}
	return next == s.Len()
}

// MinMax returns the global minimum and maximum under less. Collective;
// fails with ErrEmpty on zero-length sequences.
func MinMax[T any](s *dseq.Seq[T], less func(a, b T) bool) (min, max T, err error) {
	local := s.LocalData()
	payload := []T{}
	if len(local) > 0 {
		mn, mx := local[0], local[0]
		for _, v := range local[1:] {
			if less(v, mn) {
				mn = v
			}
			if less(mx, v) {
				mx = v
			}
		}
		payload = []T{mn, mx}
	}
	parts, err := s.Comm().Allgather(dseq.MarshalChunk(s.Codec(), payload))
	if err != nil {
		return min, max, err
	}
	first := true
	for r, p := range parts {
		vals, derr := dseq.UnmarshalChunk(s.Codec(), p)
		if derr != nil {
			return min, max, fmt.Errorf("pstl: extrema from thread %d: %w", r, derr)
		}
		if len(vals) == 0 {
			continue
		}
		if first {
			min, max = vals[0], vals[1]
			first = false
			continue
		}
		if less(vals[0], min) {
			min = vals[0]
		}
		if less(max, vals[1]) {
			max = vals[1]
		}
	}
	if first {
		return min, max, ErrEmpty
	}
	return min, max, nil
}

// Sort globally sorts the sequence under less, preserving the layout: after
// Sort, element i of the global order lives wherever global index i lived
// before. Collective. The current implementation gathers at thread 0 —
// adequate for the argument sizes PARDIS services exchange; a sample sort
// is a natural upgrade path.
func Sort[T any](s *dseq.Seq[T], less func(a, b T) bool) error {
	full, err := s.GatherTo(0)
	if err != nil {
		return err
	}
	if s.Comm().Rank() == 0 {
		sort.Slice(full, func(i, j int) bool { return less(full[i], full[j]) })
	}
	return s.ScatterFrom(0, full)
}

// Fill sets every element to v. Local.
func Fill[T any](s *dseq.Seq[T], v T) {
	local := s.LocalData()
	for i := range local {
		local[i] = v
	}
}

// Copy copies src into dst elementwise. Both sequences must have identical
// layouts. Local.
func Copy[T any](dst, src *dseq.Seq[T]) error {
	if !dst.Layout().Equal(src.Layout()) {
		return fmt.Errorf("pstl: Copy requires identical layouts")
	}
	copy(dst.LocalData(), src.LocalData())
	return nil
}

// Zip applies f(a[i], b[i]) into dst[i] for sequences with identical
// layouts (an n-ary transform, the axpy shape). Local.
func Zip[T any](dst, a, b *dseq.Seq[T], f func(x, y T) T) error {
	if !dst.Layout().Equal(a.Layout()) || !dst.Layout().Equal(b.Layout()) {
		return fmt.Errorf("pstl: Zip requires identical layouts")
	}
	dv, av, bv := dst.LocalData(), a.LocalData(), b.LocalData()
	for i := range dv {
		dv[i] = f(av[i], bv[i])
	}
	return nil
}
