package pstl

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dist"
	"repro/internal/dseq"
	"repro/internal/rts"
)

func run(t *testing.T, n int, fn func(c *rts.Comm) error) {
	t.Helper()
	w := rts.NewWorld(n, rts.Options{RecvTimeout: 10 * time.Second})
	t.Cleanup(w.Close)
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestTransformAndForEach(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Float64, 100, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return float64(g) })
		Transform(s, func(v float64) float64 { return v * 2 })
		sum := 0.0
		ForEach(s, func(v float64) { sum += v })
		full, err := s.Collect()
		if err != nil {
			return err
		}
		for i, v := range full {
			if v != float64(i)*2 {
				return fmt.Errorf("full[%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestTransformIndexedOnCyclic(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Int32, 40, dist.Cyclic{BlockSize: 3})
		if err != nil {
			return err
		}
		TransformIndexed(s, func(g int, v int32) int32 { return int32(g * 10) })
		full, err := s.Collect()
		if err != nil {
			return err
		}
		for i, v := range full {
			if v != int32(i*10) {
				return fmt.Errorf("full[%d] = %d", i, v)
			}
		}
		return nil
	})
}

func TestReduce(t *testing.T) {
	run(t, 5, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Float64, 1000, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return 1 })
		total, err := Reduce(s, 0, func(a, b float64) float64 { return a + b })
		if err != nil {
			return err
		}
		if total != 1000 {
			return fmt.Errorf("sum = %v", total)
		}
		return nil
	})
}

func TestMapReduce(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.String, 9, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) string { return fmt.Sprintf("%c", 'a'+g) })
		// Total length of all strings.
		n, err := MapReduce(s, dseq.Int64, 0, func(v string) int64 { return int64(len(v)) },
			func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if n != 9 {
			return fmt.Errorf("total length %d", n)
		}
		return nil
	})
}

func TestCount(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Int32, 100, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) int32 { return int32(g) })
		n, err := Count(s, func(v int32) bool { return v%3 == 0 })
		if err != nil {
			return err
		}
		if n != 34 { // 0,3,...,99
			return fmt.Errorf("count %d", n)
		}
		return nil
	})
}

func TestInclusiveScan(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Int64, 37, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) int64 { return int64(g + 1) })
		if err := InclusiveScan(s, 0, func(a, b int64) int64 { return a + b }); err != nil {
			return err
		}
		full, err := s.Collect()
		if err != nil {
			return err
		}
		for i, v := range full {
			k := int64(i + 1)
			if v != k*(k+1)/2 {
				return fmt.Errorf("prefix[%d] = %d", i, v)
			}
		}
		return nil
	})
}

func TestInclusiveScanRejectsCyclic(t *testing.T) {
	run(t, 2, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Int64, 10, dist.Cyclic{BlockSize: 1})
		if err != nil {
			return err
		}
		if err := InclusiveScan(s, 0, func(a, b int64) int64 { return a + b }); err == nil {
			return errors.New("cyclic layout accepted")
		}
		return nil
	})
}

func TestMinMax(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Float64, 101, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return float64((g*37)%101) - 50 })
		mn, mx, err := MinMax(s, func(a, b float64) bool { return a < b })
		if err != nil {
			return err
		}
		if mn != -50 || mx != 50 {
			return fmt.Errorf("min %v max %v", mn, mx)
		}
		return nil
	})
}

func TestMinMaxEmpty(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Float64, 0, nil)
		if err != nil {
			return err
		}
		if _, _, err := MinMax(s, func(a, b float64) bool { return a < b }); !errors.Is(err, ErrEmpty) {
			return fmt.Errorf("got %v", err)
		}
		return nil
	})
}

func TestMinMaxWithEmptyRanks(t *testing.T) {
	// More ranks than elements: some threads own nothing.
	run(t, 5, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Int32, 3, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) int32 { return int32(5 - g) })
		mn, mx, err := MinMax(s, func(a, b int32) bool { return a < b })
		if err != nil {
			return err
		}
		if mn != 3 || mx != 5 {
			return fmt.Errorf("min %d max %d", mn, mx)
		}
		return nil
	})
}

func TestSort(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := dseq.New(c, dseq.Float64, 200, nil)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(1))) // same on all ranks; only local parts are used
		_ = rng
		s.FillFunc(func(g int) float64 { return float64((g * 7919) % 200) })
		if err := Sort(s, func(a, b float64) bool { return a < b }); err != nil {
			return err
		}
		full, err := s.Collect()
		if err != nil {
			return err
		}
		if !sort.Float64sAreSorted(full) {
			return errors.New("not sorted")
		}
		if full[0] != 0 || full[199] != 199 {
			return fmt.Errorf("extremes %v %v", full[0], full[199])
		}
		return nil
	})
}

func TestFillCopyZip(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		a, err := dseq.New(c, dseq.Float64, 60, nil)
		if err != nil {
			return err
		}
		b, err := dseq.New(c, dseq.Float64, 60, nil)
		if err != nil {
			return err
		}
		dst, err := dseq.New(c, dseq.Float64, 60, nil)
		if err != nil {
			return err
		}
		Fill(a, 2)
		b.FillFunc(func(g int) float64 { return float64(g) })
		if err := Zip(dst, a, b, func(x, y float64) float64 { return x * y }); err != nil {
			return err
		}
		v, err := dst.At(30)
		if err != nil {
			return err
		}
		if v != 60 {
			return fmt.Errorf("dst[30] = %v", v)
		}
		cp, err := dseq.New(c, dseq.Float64, 60, nil)
		if err != nil {
			return err
		}
		if err := Copy(cp, dst); err != nil {
			return err
		}
		v, err = cp.At(30)
		if err != nil || v != 60 {
			return fmt.Errorf("copy[30] = %v, %v", v, err)
		}
		// Mismatched layouts are rejected.
		odd, err := dseq.New(c, dseq.Float64, 61, nil)
		if err != nil {
			return err
		}
		if err := Copy(odd, dst); err == nil {
			return errors.New("layout mismatch accepted by Copy")
		}
		if err := Zip(odd, a, b, func(x, y float64) float64 { return x }); err == nil {
			return errors.New("layout mismatch accepted by Zip")
		}
		return nil
	})
}

// Property: Reduce(+) equals the sequential sum for random lengths,
// distributions and world sizes.
func TestReduceMatchesSequentialProperty(t *testing.T) {
	specs := []dist.Spec{nil, dist.Cyclic{BlockSize: 2}, dist.Proportions{P: []int{3, 1, 2}}}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := 3
		length := rng.Intn(200)
		spec := specs[rng.Intn(len(specs))]
		vals := make([]int64, length)
		var want int64
		for i := range vals {
			vals[i] = int64(rng.Intn(100) - 50)
			want += vals[i]
		}
		w := rts.NewWorld(ranks, rts.Options{RecvTimeout: 10 * time.Second})
		defer w.Close()
		ok := true
		err := w.Run(func(c *rts.Comm) error {
			s, err := dseq.New(c, dseq.Int64, length, spec)
			if err != nil {
				return err
			}
			s.FillFunc(func(g int) int64 { return vals[g] })
			got, err := Reduce(s, 0, func(a, b int64) int64 { return a + b })
			if err != nil {
				return err
			}
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
