package dseq

import (
	"fmt"

	"repro/internal/dist"
)

// This file is the bridge between distributed sequences and the PARDIS
// transfer engines (internal/core). The engines are element-type agnostic:
// they manipulate sequences through the Transferable view below, moving
// opaque marshalled chunks whose encoding the sequence's codec owns.

// Transferable is the engine-facing view of a distributed sequence.
// *Seq[T] implements it for every element type.
type Transferable interface {
	// ElemName names the element type for header validation ("double"...).
	ElemName() string
	// Len returns the global length.
	Len() int
	// Layout returns the current layout.
	Layout() dist.Layout
	// Spec returns the distribution law, or nil when the layout was set
	// explicitly.
	Spec() dist.Spec
	// MarshalRange renders local elements [off, off+n) as a chunk payload.
	MarshalRange(off, n int) ([]byte, error)
	// UnmarshalRange stores a chunk payload at local offset off.
	UnmarshalRange(off int, payload []byte) error
	// GatherMarshal collects the whole sequence at root and renders it as
	// one chunk payload (nil at other ranks). Collective.
	GatherMarshal(root int) ([]byte, error)
	// ScatterUnmarshal distributes a whole-sequence chunk payload
	// (significant at root) into every rank's local storage. Collective.
	ScatterUnmarshal(root int, payload []byte) error
	// ResizeAlloc reallocates the sequence to a new length using its spec
	// (Block when unset), discarding contents. Not collective: every rank
	// must call it with the same length.
	ResizeAlloc(length int) error
}

// RangeCompressor is the optional compression-aware extension of
// Transferable: a sequence that can render a local range as a compressed
// chunk envelope. Receivers need nothing special — UnmarshalRange
// auto-detects compressed envelopes — so engines probe for this interface on
// the sending side only and fall back to MarshalRange. *Seq[T] implements it
// for every element type with a registered block codec.
type RangeCompressor interface {
	// MarshalRangeZ is MarshalRange compressing with the first codec of mask
	// that applies to the element type; incompressible or short payloads
	// fall back to the raw chunk encoding transparently.
	MarshalRangeZ(off, n int, mask uint8) ([]byte, error)
}

// MarshalRangeZ implements RangeCompressor.
func (s *Seq[T]) MarshalRangeZ(off, n int, mask uint8) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(s.local) {
		return nil, fmt.Errorf("%w: local range [%d,%d) of %d", ErrIndex, off, off+n, len(s.local))
	}
	return MarshalChunkZ(s.codec, s.local[off:off+n], mask), nil
}

// Spec returns the sequence's distribution law (nil if the layout was
// explicit).
func (s *Seq[T]) Spec() dist.Spec { return s.spec }

// ElemName implements Transferable.
func (s *Seq[T]) ElemName() string { return s.codec.Name }

// MarshalRange implements Transferable.
func (s *Seq[T]) MarshalRange(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(s.local) {
		return nil, fmt.Errorf("%w: local range [%d,%d) of %d", ErrIndex, off, off+n, len(s.local))
	}
	return MarshalChunk(s.codec, s.local[off:off+n]), nil
}

// UnmarshalRange implements Transferable. It decodes straight into local
// storage at off — no intermediate slice — and never retains payload, so a
// chunk backed by a borrowed transport buffer may be released as soon as
// this returns.
func (s *Seq[T]) UnmarshalRange(off int, payload []byte) error {
	if off < 0 || off > len(s.local) {
		return fmt.Errorf("%w: chunk offset %d outside %d local elements", ErrIndex, off, len(s.local))
	}
	_, err := UnmarshalChunkInto(s.codec, payload, s.local[off:])
	return err
}

// GatherMarshal implements Transferable.
func (s *Seq[T]) GatherMarshal(root int) ([]byte, error) {
	full, err := s.GatherTo(root)
	if err != nil {
		return nil, err
	}
	if s.comm.Rank() != root {
		return nil, nil
	}
	return MarshalChunk(s.codec, full), nil
}

// ScatterUnmarshal implements Transferable.
func (s *Seq[T]) ScatterUnmarshal(root int, payload []byte) error {
	var full []T
	if s.comm.Rank() == root {
		var err error
		full, err = UnmarshalChunk(s.codec, payload)
		if err != nil {
			return err
		}
	}
	return s.ScatterFrom(root, full)
}

// ResizeAlloc implements Transferable.
func (s *Seq[T]) ResizeAlloc(length int) error {
	spec := s.spec
	if spec == nil {
		spec = dist.Block{}
	}
	layout, err := spec.Layout(length, s.comm.Size())
	if err != nil {
		return err
	}
	s.layout = layout
	s.local = make([]T, layout.Count(s.comm.Rank()))
	return nil
}
