package dseq

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Transfer-phase timers. They stay nil — and the probes cost one atomic load
// plus a nil check — until EnableMetrics installs them, so the chunk codecs
// only pay for clock reads when metrics are on. The pointers are atomic so
// EnableMetrics may race with in-flight transfers.
var (
	marshalNS   atomic.Pointer[obs.Histogram]
	unmarshalNS atomic.Pointer[obs.Histogram]
)

// EnableMetrics publishes the chunk codec timers ("dseq.marshal_ns",
// "dseq.unmarshal_ns") to reg. Passing nil disables them again.
func EnableMetrics(reg *obs.Registry) {
	marshalNS.Store(reg.Histogram("dseq.marshal_ns"))
	unmarshalNS.Store(reg.Histogram("dseq.unmarshal_ns"))
}
