package dseq

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/rts"
	"repro/internal/zcodec"
)

func TestMarshalChunkZRoundTrip(t *testing.T) {
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	p := MarshalChunkZ(Float64, vals, zcodec.MaskAll)
	if !IsCompressedChunk(p) {
		t.Fatalf("smooth chunk did not compress (payload %d bytes)", len(p))
	}
	if len(p) >= 8*len(vals) {
		t.Fatalf("compressed chunk %d bytes >= raw %d", len(p), 8*len(vals))
	}
	id, n, err := CompressedChunkInfo(p)
	if err != nil || id != zcodec.XOR || n != len(vals) {
		t.Fatalf("CompressedChunkInfo = %v, %d, %v", id, n, err)
	}
	got, err := UnmarshalChunk(Float64, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("[%d] %v != %v", i, got[i], vals[i])
		}
	}
	dst := make([]float64, len(vals))
	m, err := UnmarshalChunkInto(Float64, p, dst)
	if err != nil || m != len(vals) {
		t.Fatalf("UnmarshalChunkInto = %d, %v", m, err)
	}
	for i := range vals {
		if dst[i] != vals[i] {
			t.Fatalf("into[%d] %v != %v", i, dst[i], vals[i])
		}
	}
}

func TestMarshalChunkZMaskGating(t *testing.T) {
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i)
	}
	if p := MarshalChunkZ(Float64, vals, 0); IsCompressedChunk(p) {
		t.Fatal("mask 0 produced a compressed chunk")
	}
	// The float codec needs the XOR bit; a delta-only negotiation leaves
	// doubles raw.
	if p := MarshalChunkZ(Float64, vals, zcodec.MaskDelta); IsCompressedChunk(p) {
		t.Fatal("delta-only mask compressed a double chunk")
	}
	if p := MarshalChunkZ(Float64, vals[:4], zcodec.MaskAll); IsCompressedChunk(p) {
		t.Fatal("tiny chunk compressed below compMinElems")
	}
	// String codec has no compression hooks: any mask stays raw.
	if p := MarshalChunkZ(String, []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p", "q"}, zcodec.MaskAll); IsCompressedChunk(p) {
		t.Fatal("string chunk compressed")
	}
}

func TestMarshalChunkZIncompressibleFallsBack(t *testing.T) {
	// Values whose bit patterns share nothing XOR badly; the envelope
	// would exceed the raw bytes, so the chunk must fall back to raw.
	vals := make([]float64, 512)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = math.Float64frombits(x)
	}
	p := MarshalChunkZ(Float64, vals, zcodec.MaskAll)
	if IsCompressedChunk(p) {
		t.Fatalf("incompressible chunk stayed compressed (%d bytes vs %d raw)", len(p), 8*len(vals))
	}
	got, err := UnmarshalChunk(Float64, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("[%d] mismatch after raw fallback", i)
		}
	}
}

func TestMarshalChunkZIntCodecs(t *testing.T) {
	i32 := make([]int32, 300)
	i64 := make([]int64, 300)
	for i := range i32 {
		i32[i] = int32(i * 7)
		i64[i] = int64(i) * 1_000_003
	}
	p32 := MarshalChunkZ(Int32, i32, zcodec.MaskAll)
	if !IsCompressedChunk(p32) {
		t.Fatal("int32 ramp did not compress")
	}
	got32, err := UnmarshalChunk(Int32, p32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range i32 {
		if got32[i] != i32[i] {
			t.Fatalf("int32[%d] %d != %d", i, got32[i], i32[i])
		}
	}
	p64 := MarshalChunkZ(Int64, i64, zcodec.MaskAll)
	if !IsCompressedChunk(p64) {
		t.Fatal("int64 ramp did not compress")
	}
	dst := make([]int64, len(i64))
	if m, err := UnmarshalChunkInto(Int64, p64, dst); err != nil || m != len(i64) {
		t.Fatalf("UnmarshalChunkInto = %d, %v", m, err)
	}
	for i := range i64 {
		if dst[i] != i64[i] {
			t.Fatalf("int64[%d] %d != %d", i, dst[i], i64[i])
		}
	}
}

func TestCompressedChunkRejectsCorruption(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i)
	}
	p := MarshalChunkZ(Float64, vals, zcodec.MaskAll)
	if !IsCompressedChunk(p) {
		t.Fatal("setup: chunk not compressed")
	}
	// Wrong codec octet.
	bad := append([]byte(nil), p...)
	bad[1] = byte(zcodec.Delta)
	if _, err := UnmarshalChunk(Float64, bad); err == nil {
		t.Fatal("wrong codec id decoded")
	}
	// Truncation mid-block.
	if _, err := UnmarshalChunk(Float64, p[:len(p)/2]); err == nil {
		t.Fatal("truncated envelope decoded")
	}
	// Destination too small.
	if _, err := UnmarshalChunkInto(Float64, p, make([]float64, 8)); err == nil {
		t.Fatal("oversized chunk decoded into small destination")
	}
	// An old-format receiver (no envelope support) sees marker 0x02 as a
	// bad order flag: openChunk must reject, not misdecode.
	if _, err := openChunk("double", p); err == nil {
		t.Fatal("openChunk accepted a compressed envelope")
	}
}

// TestStreamRangeCompressed runs the collective gather/scatter range
// methods with a negotiated mask across layouts where chunks are
// rank-local (compressed by their owners), split (assembled and
// compressed at root), and root-owned.
func TestStreamRangeCompressed(t *testing.T) {
	const length = 4096
	for _, spec := range []dist.Spec{nil, dist.Cyclic{BlockSize: 32}} {
		name := "block"
		if spec != nil {
			name = "cyclic"
		}
		t.Run(name, func(t *testing.T) {
			run(t, 4, func(c *rts.Comm) error {
				src, err := New(c, Float64, length, spec)
				if err != nil {
					return err
				}
				src.FillFunc(func(g int) float64 { return float64(g) })
				dst, err := New(c, Float64, length, spec)
				if err != nil {
					return err
				}
				// Walk a chunk schedule through gather+scatter with
				// compression negotiated, the transfer engine's shape.
				const chunk = 1024
				for lo := 0; lo < length; lo += chunk {
					n := min(chunk, length-lo)
					p, err := src.GatherMarshalRangeZ(nil, 0, lo, n, zcodec.MaskAll)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						if name == "block" && !IsCompressedChunk(p) {
							t.Errorf("block chunk [%d,%d) not compressed", lo, lo+n)
						}
					} else if p != nil {
						t.Errorf("rank %d received a payload", c.Rank())
					}
					if err := dst.ScatterUnmarshalRange(nil, 0, lo, n, p); err != nil {
						return err
					}
				}
				for i, v := range dst.LocalData() {
					if v != src.LocalData()[i] {
						t.Errorf("rank %d local[%d] = %v, want %v", c.Rank(), i, v, src.LocalData()[i])
						break
					}
				}
				return nil
			})
		})
	}
}
