package dseq

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/rts"
)

// This file implements the streaming side of the centralized transfer method:
// instead of gathering a whole sequence at the root and shipping it as one
// payload, the transfer engine walks a deterministic chunk schedule and moves
// one global element range at a time, overlapping runtime-system gathers with
// wire transmission. The range methods below are the per-chunk building
// blocks. They take an explicit communicator because pipelined invocations
// run each outstanding request on its own duplicated context (lane) — the
// sequence's own communicator belongs to the application and must not carry
// engine traffic that could interleave between overlapping invocations.

// ErrChunkFailed reports that a peer substituted a fail marker for a chunk:
// an earlier error was detected elsewhere, and the marker kept the collective
// schedule aligned while propagating the failure.
var ErrChunkFailed = errors.New("dseq: peer marked chunk failed")

// FailMarker is a one-byte chunk payload that MarshalChunk can never produce
// (a real chunk starts with a 0/1 byte-order octet). When a participant hits
// an error mid-schedule it must keep calling the range methods for the
// remaining chunks — breaking the loop would desynchronize the collectives —
// and feeds this marker instead of real data, so peers fail fast without
// losing alignment.
var FailMarker = []byte{0xFF}

// IsFailMarker reports whether a chunk payload is the failure marker.
func IsFailMarker(p []byte) bool { return len(p) == 1 && p[0] == 0xFF }

// StreamTransferable is the chunk-granular extension of Transferable. The
// transfer engines use it to pipeline centralized transfers: chunk k+1 is
// gathered over the runtime system while chunk k is on the wire. Both
// methods are collective over c (all of c's ranks call them with identical
// arguments, in the same order); passing a nil communicator uses the
// sequence's own.
type StreamTransferable interface {
	// GatherMarshalRange collects global elements [start, start+n) at root
	// and renders them as one chunk payload in global order. Non-root ranks
	// receive nil. A returned FailMarker payload (in place of an error's nil)
	// never happens at root — marker propagation is internal — but root
	// returns ErrChunkFailed when a contributor fed one.
	GatherMarshalRange(c *rts.Comm, root, start, n int) ([]byte, error)
	// GatherMarshalRangeZ is GatherMarshalRange with wire compression: mask
	// is the connection's negotiated zcodec bitmask, replicated across the
	// ranks by the transfer engine. Mask zero is exactly GatherMarshalRange;
	// element types without a block codec ignore the mask.
	GatherMarshalRangeZ(c *rts.Comm, root, start, n int, mask uint8) ([]byte, error)
	// ScatterUnmarshalRange distributes a chunk payload holding global
	// elements [start, start+n) (significant at root) into the owning ranks'
	// local storage. Feeding FailMarker as the payload poisons the chunk:
	// the collective still runs, owners skip the store, and every
	// participant with elements in the range returns ErrChunkFailed.
	ScatterUnmarshalRange(c *rts.Comm, root, start, n int, payload []byte) error
}

// rangeSeg is the intersection of one of a rank's layout intervals with a
// requested global range: n elements at localOff in the rank's local buffer,
// appearing at rangeOff within the range.
type rangeSeg struct {
	localOff int
	rangeOff int
	n        int
}

// rangeSegs computes rank's segments inside [start, start+n), in global
// order (per-rank interval lists are sorted by start).
func rangeSegs(l dist.Layout, rank, start, n int) []rangeSeg {
	var segs []rangeSeg
	off := 0
	for _, iv := range l.Intervals[rank] {
		lo := max(iv.Start, start)
		hi := min(iv.End(), start+n)
		if hi > lo {
			segs = append(segs, rangeSeg{
				localOff: off + (lo - iv.Start),
				rangeOff: lo - start,
				n:        hi - lo,
			})
		}
		off += iv.Len
	}
	return segs
}

func segTotal(segs []rangeSeg) int {
	n := 0
	for _, s := range segs {
		n += s.n
	}
	return n
}

// checkStreamRange validates a range method call. All inputs are replicated
// (layout, start, n agree across ranks), so acceptance is deterministic: an
// error returns at every rank before any communication happens.
func (s *Seq[T]) checkStreamRange(c *rts.Comm, root, start, n int) (*rts.Comm, error) {
	if c == nil {
		c = s.comm
	}
	if c.Size() != s.layout.Ranks || c.Rank() != s.comm.Rank() {
		return nil, fmt.Errorf("%w: streaming comm rank %d/%d against layout for rank %d/%d",
			ErrLayout, c.Rank(), c.Size(), s.comm.Rank(), s.layout.Ranks)
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: root %d of %d ranks", ErrIndex, root, c.Size())
	}
	if start < 0 || n < 0 || start+n > s.layout.Length {
		return nil, fmt.Errorf("%w: chunk [%d,%d) of %d", ErrIndex, start, start+n, s.layout.Length)
	}
	return c, nil
}

// GatherMarshalRange implements StreamTransferable.
func (s *Seq[T]) GatherMarshalRange(c *rts.Comm, root, start, n int) ([]byte, error) {
	return s.GatherMarshalRangeZ(c, root, start, n, 0)
}

// GatherMarshalRangeZ is GatherMarshalRange with wire compression: mask
// is the connection's negotiated zcodec bitmask (replicated — every rank
// passes the same value, which the transfer engine broadcast alongside
// the chunk schedule). Compression happens exactly where the produced
// bytes are the final wire payload — a rank whose segments cover the
// whole chunk, or root assembling a multi-contributor chunk — so ranks
// compress their own chunks in parallel, overlapping the collectives
// the same way marshalling does. Intermediate gather parts that root
// will decode anyway stay raw: they cross in-process mailboxes, never
// the wire. Mask zero is exactly GatherMarshalRange.
func (s *Seq[T]) GatherMarshalRangeZ(c *rts.Comm, root, start, n int, mask uint8) ([]byte, error) {
	c, err := s.checkStreamRange(c, root, start, n)
	if err != nil {
		return nil, err
	}
	me := c.Rank()
	mySegs := rangeSegs(s.layout, me, start, n)

	// An empty range (a zero-length sequence's whole-range transfer) still
	// needs a well-formed chunk payload at root; it is deterministic from
	// the inputs, so no rank communicates.
	if n == 0 {
		if me != root {
			return nil, nil
		}
		return MarshalChunk(s.codec, nil), nil
	}

	// Root-owned chunk: every rank derives this from the replicated layout,
	// so the chunk costs no communication at all. With blockwise layouts and
	// chunks no larger than a block this is the common case for root's own
	// share of the sequence.
	if segTotal(rangeSegs(s.layout, root, start, n)) == n {
		if me != root {
			return nil, nil
		}
		return s.marshalSegsZ(mySegs, mask)
	}

	var mine []byte
	var myErr error
	if len(mySegs) > 0 {
		// A rank covering the whole chunk produces the wire payload itself
		// (root forwards it verbatim), so it compresses; partial parts are
		// decoded at root and travel raw.
		partMask := uint8(0)
		if segTotal(mySegs) == n {
			partMask = mask
		}
		if mine, myErr = s.marshalSegsZ(mySegs, partMask); myErr != nil {
			mine = FailMarker
		}
	}
	parts, err := c.Gather(root, mine)
	if err != nil {
		return nil, err
	}
	if myErr != nil {
		return nil, myErr
	}
	if me != root {
		return nil, nil
	}
	return s.assembleRange(parts, start, n, mask)
}

// marshalSegsZ renders the given local segments as one chunk payload in
// global order, compressing when mask admits the element codec. A single
// contiguous segment marshals straight out of local storage with no
// staging copy.
func (s *Seq[T]) marshalSegsZ(segs []rangeSeg, mask uint8) ([]byte, error) {
	if len(segs) == 1 {
		sg := segs[0]
		if sg.localOff < 0 || sg.localOff+sg.n > len(s.local) {
			return nil, fmt.Errorf("%w: local range [%d,%d) of %d", ErrIndex, sg.localOff, sg.localOff+sg.n, len(s.local))
		}
		return MarshalChunkZ(s.codec, s.local[sg.localOff:sg.localOff+sg.n], mask), nil
	}
	vals := make([]T, 0, segTotal(segs))
	for _, sg := range segs {
		if sg.localOff < 0 || sg.localOff+sg.n > len(s.local) {
			return nil, fmt.Errorf("%w: segment [%d,%d) of %d local elements", ErrIndex, sg.localOff, sg.localOff+sg.n, len(s.local))
		}
		vals = append(vals, s.local[sg.localOff:sg.localOff+sg.n]...)
	}
	return MarshalChunkZ(s.codec, vals, mask), nil
}

// assembleRange reassembles gathered per-rank pieces into one chunk payload
// for global range [start, start+n), compressing the result when mask
// admits it. Root-only.
func (s *Seq[T]) assembleRange(parts [][]byte, start, n int, mask uint8) ([]byte, error) {
	type contrib struct {
		rank int
		segs []rangeSeg
	}
	var cs []contrib
	for r := 0; r < s.layout.Ranks; r++ {
		if segs := rangeSegs(s.layout, r, start, n); len(segs) > 0 {
			cs = append(cs, contrib{rank: r, segs: segs})
		}
	}
	// A single contributor's piece already is the whole chunk in global
	// order: forward it without a decode/re-encode round trip. (The sole
	// contributor is never root here — a fully root-owned chunk skipped the
	// gather entirely.)
	if len(cs) == 1 {
		part := parts[cs[0].rank]
		if IsFailMarker(part) {
			return nil, fmt.Errorf("%w (rank %d)", ErrChunkFailed, cs[0].rank)
		}
		return part, nil
	}

	scratch := make([]T, n)
	merge := func(ct contrib) error {
		part := parts[ct.rank]
		if IsFailMarker(part) {
			return fmt.Errorf("%w (rank %d)", ErrChunkFailed, ct.rank)
		}
		want := segTotal(ct.segs)
		if len(ct.segs) == 1 {
			sg := ct.segs[0]
			m, err := UnmarshalChunkInto(s.codec, part, scratch[sg.rangeOff:sg.rangeOff+sg.n])
			if err != nil {
				return err
			}
			if m != sg.n {
				return fmt.Errorf("%w: rank %d sent %d of %d chunk elements", ErrLayout, ct.rank, m, sg.n)
			}
			return nil
		}
		vals, err := UnmarshalChunk(s.codec, part)
		if err != nil {
			return err
		}
		if len(vals) != want {
			return fmt.Errorf("%w: rank %d sent %d of %d chunk elements", ErrLayout, ct.rank, len(vals), want)
		}
		off := 0
		for _, sg := range ct.segs {
			copy(scratch[sg.rangeOff:sg.rangeOff+sg.n], vals[off:off+sg.n])
			off += sg.n
		}
		return nil
	}
	errs := make([]error, len(cs))
	if n >= parallelMinElems && len(cs) > 1 {
		pfor(len(cs), func(i int) { errs[i] = merge(cs[i]) })
	} else {
		for i := range cs {
			errs[i] = merge(cs[i])
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MarshalChunkZ(s.codec, scratch, mask), nil
}

// ScatterUnmarshalRange implements StreamTransferable.
func (s *Seq[T]) ScatterUnmarshalRange(c *rts.Comm, root, start, n int, payload []byte) error {
	c, err := s.checkStreamRange(c, root, start, n)
	if err != nil {
		return err
	}
	me := c.Rank()
	mySegs := rangeSegs(s.layout, me, start, n)

	// Empty range: nothing to store, but the marker still signals failure.
	if n == 0 {
		if me == root && IsFailMarker(payload) {
			return ErrChunkFailed
		}
		return nil
	}

	// Root-owned chunk: no communication (see GatherMarshalRange).
	if segTotal(rangeSegs(s.layout, root, start, n)) == n {
		if me != root {
			return nil
		}
		if IsFailMarker(payload) {
			return ErrChunkFailed
		}
		return s.storeSegs(mySegs, payload)
	}

	if me != root {
		chunk, err := c.Scatter(root, nil)
		if err != nil {
			return err
		}
		if len(mySegs) == 0 {
			return nil
		}
		if IsFailMarker(chunk) {
			return fmt.Errorf("%w (root %d)", ErrChunkFailed, root)
		}
		return s.storeSegs(mySegs, chunk)
	}
	return s.scatterRangeRoot(c, start, n, payload, mySegs)
}

// scatterRangeRoot splits payload into per-owner pieces and scatters them.
// On a bad payload it scatters fail markers instead, keeping the collective
// aligned while every owner learns of the failure.
func (s *Seq[T]) scatterRangeRoot(c *rts.Comm, start, n int, payload []byte, mySegs []rangeSeg) error {
	me := c.Rank()
	type contrib struct {
		rank int
		segs []rangeSeg
	}
	var cs []contrib
	for r := 0; r < s.layout.Ranks; r++ {
		if r == me {
			continue
		}
		if segs := rangeSegs(s.layout, r, start, n); len(segs) > 0 {
			cs = append(cs, contrib{rank: r, segs: segs})
		}
	}
	parts := make([][]byte, c.Size())

	poison := func(cause error) error {
		for _, ct := range cs {
			parts[ct.rank] = FailMarker
		}
		if _, err := c.Scatter(me, parts); err != nil {
			return err
		}
		return cause
	}

	if IsFailMarker(payload) {
		return poison(ErrChunkFailed)
	}
	// A sole remote owner takes the payload verbatim — but through a private
	// copy: the mailbox hands slices off without copying, and the payload
	// may be a borrowed transport buffer the caller releases after we return.
	if len(cs) == 1 && len(mySegs) == 0 && segTotal(cs[0].segs) == n {
		parts[cs[0].rank] = append([]byte(nil), payload...)
		_, err := c.Scatter(me, parts)
		return err
	}

	vals, err := UnmarshalChunk(s.codec, payload)
	if err != nil {
		return poison(err)
	}
	if len(vals) != n {
		return poison(fmt.Errorf("%w: chunk holds %d of %d elements", ErrLayout, len(vals), n))
	}
	build := func(ct contrib) {
		if len(ct.segs) == 1 {
			sg := ct.segs[0]
			parts[ct.rank] = MarshalChunk(s.codec, vals[sg.rangeOff:sg.rangeOff+sg.n])
			return
		}
		piece := make([]T, 0, segTotal(ct.segs))
		for _, sg := range ct.segs {
			piece = append(piece, vals[sg.rangeOff:sg.rangeOff+sg.n]...)
		}
		parts[ct.rank] = MarshalChunk(s.codec, piece)
	}
	if n >= parallelMinElems && len(cs) > 1 {
		pfor(len(cs), func(i int) { build(cs[i]) })
	} else {
		for i := range cs {
			build(cs[i])
		}
	}
	if _, err := c.Scatter(me, parts); err != nil {
		return err
	}
	// Root's own share copies straight out of the decoded values; it never
	// takes the marshal round trip.
	for _, sg := range mySegs {
		copy(s.local[sg.localOff:sg.localOff+sg.n], vals[sg.rangeOff:sg.rangeOff+sg.n])
	}
	return nil
}

// storeSegs decodes a chunk piece holding exactly this rank's segments (in
// global order) into local storage. A single contiguous segment decodes in
// place with no staging slice, so a piece backed by a borrowed transport
// buffer is released cleanly — nothing below retains payload.
func (s *Seq[T]) storeSegs(segs []rangeSeg, payload []byte) error {
	want := segTotal(segs)
	if len(segs) == 1 {
		sg := segs[0]
		if sg.localOff < 0 || sg.localOff+sg.n > len(s.local) {
			return fmt.Errorf("%w: segment [%d,%d) of %d local elements", ErrIndex, sg.localOff, sg.localOff+sg.n, len(s.local))
		}
		m, err := UnmarshalChunkInto(s.codec, payload, s.local[sg.localOff:sg.localOff+sg.n])
		if err != nil {
			return err
		}
		if m != sg.n {
			return fmt.Errorf("%w: chunk piece holds %d of %d elements", ErrLayout, m, sg.n)
		}
		return nil
	}
	vals, err := UnmarshalChunk(s.codec, payload)
	if err != nil {
		return err
	}
	if len(vals) != want {
		return fmt.Errorf("%w: chunk piece holds %d of %d elements", ErrLayout, len(vals), want)
	}
	off := 0
	for _, sg := range segs {
		copy(s.local[sg.localOff:sg.localOff+sg.n], vals[off:off+sg.n])
		off += sg.n
	}
	return nil
}
