package dseq

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dist"
	"repro/internal/rts"
)

func run(t *testing.T, n int, fn func(c *rts.Comm) error) {
	t.Helper()
	w := rts.NewWorld(n, rts.Options{RecvTimeout: 10 * time.Second})
	t.Cleanup(w.Close)
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestNewAndFill(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := New(c, Float64, 100, nil)
		if err != nil {
			return err
		}
		if s.Len() != 100 {
			return fmt.Errorf("len %d", s.Len())
		}
		if s.LocalLen() != 25 {
			return fmt.Errorf("rank %d local len %d", c.Rank(), s.LocalLen())
		}
		s.FillFunc(func(g int) float64 { return float64(g) * 2 })
		full, err := s.Collect()
		if err != nil {
			return err
		}
		for i, v := range full {
			if v != float64(i)*2 {
				return fmt.Errorf("full[%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestAtIsLocationTransparent(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		s, err := New(c, Int32, 10, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) int32 { return int32(100 + g) })
		for i := 0; i < 10; i++ {
			v, err := s.At(i)
			if err != nil {
				return err
			}
			if v != int32(100+i) {
				return fmt.Errorf("rank %d At(%d) = %d", c.Rank(), i, v)
			}
		}
		_, err = s.At(10)
		if !errors.Is(err, ErrIndex) {
			return fmt.Errorf("At(10): %v", err)
		}
		_, err = s.At(-1)
		if !errors.Is(err, ErrIndex) {
			return fmt.Errorf("At(-1): %v", err)
		}
		return nil
	})
}

func TestSetThenAt(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := New(c, String, 8, nil)
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := s.Set(i, fmt.Sprintf("elem-%d", i)); err != nil {
				return err
			}
		}
		for i := 0; i < 8; i++ {
			v, err := s.At(i)
			if err != nil {
				return err
			}
			if v != fmt.Sprintf("elem-%d", i) {
				return fmt.Errorf("At(%d) = %q", i, v)
			}
		}
		if err := s.Set(99, "x"); !errors.Is(err, ErrIndex) {
			return fmt.Errorf("Set(99): %v", err)
		}
		return nil
	})
}

func TestFromLocalConversion(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		// Uneven contributions: rank r brings r+1 elements.
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank()*10 + i)
		}
		s, err := FromLocal(c, Float64, mine)
		if err != nil {
			return err
		}
		if s.Len() != 6 {
			return fmt.Errorf("len %d", s.Len())
		}
		// Adoption, not copy.
		mine[0] = -1
		if s.LocalData()[0] != -1 {
			return errors.New("FromLocal copied the data")
		}
		mine[0] = float64(c.Rank() * 10)
		full, err := s.Collect()
		if err != nil {
			return err
		}
		want := []float64{0, 10, 11, 20, 21, 22}
		for i := range want {
			if full[i] != want[i] {
				return fmt.Errorf("full = %v", full)
			}
		}
		return nil
	})
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, spec := range []dist.Spec{nil, dist.Proportions{P: []int{1, 3, 2, 2}}, dist.Cyclic{BlockSize: 3}} {
		spec := spec
		t.Run(fmt.Sprint(spec), func(t *testing.T) {
			run(t, 4, func(c *rts.Comm) error {
				s, err := New(c, Float64, 103, spec)
				if err != nil {
					return err
				}
				s.FillFunc(func(g int) float64 { return float64(g) })
				full, err := s.GatherTo(0)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					for i, v := range full {
						if v != float64(i) {
							return fmt.Errorf("gathered[%d] = %v", i, v)
						}
					}
					// Perturb and scatter back.
					for i := range full {
						full[i] = -full[i]
					}
				} else if full != nil {
					return errors.New("non-root received gather result")
				}
				if err := s.ScatterFrom(0, full); err != nil {
					return err
				}
				back, err := s.Collect()
				if err != nil {
					return err
				}
				for i, v := range back {
					if v != -float64(i) {
						return fmt.Errorf("scattered[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestRedistributeBlockToProportions(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := New(c, Float64, 1200, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return float64(g) })
		// The paper's Proportions(2,4,2,4) example.
		if err := s.Redistribute(dist.Proportions{P: []int{2, 4, 2, 4}}); err != nil {
			return err
		}
		wantCounts := []int{200, 400, 200, 400}
		if s.LocalLen() != wantCounts[c.Rank()] {
			return fmt.Errorf("rank %d has %d elements, want %d", c.Rank(), s.LocalLen(), wantCounts[c.Rank()])
		}
		full, err := s.Collect()
		if err != nil {
			return err
		}
		for i, v := range full {
			if v != float64(i) {
				return fmt.Errorf("after redistribute full[%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestRedistributeToCyclicAndBack(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		s, err := New(c, Int32, 50, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) int32 { return int32(g * g) })
		if err := s.Redistribute(dist.Cyclic{BlockSize: 2}); err != nil {
			return err
		}
		if err := s.Redistribute(dist.Block{}); err != nil {
			return err
		}
		full, err := s.Collect()
		if err != nil {
			return err
		}
		for i, v := range full {
			if v != int32(i*i) {
				return fmt.Errorf("full[%d] = %d", i, v)
			}
		}
		return nil
	})
}

func TestRedistributePreservesDataProperty(t *testing.T) {
	specs := []dist.Spec{
		dist.Block{},
		dist.Cyclic{BlockSize: 1},
		dist.Cyclic{BlockSize: 5},
		dist.Proportions{P: []int{5, 1, 1, 3}},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		length := rng.Intn(300)
		from := specs[rng.Intn(len(specs))]
		to := specs[rng.Intn(len(specs))]
		if p, ok := from.(dist.Proportions); ok && len(p.P) != 4 {
			return true
		}
		w := rts.NewWorld(4, rts.Options{RecvTimeout: 10 * time.Second})
		defer w.Close()
		ok := true
		err := w.Run(func(c *rts.Comm) error {
			s, err := New(c, Int64, length, from)
			if err != nil {
				return err
			}
			s.FillFunc(func(g int) int64 { return int64(g) * 7 })
			if err := s.Redistribute(to); err != nil {
				return err
			}
			full, err := s.Collect()
			if err != nil {
				return err
			}
			for i, v := range full {
				if v != int64(i)*7 {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSetLenShrink(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := New(c, Float64, 100, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return float64(g) })
		if err := s.SetLen(30); err != nil {
			return err
		}
		if s.Len() != 30 {
			return fmt.Errorf("len %d", s.Len())
		}
		full, err := s.Collect()
		if err != nil {
			return err
		}
		if len(full) != 30 {
			return fmt.Errorf("collected %d", len(full))
		}
		for i, v := range full {
			if v != float64(i) {
				return fmt.Errorf("full[%d] = %v", i, v)
			}
		}
		// Ranks 2,3 (owning [50,100)) must now be empty.
		if c.Rank() >= 2 && s.LocalLen() != 0 {
			return fmt.Errorf("rank %d still owns %d", c.Rank(), s.LocalLen())
		}
		return nil
	})
}

func TestSetLenGrowPaperSemantics(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := New(c, Float64, 40, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return float64(g) })
		// "new elements will be added to the ownership of the computing
		// thread which owned the last elements of the old sequence" — that
		// is rank 3 here.
		if err := s.SetLen(60); err != nil {
			return err
		}
		want := []int{10, 10, 10, 30}
		if s.LocalLen() != want[c.Rank()] {
			return fmt.Errorf("rank %d owns %d, want %d", c.Rank(), s.LocalLen(), want[c.Rank()])
		}
		full, err := s.Collect()
		if err != nil {
			return err
		}
		for i := 0; i < 40; i++ {
			if full[i] != float64(i) {
				return fmt.Errorf("data lost at %d: %v", i, full[i])
			}
		}
		for i := 40; i < 60; i++ {
			if full[i] != 0 {
				return fmt.Errorf("new element %d not zero: %v", i, full[i])
			}
		}
		return nil
	})
}

func TestSetLenGrowFromEmpty(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		s, err := New(c, Int32, 0, nil)
		if err != nil {
			return err
		}
		if err := s.SetLen(7); err != nil {
			return err
		}
		want := 0
		if c.Rank() == 0 {
			want = 7
		}
		if s.LocalLen() != want {
			return fmt.Errorf("rank %d owns %d", c.Rank(), s.LocalLen())
		}
		if err := s.SetLen(-1); err == nil {
			return errors.New("negative length accepted")
		}
		return nil
	})
}

func TestSetLenShrinkCyclic(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		s, err := New(c, Int32, 30, dist.Cyclic{BlockSize: 2})
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) int32 { return int32(g) })
		if err := s.SetLen(13); err != nil {
			return err
		}
		full, err := s.Collect()
		if err != nil {
			return err
		}
		if len(full) != 13 {
			return fmt.Errorf("collected %d", len(full))
		}
		for i, v := range full {
			if v != int32(i) {
				return fmt.Errorf("full[%d] = %d (%v)", i, v, full)
			}
		}
		return nil
	})
}

func TestSetLocalValidation(t *testing.T) {
	run(t, 2, func(c *rts.Comm) error {
		s, err := New(c, Float64, 10, nil)
		if err != nil {
			return err
		}
		if err := s.SetLocal(make([]float64, 3)); !errors.Is(err, ErrLayout) {
			return fmt.Errorf("wrong-size SetLocal: %v", err)
		}
		return s.SetLocal(make([]float64, 5))
	})
}

func TestNewWithLayout(t *testing.T) {
	run(t, 2, func(c *rts.Comm) error {
		good := dist.Layout{Length: 4, Ranks: 2, Intervals: [][]dist.Interval{{{Start: 0, Len: 2}}, {{Start: 2, Len: 2}}}}
		s, err := NewWithLayout(c, Float64, good)
		if err != nil {
			return err
		}
		if s.LocalLen() != 2 {
			return fmt.Errorf("local len %d", s.LocalLen())
		}
		bad := dist.Layout{Length: 4, Ranks: 3, Intervals: [][]dist.Interval{{{Start: 0, Len: 4}}, nil, nil}}
		if _, err := NewWithLayout(c, Float64, bad); !errors.Is(err, ErrLayout) {
			return fmt.Errorf("rank mismatch: %v", err)
		}
		broken := dist.Layout{Length: 4, Ranks: 2, Intervals: [][]dist.Interval{{{Start: 0, Len: 1}}, {{Start: 2, Len: 2}}}}
		if _, err := NewWithLayout(c, Float64, broken); err == nil {
			return errors.New("invalid layout accepted")
		}
		return nil
	})
}

func TestSingleRankSequence(t *testing.T) {
	run(t, 1, func(c *rts.Comm) error {
		s, err := New(c, Float64, 5, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return float64(g) })
		if s.LocalLen() != 5 {
			return fmt.Errorf("local %d", s.LocalLen())
		}
		v, err := s.At(3)
		if err != nil || v != 3 {
			return fmt.Errorf("At(3) = %v, %v", v, err)
		}
		if err := s.Redistribute(nil); err != nil {
			return err
		}
		return s.SetLen(2)
	})
}
