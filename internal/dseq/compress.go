package dseq

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/zcodec"
)

// Compressed chunk envelopes. A raw chunk payload starts with a 0/1
// byte-order octet and FailMarker with 0xFF; the envelopes claim the
// markers 0x02 (single block) and 0x03 (parallel sub-blocks), so every
// payload kind is distinguishable from its first byte and
// pre-compression receivers reject an envelope cleanly ("bad chunk
// order flag") instead of misdecoding it. Layouts:
//
//	octet 0x02        — single-block envelope marker
//	octet codec       — zcodec.ID of the block that follows
//	bytes             — the zcodec block (count-prefixed, order-free)
//
//	octet 0x03        — sub-block envelope marker
//	octet codec       — zcodec.ID of every sub-block
//	uvarint nsub      — sub-block count (1..maxSubBlocks)
//	nsub ×
//	  uvarint len     — encoded byte length of the sub-block
//	  bytes           — one zcodec block; counts concatenate in order
//
// Sub-blocks exist so chunk-sized payloads encode and decode across
// GOMAXPROCS workers instead of stalling the send loop on one core.
// The 0x03 envelope is emitted only when the peer advertised
// zcodec.MaskSubBlock in the compression handshake; peers that predate
// it never offer the bit, so they keep receiving 0x02 envelopes —
// negotiated, structural backward compatibility.
//
// Envelopes appear only on connections whose Ping/Pong handshake
// negotiated the codec, so the rejection path is a safety net, not a
// protocol step.
const (
	compMarker    = 0x02
	compMarkerSub = 0x03
	compHeaderLen = 2
)

// compMinBytes gates compression by raw wire size: below this many
// payload bytes the envelope overhead and codec setup cost more than
// the bytes saved. The bar is bytes, not elements — 16 int32s is 64 B,
// not worth a codec header even though 16 float64s (128 B) was the old
// element-count break-even.
const compMinBytes = 128

// Sub-block tuning. A chunk splits into at most GOMAXPROCS sub-blocks
// of at least subBlockMinElems elements each; chunks below
// 2*subBlockMinElems can't form two blocks and stay single-block.
// maxSubBlocks caps what a decoder accepts from the wire so a corrupt
// header can't force unbounded frame-table work.
const (
	subBlockMinElems = 4096
	maxSubBlocks     = 256
)

// subScratch pools the per-sub-block encode buffers: each worker
// encodes into pooled scratch, the results are spliced into the final
// envelope, and the scratch goes back for the next chunk. Pointers to
// slices, per the usual sync.Pool idiom, so Put doesn't allocate.
var subScratch = sync.Pool{New: func() any { return new([]byte) }}

func getSubScratch(n int) *[]byte {
	bp := subScratch.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	return bp
}

// IsCompressedChunk reports whether a chunk payload carries a
// compressed envelope (either framing).
func IsCompressedChunk(p []byte) bool {
	return len(p) >= compHeaderLen && (p[0] == compMarker || p[0] == compMarkerSub)
}

// CompressedChunkInfo returns the codec and element count of a
// compressed chunk payload (wiredump and diagnostics).
func CompressedChunkInfo(p []byte) (zcodec.ID, int, error) {
	if !IsCompressedChunk(p) {
		return zcodec.None, 0, fmt.Errorf("dseq: not a compressed chunk")
	}
	if p[0] == compMarkerSub {
		_, total, err := subChunkBlocks(p)
		if err != nil {
			return zcodec.None, 0, err
		}
		return zcodec.ID(p[1]), total, nil
	}
	n, err := zcodec.BlockCount(p[compHeaderLen:])
	if err != nil {
		return zcodec.None, 0, err
	}
	return zcodec.ID(p[1]), n, nil
}

// MarshalChunkZ renders elements like MarshalChunk but compresses with
// the codec's block encoder when mask admits it and compression wins:
// if the envelope would not be smaller than the raw element bytes (the
// incompressible-data case), the chunk falls back to the raw encoding,
// so a compressed connection never sends more bytes than a raw one.
// When the mask carries zcodec.MaskSubBlock and the chunk is large
// enough to split, the elements encode as parallel sub-blocks. Mask
// zero is exactly MarshalChunk.
func MarshalChunkZ[T any](c Codec[T], v []T, mask uint8) []byte {
	if mask&zcodec.MaskCodecs == 0 || c.CompressAppend == nil ||
		c.ElemWireSize*len(v) < compMinBytes || !zcodec.HasCodec(mask, c.CompressID) {
		return MarshalChunk(c, v)
	}
	h := marshalNS.Load()
	defer h.Done(h.Start())
	if mask&zcodec.MaskSubBlock != 0 && len(v) >= 2*subBlockMinElems {
		if p := marshalChunkSub(c, v); p != nil {
			return p
		}
	}
	buf := make([]byte, compHeaderLen, compHeaderLen+c.CompressBound(len(v)))
	buf[0] = compMarker
	buf[1] = byte(c.CompressID)
	buf = c.CompressAppend(buf, v)
	if len(buf) >= c.ElemWireSize*len(v) {
		return MarshalChunk(c, v)
	}
	return buf
}

// marshalChunkSub encodes v as a 0x03 sub-block envelope, fanning the
// block encoders across pfor workers. It returns nil when the split
// degenerates to one block (caller emits the single-block envelope) and
// the raw encoding when the result would not beat it.
func marshalChunkSub[T any](c Codec[T], v []T) []byte {
	nsub := len(v) / subBlockMinElems
	if w := runtime.GOMAXPROCS(0); nsub > w {
		nsub = w
	}
	if nsub > maxSubBlocks {
		nsub = maxSubBlocks
	}
	if nsub < 2 {
		return nil
	}
	per := (len(v) + nsub - 1) / nsub
	scratch := make([]*[]byte, nsub)
	pfor(nsub, func(i int) {
		lo := i * per
		hi := lo + per
		if hi > len(v) {
			hi = len(v)
		}
		bp := getSubScratch(c.CompressBound(hi - lo))
		*bp = c.CompressAppend((*bp)[:0], v[lo:hi])
		scratch[i] = bp
	})
	release := func() {
		for _, bp := range scratch {
			subScratch.Put(bp)
		}
	}
	total := compHeaderLen + uvarintLen(uint64(nsub))
	for _, bp := range scratch {
		total += uvarintLen(uint64(len(*bp))) + len(*bp)
	}
	if total >= c.ElemWireSize*len(v) {
		release()
		return MarshalChunk(c, v)
	}
	out := make([]byte, 0, total)
	out = append(out, compMarkerSub, byte(c.CompressID))
	out = binary.AppendUvarint(out, uint64(nsub))
	for _, bp := range scratch {
		out = binary.AppendUvarint(out, uint64(len(*bp)))
		out = append(out, *bp...)
	}
	release()
	return out
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// subBlock locates one block inside a 0x03 envelope: byte range
// relative to the envelope body, and the element range it decodes to.
type subBlock struct {
	off, size      int
	elemOff, elems int
}

// subChunkBlocks parses a sub-block envelope's frame table, returning
// the block layout and total element count. It validates every length
// against the payload so a corrupt table errors instead of panicking,
// and rejects trailing bytes.
func subChunkBlocks(p []byte) ([]subBlock, int, error) {
	body := p[compHeaderLen:]
	nsub64, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, 0, zcodec.ErrTruncated
	}
	if nsub64 == 0 || nsub64 > maxSubBlocks {
		return nil, 0, zcodec.ErrCorrupt
	}
	nsub := int(nsub64)
	blocks := make([]subBlock, nsub)
	pos, elemOff := k, 0
	for i := 0; i < nsub; i++ {
		size64, k2 := binary.Uvarint(body[pos:])
		if k2 <= 0 {
			return nil, 0, zcodec.ErrTruncated
		}
		pos += k2
		if size64 > uint64(len(body)-pos) {
			return nil, 0, zcodec.ErrTruncated
		}
		size := int(size64)
		n, err := zcodec.BlockCount(body[pos : pos+size])
		if err != nil {
			return nil, 0, err
		}
		if n > zcodec.MaxBlockElems-elemOff {
			return nil, 0, zcodec.ErrTooLarge
		}
		blocks[i] = subBlock{off: pos, size: size, elemOff: elemOff, elems: n}
		pos += size
		elemOff += n
	}
	if pos != len(body) {
		return nil, 0, zcodec.ErrCorrupt
	}
	return blocks, elemOff, nil
}

// decompressSubInto decodes a 0x03 envelope into dst across pfor
// workers, returning the element count.
func decompressSubInto[T any](c Codec[T], payload []byte, dst []T) (int, error) {
	if c.DecompressInto == nil || zcodec.ID(payload[1]) != c.CompressID {
		return 0, fmt.Errorf("dseq: %s chunk compressed with unexpected codec %v", c.Name, zcodec.ID(payload[1]))
	}
	blocks, total, err := subChunkBlocks(payload)
	if err != nil {
		return 0, err
	}
	if total > len(dst) {
		return 0, fmt.Errorf("dseq: %s chunk of %d exceeds destination %d", c.Name, total, len(dst))
	}
	body := payload[compHeaderLen:]
	errs := make([]error, len(blocks))
	pfor(len(blocks), func(i int) {
		b := blocks[i]
		errs[i] = c.DecompressInto(dst[b.elemOff:b.elemOff+b.elems], body[b.off:b.off+b.size])
	})
	for _, e := range errs {
		if e != nil {
			return 0, e
		}
	}
	return total, nil
}

// decompressChunk decodes a compressed envelope, allocating the result.
func decompressChunk[T any](c Codec[T], payload []byte) ([]T, error) {
	if payload[0] == compMarkerSub {
		_, total, err := subChunkBlocks(payload)
		if err != nil {
			return nil, err
		}
		dst := make([]T, total)
		if _, err := decompressSubInto(c, payload, dst); err != nil {
			return nil, err
		}
		return dst, nil
	}
	id, _, err := CompressedChunkInfo(payload)
	if err != nil {
		return nil, err
	}
	if c.Decompress == nil || id != c.CompressID {
		return nil, fmt.Errorf("dseq: %s chunk compressed with unexpected codec %v", c.Name, id)
	}
	return c.Decompress(payload[compHeaderLen:], zcodec.MaxBlockElems)
}

// decompressChunkInto decodes a compressed envelope into dst, returning
// the element count, mirroring UnmarshalChunkInto's contract.
func decompressChunkInto[T any](c Codec[T], payload []byte, dst []T) (int, error) {
	if payload[0] == compMarkerSub {
		return decompressSubInto(c, payload, dst)
	}
	id, n, err := CompressedChunkInfo(payload)
	if err != nil {
		return 0, err
	}
	if c.DecompressInto == nil || id != c.CompressID {
		return 0, fmt.Errorf("dseq: %s chunk compressed with unexpected codec %v", c.Name, id)
	}
	if n > len(dst) {
		return 0, fmt.Errorf("dseq: %s chunk of %d exceeds destination %d", c.Name, n, len(dst))
	}
	if err := c.DecompressInto(dst[:n], payload[compHeaderLen:]); err != nil {
		return 0, err
	}
	return n, nil
}
