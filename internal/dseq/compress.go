package dseq

import (
	"fmt"

	"repro/internal/zcodec"
)

// Compressed chunk envelope. A raw chunk payload starts with a 0/1
// byte-order octet and FailMarker with 0xFF; the envelope claims marker
// 0x02, so the three payload kinds are distinguishable from their first
// byte and pre-compression receivers reject an envelope cleanly ("bad
// chunk order flag") instead of misdecoding it. Layout:
//
//	octet 0x02        — compressed-envelope marker
//	octet codec       — zcodec.ID of the block that follows
//	bytes             — the zcodec block (count-prefixed, order-free)
//
// Envelopes appear only on connections whose Ping/Pong handshake
// negotiated the codec, so the rejection path is a safety net, not a
// protocol step.
const (
	compMarker    = 0x02
	compHeaderLen = 2
)

// compMinElems gates compression: below this many elements the
// envelope overhead and codec setup cost more than the bytes saved.
const compMinElems = 16

// IsCompressedChunk reports whether a chunk payload carries the
// compressed envelope.
func IsCompressedChunk(p []byte) bool {
	return len(p) >= compHeaderLen && p[0] == compMarker
}

// CompressedChunkInfo returns the codec and element count of a
// compressed chunk payload (wiredump and diagnostics).
func CompressedChunkInfo(p []byte) (zcodec.ID, int, error) {
	if !IsCompressedChunk(p) {
		return zcodec.None, 0, fmt.Errorf("dseq: not a compressed chunk")
	}
	n, err := zcodec.BlockCount(p[compHeaderLen:])
	if err != nil {
		return zcodec.None, 0, err
	}
	return zcodec.ID(p[1]), n, nil
}

// MarshalChunkZ renders elements like MarshalChunk but compresses with
// the codec's block encoder when mask admits it and compression wins:
// if the envelope would not be smaller than the raw element bytes (the
// incompressible-data case), the chunk falls back to the raw encoding,
// so a compressed connection never sends more bytes than a raw one.
// Mask zero is exactly MarshalChunk.
func MarshalChunkZ[T any](c Codec[T], v []T, mask uint8) []byte {
	if mask == 0 || c.CompressAppend == nil || len(v) < compMinElems ||
		!zcodec.HasCodec(mask, c.CompressID) {
		return MarshalChunk(c, v)
	}
	h := marshalNS.Load()
	defer h.Done(h.Start())
	buf := make([]byte, compHeaderLen, compHeaderLen+c.CompressBound(len(v)))
	buf[0] = compMarker
	buf[1] = byte(c.CompressID)
	buf = c.CompressAppend(buf, v)
	if len(buf) >= c.ElemWireSize*len(v) {
		return MarshalChunk(c, v)
	}
	return buf
}

// decompressChunk decodes a compressed envelope, allocating the result.
func decompressChunk[T any](c Codec[T], payload []byte) ([]T, error) {
	id, _, err := CompressedChunkInfo(payload)
	if err != nil {
		return nil, err
	}
	if c.Decompress == nil || id != c.CompressID {
		return nil, fmt.Errorf("dseq: %s chunk compressed with unexpected codec %v", c.Name, id)
	}
	return c.Decompress(payload[compHeaderLen:], zcodec.MaxBlockElems)
}

// decompressChunkInto decodes a compressed envelope into dst, returning
// the element count, mirroring UnmarshalChunkInto's contract.
func decompressChunkInto[T any](c Codec[T], payload []byte, dst []T) (int, error) {
	id, n, err := CompressedChunkInfo(payload)
	if err != nil {
		return 0, err
	}
	if c.DecompressInto == nil || id != c.CompressID {
		return 0, fmt.Errorf("dseq: %s chunk compressed with unexpected codec %v", c.Name, id)
	}
	if n > len(dst) {
		return 0, fmt.Errorf("dseq: %s chunk of %d exceeds destination %d", c.Name, n, len(dst))
	}
	if err := c.DecompressInto(dst[:n], payload[compHeaderLen:]); err != nil {
		return 0, err
	}
	return n, nil
}
