package dseq

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/rts"
)

// chunkSchedule yields the deterministic chunk ranges the transfer engine
// walks: [k*ce, min((k+1)*ce, length)).
func chunkSchedule(length, ce int) [][2]int {
	var out [][2]int
	for start := 0; start < length; start += ce {
		n := min(ce, length-start)
		out = append(out, [2]int{start, n})
	}
	return out
}

// TestGatherMarshalRangeMatchesWholeGather streams a sequence chunk by chunk
// on a duplicated (lane) communicator and checks the concatenated chunks
// decode to exactly what GatherTo produces, across chunk sizes that land
// inside one rank's block, on block boundaries, and across them.
func TestGatherMarshalRangeMatchesWholeGather(t *testing.T) {
	for _, ce := range []int{1, 7, 25, 30, 100, 128} {
		t.Run(fmt.Sprintf("chunk=%d", ce), func(t *testing.T) {
			run(t, 4, func(c *rts.Comm) error {
				s, err := New(c, Float64, 100, nil)
				if err != nil {
					return err
				}
				s.FillFunc(func(g int) float64 { return float64(g) * 1.5 })
				lane, err := c.Dup()
				if err != nil {
					return err
				}
				const root = 1
				got := make([]float64, 0, 100)
				for _, ch := range chunkSchedule(100, ce) {
					payload, err := s.GatherMarshalRange(lane, root, ch[0], ch[1])
					if err != nil {
						return err
					}
					if c.Rank() != root {
						if payload != nil {
							return fmt.Errorf("rank %d received a payload", c.Rank())
						}
						continue
					}
					vals, err := UnmarshalChunk(s.Codec(), payload)
					if err != nil {
						return err
					}
					if len(vals) != ch[1] {
						return fmt.Errorf("chunk [%d,+%d) decoded %d values", ch[0], ch[1], len(vals))
					}
					got = append(got, vals...)
				}
				want, err := s.GatherTo(root) // collective: every rank calls it
				if err != nil {
					return err
				}
				if c.Rank() != root {
					return nil
				}
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("chunked[%d] = %v, want %v", i, got[i], want[i])
					}
				}
				return nil
			})
		})
	}
}

// TestScatterUnmarshalRangeMatchesWholeScatter streams new contents into a
// sequence chunk by chunk and checks every rank ends up with exactly what a
// whole-sequence ScatterFrom would have stored.
func TestScatterUnmarshalRangeMatchesWholeScatter(t *testing.T) {
	for _, ce := range []int{1, 7, 25, 30, 100, 128} {
		t.Run(fmt.Sprintf("chunk=%d", ce), func(t *testing.T) {
			run(t, 4, func(c *rts.Comm) error {
				s, err := New(c, Int32, 100, nil)
				if err != nil {
					return err
				}
				lane, err := c.Dup()
				if err != nil {
					return err
				}
				const root = 2
				for _, ch := range chunkSchedule(100, ce) {
					var payload []byte
					if c.Rank() == root {
						vals := make([]int32, ch[1])
						for i := range vals {
							vals[i] = int32(1000 + ch[0] + i)
						}
						payload = MarshalChunk(s.Codec(), vals)
					}
					if err := s.ScatterUnmarshalRange(lane, root, ch[0], ch[1], payload); err != nil {
						return err
					}
				}
				full, err := s.Collect()
				if err != nil {
					return err
				}
				for i, v := range full {
					if v != int32(1000+i) {
						return fmt.Errorf("rank %d: full[%d] = %d", c.Rank(), i, v)
					}
				}
				return nil
			})
		})
	}
}

// TestStreamRangeCyclicLayout exercises the multi-segment paths: with a
// cyclic layout every sizeable chunk spans several ranks and a rank's share
// of one chunk spans several intervals.
func TestStreamRangeCyclicLayout(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		const length = 60
		s, err := New(c, Int32, length, dist.Cyclic{BlockSize: 4})
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) int32 { return int32(g) })
		const root = 0
		// Gather in chunks of 17 (straddles blocks and ranks), then scatter
		// back doubled values through the same schedule.
		for _, ch := range chunkSchedule(length, 17) {
			payload, err := s.GatherMarshalRange(nil, root, ch[0], ch[1])
			if err != nil {
				return err
			}
			if c.Rank() != root {
				continue
			}
			vals, err := UnmarshalChunk(s.Codec(), payload)
			if err != nil {
				return err
			}
			for i, v := range vals {
				if v != int32(ch[0]+i) {
					return fmt.Errorf("chunk [%d,+%d)[%d] = %d", ch[0], ch[1], i, v)
				}
			}
		}
		for _, ch := range chunkSchedule(length, 17) {
			var payload []byte
			if c.Rank() == root {
				vals := make([]int32, ch[1])
				for i := range vals {
					vals[i] = int32(2 * (ch[0] + i))
				}
				payload = MarshalChunk(s.Codec(), vals)
			}
			if err := s.ScatterUnmarshalRange(nil, root, ch[0], ch[1], payload); err != nil {
				return err
			}
		}
		off := 0
		for _, iv := range s.Layout().Intervals[c.Rank()] {
			for j := 0; j < iv.Len; j++ {
				if got := s.LocalData()[off+j]; got != int32(2*(iv.Start+j)) {
					return fmt.Errorf("rank %d local[%d] = %d, want %d", c.Rank(), off+j, got, 2*(iv.Start+j))
				}
			}
			off += iv.Len
		}
		return nil
	})
}

// TestStreamRangeParallelThreshold drives a range big enough to cross the
// parallel (un)marshalling gate so the pfor paths run under the race
// detector with real collective traffic.
func TestStreamRangeParallelThreshold(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		length := 4 * parallelMinElems
		s, err := New(c, Float64, length, nil)
		if err != nil {
			return err
		}
		s.FillFunc(func(g int) float64 { return float64(g) })
		const root = 0
		// One chunk spanning all four ranks forces root to assemble and
		// split in parallel.
		payload, err := s.GatherMarshalRange(nil, root, 0, length)
		if err != nil {
			return err
		}
		if c.Rank() == root {
			vals, err := UnmarshalChunk(s.Codec(), payload)
			if err != nil {
				return err
			}
			for i := 0; i < length; i += parallelMinElems / 2 {
				if vals[i] != float64(i) {
					return fmt.Errorf("vals[%d] = %v", i, vals[i])
				}
			}
		}
		return s.ScatterUnmarshalRange(nil, root, 0, length, payload)
	})
}

// TestScatterRangeFailMarker checks the poisoned-chunk contract: feeding
// FailMarker keeps the collective schedule aligned, owners of the range get
// ErrChunkFailed, and the next chunk still works.
func TestScatterRangeFailMarker(t *testing.T) {
	run(t, 4, func(c *rts.Comm) error {
		s, err := New(c, Int32, 100, nil)
		if err != nil {
			return err
		}
		const root = 0
		// Chunk [25, 75) is owned by ranks 1 and 2; poison it.
		var payload []byte
		if c.Rank() == root {
			payload = FailMarker
		}
		err = s.ScatterUnmarshalRange(nil, root, 25, 50, payload)
		switch c.Rank() {
		case 1, 2, root: // owners, plus root which fed the marker
			if !errors.Is(err, ErrChunkFailed) {
				return fmt.Errorf("rank %d: poisoned chunk gave %v", c.Rank(), err)
			}
		default:
			if err != nil {
				return fmt.Errorf("rank %d: non-owner saw %v", c.Rank(), err)
			}
		}
		// The schedule must survive: the following chunk transfers normally.
		if c.Rank() == root {
			vals := make([]int32, 25)
			for i := range vals {
				vals[i] = int32(i)
			}
			payload = MarshalChunk(s.Codec(), vals)
		}
		if err := s.ScatterUnmarshalRange(nil, root, 75, 25, payload); err != nil {
			return err
		}
		if got := s.Layout().Count(c.Rank()); got != 25 {
			return fmt.Errorf("unexpected layout count %d", got)
		}
		if c.Rank() == 3 {
			for i, v := range s.LocalData() {
				if v != int32(i) {
					return fmt.Errorf("local[%d] = %d after recovery", i, v)
				}
			}
		}
		return nil
	})
}

// TestStreamRangeValidation pins the deterministic pre-communication
// rejections: bad ranges and mismatched communicators fail at every rank
// without any traffic (a hang here would time the test out).
func TestStreamRangeValidation(t *testing.T) {
	run(t, 2, func(c *rts.Comm) error {
		s, err := New(c, Int32, 10, nil)
		if err != nil {
			return err
		}
		for _, bad := range [][2]int{{-1, 5}, {0, -2}, {8, 3}} {
			if _, err := s.GatherMarshalRange(nil, 0, bad[0], bad[1]); !errors.Is(err, ErrIndex) {
				return fmt.Errorf("gather range %v accepted: %v", bad, err)
			}
			if err := s.ScatterUnmarshalRange(nil, 0, bad[0], bad[1], nil); !errors.Is(err, ErrIndex) {
				return fmt.Errorf("scatter range %v accepted: %v", bad, err)
			}
		}
		if _, err := s.GatherMarshalRange(nil, 5, 0, 4); !errors.Is(err, ErrIndex) {
			return fmt.Errorf("bad root accepted: %v", err)
		}
		// A zero-length range is valid, communication-free, and yields a
		// well-formed empty chunk at root (whole-sequence transfers of empty
		// sequences need one).
		payload, err := s.GatherMarshalRange(nil, 0, 0, 0)
		if err != nil {
			return fmt.Errorf("empty range: %v", err)
		}
		if c.Rank() == 0 {
			vals, err := UnmarshalChunk(s.Codec(), payload)
			if err != nil || len(vals) != 0 {
				return fmt.Errorf("empty chunk decoded to %d vals, err %v", len(vals), err)
			}
		}
		if err := s.ScatterUnmarshalRange(nil, 0, 0, 0, payload); err != nil {
			return fmt.Errorf("empty scatter: %v", err)
		}
		return nil
	})
}

// TestCommDups checks the single-round lane allocation: all ranks agree on
// every duplicated context and the lanes are isolated from each other.
func TestCommDups(t *testing.T) {
	run(t, 3, func(c *rts.Comm) error {
		lanes, err := c.Dups(4)
		if err != nil {
			return err
		}
		if len(lanes) != 4 {
			return fmt.Errorf("got %d lanes", len(lanes))
		}
		seen := map[int]bool{c.Context(): true}
		for i, l := range lanes {
			if l.Rank() != c.Rank() || l.Size() != c.Size() {
				return fmt.Errorf("lane %d shape %d/%d", i, l.Rank(), l.Size())
			}
			if seen[l.Context()] {
				return fmt.Errorf("lane %d reuses context %d", i, l.Context())
			}
			seen[l.Context()] = true
		}
		// Traffic on one lane must not be visible on another: send on lane 0,
		// probe on lane 1, receive on lane 0.
		if c.Rank() == 0 {
			if err := lanes[0].Send(1, 7, []byte("lane0")); err != nil {
				return err
			}
		}
		if c.Rank() == 1 {
			b, st, err := lanes[0].Recv(0, 7)
			if err != nil {
				return err
			}
			if string(b) != "lane0" || st.Source != 0 {
				return fmt.Errorf("lane 0 delivered %q from %d", b, st.Source)
			}
			if _, ok := lanes[1].Probe(rts.AnySource, rts.AnyTag); ok {
				return fmt.Errorf("lane 1 saw lane 0 traffic")
			}
		}
		return c.Barrier()
	})
}
