package dseq

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

func chunkRoundTrip[T comparable](t *testing.T, c Codec[T], v []T) {
	t.Helper()
	got, err := UnmarshalChunk(c, MarshalChunk(c, v))
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	if len(got) != len(v) {
		t.Fatalf("%s: %d elements, want %d", c.Name, len(got), len(v))
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("%s[%d]: %v != %v", c.Name, i, got[i], v[i])
		}
	}
}

func TestCodecRoundTrips(t *testing.T) {
	chunkRoundTrip(t, Float64, []float64{0, 1.5, -2.25, math.MaxFloat64, math.SmallestNonzeroFloat64})
	chunkRoundTrip(t, Float64, nil)
	chunkRoundTrip(t, Float32, []float32{1, -1, 0.5})
	chunkRoundTrip(t, Int32, []int32{0, -1, math.MaxInt32, math.MinInt32})
	chunkRoundTrip(t, Int64, []int64{0, -1, math.MaxInt64, math.MinInt64})
	chunkRoundTrip(t, Octet, []byte{0, 127, 255})
	chunkRoundTrip(t, Bool, []bool{true, false, true})
	chunkRoundTrip(t, String, []string{"", "hello", "with spaces and ünïcode"})
}

func TestCodecProperties(t *testing.T) {
	if err := quick.Check(func(v []float64) bool {
		got, err := UnmarshalChunk(Float64, MarshalChunk(Float64, v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v []int64) bool {
		got, err := UnmarshalChunk(Int64, MarshalChunk(Int64, v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalChunkErrors(t *testing.T) {
	if _, err := UnmarshalChunk(Float64, nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if _, err := UnmarshalChunk(Float64, []byte{9, 0, 0}); err == nil {
		t.Fatal("bad flag accepted")
	}
	good := MarshalChunk(Float64, []float64{1, 2, 3})
	for cut := 1; cut < len(good); cut++ {
		if _, err := UnmarshalChunk(Float64, good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

type point struct {
	X, Y int32
	Tag  string
}

func TestStructCodec(t *testing.T) {
	pc := StructCodec("point",
		func(e *cdr.Encoder, p point) {
			e.WriteLong(p.X)
			e.WriteLong(p.Y)
			e.WriteString(p.Tag)
		},
		func(d *cdr.Decoder) (point, error) {
			var p point
			var err error
			if p.X, err = d.ReadLong(); err != nil {
				return p, err
			}
			if p.Y, err = d.ReadLong(); err != nil {
				return p, err
			}
			p.Tag, err = d.ReadString()
			return p, err
		})
	in := []point{{1, 2, "a"}, {-5, 7, "long tag here"}, {0, 0, ""}}
	got, err := UnmarshalChunk(pc, MarshalChunk(pc, in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("point %d: %+v != %+v", i, got[i], in[i])
		}
	}
	if !strings.Contains(pc.Name, "point") {
		t.Fatal("codec name")
	}
}

func TestCodecHugeCountDoesNotPreallocate(t *testing.T) {
	// A corrupt count must not cause a giant allocation before the decode
	// fails on truncation.
	e := cdr.NewEncoder(cdr.NativeOrder)
	e.WriteOctet(byte(cdr.NativeOrder))
	e.WriteULong(0xFFFFFF)
	if _, err := UnmarshalChunk(Int64, e.Bytes()); err == nil {
		t.Fatal("truncated huge sequence accepted")
	}
}
