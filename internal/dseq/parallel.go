package dseq

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelMinElems gates the parallel (un)marshalling paths: below this many
// elements the goroutine fan-out costs more than the codec work it divides.
// The threshold is in elements, not bytes, because the codecs' cost scales
// with element count (fixed-width elements memcpy; variable-width ones walk
// each element either way).
const parallelMinElems = 1 << 15

// pfor runs f(i) for every i in [0, n) across up to GOMAXPROCS goroutines.
// Work is claimed from a shared atomic counter, so uneven iteration costs
// (one rank owning most of a range, say) balance themselves instead of
// stalling on a static partition. f must be safe to call concurrently for
// distinct i; pfor returns only after every call has finished. Small n runs
// inline on the caller's goroutine.
func pfor(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	// The caller's goroutine is worker zero, so the common two-core case
	// spawns a single goroutine.
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		f(i)
	}
	wg.Wait()
}
