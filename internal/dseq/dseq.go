// Package dseq implements the PARDIS distributed sequence (paper §2.2): a
// generalization of the CORBA sequence whose elements are distributed over
// the address spaces of an SPMD application's computing threads according to
// a distribution template.
//
// A Seq is an SPMD object in the small: every computing thread holds one
// *Seq value for the same logical sequence, created collectively. Methods
// marked "collective" must be invoked by all threads in the same order —
// this is the mapping the paper describes ("it is assumed that most
// invocations of the methods on the sequence will be SPMD-style, that is
// they will be called collectively by all the computing threads"). Local
// access (LocalData, LocalLen) is thread-private, matching the paper's
// intent that the sequence is "a container for data", convertible to and
// from the programmer's own memory management scheme.
package dseq

import (
	"errors"
	"fmt"

	"repro/internal/cdr"
	"repro/internal/dist"
	"repro/internal/rts"
)

// Errors reported by this package.
var (
	ErrIndex      = errors.New("dseq: index out of range")
	ErrLayout     = errors.New("dseq: layout inconsistency")
	ErrCollective = errors.New("dseq: collective call disagreement")
)

// Seq is one computing thread's view of a distributed sequence of T.
type Seq[T any] struct {
	comm   *rts.Comm
	codec  Codec[T]
	spec   dist.Spec
	layout dist.Layout
	local  []T
}

// New collectively creates a zero-valued sequence of the given length
// distributed per spec (nil means the default uniform blockwise
// distribution, as the paper specifies for unset templates). All threads
// must pass equal arguments.
func New[T any](comm *rts.Comm, codec Codec[T], length int, spec dist.Spec) (*Seq[T], error) {
	if spec == nil {
		spec = dist.Block{}
	}
	layout, err := spec.Layout(length, comm.Size())
	if err != nil {
		return nil, err
	}
	return &Seq[T]{
		comm:   comm,
		codec:  codec,
		spec:   spec,
		layout: layout,
		local:  make([]T, layout.Count(comm.Rank())),
	}, nil
}

// NewWithLayout collectively creates a sequence with an explicit layout
// (used by the transfer engines, whose layouts arrive in request headers).
func NewWithLayout[T any](comm *rts.Comm, codec Codec[T], layout dist.Layout) (*Seq[T], error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if layout.Ranks != comm.Size() {
		return nil, fmt.Errorf("%w: layout for %d ranks in a %d-rank world", ErrLayout, layout.Ranks, comm.Size())
	}
	return &Seq[T]{
		comm:   comm,
		codec:  codec,
		spec:   nil,
		layout: layout,
		local:  make([]T, layout.Count(comm.Rank())),
	}, nil
}

// FromLocal is the conversion constructor: each thread contributes its own
// slice, adopted without copying ("allows the programmer to create a
// sequence based on his or her memory management scheme"). The resulting
// layout assigns contiguous blocks in rank order sized by each contribution.
// Collective.
func FromLocal[T any](comm *rts.Comm, codec Codec[T], local []T) (*Seq[T], error) {
	// Exchange local lengths to agree on the layout.
	lens, err := comm.Allgather(rts.Int64sToBytes([]int64{int64(len(local))}))
	if err != nil {
		return nil, err
	}
	ivs := make([][]dist.Interval, comm.Size())
	off := 0
	for r, b := range lens {
		v, err := rts.BytesToInt64s(b)
		if err != nil {
			return nil, err
		}
		n := int(v[0])
		if n > 0 {
			ivs[r] = []dist.Interval{{Start: off, Len: n}}
		}
		off += n
	}
	layout := dist.Layout{Length: off, Ranks: comm.Size(), Intervals: ivs}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	return &Seq[T]{comm: comm, codec: codec, layout: layout, local: local}, nil
}

// Comm returns the communicator the sequence lives on.
func (s *Seq[T]) Comm() *rts.Comm { return s.comm }

// Codec returns the element codec.
func (s *Seq[T]) Codec() Codec[T] { return s.codec }

// Len returns the global length.
func (s *Seq[T]) Len() int { return s.layout.Length }

// Layout returns the current layout.
func (s *Seq[T]) Layout() dist.Layout { return s.layout }

// LocalData returns this thread's elements without copying; mutations are
// visible to the sequence ("local access operations can be used to convert a
// sequence to the programmer's memory management scheme").
func (s *Seq[T]) LocalData() []T { return s.local }

// LocalLen returns the number of locally owned elements.
func (s *Seq[T]) LocalLen() int { return len(s.local) }

// SetLocal replaces this thread's local storage; the slice length must
// match the layout's count for this rank.
func (s *Seq[T]) SetLocal(data []T) error {
	if len(data) != s.layout.Count(s.comm.Rank()) {
		return fmt.Errorf("%w: %d elements for a rank owning %d", ErrLayout, len(data), s.layout.Count(s.comm.Rank()))
	}
	s.local = data
	return nil
}

// At returns element i with location transparency (the paper's operator[]).
// Collective: the owner broadcasts the value to all threads.
func (s *Seq[T]) At(i int) (T, error) {
	var zero T
	owner, localIdx, err := s.layout.Owner(i)
	if err != nil {
		return zero, fmt.Errorf("%w: %d (len %d)", ErrIndex, i, s.layout.Length)
	}
	var payload []byte
	if s.comm.Rank() == owner {
		payload = MarshalChunk(s.codec, []T{s.local[localIdx]})
	}
	payload, err = s.comm.Bcast(owner, payload)
	if err != nil {
		return zero, err
	}
	vals, err := UnmarshalChunk(s.codec, payload)
	if err != nil {
		return zero, err
	}
	if len(vals) != 1 {
		return zero, fmt.Errorf("%w: broadcast %d values for one element", ErrLayout, len(vals))
	}
	return vals[0], nil
}

// Set stores v at global index i. Collective (all threads must call; only
// the owner writes).
func (s *Seq[T]) Set(i int, v T) error {
	owner, localIdx, err := s.layout.Owner(i)
	if err != nil {
		return fmt.Errorf("%w: %d (len %d)", ErrIndex, i, s.layout.Length)
	}
	if s.comm.Rank() == owner {
		s.local[localIdx] = v
	}
	// Order Set against subsequent collective reads.
	return s.comm.Barrier()
}

// FillFunc sets every locally owned element to f(globalIndex). Local, not
// collective.
func (s *Seq[T]) FillFunc(f func(global int) T) {
	off := 0
	for _, iv := range s.layout.Intervals[s.comm.Rank()] {
		for j := 0; j < iv.Len; j++ {
			s.local[off+j] = f(iv.Start + j)
		}
		off += iv.Len
	}
}

// Collect gathers the full sequence in global order at every thread.
// Collective; intended for results inspection and tests, not the transfer
// hot path.
func (s *Seq[T]) Collect() ([]T, error) {
	chunks, err := s.comm.Allgather(MarshalChunk(s.codec, s.local))
	if err != nil {
		return nil, err
	}
	full := make([]T, s.layout.Length)
	for r, chunk := range chunks {
		vals, err := UnmarshalChunk(s.codec, chunk)
		if err != nil {
			return nil, err
		}
		if len(vals) != s.layout.Count(r) {
			return nil, fmt.Errorf("%w: rank %d sent %d of %d elements", ErrLayout, r, len(vals), s.layout.Count(r))
		}
		off := 0
		for _, iv := range s.layout.Intervals[r] {
			copy(full[iv.Start:iv.End()], vals[off:off+iv.Len])
			off += iv.Len
		}
	}
	return full, nil
}

// GatherTo collects the full sequence in global order at root only
// (the centralized transfer method's gather step). Collective; non-root
// threads receive nil.
func (s *Seq[T]) GatherTo(root int) ([]T, error) {
	chunks, err := s.comm.Gather(root, MarshalChunk(s.codec, s.local))
	if err != nil {
		return nil, err
	}
	if s.comm.Rank() != root {
		return nil, nil
	}
	full := make([]T, s.layout.Length)
	merge := func(r int) error {
		want := s.layout.Count(r)
		ivs := s.layout.Intervals[r]
		if len(ivs) == 1 {
			// Contiguous ownership (the common Block case): decode straight
			// into the rank's slot of full, skipping the staging slice.
			iv := ivs[0]
			n, err := UnmarshalChunkInto(s.codec, chunks[r], full[iv.Start:iv.End()])
			if err != nil {
				return err
			}
			if n != want {
				return fmt.Errorf("%w: rank %d sent %d of %d elements", ErrLayout, r, n, want)
			}
			return nil
		}
		vals, err := UnmarshalChunk(s.codec, chunks[r])
		if err != nil {
			return err
		}
		if len(vals) != want {
			return fmt.Errorf("%w: rank %d sent %d of %d elements", ErrLayout, r, len(vals), want)
		}
		off := 0
		for _, iv := range ivs {
			copy(full[iv.Start:iv.End()], vals[off:off+iv.Len])
			off += iv.Len
		}
		return nil
	}
	// Ranks write disjoint regions of full, so large gathers unmarshal every
	// rank's chunk in parallel.
	errs := make([]error, len(chunks))
	if s.layout.Length >= parallelMinElems && len(chunks) > 1 {
		pfor(len(chunks), func(r int) { errs[r] = merge(r) })
	} else {
		for r := range chunks {
			errs[r] = merge(r)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return full, nil
}

// ScatterFrom distributes full (significant at root only) into the threads'
// local storage per the current layout (the centralized method's scatter
// step). Collective.
func (s *Seq[T]) ScatterFrom(root int, full []T) error {
	var parts [][]byte
	if s.comm.Rank() == root {
		if len(full) != s.layout.Length {
			return fmt.Errorf("%w: scattering %d elements into a %d-element sequence", ErrLayout, len(full), s.layout.Length)
		}
		parts = make([][]byte, s.comm.Size())
		build := func(r int) {
			ivs := s.layout.Intervals[r]
			if len(ivs) == 1 {
				// Contiguous assignment (the common Block case): marshal the
				// rank's chunk straight out of full — MarshalChunk copies, so
				// no staging slice is needed.
				iv := ivs[0]
				parts[r] = MarshalChunk(s.codec, full[iv.Start:iv.End()])
				return
			}
			vals := make([]T, 0, s.layout.Count(r))
			for _, iv := range ivs {
				vals = append(vals, full[iv.Start:iv.End()]...)
			}
			parts[r] = MarshalChunk(s.codec, vals)
		}
		// Each rank's part marshals independently out of full, so large
		// scatters render them in parallel.
		if s.layout.Length >= parallelMinElems && s.comm.Size() > 1 {
			pfor(s.comm.Size(), build)
		} else {
			for r := 0; r < s.comm.Size(); r++ {
				build(r)
			}
		}
	}
	chunk, err := s.comm.Scatter(root, parts)
	if err != nil {
		return err
	}
	if want := s.layout.Count(s.comm.Rank()); len(s.local) == want {
		// Local storage is already sized for this layout: decode in place
		// and skip the intermediate slice SetLocal would adopt.
		n, err := UnmarshalChunkInto(s.codec, chunk, s.local)
		if err != nil {
			return err
		}
		if n != want {
			return fmt.Errorf("%w: %d elements for a rank owning %d", ErrLayout, n, want)
		}
		return nil
	}
	vals, err := UnmarshalChunk(s.codec, chunk)
	if err != nil {
		return err
	}
	return s.SetLocal(vals)
}

// Redistribute collectively reshapes the sequence to a new distribution
// ("the programmer can use the redistribute method to redistribute elements
// of a sequence whose distribution is not preset"). Data moves by the
// minimal plan through an all-to-all exchange.
func (s *Seq[T]) Redistribute(newSpec dist.Spec) error {
	if newSpec == nil {
		newSpec = dist.Block{}
	}
	newLayout, err := newSpec.Layout(s.layout.Length, s.comm.Size())
	if err != nil {
		return err
	}
	if err := s.redistributeTo(newLayout); err != nil {
		return err
	}
	s.spec = newSpec
	return nil
}

// RedistributeLayout is Redistribute with an explicit target layout.
func (s *Seq[T]) RedistributeLayout(newLayout dist.Layout) error {
	if err := s.redistributeTo(newLayout); err != nil {
		return err
	}
	s.spec = nil
	return nil
}

func (s *Seq[T]) redistributeTo(newLayout dist.Layout) error {
	if newLayout.Ranks != s.comm.Size() {
		return fmt.Errorf("%w: target layout has %d ranks", ErrLayout, newLayout.Ranks)
	}
	moves, err := dist.Plan(s.layout, newLayout)
	if err != nil {
		return err
	}
	me := s.comm.Rank()
	// Group my outbound moves by destination; local moves bypass the
	// exchange. A destination may receive several moves from me; they are
	// bundled as (dstOff, elements) pairs behind a move count.
	newLocal := make([]T, newLayout.Count(me))
	byDst := make([][]dist.Move, s.comm.Size())
	for _, m := range moves {
		if m.SrcRank != me {
			continue
		}
		if m.DstRank == me {
			copy(newLocal[m.DstOff:m.DstOff+m.Len], s.local[m.SrcOff:m.SrcOff+m.Len])
			continue
		}
		byDst[m.DstRank] = append(byDst[m.DstRank], m)
	}
	parts := make([][]byte, s.comm.Size())
	for r, ms := range byDst {
		if len(ms) == 0 {
			continue
		}
		e := cdr.NewEncoder(cdr.NativeOrder)
		e.WriteOctet(byte(cdr.NativeOrder))
		e.WriteULong(uint32(len(ms)))
		for _, m := range ms {
			e.WriteULongLong(uint64(m.DstOff))
			s.codec.EncodeSlice(e, s.local[m.SrcOff:m.SrcOff+m.Len])
		}
		parts[r] = e.Bytes()
	}
	recvd, err := s.comm.Alltoall(parts)
	if err != nil {
		return err
	}
	for src, payload := range recvd {
		if src == me || len(payload) == 0 {
			continue
		}
		if payload[0] > 1 {
			return fmt.Errorf("%w: bad exchange flag from rank %d", ErrLayout, src)
		}
		d := cdr.NewDecoder(payload, cdr.ByteOrder(payload[0]))
		if _, err := d.ReadOctet(); err != nil {
			return err
		}
		n, err := d.ReadULong()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			dstOff, err := d.ReadULongLong()
			if err != nil {
				return err
			}
			vals, err := s.codec.DecodeSlice(d)
			if err != nil {
				return err
			}
			if int(dstOff)+len(vals) > len(newLocal) {
				return fmt.Errorf("%w: move [%d,%d) outside %d local elements", ErrLayout, dstOff, int(dstOff)+len(vals), len(newLocal))
			}
			copy(newLocal[dstOff:], vals)
		}
	}
	s.layout = newLayout
	s.local = newLocal
	return nil
}

// SetLen collectively resizes the sequence, with the paper's semantics: "if
// a sequence is shrunk, the data above the length value will be discarded,
// if a sequence is lengthened, new elements will be added to the ownership
// of the computing thread which owned the last elements of the old
// sequence." New elements are zero values.
func (s *Seq[T]) SetLen(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative length %d", ErrIndex, n)
	}
	switch {
	case n == s.layout.Length:
		return nil
	case n < s.layout.Length:
		return s.shrink(n)
	default:
		return s.grow(n)
	}
}

func (s *Seq[T]) shrink(n int) error {
	me := s.comm.Rank()
	newIvs := make([][]dist.Interval, s.layout.Ranks)
	for r, ivs := range s.layout.Intervals {
		for _, iv := range ivs {
			if iv.Start >= n {
				continue
			}
			kept := iv
			if kept.End() > n {
				kept.Len = n - kept.Start
			}
			newIvs[r] = append(newIvs[r], kept)
		}
	}
	// Rebuild local data: keep elements whose global index survives, in
	// local order.
	var newLocal []T
	off := 0
	for _, iv := range s.layout.Intervals[me] {
		keep := 0
		if iv.Start < n {
			keep = min(iv.Len, n-iv.Start)
		}
		newLocal = append(newLocal, s.local[off:off+keep]...)
		off += iv.Len
	}
	s.layout = dist.Layout{Length: n, Ranks: s.layout.Ranks, Intervals: newIvs}
	s.local = newLocal
	if err := s.layout.Validate(); err != nil {
		return err
	}
	return nil
}

func (s *Seq[T]) grow(n int) error {
	me := s.comm.Rank()
	old := s.layout.Length
	// Find the owner of the last element; an empty sequence grows on the
	// first thread.
	owner := 0
	if old > 0 {
		var err error
		owner, _, err = s.layout.Owner(old - 1)
		if err != nil {
			return err
		}
	}
	newIvs := make([][]dist.Interval, s.layout.Ranks)
	for r, ivs := range s.layout.Intervals {
		newIvs[r] = append([]dist.Interval(nil), ivs...)
	}
	ext := dist.Interval{Start: old, Len: n - old}
	if k := len(newIvs[owner]); k > 0 && newIvs[owner][k-1].End() == old {
		newIvs[owner][k-1].Len += ext.Len
	} else {
		newIvs[owner] = append(newIvs[owner], ext)
	}
	if me == owner {
		s.local = append(s.local, make([]T, n-old)...)
	}
	s.layout = dist.Layout{Length: n, Ranks: s.layout.Ranks, Intervals: newIvs}
	return s.layout.Validate()
}
