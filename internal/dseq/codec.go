package dseq

import (
	"fmt"

	"repro/internal/cdr"
	"repro/internal/zcodec"
)

// Codec marshals slices of a sequence's element type. A codec writes a
// count-prefixed CDR encoding (so truncation is detectable) and decodes it
// back. Generated code supplies codecs for user-defined IDL types; the
// predefined codecs below cover the basic types.
type Codec[T any] struct {
	// Name identifies the element type in diagnostics ("double", "long"...).
	Name string
	// EncodeSlice appends v to the stream.
	EncodeSlice func(e *cdr.Encoder, v []T)
	// DecodeSlice reads a slice written by EncodeSlice.
	DecodeSlice func(d *cdr.Decoder) ([]T, error)
	// DecodeInto, when non-nil, reads a slice written by EncodeSlice
	// directly into dst, returning the element count; it must fail without
	// storing anything when the stream's count exceeds len(dst). Codecs
	// whose destination is preallocated sequence storage (the transfer hot
	// path) provide it to skip the intermediate slice DecodeSlice allocates;
	// when nil, callers fall back to DecodeSlice plus a copy.
	DecodeInto func(d *cdr.Decoder, dst []T) (int, error)

	// Block-compression hooks, all non-nil or all nil. Numeric element
	// types plug a zcodec block codec in here; MarshalChunkZ uses them to
	// build compressed chunk envelopes when the connection negotiated the
	// codec, and the Unmarshal* functions to auto-detect and decode them.
	// Types without a block codec (strings, structs...) leave these nil
	// and always travel raw.
	CompressID     zcodec.ID
	ElemWireSize   int // raw wire bytes per element, the compression break-even bar
	CompressBound  func(n int) int
	CompressAppend func(dst []byte, v []T) []byte
	Decompress     func(src []byte, maxElems int) ([]T, error)
	DecompressInto func(dst []T, src []byte) error
}

// Float64 is the codec for IDL double, the paper's benchmark element type.
// It uses the block encoders, the marshalling hot path.
var Float64 = Codec[float64]{
	Name:           "double",
	EncodeSlice:    func(e *cdr.Encoder, v []float64) { e.WriteDoubles(v) },
	DecodeSlice:    func(d *cdr.Decoder) ([]float64, error) { return d.ReadDoubles() },
	DecodeInto:     func(d *cdr.Decoder, dst []float64) (int, error) { return d.ReadDoublesInto(dst) },
	CompressID:     zcodec.XOR,
	ElemWireSize:   8,
	CompressBound:  zcodec.DoublesBound,
	CompressAppend: zcodec.AppendDoubles,
	Decompress:     zcodec.DecodeDoubles,
	DecompressInto: zcodec.DecodeDoublesInto,
}

// Int32 is the codec for IDL long.
var Int32 = Codec[int32]{
	Name:           "long",
	EncodeSlice:    func(e *cdr.Encoder, v []int32) { e.WriteLongs(v) },
	DecodeSlice:    func(d *cdr.Decoder) ([]int32, error) { return d.ReadLongs() },
	DecodeInto:     func(d *cdr.Decoder, dst []int32) (int, error) { return d.ReadLongsInto(dst) },
	CompressID:     zcodec.Delta,
	ElemWireSize:   4,
	CompressBound:  zcodec.Int32sBound,
	CompressAppend: zcodec.AppendInt32s,
	Decompress:     zcodec.DecodeInt32s,
	DecompressInto: zcodec.DecodeInt32sInto,
}

// Int64 is the codec for IDL long long.
var Int64 = Codec[int64]{
	Name:           "long long",
	CompressID:     zcodec.Delta,
	ElemWireSize:   8,
	CompressBound:  zcodec.Int64sBound,
	CompressAppend: zcodec.AppendInt64s,
	Decompress:     zcodec.DecodeInt64s,
	DecompressInto: zcodec.DecodeInt64sInto,
	EncodeSlice: func(e *cdr.Encoder, v []int64) {
		e.WriteULong(uint32(len(v)))
		for _, x := range v {
			e.WriteLongLong(x)
		}
	},
	DecodeSlice: func(d *cdr.Decoder) ([]int64, error) {
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		out := make([]int64, 0, minu32(n, 1<<20))
		for i := uint32(0); i < n; i++ {
			x, err := d.ReadLongLong()
			if err != nil {
				return nil, err
			}
			out = append(out, x)
		}
		return out, nil
	},
}

// Float32 is the codec for IDL float.
var Float32 = Codec[float32]{
	Name: "float",
	EncodeSlice: func(e *cdr.Encoder, v []float32) {
		e.WriteULong(uint32(len(v)))
		for _, x := range v {
			e.WriteFloat(x)
		}
	},
	DecodeSlice: func(d *cdr.Decoder) ([]float32, error) {
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		out := make([]float32, 0, minu32(n, 1<<20))
		for i := uint32(0); i < n; i++ {
			x, err := d.ReadFloat()
			if err != nil {
				return nil, err
			}
			out = append(out, x)
		}
		return out, nil
	},
	DecodeInto: func(d *cdr.Decoder, dst []float32) (int, error) {
		n, err := d.ReadULong()
		if err != nil {
			return 0, err
		}
		if int(n) > len(dst) {
			return 0, fmt.Errorf("dseq: float chunk of %d exceeds destination %d", n, len(dst))
		}
		for i := 0; i < int(n); i++ {
			if dst[i], err = d.ReadFloat(); err != nil {
				return 0, err
			}
		}
		return int(n), nil
	},
}

// Octet is the codec for IDL octet. DecodeSlice must copy (ReadOctets
// returns a view into the decode buffer, which the transport may reclaim);
// DecodeInto copies once, straight into the caller's storage.
var Octet = Codec[byte]{
	Name:        "octet",
	EncodeSlice: func(e *cdr.Encoder, v []byte) { e.WriteOctets(v) },
	DecodeSlice: func(d *cdr.Decoder) ([]byte, error) {
		b, err := d.ReadOctets()
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	},
	DecodeInto: func(d *cdr.Decoder, dst []byte) (int, error) {
		b, err := d.ReadOctets()
		if err != nil {
			return 0, err
		}
		if len(b) > len(dst) {
			return 0, fmt.Errorf("dseq: octet chunk of %d exceeds destination %d", len(b), len(dst))
		}
		return copy(dst, b), nil
	},
}

// Bool is the codec for IDL boolean.
var Bool = Codec[bool]{
	Name: "boolean",
	EncodeSlice: func(e *cdr.Encoder, v []bool) {
		e.WriteULong(uint32(len(v)))
		for _, x := range v {
			e.WriteBool(x)
		}
	},
	DecodeSlice: func(d *cdr.Decoder) ([]bool, error) {
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		out := make([]bool, 0, minu32(n, 1<<20))
		for i := uint32(0); i < n; i++ {
			x, err := d.ReadBool()
			if err != nil {
				return nil, err
			}
			out = append(out, x)
		}
		return out, nil
	},
}

// String is the codec for IDL string elements (a dsequence<string>).
var String = Codec[string]{
	Name: "string",
	EncodeSlice: func(e *cdr.Encoder, v []string) {
		e.WriteULong(uint32(len(v)))
		for _, s := range v {
			e.WriteString(s)
		}
	},
	DecodeSlice: func(d *cdr.Decoder) ([]string, error) {
		n, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		out := make([]string, 0, minu32(n, 1<<20))
		for i := uint32(0); i < n; i++ {
			s, err := d.ReadString()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	},
}

// StructCodec builds a codec for a user-defined element type from
// per-element marshal functions, the shape generated skeleton code uses.
func StructCodec[T any](name string, enc func(*cdr.Encoder, T), dec func(*cdr.Decoder) (T, error)) Codec[T] {
	return Codec[T]{
		Name: name,
		EncodeSlice: func(e *cdr.Encoder, v []T) {
			e.WriteULong(uint32(len(v)))
			for _, x := range v {
				enc(e, x)
			}
		},
		DecodeSlice: func(d *cdr.Decoder) ([]T, error) {
			n, err := d.ReadULong()
			if err != nil {
				return nil, err
			}
			out := make([]T, 0, minu32(n, 1<<20))
			for i := uint32(0); i < n; i++ {
				x, err := dec(d)
				if err != nil {
					return nil, err
				}
				out = append(out, x)
			}
			return out, nil
		},
	}
}

func minu32(n uint32, cap int) int {
	if int(n) < cap {
		return int(n)
	}
	return cap
}

// MarshalChunk renders elements as a standalone self-describing payload
// (leading byte-order octet, like an argument payload), the format carried
// by wire.Data messages and by centralized request bodies.
func MarshalChunk[T any](c Codec[T], v []T) []byte {
	h := marshalNS.Load()
	defer h.Done(h.Start())
	e := cdr.NewEncoder(cdr.NativeOrder)
	e.WriteOctet(byte(cdr.NativeOrder))
	c.EncodeSlice(e, v)
	return e.Bytes()
}

// openChunk validates a chunk payload's byte-order flag and positions a
// decoder past it.
func openChunk(name string, payload []byte) (*cdr.Decoder, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("dseq: empty %s chunk", name)
	}
	if payload[0] > 1 {
		return nil, fmt.Errorf("dseq: bad chunk order flag %d", payload[0])
	}
	d := cdr.NewDecoder(payload, cdr.ByteOrder(payload[0]))
	if _, err := d.ReadOctet(); err != nil {
		return nil, err
	}
	return d, nil
}

// UnmarshalChunk parses a payload produced by MarshalChunk or
// MarshalChunkZ; compressed envelopes are detected from the marker
// octet, so receivers need no negotiation state.
func UnmarshalChunk[T any](c Codec[T], payload []byte) ([]T, error) {
	h := unmarshalNS.Load()
	defer h.Done(h.Start())
	if IsCompressedChunk(payload) {
		return decompressChunk(c, payload)
	}
	d, err := openChunk(c.Name, payload)
	if err != nil {
		return nil, err
	}
	return c.DecodeSlice(d)
}

// UnmarshalChunkInto parses a payload produced by MarshalChunk directly into
// dst, returning the element count. It never retains payload, so callers may
// release a borrowed transport buffer as soon as it returns. Codecs without
// a DecodeInto fast path fall back to DecodeSlice plus a copy.
func UnmarshalChunkInto[T any](c Codec[T], payload []byte, dst []T) (int, error) {
	h := unmarshalNS.Load()
	defer h.Done(h.Start())
	if IsCompressedChunk(payload) {
		return decompressChunkInto(c, payload, dst)
	}
	d, err := openChunk(c.Name, payload)
	if err != nil {
		return 0, err
	}
	if c.DecodeInto != nil {
		return c.DecodeInto(d, dst)
	}
	vals, err := c.DecodeSlice(d)
	if err != nil {
		return 0, err
	}
	if len(vals) > len(dst) {
		return 0, fmt.Errorf("dseq: %s chunk of %d exceeds destination %d", c.Name, len(vals), len(dst))
	}
	return copy(dst, vals), nil
}
