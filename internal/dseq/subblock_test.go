package dseq

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/zcodec"
)

// subBlockStreams builds the float64 shapes the property test sweeps:
// smooth ramps, random walks, plain noise, and runs of the bit
// patterns that historically break XOR codecs (NaN, ±Inf, denormals).
func subBlockStreams(n int) map[string][]float64 {
	r := rand.New(rand.NewSource(42))
	ramp := make([]float64, n)
	noise := make([]float64, n)
	walk := make([]float64, n)
	specials := make([]float64, n)
	v := 0.0
	for i := 0; i < n; i++ {
		ramp[i] = float64(i) * 0.5
		noise[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20))
		v += r.Float64() - 0.5
		walk[i] = v
		switch r.Intn(6) {
		case 0:
			specials[i] = math.NaN()
		case 1:
			specials[i] = math.Inf(1 - 2*r.Intn(2))
		case 2:
			specials[i] = math.SmallestNonzeroFloat64 * float64(1+r.Intn(100)) // denormal
		case 3:
			specials[i] = math.Copysign(0, -1)
		default:
			specials[i] = r.NormFloat64()
		}
	}
	return map[string][]float64{"ramp": ramp, "noise": noise, "walk": walk, "specials": specials}
}

// TestSubBlockMatchesSerial is the sub-block soundness property: the
// parallel 0x03 envelope must decode to exactly the values (bit for
// bit) that the serial single-block envelope does, across random
// float64 streams including NaN/±Inf/denormal runs.
func TestSubBlockMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // ensure the split actually engages
	defer runtime.GOMAXPROCS(prev)
	for _, n := range []int{2 * subBlockMinElems, 3*subBlockMinElems + 17, 1 << 16} {
		for name, vals := range subBlockStreams(n) {
			sub := MarshalChunkZ(Float64, vals, zcodec.MaskAll|zcodec.MaskSubBlock)
			serial := MarshalChunkZ(Float64, vals, zcodec.MaskAll)
			if name == "ramp" {
				// Noisy shapes may legitimately fall back to raw; the
				// smooth ramp must compress under both framings.
				if sub[0] != compMarkerSub {
					t.Fatalf("%s/%d: sub-block mask produced marker %#x, want 0x03", name, n, sub[0])
				}
				if serial[0] != compMarker {
					t.Fatalf("%s/%d: serial mask produced marker %#x, want 0x02", name, n, serial[0])
				}
			}
			fromSub, err := UnmarshalChunk(Float64, sub)
			if err != nil {
				t.Fatalf("%s/%d: decode sub: %v", name, n, err)
			}
			fromSerial, err := UnmarshalChunk(Float64, serial)
			if err != nil {
				t.Fatalf("%s/%d: decode serial: %v", name, n, err)
			}
			if len(fromSub) != n || len(fromSerial) != n {
				t.Fatalf("%s/%d: lengths %d/%d", name, n, len(fromSub), len(fromSerial))
			}
			for i := range vals {
				want := math.Float64bits(vals[i])
				if math.Float64bits(fromSub[i]) != want || math.Float64bits(fromSerial[i]) != want {
					t.Fatalf("%s/%d: [%d] sub=%x serial=%x want %x",
						name, n, i, math.Float64bits(fromSub[i]), math.Float64bits(fromSerial[i]), want)
				}
			}
			into := make([]float64, n)
			if k, err := UnmarshalChunkInto(Float64, sub, into); err != nil || k != n {
				t.Fatalf("%s/%d: UnmarshalChunkInto = %d, %v", name, n, k, err)
			}
			for i := range vals {
				if math.Float64bits(into[i]) != math.Float64bits(vals[i]) {
					t.Fatalf("%s/%d: into[%d] mismatch", name, n, i)
				}
			}
			if id, count, err := CompressedChunkInfo(sub); name == "ramp" &&
				(err != nil || id != zcodec.XOR || count != n) {
				t.Fatalf("%s/%d: CompressedChunkInfo = (%v, %d, %v)", name, n, id, count, err)
			}
		}
	}
}

// TestSubBlockMaskGating pins the interop rule: without the negotiated
// MaskSubBlock capability a large chunk still travels as a single-block
// 0x02 envelope that PR 8-era receivers decode.
func TestSubBlockMaskGating(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	vals := make([]float64, 2*subBlockMinElems)
	for i := range vals {
		vals[i] = float64(i)
	}
	if p := MarshalChunkZ(Float64, vals, zcodec.MaskAll); p[0] != compMarker {
		t.Fatalf("codec-only mask produced marker %#x, want single-block 0x02", p[0])
	}
	if p := MarshalChunkZ(Float64, vals, zcodec.MaskAll|zcodec.MaskSubBlock); p[0] != compMarkerSub {
		t.Fatalf("sub-capable mask produced marker %#x, want 0x03", p[0])
	}
	// Below two sub-blocks' worth of elements the split must decline.
	small := vals[:2*subBlockMinElems-1]
	if p := MarshalChunkZ(Float64, small, zcodec.MaskAll|zcodec.MaskSubBlock); p[0] != compMarker {
		t.Fatalf("undersized chunk produced marker %#x, want 0x02", p[0])
	}
}

// TestByteAwareGate pins the compMinBytes rule for tiny mixed-type
// chunks: 16 int32s is 64 B of payload and must stay raw, while the
// same element count of float64 (128 B) clears the bar.
func TestByteAwareGate(t *testing.T) {
	i32 := make([]int32, 16)
	f64 := make([]float64, 16)
	for i := 0; i < 16; i++ {
		i32[i] = int32(i)
		f64[i] = float64(i)
	}
	if p := MarshalChunkZ(Int32, i32, zcodec.Supported); IsCompressedChunk(p) {
		t.Fatal("16 int32s (64 B) compressed; byte-aware gate should keep them raw")
	}
	if p := MarshalChunkZ(Float64, f64, zcodec.Supported); !IsCompressedChunk(p) {
		t.Fatal("16 float64s (128 B) stayed raw; gate regressed past the old threshold")
	}
	i32big := make([]int32, 32)
	for i := range i32big {
		i32big[i] = int32(i)
	}
	if p := MarshalChunkZ(Int32, i32big, zcodec.Supported); !IsCompressedChunk(p) {
		t.Fatal("32 int32s (128 B) stayed raw")
	}
	// Types without a block codec always travel raw no matter the mask.
	strs := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p", "q"}
	if p := MarshalChunkZ(String, strs, zcodec.Supported); IsCompressedChunk(p) {
		t.Fatal("string chunk compressed")
	}
}

// TestSubBlockRejectsCorruption walks corrupted and truncated 0x03
// envelopes through the decoders: every mutation must error or decode
// to a value set, never panic, and structural damage to the frame
// table must be detected.
func TestSubBlockRejectsCorruption(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	vals := make([]float64, 2*subBlockMinElems)
	for i := range vals {
		vals[i] = float64(i)
	}
	p := MarshalChunkZ(Float64, vals, zcodec.MaskAll|zcodec.MaskSubBlock)
	if p[0] != compMarkerSub {
		t.Fatalf("marker %#x, want 0x03", p[0])
	}
	dst := make([]float64, len(vals))
	for cut := 1; cut < len(p); cut += 97 {
		if _, err := UnmarshalChunkInto(Float64, p[:cut], dst); err == nil && cut < len(p) {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	// Trailing garbage after the last block must be rejected.
	if _, err := UnmarshalChunkInto(Float64, append(append([]byte(nil), p...), 0xAA), dst); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Wrong codec octet must be rejected before any block decodes.
	bad := append([]byte(nil), p...)
	bad[1] = byte(zcodec.Delta)
	if _, err := UnmarshalChunkInto(Float64, bad, dst); err == nil {
		t.Fatal("mismatched codec accepted")
	}
	// Random bit flips: errors are fine, panics are not.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		b := append([]byte(nil), p...)
		for f := 0; f < 1+r.Intn(4); f++ {
			b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
		}
		UnmarshalChunkInto(Float64, b, dst) //nolint:errcheck — must not panic
	}
	// A destination too small for the declared totals must error.
	if _, err := UnmarshalChunkInto(Float64, p, dst[:len(vals)-1]); err == nil {
		t.Fatal("oversized chunk accepted into short destination")
	}
}

// TestSubBlockInt64 covers the delta codec through the sub-block path.
func TestSubBlockInt64(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	vals := make([]int64, 3*subBlockMinElems)
	for i := range vals {
		vals[i] = int64(i) * 7
	}
	p := MarshalChunkZ(Int64, vals, zcodec.Supported)
	if p[0] != compMarkerSub {
		t.Fatalf("marker %#x, want 0x03", p[0])
	}
	got, err := UnmarshalChunk(Int64, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("[%d] %d != %d", i, got[i], vals[i])
		}
	}
}
