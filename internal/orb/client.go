package orb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is the PARDIS client-side engine for one computing thread: it
// caches connections per endpoint, multiplexes concurrent requests over
// them, matches replies by request id, and routes inbound Data messages
// (multi-port return transfers) to registered sinks.
type Client struct {
	// Principal identifies this client in request headers (informational).
	Principal string
	// Timeout bounds each blocking invocation; zero means no bound.
	Timeout time.Duration
	// MaxForwards bounds LOCATION_FORWARD chains.
	MaxForwards int

	nextID atomic.Uint32

	mu     sync.Mutex
	conns  map[string]*clientConn
	closed bool

	sinkMu sync.Mutex
	sinks  map[uint32]chan *wire.Data
}

// NewClient returns a ready client engine.
func NewClient() *Client {
	return &Client{
		MaxForwards: 3,
		conns:       make(map[string]*clientConn),
		sinks:       make(map[uint32]chan *wire.Data),
	}
}

// clientConn is one cached connection with its reply demultiplexer.
type clientConn struct {
	conn    *transport.Conn
	client  *Client
	addr    string
	mu      sync.Mutex
	pending map[uint32]chan *wire.Reply
	err     error
	done    chan struct{}
}

// Errors reported by the client engine.
var (
	ErrClientClosed  = errors.New("orb: client closed")
	ErrForwardLoop   = errors.New("orb: too many location forwards")
	ErrConnBroken    = errors.New("orb: connection broken")
	ErrInvokeTimeout = errors.New("orb: invocation timed out")
	ErrLocateFailed  = errors.New("orb: object not located")
)

// NextRequestID allocates a fresh request id, unique within this client.
func (c *Client) NextRequestID() uint32 {
	return c.nextID.Add(1)
}

// conn returns (dialing if necessary) the cached connection to addr.
func (c *Client) conn(addr string) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if cc, ok := c.conns[addr]; ok {
		cc.mu.Lock()
		broken := cc.err != nil
		cc.mu.Unlock()
		if !broken {
			return cc, nil
		}
		delete(c.conns, addr)
	}
	tc, err := transport.Dial(addr, nil)
	if err != nil {
		return nil, &SystemException{RepoID: RepoComm, Message: err.Error()}
	}
	cc := &clientConn{
		conn:    tc,
		client:  c,
		addr:    addr,
		pending: make(map[uint32]chan *wire.Reply),
		done:    make(chan struct{}),
	}
	c.conns[addr] = cc
	go cc.readLoop()
	return cc, nil
}

func (cc *clientConn) readLoop() {
	defer close(cc.done)
	for {
		msg, err := cc.conn.ReadMessage()
		if err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
			return
		}
		switch m := msg.(type) {
		case *wire.Reply:
			cc.mu.Lock()
			ch, ok := cc.pending[m.RequestID]
			delete(cc.pending, m.RequestID)
			cc.mu.Unlock()
			if ok {
				ch <- m
			}
		case *wire.Data:
			cc.client.routeData(m)
		case *wire.LocateReply:
			cc.mu.Lock()
			ch, ok := cc.pending[m.RequestID]
			delete(cc.pending, m.RequestID)
			cc.mu.Unlock()
			if ok {
				// Tunnel the locate reply through the reply channel.
				ch <- &wire.Reply{RequestID: m.RequestID, Status: wire.ReplyStatus(m.Status), Args: []byte(m.IOR)}
			}
		case *wire.CloseConnection:
			cc.fail(ErrConnBroken)
			return
		case *wire.MessageError:
			cc.fail(fmt.Errorf("%w: peer reported message error", ErrConnBroken))
			return
		default:
			// Servers do not send other message types to clients.
			cc.fail(fmt.Errorf("%w: unexpected %v from server", ErrConnBroken, m.Type()))
			return
		}
	}
}

// fail poisons the connection and unblocks every waiter.
func (cc *clientConn) fail(err error) {
	cc.conn.Close()
	cc.mu.Lock()
	cc.err = err
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		close(ch)
	}
	cc.mu.Unlock()
}

func (cc *clientConn) register(id uint32) (chan *wire.Reply, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return nil, cc.err
	}
	ch := make(chan *wire.Reply, 1)
	cc.pending[id] = ch
	return ch, nil
}

func (cc *clientConn) unregister(id uint32) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// RegisterDataSink routes inbound Data messages for the given request id to
// ch. The caller must register before the request is sent and must
// UnregisterDataSink afterwards. The channel should be buffered for the
// expected number of transfers.
func (c *Client) RegisterDataSink(requestID uint32, ch chan *wire.Data) {
	c.sinkMu.Lock()
	c.sinks[requestID] = ch
	c.sinkMu.Unlock()
}

// UnregisterDataSink removes the sink for requestID.
func (c *Client) UnregisterDataSink(requestID uint32) {
	c.sinkMu.Lock()
	delete(c.sinks, requestID)
	c.sinkMu.Unlock()
}

func (c *Client) routeData(d *wire.Data) {
	c.sinkMu.Lock()
	ch, ok := c.sinks[d.RequestID]
	c.sinkMu.Unlock()
	if ok {
		ch <- d
	}
}

// InvokeAddr performs a request/reply exchange with the object key at an
// explicit endpoint address. It returns the reply's argument payload.
// Exceptional replies are returned as *UserException or *SystemException.
func (c *Client) InvokeAddr(addr string, key []byte, op string, args []byte, oneway bool) ([]byte, error) {
	return c.invokeAddr(addr, key, op, args, oneway, 0, 0)
}

// InvokeAddrID is InvokeAddr with a caller-chosen request id, which the
// multi-port engine needs: the id ties Data transfers to the request.
func (c *Client) InvokeAddrID(requestID uint32, addr string, key []byte, op string, args []byte, oneway bool) ([]byte, error) {
	return c.invokeAddr(addr, key, op, args, oneway, requestID, 0)
}

func (c *Client) invokeAddr(addr string, key []byte, op string, args []byte, oneway bool, requestID uint32, depth int) ([]byte, error) {
	if depth > c.MaxForwards {
		return nil, ErrForwardLoop
	}
	cc, err := c.conn(addr)
	if err != nil {
		return nil, err
	}
	id := requestID
	if id == 0 {
		id = c.NextRequestID()
	}
	req := &wire.Request{
		RequestID:        id,
		ResponseExpected: !oneway,
		ObjectKey:        key,
		Operation:        op,
		Principal:        c.Principal,
		Args:             args,
	}
	if oneway {
		return nil, cc.conn.WriteMessage(req)
	}
	ch, err := cc.register(id)
	if err != nil {
		return nil, err
	}
	if err := cc.conn.WriteMessage(req); err != nil {
		cc.unregister(id)
		return nil, &SystemException{RepoID: RepoComm, Message: err.Error()}
	}
	reply, err := c.await(cc, ch, id)
	if err != nil {
		return nil, err
	}
	switch reply.Status {
	case wire.ReplyNoException:
		return reply.Args, nil
	case wire.ReplyLocationForward:
		fwd, perr := ParseIOR(string(reply.Args))
		if perr != nil {
			return nil, perr
		}
		ep, perr := fwd.Primary()
		if perr != nil {
			return nil, perr
		}
		return c.invokeAddr(ep.Addr(), fwd.Key, op, args, oneway, 0, depth+1)
	default:
		return nil, decodeException(reply.Status, reply.Args)
	}
}

func (c *Client) await(cc *clientConn, ch chan *wire.Reply, id uint32) (*wire.Reply, error) {
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = ErrConnBroken
			}
			return nil, err
		}
		return reply, nil
	case <-timeout:
		cc.unregister(id)
		return nil, fmt.Errorf("%w: request %d after %v", ErrInvokeTimeout, id, c.Timeout)
	}
}

// Invoke performs a request on the object's primary endpoint.
func (c *Client) Invoke(ref IOR, op string, args []byte, oneway bool) ([]byte, error) {
	ep, err := ref.Primary()
	if err != nil {
		return nil, err
	}
	return c.InvokeAddr(ep.Addr(), ref.Key, op, args, oneway)
}

// InvokeRank performs a request on the endpoint serving a specific
// computing thread of an SPMD object.
func (c *Client) InvokeRank(ref IOR, rank int, op string, args []byte, oneway bool) ([]byte, error) {
	ep, err := ref.EndpointFor(rank)
	if err != nil {
		return nil, err
	}
	return c.InvokeAddr(ep.Addr(), ref.Key, op, args, oneway)
}

// SendData ships one multi-port argument transfer to the endpoint serving
// the destination computing thread.
func (c *Client) SendData(ref IOR, d *wire.Data) error {
	ep, err := ref.EndpointFor(int(d.DstRank))
	if err != nil {
		return err
	}
	cc, err := c.conn(ep.Addr())
	if err != nil {
		return err
	}
	return cc.conn.WriteMessage(d)
}

// Locate asks the primary endpoint whether it serves ref's object key.
func (c *Client) Locate(ref IOR) (bool, error) {
	ep, err := ref.Primary()
	if err != nil {
		return false, err
	}
	cc, err := c.conn(ep.Addr())
	if err != nil {
		return false, err
	}
	id := c.NextRequestID()
	ch, err := cc.register(id)
	if err != nil {
		return false, err
	}
	if err := cc.conn.WriteMessage(&wire.LocateRequest{RequestID: id, ObjectKey: ref.Key}); err != nil {
		cc.unregister(id)
		return false, &SystemException{RepoID: RepoComm, Message: err.Error()}
	}
	reply, err := c.await(cc, ch, id)
	if err != nil {
		return false, err
	}
	return wire.LocateStatus(reply.Status) == wire.LocateHere, nil
}

// Close tears down all cached connections.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for _, cc := range c.conns {
		conns = append(conns, cc)
	}
	c.conns = map[string]*clientConn{}
	c.mu.Unlock()
	for _, cc := range conns {
		cc.fail(ErrClientClosed)
		<-cc.done
	}
}
