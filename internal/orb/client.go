package orb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is the PARDIS client-side engine for one computing thread: it
// caches connections per endpoint, multiplexes concurrent requests over
// them, matches replies by request id, and routes inbound Data messages
// (multi-port return transfers) to registered sinks.
type Client struct {
	// Principal identifies this client in request headers (informational).
	Principal string
	// Timeout bounds each blocking invocation; zero means no bound.
	// Per-invocation deadlines (InvokeOptions.Deadline) tighten it further.
	Timeout time.Duration
	// MaxForwards bounds LOCATION_FORWARD chains.
	MaxForwards int
	// Retry bounds automatic reconnect-and-retry of idempotent operations
	// (Locate, oneway sends). The zero value disables retries.
	Retry RetryPolicy
	// Transport, when set, configures dialed connections (byte order,
	// frame limits, fault-injection wrappers).
	Transport *transport.Options
	// Dialer overrides how connections are established; nil uses
	// transport.Dial. Tests substitute in-process or faulty dialers.
	Dialer func(addr string, opts *transport.Options) (*transport.Conn, error)
	// KeepaliveInterval, when positive, probes idle connections with Ping
	// and declares the peer dead after KeepaliveTimeout (default: the
	// interval) of further silence. A SIGKILL'd server then surfaces as a
	// prompt connection error on every pending request and data sink
	// instead of a stall until the invocation timeout.
	KeepaliveInterval time.Duration
	KeepaliveTimeout  time.Duration
	// Breaker is the per-endpoint circuit breaker policy used when invoking
	// through multi-profile references. The zero value disables breakers.
	Breaker BreakerPolicy
	// Shard configures consistent-hash routing for invocations that carry a
	// ShardKey (see InvokeOptions.ShardKey and InvokeSharded).
	Shard ShardPolicy
	// Compression is the wire-compression codec mask (zcodec mask bits) this
	// client offers on every dialed connection via the Ping/Pong handshake
	// extension. Zero (the default) never offers, and connections stay raw.
	// A peer that predates the extension ignores the offer's trailer and
	// answers a plain Pong, which resolves the handshake to raw — fallback
	// is transparent by construction.
	Compression uint8
	// Metrics, when set before the client's first use, receives the
	// client-side resilience event counters: "orb.client.retries" (oneway
	// and Locate re-sends), "orb.client.failovers" (profile advances),
	// "orb.client.breaker_open" (circuits tripping open), and
	// "orb.client.conn_broken" (connections poisoned). Nil disables them at
	// the cost of a nil check per event.
	Metrics *obs.Registry

	obsOnce       sync.Once
	mRetries      *obs.Counter
	mFailovers    *obs.Counter
	mBreakerOpen  *obs.Counter
	mConnBroken   *obs.Counter
	mShardReroute *obs.Counter
	mShardSpill   *obs.Counter

	nextID atomic.Uint32

	mu     sync.Mutex
	conns  map[string]*connSlot
	closed bool

	bkMu     sync.Mutex
	breakers map[string]*breaker

	sgMu    sync.Mutex
	sgCache map[string]*shardGroup

	sinkMu sync.Mutex
	sinks  map[uint32]chan *wire.Data
}

// NewClient returns a ready client engine.
func NewClient() *Client {
	return &Client{
		MaxForwards: 3,
		conns:       make(map[string]*connSlot),
		breakers:    make(map[string]*breaker),
		sgCache:     make(map[string]*shardGroup),
		sinks:       make(map[uint32]chan *wire.Data),
	}
}

// connSlot serializes connection establishment per address. The client used
// to dial while holding the client-wide connection-map lock, which made one
// slow or unreachable endpoint stall every invocation on every other
// endpoint; with a slot per address, only callers of the same endpoint wait
// on its dial, and the map lock is held just long enough to find the slot.
type connSlot struct {
	mu sync.Mutex
	cc *clientConn // nil or broken: the next use redials
}

// RetryPolicy bounds the automatic retries the client performs for
// idempotent operations, and shapes the capped exponential backoff between
// reconnect attempts. Retries never apply to request/reply invocations,
// whose effects may not be idempotent.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// values <= 1 disable retrying.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// retry. Zero defaults to 2ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay. Zero defaults to 250ms.
	MaxBackoff time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before the retryth retry (retry >= 1).
func (p RetryPolicy) backoff(retry int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	d := base
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	return min(d, cap)
}

// InvokeOptions refine one invocation.
type InvokeOptions struct {
	// Oneway suppresses the reply; the call returns once the request is
	// written (and, under Retry, re-sent after a reconnect if needed).
	Oneway bool
	// RequestID, when non-zero, is the caller-chosen request id (the
	// multi-port engine ties Data transfers to it).
	RequestID uint32
	// Deadline bounds this invocation, including connection establishment
	// and any retries; the zero time leaves Client.Timeout alone in charge.
	Deadline time.Time
	// ShardKey, when non-nil, routes the invocation by consistent hash over
	// the reference's profiles — each profile one shard — instead of the
	// fixed primary-first failover order. See InvokeSharded.
	ShardKey []byte
	// Idempotent declares the operation safe to re-execute: a sharded
	// invocation whose shard fails mid-flight then reroutes transparently to
	// the next ring successor. Without it, only provably-undispatched
	// failures (open circuit, failed probe, TRANSIENT shed) may move on.
	Idempotent bool
}

// retryable reports whether err indicates a broken or unreachable
// connection, the class of failure a fresh dial may fix.
func retryable(err error) bool {
	if errors.Is(err, ErrConnBroken) || errors.Is(err, transport.ErrClosed) {
		return true
	}
	var se *SystemException
	return errors.As(err, &se) && se.RepoID == RepoComm
}

// sleepBackoff waits out the backoff before the retryth retry, bounded by
// the deadline. It reports false when the deadline has expired.
func (c *Client) sleepBackoff(retry int, deadline time.Time) bool {
	d := c.Retry.backoff(retry)
	if !deadline.IsZero() {
		rem := time.Until(deadline)
		if rem <= 0 {
			return false
		}
		if d > rem {
			d = rem
		}
	}
	time.Sleep(d)
	return deadline.IsZero() || time.Now().Before(deadline)
}

// clientConn is one cached connection with its reply demultiplexer.
type clientConn struct {
	conn     *transport.Conn
	client   *Client
	addr     string
	lastRead atomic.Int64 // unix nanos of the last inbound message
	mu       sync.Mutex
	pending  map[uint32]chan *wire.Reply
	err      error
	done     chan struct{}
	// compDone is closed once the compression handshake resolved (the
	// negotiation Pong arrived, the offer was never sent, or the connection
	// failed); the negotiated mask then lives on conn (transport.Conn
	// Compression). Callers that want to compress wait on it first.
	compDone chan struct{}
	compOnce sync.Once
}

// compNonce marks the compression-negotiation Ping so its Pong is told apart
// from keepalive probes (whose nonces count up from 1).
const compNonce uint32 = 0x434f4d50 // "COMP"

func (cc *clientConn) compResolved() { cc.compOnce.Do(func() { close(cc.compDone) }) }

func (cc *clientConn) touch() { cc.lastRead.Store(time.Now().UnixNano()) }

// Errors reported by the client engine.
var (
	ErrClientClosed  = errors.New("orb: client closed")
	ErrForwardLoop   = errors.New("orb: too many location forwards")
	ErrConnBroken    = errors.New("orb: connection broken")
	ErrInvokeTimeout = errors.New("orb: invocation timed out")
	ErrLocateFailed  = errors.New("orb: object not located")
	// ErrAllEndpointsDown reports that every profile of a multi-profile
	// reference was skipped by an open circuit breaker.
	ErrAllEndpointsDown = errors.New("orb: all endpoints circuit-open")
)

// ErrClosedByPeer marks a connection the server shut down in an orderly way
// (CloseConnection). It wraps ErrConnBroken so existing retry/rebind logic
// treats it as a broken connection, while callers can still tell an orderly
// drain from a crash.
var ErrClosedByPeer = fmt.Errorf("%w: peer sent CloseConnection", ErrConnBroken)

// NextRequestID allocates a fresh request id, unique within this client.
func (c *Client) NextRequestID() uint32 {
	return c.nextID.Add(1)
}

// obsInit resolves the event counters from Metrics once. Counters stay nil
// (and their updates no-ops) when metrics are disabled.
func (c *Client) obsInit() {
	c.obsOnce.Do(func() {
		m := c.Metrics
		if m == nil {
			return
		}
		c.mRetries = m.Counter("orb.client.retries")
		c.mFailovers = m.Counter("orb.client.failovers")
		c.mBreakerOpen = m.Counter("orb.client.breaker_open")
		c.mConnBroken = m.Counter("orb.client.conn_broken")
		c.mShardReroute = m.Counter("shard.reroute_total")
		c.mShardSpill = m.Counter("shard.spill_total")
	})
}

func (c *Client) countRetry()      { c.obsInit(); c.mRetries.Inc() }
func (c *Client) countFailover()   { c.obsInit(); c.mFailovers.Inc() }
func (c *Client) countOpen()       { c.obsInit(); c.mBreakerOpen.Inc() }
func (c *Client) countConnBroken() { c.obsInit(); c.mConnBroken.Inc() }

// conn returns (dialing if necessary) the cached connection to addr.
func (c *Client) conn(addr string) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	slot := c.conns[addr]
	if slot == nil {
		slot = &connSlot{}
		c.conns[addr] = slot
	}
	c.mu.Unlock()

	slot.mu.Lock()
	defer slot.mu.Unlock()
	if cc := slot.cc; cc != nil {
		cc.mu.Lock()
		broken := cc.err != nil
		cc.mu.Unlock()
		if !broken {
			return cc, nil
		}
		slot.cc = nil
	}
	dial := c.Dialer
	if dial == nil {
		dial = transport.Dial
	}
	tc, err := dial(addr, c.Transport)
	if err != nil {
		return nil, &SystemException{RepoID: RepoComm, Message: err.Error()}
	}
	// Close may have run while we dialed (the dial holds only the slot
	// lock); publishing now would leak the connection past Close, so
	// re-check under the client lock before the connection becomes visible.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		tc.Close()
		return nil, ErrClientClosed
	}
	c.mu.Unlock()
	cc := &clientConn{
		conn:     tc,
		client:   c,
		addr:     addr,
		pending:  make(map[uint32]chan *wire.Reply),
		done:     make(chan struct{}),
		compDone: make(chan struct{}),
	}
	cc.touch()
	slot.cc = cc
	go cc.readLoop()
	if c.KeepaliveInterval > 0 {
		go cc.keepaliveLoop(c.KeepaliveInterval, c.KeepaliveTimeout)
	}
	// Offer wire compression. The Ping trailer is invisible to peers that
	// predate it (their decoder reads the nonce and ignores the rest), so
	// the offer is safe against any server; a plain Pong resolves to raw.
	if c.Compression != 0 {
		if err := cc.conn.WriteMessage(&wire.Ping{Nonce: compNonce, Offer: true, Codecs: c.Compression}); err != nil {
			cc.compResolved() // stream is broken; readLoop will surface it
		}
	} else {
		cc.compResolved()
	}
	return cc, nil
}

// dropConn removes cc from the connection cache (if it is still the cached
// entry for its address), so the next use redials instead of tripping over
// the poisoned connection.
func (c *Client) dropConn(cc *clientConn) {
	c.mu.Lock()
	slot := c.conns[cc.addr]
	c.mu.Unlock()
	if slot == nil {
		return
	}
	slot.mu.Lock()
	if slot.cc == cc {
		slot.cc = nil
	}
	slot.mu.Unlock()
}

// NumConns reports how many live (unbroken) connections the client holds.
// Connection-sharing tests and the swarm harness assert fan-in shapes with
// it: N bindings sharing one client to one server must show exactly one.
func (c *Client) NumConns() int {
	c.mu.Lock()
	slots := make([]*connSlot, 0, len(c.conns))
	for _, slot := range c.conns {
		slots = append(slots, slot)
	}
	c.mu.Unlock()
	n := 0
	for _, slot := range slots {
		slot.mu.Lock()
		cc := slot.cc
		slot.mu.Unlock()
		if cc == nil {
			continue
		}
		cc.mu.Lock()
		if cc.err == nil {
			n++
		}
		cc.mu.Unlock()
	}
	return n
}

// keepaliveLoop mirrors the server's liveness probing from the client side:
// an idle connection is pinged, and a peer silent past the grace period is
// declared dead, failing every pending request and poisoning registered data
// sinks. This covers the multiport data connections too — a killed server
// rank is detected here instead of stalling transfers until the timeout.
func (cc *clientConn) keepaliveLoop(interval, grace time.Duration) {
	if grace <= 0 {
		grace = interval
	}
	tick := interval / 4
	if grace/4 < tick {
		tick = grace / 4
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var nonce uint32
	var lastPing time.Time
	for {
		select {
		case <-cc.done:
			return
		case now := <-t.C:
			idle := now.Sub(time.Unix(0, cc.lastRead.Load()))
			if idle >= interval+grace {
				cc.fail(fmt.Errorf("%w: keepalive: peer silent for %v", ErrConnBroken, idle))
				return
			}
			if idle >= interval && now.Sub(lastPing) >= interval {
				lastPing = now
				nonce++
				if err := cc.conn.WriteMessage(&wire.Ping{Nonce: nonce}); err != nil {
					cc.fail(fmt.Errorf("%w: keepalive write: %v", ErrConnBroken, err))
					return
				}
			}
		}
	}
}

func (cc *clientConn) readLoop() {
	defer close(cc.done)
	for {
		msg, err := cc.conn.ReadMessage()
		if err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
			return
		}
		cc.touch()
		switch m := msg.(type) {
		case *wire.Reply:
			cc.mu.Lock()
			ch, ok := cc.pending[m.RequestID]
			delete(cc.pending, m.RequestID)
			cc.mu.Unlock()
			if ok {
				ch <- m
			}
		case *wire.Data:
			cc.client.routeData(m)
		case *wire.LocateReply:
			cc.mu.Lock()
			ch, ok := cc.pending[m.RequestID]
			delete(cc.pending, m.RequestID)
			cc.mu.Unlock()
			if ok {
				// Tunnel the locate reply through the reply channel.
				ch <- &wire.Reply{RequestID: m.RequestID, Status: wire.ReplyStatus(m.Status), Args: []byte(m.IOR)}
			}
		case *wire.Ping:
			if err := cc.conn.WriteMessage(&wire.Pong{Nonce: m.Nonce}); err != nil {
				cc.fail(fmt.Errorf("%w: pong write: %v", ErrConnBroken, err))
				return
			}
		case *wire.Pong:
			// Liveness evidence; touch above already recorded it. The
			// negotiation pong additionally resolves the compression
			// handshake: an accepting trailer fixes the connection's codec
			// mask, a plain pong (old peer) leaves it raw.
			if m.Nonce == compNonce {
				if m.Accept {
					cc.conn.SetCompression(m.Codecs&cc.client.Compression, m.Level)
				}
				cc.compResolved()
			}
		case *wire.CloseConnection:
			// Orderly server drain: mark the cached connection broken right
			// now so the next use redials, rather than learning via the
			// subsequent I/O error.
			cc.fail(ErrClosedByPeer)
			return
		case *wire.MessageError:
			cc.fail(fmt.Errorf("%w: peer reported message error", ErrConnBroken))
			return
		default:
			// Servers do not send other message types to clients.
			cc.fail(fmt.Errorf("%w: unexpected %v from server", ErrConnBroken, m.Type()))
			return
		}
	}
}

// fail poisons the connection, evicts it from the cache, unblocks every
// waiter, and poisons registered data sinks so multiport receivers abort
// promptly instead of waiting out their timeout.
func (cc *clientConn) fail(err error) {
	// Record the cause before closing the stream: closing wakes the read
	// loop with a generic I/O error, and the first recorded error is the one
	// waiters see — it must be the root cause (e.g. a keepalive verdict),
	// not the knock-on close.
	cc.mu.Lock()
	already := cc.err != nil
	if !already {
		cc.err = err
	}
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		close(ch)
	}
	cc.mu.Unlock()
	cc.compResolved() // never strand a handshake waiter on a dead connection
	cc.conn.Close()
	if !already {
		// A deliberate Close is not a broken connection; everything else is.
		if !errors.Is(err, ErrClientClosed) {
			cc.client.countConnBroken()
		}
		cc.client.dropConn(cc)
		cc.client.poisonSinks()
	}
}

// poisonSinks delivers a nil sentinel to every registered data sink: a data
// connection died, so any in-flight multiport transfer set may be
// incomplete. Receivers treat the sentinel as a broken-connection error.
func (c *Client) poisonSinks() {
	c.sinkMu.Lock()
	for _, ch := range c.sinks {
		select {
		case ch <- nil:
		default: // sink full; the receiver will fail on its own
		}
	}
	c.sinkMu.Unlock()
}

// replyChans pools the one-shot reply-waiter channels: every request/reply
// invocation needs a buffered channel for its demuxed reply, and at massive
// fan-in that is per-request session state worth recycling. A channel may
// only return to the pool when it is provably quiescent — the reply was
// received and consumed (the read loop deletes the pending entry before
// sending, so no later send can target it). Channels abandoned on timeout
// (a late reply may still land in the buffer) or closed by fail() are left
// for the GC.
var replyChans = sync.Pool{New: func() any { return make(chan *wire.Reply, 1) }}

func putReplyCh(ch chan *wire.Reply) { replyChans.Put(ch) }

func (cc *clientConn) register(id uint32) (chan *wire.Reply, error) {
	ch := replyChans.Get().(chan *wire.Reply)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		// The channel was never visible to the read loop; recycle it.
		putReplyCh(ch)
		return nil, cc.err
	}
	cc.pending[id] = ch
	return ch, nil
}

func (cc *clientConn) unregister(id uint32) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// RegisterDataSink routes inbound Data messages for the given request id to
// ch. The caller must register before the request is sent and must
// UnregisterDataSink afterwards. The channel should be buffered for the
// expected number of transfers.
func (c *Client) RegisterDataSink(requestID uint32, ch chan *wire.Data) {
	c.sinkMu.Lock()
	c.sinks[requestID] = ch
	c.sinkMu.Unlock()
}

// UnregisterDataSink removes the sink for requestID.
func (c *Client) UnregisterDataSink(requestID uint32) {
	c.sinkMu.Lock()
	delete(c.sinks, requestID)
	c.sinkMu.Unlock()
}

func (c *Client) routeData(d *wire.Data) {
	c.sinkMu.Lock()
	ch, ok := c.sinks[d.RequestID]
	c.sinkMu.Unlock()
	if ok {
		ch <- d
	} else {
		// No sink registered (late transfer for a finished request): the
		// message is dropped, so its borrowed frame buffer is returned here.
		d.Release()
	}
}

// InvokeAddr performs a request/reply exchange with the object key at an
// explicit endpoint address. It returns the reply's argument payload.
// Exceptional replies are returned as *UserException or *SystemException.
func (c *Client) InvokeAddr(addr string, key []byte, op string, args []byte, oneway bool) ([]byte, error) {
	return c.InvokeAddrOpts(addr, key, op, args, InvokeOptions{Oneway: oneway})
}

// InvokeAddrID is InvokeAddr with a caller-chosen request id, which the
// multi-port engine needs: the id ties Data transfers to the request.
func (c *Client) InvokeAddrID(requestID uint32, addr string, key []byte, op string, args []byte, oneway bool) ([]byte, error) {
	return c.InvokeAddrOpts(addr, key, op, args, InvokeOptions{Oneway: oneway, RequestID: requestID})
}

// InvokeAddrOpts is the fully-optioned invocation entry point.
func (c *Client) InvokeAddrOpts(addr string, key []byte, op string, args []byte, o InvokeOptions) ([]byte, error) {
	return c.invokeAddr(addr, key, op, args, o, 0)
}

// sendOneway writes a request that expects no reply, reconnecting and
// re-sending under the retry policy: a oneway carries no server-visible
// completion, so re-sending after a broken write is safe.
func (c *Client) sendOneway(addr string, req *wire.Request, deadline time.Time) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		cc, err := c.conn(addr)
		if err == nil {
			err = cc.conn.WriteMessage(req)
			if err == nil {
				return nil
			}
			if !errors.Is(err, transport.ErrTooLarge) {
				// A failed write leaves the stream unusable; poison the
				// connection so the next attempt redials.
				cc.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
				err = &SystemException{RepoID: RepoComm, Message: err.Error()}
			}
		}
		lastErr = err
		if attempt >= c.Retry.attempts() || !retryable(err) {
			return lastErr
		}
		if !c.sleepBackoff(attempt, deadline) {
			return fmt.Errorf("%w: oneway %q past deadline after %d attempts (%v)",
				ErrInvokeTimeout, req.Operation, attempt, lastErr)
		}
		c.countRetry()
	}
}

func (c *Client) invokeAddr(addr string, key []byte, op string, args []byte, o InvokeOptions, depth int) ([]byte, error) {
	if depth > c.MaxForwards {
		return nil, ErrForwardLoop
	}
	id := o.RequestID
	if id == 0 {
		id = c.NextRequestID()
	}
	req := &wire.Request{
		RequestID:        id,
		ResponseExpected: !o.Oneway,
		ObjectKey:        key,
		Operation:        op,
		Principal:        c.Principal,
		Args:             args,
	}
	if o.Oneway {
		return nil, c.sendOneway(addr, req, o.Deadline)
	}
	cc, err := c.conn(addr)
	if err != nil {
		return nil, err
	}
	ch, err := cc.register(id)
	if err != nil {
		return nil, err
	}
	if err := cc.conn.WriteMessage(req); err != nil {
		cc.unregister(id)
		if !errors.Is(err, transport.ErrTooLarge) {
			cc.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
		}
		return nil, &SystemException{RepoID: RepoComm, Message: err.Error()}
	}
	reply, err := c.await(cc, ch, id, o.Deadline)
	if err != nil {
		return nil, err
	}
	switch reply.Status {
	case wire.ReplyNoException:
		return reply.Args, nil
	case wire.ReplyLocationForward:
		fwd, perr := ParseIOR(string(reply.Args))
		if perr != nil {
			return nil, perr
		}
		ep, perr := fwd.Primary()
		if perr != nil {
			return nil, perr
		}
		return c.invokeAddr(ep.Addr(), fwd.Key, op, args, InvokeOptions{Deadline: o.Deadline}, depth+1)
	default:
		return nil, decodeException(reply.Status, reply.Args)
	}
}

// awaitBound computes the effective wait for one reply: the tighter of the
// client-wide Timeout and the per-invocation deadline.
func (c *Client) awaitBound(deadline time.Time) (time.Duration, bool) {
	d := c.Timeout
	if !deadline.IsZero() {
		rem := time.Until(deadline)
		if rem <= 0 {
			return 0, false
		}
		if d <= 0 || rem < d {
			d = rem
		}
	}
	return d, true
}

func (c *Client) await(cc *clientConn, ch chan *wire.Reply, id uint32, deadline time.Time) (*wire.Reply, error) {
	bound, ok := c.awaitBound(deadline)
	if !ok {
		cc.unregister(id)
		return nil, fmt.Errorf("%w: request %d past deadline", ErrInvokeTimeout, id)
	}
	var timeout <-chan time.Time
	if bound > 0 {
		t := time.NewTimer(bound)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = ErrConnBroken
			}
			return nil, err
		}
		// The reply was consumed and the read loop removed the pending entry
		// before sending it: the channel is empty and unreachable — recycle.
		putReplyCh(ch)
		return reply, nil
	case <-timeout:
		cc.unregister(id)
		return nil, fmt.Errorf("%w: request %d after %v", ErrInvokeTimeout, id, bound)
	}
}

// Invoke performs a request on the object's primary endpoint.
func (c *Client) Invoke(ref IOR, op string, args []byte, oneway bool) ([]byte, error) {
	return c.InvokeOpts(ref, op, args, InvokeOptions{Oneway: oneway})
}

// InvokeDeadline is Invoke bounded by an absolute per-invocation deadline,
// overriding a longer (or absent) Client.Timeout for this call only.
func (c *Client) InvokeDeadline(ref IOR, op string, args []byte, oneway bool, deadline time.Time) ([]byte, error) {
	return c.InvokeOpts(ref, op, args, InvokeOptions{Oneway: oneway, Deadline: deadline})
}

// InvokeOpts performs a request with full per-invocation options. For a
// single-profile reference it targets the primary endpoint directly. For a
// multi-profile reference it walks the profiles in order, gated by the
// per-endpoint circuit breaker: endpoints with an open circuit are skipped,
// endpoints due a half-open probe are first checked with a LocateRequest,
// and connection-level or TRANSIENT failures move on to the next profile.
func (c *Client) InvokeOpts(ref IOR, op string, args []byte, o InvokeOptions) ([]byte, error) {
	if o.ShardKey != nil {
		out, _, err := c.InvokeSharded(ref, op, args, o)
		return out, err
	}
	addrs, err := ref.ProfileAddrs()
	if err != nil {
		return nil, err
	}
	if len(addrs) == 1 && !c.Breaker.enabled() {
		return c.InvokeAddrOpts(addrs[0], ref.Key, op, args, o)
	}
	var lastErr error
	for _, addr := range addrs {
		bk := c.breakerFor(addr)
		if bk != nil {
			ok, probe := bk.allow(time.Now())
			if !ok {
				continue
			}
			if probe {
				// Half-open: prove the endpoint alive with a cheap
				// LocateRequest before trusting it with the real call.
				if _, perr := c.locateOnce(addr, ref.Key, o.Deadline); perr != nil {
					bk.failure(time.Now())
					if !failoverable(perr) {
						return nil, perr
					}
					lastErr = perr
					c.countFailover()
					continue
				}
				bk.success()
			}
		}
		out, ierr := c.InvokeAddrOpts(addr, ref.Key, op, args, o)
		if ierr == nil {
			if bk != nil {
				bk.success()
			}
			return out, nil
		}
		if bk != nil && retryable(ierr) {
			bk.failure(time.Now())
		}
		if !failoverable(ierr) {
			return nil, ierr
		}
		lastErr = ierr
		c.countFailover()
	}
	if lastErr == nil {
		// Every profile was skipped by an open circuit.
		return nil, ErrAllEndpointsDown
	}
	return nil, lastErr
}

// InvokeRank performs a request on the endpoint serving a specific
// computing thread of an SPMD object.
func (c *Client) InvokeRank(ref IOR, rank int, op string, args []byte, oneway bool) ([]byte, error) {
	ep, err := ref.EndpointFor(rank)
	if err != nil {
		return nil, err
	}
	return c.InvokeAddr(ep.Addr(), ref.Key, op, args, oneway)
}

// NegotiatedCompression reports the codec mask negotiated with the endpoint
// serving ref's communicating thread, dialing the connection (which runs the
// handshake) if needed. It blocks until the handshake resolves, bounded by
// wait (a default applies when wait <= 0); an unreachable endpoint, a peer
// that never answers, or one predating the extension all resolve to 0 (raw).
func (c *Client) NegotiatedCompression(ref IOR, wait time.Duration) uint8 {
	if c.Compression == 0 {
		return 0
	}
	ep, err := ref.EndpointFor(0)
	if err != nil {
		return 0
	}
	cc, err := c.conn(ep.Addr())
	if err != nil {
		return 0
	}
	if wait <= 0 {
		wait = 5 * time.Second
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-cc.compDone:
	case <-t.C:
		return 0
	}
	codecs, _ := cc.conn.Compression()
	return codecs
}

// WireBandwidth returns the estimated effective write bandwidth
// (bytes/sec) of the connection serving ref's communicating thread, or
// 0 when the connection is missing or has no measurable Data write
// yet. The adaptive compression policy feeds it to the per-leg
// decision; like NegotiatedCompression it dials if needed, so the
// answer always describes the connection a transfer would actually use.
func (c *Client) WireBandwidth(ref IOR) float64 {
	ep, err := ref.EndpointFor(0)
	if err != nil {
		return 0
	}
	cc, err := c.conn(ep.Addr())
	if err != nil {
		return 0
	}
	return cc.conn.WriteBandwidth()
}

// SendData ships one multi-port argument transfer to the endpoint serving
// the destination computing thread.
func (c *Client) SendData(ref IOR, d *wire.Data) error {
	ep, err := ref.EndpointFor(int(d.DstRank))
	if err != nil {
		return err
	}
	cc, err := c.conn(ep.Addr())
	if err != nil {
		return err
	}
	return cc.conn.WriteMessage(d)
}

// Locate asks the primary endpoint whether it serves ref's object key.
// Locate is idempotent, so a broken connection is transparently redialed
// and the probe re-sent, up to the client's retry policy.
func (c *Client) Locate(ref IOR) (bool, error) {
	return c.LocateDeadline(ref, time.Time{})
}

// LocateDeadline is Locate bounded by an absolute deadline spanning every
// reconnect attempt.
func (c *Client) LocateDeadline(ref IOR, deadline time.Time) (bool, error) {
	ep, err := ref.Primary()
	if err != nil {
		return false, err
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		here, err := c.locateOnce(ep.Addr(), ref.Key, deadline)
		if err == nil {
			return here, nil
		}
		lastErr = err
		if attempt >= c.Retry.attempts() || !retryable(err) {
			return false, lastErr
		}
		if !c.sleepBackoff(attempt, deadline) {
			return false, fmt.Errorf("%w: locate past deadline after %d attempts (%v)",
				ErrInvokeTimeout, attempt, lastErr)
		}
		c.countRetry()
	}
}

func (c *Client) locateOnce(addr string, key []byte, deadline time.Time) (bool, error) {
	cc, err := c.conn(addr)
	if err != nil {
		return false, err
	}
	id := c.NextRequestID()
	ch, err := cc.register(id)
	if err != nil {
		return false, err
	}
	if err := cc.conn.WriteMessage(&wire.LocateRequest{RequestID: id, ObjectKey: key}); err != nil {
		cc.unregister(id)
		if !errors.Is(err, transport.ErrTooLarge) {
			cc.fail(fmt.Errorf("%w: %v", ErrConnBroken, err))
		}
		return false, &SystemException{RepoID: RepoComm, Message: err.Error()}
	}
	reply, err := c.await(cc, ch, id, deadline)
	if err != nil {
		return false, err
	}
	return wire.LocateStatus(reply.Status) == wire.LocateHere, nil
}

// Close tears down all cached connections.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	slots := make([]*connSlot, 0, len(c.conns))
	for _, slot := range c.conns {
		slots = append(slots, slot)
	}
	c.conns = map[string]*connSlot{}
	c.mu.Unlock()
	for _, slot := range slots {
		slot.mu.Lock()
		cc := slot.cc
		slot.cc = nil
		slot.mu.Unlock()
		if cc != nil {
			cc.fail(ErrClientClosed)
			<-cc.done
		}
	}
}
