package orb

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// Fan-in engine tests: the dispatch worker pool, shutdown-versus-admission
// races, per-connection caps on multiplexed connections, and the agreement
// between client-observed outcomes, server counters, and the metrics
// registry.

// TestShutdownRacesAdmission is the drain-race regression test: Shutdown
// runs concurrently with a flood of admissions, so requests hit every phase
// of the engine's teardown — shed at the draining gate, shed out of the
// queue, handed to a worker that is being woken by the closing stop channel
// (the lost-handoff window), or dispatched and drained. Every invocation
// must resolve as a reply, a TRANSIENT shed, or a broken/closed connection;
// none may hang or vanish.
func TestShutdownRacesAdmission(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for round := 0; round < 5; round++ {
		srv, err := NewServerOpts("127.0.0.1:0", ServerOptions{
			MaxInFlight:     4,
			QueueDepth:      8,
			MaxConnInFlight: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		key := []byte("race")
		srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
			time.Sleep(100 * time.Microsecond)
			out.WriteULong(1)
			return nil
		}))

		c := NewClient()
		c.Timeout = 10 * time.Second

		const invokers = 16
		var resolved, unexpected atomic.Int64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < invokers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, err := c.InvokeAddr(srv.Addr(), key, "work", NewArgEncoder().Bytes(), false)
					resolved.Add(1)
					switch {
					case err == nil, IsTransient(err):
					case errors.Is(err, ErrConnBroken), errors.Is(err, ErrClientClosed):
					default:
						var se *SystemException
						if errors.As(err, &se) && se.RepoID == RepoComm {
							continue // dial/write raced the teardown
						}
						unexpected.Add(1)
						t.Errorf("round %d: unexpected invocation outcome: %v", round, err)
					}
				}
			}()
		}

		// Let the flood build, then yank the server out from under it.
		for resolved.Load() < 50 {
			time.Sleep(time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("round %d: shutdown: %v", round, err)
		}
		cancel()
		close(stop)
		wg.Wait()
		c.Close()

		st := srv.Stats()
		if st.InFlight != 0 || st.Queued != 0 {
			t.Fatalf("round %d: gauges not drained after shutdown: %d in flight, %d queued",
				round, st.InFlight, st.Queued)
		}
		if st.Workers != 0 {
			t.Fatalf("round %d: %d workers survived a clean shutdown", round, st.Workers)
		}
	}
}

// TestQueueExhaustionWithConcurrentDrains fills the admission queue, then
// drains and refills it concurrently: releases of in-flight dispatches (each
// one pulls a queued item into its worker) race new admissions into the
// freed slots. The books must balance exactly — every request either
// dispatched or shed, gauges at zero after the dust settles.
func TestQueueExhaustionWithConcurrentDrains(t *testing.T) {
	defer testutil.LeakCheck(t)()
	const maxInFlight, queueDepth = 2, 2
	key := []byte("churn")
	srv, err := NewServerOpts("127.0.0.1:0", ServerOptions{
		MaxInFlight:     maxInFlight,
		QueueDepth:      queueDepth,
		MaxConnInFlight: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	gate := make(chan struct{}, 64)
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		<-gate // each token drains one dispatch
		out.WriteULong(1)
		return nil
	}))

	c := NewClient()
	c.Timeout = 10 * time.Second
	defer c.Close()

	const total = 48
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.InvokeAddr(srv.Addr(), key, "work", NewArgEncoder().Bytes(), false)
			switch {
			case err == nil:
				ok.Add(1)
			case IsTransient(err):
				shed.Add(1)
			default:
				t.Errorf("invoke: %v", err)
			}
		}()
		if i%3 == 0 {
			gate <- struct{}{} // concurrent drain while the queue churns
		}
	}
	// Release everything still parked.
	for i := 0; i < total; i++ {
		gate <- struct{}{}
	}
	wg.Wait()

	if ok.Load() == 0 || shed.Load() == 0 {
		t.Errorf("want both completions and sheds under queue churn, got %d ok / %d shed", ok.Load(), shed.Load())
	}
	if got := ok.Load() + shed.Load(); got != total {
		t.Errorf("accounting: %d resolved, %d issued", got, total)
	}
	st := srv.Stats()
	if uint64(ok.Load()) != st.Dispatched {
		t.Errorf("server dispatched %d, clients completed %d", st.Dispatched, ok.Load())
	}
	if uint64(shed.Load()) != st.Shed {
		t.Errorf("server shed %d, clients saw %d TRANSIENTs", st.Shed, shed.Load())
	}
	testutil.Eventually(t, 5*time.Second, "gauges never drained", func() bool {
		st := srv.Stats()
		return st.InFlight == 0 && st.Queued == 0
	})
}

// TestMaxConnInFlightOnSharedConn pins the per-connection cap on a single
// multiplexed connection: many logical clients sharing one orb.Client share
// one socket, and their aggregate in-flight count is what the cap governs.
func TestMaxConnInFlightOnSharedConn(t *testing.T) {
	defer testutil.LeakCheck(t)()
	const connCap = 4
	key := []byte("cap")
	srv, addr, release := blockingServer(t, ServerOptions{
		MaxInFlight:     -1, // isolate the per-conn cap
		QueueDepth:      -1,
		MaxConnInFlight: connCap,
	}, key)
	// Teardown order matters under the leak check: unblock the servant, then
	// close the server, and only then measure goroutines (defers run LIFO).
	defer srv.Close()
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()

	c := NewClient() // one client: all invocations multiplex over one conn
	c.Timeout = 10 * time.Second
	defer c.Close()

	const total = connCap + 6
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		go func() {
			_, err := c.InvokeAddr(addr, key, "work", NewArgEncoder().Bytes(), false)
			errs <- err
		}()
	}

	// The overflow must shed against the connection cap while the capped
	// dispatches are still parked.
	var sheds int
	for i := 0; i < total-connCap; i++ {
		select {
		case err := <-errs:
			if !IsTransient(err) {
				t.Fatalf("overflow outcome: %v, want TRANSIENT", err)
			}
			if !strings.Contains(err.Error(), "connection request cap") {
				t.Fatalf("shed reason %q does not name the connection cap", err)
			}
			sheds++
		case <-time.After(10 * time.Second):
			t.Fatalf("overflow did not shed (got %d sheds)", sheds)
		}
	}
	if c.NumConns() != 1 {
		t.Fatalf("test premise broken: %d conns, want exactly 1 multiplexed", c.NumConns())
	}
	releaseOnce()
	for i := 0; i < connCap; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("capped dispatch failed after release: %v", err)
		}
	}
}

// TestShedAccountingAcrossLayers drives a saturated server and asserts the
// three books agree: client-observed TRANSIENTs, the server's own Stats, and
// the pull-based registry counters.
func TestShedAccountingAcrossLayers(t *testing.T) {
	defer testutil.LeakCheck(t)()
	reg := obs.NewRegistry()
	key := []byte("books")
	srv, addr, release := blockingServer(t, ServerOptions{
		MaxInFlight:     1,
		QueueDepth:      -1, // no queue: overflow sheds immediately
		MaxConnInFlight: -1,
		Metrics:         reg,
	}, key)
	defer srv.Close()
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()

	c := NewClient()
	c.Timeout = 10 * time.Second
	defer c.Close()

	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	const total = 12
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.InvokeAddr(addr, key, "work", NewArgEncoder().Bytes(), false)
			switch {
			case err == nil:
				ok.Add(1)
			case IsTransient(err):
				shed.Add(1)
			default:
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	// Let the single slot churn a little: shed pressure builds, then drain.
	testutil.Eventually(t, 5*time.Second, "no shedding materialized", func() bool {
		return srv.Stats().Shed > 0
	})
	releaseOnce()
	wg.Wait()

	st := srv.Stats()
	if shed.Load() != st.Shed {
		t.Errorf("client TRANSIENTs %d != server shed %d", shed.Load(), st.Shed)
	}
	if ok.Load() != st.Dispatched {
		t.Errorf("client completions %d != server dispatched %d", ok.Load(), st.Dispatched)
	}
	snap := reg.Snapshot()
	if got := snap.Pulled["orb.server.shed"]; got != int64(st.Shed) {
		t.Errorf("registry shed %d != server shed %d", got, st.Shed)
	}
	if got := snap.Pulled["orb.server.dispatched"]; got != int64(st.Dispatched) {
		t.Errorf("registry dispatched %d != server dispatched %d", got, st.Dispatched)
	}
	// The histogram observation lands just after the reply write, so it can
	// trail the client's view by a beat.
	testutil.Eventually(t, 5*time.Second, "dispatch histogram never matched the dispatch counter", func() bool {
		return reg.Snapshot().Histograms["orb.server.dispatch_ns"].Count == st.Dispatched
	})
}

// TestWorkerPoolShrinksAfterBurst pins the reaper: a burst of concurrent
// dispatches grows the pool, and once the burst passes, idle workers are
// reaped back down instead of pinning the peak goroutine count forever.
func TestWorkerPoolShrinksAfterBurst(t *testing.T) {
	defer testutil.LeakCheck(t)()
	key := []byte("burst")
	srv, err := NewServerOpts("127.0.0.1:0", ServerOptions{
		MaxInFlight:       64,
		MaxConnInFlight:   -1,
		WorkerIdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		time.Sleep(5 * time.Millisecond)
		out.WriteULong(1)
		return nil
	}))

	c := NewClient()
	c.Timeout = 10 * time.Second
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.InvokeAddr(srv.Addr(), key, "work", NewArgEncoder().Bytes(), false); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	if w := srv.Stats().Workers; w < 2 {
		t.Fatalf("burst of 32 concurrent dispatches grew only %d workers", w)
	}
	testutil.Eventually(t, 5*time.Second, "idle workers never reaped", func() bool {
		return srv.Stats().Workers == 0
	})
}
