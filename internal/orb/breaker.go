package orb

import (
	"sync"
	"time"
)

// BreakerPolicy configures the per-endpoint circuit breaker used when a
// reference carries multiple profiles. A breaker keeps the client from
// hammering an endpoint that is clearly down: after Threshold consecutive
// connection-level failures the circuit opens and the endpoint is skipped;
// after Cooldown one probe (a LocateRequest) is allowed through — success
// closes the circuit, failure re-opens it for another cooldown.
//
// Only connection-level failures (dial errors, broken connections,
// COMM_FAILURE) count against an endpoint. Application errors and TRANSIENT
// shedding mean the endpoint is alive and do not trip the breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit. Values <= 0 disable breakers entirely.
	Threshold int
	// Cooldown is how long an open circuit rejects before allowing a
	// half-open probe. Zero defaults to one second.
	Cooldown time.Duration
}

func (p BreakerPolicy) enabled() bool { return p.Threshold > 0 }

func (p BreakerPolicy) cooldown() time.Duration {
	if p.Cooldown <= 0 {
		return time.Second
	}
	return p.Cooldown
}

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

// breaker is the per-endpoint state machine. All transitions happen under mu.
type breaker struct {
	policy BreakerPolicy
	onOpen func() // invoked (outside mu) on each closed/half-open -> open transition

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive connection-level failures
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// allow reports whether a request may proceed against this endpoint, and
// whether it must first run a liveness probe (half-open). At most one probe
// is admitted per half-open period; concurrent callers are rejected until
// the probe settles.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true, false
	case bkOpen:
		if now.Sub(b.openedAt) < b.policy.cooldown() {
			return false, false
		}
		b.state = bkHalfOpen
		b.probing = true
		return true, true
	default: // bkHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// success records a working exchange: the circuit closes.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = bkClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a connection-level failure. A half-open probe failure or
// hitting the threshold (re-)opens the circuit.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	b.fails++
	opened := false
	if b.state == bkHalfOpen || b.fails >= b.policy.Threshold {
		opened = b.state != bkOpen
		b.state = bkOpen
		b.openedAt = now
		b.probing = false
	}
	b.mu.Unlock()
	if opened && b.onOpen != nil {
		b.onOpen()
	}
}

// breakerFor returns the breaker guarding addr, or nil when breakers are
// disabled.
func (c *Client) breakerFor(addr string) *breaker {
	if !c.Breaker.enabled() {
		return nil
	}
	c.bkMu.Lock()
	defer c.bkMu.Unlock()
	b, ok := c.breakers[addr]
	if !ok {
		b = &breaker{policy: c.Breaker, onOpen: c.countOpen}
		c.breakers[addr] = b
	}
	return b
}

// failoverable reports whether err justifies moving on to the next profile:
// connection-level failures (the endpoint may be down) and TRANSIENT
// shedding (the request was provably never dispatched, so a replica can
// safely take it).
func failoverable(err error) bool {
	return retryable(err) || IsTransient(err)
}
