package orb

import (
	"reflect"
	"testing"
)

func TestIORMultiProfileRoundTrip(t *testing.T) {
	ref := IOR{
		TypeID:  "IDL:test/rep:1.0",
		Key:     []byte("obj"),
		Threads: 2,
		Endpoints: []Endpoint{
			{Host: "hostA", Port: 1000, Rank: 0},
			{Host: "hostA", Port: 1001, Rank: 1},
		},
		Alternates: [][]Endpoint{
			{{Host: "hostB", Port: 2000, Rank: 0}, {Host: "hostB", Port: 2001, Rank: 1}},
			{{Host: "hostC", Port: 3000, Rank: 0}},
		},
	}
	got, err := ParseIOR(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, ref)
	}
	addrs, err := got.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hostA:1000", "hostB:2000", "hostC:3000"}
	if !reflect.DeepEqual(addrs, want) {
		t.Fatalf("profile addrs %v, want %v", addrs, want)
	}
}

func TestIORSingleProfileStillRoundTrips(t *testing.T) {
	ref := IOR{TypeID: "IDL:test/one:1.0", Key: []byte("k"), Threads: 1,
		Endpoints: []Endpoint{{Host: "h", Port: 9, Rank: 0}}}
	got, err := ParseIOR(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Alternates) != 0 {
		t.Fatalf("phantom alternates: %+v", got.Alternates)
	}
	addrs, err := got.ProfileAddrs()
	if err != nil || len(addrs) != 1 || addrs[0] != "h:9" {
		t.Fatalf("profile addrs %v, %v", addrs, err)
	}
}

func TestAddProfileDedupes(t *testing.T) {
	var ref IOR
	a := []Endpoint{{Host: "a", Port: 1, Rank: 0}}
	b := []Endpoint{{Host: "b", Port: 2, Rank: 0}}
	ref.AddProfile(a) // first profile becomes primary
	ref.AddProfile(b)
	ref.AddProfile(a) // duplicate of the primary
	ref.AddProfile(b) // duplicate of an alternate
	ref.AddProfile(nil)
	if len(ref.Endpoints) != 1 || ref.Endpoints[0].Host != "a" {
		t.Fatalf("primary %+v", ref.Endpoints)
	}
	if len(ref.Alternates) != 1 || ref.Alternates[0][0].Host != "b" {
		t.Fatalf("alternates %+v", ref.Alternates)
	}
}

// FuzzParseIOR throws arbitrary strings at the reference parser: any input
// must produce an IOR or an error — never a panic — and an accepted
// reference must survive a String→Parse round trip.
func FuzzParseIOR(f *testing.F) {
	seeds := []IOR{
		{TypeID: "IDL:t:1.0", Key: []byte("k"), Threads: 1,
			Endpoints: []Endpoint{{Host: "h", Port: 1, Rank: 0}}},
		{TypeID: "IDL:t:1.0", Key: []byte("k"), Threads: 2,
			Endpoints:  []Endpoint{{Host: "h", Port: 1, Rank: 0}, {Host: "h", Port: 2, Rank: 1}},
			Alternates: [][]Endpoint{{{Host: "i", Port: 3, Rank: 0}, {Host: "i", Port: 4, Rank: 1}}}},
		{}, // nil reference
	}
	for _, r := range seeds {
		f.Add(r.String())
	}
	f.Add("IOR:")
	f.Add("IOR:zz")
	f.Add("not-an-ior")

	f.Fuzz(func(t *testing.T, s string) {
		ref, err := ParseIOR(s)
		if err != nil {
			return
		}
		again, err := ParseIOR(ref.String())
		if err != nil {
			t.Fatalf("accepted reference does not re-parse: %v", err)
		}
		if !reflect.DeepEqual(again, ref) {
			t.Fatalf("round trip changed the reference:\n got %+v\nwas %+v", again, ref)
		}
	})
}
