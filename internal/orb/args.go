package orb

import (
	"fmt"

	"repro/internal/cdr"
)

// Argument payloads (the Args fields of Request and Reply) are
// self-describing: the first octet is a byte-order flag, and the remaining
// bytes are the CDR stream of the operation's arguments or results with the
// payload start as alignment origin — exactly the layout of a CDR
// encapsulation body. This keeps receiver-makes-right working even when a
// payload is copied between connections of different orders (the SPMD
// centralized engine forwards payloads it did not produce).

// NewArgEncoder starts an argument payload in the native order. Generated
// stubs and skeletons write their arguments into it.
func NewArgEncoder() *cdr.Encoder {
	e := cdr.NewEncoder(cdr.NativeOrder)
	e.WriteOctet(byte(cdr.NativeOrder))
	return e
}

// ResetArgEncoder rewinds an encoder produced by NewArgEncoder to an empty
// argument payload, keeping its buffer. Any Bytes() slice taken before the
// reset is invalidated; callers reuse an encoder only once its previous
// payload has been copied out.
func ResetArgEncoder(e *cdr.Encoder) {
	e.Reset()
	e.WriteOctet(byte(cdr.NativeOrder))
}

// ArgDecoder opens an argument payload produced by NewArgEncoder. An empty
// payload is valid (operation with no arguments/results) and yields an
// exhausted decoder.
func ArgDecoder(payload []byte) (*cdr.Decoder, error) {
	if len(payload) == 0 {
		return cdr.NewDecoder(nil, cdr.NativeOrder), nil
	}
	if payload[0] > 1 {
		return nil, fmt.Errorf("%w: argument payload order flag %d", cdr.ErrInvalid, payload[0])
	}
	d := cdr.NewDecoder(payload, cdr.ByteOrder(payload[0]))
	if _, err := d.ReadOctet(); err != nil {
		return nil, err
	}
	return d, nil
}
