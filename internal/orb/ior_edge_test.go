package orb

import (
	"encoding/hex"
	"reflect"
	"testing"

	"repro/internal/cdr"
)

// TestIOROldFormatStillParses pins backward compatibility with references
// written before multi-profile support: their encapsulation simply ends after
// the endpoint list, with no alternate-profile count. The parser must accept
// them as zero-alternate references, and re-stringifying must produce a
// reference the current format round-trips.
func TestIOROldFormatStillParses(t *testing.T) {
	// Hand-build the pre-multi-profile encoding: byte-order octet, then an
	// encapsulation of {type id, key, threads, endpoints} and nothing more.
	e := cdr.NewEncoder(cdr.NativeOrder)
	e.WriteOctet(byte(cdr.NativeOrder))
	e.WriteEncapsulation(func(inner *cdr.Encoder) {
		inner.WriteString("IDL:test/old:1.0")
		inner.WriteOctets([]byte("legacy"))
		inner.WriteULong(2) // threads
		inner.WriteULong(2) // endpoint count
		inner.WriteString("hostA")
		inner.WriteULong(1000)
		inner.WriteULong(0)
		inner.WriteString("hostA")
		inner.WriteULong(1001)
		inner.WriteULong(1)
	})
	old := "IOR:" + hex.EncodeToString(e.Bytes())

	ref, err := ParseIOR(old)
	if err != nil {
		t.Fatalf("old-format reference rejected: %v", err)
	}
	want := IOR{
		TypeID:  "IDL:test/old:1.0",
		Key:     []byte("legacy"),
		Threads: 2,
		Endpoints: []Endpoint{
			{Host: "hostA", Port: 1000, Rank: 0},
			{Host: "hostA", Port: 1001, Rank: 1},
		},
	}
	if !reflect.DeepEqual(ref, want) {
		t.Fatalf("old-format parse:\n got %+v\nwant %+v", ref, want)
	}
	if len(ref.Alternates) != 0 {
		t.Fatalf("old-format reference grew alternates: %+v", ref.Alternates)
	}
	// Re-stringified, it becomes a current-format reference with an explicit
	// zero alternate count — and must still describe the same object.
	again, err := ParseIOR(ref.String())
	if err != nil || !reflect.DeepEqual(again, want) {
		t.Fatalf("re-stringified old reference:\n got %+v, %v\nwant %+v", again, err, want)
	}
}

// TestIORZeroAndEmptyAlternates pins the two degenerate profile shapes: an
// explicit zero-alternate reference stays free of phantom profiles through
// the wire, and an empty alternate profile (zero endpoints) survives the
// round trip but is skipped by failover address selection rather than
// yielding a bogus address or a panic.
func TestIORZeroAndEmptyAlternates(t *testing.T) {
	ref := IOR{
		TypeID:     "IDL:test/empty:1.0",
		Key:        []byte("k"),
		Threads:    1,
		Endpoints:  []Endpoint{{Host: "h", Port: 9, Rank: 0}},
		Alternates: [][]Endpoint{},
	}
	got, err := ParseIOR(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Alternates) != 0 {
		t.Fatalf("zero-alternate reference grew profiles: %+v", got.Alternates)
	}

	ref.Alternates = [][]Endpoint{{}, {{Host: "i", Port: 10, Rank: 0}}}
	got, err = ParseIOR(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Alternates) != 2 || len(got.Alternates[0]) != 0 || len(got.Alternates[1]) != 1 {
		t.Fatalf("alternate shapes changed in flight: %+v", got.Alternates)
	}
	addrs, err := got.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"h:9", "i:10"}; !reflect.DeepEqual(addrs, want) {
		t.Fatalf("profile addrs %v, want %v (empty profile skipped)", addrs, want)
	}
}

// TestIORDuplicateEndpointsPreserved pins that the wire codec is a faithful
// carrier: profiles that repeat an address — within one profile or across
// profiles — are transported verbatim. Deduplication is AddProfile's policy
// at assembly time, not the parser's; a reference built elsewhere may repeat
// addresses deliberately (e.g. one host serving two ranks).
func TestIORDuplicateEndpointsPreserved(t *testing.T) {
	ref := IOR{
		TypeID:  "IDL:test/dup:1.0",
		Key:     []byte("d"),
		Threads: 2,
		Endpoints: []Endpoint{
			{Host: "h", Port: 7, Rank: 0},
			{Host: "h", Port: 7, Rank: 1}, // same address serving both ranks
		},
		Alternates: [][]Endpoint{
			{{Host: "h", Port: 7, Rank: 0}}, // duplicates the primary address
			{{Host: "h", Port: 7, Rank: 0}}, // and again
		},
	}
	got, err := ParseIOR(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("duplicate endpoints not preserved:\n got %+v\nwant %+v", got, ref)
	}
	addrs, err := got.ProfileAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"h:7", "h:7", "h:7"}; !reflect.DeepEqual(addrs, want) {
		t.Fatalf("profile addrs %v, want %v", addrs, want)
	}
	// AddProfile applied to the parsed reference must still dedupe: the
	// policy layer sees through what the codec faithfully carried.
	before := len(got.Alternates)
	got.AddProfile([]Endpoint{{Host: "h", Port: 7, Rank: 0}})
	if len(got.Alternates) != before {
		t.Fatalf("AddProfile accepted a duplicate primary address: %+v", got.Alternates)
	}
}
