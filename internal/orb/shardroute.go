package orb

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Sharded object groups: a multi-profile reference whose profiles are N
// independent server groups (shards) behind one object reference, assembled
// by naming.BindReplica from each shard's own announcement. Instead of the
// fixed primary-first failover of InvokeOpts, a sharded invocation hashes
// its shard key onto a consistent-hash ring over the profiles and targets
// the owning shard; the PR 2 per-endpoint circuit breakers act as the
// health signal, spilling traffic from a broken or shedding shard to the
// next healthy ring successor.
//
// Reroute semantics: an idempotent invocation reroutes transparently on any
// failoverable error — the caller sees only success or a total outage. A
// non-idempotent invocation advances only past shards that provably never
// dispatched it (open circuit skipped before any send, a failed half-open
// probe, TRANSIENT shedding); an ambiguous failure (broken connection after
// the request was written) surfaces as one coherent *ShardError pinned to
// the shard that failed.

// ShardPolicy configures the client's consistent-hash routing.
type ShardPolicy struct {
	// VirtualNodes is the number of ring points per shard;
	// <= 0 means shard.DefaultVirtualNodes. Every client of a shard group
	// must use the same value or their rings disagree.
	VirtualNodes int
}

// ShardError pins an invocation failure to the shard that produced it. It is
// the single coherent error a non-idempotent sharded invocation surfaces
// when its outcome on that shard is ambiguous.
type ShardError struct {
	Shard string // primary address of the failing shard
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("orb: shard %s: %v", e.Shard, e.Err) }
func (e *ShardError) Unwrap() error { return e.Err }

// shardGroup is the cached routing state for one profile set: the ring plus
// the per-shard instruments, resolved once so the per-invocation hot path
// does no registry lookups.
type shardGroup struct {
	ring  *shard.Ring
	addrs []string
	// Per-shard instruments; nil (and no-ops) when metrics are off.
	picks    []*obs.Counter
	reroutes []*obs.Counter
	spills   []*obs.Counter
	healthy  []*obs.Gauge
}

// shardGroupFor returns the routing state for the profile addresses,
// building and caching it on first sight of this membership. A refreshed
// reference (new membership through the naming domain) has a different
// address list and gets a fresh ring; stale entries are retained —
// membership churn is rare and entries are small.
func (c *Client) shardGroupFor(addrs []string) *shardGroup {
	key := strings.Join(addrs, " ")
	c.sgMu.Lock()
	defer c.sgMu.Unlock()
	if g, ok := c.sgCache[key]; ok {
		return g
	}
	g := &shardGroup{
		ring:     shard.New(addrs, c.Shard.VirtualNodes),
		addrs:    addrs,
		picks:    make([]*obs.Counter, len(addrs)),
		reroutes: make([]*obs.Counter, len(addrs)),
		spills:   make([]*obs.Counter, len(addrs)),
		healthy:  make([]*obs.Gauge, len(addrs)),
	}
	if m := c.Metrics; m != nil {
		for i, addr := range addrs {
			g.picks[i] = m.Counter("shard.picks_total." + addr)
			g.reroutes[i] = m.Counter("shard.reroute_total." + addr)
			g.spills[i] = m.Counter("shard.spill_total." + addr)
			g.healthy[i] = m.Gauge("shard.healthy." + addr)
			g.healthy[i].Set(1)
		}
	}
	c.sgCache[key] = g
	return g
}

// countShardReroute and countShardSpill bump the aggregate counters the
// shard chaos suite and dashboards watch ("shard.reroute_total",
// "shard.spill_total"), plus the per-shard counter.
func (c *Client) countShardReroute(g *shardGroup, idx int) {
	c.obsInit()
	c.mShardReroute.Inc()
	g.reroutes[idx].Inc()
}

func (c *Client) countShardSpill(g *shardGroup, idx int) {
	c.obsInit()
	c.mShardSpill.Inc()
	g.spills[idx].Inc()
}

// InvokeSharded performs a request routed by consistent hash of o.ShardKey
// across the reference's profiles, each profile being one shard. It returns
// the reply payload and the index (into ref.Profiles()) of the shard that
// served the invocation; the index is -1 on failure.
//
// The owner shard is tried first, then the ring successors. A shard whose
// circuit is open is spilled past without a send; a shard due a half-open
// probe is first checked with a LocateRequest exactly as InvokeOpts does.
// Failures advance to the next successor under the idempotency rules above.
func (c *Client) InvokeSharded(ref IOR, op string, args []byte, o InvokeOptions) ([]byte, int, error) {
	addrs, err := ref.ProfileAddrs()
	if err != nil {
		return nil, -1, err
	}
	g := c.shardGroupFor(addrs)
	order := g.ring.Order(o.ShardKey)
	var lastErr error
	attempted := false
	for _, idx := range order {
		addr := addrs[idx]
		bk := c.breakerFor(addr)
		if bk != nil {
			ok, probe := bk.allow(time.Now())
			if !ok {
				// Circuit open: nothing was sent, so spilling to the ring
				// successor is safe for idempotent and non-idempotent alike.
				g.healthy[idx].Set(0)
				c.countShardSpill(g, idx)
				continue
			}
			if probe {
				if _, perr := c.locateOnce(addr, ref.Key, o.Deadline); perr != nil {
					bk.failure(time.Now())
					if !failoverable(perr) {
						return nil, -1, perr
					}
					// The probe failed before any dispatch: safe to advance.
					g.healthy[idx].Set(0)
					lastErr = &ShardError{Shard: addr, Err: perr}
					c.countShardReroute(g, idx)
					c.countFailover()
					continue
				}
				bk.success()
			}
		}
		attempted = true
		g.picks[idx].Inc()
		out, ierr := c.InvokeAddrOpts(addr, ref.Key, op, args, o)
		if ierr == nil {
			if bk != nil {
				bk.success()
			}
			g.healthy[idx].Set(1)
			return out, idx, nil
		}
		if bk != nil && retryable(ierr) {
			bk.failure(time.Now())
		}
		if !failoverable(ierr) {
			// Application-level outcome: the shard is alive and answered.
			return nil, -1, ierr
		}
		g.healthy[idx].Set(0)
		if !o.Idempotent && !IsTransient(ierr) {
			// The request may have been dispatched (the connection broke
			// after the write); re-sending a non-idempotent operation could
			// execute it twice. Surface one coherent error instead.
			return nil, -1, &ShardError{Shard: addr, Err: ierr}
		}
		lastErr = &ShardError{Shard: addr, Err: ierr}
		c.countShardReroute(g, idx)
		c.countFailover()
	}
	if lastErr == nil && !attempted {
		return nil, -1, ErrAllEndpointsDown
	}
	if lastErr == nil {
		lastErr = ErrAllEndpointsDown
	}
	return nil, -1, lastErr
}
