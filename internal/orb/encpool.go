package orb

import (
	"sync"

	"repro/internal/cdr"
)

// Reply-writer scratch pooling. Every dispatched request needs a CDR encoder
// for its reply body; at massive fan-in that is the dominant per-request
// allocation on the server. Encoders are recycled through small size classes
// (mirroring the transport frame pools) so a burst of large replies does not
// leave megabyte buffers pinned under a steady state of small ones: each
// class has its own sync.Pool and an encoder returns to the class its grown
// capacity fits, while anything beyond the largest class is dropped for the
// GC.
var encClasses = [...]int{
	4 << 10,  // typical scalar/short-sequence replies
	64 << 10, // bulk argument pages
	4 << 20,  // matches the transport pool's largest frame class
}

var encPools [len(encClasses)]sync.Pool

// getReplyEncoder returns a ready argument encoder (order octet written)
// from the smallest class with a pooled encoder, or a fresh one.
func getReplyEncoder() *cdr.Encoder {
	for i := range encPools {
		if v := encPools[i].Get(); v != nil {
			e := v.(*cdr.Encoder)
			ResetArgEncoder(e)
			return e
		}
	}
	return NewArgEncoder()
}

// putReplyEncoder recycles an encoder into its size class. The caller must
// be done with every Bytes() slice taken from it: the next getReplyEncoder
// will overwrite the buffer.
func putReplyEncoder(e *cdr.Encoder) {
	for i, max := range encClasses {
		if e.Cap() <= max {
			encPools[i].Put(e)
			return
		}
	}
	// Larger than the biggest class: let the GC take it rather than pin it.
}
