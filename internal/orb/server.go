package orb

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cdr"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Servant is the server-side upcall interface: the object adapter hands a
// decoded request to the servant, which reads its arguments from in and
// writes its results to out. Returning a *UserException or *SystemException
// produces the corresponding exceptional reply; any other error becomes an
// INTERNAL system exception. Generated skeletons implement Servant by
// switching on op and delegating to the user's implementation object,
// mirroring the CORBA C++ inheritance mapping the paper uses (§2.1).
type Servant interface {
	Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(op string, in *cdr.Decoder, out *cdr.Encoder) error

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error {
	return f(op, in, out)
}

// DataHandler consumes PARDIS Data messages (multi-port argument
// transfers). The connection is provided so the handler can send return
// transfers back over the same connection.
type DataHandler func(d *wire.Data, conn *transport.Conn)

// Server is the PARDIS object adapter plus its network engine: it listens on
// one endpoint, registers servants under object keys, and dispatches inbound
// requests. An SPMD object runs one Server per computing thread in the
// multi-port configuration, or only on the communicating thread in the
// centralized configuration.
type Server struct {
	lis  *transport.Listener
	host string

	mu       sync.Mutex
	servants map[string]Servant
	dataH    DataHandler
	conns    map[*transport.Conn]struct{}
	closed   bool

	// wg tracks connection serve loops and the accept loop; reqWg tracks
	// in-flight request dispatches so Close can let replies drain before
	// tearing connections down.
	wg    sync.WaitGroup
	reqWg sync.WaitGroup
	// Logf, when set, receives connection-level error reports. It defaults
	// to a silent logger; tests install t.Logf.
	Logf func(format string, args ...any)
}

// NewServer listens on addr ("host:port", port 0 for ephemeral) and starts
// accepting connections.
func NewServer(addr string) (*Server, error) {
	lis, err := transport.Listen(addr, nil)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis:      lis,
		servants: make(map[string]Servant),
		conns:    make(map[*transport.Conn]struct{}),
		Logf:     func(string, ...any) {},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Endpoint returns the server's reachable endpoint, labelled with the given
// computing-thread rank.
func (s *Server) Endpoint(rank int) Endpoint {
	host, port := splitHostPort(s.lis.Addr())
	return Endpoint{Host: host, Port: port, Rank: rank}
}

func splitHostPort(addr string) (string, int) {
	host := addr
	port := 0
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			host = addr[:i]
			fmt.Sscanf(addr[i+1:], "%d", &port)
			break
		}
	}
	return host, port
}

// Register installs a servant under key. Registering an existing key
// replaces the previous servant (re-registration after restart).
func (s *Server) Register(key []byte, sv Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servants[string(key)] = sv
}

// Unregister removes the servant under key.
func (s *Server) Unregister(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.servants, string(key))
}

// SetDataHandler installs the consumer for multi-port Data messages.
func (s *Server) SetDataHandler(h DataHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dataH = h
}

func (s *Server) lookup(key []byte) (Servant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.servants[string(key)]
	return sv, ok
}

func (s *Server) dataHandler() DataHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataH
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn *transport.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				s.Logf("orb: server read: %v", err)
				// Tell the peer its stream was unintelligible, then drop it.
				_ = conn.WriteMessage(&wire.MessageError{})
			}
			return
		}
		switch m := msg.(type) {
		case *wire.Request:
			// Each request runs on its own goroutine so a long-running
			// upcall (an SPMD collective invocation coordinating other
			// ranks) does not block subsequent traffic on the connection.
			s.reqWg.Add(1)
			go func() {
				defer s.reqWg.Done()
				s.handleRequest(m, conn)
			}()
		case *wire.LocateRequest:
			st := wire.LocateUnknown
			if _, ok := s.lookup(m.ObjectKey); ok {
				st = wire.LocateHere
			}
			if err := conn.WriteMessage(&wire.LocateReply{RequestID: m.RequestID, Status: st}); err != nil {
				s.Logf("orb: locate reply: %v", err)
				return
			}
		case *wire.CancelRequest:
			// Best effort: PARDIS requests are not abortable mid-upcall.
		case *wire.Data:
			if h := s.dataHandler(); h != nil {
				h(m, conn)
			} else {
				s.Logf("orb: Data message with no handler (request %d)", m.RequestID)
				_ = conn.WriteMessage(&wire.MessageError{})
			}
		case *wire.CloseConnection:
			return
		case *wire.MessageError:
			s.Logf("orb: peer reported message error")
			return
		default:
			_ = conn.WriteMessage(&wire.MessageError{})
			return
		}
	}
}

func (s *Server) handleRequest(req *wire.Request, conn *transport.Conn) {
	out := NewArgEncoder()
	status := wire.ReplyNoException

	sv, ok := s.lookup(req.ObjectKey)
	var err error
	if !ok {
		err = ObjectNotExist(req.ObjectKey)
	} else if in, derr := ArgDecoder(req.Args); derr != nil {
		err = Marshal(derr)
	} else {
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = &SystemException{RepoID: RepoInternal, Message: fmt.Sprint("servant panic: ", p)}
					s.Logf("orb: servant panic in %q: %v", req.Operation, p)
				}
			}()
			err = sv.Dispatch(req.Operation, in, out)
		}()
	}
	if err != nil {
		var fwd *ForwardRequest
		if errors.As(err, &fwd) {
			status = wire.ReplyLocationForward
			out = cdr.NewEncoder(cdr.NativeOrder)
			out.WriteRaw([]byte(fwd.Target.String()))
		} else {
			out = NewArgEncoder()
			status = encodeException(out, err)
		}
	}
	if !req.ResponseExpected {
		return
	}
	reply := &wire.Reply{RequestID: req.RequestID, Status: status, Args: out.Bytes()}
	if werr := conn.WriteMessage(reply); werr != nil {
		s.Logf("orb: reply write: %v", werr)
	}
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.lis.Addr() }

// Close stops the listener and tears down all connections, waiting for
// in-flight dispatches to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	// Let in-flight dispatches write their replies before the connections
	// go away.
	s.reqWg.Wait()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
