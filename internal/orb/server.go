package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Servant is the server-side upcall interface: the object adapter hands a
// decoded request to the servant, which reads its arguments from in and
// writes its results to out. Returning a *UserException or *SystemException
// produces the corresponding exceptional reply; any other error becomes an
// INTERNAL system exception. Generated skeletons implement Servant by
// switching on op and delegating to the user's implementation object,
// mirroring the CORBA C++ inheritance mapping the paper uses (§2.1).
type Servant interface {
	Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(op string, in *cdr.Decoder, out *cdr.Encoder) error

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error {
	return f(op, in, out)
}

// DataHandler consumes PARDIS Data messages (multi-port argument
// transfers). The connection is provided so the handler can send return
// transfers back over the same connection.
type DataHandler func(d *wire.Data, conn *transport.Conn)

// Defaults for ServerOptions.
const (
	DefaultMaxInFlight       = 1024
	DefaultMaxConnInFlight   = 128
	DefaultQueueDepth        = 256
	DefaultWriteTimeout      = 10 * time.Second
	DefaultKeepaliveInterval = 30 * time.Second
)

// ServerOptions configure a Server's robustness layer: admission control,
// slow-client write deadlines, and liveness keepalives. The zero value means
// "use the defaults"; negative durations disable the corresponding feature.
type ServerOptions struct {
	// MaxInFlight caps requests being dispatched concurrently across all
	// connections. Default DefaultMaxInFlight; negative disables the cap.
	MaxInFlight int
	// MaxConnInFlight caps requests in flight (dispatching or queued) on one
	// connection, so a single aggressive client cannot monopolize the global
	// budget. Default DefaultMaxConnInFlight; negative disables the cap.
	MaxConnInFlight int
	// QueueDepth bounds how many admitted requests may wait for an
	// in-flight slot once MaxInFlight is saturated. A request arriving with
	// the queue full is shed immediately with a TRANSIENT system exception —
	// the server never queues without bound. Default DefaultQueueDepth;
	// negative disables queueing (saturation sheds at once).
	QueueDepth int
	// WriteTimeout bounds every reply/keepalive write so one client that
	// stopped reading cannot wedge the connection's writers. Default
	// DefaultWriteTimeout; negative disables.
	WriteTimeout time.Duration
	// KeepaliveInterval is how long a connection may stay silent before the
	// server probes it with a Ping. Default DefaultKeepaliveInterval;
	// negative disables keepalives.
	KeepaliveInterval time.Duration
	// KeepaliveTimeout is the additional silence tolerated after the probe
	// before the peer is declared dead and the connection closed. Zero
	// defaults to KeepaliveInterval (dead peers are detected within roughly
	// twice the interval).
	KeepaliveTimeout time.Duration
	// Transport configures accepted connections (byte order, frame limits,
	// fault-injection wrappers). WriteTimeout above is layered on top.
	Transport *transport.Options
	// Logf receives connection-level error reports; nil is silent.
	Logf func(format string, args ...any)
	// Metrics, when set, receives this server's observability wiring: the
	// admission/liveness counters from Stats and the process-wide transport
	// frame-pool counters become pull sources, and servant dispatch latency
	// feeds the "orb.server.handle_ns" histogram. Collection is pull-based,
	// so the request path pays nothing beyond the counters it already kept.
	Metrics *obs.Registry
	// MetricsAddr, when non-empty, serves Metrics (obs.Default when Metrics
	// is nil) as JSON over HTTP on this address; the endpoint lives until
	// Shutdown. MetricsEndpoint returns the bound address.
	MetricsAddr string
	// Trace, when set, records server-side invocation spans (admission
	// waits, keyed by request id) into this ring buffer.
	Trace *obs.Recorder
}

func (o ServerOptions) withDefaults() ServerOptions {
	switch {
	case o.MaxInFlight == 0:
		o.MaxInFlight = DefaultMaxInFlight
	case o.MaxInFlight < 0:
		o.MaxInFlight = 1 << 30
	}
	switch {
	case o.MaxConnInFlight == 0:
		o.MaxConnInFlight = DefaultMaxConnInFlight
	case o.MaxConnInFlight < 0:
		o.MaxConnInFlight = 1 << 30
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = DefaultQueueDepth
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	switch {
	case o.WriteTimeout == 0:
		o.WriteTimeout = DefaultWriteTimeout
	case o.WriteTimeout < 0:
		o.WriteTimeout = 0
	}
	switch {
	case o.KeepaliveInterval == 0:
		o.KeepaliveInterval = DefaultKeepaliveInterval
	case o.KeepaliveInterval < 0:
		o.KeepaliveInterval = 0
	}
	if o.KeepaliveTimeout <= 0 {
		o.KeepaliveTimeout = o.KeepaliveInterval
	}
	return o
}

// ServerStats is a snapshot of the server's admission-control and liveness
// counters.
type ServerStats struct {
	// Dispatched counts requests handed to a servant.
	Dispatched uint64
	// Shed counts requests refused with TRANSIENT (caps hit or draining).
	Shed uint64
	// KeepaliveDrops counts connections closed because the peer stayed
	// silent past the keepalive grace period.
	KeepaliveDrops uint64
	// InFlight and Queued are the current gauges.
	InFlight int
	Queued   int
}

// Server is the PARDIS object adapter plus its network engine: it listens on
// one endpoint, registers servants under object keys, and dispatches inbound
// requests. An SPMD object runs one Server per computing thread in the
// multi-port configuration, or only on the communicating thread in the
// centralized configuration.
//
// The robustness layer (ServerOptions) bounds everything the network can do
// to it: concurrent dispatches are capped globally and per connection with a
// bounded overflow queue (excess is shed with TRANSIENT), writes carry
// deadlines so a stuck reader cannot wedge a connection, and idle peers are
// pinged and dropped when silent too long.
type Server struct {
	lis  *transport.Listener
	host string
	opts ServerOptions

	mu       sync.Mutex
	servants map[string]Servant
	dataH    DataHandler
	connLost func(*transport.Conn)
	conns    map[*servedConn]struct{}
	closed   bool

	// stop is closed when the server begins shutting down; queued requests
	// waiting for an in-flight slot give up on it.
	stop chan struct{}
	// draining sheds all new requests with TRANSIENT once Shutdown begins.
	draining atomic.Bool

	// sem holds the in-flight dispatch permits; queued counts requests
	// waiting for a permit (bounded by QueueDepth).
	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64

	dispatched     atomic.Uint64
	shed           atomic.Uint64
	keepaliveDrops atomic.Uint64

	// Observability wiring (ServerOptions.Metrics/Trace): rec records
	// admission spans, handleNS times servant dispatches, msrv is the
	// optional HTTP endpoint, pullKey identifies this server's pull source
	// for unregistration at shutdown.
	rec      *obs.Recorder
	metrics  *obs.Registry
	handleNS *obs.Histogram
	msrv     *obs.MetricsServer
	pullKey  string

	// wg tracks connection serve loops, keepalive loops and the accept
	// loop; reqWg tracks in-flight request dispatches so Shutdown can let
	// replies drain before tearing connections down.
	wg    sync.WaitGroup
	reqWg sync.WaitGroup
	// Logf, when set, receives connection-level error reports. It defaults
	// to a silent logger; tests install t.Logf.
	Logf func(format string, args ...any)
}

// servedConn is one accepted connection with its liveness and admission
// state.
type servedConn struct {
	conn *transport.Conn
	// inflight counts this connection's requests dispatching or queued.
	inflight atomic.Int64
	// lastRead is the unix-nano time of the last successful read; the
	// keepalive loop measures idleness against it.
	lastRead atomic.Int64
	// done is closed when the serve loop exits, stopping the keepalive loop.
	done chan struct{}
}

func (sc *servedConn) touch() { sc.lastRead.Store(time.Now().UnixNano()) }

func (sc *servedConn) idle(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, sc.lastRead.Load()))
}

// NewServer listens on addr ("host:port", port 0 for ephemeral) with default
// options and starts accepting connections.
func NewServer(addr string) (*Server, error) {
	return NewServerOpts(addr, ServerOptions{})
}

// NewServerOpts is NewServer with explicit robustness options.
func NewServerOpts(addr string, opts ServerOptions) (*Server, error) {
	opts = opts.withDefaults()
	// Accepted connections inherit the caller's transport configuration
	// plus the server's write deadline.
	topts := transport.Options{}
	if opts.Transport != nil {
		topts = *opts.Transport
	}
	if topts.WriteTimeout == 0 {
		topts.WriteTimeout = opts.WriteTimeout
	}
	lis, err := transport.Listen(addr, &topts)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis:      lis,
		opts:     opts,
		servants: make(map[string]Servant),
		conns:    make(map[*servedConn]struct{}),
		stop:     make(chan struct{}),
		sem:      make(chan struct{}, opts.MaxInFlight),
		Logf:     func(string, ...any) {},
	}
	if opts.Logf != nil {
		s.Logf = opts.Logf
	}
	s.rec = opts.Trace
	reg := opts.Metrics
	if reg == nil && opts.MetricsAddr != "" {
		reg = obs.Default
	}
	if reg != nil {
		s.metrics = reg
		s.handleNS = reg.Histogram("orb.server.handle_ns")
		// Pulls are read at snapshot time only. Several servers (the
		// per-thread adapters of one SPMD object) sharing a registry each
		// register under their own address, and the snapshot sums their
		// stats per name; the frame pool is process-wide, so its fixed key
		// makes the registration idempotent across servers.
		s.pullKey = "orb.server/" + lis.Addr()
		reg.RegisterPull(s.pullKey, func(put func(string, int64)) {
			st := s.Stats()
			put("orb.server.dispatched", int64(st.Dispatched))
			put("orb.server.shed", int64(st.Shed))
			put("orb.server.keepalive_drops", int64(st.KeepaliveDrops))
			put("orb.server.in_flight", int64(st.InFlight))
			put("orb.server.queued", int64(st.Queued))
		})
		reg.RegisterPull("transport.pool", pullPoolStats)
		if opts.MetricsAddr != "" {
			ms, err := obs.Serve(opts.MetricsAddr, reg)
			if err != nil {
				lis.Close()
				return nil, err
			}
			s.msrv = ms
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// pullPoolStats surfaces the transport frame-pool counters to a registry.
func pullPoolStats(put func(string, int64)) {
	st := transport.PoolStats()
	put("transport.pool.hits", int64(st.Hits))
	put("transport.pool.misses", int64(st.Misses))
	put("transport.pool.puts", int64(st.Puts))
}

// MetricsEndpoint returns the bound address of the metrics HTTP endpoint,
// or "" when ServerOptions.MetricsAddr was not set.
func (s *Server) MetricsEndpoint() string {
	if s.msrv == nil {
		return ""
	}
	return s.msrv.Addr()
}

// spanStart stamps the wall clock for a later span, or 0 when tracing is
// off so untraced servers skip the clock read.
func (s *Server) spanStart() int64 {
	if s.rec == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// span records one server-side phase keyed by the request id.
func (s *Server) span(ph obs.Phase, requestID uint32, start int64) {
	if s.rec == nil || start == 0 {
		return
	}
	s.rec.Record(obs.Span{
		Trace: uint64(requestID),
		Phase: ph,
		Start: start,
		Dur:   time.Now().UnixNano() - start,
	})
}

// Endpoint returns the server's reachable endpoint, labelled with the given
// computing-thread rank.
func (s *Server) Endpoint(rank int) Endpoint {
	host, port := splitHostPort(s.lis.Addr())
	return Endpoint{Host: host, Port: port, Rank: rank}
}

func splitHostPort(addr string) (string, int) {
	host := addr
	port := 0
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			host = addr[:i]
			fmt.Sscanf(addr[i+1:], "%d", &port)
			break
		}
	}
	return host, port
}

// Register installs a servant under key. Registering an existing key
// replaces the previous servant (re-registration after restart).
func (s *Server) Register(key []byte, sv Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servants[string(key)] = sv
}

// Unregister removes the servant under key.
func (s *Server) Unregister(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.servants, string(key))
}

// SetDataHandler installs the consumer for multi-port Data messages.
func (s *Server) SetDataHandler(h DataHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dataH = h
}

// SetConnLostHandler installs a hook called once per connection after its
// serve loop ends, however it ended (peer close, keepalive drop, shutdown).
// The multi-port engine uses it to fail invocations whose data connection
// died instead of letting them wait out the data timeout.
func (s *Server) SetConnLostHandler(h func(*transport.Conn)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.connLost = h
}

func (s *Server) lookup(key []byte) (Servant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.servants[string(key)]
	return sv, ok
}

func (s *Server) dataHandler() DataHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataH
}

// Stats returns a snapshot of the admission-control and liveness counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Dispatched:     s.dispatched.Load(),
		Shed:           s.shed.Load(),
		KeepaliveDrops: s.keepaliveDrops.Load(),
		InFlight:       int(s.inflight.Load()),
		Queued:         int(s.queued.Load()),
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &servedConn{conn: conn, done: make(chan struct{})}
		sc.touch()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sc)
		if s.opts.KeepaliveInterval > 0 {
			s.wg.Add(1)
			go s.keepaliveLoop(sc)
		}
	}
}

// keepaliveLoop watches one connection's read activity: silent past the
// interval, it probes with a Ping; silent past the grace period too, it
// declares the peer dead and closes the connection, which unblocks the serve
// loop. This is what turns a SIGKILL'd peer (no FIN on the wire) into a
// prompt error instead of an indefinite stall.
func (s *Server) keepaliveLoop(sc *servedConn) {
	defer s.wg.Done()
	interval := s.opts.KeepaliveInterval
	grace := s.opts.KeepaliveTimeout
	tick := interval / 4
	if grace/4 < tick {
		tick = grace / 4
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var nonce uint32
	var lastPing time.Time
	for {
		select {
		case <-sc.done:
			return
		case <-s.stop:
			return
		case now := <-t.C:
			idle := sc.idle(now)
			if idle >= interval+grace {
				s.keepaliveDrops.Add(1)
				s.Logf("orb: server keepalive: peer silent %v, dropping connection", idle)
				sc.conn.Close()
				return
			}
			if idle >= interval && now.Sub(lastPing) >= interval {
				lastPing = now
				nonce++
				if err := sc.conn.WriteMessage(&wire.Ping{Nonce: nonce}); err != nil {
					// The serve loop will observe the broken stream.
					return
				}
			}
		}
	}
}

func (s *Server) serveConn(sc *servedConn) {
	defer s.wg.Done()
	defer func() {
		close(sc.done)
		sc.conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		lost := s.connLost
		s.mu.Unlock()
		if lost != nil {
			lost(sc.conn)
		}
	}()
	for {
		msg, err := sc.conn.ReadMessage()
		if err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				s.Logf("orb: server read: %v", err)
				// Tell the peer its stream was unintelligible, then drop it.
				_ = sc.conn.WriteMessage(&wire.MessageError{})
			}
			return
		}
		sc.touch()
		switch m := msg.(type) {
		case *wire.Request:
			s.admit(sc, m)
		case *wire.LocateRequest:
			st := wire.LocateUnknown
			if _, ok := s.lookup(m.ObjectKey); ok {
				st = wire.LocateHere
			}
			if err := sc.conn.WriteMessage(&wire.LocateReply{RequestID: m.RequestID, Status: st}); err != nil {
				s.Logf("orb: locate reply: %v", err)
				return
			}
		case *wire.CancelRequest:
			// Best effort: PARDIS requests are not abortable mid-upcall.
		case *wire.Ping:
			if err := sc.conn.WriteMessage(&wire.Pong{Nonce: m.Nonce}); err != nil {
				s.Logf("orb: pong: %v", err)
				return
			}
		case *wire.Pong:
			// Liveness evidence; touch above already recorded it.
		case *wire.Data:
			if h := s.dataHandler(); h != nil {
				h(m, sc.conn)
			} else {
				m.Release()
				s.Logf("orb: Data message with no handler (request %d)", m.RequestID)
				_ = sc.conn.WriteMessage(&wire.MessageError{})
			}
		case *wire.CloseConnection:
			return
		case *wire.MessageError:
			s.Logf("orb: peer reported message error")
			return
		default:
			_ = sc.conn.WriteMessage(&wire.MessageError{})
			return
		}
	}
}

// admit applies admission control to one inbound request: shed while
// draining, shed past the per-connection cap, dispatch immediately when an
// in-flight permit is free, otherwise wait on the bounded queue — and shed
// when that too is full. Shedding replies TRANSIENT at once; the request is
// never silently queued without bound.
func (s *Server) admit(sc *servedConn, req *wire.Request) {
	admitStart := s.spanStart()
	if s.draining.Load() {
		s.shedRequest(sc, req, "server draining")
		return
	}
	if n := sc.inflight.Add(1); n > int64(s.opts.MaxConnInFlight) {
		sc.inflight.Add(-1)
		s.shedRequest(sc, req, fmt.Sprintf("connection request cap %d reached", s.opts.MaxConnInFlight))
		return
	}
	select {
	case s.sem <- struct{}{}:
		s.span(obs.PhaseAdmission, req.RequestID, admitStart)
		s.launch(sc, req)
	default:
		// Saturated: claim a bounded queue slot and wait for a permit off
		// the serve loop, so the connection keeps reading.
		if q := s.queued.Add(1); q > int64(s.opts.QueueDepth) {
			s.queued.Add(-1)
			sc.inflight.Add(-1)
			s.shedRequest(sc, req, fmt.Sprintf("server saturated (%d in flight, %d queued)",
				s.opts.MaxInFlight, s.opts.QueueDepth))
			return
		}
		s.reqWg.Add(1)
		go func() {
			defer s.reqWg.Done()
			select {
			case s.sem <- struct{}{}:
				s.queued.Add(-1)
				s.span(obs.PhaseAdmission, req.RequestID, admitStart)
				defer func() { <-s.sem }()
				defer sc.inflight.Add(-1)
				s.inflight.Add(1)
				s.dispatched.Add(1)
				s.handleRequest(req, sc)
				s.inflight.Add(-1)
			case <-s.stop:
				s.queued.Add(-1)
				sc.inflight.Add(-1)
				s.shedRequest(sc, req, "server draining")
			case <-sc.done:
				s.queued.Add(-1)
				sc.inflight.Add(-1)
			}
		}()
	}
}

// launch runs one admitted request on its own goroutine (holding an
// in-flight permit), so a long-running upcall (an SPMD collective invocation
// coordinating other ranks) does not block subsequent traffic on the
// connection.
func (s *Server) launch(sc *servedConn, req *wire.Request) {
	s.reqWg.Add(1)
	s.inflight.Add(1)
	s.dispatched.Add(1)
	go func() {
		defer s.reqWg.Done()
		defer s.inflight.Add(-1)
		defer sc.inflight.Add(-1)
		defer func() { <-s.sem }()
		s.handleRequest(req, sc)
	}()
}

// shedRequest refuses a request with a TRANSIENT system exception (when a
// reply is expected at all).
func (s *Server) shedRequest(sc *servedConn, req *wire.Request, msg string) {
	s.shed.Add(1)
	if !req.ResponseExpected {
		return
	}
	out := NewArgEncoder()
	status := encodeException(out, Transient(msg))
	reply := &wire.Reply{RequestID: req.RequestID, Status: status, Args: out.Bytes()}
	if err := sc.conn.WriteMessage(reply); err != nil {
		s.Logf("orb: shed reply write: %v", err)
	}
}

func (s *Server) handleRequest(req *wire.Request, sc *servedConn) {
	defer s.handleNS.Done(s.handleNS.Start())
	out := NewArgEncoder()
	status := wire.ReplyNoException

	sv, ok := s.lookup(req.ObjectKey)
	var err error
	if !ok {
		err = ObjectNotExist(req.ObjectKey)
	} else if in, derr := ArgDecoder(req.Args); derr != nil {
		err = Marshal(derr)
	} else {
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = &SystemException{RepoID: RepoInternal, Message: fmt.Sprint("servant panic: ", p)}
					s.Logf("orb: servant panic in %q: %v", req.Operation, p)
				}
			}()
			err = sv.Dispatch(req.Operation, in, out)
		}()
	}
	if err != nil {
		var fwd *ForwardRequest
		if errors.As(err, &fwd) {
			status = wire.ReplyLocationForward
			out = cdr.NewEncoder(cdr.NativeOrder)
			out.WriteRaw([]byte(fwd.Target.String()))
		} else {
			out = NewArgEncoder()
			status = encodeException(out, err)
		}
	}
	if !req.ResponseExpected {
		return
	}
	reply := &wire.Reply{RequestID: req.RequestID, Status: status, Args: out.Bytes()}
	if werr := sc.conn.WriteMessage(reply); werr != nil {
		s.Logf("orb: reply write: %v", werr)
		// A failed (or deadline-expired) reply write leaves the stream
		// unusable mid-frame; kill the connection so its serve loop exits
		// instead of framing garbage at the peer.
		sc.conn.Close()
	}
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.lis.Addr() }

// Shutdown drains the server gracefully: it stops accepting connections,
// sheds new requests with TRANSIENT, waits (bounded by ctx) for in-flight
// dispatches to write their replies, then announces CloseConnection to every
// peer and tears the connections down. It returns ctx.Err() when the drain
// deadline expired with dispatches still running (they are abandoned to
// finish against closed connections).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining.Store(true)
	s.mu.Unlock()
	close(s.stop)
	err := s.lis.Close()
	if s.metrics != nil {
		// The per-server pull goes away with the server; the process-wide
		// frame-pool pull stays (its key is shared and still valid).
		s.metrics.UnregisterPull(s.pullKey)
	}
	if s.msrv != nil {
		_ = s.msrv.Close()
	}

	// Let in-flight dispatches write their replies before the connections
	// go away, but never wait past the caller's deadline.
	done := make(chan struct{})
	go func() {
		s.reqWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}

	s.mu.Lock()
	conns := make([]*servedConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		// Orderly goodbye: clients mark the cached connection broken at
		// once and redial (elsewhere) on next use.
		_ = c.conn.WriteMessage(&wire.CloseConnection{})
		c.conn.Close()
	}
	s.wg.Wait()
	return err
}

// Close stops the listener and tears down all connections, waiting without
// bound for in-flight dispatches to finish.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}
