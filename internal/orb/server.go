package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/zcodec"
)

// Servant is the server-side upcall interface: the object adapter hands a
// decoded request to the servant, which reads its arguments from in and
// writes its results to out. Returning a *UserException or *SystemException
// produces the corresponding exceptional reply; any other error becomes an
// INTERNAL system exception. Generated skeletons implement Servant by
// switching on op and delegating to the user's implementation object,
// mirroring the CORBA C++ inheritance mapping the paper uses (§2.1).
type Servant interface {
	Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(op string, in *cdr.Decoder, out *cdr.Encoder) error

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error {
	return f(op, in, out)
}

// DataHandler consumes PARDIS Data messages (multi-port argument
// transfers). The connection is provided so the handler can send return
// transfers back over the same connection.
type DataHandler func(d *wire.Data, conn *transport.Conn)

// Defaults for ServerOptions.
const (
	DefaultMaxInFlight       = 1024
	DefaultMaxConnInFlight   = 128
	DefaultQueueDepth        = 256
	DefaultWriteTimeout      = 10 * time.Second
	DefaultKeepaliveInterval = 30 * time.Second
	DefaultWorkerIdleTimeout = time.Second
)

// ServerOptions configure a Server's robustness layer: admission control,
// slow-client write deadlines, and liveness keepalives. The zero value means
// "use the defaults"; negative durations disable the corresponding feature.
type ServerOptions struct {
	// MaxInFlight caps requests being dispatched concurrently across all
	// connections. It also bounds the dispatch worker pool: the server never
	// runs more worker goroutines than requests it would admit concurrently.
	// Default DefaultMaxInFlight; negative disables the cap.
	MaxInFlight int
	// MaxConnInFlight caps requests in flight (dispatching or queued) on one
	// connection, so a single aggressive client cannot monopolize the global
	// budget. With many cheap client bindings multiplexed onto one shared
	// connection (core.BindOptions.ShareConnection), the cap applies to their
	// aggregate. Default DefaultMaxConnInFlight; negative disables the cap.
	MaxConnInFlight int
	// QueueDepth bounds how many admitted requests may wait for an
	// in-flight slot once MaxInFlight is saturated. A request arriving with
	// the queue full is shed immediately with a TRANSIENT system exception —
	// the server never queues without bound. Default DefaultQueueDepth;
	// negative disables queueing (saturation sheds at once).
	QueueDepth int
	// WorkerIdleTimeout is how long an idle dispatch worker goroutine
	// lingers before it is reaped, so the pool shrinks back after a load
	// spike instead of pinning peak-sized goroutine counts forever. Default
	// DefaultWorkerIdleTimeout; negative keeps idle workers alive until
	// shutdown.
	WorkerIdleTimeout time.Duration
	// WriteTimeout bounds every reply/keepalive write so one client that
	// stopped reading cannot wedge the connection's writers. Default
	// DefaultWriteTimeout; negative disables.
	WriteTimeout time.Duration
	// KeepaliveInterval is how long a connection may stay silent before the
	// server probes it with a Ping. Default DefaultKeepaliveInterval;
	// negative disables keepalives.
	KeepaliveInterval time.Duration
	// KeepaliveTimeout is the additional silence tolerated after the probe
	// before the peer is declared dead and the connection closed. Zero
	// defaults to KeepaliveInterval (dead peers are detected within roughly
	// twice the interval).
	KeepaliveTimeout time.Duration
	// Transport configures accepted connections (byte order, frame limits,
	// fault-injection wrappers). WriteTimeout above is layered on top.
	Transport *transport.Options
	// Logf receives connection-level error reports; nil is silent.
	Logf func(format string, args ...any)
	// Metrics, when set, receives this server's observability wiring: the
	// admission/liveness counters from Stats and the process-wide transport
	// frame-pool counters become pull sources, servant dispatch latency
	// feeds the "orb.server.handle_ns" histogram, and full server-side
	// request latency (arrival to reply written, queue wait included) feeds
	// "orb.server.dispatch_ns". Collection is pull-based, so the request
	// path pays nothing beyond the counters it already kept plus one clock
	// read per request.
	Metrics *obs.Registry
	// MetricsAddr, when non-empty, serves Metrics (obs.Default when Metrics
	// is nil) as JSON over HTTP on this address; the endpoint lives until
	// Shutdown. MetricsEndpoint returns the bound address.
	MetricsAddr string
	// Trace, when set, records server-side invocation spans (admission
	// waits, keyed by request id) into this ring buffer.
	Trace *obs.Recorder
	// Compression is the wire-compression codec mask (zcodec mask bits)
	// this server accepts. A client Ping carrying a compression offer is
	// answered with the intersection of the two masks and the connection
	// remembers it; zero (the default) declines every offer, so all
	// connections stay raw.
	Compression uint8
	// CompressionPolicy selects how the reply data plane applies the
	// negotiated mask per transfer leg: PolicyAuto (the zero default)
	// compresses only when the bandwidth estimator predicts a win,
	// PolicyAlways compresses whenever a codec is negotiated, and
	// PolicyNever behaves like Compression == 0. The ORB itself only
	// negotiates; the streamed reply path in core consults the policy.
	CompressionPolicy zcodec.Policy
	// AdminResize exposes the reserved "_pardis_resize" administrative
	// operation on SPMD objects exported by an elastic engine (see
	// core.NewElastic): a client invocation of it triggers a membership
	// resize of the serving group. Off by default — resizing is a
	// control-plane action, so it must be opted into explicitly.
	AdminResize bool
}

func (o ServerOptions) withDefaults() ServerOptions {
	switch {
	case o.MaxInFlight == 0:
		o.MaxInFlight = DefaultMaxInFlight
	case o.MaxInFlight < 0:
		o.MaxInFlight = 1 << 30
	}
	switch {
	case o.MaxConnInFlight == 0:
		o.MaxConnInFlight = DefaultMaxConnInFlight
	case o.MaxConnInFlight < 0:
		o.MaxConnInFlight = 1 << 30
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = DefaultQueueDepth
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	switch {
	case o.WorkerIdleTimeout == 0:
		o.WorkerIdleTimeout = DefaultWorkerIdleTimeout
	case o.WorkerIdleTimeout < 0:
		o.WorkerIdleTimeout = 0 // never reap
	}
	switch {
	case o.WriteTimeout == 0:
		o.WriteTimeout = DefaultWriteTimeout
	case o.WriteTimeout < 0:
		o.WriteTimeout = 0
	}
	switch {
	case o.KeepaliveInterval == 0:
		o.KeepaliveInterval = DefaultKeepaliveInterval
	case o.KeepaliveInterval < 0:
		o.KeepaliveInterval = 0
	}
	if o.KeepaliveTimeout <= 0 {
		o.KeepaliveTimeout = o.KeepaliveInterval
	}
	return o
}

// ServerStats is a snapshot of the server's admission-control and liveness
// counters.
type ServerStats struct {
	// Dispatched counts requests handed to a servant.
	Dispatched uint64
	// Shed counts requests refused with TRANSIENT (caps hit or draining).
	Shed uint64
	// KeepaliveDrops counts connections closed because the peer stayed
	// silent past the keepalive grace period.
	KeepaliveDrops uint64
	// InFlight and Queued are the current gauges.
	InFlight int
	Queued   int
	// Conns is the current number of accepted connections being served.
	Conns int
	// Workers is the current size of the dispatch worker pool (busy + idle).
	Workers int
}

// Server is the PARDIS object adapter plus its network engine: it listens on
// one endpoint, registers servants under object keys, and dispatches inbound
// requests. An SPMD object runs one Server per computing thread in the
// multi-port configuration, or only on the communicating thread in the
// centralized configuration.
//
// The robustness layer (ServerOptions) bounds everything the network can do
// to it: concurrent dispatches are capped globally and per connection with a
// bounded overflow queue (excess is shed with TRANSIENT), writes carry
// deadlines so a stuck reader cannot wedge a connection, and idle peers are
// pinged and dropped when silent too long.
//
// The engine is sized for massive fan-in (DESIGN.md §13): goroutines are
// O(connections + concurrent dispatches), never O(requests). Each accepted
// connection costs exactly one serve-loop goroutine; admitted requests are
// executed by a shared pool of reusable dispatch workers that grows on
// demand up to MaxInFlight and shrinks after WorkerIdleTimeout; queued
// requests hold a queue slot, not a goroutine; and a single scanner
// goroutine runs keepalive probing for every connection.
type Server struct {
	lis  *transport.Listener
	host string
	opts ServerOptions

	mu       sync.Mutex
	servants map[string]Servant
	dataH    DataHandler
	connLost func(*transport.Conn)
	conns    map[*servedConn]struct{}
	closed   bool

	// stop is closed when the server begins shutting down; idle workers and
	// the scanner/reaper loops give up on it.
	stop chan struct{}
	// draining sheds all new requests with TRANSIENT once Shutdown begins.
	draining atomic.Bool

	// Dispatch engine (all under dmu): ready is the LIFO stack of parked
	// workers, workers counts live worker goroutines (busy + idle), queue
	// holds admitted requests waiting for a worker (bounded by QueueDepth),
	// and stopped marks the engine torn down. The queue-check-then-park
	// ordering in workerLoop and the handoff in dispatch are serialized by
	// dmu, which is what makes a queued item impossible to strand: a worker
	// only parks after observing an empty queue, and an item only queues
	// after observing no parked workers.
	dmu     sync.Mutex
	ready   []*dispatchWorker
	workers int
	queue   []workItem
	stopped bool

	queued   atomic.Int64
	inflight atomic.Int64

	dispatched     atomic.Uint64
	shed           atomic.Uint64
	keepaliveDrops atomic.Uint64

	// Observability wiring (ServerOptions.Metrics/Trace): rec records
	// admission spans, handleNS times servant dispatches, dispatchNS times
	// arrival-to-reply request latency, msrv is the optional HTTP endpoint,
	// pullKey identifies this server's pull source for unregistration at
	// shutdown.
	rec        *obs.Recorder
	metrics    *obs.Registry
	handleNS   *obs.Histogram
	dispatchNS *obs.Histogram
	msrv       *obs.MetricsServer
	pullKey    string

	// wg tracks connection serve loops, the keepalive scanner, the worker
	// reaper and the accept loop; reqWg tracks admitted requests
	// (dispatching or queued) so Shutdown can let replies drain before
	// tearing connections down. workerWg tracks the dispatch worker
	// goroutines separately: a clean shutdown waits for them, but a
	// deadline-expired drain abandons a stuck worker exactly as it abandons
	// the stuck dispatch it is running.
	wg       sync.WaitGroup
	reqWg    sync.WaitGroup
	workerWg sync.WaitGroup
	// Logf, when set, receives connection-level error reports. It defaults
	// to a silent logger; tests install t.Logf.
	Logf func(format string, args ...any)
}

// servedConn is one accepted connection with its liveness and admission
// state.
type servedConn struct {
	conn *transport.Conn
	// inflight counts this connection's requests dispatching or queued.
	inflight atomic.Int64
	// lastRead is the unix-nano time of the last successful read; the
	// keepalive scanner measures idleness against it.
	lastRead atomic.Int64
	// lastPing and nonce belong to the keepalive scanner goroutine alone.
	lastPing time.Time
	nonce    uint32
}

func (sc *servedConn) touch() { sc.lastRead.Store(time.Now().UnixNano()) }

func (sc *servedConn) idle(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, sc.lastRead.Load()))
}

// workItem is one admitted request en route to a dispatch worker.
type workItem struct {
	sc  *servedConn
	req *wire.Request
	// arrival is the unix-nano admission stamp for spans and the dispatch
	// latency histogram; 0 when neither is enabled.
	arrival int64
}

// dispatchWorker is one pooled dispatcher goroutine. Its channel has
// capacity 1 so a handoff from admit never blocks: a worker is on the ready
// stack only while its channel is empty, and popping it is what grants the
// right to send exactly one item (or, for the reaper, to close the channel).
type dispatchWorker struct {
	ch       chan workItem
	parkedAt int64 // unix-nano park stamp, read by the reaper under dmu
}

// NewServer listens on addr ("host:port", port 0 for ephemeral) with default
// options and starts accepting connections.
func NewServer(addr string) (*Server, error) {
	return NewServerOpts(addr, ServerOptions{})
}

// NewServerOpts is NewServer with explicit robustness options.
func NewServerOpts(addr string, opts ServerOptions) (*Server, error) {
	opts = opts.withDefaults()
	// Accepted connections inherit the caller's transport configuration
	// plus the server's write deadline.
	topts := transport.Options{}
	if opts.Transport != nil {
		topts = *opts.Transport
	}
	if topts.WriteTimeout == 0 {
		topts.WriteTimeout = opts.WriteTimeout
	}
	lis, err := transport.Listen(addr, &topts)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis:      lis,
		opts:     opts,
		servants: make(map[string]Servant),
		conns:    make(map[*servedConn]struct{}),
		stop:     make(chan struct{}),
		Logf:     func(string, ...any) {},
	}
	if opts.Logf != nil {
		s.Logf = opts.Logf
	}
	s.rec = opts.Trace
	reg := opts.Metrics
	if reg == nil && opts.MetricsAddr != "" {
		reg = obs.Default
	}
	if reg != nil {
		s.metrics = reg
		s.handleNS = reg.Histogram("orb.server.handle_ns")
		s.dispatchNS = reg.Histogram("orb.server.dispatch_ns")
		// Pulls are read at snapshot time only. Several servers (the
		// per-thread adapters of one SPMD object) sharing a registry each
		// register under their own address, and the snapshot sums their
		// stats per name; the frame pool is process-wide, so its fixed key
		// makes the registration idempotent across servers.
		s.pullKey = "orb.server/" + lis.Addr()
		reg.RegisterPull(s.pullKey, func(put func(string, int64)) {
			st := s.Stats()
			put("orb.server.dispatched", int64(st.Dispatched))
			put("orb.server.shed", int64(st.Shed))
			put("orb.server.keepalive_drops", int64(st.KeepaliveDrops))
			put("orb.server.in_flight", int64(st.InFlight))
			put("orb.server.queued", int64(st.Queued))
			put("orb.server.conns", int64(st.Conns))
			put("orb.server.workers", int64(st.Workers))
		})
		reg.RegisterPull("transport.pool", pullPoolStats)
		if opts.MetricsAddr != "" {
			ms, err := obs.Serve(opts.MetricsAddr, reg)
			if err != nil {
				lis.Close()
				return nil, err
			}
			s.msrv = ms
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if opts.WorkerIdleTimeout > 0 {
		s.wg.Add(1)
		go s.reaperLoop()
	}
	if opts.KeepaliveInterval > 0 {
		s.wg.Add(1)
		go s.keepaliveScanner()
	}
	return s, nil
}

// pullPoolStats surfaces the transport frame-pool counters to a registry.
func pullPoolStats(put func(string, int64)) {
	st := transport.PoolStats()
	put("transport.pool.hits", int64(st.Hits))
	put("transport.pool.misses", int64(st.Misses))
	put("transport.pool.puts", int64(st.Puts))
	put("transport.pool.outstanding", st.Outstanding())
}

// MetricsEndpoint returns the bound address of the metrics HTTP endpoint,
// or "" when ServerOptions.MetricsAddr was not set.
func (s *Server) MetricsEndpoint() string {
	if s.msrv == nil {
		return ""
	}
	return s.msrv.Addr()
}

// arrivalStamp reads the clock once per request when either spans or the
// dispatch latency histogram want it; 0 otherwise so untraced, unmetered
// servers skip the clock read.
func (s *Server) arrivalStamp() int64 {
	if s.rec == nil && s.dispatchNS == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// span records one server-side phase keyed by the request id.
func (s *Server) span(ph obs.Phase, requestID uint32, start int64) {
	if s.rec == nil || start == 0 {
		return
	}
	s.rec.Record(obs.Span{
		Trace: uint64(requestID),
		Phase: ph,
		Start: start,
		Dur:   time.Now().UnixNano() - start,
	})
}

// Endpoint returns the server's reachable endpoint, labelled with the given
// computing-thread rank.
func (s *Server) Endpoint(rank int) Endpoint {
	host, port := splitHostPort(s.lis.Addr())
	return Endpoint{Host: host, Port: port, Rank: rank}
}

func splitHostPort(addr string) (string, int) {
	host := addr
	port := 0
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			host = addr[:i]
			fmt.Sscanf(addr[i+1:], "%d", &port)
			break
		}
	}
	return host, port
}

// Register installs a servant under key. Registering an existing key
// replaces the previous servant (re-registration after restart).
func (s *Server) Register(key []byte, sv Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servants[string(key)] = sv
}

// Unregister removes the servant under key.
func (s *Server) Unregister(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.servants, string(key))
}

// SetDataHandler installs the consumer for multi-port Data messages.
func (s *Server) SetDataHandler(h DataHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dataH = h
}

// SetConnLostHandler installs a hook called once per connection after its
// serve loop ends, however it ended (peer close, keepalive drop, shutdown).
// The multi-port engine uses it to fail invocations whose data connection
// died instead of letting them wait out the data timeout.
func (s *Server) SetConnLostHandler(h func(*transport.Conn)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.connLost = h
}

func (s *Server) lookup(key []byte) (Servant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.servants[string(key)]
	return sv, ok
}

func (s *Server) dataHandler() DataHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataH
}

// Stats returns a snapshot of the admission-control and liveness counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	nconns := len(s.conns)
	s.mu.Unlock()
	s.dmu.Lock()
	nworkers := s.workers
	s.dmu.Unlock()
	return ServerStats{
		Dispatched:     s.dispatched.Load(),
		Shed:           s.shed.Load(),
		KeepaliveDrops: s.keepaliveDrops.Load(),
		InFlight:       int(s.inflight.Load()),
		Queued:         int(s.queued.Load()),
		Conns:          nconns,
		Workers:        nworkers,
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &servedConn{conn: conn}
		sc.touch()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sc)
	}
}

// keepaliveScanner is the server-wide liveness prober: one goroutine walks
// every connection on a shared tick, probing idle peers with a Ping and
// dropping those silent past the grace period. Before the fan-in refactor
// each connection ran its own keepalive goroutine; at thousands of
// connections that doubled the goroutine bill for a loop that is almost
// always asleep. Ping writes ride the server's write deadline, so one wedged
// peer can stall a scan pass by at most WriteTimeout; dead-peer drops are
// plain Close calls and never block. This is what turns a SIGKILL'd peer (no
// FIN on the wire) into a prompt error instead of an indefinite stall.
func (s *Server) keepaliveScanner() {
	defer s.wg.Done()
	interval := s.opts.KeepaliveInterval
	grace := s.opts.KeepaliveTimeout
	tick := interval / 4
	if grace/4 < tick {
		tick = grace / 4
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var scratch []*servedConn
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			scratch = scratch[:0]
			s.mu.Lock()
			for sc := range s.conns {
				scratch = append(scratch, sc)
			}
			s.mu.Unlock()
			for _, sc := range scratch {
				idle := sc.idle(now)
				if idle >= interval+grace {
					s.keepaliveDrops.Add(1)
					s.Logf("orb: server keepalive: peer silent %v, dropping connection", idle)
					sc.conn.Close() // the serve loop observes the close and exits
					continue
				}
				if idle >= interval && now.Sub(sc.lastPing) >= interval {
					sc.lastPing = now
					sc.nonce++
					if err := sc.conn.WriteMessage(&wire.Ping{Nonce: sc.nonce}); err != nil {
						continue // the serve loop will observe the broken stream
					}
				}
			}
			// Don't let a burst of connections pin a huge scratch array.
			if cap(scratch) > 4096 && len(s.conns) < 1024 {
				scratch = nil
			}
		}
	}
}

func (s *Server) serveConn(sc *servedConn) {
	defer s.wg.Done()
	defer func() {
		sc.conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		lost := s.connLost
		s.mu.Unlock()
		if lost != nil {
			lost(sc.conn)
		}
	}()
	for {
		msg, err := sc.conn.ReadMessage()
		if err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				s.Logf("orb: server read: %v", err)
				// Tell the peer its stream was unintelligible, then drop it.
				_ = sc.conn.WriteMessage(&wire.MessageError{})
			}
			return
		}
		sc.touch()
		switch m := msg.(type) {
		case *wire.Request:
			s.admit(sc, m)
		case *wire.LocateRequest:
			st := wire.LocateUnknown
			if _, ok := s.lookup(m.ObjectKey); ok {
				st = wire.LocateHere
			}
			if err := sc.conn.WriteMessage(&wire.LocateReply{RequestID: m.RequestID, Status: st}); err != nil {
				s.Logf("orb: locate reply: %v", err)
				return
			}
		case *wire.CancelRequest:
			// Best effort: PARDIS requests are not abortable mid-upcall.
		case *wire.Ping:
			// Keepalive probe, or a compression offer riding the Ping
			// trailer. The negotiated mask is the intersection of the two
			// sides' codec masks; declining (no server mask, no overlap, or
			// a plain keepalive) answers the plain Pong an old client
			// expects.
			pong := &wire.Pong{Nonce: m.Nonce}
			if m.Offer {
				if neg := m.Codecs & s.opts.Compression; neg != 0 {
					pong.Accept, pong.Codecs, pong.Level = true, neg, m.Level
					sc.conn.SetCompression(neg, m.Level)
				}
			}
			if err := sc.conn.WriteMessage(pong); err != nil {
				s.Logf("orb: pong: %v", err)
				return
			}
		case *wire.Pong:
			// Liveness evidence; touch above already recorded it.
		case *wire.Data:
			if h := s.dataHandler(); h != nil {
				h(m, sc.conn)
			} else {
				m.Release()
				s.Logf("orb: Data message with no handler (request %d)", m.RequestID)
				_ = sc.conn.WriteMessage(&wire.MessageError{})
			}
		case *wire.CloseConnection:
			return
		case *wire.MessageError:
			s.Logf("orb: peer reported message error")
			return
		default:
			_ = sc.conn.WriteMessage(&wire.MessageError{})
			return
		}
	}
}

// admit applies admission control to one inbound request: shed while
// draining, shed past the per-connection cap, hand to the dispatch engine
// when it has room (an idle worker, a worker slot to grow into, or a bounded
// queue slot) — and shed when all three are exhausted. Shedding replies
// TRANSIENT at once; the request is never silently queued without bound, and
// admission itself never blocks the connection's serve loop.
func (s *Server) admit(sc *servedConn, req *wire.Request) {
	arrival := s.arrivalStamp()
	if s.draining.Load() {
		s.shedRequest(sc, req, "server draining")
		return
	}
	if n := sc.inflight.Add(1); n > int64(s.opts.MaxConnInFlight) {
		sc.inflight.Add(-1)
		s.shedRequest(sc, req, fmt.Sprintf("connection request cap %d reached", s.opts.MaxConnInFlight))
		return
	}
	s.reqWg.Add(1)
	if ok, reason := s.dispatch(workItem{sc: sc, req: req, arrival: arrival}); !ok {
		s.reqWg.Done()
		sc.inflight.Add(-1)
		s.shedRequest(sc, req, reason)
	}
}

// dispatch routes one admitted item into the worker pool: direct handoff to
// a parked worker, a fresh worker while the pool is below MaxInFlight, or a
// bounded queue slot. It reports false (with the shed reason) when the
// engine is saturated or stopped.
func (s *Server) dispatch(it workItem) (bool, string) {
	s.dmu.Lock()
	if s.stopped {
		s.dmu.Unlock()
		return false, "server draining"
	}
	if n := len(s.ready); n > 0 {
		w := s.ready[n-1]
		s.ready[n-1] = nil
		s.ready = s.ready[:n-1]
		s.dmu.Unlock()
		w.ch <- it // never blocks: parked workers have an empty channel
		return true, ""
	}
	if s.workers < s.opts.MaxInFlight {
		s.workers++
		s.dmu.Unlock()
		w := &dispatchWorker{ch: make(chan workItem, 1)}
		s.workerWg.Add(1)
		go s.workerLoop(w, it)
		return true, ""
	}
	if len(s.queue) < s.opts.QueueDepth {
		s.queue = append(s.queue, it)
		s.queued.Add(1)
		s.dmu.Unlock()
		return true, ""
	}
	s.dmu.Unlock()
	return false, fmt.Sprintf("server saturated (%d in flight, %d queued)",
		s.opts.MaxInFlight, s.opts.QueueDepth)
}

// workerLoop is one pooled dispatcher: run the handed item, then keep
// pulling queued work; with the queue empty, park on the ready stack and
// sleep until the next handoff, the reaper, or shutdown.
func (s *Server) workerLoop(w *dispatchWorker, it workItem) {
	defer s.workerWg.Done()
	for {
		s.runItem(it)
		s.dmu.Lock()
		if len(s.queue) > 0 {
			// FIFO: admitted order is dispatch order.
			it = s.queue[0]
			copy(s.queue, s.queue[1:])
			s.queue[len(s.queue)-1] = workItem{}
			s.queue = s.queue[:len(s.queue)-1]
			s.queued.Add(-1)
			s.dmu.Unlock()
			continue
		}
		if s.stopped {
			s.workers--
			s.dmu.Unlock()
			return
		}
		w.parkedAt = time.Now().UnixNano()
		s.ready = append(s.ready, w)
		s.dmu.Unlock()
		select {
		case next, ok := <-w.ch:
			if !ok {
				return // reaped; the reaper already decremented workers
			}
			it = next
		case <-s.stop:
			// Shutdown while parked. If we are still on the ready stack,
			// remove ourselves and exit. If not, a popper owns our channel:
			// either admit is handing us one final item (run it — it was
			// admitted, and reqWg holds Shutdown open for it) or the reaper
			// is about to close the channel.
			if s.unpark(w) {
				return
			}
			next, ok := <-w.ch
			if !ok {
				return
			}
			it = next
		}
	}
}

// unpark removes w from the ready stack if it is still there, releasing its
// worker slot. It reports false when another goroutine already popped w.
func (s *Server) unpark(w *dispatchWorker) bool {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	for i, rw := range s.ready {
		if rw == w {
			copy(s.ready[i:], s.ready[i+1:])
			s.ready[len(s.ready)-1] = nil
			s.ready = s.ready[:len(s.ready)-1]
			s.workers--
			return true
		}
	}
	return false
}

// reaperLoop shrinks the worker pool after load drops: workers parked longer
// than WorkerIdleTimeout are popped off the ready stack and their channels
// closed, which makes the worker goroutine exit. The ready stack is LIFO, so
// the longest-idle workers accumulate at the bottom and the scan is a prefix
// walk.
func (s *Server) reaperLoop() {
	defer s.wg.Done()
	idle := s.opts.WorkerIdleTimeout
	tick := idle / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var victims []*dispatchWorker
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			cutoff := now.Add(-idle).UnixNano()
			victims = victims[:0]
			s.dmu.Lock()
			n := 0
			for n < len(s.ready) && s.ready[n].parkedAt < cutoff {
				n++
			}
			if n > 0 {
				victims = append(victims, s.ready[:n]...)
				rest := copy(s.ready, s.ready[n:])
				for i := rest; i < len(s.ready); i++ {
					s.ready[i] = nil
				}
				s.ready = s.ready[:rest]
				s.workers -= n
			}
			s.dmu.Unlock()
			for _, w := range victims {
				close(w.ch)
			}
		}
	}
}

// runItem executes one admitted request on the calling worker.
func (s *Server) runItem(it workItem) {
	defer s.reqWg.Done()
	s.span(obs.PhaseAdmission, it.req.RequestID, it.arrival)
	s.inflight.Add(1)
	s.dispatched.Add(1)
	s.handleRequest(it.req, it.sc)
	s.inflight.Add(-1)
	it.sc.inflight.Add(-1)
	if it.arrival != 0 && s.dispatchNS != nil {
		s.dispatchNS.Observe(time.Duration(time.Now().UnixNano() - it.arrival))
	}
}

// shedRequest refuses a request with a TRANSIENT system exception (when a
// reply is expected at all).
func (s *Server) shedRequest(sc *servedConn, req *wire.Request, msg string) {
	s.shed.Add(1)
	if !req.ResponseExpected {
		return
	}
	out := getReplyEncoder()
	status := encodeException(out, Transient(msg))
	reply := &wire.Reply{RequestID: req.RequestID, Status: status, Args: out.Bytes()}
	if err := sc.conn.WriteMessage(reply); err != nil {
		s.Logf("orb: shed reply write: %v", err)
	}
	putReplyEncoder(out)
}

func (s *Server) handleRequest(req *wire.Request, sc *servedConn) {
	defer s.handleNS.Done(s.handleNS.Start())
	out := getReplyEncoder()
	defer putReplyEncoder(out)
	status := wire.ReplyNoException

	sv, ok := s.lookup(req.ObjectKey)
	var err error
	if !ok {
		err = ObjectNotExist(req.ObjectKey)
	} else if in, derr := ArgDecoder(req.Args); derr != nil {
		err = Marshal(derr)
	} else {
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = &SystemException{RepoID: RepoInternal, Message: fmt.Sprint("servant panic: ", p)}
					s.Logf("orb: servant panic in %q: %v", req.Operation, p)
				}
			}()
			err = sv.Dispatch(req.Operation, in, out)
		}()
	}
	if err != nil {
		var fwd *ForwardRequest
		if errors.As(err, &fwd) {
			status = wire.ReplyLocationForward
			out.Reset() // raw payload: the forward IOR, no order octet
			out.WriteRaw([]byte(fwd.Target.String()))
		} else {
			ResetArgEncoder(out)
			status = encodeException(out, err)
		}
	}
	if !req.ResponseExpected {
		return
	}
	reply := &wire.Reply{RequestID: req.RequestID, Status: status, Args: out.Bytes()}
	if werr := sc.conn.WriteMessage(reply); werr != nil {
		s.Logf("orb: reply write: %v", werr)
		// A failed (or deadline-expired) reply write leaves the stream
		// unusable mid-frame; kill the connection so its serve loop exits
		// instead of framing garbage at the peer.
		sc.conn.Close()
	}
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.lis.Addr() }

// Shutdown drains the server gracefully: it stops accepting connections,
// sheds new and queued-but-undispatched requests with TRANSIENT, waits
// (bounded by ctx) for dispatching requests to write their replies, then
// announces CloseConnection to every peer and tears the connections down. It
// returns ctx.Err() when the drain deadline expired with dispatches still
// running (they are abandoned to finish against closed connections).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining.Store(true)
	s.mu.Unlock()
	close(s.stop)
	err := s.lis.Close()
	if s.metrics != nil {
		// The per-server pull goes away with the server; the process-wide
		// frame-pool pull stays (its key is shared and still valid).
		s.metrics.UnregisterPull(s.pullKey)
	}
	if s.msrv != nil {
		_ = s.msrv.Close()
	}

	// Stop the dispatch engine and shed the queue: a queued request has not
	// started executing, so refusing it with TRANSIENT now (while its
	// connection still works) beats processing it into a torn-down server.
	// Workers drain themselves: busy ones finish their item and exit on
	// seeing stopped, parked ones exit via s.stop.
	s.dmu.Lock()
	s.stopped = true
	pending := s.queue
	s.queue = nil
	s.dmu.Unlock()
	for _, it := range pending {
		s.queued.Add(-1)
		it.sc.inflight.Add(-1)
		s.shedRequest(it.sc, it.req, "server draining")
		s.reqWg.Done()
	}

	// Let in-flight dispatches write their replies before the connections
	// go away, but never wait past the caller's deadline.
	done := make(chan struct{})
	go func() {
		s.reqWg.Wait()
		close(done)
	}()
	drained := true
	select {
	case <-done:
	case <-ctx.Done():
		drained = false
		if err == nil {
			err = ctx.Err()
		}
	}

	s.mu.Lock()
	conns := make([]*servedConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		// Orderly goodbye: clients mark the cached connection broken at
		// once and redial (elsewhere) on next use.
		_ = c.conn.WriteMessage(&wire.CloseConnection{})
		c.conn.Close()
	}
	if drained {
		// Every admitted request finished, so the workers are parked or
		// exiting (s.stop is closed); collect them. After a deadline-expired
		// drain the stuck workers are abandoned with their dispatches.
		s.workerWg.Wait()
	}
	s.wg.Wait()
	return err
}

// Close stops the listener and tears down all connections, waiting without
// bound for in-flight dispatches to finish.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}
