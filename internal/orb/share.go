package orb

import "sync"

// ClientPool shares Client engines between many cheap bindings. A Client
// already multiplexes concurrent requests over one connection per endpoint
// (replies are matched by request id), so N bindings to the same server need
// N connections only when they insist on private clients; pooled, they ride
// one multiplexed connection. The pool hands out one reference-counted
// Client per key — the key fingerprints every configuration knob that
// changes the client's wire behaviour, so only identically-configured
// bindings share.
type ClientPool struct {
	mu      sync.Mutex
	entries map[string]*pooledClient
}

type pooledClient struct {
	c    *Client
	refs int
}

// NewClientPool returns an empty pool.
func NewClientPool() *ClientPool {
	return &ClientPool{entries: make(map[string]*pooledClient)}
}

// Acquire returns the shared client stored under key, creating it with mk on
// first use, and takes one reference. Every Acquire must be paired with
// exactly one Release with the same key.
func (p *ClientPool) Acquire(key string, mk func() *Client) *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[key]
	if e == nil {
		e = &pooledClient{c: mk()}
		p.entries[key] = e
	}
	e.refs++
	return e.c
}

// Release drops one reference to the client under key; the last release
// closes the client and removes the entry, so an idle pool holds no
// connections (leak checks stay exact). A Release with no matching Acquire
// is a no-op.
func (p *ClientPool) Release(key string) {
	p.mu.Lock()
	e := p.entries[key]
	if e == nil {
		p.mu.Unlock()
		return
	}
	e.refs--
	done := e.refs <= 0
	if done {
		delete(p.entries, key)
	}
	p.mu.Unlock()
	if done {
		e.c.Close()
	}
}

// Size reports how many distinct shared clients are live.
func (p *ClientPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}
