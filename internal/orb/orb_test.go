package orb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cdr"
	"repro/internal/transport"
	"repro/internal/wire"
)

// echoServant implements a few test operations.
type echoServant struct {
	mu      sync.Mutex
	oneways int
}

func (s *echoServant) Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case "echo":
		msg, err := in.ReadString()
		if err != nil {
			return Marshal(err)
		}
		out.WriteString(msg)
		return nil
	case "add":
		a, err := in.ReadLong()
		if err != nil {
			return Marshal(err)
		}
		b, err := in.ReadLong()
		if err != nil {
			return Marshal(err)
		}
		out.WriteLong(a + b)
		return nil
	case "fail_user":
		return &UserException{RepoID: "IDL:test/Boom:1.0", Message: "user asked for it", Payload: []byte{1, 2}}
	case "fail_system":
		return &SystemException{RepoID: RepoInternal, Minor: 42, Message: "broken"}
	case "fail_generic":
		return errors.New("plain error")
	case "panic":
		panic("servant exploded")
	case "notify":
		s.mu.Lock()
		s.oneways++
		s.mu.Unlock()
		return nil
	case "slow":
		time.Sleep(200 * time.Millisecond)
		out.WriteLong(1)
		return nil
	default:
		return BadOperation(op)
	}
}

func newTestServer(t *testing.T) (*Server, IOR) {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = t.Logf
	t.Cleanup(func() { s.Close() })
	key := []byte("echo-object")
	s.Register(key, &echoServant{})
	ref := IOR{TypeID: "IDL:test/echo:1.0", Key: key, Threads: 1, Endpoints: []Endpoint{s.Endpoint(0)}}
	return s, ref
}

func newTestClient(t *testing.T) *Client {
	t.Helper()
	c := NewClient()
	c.Timeout = 10 * time.Second
	t.Cleanup(c.Close)
	return c
}

func encodeArgs(fn func(e *cdr.Encoder)) []byte {
	e := NewArgEncoder()
	fn(e)
	return e.Bytes()
}

func TestInvokeEcho(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)

	args := encodeArgs(func(e *cdr.Encoder) { e.WriteString("hello pardis") })
	replyArgs, err := c.Invoke(ref, "echo", args, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ArgDecoder(replyArgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadString()
	if err != nil || got != "hello pardis" {
		t.Fatalf("echo returned %q, %v", got, err)
	}
}

func TestInvokeAdd(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	args := encodeArgs(func(e *cdr.Encoder) { e.WriteLong(19); e.WriteLong(23) })
	replyArgs, err := c.Invoke(ref, "add", args, false)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := ArgDecoder(replyArgs)
	sum, err := d.ReadLong()
	if err != nil || sum != 42 {
		t.Fatalf("add = %d, %v", sum, err)
	}
}

func TestUserException(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	_, err := c.Invoke(ref, "fail_user", nil, false)
	var ue *UserException
	if !errors.As(err, &ue) {
		t.Fatalf("want UserException, got %v", err)
	}
	if ue.RepoID != "IDL:test/Boom:1.0" || ue.Message != "user asked for it" || len(ue.Payload) != 2 {
		t.Fatalf("exception %+v", ue)
	}
	if !strings.Contains(ue.Error(), "Boom") {
		t.Fatalf("error text %q", ue.Error())
	}
}

func TestSystemException(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	_, err := c.Invoke(ref, "fail_system", nil, false)
	var se *SystemException
	if !errors.As(err, &se) {
		t.Fatalf("want SystemException, got %v", err)
	}
	if se.Minor != 42 || se.RepoID != RepoInternal {
		t.Fatalf("exception %+v", se)
	}
}

func TestGenericErrorBecomesSystemException(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	_, err := c.Invoke(ref, "fail_generic", nil, false)
	var se *SystemException
	if !errors.As(err, &se) || !strings.Contains(se.Message, "plain error") {
		t.Fatalf("got %v", err)
	}
}

func TestServantPanicIsContained(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	_, err := c.Invoke(ref, "panic", nil, false)
	var se *SystemException
	if !errors.As(err, &se) || !strings.Contains(se.Message, "servant exploded") {
		t.Fatalf("got %v", err)
	}
	// The server must still be alive afterwards.
	args := encodeArgs(func(e *cdr.Encoder) { e.WriteString("still here") })
	if _, err := c.Invoke(ref, "echo", args, false); err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
}

func TestBadOperation(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	_, err := c.Invoke(ref, "no_such_op", nil, false)
	var se *SystemException
	if !errors.As(err, &se) || se.RepoID != RepoBadOperation {
		t.Fatalf("got %v", err)
	}
}

func TestObjectNotExist(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	ref.Key = []byte("missing")
	_, err := c.Invoke(ref, "echo", nil, false)
	var se *SystemException
	if !errors.As(err, &se) || se.RepoID != RepoObjectNotExist {
		t.Fatalf("got %v", err)
	}
}

func TestOnewayInvocation(t *testing.T) {
	srv, ref := newTestServer(t)
	c := newTestClient(t)
	sv := &echoServant{}
	srv.Register(ref.Key, sv)
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(ref, "notify", nil, true); err != nil {
			t.Fatal(err)
		}
	}
	// A blocking call afterwards flushes the pipeline (same connection, in
	// order), so all oneways have been dispatched... eventually: dispatches
	// run on their own goroutines, so poll briefly.
	args := encodeArgs(func(e *cdr.Encoder) { e.WriteString("sync") })
	if _, err := c.Invoke(ref, "echo", args, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		sv.mu.Lock()
		n := sv.oneways
		sv.mu.Unlock()
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oneways dispatched: %d, want 5", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentInvocationsOneClient(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	var wg sync.WaitGroup
	errs := make([]error, 50)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			args := encodeArgs(func(e *cdr.Encoder) { e.WriteLong(int32(i)); e.WriteLong(1000) })
			replyArgs, err := c.Invoke(ref, "add", args, false)
			if err != nil {
				errs[i] = err
				return
			}
			d, _ := ArgDecoder(replyArgs)
			sum, err := d.ReadLong()
			if err != nil {
				errs[i] = err
				return
			}
			if sum != int32(i)+1000 {
				errs[i] = fmt.Errorf("request %d got reply %d (cross-matched)", i, sum)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSlowRequestsDoNotBlockOthers(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Invoke(ref, "slow", nil, false)
	}()
	time.Sleep(10 * time.Millisecond) // let slow land first
	args := encodeArgs(func(e *cdr.Encoder) { e.WriteString("fast") })
	if _, err := c.Invoke(ref, "echo", args, false); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("fast request waited %v behind slow one", elapsed)
	}
	<-done
}

func TestLocate(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	here, err := c.Locate(ref)
	if err != nil || !here {
		t.Fatalf("locate existing: %v %v", here, err)
	}
	missing := ref
	missing.Key = []byte("nope")
	here, err = c.Locate(missing)
	if err != nil || here {
		t.Fatalf("locate missing: %v %v", here, err)
	}
}

func TestInvokeTimeout(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	c.Timeout = 30 * time.Millisecond
	_, err := c.Invoke(ref, "slow", nil, false)
	if !errors.Is(err, ErrInvokeTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestServerCloseUnblocksClient(t *testing.T) {
	srv, ref := newTestServer(t)
	c := newTestClient(t)
	c.Timeout = 0
	done := make(chan error, 1)
	go func() {
		_, err := c.Invoke(ref, "slow", nil, false)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	// Close drains in-flight dispatches, so the slow invocation completes
	// successfully rather than being cut off; the essential property is
	// that neither side hangs.
	select {
	case err := <-done:
		if err != nil {
			t.Logf("invocation during close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server close")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung")
	}
}

func TestDialFailure(t *testing.T) {
	c := newTestClient(t)
	ref := IOR{Key: []byte("k"), Threads: 1, Endpoints: []Endpoint{{Host: "127.0.0.1", Port: 1, Rank: 0}}}
	_, err := c.Invoke(ref, "echo", nil, false)
	var se *SystemException
	if !errors.As(err, &se) || se.RepoID != RepoComm {
		t.Fatalf("got %v", err)
	}
}

func TestClientClosedRejects(t *testing.T) {
	_, ref := newTestServer(t)
	c := NewClient()
	c.Close()
	if _, err := c.Invoke(ref, "echo", nil, false); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("got %v", err)
	}
	c.Close() // idempotent
}

func TestNilReference(t *testing.T) {
	c := newTestClient(t)
	if _, err := c.Invoke(IOR{}, "echo", nil, false); !errors.Is(err, ErrBadIOR) {
		t.Fatalf("got %v", err)
	}
}

func TestConnectionReuse(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	for i := 0; i < 10; i++ {
		args := encodeArgs(func(e *cdr.Encoder) { e.WriteString("x") })
		if _, err := c.Invoke(ref, "echo", args, false); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.conns)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d connections cached, want 1", n)
	}
}

// forwardingServant answers every request with a LOCATION_FORWARD to target.
type forwardingServant struct{ target IOR }

func (f forwardingServant) Dispatch(op string, in *cdr.Decoder, out *cdr.Encoder) error {
	return &ForwardRequest{Target: f.target}
}

func TestLocationForward(t *testing.T) {
	_, realRef := newTestServer(t)
	fwdSrv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fwdSrv.Close() })
	fwdKey := []byte("forwarder")
	fwdSrv.Register(fwdKey, forwardingServant{target: realRef})

	c := newTestClient(t)
	ref := IOR{TypeID: realRef.TypeID, Key: fwdKey, Threads: 1, Endpoints: []Endpoint{fwdSrv.Endpoint(0)}}
	args := encodeArgs(func(e *cdr.Encoder) { e.WriteString("via forward") })
	replyArgs, err := c.Invoke(ref, "echo", args, false)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := ArgDecoder(replyArgs)
	got, err := d.ReadString()
	if err != nil || got != "via forward" {
		t.Fatalf("forwarded echo %q %v", got, err)
	}
}

func TestForwardLoopDetected(t *testing.T) {
	fwdSrv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fwdSrv.Close() })
	key := []byte("loop")
	self := IOR{TypeID: "IDL:test/loop:1.0", Key: key, Threads: 1, Endpoints: []Endpoint{fwdSrv.Endpoint(0)}}
	fwdSrv.Register(key, forwardingServant{target: self})

	c := newTestClient(t)
	_, err = c.Invoke(self, "echo", nil, false)
	if !errors.Is(err, ErrForwardLoop) {
		t.Fatalf("want ErrForwardLoop, got %v", err)
	}
}

func TestIORStringRoundTrip(t *testing.T) {
	ref := IOR{
		TypeID:  "IDL:diff_object:1.0",
		Key:     []byte{0, 1, 2, 0xFE},
		Threads: 4,
		Endpoints: []Endpoint{
			{Host: "10.0.0.1", Port: 9001, Rank: 0},
			{Host: "10.0.0.1", Port: 9002, Rank: 1},
			{Host: "10.0.0.2", Port: 9003, Rank: 2},
			{Host: "10.0.0.2", Port: 9004, Rank: 3},
		},
	}
	s := ref.String()
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified form %q", s)
	}
	got, err := ParseIOR(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != ref.TypeID || got.Threads != 4 || len(got.Endpoints) != 4 {
		t.Fatalf("parsed %+v", got)
	}
	for i, ep := range got.Endpoints {
		if ep != ref.Endpoints[i] {
			t.Fatalf("endpoint %d: %+v != %+v", i, ep, ref.Endpoints[i])
		}
	}
	if !got.Multiport() {
		t.Fatal("4-thread 4-endpoint reference not multiport")
	}
	if ep, err := got.EndpointFor(2); err != nil || ep.Port != 9003 {
		t.Fatalf("EndpointFor(2) = %+v, %v", ep, err)
	}
	if _, err := got.EndpointFor(9); err == nil {
		t.Fatal("EndpointFor(9) accepted")
	}
}

func TestIORNotMultiport(t *testing.T) {
	ref := IOR{Threads: 4, Endpoints: []Endpoint{{Host: "h", Port: 1, Rank: 0}}}
	if ref.Multiport() {
		t.Fatal("centralized reference claims multiport")
	}
	if (IOR{}).Multiport() {
		t.Fatal("nil reference claims multiport")
	}
}

func TestParseIORErrors(t *testing.T) {
	cases := []string{
		"",
		"ior:abcd",
		"IOR:zz",   // not hex
		"IOR:",     // empty
		"IOR:09",   // bad byte-order flag
		"IOR:00ff", // truncated body
	}
	for _, s := range cases {
		if _, err := ParseIOR(s); !errors.Is(err, ErrBadIOR) {
			t.Errorf("ParseIOR(%q) = %v", s, err)
		}
	}
}

func TestIORFuzzRoundTrip(t *testing.T) {
	prop := func(typeID string, key []byte, hosts []string) bool {
		if strings.ContainsRune(typeID, 0) {
			return true
		}
		ref := IOR{TypeID: typeID, Key: key, Threads: len(hosts)}
		for i, h := range hosts {
			if strings.ContainsRune(h, 0) {
				return true
			}
			ref.Endpoints = append(ref.Endpoints, Endpoint{Host: h, Port: i + 1, Rank: i})
		}
		got, err := ParseIOR(ref.String())
		if err != nil {
			return false
		}
		if got.TypeID != ref.TypeID || string(got.Key) != string(ref.Key) || len(got.Endpoints) != len(ref.Endpoints) {
			return false
		}
		for i := range got.Endpoints {
			if got.Endpoints[i] != ref.Endpoints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDataRoutingServerAndClient(t *testing.T) {
	srv, ref := newTestServer(t)
	inbound := make(chan *wire.Data, 1)
	srv.SetDataHandler(func(d *wire.Data, conn *transport.Conn) {
		inbound <- d
		// Send a return transfer back over the same connection, as the
		// multi-port reply path does.
		if err := conn.WriteMessage(&wire.Data{RequestID: d.RequestID, Reply: true, Payload: []byte("pong")}); err != nil {
			t.Errorf("return transfer: %v", err)
		}
	})

	c := newTestClient(t)
	const reqID = 777
	sink := make(chan *wire.Data, 1)
	c.RegisterDataSink(reqID, sink)
	defer c.UnregisterDataSink(reqID)

	if err := c.SendData(ref, &wire.Data{RequestID: reqID, DstRank: 0, Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-inbound:
		if string(d.Payload) != "ping" || d.RequestID != reqID {
			t.Fatalf("server saw %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server data handler never called")
	}
	select {
	case d := <-sink:
		if string(d.Payload) != "pong" || !d.Reply {
			t.Fatalf("client sink saw %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client data sink never called")
	}
}

func TestSendDataNoEndpointForRank(t *testing.T) {
	_, ref := newTestServer(t)
	c := newTestClient(t)
	err := c.SendData(ref, &wire.Data{RequestID: 1, DstRank: 5})
	if !errors.Is(err, ErrBadIOR) {
		t.Fatalf("got %v", err)
	}
}
