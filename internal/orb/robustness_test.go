package orb

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/testutil"
)

// --- admission control ---

// blockingServer returns a server whose servant parks every dispatch until
// release is closed.
func blockingServer(t *testing.T, opts ServerOptions, key []byte) (*Server, string, chan struct{}) {
	t.Helper()
	srv, err := NewServerOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	release := make(chan struct{})
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		<-release
		out.WriteULong(1)
		return nil
	}))
	return srv, srv.Addr(), release
}

// TestAdmissionShedsWhenSaturated pins the load-shedding contract: with the
// in-flight cap and queue full, further requests are refused immediately with
// a TRANSIENT system exception — they do not queue without bound, and the
// admitted requests still complete once the servant unblocks.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	defer testutil.LeakCheck(t)()
	const maxInFlight, queueDepth = 2, 1
	srv, addr, release := blockingServer(t, ServerOptions{
		MaxInFlight:     maxInFlight,
		QueueDepth:      queueDepth,
		MaxConnInFlight: -1, // isolate the global caps
	}, []byte("sat"))
	// Teardown order under the leak check (defers run LIFO, before the
	// blockingServer cleanup): unblock the servant, close the server, then
	// measure goroutines.
	defer srv.Close()
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()

	c := NewClient()
	c.Timeout = 10 * time.Second
	defer c.Close()

	const total = maxInFlight + queueDepth + 5
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		go func() {
			_, err := c.InvokeAddr(addr, []byte("sat"), "work", NewArgEncoder().Bytes(), false)
			errs <- err
		}()
	}

	// The overflow (total - cap - queue) must shed promptly, well before the
	// servant releases anything.
	shed := 0
	deadline := time.After(5 * time.Second)
	for shed < total-maxInFlight-queueDepth {
		select {
		case err := <-errs:
			if !IsTransient(err) {
				t.Fatalf("saturated server returned %v, want TRANSIENT", err)
			}
			shed++
		case <-deadline:
			t.Fatalf("only %d requests shed; the rest are queued unbounded", shed)
		}
	}

	releaseOnce()
	for i := 0; i < maxInFlight+queueDepth; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("admitted request failed after release: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("admitted request never completed")
		}
	}

	st := srv.Stats()
	if st.Shed != uint64(total-maxInFlight-queueDepth) {
		t.Errorf("server shed %d, want %d", st.Shed, total-maxInFlight-queueDepth)
	}
	if st.Dispatched != uint64(maxInFlight+queueDepth) {
		t.Errorf("server dispatched %d, want %d", st.Dispatched, maxInFlight+queueDepth)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("gauges not drained: in flight %d, queued %d", st.InFlight, st.Queued)
	}
}

// TestPerConnectionCapSheds pins the per-connection fairness cap: one
// connection cannot hold more than MaxConnInFlight requests even when the
// global budget has room.
func TestPerConnectionCapSheds(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv, addr, release := blockingServer(t, ServerOptions{
		MaxInFlight:     64,
		MaxConnInFlight: 2,
		QueueDepth:      64,
	}, []byte("fair"))
	defer srv.Close()
	defer close(release)

	c := NewClient()
	c.Timeout = 10 * time.Second
	defer c.Close()

	const total = 6
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		go func() {
			_, err := c.InvokeAddr(addr, []byte("fair"), "work", NewArgEncoder().Bytes(), false)
			errs <- err
		}()
	}
	for i := 0; i < total-2; i++ {
		select {
		case err := <-errs:
			if !IsTransient(err) {
				t.Fatalf("over-cap request returned %v, want TRANSIENT", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("over-cap requests not shed")
		}
	}
}

// --- liveness keepalives ---

// frozenListener accepts TCP connections and then ignores them completely —
// the in-process stand-in for a SIGKILL'd server: the socket stays open (the
// kernel buffers small writes) but nothing ever comes back.
func frozenListener(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	var mu sync.Mutex
	var held []net.Conn
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	})
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()
	return lis.Addr().String()
}

// TestClientKeepaliveDetectsFrozenServer is the dead-peer acceptance case:
// an invocation against a peer that went silent must fail via the keepalive
// within roughly twice the keepalive interval — not stall until the much
// larger invocation timeout.
func TestClientKeepaliveDetectsFrozenServer(t *testing.T) {
	addr := frozenListener(t)

	const interval = 50 * time.Millisecond
	c := NewClient()
	c.Timeout = 30 * time.Second // detection must not come from here
	c.KeepaliveInterval = interval
	defer c.Close()

	start := time.Now()
	_, err := c.InvokeAddr(addr, []byte("k"), "work", NewArgEncoder().Bytes(), false)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("invocation against a frozen peer succeeded")
	}
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("want a connection error, got %v", err)
	}
	if !strings.Contains(err.Error(), "keepalive") {
		t.Errorf("error not attributed to the keepalive: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("dead peer detected after %v, want ~2x the %v interval", elapsed, interval)
	}
}

// TestServerKeepaliveDropsSilentClient covers the server side: a client that
// connects and then never speaks (and never answers pings) is dropped within
// the grace period and counted in the stats.
func TestServerKeepaliveDropsSilentClient(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv, err := NewServerOpts("127.0.0.1:0", ServerOptions{
		KeepaliveInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The server must close the connection on us: the read unblocks with an
	// error instead of hanging.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // dropped (or deadline, checked below)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for srv.Stats().KeepaliveDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never dropped the silent client")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- graceful drain ---

// TestShutdownDrainsInFlightAndShedsNew verifies the drain ordering: during
// Shutdown, new requests are shed with TRANSIENT while the in-flight request
// keeps its connection and delivers its reply; only then is CloseConnection
// sent and the connection torn down.
func TestShutdownDrainsInFlightAndShedsNew(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv, addr, release := blockingServer(t, ServerOptions{}, []byte("drain"))
	defer srv.Close()
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()

	c := NewClient()
	c.Timeout = 10 * time.Second
	defer c.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := c.InvokeAddr(addr, []byte("drain"), "work", NewArgEncoder().Bytes(), false)
		inflight <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(ctx) }()

	// New traffic on the existing connection is shed while draining.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := c.InvokeAddr(addr, []byte("drain"), "work", NewArgEncoder().Bytes(), false)
		if IsTransient(err) {
			break
		}
		if err != nil {
			t.Fatalf("during drain: %v, want TRANSIENT", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting requests")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight request still completes successfully.
	releaseOnce()
	select {
	case err := <-inflight:
		if err != nil {
			t.Fatalf("in-flight request lost to the drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("drain did not finish cleanly: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned")
	}
}

// TestShutdownDeadlineAbandonsStuckDispatch pins the bounded-drain contract:
// a dispatch that never finishes cannot hold Shutdown past its context.
func TestShutdownDeadlineAbandonsStuckDispatch(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv, addr, release := blockingServer(t, ServerOptions{}, []byte("stuck"))
	// The abandoned dispatch drains only once the servant is released, so the
	// ordering is: release, then an unbounded Close, then the leak check.
	defer srv.Close()
	defer close(release)

	c := NewClient()
	c.Timeout = 10 * time.Second
	defer c.Close()
	go c.InvokeAddr(addr, []byte("stuck"), "work", NewArgEncoder().Bytes(), false)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown over a stuck dispatch: %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v past a 200ms deadline", elapsed)
	}
}

// --- CloseConnection handling (proactive reconnect) ---

// TestCloseConnectionProactiveReconnect is the regression test for orderly
// server shutdown as seen by the client: on receiving CloseConnection the
// client marks the cached connection broken at once (no waiting for an I/O
// error) and transparently redials on the next use.
func TestCloseConnectionProactiveReconnect(t *testing.T) {
	key := []byte("hop")
	mkServer := func(addr, tag string) *Server {
		srv, err := NewServerOpts(addr, ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
			out.WriteString(tag)
			return nil
		}))
		return srv
	}
	first := mkServer("127.0.0.1:0", "first")
	addr := first.Addr()

	c := NewClient()
	c.Timeout = 5 * time.Second
	defer c.Close()
	if _, err := c.InvokeAddr(addr, key, "who", NewArgEncoder().Bytes(), false); err != nil {
		t.Fatalf("warm-up invoke: %v", err)
	}

	// Orderly shutdown announces CloseConnection; the client must evict the
	// cached connection without any further traffic.
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.NumConns() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cached connection not evicted after CloseConnection")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A replacement server on the same address: the next use must redial and
	// succeed, not trip over a poisoned cache entry.
	second := mkServer(addr, "second")
	defer second.Close()
	out, err := c.InvokeAddr(addr, key, "who", NewArgEncoder().Bytes(), false)
	if err != nil {
		t.Fatalf("invoke after reconnect: %v", err)
	}
	d, err := ArgDecoder(out)
	if err != nil {
		t.Fatal(err)
	}
	if tag, _ := d.ReadString(); tag != "second" {
		t.Fatalf("reply from %q, want the restarted server", tag)
	}
}

// --- multi-profile failover and circuit breaking ---

func echoServer(t *testing.T, addr, tag string, key []byte) *Server {
	t.Helper()
	srv, err := NewServerOpts(addr, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		out.WriteString(tag)
		return nil
	}))
	return srv
}

func invokeTag(t *testing.T, c *Client, ref IOR) (string, error) {
	t.Helper()
	out, err := c.Invoke(ref, "who", NewArgEncoder().Bytes(), false)
	if err != nil {
		return "", err
	}
	d, err := ArgDecoder(out)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := d.ReadString()
	if err != nil {
		t.Fatal(err)
	}
	return tag, nil
}

// TestFailoverAndHalfOpenRecovery drives the full circuit-breaker life
// cycle on a two-profile reference: primary serves → primary dies and the
// circuit opens after one failure → traffic fails over to the alternate →
// the primary returns and the half-open probe recovers it.
func TestFailoverAndHalfOpenRecovery(t *testing.T) {
	key := []byte("replicated")
	primary := echoServer(t, "127.0.0.1:0", "primary", key)
	secondary := echoServer(t, "127.0.0.1:0", "secondary", key)
	defer secondary.Close()
	primaryAddr := primary.Addr()

	ref := IOR{TypeID: "IDL:test/rep:1.0", Key: key, Threads: 1,
		Endpoints: []Endpoint{primary.Endpoint(0)}}
	ref.AddProfile([]Endpoint{secondary.Endpoint(0)})

	const cooldown = 100 * time.Millisecond
	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Breaker = BreakerPolicy{Threshold: 1, Cooldown: cooldown}
	defer c.Close()

	if tag, err := invokeTag(t, c, ref); err != nil || tag != "primary" {
		t.Fatalf("with both replicas up: %q, %v", tag, err)
	}

	// Primary dies; the invocation fails over within the same call.
	primary.Close()
	if tag, err := invokeTag(t, c, ref); err != nil || tag != "secondary" {
		t.Fatalf("after primary death: %q, %v (want failover to secondary)", tag, err)
	}
	bk := c.breakerFor(primaryAddr)
	bk.mu.Lock()
	state := bk.state
	bk.mu.Unlock()
	if state != bkOpen {
		t.Fatalf("primary's circuit is %v after its failure, want open", state)
	}
	// While open, traffic routes straight to the secondary.
	if tag, err := invokeTag(t, c, ref); err != nil || tag != "secondary" {
		t.Fatalf("with circuit open: %q, %v", tag, err)
	}

	// Primary returns; after the cooldown a half-open probe readmits it.
	restarted := echoServer(t, primaryAddr, "primary", key)
	defer restarted.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(cooldown)
		tag, err := invokeTag(t, c, ref)
		if err != nil {
			t.Fatalf("during recovery: %v", err)
		}
		if tag == "primary" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("primary never recovered through the half-open probe")
		}
	}
	bk.mu.Lock()
	state = bk.state
	bk.mu.Unlock()
	if state != bkClosed {
		t.Fatalf("primary's circuit is %v after recovery, want closed", state)
	}
}

// TestAllEndpointsCircuitOpen pins the everything-down diagnosis: once every
// profile's circuit is open, an invocation reports ErrAllEndpointsDown
// instead of burning a dial timeout per call.
func TestAllEndpointsCircuitOpen(t *testing.T) {
	srv := echoServer(t, "127.0.0.1:0", "only", []byte("solo"))
	ref := IOR{TypeID: "IDL:test/solo:1.0", Key: []byte("solo"), Threads: 1,
		Endpoints: []Endpoint{srv.Endpoint(0)}}
	srv.Close()

	c := NewClient()
	c.Timeout = 2 * time.Second
	c.Breaker = BreakerPolicy{Threshold: 1, Cooldown: time.Hour}
	defer c.Close()

	if _, err := invokeTag(t, c, ref); err == nil {
		t.Fatal("invocation against a dead endpoint succeeded")
	}
	_, err := invokeTag(t, c, ref)
	if !errors.Is(err, ErrAllEndpointsDown) {
		t.Fatalf("with the circuit open: %v, want ErrAllEndpointsDown", err)
	}
}

// TestTransientFailsOverWithoutTrippingBreaker checks the error taxonomy: a
// TRANSIENT shed means the endpoint is alive, so the client fails over for
// this call but must not open the endpoint's circuit.
func TestTransientFailsOverWithoutTrippingBreaker(t *testing.T) {
	key := []byte("shedder")
	// A zero-capacity primary sheds everything; the secondary serves.
	primary, err := NewServerOpts("127.0.0.1:0", ServerOptions{
		MaxInFlight: 1, QueueDepth: -1, MaxConnInFlight: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	hold := make(chan struct{})
	defer close(hold)
	primary.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		<-hold
		return nil
	}))
	secondary := echoServer(t, "127.0.0.1:0", "secondary", key)
	defer secondary.Close()

	ref := IOR{TypeID: "IDL:test/shed:1.0", Key: key, Threads: 1,
		Endpoints: []Endpoint{primary.Endpoint(0)}}
	ref.AddProfile([]Endpoint{secondary.Endpoint(0)})

	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Breaker = BreakerPolicy{Threshold: 1, Cooldown: time.Hour}
	defer c.Close()

	// Saturate the primary's single slot so subsequent requests shed.
	go c.InvokeAddr(primary.Addr(), key, "who", NewArgEncoder().Bytes(), false)
	deadline := time.Now().Add(5 * time.Second)
	for primary.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("saturating request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	tag, err := invokeTag(t, c, ref)
	if err != nil || tag != "secondary" {
		t.Fatalf("shed request did not fail over: %q, %v", tag, err)
	}
	bk := c.breakerFor(primary.Addr())
	bk.mu.Lock()
	state := bk.state
	bk.mu.Unlock()
	if state != bkClosed {
		t.Fatalf("TRANSIENT shed tripped the primary's circuit to %v", state)
	}
}
