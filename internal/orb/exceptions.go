package orb

import (
	"errors"
	"fmt"

	"repro/internal/cdr"
	"repro/internal/wire"
)

// UserException is an application-defined exception declared in IDL. A
// servant returns one from Dispatch to produce a USER_EXCEPTION reply; the
// client-side stub rebuilds it from the reply body. Payload carries any
// exception members marshalled by generated code.
type UserException struct {
	RepoID  string // repository id of the exception type
	Message string
	Payload []byte
}

func (e *UserException) Error() string {
	if e.Message == "" {
		return e.RepoID
	}
	return fmt.Sprintf("%s: %s", e.RepoID, e.Message)
}

// SystemException mirrors CORBA system exceptions: raised by the ORB (or by
// a servant for infrastructure failures) and reported as SYSTEM_EXCEPTION
// replies.
type SystemException struct {
	RepoID  string // e.g. "IDL:PARDIS/BAD_OPERATION:1.0"
	Minor   uint32
	Message string
}

func (e *SystemException) Error() string {
	return fmt.Sprintf("%s (minor %d): %s", e.RepoID, e.Minor, e.Message)
}

// Well-known system exception repository ids.
const (
	RepoBadOperation   = "IDL:PARDIS/BAD_OPERATION:1.0"
	RepoObjectNotExist = "IDL:PARDIS/OBJECT_NOT_EXIST:1.0"
	RepoMarshal        = "IDL:PARDIS/MARSHAL:1.0"
	RepoInternal       = "IDL:PARDIS/INTERNAL:1.0"
	RepoComm           = "IDL:PARDIS/COMM_FAILURE:1.0"
	RepoTimeout        = "IDL:PARDIS/TIMEOUT:1.0"
	RepoTransient      = "IDL:PARDIS/TRANSIENT:1.0"
)

// Transient builds the standard overload-shedding exception: the server is
// alive but refused to take on the request (admission-control caps hit, or a
// drain in progress). Like CORBA's TRANSIENT, it tells the client the request
// was never dispatched and may safely be retried — here or on a replica.
func Transient(msg string) *SystemException {
	return &SystemException{RepoID: RepoTransient, Message: msg}
}

// IsTransient reports whether err is a TRANSIENT system exception (the
// server shed the request without dispatching it).
func IsTransient(err error) bool {
	var se *SystemException
	return errors.As(err, &se) && se.RepoID == RepoTransient
}

// BadOperation builds the standard exception for an unknown operation name.
func BadOperation(op string) *SystemException {
	return &SystemException{RepoID: RepoBadOperation, Message: fmt.Sprintf("unknown operation %q", op)}
}

// ObjectNotExist builds the standard exception for an unknown object key.
func ObjectNotExist(key []byte) *SystemException {
	return &SystemException{RepoID: RepoObjectNotExist, Message: fmt.Sprintf("no servant with key %q", key)}
}

// Marshal builds the standard exception for argument (de)marshalling
// failures.
func Marshal(err error) *SystemException {
	return &SystemException{RepoID: RepoMarshal, Message: err.Error()}
}

// ForwardRequest is not an exception: a servant returns it from Dispatch to
// tell the adapter to answer with LOCATION_FORWARD, redirecting the client
// to Target. This is how a relocated or migrated object bounces clients to
// its new endpoints.
type ForwardRequest struct {
	Target IOR
}

func (f *ForwardRequest) Error() string {
	return fmt.Sprintf("forward to %s", f.Target.TypeID)
}

// encodeException renders an exception as a reply body.
func encodeException(e *cdr.Encoder, err error) wire.ReplyStatus {
	var ue *UserException
	if errors.As(err, &ue) {
		e.WriteString(ue.RepoID)
		e.WriteString(ue.Message)
		e.WriteOctets(ue.Payload)
		return wire.ReplyUserException
	}
	var se *SystemException
	if !errors.As(err, &se) {
		se = &SystemException{RepoID: RepoInternal, Message: err.Error()}
	}
	e.WriteString(se.RepoID)
	e.WriteULong(se.Minor)
	e.WriteString(se.Message)
	return wire.ReplySystemException
}

// decodeException rebuilds the error carried by an exceptional reply. The
// body is an argument payload (leading byte-order octet).
func decodeException(status wire.ReplyStatus, body []byte) error {
	d, err := ArgDecoder(body)
	if err != nil {
		return fmt.Errorf("orb: corrupt exception payload: %w", err)
	}
	switch status {
	case wire.ReplyUserException:
		var ue UserException
		var err error
		if ue.RepoID, err = d.ReadString(); err != nil {
			return fmt.Errorf("orb: corrupt user exception: %w", err)
		}
		if ue.Message, err = d.ReadString(); err != nil {
			return fmt.Errorf("orb: corrupt user exception: %w", err)
		}
		if ue.Payload, err = d.ReadOctets(); err != nil {
			return fmt.Errorf("orb: corrupt user exception: %w", err)
		}
		return &ue
	case wire.ReplySystemException:
		var se SystemException
		var err error
		if se.RepoID, err = d.ReadString(); err != nil {
			return fmt.Errorf("orb: corrupt system exception: %w", err)
		}
		if se.Minor, err = d.ReadULong(); err != nil {
			return fmt.Errorf("orb: corrupt system exception: %w", err)
		}
		if se.Message, err = d.ReadString(); err != nil {
			return fmt.Errorf("orb: corrupt system exception: %w", err)
		}
		return &se
	default:
		return fmt.Errorf("orb: unexpected reply status %v", status)
	}
}
