package orb

import (
	"errors"
	"testing"

	"repro/internal/wire"
)

func TestArgPayloadRoundTrip(t *testing.T) {
	e := NewArgEncoder()
	e.WriteLong(7)
	e.WriteDouble(1.5)
	e.WriteString("abc")
	d, err := ArgDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := d.ReadLong(); err != nil || v != 7 {
		t.Fatalf("long %v %v", v, err)
	}
	if v, err := d.ReadDouble(); err != nil || v != 1.5 {
		t.Fatalf("double %v %v", v, err)
	}
	if v, err := d.ReadString(); err != nil || v != "abc" {
		t.Fatalf("string %q %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", d.Remaining())
	}
}

func TestArgDecoderEmptyAndBadFlag(t *testing.T) {
	d, err := ArgDecoder(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatal("empty payload not exhausted")
	}
	if _, err := ArgDecoder([]byte{7, 1, 2}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestArgPayloadAlignmentMatchesEncapsulation(t *testing.T) {
	// A double written right after the flag octet must land 8-aligned
	// relative to the payload start, like an encapsulation body.
	e := NewArgEncoder()
	e.WriteDouble(2.25)
	buf := e.Bytes()
	if len(buf) != 16 { // 1 flag + 7 pad + 8 value
		t.Fatalf("payload length %d", len(buf))
	}
	d, err := ArgDecoder(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := d.ReadDouble(); err != nil || v != 2.25 {
		t.Fatalf("%v %v", v, err)
	}
}

func TestExceptionEncodingRoundTrip(t *testing.T) {
	// User exception through the reply path.
	out := NewArgEncoder()
	status := encodeException(out, &UserException{RepoID: "IDL:E:1.0", Message: "m", Payload: []byte{1, 2}})
	if status != wire.ReplyUserException {
		t.Fatalf("status %v", status)
	}
	err := decodeException(status, out.Bytes())
	var ue *UserException
	if !errors.As(err, &ue) || ue.RepoID != "IDL:E:1.0" || len(ue.Payload) != 2 {
		t.Fatalf("%v", err)
	}

	// System exception.
	out = NewArgEncoder()
	status = encodeException(out, &SystemException{RepoID: RepoTimeout, Minor: 3, Message: "slow"})
	if status != wire.ReplySystemException {
		t.Fatalf("status %v", status)
	}
	err = decodeException(status, out.Bytes())
	var se *SystemException
	if !errors.As(err, &se) || se.RepoID != RepoTimeout || se.Minor != 3 {
		t.Fatalf("%v", err)
	}

	// Plain errors become INTERNAL system exceptions.
	out = NewArgEncoder()
	status = encodeException(out, errors.New("whoops"))
	if status != wire.ReplySystemException {
		t.Fatalf("status %v", status)
	}
	err = decodeException(status, out.Bytes())
	if !errors.As(err, &se) || se.RepoID != RepoInternal {
		t.Fatalf("%v", err)
	}
}

func TestDecodeExceptionCorrupt(t *testing.T) {
	if err := decodeException(wire.ReplyUserException, []byte{0}); err == nil {
		t.Fatal("truncated exception accepted")
	}
	if err := decodeException(wire.ReplyStatus(9), NewArgEncoder().Bytes()); err == nil {
		t.Fatal("bogus status accepted")
	}
}

func TestStandardExceptionBuilders(t *testing.T) {
	if BadOperation("x").RepoID != RepoBadOperation {
		t.Fatal("BadOperation repo id")
	}
	if ObjectNotExist([]byte("k")).RepoID != RepoObjectNotExist {
		t.Fatal("ObjectNotExist repo id")
	}
	if Marshal(errors.New("m")).RepoID != RepoMarshal {
		t.Fatal("Marshal repo id")
	}
	fr := &ForwardRequest{Target: IOR{TypeID: "IDL:t:1.0"}}
	if fr.Error() == "" {
		t.Fatal("ForwardRequest message empty")
	}
}

func TestEndpointAddr(t *testing.T) {
	ep := Endpoint{Host: "10.1.2.3", Port: 81, Rank: 2}
	if ep.Addr() != "10.1.2.3:81" {
		t.Fatalf("addr %q", ep.Addr())
	}
}
