// Package orb implements the PARDIS request broker core: object references,
// the object adapter (Server), the client-side invocation engine (Client),
// argument payload conventions, and the CORBA-style exception model.
//
// The division of labour mirrors figure 1 of the paper: generated stub code
// (internal/idlgen) marshals arguments with internal/cdr and calls this
// package to move requests; this package in turn speaks PGIOP
// (internal/wire) over internal/transport connections. SPMD-specific
// machinery — collective delivery, distributed argument transfer — lives one
// layer up in internal/core and uses the Server/Client primitives here, in
// particular the Data message routing hooks (Server.SetDataHandler,
// Client.RegisterDataSink).
package orb
