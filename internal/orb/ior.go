package orb

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cdr"
)

// Endpoint is one network attachment point of an object. A conventional
// object has exactly one; an SPMD object exporting multi-port transfer has
// one per computing thread ("these connections become a part of the object
// reference for this particular object", paper §3.3).
type Endpoint struct {
	Host string
	Port int
	Rank int // computing thread this endpoint belongs to
}

// Addr renders the endpoint as host:port.
func (e Endpoint) Addr() string { return fmt.Sprintf("%s:%d", e.Host, e.Port) }

// IOR is a PARDIS interoperable object reference: everything a client needs
// to reach an object. Threads records the number of computing threads of an
// SPMD object (1 for conventional objects); Endpoints lists the reachable
// ports, always including the communicating thread's endpoint (rank 0)
// first.
type IOR struct {
	TypeID    string // repository id, e.g. "IDL:diff_object:1.0"
	Key       []byte // object key in the server's adapter
	Threads   int
	Endpoints []Endpoint
	// Alternates lists additional profiles — endpoint sets of replicas
	// serving the same object. Clients try the primary profile (Endpoints)
	// first and fail over, profile by profile, through Alternates. Each
	// replica must accept the same object key.
	Alternates [][]Endpoint
	// Epoch is the membership epoch of an elastic SPMD object: every resize
	// republishes a refreshed reference with the next epoch, and requests
	// tagged with a stale epoch are refused in a re-resolvable way. 0 marks
	// a conventional (non-elastic) reference. The field rides at the end of
	// the encapsulation, so decoders predating it simply ignore the trailing
	// bytes and older references decode as epoch 0.
	Epoch int
}

// Errors reported by reference handling.
var (
	ErrBadIOR = errors.New("orb: malformed object reference")
)

// Nil reports whether the reference is the nil object reference.
func (r IOR) Nil() bool { return len(r.Endpoints) == 0 }

// Primary returns the communicating thread's endpoint.
func (r IOR) Primary() (Endpoint, error) {
	if r.Nil() {
		return Endpoint{}, fmt.Errorf("%w: nil reference", ErrBadIOR)
	}
	return r.Endpoints[0], nil
}

// Profiles returns every endpoint set of the reference, primary first.
func (r IOR) Profiles() [][]Endpoint {
	out := make([][]Endpoint, 0, 1+len(r.Alternates))
	out = append(out, r.Endpoints)
	out = append(out, r.Alternates...)
	return out
}

// ProfileAddrs returns the primary (rank-0 communicating thread) address of
// each profile, in failover order.
func (r IOR) ProfileAddrs() ([]string, error) {
	if r.Nil() {
		return nil, fmt.Errorf("%w: nil reference", ErrBadIOR)
	}
	addrs := make([]string, 0, 1+len(r.Alternates))
	addrs = append(addrs, r.Endpoints[0].Addr())
	for _, alt := range r.Alternates {
		if len(alt) == 0 {
			continue
		}
		addrs = append(addrs, alt[0].Addr())
	}
	return addrs, nil
}

// dedupeEndpoints drops exact repeats (host, port, rank) from a profile,
// preserving order. Repeated replica announcements may accumulate the same
// endpoint several times; carrying the duplicates would inflate anything
// derived from the profile (the shard ring above all).
func dedupeEndpoints(eps []Endpoint) []Endpoint {
	out := eps[:0:0]
	for _, e := range eps {
		dup := false
		for _, seen := range out {
			if seen == e {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return out
}

// sameEndpointSet reports whether two profiles name the same endpoints,
// ignoring order. Two SPMD ranks of one replica announcing the same group
// produce rotations of one endpoint list; they are the same profile.
func sameEndpointSet(a, b []Endpoint) bool {
	if len(a) != len(b) {
		return false
	}
	for _, ea := range a {
		found := false
		for _, eb := range b {
			if ea == eb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// AddProfile merges another replica's endpoint set into the reference:
//
//   - duplicate endpoints inside the announcement are dropped;
//   - a profile sharing an existing profile's primary address replaces it
//     (re-registration refreshes the membership instead of being ignored,
//     so a shard that restarts with new data ports is picked up);
//   - a profile whose endpoint set equals an existing profile's — in any
//     order — is skipped (another rank of a known replica announcing).
//
// Only genuinely new profiles append, so repeated replica announcements
// cannot inflate the profile list (or the shard ring built over it).
func (r *IOR) AddProfile(eps []Endpoint) {
	eps = dedupeEndpoints(eps)
	if len(eps) == 0 {
		return
	}
	addr := eps[0].Addr()
	if len(r.Endpoints) == 0 {
		r.Endpoints = eps
		return
	}
	if r.Endpoints[0].Addr() == addr {
		r.Endpoints = eps
		return
	}
	for i, alt := range r.Alternates {
		if len(alt) > 0 && alt[0].Addr() == addr {
			r.Alternates[i] = eps
			return
		}
	}
	if sameEndpointSet(r.Endpoints, eps) {
		return
	}
	for _, alt := range r.Alternates {
		if sameEndpointSet(alt, eps) {
			return
		}
	}
	r.Alternates = append(r.Alternates, eps)
}

// EndpointFor returns the endpoint serving the given computing thread, or
// an error if the reference does not expose one (centralized-only exports
// expose only rank 0).
func (r IOR) EndpointFor(rank int) (Endpoint, error) {
	for _, e := range r.Endpoints {
		if e.Rank == rank {
			return e, nil
		}
	}
	return Endpoint{}, fmt.Errorf("%w: no endpoint for computing thread %d", ErrBadIOR, rank)
}

// Multiport reports whether the reference exposes one endpoint per thread,
// i.e. supports the multi-port transfer method.
func (r IOR) Multiport() bool {
	if r.Threads < 1 || len(r.Endpoints) < r.Threads {
		return false
	}
	seen := make(map[int]bool, r.Threads)
	for _, e := range r.Endpoints {
		seen[e.Rank] = true
	}
	for t := 0; t < r.Threads; t++ {
		if !seen[t] {
			return false
		}
	}
	return true
}

// Encode writes the reference as a CDR encapsulation.
func (r IOR) Encode(e *cdr.Encoder) {
	e.WriteEncapsulation(func(inner *cdr.Encoder) {
		inner.WriteString(r.TypeID)
		inner.WriteOctets(r.Key)
		inner.WriteULong(uint32(r.Threads))
		writeEndpoints(inner, r.Endpoints)
		inner.WriteULong(uint32(len(r.Alternates)))
		for _, alt := range r.Alternates {
			writeEndpoints(inner, alt)
		}
		inner.WriteULong(uint32(r.Epoch))
	})
}

func writeEndpoints(e *cdr.Encoder, eps []Endpoint) {
	e.WriteULong(uint32(len(eps)))
	for _, ep := range eps {
		e.WriteString(ep.Host)
		e.WriteULong(uint32(ep.Port))
		e.WriteULong(uint32(ep.Rank))
	}
}

func readEndpoints(d *cdr.Decoder, what string) ([]Endpoint, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("%w: %s count: %v", ErrBadIOR, what, err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: implausible %s count %d", ErrBadIOR, what, n)
	}
	eps := make([]Endpoint, n)
	for i := range eps {
		if eps[i].Host, err = d.ReadString(); err != nil {
			return nil, fmt.Errorf("%w: %s %d host: %v", ErrBadIOR, what, i, err)
		}
		port, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("%w: %s %d port: %v", ErrBadIOR, what, i, err)
		}
		rank, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("%w: %s %d rank: %v", ErrBadIOR, what, i, err)
		}
		eps[i].Port = int(port)
		eps[i].Rank = int(rank)
	}
	return eps, nil
}

// DecodeIOR reads a reference written by Encode.
func DecodeIOR(d *cdr.Decoder) (IOR, error) {
	inner, err := d.ReadEncapsulation()
	if err != nil {
		return IOR{}, fmt.Errorf("%w: %v", ErrBadIOR, err)
	}
	var r IOR
	if r.TypeID, err = inner.ReadString(); err != nil {
		return IOR{}, fmt.Errorf("%w: type id: %v", ErrBadIOR, err)
	}
	if r.Key, err = inner.ReadOctets(); err != nil {
		return IOR{}, fmt.Errorf("%w: key: %v", ErrBadIOR, err)
	}
	threads, err := inner.ReadULong()
	if err != nil {
		return IOR{}, fmt.Errorf("%w: threads: %v", ErrBadIOR, err)
	}
	if threads > 1<<20 {
		return IOR{}, fmt.Errorf("%w: implausible thread count %d", ErrBadIOR, threads)
	}
	r.Threads = int(threads)
	if r.Endpoints, err = readEndpoints(inner, "endpoint"); err != nil {
		return IOR{}, err
	}
	// Alternate profiles follow. References written before multi-profile
	// support simply end here; treat that as zero alternates.
	nalt, err := inner.ReadULong()
	if err != nil {
		return r, nil
	}
	if nalt > 1<<10 {
		return IOR{}, fmt.Errorf("%w: implausible profile count %d", ErrBadIOR, nalt)
	}
	for i := 0; i < int(nalt); i++ {
		alt, err := readEndpoints(inner, "alternate endpoint")
		if err != nil {
			return IOR{}, err
		}
		r.Alternates = append(r.Alternates, alt)
	}
	// The membership epoch follows. References written before elastic
	// membership end here; treat that as epoch 0.
	epoch, err := inner.ReadULong()
	if err != nil {
		return r, nil
	}
	if epoch > 1<<30 {
		return IOR{}, fmt.Errorf("%w: implausible epoch %d", ErrBadIOR, epoch)
	}
	r.Epoch = int(epoch)
	return r, nil
}

// String renders the stringified reference, "IOR:" + hex, the form users
// pass between processes (exactly like CORBA's object_to_string).
func (r IOR) String() string {
	e := cdr.NewEncoder(cdr.NativeOrder)
	// The stringified form embeds its own byte-order octet so any process
	// can parse it.
	e.WriteOctet(byte(cdr.NativeOrder))
	r.Encode(e)
	return "IOR:" + hex.EncodeToString(e.Bytes())
}

// ParseIOR parses a stringified reference produced by String.
func ParseIOR(s string) (IOR, error) {
	if !strings.HasPrefix(s, "IOR:") {
		return IOR{}, fmt.Errorf("%w: missing IOR: prefix", ErrBadIOR)
	}
	raw, err := hex.DecodeString(s[len("IOR:"):])
	if err != nil {
		return IOR{}, fmt.Errorf("%w: %v", ErrBadIOR, err)
	}
	if len(raw) < 1 {
		return IOR{}, fmt.Errorf("%w: empty body", ErrBadIOR)
	}
	if raw[0] > 1 {
		return IOR{}, fmt.Errorf("%w: byte-order flag %d", ErrBadIOR, raw[0])
	}
	d := cdr.NewDecoder(raw, cdr.ByteOrder(raw[0]))
	if _, err := d.ReadOctet(); err != nil {
		return IOR{}, fmt.Errorf("%w: %v", ErrBadIOR, err)
	}
	return DecodeIOR(d)
}
