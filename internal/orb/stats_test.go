package orb

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStatsUnderAdmissionOverload pins the accounting identity of the
// admission layer under concurrent overload: every offered request is either
// dispatched or shed (never lost, never double-counted), and the in-flight
// and queued gauges drain back to zero once the storm passes. The servant
// blocks until explicitly released, so admission is purely capacity-driven:
// exactly cap+queue requests are admitted and the rest shed, whatever the
// arrival interleaving — which makes the expected counts exact even under
// -race scheduling jitter.
func TestStatsUnderAdmissionOverload(t *testing.T) {
	cases := []struct {
		name        string
		maxInFlight int
		queueDepth  int // -1 disables queueing
		clients     int
		perClient   int
	}{
		{"tiny-budget", 2, 1, 8, 4},
		{"no-queue", 3, -1, 6, 5},
		{"wide-queue", 4, 16, 10, 3},
		{"single-slot", 1, 2, 12, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			srv, addr, release := blockingServer(t, ServerOptions{
				MaxInFlight:     tc.maxInFlight,
				QueueDepth:      tc.queueDepth,
				MaxConnInFlight: -1, // the identity under test is the global ledger
				Metrics:         reg,
			}, []byte("ledger"))

			capacity := tc.maxInFlight
			if tc.queueDepth > 0 {
				capacity += tc.queueDepth
			}
			offered := tc.clients * tc.perClient
			if offered <= capacity {
				t.Fatalf("bad case: offered %d does not overload capacity %d", offered, capacity)
			}

			errs := make(chan error, offered)
			for i := 0; i < tc.clients; i++ {
				c := NewClient()
				c.Timeout = 10 * time.Second
				defer c.Close()
				for j := 0; j < tc.perClient; j++ {
					go func() {
						_, err := c.InvokeAddr(addr, []byte("ledger"), "work", NewArgEncoder().Bytes(), false)
						errs <- err
					}()
				}
			}

			// Nothing completes until release, so the overflow must shed with
			// TRANSIENT on its own — exactly offered-capacity of it.
			deadline := time.After(10 * time.Second)
			for shed := 0; shed < offered-capacity; {
				select {
				case err := <-errs:
					if !IsTransient(err) {
						t.Fatalf("saturated server returned %v, want TRANSIENT", err)
					}
					shed++
				case <-deadline:
					t.Fatalf("overflow not fully shed; %d requests queued beyond capacity", offered-capacity)
				}
			}

			close(release)
			for i := 0; i < capacity; i++ {
				select {
				case err := <-errs:
					if err != nil {
						t.Fatalf("admitted request failed after release: %v", err)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("admitted request never completed")
				}
			}

			st := srv.Stats()
			if st.Dispatched+st.Shed != uint64(offered) {
				t.Errorf("dispatched %d + shed %d != offered %d", st.Dispatched, st.Shed, offered)
			}
			if st.Dispatched != uint64(capacity) {
				t.Errorf("dispatched %d, want exactly capacity %d", st.Dispatched, capacity)
			}
			if st.InFlight != 0 || st.Queued != 0 {
				t.Errorf("gauges not drained: in flight %d, queued %d", st.InFlight, st.Queued)
			}

			// The registry's pull source must agree with Stats exactly — it is
			// the same ledger surfaced a second way, not a parallel count.
			snap := reg.Snapshot()
			if got := snap.Pulled["orb.server.dispatched"]; got != int64(st.Dispatched) {
				t.Errorf("pulled dispatched %d, want %d", got, st.Dispatched)
			}
			if got := snap.Pulled["orb.server.shed"]; got != int64(st.Shed) {
				t.Errorf("pulled shed %d, want %d", got, st.Shed)
			}
			if got := snap.Pulled["orb.server.in_flight"]; got != 0 {
				t.Errorf("pulled in_flight %d, want 0", got)
			}
			if h := snap.Histograms["orb.server.handle_ns"]; h.Count != st.Dispatched {
				t.Errorf("handle_ns observed %d dispatches, want %d", h.Count, st.Dispatched)
			}
		})
	}
}
