package orb

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/shard"
)

// shardedRef builds an n-shard group: n echo servers answering "who" with
// "shard-<i>", merged into one multi-profile reference in announcement order.
func shardedRef(t *testing.T, n int) (IOR, []*Server, []string) {
	t.Helper()
	key := []byte("sharded")
	servers := make([]*Server, n)
	addrs := make([]string, n)
	var ref IOR
	for i := range servers {
		servers[i] = echoServer(t, "127.0.0.1:0", "shard-"+string(rune('0'+i)), key)
		srv := servers[i]
		t.Cleanup(func() { srv.Close() })
		addrs[i] = servers[i].Addr()
		if i == 0 {
			ref = IOR{TypeID: "IDL:test/shard:1.0", Key: key, Threads: 1,
				Endpoints: []Endpoint{servers[0].Endpoint(0)}}
		} else {
			ref.AddProfile([]Endpoint{servers[i].Endpoint(0)})
		}
	}
	return ref, servers, addrs
}

func invokeSharded(t *testing.T, c *Client, ref IOR, key string, idempotent bool) (string, int, error) {
	t.Helper()
	out, idx, err := c.InvokeSharded(ref, "who", NewArgEncoder().Bytes(), InvokeOptions{
		ShardKey: []byte(key), Idempotent: idempotent,
	})
	if err != nil {
		return "", idx, err
	}
	d, err := ArgDecoder(out)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := d.ReadString()
	if err != nil {
		t.Fatal(err)
	}
	return tag, idx, err
}

// keyOwnedBy finds a shard key whose ring owner is the wanted index.
func keyOwnedBy(t *testing.T, addrs []string, want int) string {
	t.Helper()
	r := shard.New(addrs, 0)
	for i := 0; i < 10000; i++ {
		k := "key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if r.Shard([]byte(k)) == want {
			return k
		}
	}
	t.Fatal("no key hashes to the wanted shard")
	return ""
}

// TestShardRoutingOwnerStickiness: a healthy group routes a key to its ring
// owner, and keeps doing so call after call.
func TestShardRoutingOwnerStickiness(t *testing.T) {
	ref, _, addrs := shardedRef(t, 3)
	c := NewClient()
	c.Timeout = 5 * time.Second
	defer c.Close()

	r := shard.New(addrs, 0)
	for _, key := range []string{"alpha", "beta", "gamma", "delta"} {
		want := r.Shard([]byte(key))
		for rep := 0; rep < 3; rep++ {
			_, idx, err := invokeSharded(t, c, ref, key, true)
			if err != nil {
				t.Fatalf("key %q rep %d: %v", key, rep, err)
			}
			if idx != want {
				t.Fatalf("key %q served by shard %d, ring owner is %d", key, idx, want)
			}
		}
	}
}

// TestShardRoutingIdempotentReroute: the owner dies; an idempotent invocation
// reroutes to the ring successor within the same call, and the reroute and
// health instruments record it.
func TestShardRoutingIdempotentReroute(t *testing.T) {
	ref, servers, addrs := shardedRef(t, 3)
	reg := obs.NewRegistry()

	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Breaker = BreakerPolicy{Threshold: 1, Cooldown: time.Hour}
	c.Metrics = reg
	defer c.Close()

	key := keyOwnedBy(t, addrs, 1)
	order := shard.New(addrs, 0).Order([]byte(key))
	servers[1].Close()

	tag, idx, err := invokeSharded(t, c, ref, key, true)
	if err != nil {
		t.Fatalf("idempotent invocation with a dead owner: %v", err)
	}
	if idx != order[1] {
		t.Fatalf("served by shard %d (%q), want ring successor %d", idx, tag, order[1])
	}
	if got := reg.Counter("shard.reroute_total").Value(); got == 0 {
		t.Error("reroute not counted in shard.reroute_total")
	}
	if got := reg.Counter("shard.reroute_total." + addrs[1]).Value(); got == 0 {
		t.Error("reroute not attributed to the dead shard's counter")
	}
	if got := reg.Gauge("shard.healthy." + addrs[1]).Value(); got != 0 {
		t.Errorf("dead shard's health gauge is %d, want 0", got)
	}
	if got := reg.Gauge("shard.healthy." + addrs[order[1]]).Value(); got != 1 {
		t.Errorf("serving successor's health gauge is %d, want 1", got)
	}

	// With the circuit now open, the next call spills without an attempt.
	_, idx2, err := invokeSharded(t, c, ref, key, true)
	if err != nil || idx2 != order[1] {
		t.Fatalf("second call: shard %d, %v; want spill to %d", idx2, err, order[1])
	}
	if got := reg.Counter("shard.spill_total").Value(); got == 0 {
		t.Error("open-circuit skip not counted in shard.spill_total")
	}
}

// TestShardRoutingNonIdempotentSurfacesShardError: a non-idempotent
// invocation must not transparently re-send past an ambiguous failure — it
// surfaces a single *ShardError naming the shard that failed.
func TestShardRoutingNonIdempotentSurfacesShardError(t *testing.T) {
	ref, servers, addrs := shardedRef(t, 3)
	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Breaker = BreakerPolicy{Threshold: 1, Cooldown: time.Hour}
	defer c.Close()

	key := keyOwnedBy(t, addrs, 2)
	servers[2].Close()

	_, _, err := invokeSharded(t, c, ref, key, false)
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("non-idempotent failure: %v, want *ShardError", err)
	}
	if se.Shard != addrs[2] {
		t.Fatalf("error pinned to %q, want the dead owner %q", se.Shard, addrs[2])
	}

	// The failure opened the owner's circuit; the retry finds it open —
	// provably nothing sent — so even the non-idempotent call now completes
	// on the successor.
	tag, _, err := invokeSharded(t, c, ref, key, false)
	if err != nil {
		t.Fatalf("retry after circuit opened: %v", err)
	}
	if tag == "shard-2" {
		t.Fatalf("dead shard answered %q", tag)
	}
}

// TestShardRoutingAllShardsDown: every shard dead -> the caller gets one
// terminal error; once all circuits are open it is ErrAllEndpointsDown.
func TestShardRoutingAllShardsDown(t *testing.T) {
	ref, servers, _ := shardedRef(t, 3)
	c := NewClient()
	c.Timeout = 2 * time.Second
	c.Breaker = BreakerPolicy{Threshold: 1, Cooldown: time.Hour}
	defer c.Close()

	for _, s := range servers {
		s.Close()
	}
	if _, _, err := invokeSharded(t, c, ref, "any", true); err == nil {
		t.Fatal("invocation with every shard dead succeeded")
	}
	_, _, err := invokeSharded(t, c, ref, "any", true)
	if !errors.Is(err, ErrAllEndpointsDown) {
		t.Fatalf("with all circuits open: %v, want ErrAllEndpointsDown", err)
	}
}

// TestShardRoutingAppErrorNotRerouted: an application-level failure means the
// shard is alive and answered; rerouting would re-execute on another shard,
// so the error returns as-is and no reroute is counted.
func TestShardRoutingAppErrorNotRerouted(t *testing.T) {
	ref, servers, addrs := shardedRef(t, 3)
	// Replace each echo servant with one that rejects unknown operations.
	for _, srv := range servers {
		srv.Register([]byte("sharded"), ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
			if op != "who" {
				return BadOperation(op)
			}
			out.WriteString("ok")
			return nil
		}))
	}
	reg := obs.NewRegistry()
	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Metrics = reg
	defer c.Close()

	key := keyOwnedBy(t, addrs, 0)
	out, idx, err := c.InvokeSharded(ref, "no-such-op", NewArgEncoder().Bytes(), InvokeOptions{
		ShardKey: []byte(key), Idempotent: true,
	})
	if err == nil {
		t.Fatalf("unknown operation succeeded: %v (shard %d)", out, idx)
	}
	var se *ShardError
	if errors.As(err, &se) {
		t.Fatalf("application error wrapped as ShardError: %v", err)
	}
	if got := reg.Counter("shard.reroute_total").Value(); got != 0 {
		t.Errorf("application error counted %d reroutes", got)
	}
}

// TestShardRoutingRefreshedMembership: a refreshed reference with an extra
// profile gets a new ring; keys the new shard now owns move to it, keys it
// does not own stay put (the consistency property, observed end to end).
func TestShardRoutingRefreshedMembership(t *testing.T) {
	ref, _, addrs := shardedRef(t, 3)
	c := NewClient()
	c.Timeout = 5 * time.Second
	defer c.Close()

	// A fourth shard joins.
	extra := echoServer(t, "127.0.0.1:0", "shard-3", []byte("sharded"))
	t.Cleanup(func() { extra.Close() })
	grown := ref
	grown.AddProfile([]Endpoint{extra.Endpoint(0)})
	grownAddrs := append(append([]string{}, addrs...), extra.Addr())

	oldRing := shard.New(addrs, 0)
	newRing := shard.New(grownAddrs, 0)
	moved, stayed := 0, 0
	for i := 0; i < 64; i++ {
		key := "k" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		want := newRing.Shard([]byte(key))
		_, idx, err := invokeSharded(t, c, grown, key, true)
		if err != nil {
			t.Fatalf("key %q: %v", key, err)
		}
		if idx != want {
			t.Fatalf("key %q served by shard %d, new ring owner is %d", key, idx, want)
		}
		if old := oldRing.Shard([]byte(key)); old != want {
			moved++
			if want != 3 {
				t.Fatalf("key %q moved from %d to %d; growth may only move keys to the new shard", key, old, want)
			}
		} else {
			stayed++
		}
	}
	if moved == 0 {
		t.Error("no keys moved to the new shard in 64 tries")
	}
	if stayed == 0 {
		t.Error("every key moved; consistent hashing should keep most in place")
	}
}
