package orb

import (
	"sync"
	"testing"
	"time"
)

// TestBreakerHalfOpenSingleProbe pins the half-open admission contract at
// the state-machine level: when an open circuit's cooldown expires and many
// callers race into allow(), exactly one is admitted as the probe; the losers
// are rejected outright — they neither run a probe of their own nor disturb
// the in-flight one.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	bk := &breaker{policy: BreakerPolicy{Threshold: 1, Cooldown: 10 * time.Millisecond}}
	bk.failure(time.Now().Add(-time.Second)) // opened well past the cooldown

	const callers = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	probes, admitted, rejected := 0, 0, 0
	now := time.Now()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, probe := bk.allow(now)
			mu.Lock()
			defer mu.Unlock()
			if probe {
				probes++
			}
			if ok {
				admitted++
			} else {
				rejected++
			}
		}()
	}
	wg.Wait()
	if probes != 1 || admitted != 1 {
		t.Fatalf("%d probes, %d admitted out of %d callers; want exactly 1 of each", probes, admitted, callers)
	}
	if rejected != callers-1 {
		t.Fatalf("%d rejected, want %d", rejected, callers-1)
	}

	// While the probe is in flight the circuit admits nobody else, even after
	// more cooldowns elapse.
	if ok, probe := bk.allow(now.Add(time.Minute)); ok || probe {
		t.Fatalf("second probe admitted while the first is in flight (ok=%v probe=%v)", ok, probe)
	}

	// The winning probe settles the circuit for everyone: success closes it...
	bk.success()
	if ok, probe := bk.allow(now); !ok || probe {
		t.Fatalf("after probe success: ok=%v probe=%v, want plain admission", ok, probe)
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failed probe re-opens the circuit
// for a full new cooldown, and the next expiry admits exactly one new probe.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	bk := &breaker{policy: BreakerPolicy{Threshold: 1, Cooldown: cooldown}}
	start := time.Now()
	bk.failure(start) // open

	if ok, _ := bk.allow(start.Add(cooldown / 2)); ok {
		t.Fatal("admitted during cooldown")
	}
	ok, probe := bk.allow(start.Add(2 * cooldown))
	if !ok || !probe {
		t.Fatalf("cooldown expiry: ok=%v probe=%v, want a probe", ok, probe)
	}
	bk.failure(start.Add(2 * cooldown)) // probe failed

	// Immediately after the failed probe the circuit is open again.
	if ok, _ := bk.allow(start.Add(2*cooldown + cooldown/2)); ok {
		t.Fatal("admitted right after a failed probe")
	}
	// ...and the next full cooldown admits one fresh probe.
	ok, probe = bk.allow(start.Add(4 * cooldown))
	if !ok || !probe {
		t.Fatalf("after re-cooldown: ok=%v probe=%v, want a probe", ok, probe)
	}
}

// TestBreakerConcurrentRecovery is the client-level half-open race: the
// primary of a two-profile reference dies, its circuit opens, the primary
// comes back, and a herd of concurrent invocations arrives exactly when the
// cooldown expires. The contract under -race: every invocation succeeds (the
// probe's losers route to the alternate instead of failing), and the
// winning probe closes the primary's circuit exactly once.
func TestBreakerConcurrentRecovery(t *testing.T) {
	key := []byte("halfopen")
	primary := echoServer(t, "127.0.0.1:0", "primary", key)
	secondary := echoServer(t, "127.0.0.1:0", "secondary", key)
	defer secondary.Close()
	primaryAddr := primary.Addr()

	ref := IOR{TypeID: "IDL:test/halfopen:1.0", Key: key, Threads: 1,
		Endpoints: []Endpoint{primary.Endpoint(0)}}
	ref.AddProfile([]Endpoint{secondary.Endpoint(0)})

	const cooldown = 100 * time.Millisecond
	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Breaker = BreakerPolicy{Threshold: 1, Cooldown: cooldown}
	defer c.Close()

	// Kill the primary and trip its circuit.
	primary.Close()
	if tag, err := invokeTag(t, c, ref); err != nil || tag != "secondary" {
		t.Fatalf("failover call: %q, %v", tag, err)
	}

	// Bring the primary back and wait out the cooldown, then stampede.
	restarted := echoServer(t, primaryAddr, "primary", key)
	defer restarted.Close()
	time.Sleep(cooldown + 20*time.Millisecond)

	const herd = 16
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Invoke(ref, "who", NewArgEncoder().Bytes(), false)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("invocation during half-open recovery: %v", err)
		}
	}

	// The probe settled the circuit closed; traffic is back on the primary.
	bk := c.breakerFor(primaryAddr)
	bk.mu.Lock()
	state, probing := bk.state, bk.probing
	bk.mu.Unlock()
	if state != bkClosed || probing {
		t.Fatalf("after recovery: state=%v probing=%v, want closed and settled", state, probing)
	}
	if tag, err := invokeTag(t, c, ref); err != nil || tag != "primary" {
		t.Fatalf("post-recovery call: %q, %v, want the primary", tag, err)
	}
}
