package orb

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/transport"
)

func chaosServer(t *testing.T, key []byte) (*Server, IOR) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		out.WriteString(op)
		return nil
	}))
	ref := IOR{
		TypeID:    "IDL:test/chaos:1.0",
		Key:       key,
		Threads:   1,
		Endpoints: []Endpoint{srv.Endpoint(0)},
	}
	return srv, ref
}

// TestLocateRetriesThroughInjectedDisconnect is the reconnect acceptance
// case: the first connection dies on its first write, and the idempotent
// Locate must transparently succeed by redialing with backoff.
func TestLocateRetriesThroughInjectedDisconnect(t *testing.T) {
	_, ref := chaosServer(t, []byte("locate-me"))

	plan := transport.NewFaultPlan(11)
	plan.CutAfterWriteBytes = 1 // the first connection dies on its first write
	plan.FaultConns = 1         // redials get a clean stream

	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Transport = &transport.Options{Wrap: plan.Wrap}
	c.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	defer c.Close()

	found, err := c.Locate(ref)
	if err != nil {
		t.Fatalf("locate through disconnect: %v", err)
	}
	if !found {
		t.Fatal("object not located")
	}
	if n := plan.Wrapped(); n < 2 {
		t.Errorf("expected a redial after the cut, saw %d connection(s)", n)
	}
}

// TestLocateWithoutRetriesFailsOnDisconnect pins the control case: the same
// injected cut is fatal when the retry policy is zero.
func TestLocateWithoutRetriesFailsOnDisconnect(t *testing.T) {
	_, ref := chaosServer(t, []byte("locate-me"))

	plan := transport.NewFaultPlan(11)
	plan.CutAfterWriteBytes = 1
	plan.FaultConns = 1

	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Transport = &transport.Options{Wrap: plan.Wrap}
	defer c.Close()

	if _, err := c.Locate(ref); err == nil {
		t.Fatal("zero-retry locate survived the cut")
	}
}

// TestConnFailureFansOutToAllWaiters kills a connection carrying several
// pending requests and checks every waiter gets a connection error — not
// ErrInvokeTimeout, and not a hang.
func TestConnFailureFansOutToAllWaiters(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	block := make(chan struct{})
	defer close(block)
	key := []byte("tarpit")
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		<-block // never replies while the test runs
		return nil
	}))
	ref := IOR{TypeID: "IDL:test/tarpit:1.0", Key: key, Threads: 1, Endpoints: []Endpoint{srv.Endpoint(0)}}

	var mu sync.Mutex
	var injs []*transport.FaultInjector
	c := NewClient()
	// A long deadline: the waiters must be released by the connection
	// failure, not rescued by the invocation timeout.
	c.Timeout = 30 * time.Second
	c.Transport = &transport.Options{Wrap: func(rw io.ReadWriteCloser) io.ReadWriteCloser {
		f := transport.NewFaultInjector(rw, transport.FaultPlan{}, 1)
		mu.Lock()
		injs = append(injs, f)
		mu.Unlock()
		return f
	}}
	defer c.Close()

	const waiters = 6
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := c.Invoke(ref, "poke", NewArgEncoder().Bytes(), false)
			errs <- err
		}()
	}
	// Let the requests land in the pending table and on the wire; they all
	// share the one cached connection.
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	for _, f := range injs {
		f.Cut()
	}
	mu.Unlock()

	deadline := time.After(10 * time.Second)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("waiter succeeded after its connection was cut")
			}
			if errors.Is(err, ErrInvokeTimeout) {
				t.Errorf("waiter saw the timeout, want a connection error: %v", err)
			}
		case <-deadline:
			t.Fatalf("%d of %d waiters still blocked after connection cut", waiters-i, waiters)
		}
	}
}

// TestOnewayResendsThroughDisconnect covers the other idempotent retry
// path: a oneway request whose first connection dies is re-sent on a fresh
// connection.
func TestOnewayResendsThroughDisconnect(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := make(chan string, 4)
	key := []byte("sink")
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		msg, err := in.ReadString()
		if err != nil {
			return Marshal(err)
		}
		got <- msg
		return nil
	}))
	ref := IOR{TypeID: "IDL:test/sink:1.0", Key: key, Threads: 1, Endpoints: []Endpoint{srv.Endpoint(0)}}

	plan := transport.NewFaultPlan(13)
	plan.CutAfterWriteBytes = 1
	plan.FaultConns = 1

	c := NewClient()
	c.Timeout = 5 * time.Second
	c.Transport = &transport.Options{Wrap: plan.Wrap}
	c.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	defer c.Close()

	args := NewArgEncoder()
	args.WriteString("fire-and-forget")
	if _, err := c.Invoke(ref, "put", args.Bytes(), true); err != nil {
		t.Fatalf("oneway through disconnect: %v", err)
	}
	select {
	case msg := <-got:
		if msg != "fire-and-forget" {
			t.Fatalf("server got %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oneway request never arrived after the re-send")
	}
	if n := plan.Wrapped(); n < 2 {
		t.Errorf("expected a redial after the cut, saw %d connection(s)", n)
	}
}

// TestInvokeDeadlineBoundsSlowServer checks per-invocation deadlines: a
// servant slower than the deadline fails the call at the deadline even
// though the client-wide timeout is much larger.
func TestInvokeDeadlineBoundsSlowServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	release := make(chan struct{})
	defer close(release)
	key := []byte("slow")
	srv.Register(key, ServantFunc(func(op string, in *cdr.Decoder, out *cdr.Encoder) error {
		<-release
		return nil
	}))
	ref := IOR{TypeID: "IDL:test/slow:1.0", Key: key, Threads: 1, Endpoints: []Endpoint{srv.Endpoint(0)}}

	c := NewClient()
	c.Timeout = 30 * time.Second
	defer c.Close()

	start := time.Now()
	_, err = c.InvokeOpts(ref, "poke", NewArgEncoder().Bytes(),
		InvokeOptions{Deadline: time.Now().Add(300 * time.Millisecond)})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("deadline-bounded call succeeded against a stalled servant")
	}
	if !errors.Is(err, ErrInvokeTimeout) {
		t.Fatalf("want %v, got %v", ErrInvokeTimeout, err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline enforced after %v, want ~300ms", elapsed)
	}
}
