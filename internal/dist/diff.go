package dist

// Diff computes the minimal redistribution between two templates of one
// global length and splits it by whether ownership changes. It is the
// membership-change shape of Plan: when a rank set grows or shrinks, the
// cross list is exactly the point-to-point transfer schedule (every element
// whose owning rank index differs between src and dst, coalesced into
// contiguous moves), and the local list is what minimality keeps off the
// wire — elements whose owner index is unchanged never appear in cross, even
// when their local offset moved.
//
// src and dst may have different rank counts; only the lengths must agree.
// Together the two lists cover every global index exactly once, ordered by
// global index within each list.
func Diff(src, dst Layout) (local, cross []Move, err error) {
	moves, err := Plan(src, dst)
	if err != nil {
		return nil, nil, err
	}
	// Count first so each result is one exact allocation.
	nl := 0
	for _, m := range moves {
		if m.SrcRank == m.DstRank {
			nl++
		}
	}
	local = make([]Move, 0, nl)
	cross = make([]Move, 0, len(moves)-nl)
	for _, m := range moves {
		if m.SrcRank == m.DstRank {
			local = append(local, m)
		} else {
			cross = append(cross, m)
		}
	}
	return local, cross, nil
}

// MovedElems sums the element counts of a move list — the wire volume of a
// cross list from Diff.
func MovedElems(moves []Move) int {
	n := 0
	for _, m := range moves {
		n += m.Len
	}
	return n
}
