package dist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlanIdentityIsLocal(t *testing.T) {
	l := mustLayout(t, Block{}, 100, 4)
	moves, err := Plan(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 4 {
		t.Fatalf("identity plan has %d moves, want 4", len(moves))
	}
	for _, m := range moves {
		if m.SrcRank != m.DstRank || m.SrcOff != m.DstOff || m.SrcOff != 0 {
			t.Fatalf("identity move %+v", m)
		}
	}
}

func TestPlanBlockToBlockCounts(t *testing.T) {
	// 4 client ranks → 8 server ranks, 1<<19 doubles (the paper's Figure 4
	// configuration): each client block splits into exactly 2 server blocks.
	src := mustLayout(t, Block{}, 1<<19, 4)
	dst := mustLayout(t, Block{}, 1<<19, 8)
	moves, err := Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 8 {
		t.Fatalf("plan has %d moves, want 8", len(moves))
	}
	perSrc := PlanBySource(moves, 4)
	for r, ms := range perSrc {
		if len(ms) != 2 {
			t.Fatalf("client rank %d sends %d transfers, want 2", r, len(ms))
		}
	}
	perDst := PlanByDest(moves, 8)
	for r, ms := range perDst {
		if len(ms) != 1 {
			t.Fatalf("server rank %d receives %d transfers, want 1", r, len(ms))
		}
	}
}

func TestPlanPaperMinimumSends(t *testing.T) {
	// §3.3: "the sequence can always be divided very efficiently (only the
	// minimum number of sends in each case)". For block→block with c
	// clients and s servers the minimum number of contiguous transfers is
	// c+s-1 when boundaries interleave, and the plan must reach it.
	for _, cfg := range []struct{ c, s int }{{1, 1}, {2, 1}, {1, 2}, {2, 4}, {4, 8}, {8, 4}, {3, 5}} {
		src := mustLayout(t, Block{}, 1<<19, cfg.c)
		dst := mustLayout(t, Block{}, 1<<19, cfg.s)
		moves, err := Plan(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		maxMoves := cfg.c + cfg.s - 1
		if len(moves) > maxMoves {
			t.Errorf("c=%d s=%d: %d moves, minimum is ≤ %d", cfg.c, cfg.s, len(moves), maxMoves)
		}
	}
}

// applyPlan simulates a redistribution: data starts distributed per src, the
// plan's moves copy it into buffers distributed per dst.
func applyPlan(t *testing.T, src, dst Layout, moves []Move) bool {
	t.Helper()
	// Build source buffers holding the global index of each element.
	srcBufs := make([][]int, src.Ranks)
	for r := range srcBufs {
		srcBufs[r] = make([]int, src.Count(r))
	}
	for i := 0; i < src.Length; i++ {
		r, local, err := src.Owner(i)
		if err != nil {
			t.Fatal(err)
		}
		srcBufs[r][local] = i
	}
	dstBufs := make([][]int, dst.Ranks)
	for r := range dstBufs {
		dstBufs[r] = make([]int, dst.Count(r))
		for i := range dstBufs[r] {
			dstBufs[r][i] = -1
		}
	}
	for _, m := range moves {
		copy(dstBufs[m.DstRank][m.DstOff:m.DstOff+m.Len], srcBufs[m.SrcRank][m.SrcOff:m.SrcOff+m.Len])
	}
	// Every destination element must hold its own global index.
	for i := 0; i < dst.Length; i++ {
		r, local, err := dst.Owner(i)
		if err != nil {
			t.Fatal(err)
		}
		if dstBufs[r][local] != i {
			return false
		}
	}
	return true
}

func TestPlanMovesDataCorrectly(t *testing.T) {
	layouts := func(length int) []Layout {
		return []Layout{
			mustLayout(t, Block{}, length, 1),
			mustLayout(t, Block{}, length, 3),
			mustLayout(t, Block{}, length, 8),
			mustLayout(t, Proportions{P: []int{2, 4, 2, 4}}, length, 4),
			mustLayout(t, Proportions{P: []int{0, 1, 5}}, length, 3),
			mustLayout(t, Cyclic{BlockSize: 1}, length, 4),
			mustLayout(t, Cyclic{BlockSize: 7}, length, 3),
		}
	}
	for _, length := range []int{0, 1, 17, 256} {
		for _, src := range layouts(length) {
			for _, dst := range layouts(length) {
				moves, err := Plan(src, dst)
				if err != nil {
					t.Fatalf("Plan(%d): %v", length, err)
				}
				if !applyPlan(t, src, dst, moves) {
					t.Fatalf("length %d: plan src=%v dst=%v lost data", length, src.Intervals, dst.Intervals)
				}
			}
		}
	}
}

// randomLayout builds a random contiguous partition (like a Proportions
// layout with random weights).
func randomLayout(rng *rand.Rand, length, ranks int) Layout {
	cuts := make([]int, ranks-1)
	for i := range cuts {
		cuts[i] = rng.Intn(length + 1)
	}
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, length)
	// insertion sort (tiny n)
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	ivs := make([][]Interval, ranks)
	for r := 0; r < ranks; r++ {
		n := bounds[r+1] - bounds[r]
		if n > 0 {
			ivs[r] = []Interval{{Start: bounds[r], Len: n}}
		}
	}
	return Layout{Length: length, Ranks: ranks, Intervals: ivs}
}

func TestPlanRandomLayoutsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		length := rng.Intn(500)
		src := randomLayout(rng, length, 1+rng.Intn(8))
		dst := randomLayout(rng, length, 1+rng.Intn(8))
		moves, err := Plan(src, dst)
		if err != nil {
			return false
		}
		// Moves must be disjoint and cover the domain exactly once.
		total := 0
		covered := make([]bool, length)
		for _, m := range moves {
			if m.Len <= 0 {
				return false
			}
			total += m.Len
			for g := m.Global; g < m.Global+m.Len; g++ {
				if covered[g] {
					return false
				}
				covered[g] = true
			}
		}
		if total != length {
			return false
		}
		return applyPlan(t, src, dst, moves)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanErrors(t *testing.T) {
	good := mustLayout(t, Block{}, 10, 2)
	short := mustLayout(t, Block{}, 9, 2)
	if _, err := Plan(good, short); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := Layout{Length: 10, Ranks: 1, Intervals: [][]Interval{{{0, 5}}}}
	if _, err := Plan(bad, good); err == nil {
		t.Fatal("invalid src accepted")
	}
	if _, err := Plan(good, bad); err == nil {
		t.Fatal("invalid dst accepted")
	}
}
