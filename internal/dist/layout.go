package dist

import (
	"fmt"
	"sort"

	"repro/internal/cdr"
)

// Layout is a Spec instantiated for a concrete sequence: an exact partition
// of [0, Length) into per-rank lists of intervals, each list sorted by
// start. Rank r's local buffer stores its intervals concatenated in order,
// so local offset of the j-th element of interval k is the sum of earlier
// interval lengths plus j.
type Layout struct {
	Length    int
	Ranks     int
	Intervals [][]Interval
}

// Validate checks that the layout is an exact partition of [0, Length):
// intervals are positive, per-rank lists are sorted, and together they cover
// every index exactly once.
func (l Layout) Validate() error {
	if l.Length < 0 || l.Ranks < 1 || len(l.Intervals) != l.Ranks {
		return fmt.Errorf("%w: length %d, ranks %d, %d interval lists", ErrBadLayout, l.Length, l.Ranks, len(l.Intervals))
	}
	n := 0
	for _, ivs := range l.Intervals {
		n += len(ivs)
	}
	all := make([]Interval, 0, n)
	for r, ivs := range l.Intervals {
		prev := -1
		for _, iv := range ivs {
			if iv.Len <= 0 || iv.Start < 0 || iv.End() > l.Length {
				return fmt.Errorf("%w: rank %d interval [%d,%d)", ErrBadLayout, r, iv.Start, iv.End())
			}
			if iv.Start <= prev {
				return fmt.Errorf("%w: rank %d intervals not sorted/disjoint", ErrBadLayout, r)
			}
			prev = iv.End() - 1
			all = append(all, iv)
		}
	}
	// Blockwise layouts arrive already ordered by start; sorting lazily
	// keeps validation allocation-light on the data-plane hot path, where
	// Plan validates both layouts of every transfer.
	for i := 1; i < len(all); i++ {
		if all[i].Start < all[i-1].Start {
			sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
			break
		}
	}
	off := 0
	for _, iv := range all {
		if iv.Start != off {
			return fmt.Errorf("%w: gap or overlap at index %d", ErrBadLayout, off)
		}
		off = iv.End()
	}
	if off != l.Length {
		return fmt.Errorf("%w: covers %d of %d elements", ErrBadLayout, off, l.Length)
	}
	return nil
}

// Count returns the number of elements rank r owns.
func (l Layout) Count(r int) int {
	n := 0
	for _, iv := range l.Intervals[r] {
		n += iv.Len
	}
	return n
}

// Counts returns every rank's element count.
func (l Layout) Counts() []int {
	out := make([]int, l.Ranks)
	for r := range out {
		out[r] = l.Count(r)
	}
	return out
}

// Owner returns the rank owning global index i and the index's offset in
// that rank's local buffer.
func (l Layout) Owner(i int) (rank, local int, err error) {
	if i < 0 || i >= l.Length {
		return 0, 0, fmt.Errorf("dist: index %d out of range [0,%d)", i, l.Length)
	}
	for r, ivs := range l.Intervals {
		off := 0
		for _, iv := range ivs {
			if i >= iv.Start && i < iv.End() {
				return r, off + (i - iv.Start), nil
			}
			off += iv.Len
		}
	}
	return 0, 0, fmt.Errorf("%w: index %d unowned", ErrBadLayout, i)
}

// Global returns the global index of rank r's local element li.
func (l Layout) Global(r, li int) (int, error) {
	if r < 0 || r >= l.Ranks {
		return 0, fmt.Errorf("dist: rank %d out of range", r)
	}
	off := 0
	for _, iv := range l.Intervals[r] {
		if li < off+iv.Len {
			return iv.Start + (li - off), nil
		}
		off += iv.Len
	}
	return 0, fmt.Errorf("dist: local index %d out of range for rank %d (%d elements)", li, r, off)
}

// Equal reports whether two layouts assign exactly the same intervals.
func (l Layout) Equal(o Layout) bool {
	if l.Length != o.Length || l.Ranks != o.Ranks {
		return false
	}
	for r := range l.Intervals {
		if len(l.Intervals[r]) != len(o.Intervals[r]) {
			return false
		}
		for k := range l.Intervals[r] {
			if l.Intervals[r][k] != o.Intervals[r][k] {
				return false
			}
		}
	}
	return true
}

// EncodeLayout writes a layout for wire transfer.
func EncodeLayout(e *cdr.Encoder, l Layout) {
	e.WriteULong(uint32(l.Length))
	e.WriteULong(uint32(l.Ranks))
	for _, ivs := range l.Intervals {
		e.WriteULong(uint32(len(ivs)))
		for _, iv := range ivs {
			e.WriteULong(uint32(iv.Start))
			e.WriteULong(uint32(iv.Len))
		}
	}
}

// DecodeLayout reads a layout written by EncodeLayout and validates it.
func DecodeLayout(d *cdr.Decoder) (Layout, error) {
	length, err := d.ReadULong()
	if err != nil {
		return Layout{}, err
	}
	ranks, err := d.ReadULong()
	if err != nil {
		return Layout{}, err
	}
	if ranks == 0 || ranks > 1<<20 {
		return Layout{}, fmt.Errorf("%w: %d ranks", ErrBadLayout, ranks)
	}
	l := Layout{Length: int(length), Ranks: int(ranks), Intervals: make([][]Interval, ranks)}
	// Per-rank lists are views into one flat backing array (blockwise
	// layouts have one interval per rank, so the whole decode costs two
	// allocations instead of one per rank). Full-capacity slicing keeps
	// the views from appending into each other.
	flat := make([]Interval, 0, ranks)
	for r := range l.Intervals {
		n, err := d.ReadULong()
		if err != nil {
			return Layout{}, err
		}
		if n > 1<<24 {
			return Layout{}, fmt.Errorf("%w: rank %d has %d intervals", ErrBadLayout, r, n)
		}
		start := len(flat)
		for k := 0; k < int(n); k++ {
			s, err := d.ReadULong()
			if err != nil {
				return Layout{}, err
			}
			ln, err := d.ReadULong()
			if err != nil {
				return Layout{}, err
			}
			flat = append(flat, Interval{Start: int(s), Len: int(ln)})
		}
		l.Intervals[r] = flat[start:len(flat):len(flat)]
	}
	if err := l.Validate(); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// Move is one contiguous copy in a redistribution plan: Len elements flow
// from SrcRank's local buffer at SrcOff to DstRank's local buffer at DstOff.
// Global identifies the first element's global index (useful for tracing).
type Move struct {
	SrcRank, DstRank int
	SrcOff, DstOff   int
	Global           int
	Len              int
}

// segment is an interval annotated with its owner and local offset.
type segment struct {
	start, length int
	rank, local   int
}

func segments(l Layout) []segment {
	n := 0
	for _, ivs := range l.Intervals {
		n += len(ivs)
	}
	segs := make([]segment, 0, n)
	for r, ivs := range l.Intervals {
		off := 0
		for _, iv := range ivs {
			segs = append(segs, segment{start: iv.Start, length: iv.Len, rank: r, local: off})
			off += iv.Len
		}
	}
	// Blockwise layouts emit segments already ordered by global start;
	// skipping the sort keeps the common Plan call allocation-free apart
	// from the results themselves.
	for i := 1; i < len(segs); i++ {
		if segs[i].start < segs[i-1].start {
			sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
			break
		}
	}
	return segs
}

// Plan computes the minimal contiguous moves that transform data laid out as
// src into layout dst. Both layouts must partition the same length. The
// result is ordered by global index; each element appears in exactly one
// move. Moves with SrcRank == DstRank still appear (they are local copies);
// callers that transfer over a network filter or specialize them.
func Plan(src, dst Layout) ([]Move, error) {
	if err := src.Validate(); err != nil {
		return nil, fmt.Errorf("src: %w", err)
	}
	if err := dst.Validate(); err != nil {
		return nil, fmt.Errorf("dst: %w", err)
	}
	if src.Length != dst.Length {
		return nil, fmt.Errorf("%w: %d vs %d", ErrMismatched, src.Length, dst.Length)
	}
	ss := segments(src)
	ds := segments(dst)
	// Each merge step emits at most one move and retires at least one
	// segment, so len(ss)+len(ds) bounds the plan size.
	moves := make([]Move, 0, len(ss)+len(ds))
	i, j := 0, 0
	for i < len(ss) && j < len(ds) {
		s, d := ss[i], ds[j]
		lo := max(s.start, d.start)
		hi := min(s.start+s.length, d.start+d.length)
		if hi > lo {
			moves = append(moves, Move{
				SrcRank: s.rank, DstRank: d.rank,
				SrcOff: s.local + (lo - s.start),
				DstOff: d.local + (lo - d.start),
				Global: lo,
				Len:    hi - lo,
			})
		}
		// Advance whichever segment ends first.
		if s.start+s.length <= d.start+d.length {
			i++
		}
		if d.start+d.length <= s.start+s.length {
			j++
		}
	}
	return moves, nil
}

// PlanBySource groups a plan's moves by source rank, the shape the
// multi-port sender needs (each computing thread executes its own moves).
func PlanBySource(moves []Move, srcRanks int) [][]Move {
	return groupMoves(moves, srcRanks, func(m Move) int { return m.SrcRank })
}

// PlanByDest groups a plan's moves by destination rank, the shape the
// multi-port receiver needs (each thread knows how many transfers to await).
func PlanByDest(moves []Move, dstRanks int) [][]Move {
	return groupMoves(moves, dstRanks, func(m Move) int { return m.DstRank })
}

// groupMoves buckets moves by rank into views of one shared backing array:
// a count pass sizes each bucket exactly, so grouping costs three
// allocations regardless of rank count. Full-capacity slicing keeps the
// per-rank views from appending into each other.
func groupMoves(moves []Move, ranks int, key func(Move) int) [][]Move {
	counts := make([]int, ranks)
	for _, m := range moves {
		counts[key(m)]++
	}
	flat := make([]Move, len(moves))
	out := make([][]Move, ranks)
	off := 0
	for r, n := range counts {
		out[r] = flat[off:off : off+n]
		off += n
	}
	for _, m := range moves {
		r := key(m)
		out[r] = append(out[r], m)
	}
	return out
}
