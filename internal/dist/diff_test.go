package dist

import (
	"math/rand"
	"testing"
)

// randomSpec draws one of the three distribution laws with random parameters.
func randomSpec(rng *rand.Rand, ranks int) Spec {
	switch rng.Intn(3) {
	case 0:
		return Block{}
	case 1:
		p := make([]int, ranks)
		for i := range p {
			p[i] = rng.Intn(5)
		}
		// Proportions must not sum to zero.
		p[rng.Intn(ranks)] += 1
		return Proportions{P: p}
	default:
		return Cyclic{BlockSize: 1 + rng.Intn(7)}
	}
}

func diffLayout(t *testing.T, rng *rand.Rand, length, ranks int) Layout {
	t.Helper()
	l, err := randomSpec(rng, ranks).Layout(length, ranks)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return l
}

// TestDiffProperties is the plan-diffing property test: for random old/new
// templates (random law, length, and rank counts on both sides), the diff's
// moves are minimal — no element crosses ranks when its owner index is
// unchanged — and the cross list covers exactly the ownership symmetric
// difference, with every global index covered exactly once across both lists
// and all offsets consistent with the layouts' own Owner maps.
func TestDiffProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		length := rng.Intn(200)
		srcRanks := 1 + rng.Intn(6)
		dstRanks := 1 + rng.Intn(6)
		src := diffLayout(t, rng, length, srcRanks)
		dst := diffLayout(t, rng, length, dstRanks)

		local, cross, err := Diff(src, dst)
		if err != nil {
			t.Fatalf("iter %d: Diff: %v", iter, err)
		}

		covered := make([]int, length) // times each global index is moved
		checkMoves := func(moves []Move, wantCross bool) {
			for _, m := range moves {
				if m.Len <= 0 {
					t.Fatalf("iter %d: empty move %+v", iter, m)
				}
				crosses := m.SrcRank != m.DstRank
				if crosses != wantCross {
					t.Fatalf("iter %d: move %+v in wrong list (cross=%v)", iter, m, wantCross)
				}
				for k := 0; k < m.Len; k++ {
					g := m.Global + k
					if g < 0 || g >= length {
						t.Fatalf("iter %d: move %+v leaves [0,%d)", iter, m, length)
					}
					covered[g]++
					sr, so, err := src.Owner(g)
					if err != nil {
						t.Fatalf("iter %d: src owner of %d: %v", iter, g, err)
					}
					dr, do, err := dst.Owner(g)
					if err != nil {
						t.Fatalf("iter %d: dst owner of %d: %v", iter, g, err)
					}
					if sr != m.SrcRank || so != m.SrcOff+k {
						t.Fatalf("iter %d: move %+v element %d: src owner (%d,%d), move says (%d,%d)",
							iter, m, g, sr, so, m.SrcRank, m.SrcOff+k)
					}
					if dr != m.DstRank || do != m.DstOff+k {
						t.Fatalf("iter %d: move %+v element %d: dst owner (%d,%d), move says (%d,%d)",
							iter, m, g, dr, do, m.DstRank, m.DstOff+k)
					}
				}
			}
		}
		checkMoves(local, false)
		checkMoves(cross, true)

		// Exactly-once coverage of the whole index space.
		for g, n := range covered {
			if n != 1 {
				t.Fatalf("iter %d: global index %d covered %d times", iter, g, n)
			}
		}

		// Minimality / symmetric difference: an element is in cross iff its
		// owner index changed. Owner-index agreement was already verified per
		// move above; what remains is that the split matches ownership.
		wantCross := 0
		for g := 0; g < length; g++ {
			sr, _, _ := src.Owner(g)
			dr, _, _ := dst.Owner(g)
			if sr != dr {
				wantCross++
			}
		}
		if got := MovedElems(cross); got != wantCross {
			t.Fatalf("iter %d: cross moves %d elements, ownership symmetric difference is %d",
				iter, got, wantCross)
		}
		if got := MovedElems(local) + MovedElems(cross); got != length {
			t.Fatalf("iter %d: moves cover %d of %d elements", iter, got, length)
		}
	}
}

// TestDiffIdentity: diffing a layout against itself moves nothing across
// ranks — the entire plan is local.
func TestDiffIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		ranks := 1 + rng.Intn(6)
		l := diffLayout(t, rng, rng.Intn(100), ranks)
		local, cross, err := Diff(l, l)
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		if len(cross) != 0 {
			t.Fatalf("identity diff produced cross moves: %+v", cross)
		}
		if MovedElems(local) != l.Length {
			t.Fatalf("identity diff covers %d of %d", MovedElems(local), l.Length)
		}
	}
}

// TestDiffLengthMismatch: diffing layouts of different lengths fails.
func TestDiffLengthMismatch(t *testing.T) {
	a, _ := Block{}.Layout(10, 2)
	b, _ := Block{}.Layout(11, 2)
	if _, _, err := Diff(a, b); err == nil {
		t.Fatal("Diff accepted mismatched lengths")
	}
}
