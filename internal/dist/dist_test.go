package dist

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

func mustLayout(t *testing.T, s Spec, length, ranks int) Layout {
	t.Helper()
	l, err := s.Layout(length, ranks)
	if err != nil {
		t.Fatalf("%v.Layout(%d,%d): %v", s, length, ranks, err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("%v.Layout(%d,%d) invalid: %v", s, length, ranks, err)
	}
	return l
}

func TestBlockLayout(t *testing.T) {
	cases := []struct {
		length, ranks int
		want          []int // counts
	}{
		{10, 1, []int{10}},
		{10, 2, []int{5, 5}},
		{10, 3, []int{4, 3, 3}},
		{10, 4, []int{3, 3, 2, 2}},
		{3, 5, []int{1, 1, 1, 0, 0}},
		{0, 3, []int{0, 0, 0}},
		{1 << 19, 8, []int{65536, 65536, 65536, 65536, 65536, 65536, 65536, 65536}},
	}
	for _, c := range cases {
		l := mustLayout(t, Block{}, c.length, c.ranks)
		got := l.Counts()
		for r := range c.want {
			if got[r] != c.want[r] {
				t.Errorf("Block(%d,%d) counts %v, want %v", c.length, c.ranks, got, c.want)
				break
			}
		}
		// Blockwise means each rank owns a single contiguous run in rank order.
		off := 0
		for r, ivs := range l.Intervals {
			if len(ivs) > 1 {
				t.Errorf("Block(%d,%d) rank %d has %d intervals", c.length, c.ranks, r, len(ivs))
			}
			for _, iv := range ivs {
				if iv.Start != off {
					t.Errorf("Block(%d,%d) rank %d starts at %d, want %d", c.length, c.ranks, r, iv.Start, off)
				}
				off = iv.End()
			}
		}
	}
}

func TestBlockSizesDifferByAtMostOne(t *testing.T) {
	prop := func(length uint16, ranks uint8) bool {
		r := int(ranks%16) + 1
		l, err := Block{}.Layout(int(length), r)
		if err != nil {
			return false
		}
		counts := l.Counts()
		mn, mx := counts[0], counts[0]
		for _, c := range counts {
			mn = min(mn, c)
			mx = max(mx, c)
		}
		return mx-mn <= 1 && l.Validate() == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProportionsPaperExample(t *testing.T) {
	// Paper §2.2: Proportions(2,4,2,4) over threads 0..3 in ratio 2:4:2:4.
	l := mustLayout(t, Proportions{P: []int{2, 4, 2, 4}}, 1200, 4)
	want := []int{200, 400, 200, 400}
	got := l.Counts()
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("Proportions(2,4,2,4) over 1200: %v, want %v", got, want)
		}
	}
}

func TestProportionsRounding(t *testing.T) {
	l := mustLayout(t, Proportions{P: []int{1, 1, 1}}, 10, 3)
	got := l.Counts()
	sum := 0
	for _, c := range got {
		sum += c
	}
	if sum != 10 {
		t.Fatalf("counts %v do not sum to 10", got)
	}
	for _, c := range got {
		if c < 3 || c > 4 {
			t.Fatalf("counts %v deviate from ratio by more than one", got)
		}
	}
}

func TestProportionsZeroEntry(t *testing.T) {
	l := mustLayout(t, Proportions{P: []int{0, 1, 0, 1}}, 8, 4)
	got := l.Counts()
	if got[0] != 0 || got[2] != 0 || got[1] != 4 || got[3] != 4 {
		t.Fatalf("counts %v", got)
	}
}

func TestProportionsErrors(t *testing.T) {
	if _, err := (Proportions{P: []int{1, 2}}).Layout(10, 3); !errors.Is(err, ErrBadSpec) {
		t.Errorf("rank mismatch: %v", err)
	}
	if _, err := (Proportions{P: []int{1, -1}}).Layout(10, 2); !errors.Is(err, ErrBadSpec) {
		t.Errorf("negative proportion: %v", err)
	}
	if _, err := (Proportions{P: []int{0, 0}}).Layout(10, 2); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero sum: %v", err)
	}
	if _, err := (Proportions{P: []int{1}}).Layout(-1, 1); !errors.Is(err, ErrNegative) {
		t.Errorf("negative length: %v", err)
	}
}

func TestProportionsIsPartitionProperty(t *testing.T) {
	prop := func(length uint16, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		p := Proportions{P: make([]int, len(raw))}
		sum := 0
		for i, v := range raw {
			p.P[i] = int(v)
			sum += int(v)
		}
		if sum == 0 {
			p.P[0] = 1
		}
		l, err := p.Layout(int(length), len(p.P))
		return err == nil && l.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicLayout(t *testing.T) {
	l := mustLayout(t, Cyclic{BlockSize: 2}, 10, 2)
	// blocks: [0,2)->r0 [2,4)->r1 [4,6)->r0 [6,8)->r1 [8,10)->r0
	if got := l.Counts(); got[0] != 6 || got[1] != 4 {
		t.Fatalf("cyclic counts %v", got)
	}
	r, local, err := l.Owner(5)
	if err != nil || r != 0 || local != 3 {
		t.Fatalf("Owner(5) = %d,%d,%v", r, local, err)
	}
	r, local, err = l.Owner(7)
	if err != nil || r != 1 || local != 3 {
		t.Fatalf("Owner(7) = %d,%d,%v", r, local, err)
	}
}

func TestCyclicIsPartitionProperty(t *testing.T) {
	prop := func(length uint16, ranks, bs uint8) bool {
		r := int(ranks%8) + 1
		b := int(bs%16) + 1
		l, err := Cyclic{BlockSize: b}.Layout(int(length)%5000, r)
		return err == nil && l.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicBadBlockSize(t *testing.T) {
	if _, err := (Cyclic{BlockSize: 0}).Layout(10, 2); !errors.Is(err, ErrBadSpec) {
		t.Fatal(err)
	}
}

func TestOwnerGlobalInverse(t *testing.T) {
	specs := []Spec{Block{}, Proportions{P: []int{3, 1, 2}}, Cyclic{BlockSize: 4}}
	for _, s := range specs {
		var l Layout
		if p, ok := s.(Proportions); ok {
			l = mustLayout(t, p, 100, len(p.P))
		} else {
			l = mustLayout(t, s, 100, 3)
		}
		for i := 0; i < 100; i++ {
			r, local, err := l.Owner(i)
			if err != nil {
				t.Fatalf("%v Owner(%d): %v", s, i, err)
			}
			g, err := l.Global(r, local)
			if err != nil || g != i {
				t.Fatalf("%v Global(%d,%d) = %d,%v; want %d", s, r, local, g, err, i)
			}
		}
	}
	if _, _, err := mustLayout(t, Block{}, 5, 2).Owner(5); err == nil {
		t.Fatal("Owner(out of range) accepted")
	}
	if _, err := mustLayout(t, Block{}, 5, 2).Global(0, 99); err == nil {
		t.Fatal("Global(out of range) accepted")
	}
	if _, err := mustLayout(t, Block{}, 5, 2).Global(9, 0); err == nil {
		t.Fatal("Global(bad rank) accepted")
	}
}

func TestLayoutValidateRejectsBroken(t *testing.T) {
	bad := []Layout{
		{Length: 4, Ranks: 1, Intervals: [][]Interval{{{0, 3}}}},              // gap at end
		{Length: 4, Ranks: 2, Intervals: [][]Interval{{{0, 3}}, {{2, 2}}}},    // overlap
		{Length: 4, Ranks: 2, Intervals: [][]Interval{{{0, 4}}, {{4, 1}}}},    // out of range
		{Length: 4, Ranks: 2, Intervals: [][]Interval{{{2, 2}, {0, 2}}, nil}}, // unsorted
		{Length: 4, Ranks: 2, Intervals: [][]Interval{{{0, 0}}, {{0, 4}}}},    // empty interval
		{Length: 4, Ranks: 2, Intervals: [][]Interval{{{0, 4}}}},              // missing list
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid layout accepted", i)
		}
	}
}

func TestLayoutEqual(t *testing.T) {
	a := mustLayout(t, Block{}, 10, 2)
	b := mustLayout(t, Block{}, 10, 2)
	c := mustLayout(t, Block{}, 10, 3)
	d := mustLayout(t, Cyclic{BlockSize: 1}, 10, 2)
	if !a.Equal(b) {
		t.Fatal("identical layouts unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Fatal("different layouts equal")
	}
}

func TestSpecWireRoundTrip(t *testing.T) {
	specs := []Spec{Block{}, Proportions{P: []int{2, 4, 2, 4}}, Cyclic{BlockSize: 7}}
	for _, s := range specs {
		e := cdr.NewEncoder(cdr.NativeOrder)
		EncodeSpec(e, s)
		got, err := DecodeSpec(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got.String() != s.String() {
			t.Fatalf("round trip %v → %v", s, got)
		}
	}
	// Unknown discriminant.
	e := cdr.NewEncoder(cdr.NativeOrder)
	e.WriteEnum(99)
	if _, err := DecodeSpec(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown kind: %v", err)
	}
}

func TestLayoutWireRoundTrip(t *testing.T) {
	for _, s := range []Spec{Block{}, Cyclic{BlockSize: 3}} {
		l := mustLayout(t, s, 29, 4)
		e := cdr.NewEncoder(cdr.NativeOrder)
		EncodeLayout(e, l)
		got, err := DecodeLayout(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !got.Equal(l) {
			t.Fatalf("%v: layouts differ after round trip", s)
		}
	}
	// Corrupt layout must be rejected by the embedded validation.
	bad := Layout{Length: 4, Ranks: 1, Intervals: [][]Interval{{{0, 3}}}}
	e := cdr.NewEncoder(cdr.NativeOrder)
	EncodeLayout(e, bad)
	if _, err := DecodeLayout(cdr.NewDecoder(e.Bytes(), cdr.NativeOrder)); err == nil {
		t.Fatal("corrupt layout accepted")
	}
}
