// Package dist implements PARDIS distribution templates: descriptions of how
// the elements of a distributed sequence are partitioned over the address
// spaces of an SPMD object's computing threads.
//
// The paper's §2.2 defines the default "uniform blockwise" distribution and
// the PARDIS::Proportions object ("Proportions(2,4,2,4)" distributes in the
// ratio 2:4:2:4 over threads 0..3). This package provides both, plus a
// block-cyclic template as the kind of "other distributed argument
// structure" the paper's future-work section anticipates.
//
// A Spec is a distribution law independent of any particular sequence; a
// Layout is the law applied to a concrete (length, ranks) pair: an exact
// partition of [0, length) into per-rank interval lists. Plan computes the
// minimal set of contiguous copies that re-shapes data from one layout to
// another; it is the heart of both the multi-port transfer method (client
// layout → server layout) and of Seq.Redistribute.
package dist

import (
	"errors"
	"fmt"

	"repro/internal/cdr"
)

// Errors reported by this package.
var (
	ErrBadSpec    = errors.New("dist: invalid distribution spec")
	ErrBadLayout  = errors.New("dist: layout is not a partition")
	ErrNegative   = errors.New("dist: negative length or ranks")
	ErrMismatched = errors.New("dist: layouts have different lengths")
)

// Interval is a contiguous range of global element indices.
type Interval struct {
	Start int // first global index
	Len   int // number of elements
}

// End returns the first index past the interval.
func (iv Interval) End() int { return iv.Start + iv.Len }

// Spec is a distribution law that can be instantiated for any sequence
// length and rank count, and can travel inside request headers.
type Spec interface {
	// Layout applies the law, partitioning [0, length) over ranks.
	Layout(length, ranks int) (Layout, error)
	// String renders the law in the IDL syntax used by dsequence.
	String() string
	// kind returns the wire discriminant.
	kind() specKind
	// encodeBody writes the law's parameters (not the discriminant).
	encodeBody(e *cdr.Encoder)
}

type specKind uint32

const (
	kindBlock specKind = iota + 1
	kindProportions
	kindCyclic
)

// Block is the uniform blockwise distribution: rank r owns the r-th of
// ranks nearly equal contiguous blocks. The first length%ranks ranks own
// one extra element, so sizes differ by at most one.
type Block struct{}

// Layout implements Spec.
func (Block) Layout(length, ranks int) (Layout, error) {
	if length < 0 || ranks < 1 {
		return Layout{}, fmt.Errorf("%w: length %d ranks %d", ErrNegative, length, ranks)
	}
	// All per-rank lists are single intervals, so they can share one flat
	// backing array instead of allocating ranks separate one-element slices.
	// Full-capacity slicing keeps the views from spilling into each other.
	ivs := make([][]Interval, ranks)
	flat := make([]Interval, ranks)
	base := length / ranks
	extra := length % ranks
	off := 0
	for r := 0; r < ranks; r++ {
		n := base
		if r < extra {
			n++
		}
		if n > 0 {
			flat[r] = Interval{Start: off, Len: n}
			ivs[r] = flat[r : r+1 : r+1]
		}
		off += n
	}
	return Layout{Length: length, Ranks: ranks, Intervals: ivs}, nil
}

func (Block) String() string            { return "block" }
func (Block) kind() specKind            { return kindBlock }
func (Block) encodeBody(e *cdr.Encoder) {}

// Proportions distributes blockwise in the given per-rank ratio, the
// PARDIS::Proportions object of the paper. Proportions{2,4,2,4} gives rank 1
// twice the elements of rank 0. Rounding remainders are assigned greedily to
// the ranks with the largest fractional parts, so the result is an exact
// partition whose sizes deviate from the exact ratio by at most one.
type Proportions struct {
	P []int
}

// Layout implements Spec. The number of proportions must equal ranks.
func (p Proportions) Layout(length, ranks int) (Layout, error) {
	if length < 0 || ranks < 1 {
		return Layout{}, fmt.Errorf("%w: length %d ranks %d", ErrNegative, length, ranks)
	}
	if len(p.P) != ranks {
		return Layout{}, fmt.Errorf("%w: %d proportions for %d ranks", ErrBadSpec, len(p.P), ranks)
	}
	total := 0
	for i, v := range p.P {
		if v < 0 {
			return Layout{}, fmt.Errorf("%w: proportion %d is negative (%d)", ErrBadSpec, i, v)
		}
		total += v
	}
	if total == 0 {
		return Layout{}, fmt.Errorf("%w: proportions sum to zero", ErrBadSpec)
	}
	// Largest-remainder apportionment.
	counts := make([]int, ranks)
	type frac struct{ rank, rem int }
	fracs := make([]frac, ranks)
	assigned := 0
	for r, v := range p.P {
		counts[r] = length * v / total
		fracs[r] = frac{rank: r, rem: length*v - counts[r]*total}
		assigned += counts[r]
	}
	// Stable greedy: hand leftovers to largest remainders, ties to lower rank.
	for assigned < length {
		best := -1
		for i := range fracs {
			if fracs[i].rem == 0 && p.P[fracs[i].rank] == 0 {
				continue
			}
			if best == -1 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		counts[fracs[best].rank]++
		fracs[best].rem = -1 // consumed
		assigned++
	}
	ivs := make([][]Interval, ranks)
	off := 0
	for r, n := range counts {
		if n > 0 {
			ivs[r] = []Interval{{Start: off, Len: n}}
		}
		off += n
	}
	return Layout{Length: length, Ranks: ranks, Intervals: ivs}, nil
}

func (p Proportions) String() string {
	s := "proportions("
	for i, v := range p.P {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s + ")"
}

func (p Proportions) kind() specKind { return kindProportions }

func (p Proportions) encodeBody(e *cdr.Encoder) {
	vals := make([]int32, len(p.P))
	for i, v := range p.P {
		vals[i] = int32(v)
	}
	e.WriteLongs(vals)
}

// Cyclic is a block-cyclic distribution: blocks of BlockSize elements are
// dealt to ranks round-robin. BlockSize 1 is the classic cyclic layout.
type Cyclic struct {
	BlockSize int
}

// Layout implements Spec.
func (c Cyclic) Layout(length, ranks int) (Layout, error) {
	if length < 0 || ranks < 1 {
		return Layout{}, fmt.Errorf("%w: length %d ranks %d", ErrNegative, length, ranks)
	}
	if c.BlockSize < 1 {
		return Layout{}, fmt.Errorf("%w: cyclic block size %d", ErrBadSpec, c.BlockSize)
	}
	ivs := make([][]Interval, ranks)
	for off, b := 0, 0; off < length; off, b = off+c.BlockSize, b+1 {
		r := b % ranks
		n := c.BlockSize
		if off+n > length {
			n = length - off
		}
		// Merge with the previous interval when contiguous (ranks == 1).
		if k := len(ivs[r]); k > 0 && ivs[r][k-1].End() == off {
			ivs[r][k-1].Len += n
		} else {
			ivs[r] = append(ivs[r], Interval{Start: off, Len: n})
		}
	}
	return Layout{Length: length, Ranks: ranks, Intervals: ivs}, nil
}

func (c Cyclic) String() string            { return fmt.Sprintf("cyclic(%d)", c.BlockSize) }
func (c Cyclic) kind() specKind            { return kindCyclic }
func (c Cyclic) encodeBody(e *cdr.Encoder) { e.WriteLong(int32(c.BlockSize)) }

// EncodeSpec writes a spec with its discriminant so it can travel inside a
// PARDIS request header.
func EncodeSpec(e *cdr.Encoder, s Spec) {
	e.WriteEnum(uint32(s.kind()))
	s.encodeBody(e)
}

// DecodeSpec reads a spec written by EncodeSpec.
func DecodeSpec(d *cdr.Decoder) (Spec, error) {
	k, err := d.ReadEnum()
	if err != nil {
		return nil, err
	}
	switch specKind(k) {
	case kindBlock:
		return Block{}, nil
	case kindProportions:
		vals, err := d.ReadLongs()
		if err != nil {
			return nil, err
		}
		p := Proportions{P: make([]int, len(vals))}
		for i, v := range vals {
			p.P[i] = int(v)
		}
		return p, nil
	case kindCyclic:
		v, err := d.ReadLong()
		if err != nil {
			return nil, err
		}
		return Cyclic{BlockSize: int(v)}, nil
	default:
		return nil, fmt.Errorf("%w: unknown spec kind %d", ErrBadSpec, k)
	}
}
