package rts

import (
	"encoding/binary"
	"fmt"
)

// Collective opcodes, encoded into reserved (negative) tags.
const (
	opBarrier = iota
	opBcast
	opGather
	opScatter
	opReduce
	opAlltoall
	opScan
	opFence
	numOps
)

// collTag maps (opcode, per-communicator sequence number) to a reserved tag.
// Tags < 0 never collide with application tags, and the sequence number
// separates back-to-back collectives of the same kind.
func collTag(op, seq int) int {
	return -(seq*numOps + op + 2)
}

func (c *Comm) nextSeq() int {
	s := c.collSeq
	c.collSeq++
	return s
}

// Barrier blocks until all ranks of the communicator have entered it.
func (c *Comm) Barrier() error {
	h := barrierNS.Load()
	defer h.Done(h.Start())
	tag := collTag(opBarrier, c.nextSeq())
	if c.world.size == 1 {
		return nil
	}
	if c.rank == 0 {
		for i := 1; i < c.world.size; i++ {
			if _, _, err := c.recvColl(AnySource, tag); err != nil {
				return err
			}
		}
		for i := 1; i < c.world.size; i++ {
			if err := c.send(i, tag, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(0, tag, nil); err != nil {
		return err
	}
	_, _, err := c.recvColl(0, tag)
	return err
}

// recvColl is the collective-internal receive (reserved tags allowed).
func (c *Comm) recvColl(src, tag int) ([]byte, Status, error) {
	m, err := c.world.mailboxes[c.rank].takeTimeout(c.ctx, src, tag, c.world.opts.RecvTimeout)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.src, Tag: m.tag, Len: len(m.data)}, nil
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns it. Non-root ranks pass data=nil (any value they pass is ignored).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	h := bcastNS.Load()
	defer h.Done(h.Start())
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := collTag(opBcast, c.nextSeq())
	n := c.world.size
	if n == 1 {
		return data, nil
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + n) % n
	if vrank != 0 {
		// Receive from parent: clear the lowest set bit of vrank.
		parent := (vrank&(vrank-1) + root) % n
		var err error
		data, _, err = c.recvColl(parent, tag)
		if err != nil {
			return nil, err
		}
	}
	// Forward to children: set each zero bit below the lowest set bit.
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			break
		}
		child := vrank | mask
		if child < n {
			if err := c.send((child+root)%n, tag, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Gather collects each rank's data at root. At root the result has one entry
// per rank (result[r] is rank r's contribution, in particular root's own
// data appears at result[root]); at other ranks the result is nil. Variable
// per-rank sizes are allowed (this doubles as MPI's Gatherv).
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := collTag(opGather, c.nextSeq())
	switch c.world.opts.Gather {
	case GatherBinomial:
		return c.gatherBinomial(root, tag, data)
	default:
		return c.gatherFlat(root, tag, data)
	}
}

// gatherFlat is the paper's centralized gather: the root receives one
// message from every other rank.
func (c *Comm) gatherFlat(root, tag int, data []byte) ([][]byte, error) {
	if c.rank != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, c.world.size)
	out[root] = data
	for i := 0; i < c.world.size-1; i++ {
		d, st, err := c.recvColl(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[st.Source] = d
	}
	return out, nil
}

// gatherBinomial aggregates along a binomial tree; each interior node
// bundles its subtree's contributions into one message.
func (c *Comm) gatherBinomial(root, tag int, data []byte) ([][]byte, error) {
	n := c.world.size
	vrank := (c.rank - root + n) % n
	acc := map[int][]byte{c.rank: data}
	// Receive from children first (mirror image of the bcast tree).
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			break
		}
		child := vrank | mask
		if child >= n {
			continue
		}
		d, _, err := c.recvColl((child+root)%n, tag)
		if err != nil {
			return nil, err
		}
		bundle, err := decodeBundle(d)
		if err != nil {
			return nil, err
		}
		for r, b := range bundle {
			acc[r] = b
		}
	}
	if vrank != 0 {
		parent := (vrank&(vrank-1) + root) % n
		return nil, c.send(parent, tag, encodeBundle(acc))
	}
	out := make([][]byte, n)
	for r, b := range acc {
		out[r] = b
	}
	return out, nil
}

// Scatter distributes parts from root: rank r receives parts[r]. Only the
// root's parts argument is consulted; it must have exactly Size entries.
// Variable sizes are allowed (doubles as Scatterv).
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := collTag(opScatter, c.nextSeq())
	if c.rank == root {
		if len(parts) != c.world.size {
			return nil, fmt.Errorf("%w: Scatter root has %d parts for %d ranks", ErrSizes, len(parts), c.world.size)
		}
		for r := 0; r < c.world.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, parts[r]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	d, _, err := c.recvColl(root, tag)
	return d, err
}

// Allgather collects every rank's data at every rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	all, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var bundle []byte
	if c.rank == 0 {
		m := make(map[int][]byte, len(all))
		for r, b := range all {
			m[r] = b
		}
		bundle = encodeBundle(m)
	}
	bundle, err = c.Bcast(0, bundle)
	if err != nil {
		return nil, err
	}
	m, err := decodeBundle(bundle)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.world.size)
	for r, b := range m {
		if r < 0 || r >= len(out) {
			return nil, fmt.Errorf("rts: corrupt allgather bundle rank %d", r)
		}
		out[r] = b
	}
	return out, nil
}

// ReduceFunc combines two buffers into one. Implementations must be
// associative; commutativity is not required (combination order follows rank
// order).
type ReduceFunc func(a, b []byte) ([]byte, error)

// Reduce combines every rank's data with op and delivers the result to root
// (other ranks receive nil). Combination is performed in rank order:
// op(...op(op(r0, r1), r2)..., rN-1).
func (c *Comm) Reduce(root int, data []byte, op ReduceFunc) ([]byte, error) {
	all, err := c.Gather(root, data)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	acc := all[0]
	for r := 1; r < len(all); r++ {
		acc, err = op(acc, all[r])
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Allreduce is Reduce delivered to every rank.
func (c *Comm) Allreduce(data []byte, op ReduceFunc) ([]byte, error) {
	res, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, res)
}

// Alltoall performs a personalized exchange: rank r's parts[d] is delivered
// as the d-th rank's result[r]. parts must have exactly Size entries; nil
// entries are allowed and arrive as empty slices. Variable sizes are allowed
// (doubles as Alltoallv).
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if len(parts) != c.world.size {
		return nil, fmt.Errorf("%w: Alltoall has %d parts for %d ranks", ErrSizes, len(parts), c.world.size)
	}
	tag := collTag(opAlltoall, c.nextSeq())
	out := make([][]byte, c.world.size)
	for d := 0; d < c.world.size; d++ {
		if d == c.rank {
			out[d] = parts[d]
			continue
		}
		if err := c.send(d, tag, parts[d]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.world.size-1; i++ {
		d, st, err := c.recvColl(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[st.Source] = d
	}
	return out, nil
}

// Scan computes an inclusive prefix reduction: rank r receives
// op(r0, r1, ..., rr), combined in rank order.
func (c *Comm) Scan(data []byte, op ReduceFunc) ([]byte, error) {
	tag := collTag(opScan, c.nextSeq())
	acc := data
	if c.rank > 0 {
		prev, _, err := c.recvColl(c.rank-1, tag)
		if err != nil {
			return nil, err
		}
		acc, err = op(prev, data)
		if err != nil {
			return nil, err
		}
	}
	if c.rank < c.world.size-1 {
		if err := c.send(c.rank+1, tag, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// encodeBundle flattens a rank→payload map as [count][rank,len,bytes]...
func encodeBundle(m map[int][]byte) []byte {
	size := 4
	for _, b := range m {
		size += 8 + len(b)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m)))
	for r, b := range m {
		out = binary.LittleEndian.AppendUint32(out, uint32(r))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

func decodeBundle(data []byte) (map[int][]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("rts: short bundle (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	m := make(map[int][]byte, n)
	for i := uint32(0); i < n; i++ {
		if len(data) < 8 {
			return nil, fmt.Errorf("rts: truncated bundle entry %d", i)
		}
		r := int(binary.LittleEndian.Uint32(data))
		l := int(binary.LittleEndian.Uint32(data[4:]))
		data = data[8:]
		if len(data) < l {
			return nil, fmt.Errorf("rts: truncated bundle payload (%d < %d)", len(data), l)
		}
		m[r] = data[:l:l]
		data = data[l:]
	}
	return m, nil
}

func encodeInt(v int) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decodeInt(b []byte) int {
	return int(binary.LittleEndian.Uint64(b))
}
