package rts

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Wildcards for Comm.Recv and Comm.Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// Errors returned by the run-time system.
var (
	ErrWorldClosed = errors.New("rts: world closed")
	ErrTimeout     = errors.New("rts: receive timed out")
	ErrRank        = errors.New("rts: rank out of range")
	ErrTag         = errors.New("rts: negative tags are reserved for collectives")
	ErrSizes       = errors.New("rts: buffer sizes inconsistent across ranks")
)

// GatherAlgorithm selects how rooted collectives move data; the flat
// algorithm is the paper's centralized gather (root receives one message per
// rank), the tree algorithm is a binomial reduction used by the ablation
// benchmarks.
type GatherAlgorithm int

const (
	GatherFlat GatherAlgorithm = iota
	GatherBinomial
)

// Options configure a World.
type Options struct {
	// RecvTimeout bounds every internal receive; zero means no bound.
	// Tests set this to surface deadlocks as errors instead of hangs.
	RecvTimeout time.Duration
	// Gather selects the rooted-collective algorithm.
	Gather GatherAlgorithm
	// Epoch is the membership epoch of this rank set. A world's size is
	// immutable, so elastic membership is modeled as a succession of worlds:
	// each Successor call produces a fresh world (fresh mailboxes, fresh
	// contexts — no message from an old epoch can be delivered into a new
	// one) tagged with the next epoch. Collectives are epoch-tagged by
	// construction: they ride the mailboxes of exactly one world.
	Epoch int
}

// World is a set of SPMD computing threads ("ranks") that can communicate.
// It corresponds to the set of computing threads PARDIS makes visible to the
// request broker for one parallel application.
type World struct {
	size      int
	opts      Options
	mailboxes []*mailbox

	mu      sync.Mutex
	nextCtx int
	closed  bool
}

// NewWorld creates a world of n computing threads. It panics if n < 1, as a
// world size is always a static property of the program.
func NewWorld(n int, opts ...Options) *World {
	if n < 1 {
		panic(fmt.Sprintf("rts.NewWorld: invalid size %d", n))
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	w := &World{size: n, opts: o, nextCtx: 1}
	w.mailboxes = make([]*mailbox, n)
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Epoch returns the membership epoch this world was created with.
func (w *World) Epoch() int { return w.opts.Epoch }

// Successor creates the next-epoch world with n ranks: same options, epoch
// incremented, entirely fresh communication state. It is the runtime system's
// communicator regeneration for a membership change — the old world stays
// usable (and must still be Closed) while the new rank set starts up, so a
// membership transition can overlap draining the old epoch with populating
// the new one.
func (w *World) Successor(n int) *World {
	opts := w.opts
	opts.Epoch++
	return NewWorld(n, opts)
}

// Comm returns the communicator handle for one rank in the default context.
// Callers that manage their own goroutines use this; most callers use Run.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("rts.World.Comm: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank, ctx: 0}
}

// Run executes fn on every rank concurrently, one goroutine per rank, and
// returns after all ranks complete. If any rank's fn panics, Run recovers
// the panic, closes the world (unblocking the other ranks), and returns the
// panic as an error. Run may be called multiple times; contexts allocated by
// Dup remain valid across calls.
func (w *World) Run(fn func(*Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rts: rank %d panicked: %v", rank, p)
					w.Close()
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close shuts down the world; blocked receives return ErrWorldClosed.
func (w *World) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	for _, mb := range w.mailboxes {
		mb.close()
	}
}

// allocCtx hands out a fresh communication context id. It is called from
// exactly one rank per Dup (rank 0) and broadcast to the others, so ids are
// agreed upon collectively.
func (w *World) allocCtx() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.nextCtx
	w.nextCtx++
	return id
}

// Pending returns the total number of undelivered messages across all
// mailboxes. A correct SPMD program leaves zero pending messages at the end
// of Run; tests assert this.
func (w *World) Pending() int {
	n := 0
	for _, mb := range w.mailboxes {
		n += mb.pending()
	}
	return n
}
