// Package rts implements the generic run-time system interface that PARDIS
// uses to interact with the computing threads of a parallel application.
//
// The paper (§2.3) specifies a run-time system interface "encompassing the
// functionality of message-passing libraries", tested against MPI and Tulip.
// This package provides that interface for Go: an SPMD World of ranks, each
// executing the same function on its own goroutine, exchanging tagged
// point-to-point messages and participating in collective operations
// (barrier, broadcast, gather, scatter, all-gather, reduce, all-reduce,
// all-to-all, scan).
//
// In addition to the message-passing interface, the package implements the
// paper's planned "alternative run-time system interface capturing the
// functionality of the more flexible one-sided run-time systems" as Window
// (Put/Get/Accumulate with fence synchronization).
//
// Semantics follow MPI where applicable:
//
//   - Point-to-point messages between a (sender, receiver, context) triple
//     are non-overtaking: two messages that match the same receive are
//     received in the order they were sent.
//   - Receives match on (source, tag) where either may be a wildcard
//     (AnySource, AnyTag).
//   - Collective operations must be called by all ranks of a communicator in
//     the same order.
//   - Comm.Dup creates a new communication context so that independent
//     layers (for example concurrently outstanding non-blocking PARDIS
//     invocations) cannot intercept each other's traffic.
package rts
