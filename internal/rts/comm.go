package rts

import (
	"fmt"
	"time"
)

// Status describes a matched message, as returned by Probe.
type Status struct {
	Source int
	Tag    int
	Len    int
}

// Comm is one rank's handle on a communication context within a World.
// All methods are safe for use only by the owning rank's goroutine, except
// where noted; distinct Comms (even of the same rank, from Dup) are
// independent.
type Comm struct {
	world *World
	rank  int
	ctx   int

	// collSeq numbers collective operations within this (rank, ctx) so that
	// back-to-back collectives cannot confuse each other's traffic. Every
	// rank calls collectives in the same order (SPMD requirement), so the
	// sequence numbers agree without communication.
	collSeq int
}

// Rank returns this communicator's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// World returns the underlying world.
func (c *Comm) World() *World { return c.world }

// Context returns the communication context id (0 for the default context).
func (c *Comm) Context() int { return c.ctx }

// Epoch returns the membership epoch of the communicator's world. All
// collectives on this communicator belong to that epoch: a Successor world's
// mailboxes are disjoint from its predecessor's, so traffic cannot cross an
// epoch boundary.
func (c *Comm) Epoch() int { return c.world.opts.Epoch }

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= c.world.size {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrRank, r, c.world.size)
	}
	return nil
}

// Send delivers data to rank dst with the given tag. The data slice is
// handed off to the receiver without copying; the sender must not modify it
// afterwards (use SendCopy when reusing buffers). Tags must be >= 0;
// negative tags are reserved for collective operations.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.checkRank(dst); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("%w: %d", ErrTag, tag)
	}
	return c.send(dst, tag, data)
}

// SendCopy is Send, but copies data first so the caller may reuse the
// buffer immediately.
func (c *Comm) SendCopy(dst, tag int, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	return c.Send(dst, tag, cp)
}

// send is the internal entry point, also used with reserved negative tags by
// the collectives.
func (c *Comm) send(dst, tag int, data []byte) error {
	return c.world.mailboxes[dst].put(message{ctx: c.ctx, src: c.rank, tag: tag, data: data})
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload and status. Use AnySource and/or AnyTag as wildcards. If the world
// was built with Options.RecvTimeout, Recv fails with ErrTimeout after that
// duration.
func (c *Comm) Recv(src, tag int) ([]byte, Status, error) {
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return nil, Status{}, err
		}
	}
	if tag < 0 && tag != AnyTag {
		return nil, Status{}, fmt.Errorf("%w: %d", ErrTag, tag)
	}
	return c.recv(src, tag)
}

// RecvTimeout is Recv with an explicit deadline overriding the world option.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) ([]byte, Status, error) {
	m, err := c.world.mailboxes[c.rank].takeTimeout(c.ctx, src, tag, d)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.src, Tag: m.tag, Len: len(m.data)}, nil
}

func (c *Comm) recv(src, tag int) ([]byte, Status, error) {
	m, err := c.world.mailboxes[c.rank].takeTimeout(c.ctx, src, tag, c.world.opts.RecvTimeout)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.src, Tag: m.tag, Len: len(m.data)}, nil
}

// Probe reports whether a message matching (src, tag) is available without
// receiving it. It never blocks.
func (c *Comm) Probe(src, tag int) (Status, bool) {
	return c.world.mailboxes[c.rank].probe(c.ctx, src, tag)
}

// SendRecv performs a combined send to dst and receive from src, as needed
// by pairwise exchange patterns. The send is buffered by the mailbox, so no
// deadlock can occur even when both peers SendRecv each other.
func (c *Comm) SendRecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status, error) {
	if err := c.Send(dst, sendTag, data); err != nil {
		return nil, Status{}, err
	}
	return c.Recv(src, recvTag)
}

// Dup collectively creates a new communicator over the same ranks with an
// isolated communication context. All ranks must call Dup together (it
// synchronizes like a barrier). The returned communicators deliver messages
// only among themselves, so independent protocol layers cannot intercept
// each other's traffic. This is what allows PARDIS futures: every
// non-blocking invocation stream runs on a duplicated context.
func (c *Comm) Dup() (*Comm, error) {
	var id int
	if c.rank == 0 {
		id = c.world.allocCtx()
	}
	idBuf, err := c.bcastRoot0(encodeInt(id))
	if err != nil {
		return nil, err
	}
	return &Comm{world: c.world, rank: c.rank, ctx: decodeInt(idBuf)}, nil
}

// Dups collectively creates n independent communicators at once: rank 0
// allocates all n context ids and a single broadcast agrees on them, so the
// round costs one collective instead of n back-to-back Dups. The pipelined
// invocation engine uses it to set up its lanes — one duplicated context per
// concurrently outstanding invocation.
func (c *Comm) Dups(n int) ([]*Comm, error) {
	if n < 0 {
		return nil, fmt.Errorf("rts: Dups(%d)", n)
	}
	ids := make([]int64, n)
	if c.rank == 0 {
		for i := range ids {
			ids[i] = int64(c.world.allocCtx())
		}
	}
	buf, err := c.bcastRoot0(Int64sToBytes(ids))
	if err != nil {
		return nil, err
	}
	got, err := BytesToInt64s(buf)
	if err != nil {
		return nil, err
	}
	if len(got) != n {
		return nil, fmt.Errorf("rts: Dups(%d) agreed on %d contexts", n, len(got))
	}
	out := make([]*Comm, n)
	for i := range out {
		out[i] = &Comm{world: c.world, rank: c.rank, ctx: int(got[i])}
	}
	return out, nil
}

// bcastRoot0 broadcasts data from rank 0 inside Dup, before the new context
// exists; it reuses the collective machinery of the current context.
func (c *Comm) bcastRoot0(data []byte) ([]byte, error) {
	return c.Bcast(0, data)
}
