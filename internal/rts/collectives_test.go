package rts

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var worldSizes = []int{1, 2, 3, 4, 5, 8, 13}

func forSizes(t *testing.T, fn func(t *testing.T, n int)) {
	t.Helper()
	for _, n := range worldSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			fn(t, n)
		})
	}
}

func TestBarrierOrdering(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		w := testWorld(t, n)
		// Every rank increments a counter before the barrier; after the
		// barrier each rank must observe the full count.
		counts := make(chan int, n)
		arrived := make(chan struct{}, n)
		err := w.Run(func(c *Comm) error {
			arrived <- struct{}{}
			if err := c.Barrier(); err != nil {
				return err
			}
			counts <- len(arrived)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got := <-counts; got != n {
				t.Fatalf("rank observed %d arrivals before barrier release, want %d", got, n)
			}
		}
	})
}

func TestBcastAllRoots(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		run(t, n, func(c *Comm) error {
			for root := 0; root < n; root++ {
				var in []byte
				if c.Rank() == root {
					in = []byte(fmt.Sprintf("payload-from-%d", root))
				}
				out, err := c.Bcast(root, in)
				if err != nil {
					return err
				}
				want := fmt.Sprintf("payload-from-%d", root)
				if string(out) != want {
					return fmt.Errorf("rank %d root %d: got %q want %q", c.Rank(), root, out, want)
				}
			}
			return nil
		})
	})
}

func testGatherAllRoots(t *testing.T, alg GatherAlgorithm) {
	for _, n := range worldSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			w := NewWorld(n, Options{RecvTimeout: 10 * time.Second, Gather: alg})
			t.Cleanup(w.Close)
			err := w.Run(func(c *Comm) error {
				for root := 0; root < n; root++ {
					// Variable-size contributions exercise the gatherv path.
					in := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
					out, err := c.Gather(root, in)
					if err != nil {
						return err
					}
					if c.Rank() != root {
						if out != nil {
							return fmt.Errorf("non-root rank %d got non-nil gather result", c.Rank())
						}
						continue
					}
					for r := 0; r < n; r++ {
						want := bytes.Repeat([]byte{byte(r)}, r+1)
						if !bytes.Equal(out[r], want) {
							return fmt.Errorf("root %d entry %d: got %v want %v", root, r, out[r], want)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGatherFlat(t *testing.T)     { testGatherAllRoots(t, GatherFlat) }
func TestGatherBinomial(t *testing.T) { testGatherAllRoots(t, GatherBinomial) }

func TestScatterAllRoots(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		run(t, n, func(c *Comm) error {
			for root := 0; root < n; root++ {
				var parts [][]byte
				if c.Rank() == root {
					parts = make([][]byte, n)
					for r := range parts {
						parts[r] = []byte(fmt.Sprintf("part-%d-of-%d", r, root))
					}
				}
				got, err := c.Scatter(root, parts)
				if err != nil {
					return err
				}
				want := fmt.Sprintf("part-%d-of-%d", c.Rank(), root)
				if string(got) != want {
					return fmt.Errorf("rank %d root %d: got %q want %q", c.Rank(), root, got, want)
				}
			}
			return nil
		})
	})
}

func TestScatterWrongPartsCount(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Scatter(0, [][]byte{nil}) // only 1 part for 2 ranks
			if !errors.Is(err, ErrSizes) {
				return fmt.Errorf("want ErrSizes, got %v", err)
			}
			// Unblock rank 1, which is waiting in its Scatter, by sending on
			// the same reserved tag it expects.
			return c.send(1, collTag(opScatter, 0), []byte("x"))
		}
		_, err := c.Scatter(0, nil)
		return err
	})
}

func TestAllgather(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		run(t, n, func(c *Comm) error {
			in := []byte(fmt.Sprintf("r%d", c.Rank()))
			out, err := c.Allgather(in)
			if err != nil {
				return err
			}
			if len(out) != n {
				return fmt.Errorf("got %d entries", len(out))
			}
			for r := 0; r < n; r++ {
				if string(out[r]) != fmt.Sprintf("r%d", r) {
					return fmt.Errorf("rank %d entry %d = %q", c.Rank(), r, out[r])
				}
			}
			return nil
		})
	})
}

func TestReduceSum(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		run(t, n, func(c *Comm) error {
			in := Float64sToBytes([]float64{float64(c.Rank()), 1})
			out, err := c.Reduce(0, in, SumFloat64)
			if err != nil {
				return err
			}
			if c.Rank() != 0 {
				if out != nil {
					return errors.New("non-root got reduce result")
				}
				return nil
			}
			v, err := BytesToFloat64s(out)
			if err != nil {
				return err
			}
			wantSum := float64(n*(n-1)) / 2
			if v[0] != wantSum || v[1] != float64(n) {
				return fmt.Errorf("reduce got %v, want [%v %v]", v, wantSum, n)
			}
			return nil
		})
	})
}

func TestAllreduceMinMax(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		run(t, n, func(c *Comm) error {
			in := Int64sToBytes([]int64{int64(c.Rank())})
			mx, err := c.Allreduce(in, MaxInt64)
			if err != nil {
				return err
			}
			mn, err := c.Allreduce(in, MinInt64)
			if err != nil {
				return err
			}
			mxv, _ := BytesToInt64s(mx)
			mnv, _ := BytesToInt64s(mn)
			if mxv[0] != int64(n-1) || mnv[0] != 0 {
				return fmt.Errorf("allreduce max=%d min=%d", mxv[0], mnv[0])
			}
			return nil
		})
	})
}

func TestAlltoall(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		run(t, n, func(c *Comm) error {
			parts := make([][]byte, n)
			for d := range parts {
				parts[d] = []byte(fmt.Sprintf("%d->%d", c.Rank(), d))
			}
			out, err := c.Alltoall(parts)
			if err != nil {
				return err
			}
			for s := 0; s < n; s++ {
				want := fmt.Sprintf("%d->%d", s, c.Rank())
				if string(out[s]) != want {
					return fmt.Errorf("rank %d from %d: got %q want %q", c.Rank(), s, out[s], want)
				}
			}
			return nil
		})
	})
}

func TestScanConcat(t *testing.T) {
	forSizes(t, func(t *testing.T, n int) {
		run(t, n, func(c *Comm) error {
			in := []byte{byte('a' + c.Rank())}
			out, err := c.Scan(in, Concat)
			if err != nil {
				return err
			}
			want := make([]byte, c.Rank()+1)
			for i := range want {
				want[i] = byte('a' + i)
			}
			if !bytes.Equal(out, want) {
				return fmt.Errorf("rank %d scan got %q want %q", c.Rank(), out, want)
			}
			return nil
		})
	})
}

func TestScanSum(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		in := Int64sToBytes([]int64{int64(c.Rank() + 1)})
		out, err := c.Scan(in, SumInt64)
		if err != nil {
			return err
		}
		v, _ := BytesToInt64s(out)
		r := int64(c.Rank() + 1)
		want := r * (r + 1) / 2
		if v[0] != want {
			return fmt.Errorf("rank %d prefix sum %d want %d", c.Rank(), v[0], want)
		}
		return nil
	})
}

func TestBackToBackCollectivesDoNotInterfere(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		// A rapid-fire mixture of collectives; sequence numbering must keep
		// them separated even with no intervening synchronization.
		for i := 0; i < 20; i++ {
			data := []byte{byte(i), byte(c.Rank())}
			got, err := c.Bcast(i%4, data)
			if err != nil {
				return err
			}
			if got[0] != byte(i) || got[1] != byte(i%4) {
				return fmt.Errorf("iter %d: cross-talk %v", i, got)
			}
			if _, err := c.Gather(0, data); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

// Property: for any payload set, Gather(root) followed by Scatter(root)
// returns every rank its own payload (the two are inverses).
func TestGatherScatterInverseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		payloads := make([][]byte, n)
		for r := range payloads {
			payloads[r] = make([]byte, rng.Intn(64))
			rng.Read(payloads[r])
		}
		w := NewWorld(n, Options{RecvTimeout: 10 * time.Second})
		defer w.Close()
		ok := true
		err := w.Run(func(c *Comm) error {
			gathered, err := c.Gather(0, payloads[c.Rank()])
			if err != nil {
				return err
			}
			back, err := c.Scatter(0, gathered)
			if err != nil {
				return err
			}
			if !bytes.Equal(back, payloads[c.Rank()]) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(SumInt64) equals the local sum of all inputs,
// regardless of world size and values.
func TestAllreduceSumProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		vals := make([]int64, n)
		var want int64
		for i := range vals {
			vals[i] = int64(rng.Intn(2001) - 1000)
			want += vals[i]
		}
		w := NewWorld(n, Options{RecvTimeout: 10 * time.Second})
		defer w.Close()
		ok := true
		err := w.Run(func(c *Comm) error {
			out, err := c.Allreduce(Int64sToBytes([]int64{vals[c.Rank()]}), SumInt64)
			if err != nil {
				return err
			}
			v, err := BytesToInt64s(out)
			if err != nil {
				return err
			}
			if v[0] != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := map[int][]byte{}
		for i, n := 0, rng.Intn(10); i < n; i++ {
			b := make([]byte, rng.Intn(50))
			rng.Read(b)
			m[rng.Intn(1000)] = b
		}
		got, err := decodeBundle(encodeBundle(m))
		if err != nil || len(got) != len(m) {
			return false
		}
		for r, b := range m {
			if !bytes.Equal(got[r], b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBundleCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 0, 0},
		{1, 0, 0, 0, 5, 0, 0, 0}, // truncated entry header
		{1, 0, 0, 0, 5, 0, 0, 0, 9, 0, 0, 0, 1, 2}, // payload shorter than length
		{2, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0xff}, // second entry missing
	}
	for i, c := range cases {
		if _, err := decodeBundle(c); err == nil {
			t.Errorf("case %d: corrupt bundle accepted", i)
		}
	}
}

func TestReduceOperandSizeMismatch(t *testing.T) {
	_, err := SumFloat64([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1})
	if !errors.Is(err, ErrSizes) {
		t.Fatalf("want ErrSizes, got %v", err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	prop := func(v []float64) bool {
		got, err := BytesToFloat64s(Float64sToBytes(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			// NaN-safe bitwise comparison.
			if Float64sToBytes(v[i : i+1])[0] != Float64sToBytes(got[i : i+1])[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := BytesToFloat64s([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd-length payload accepted")
	}
}

func TestInt64RoundTrip(t *testing.T) {
	prop := func(v []int64) bool {
		got, err := BytesToInt64s(Int64sToBytes(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := BytesToInt64s([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd-length payload accepted")
	}
}
