package rts

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func testWorld(t *testing.T, n int) *World {
	t.Helper()
	w := NewWorld(n, Options{RecvTimeout: 10 * time.Second})
	t.Cleanup(w.Close)
	return w
}

func run(t *testing.T, n int, fn func(*Comm) error) {
	t.Helper()
	w := testWorld(t, n)
	if err := w.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("world left %d undelivered messages", p)
	}
}

func TestSendRecvBasic(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		d, st, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(d) != "hello" || st.Source != 0 || st.Tag != 7 || st.Len != 5 {
			return fmt.Errorf("got %q status %+v", d, st)
		}
		return nil
	})
}

func TestRecvBeforeSend(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			d, _, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if string(d) != "late" {
				return fmt.Errorf("got %q", d)
			}
			return nil
		}
		time.Sleep(20 * time.Millisecond) // receiver blocks first
		return c.Send(1, 1, []byte("late"))
	})
}

func TestNonOvertaking(t *testing.T) {
	const n = 100
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			d, _, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if d[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d", i, d[0])
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("five")); err != nil {
				return err
			}
			return c.Send(1, 4, []byte("four"))
		}
		// Receive tag 4 first even though tag 5 was sent first.
		d, _, err := c.Recv(0, 4)
		if err != nil {
			return err
		}
		if string(d) != "four" {
			return fmt.Errorf("tag 4 got %q", d)
		}
		d, _, err = c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(d) != "five" {
			return fmt.Errorf("tag 5 got %q", d)
		}
		return nil
	})
}

func TestWildcards(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank(), []byte{byte(c.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			d, st, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(d[0]) != st.Source || st.Tag != st.Source {
				return fmt.Errorf("mismatched status %+v payload %v", st, d)
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw %d distinct sources", len(seen))
		}
		return nil
	})
}

func TestSendCopyAllowsReuse(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("original")
			if err := c.SendCopy(1, 0, buf); err != nil {
				return err
			}
			copy(buf, "CLOBBER!")
			return nil
		}
		d, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if string(d) != "original" {
			return fmt.Errorf("buffer reuse leaked into message: %q", d)
		}
		return nil
	})
}

func TestSendRecvCombined(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		peer := 1 - c.Rank()
		me := []byte{byte(c.Rank())}
		d, _, err := c.SendRecv(peer, 9, me, peer, 9)
		if err != nil {
			return err
		}
		if int(d[0]) != peer {
			return fmt.Errorf("rank %d got %v", c.Rank(), d)
		}
		return nil
	})
}

func TestProbe(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 11, []byte("abc"))
		}
		var st Status
		var ok bool
		for i := 0; i < 1000; i++ {
			if st, ok = c.Probe(0, 11); ok {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if !ok {
			return errors.New("probe never matched")
		}
		if st.Len != 3 || st.Source != 0 || st.Tag != 11 {
			return fmt.Errorf("probe status %+v", st)
		}
		// Probing does not consume.
		if _, ok := c.Probe(0, 11); !ok {
			return errors.New("probe consumed the message")
		}
		d, _, err := c.Recv(0, 11)
		if err != nil {
			return err
		}
		if string(d) != "abc" {
			return fmt.Errorf("recv after probe got %q", d)
		}
		return nil
	})
}

func TestRecvTimeout(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return nil
		}
		_, _, err := c.RecvTimeout(0, 1, 20*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("want ErrTimeout, got %v", err)
		}
		return nil
	})
}

func TestInvalidArguments(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := c.Send(5, 0, nil); !errors.Is(err, ErrRank) {
			return fmt.Errorf("Send bad rank: %v", err)
		}
		if err := c.Send(0, -3, nil); !errors.Is(err, ErrTag) {
			return fmt.Errorf("Send reserved tag: %v", err)
		}
		if _, _, err := c.Recv(9, 0); !errors.Is(err, ErrRank) {
			return fmt.Errorf("Recv bad rank: %v", err)
		}
		if _, _, err := c.Recv(0, -2); !errors.Is(err, ErrTag) {
			return fmt.Errorf("Recv reserved tag: %v", err)
		}
		return nil
	})
}

func TestWorldCloseUnblocksReceivers(t *testing.T) {
	w := NewWorld(2)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := w.Comm(0).Recv(1, 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrWorldClosed) {
			t.Fatalf("want ErrWorldClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver not unblocked by Close")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := NewWorld(3, Options{RecvTimeout: 5 * time.Second})
	defer w.Close()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		_, _, err := c.Recv(1, 0) // would deadlock without Close-on-panic
		return err
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestDupIsolatesContexts(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		d, err := c.Dup()
		if err != nil {
			return err
		}
		if d.Context() == c.Context() {
			return errors.New("Dup did not allocate a new context")
		}
		if c.Rank() == 0 {
			// Same (dst, tag) on both contexts; payload tells them apart.
			if err := c.Send(1, 1, []byte("base")); err != nil {
				return err
			}
			return d.Send(1, 1, []byte("dup"))
		}
		// Receive on the dup context first: it must not see the base message.
		got, _, err := d.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(got) != "dup" {
			return fmt.Errorf("dup context received %q", got)
		}
		got, _, err = c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(got) != "base" {
			return fmt.Errorf("base context received %q", got)
		}
		return nil
	})
}

func TestDupAgreesAcrossRanks(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		d1, err := c.Dup()
		if err != nil {
			return err
		}
		d2, err := d1.Dup()
		if err != nil {
			return err
		}
		// Verify agreement by round-tripping the context ids through rank 0.
		all, err := c.Gather(0, []byte{byte(d1.Context()), byte(d2.Context())})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 1; r < len(all); r++ {
				if !bytes.Equal(all[r], all[0]) {
					return fmt.Errorf("rank %d contexts %v != rank 0 contexts %v", r, all[r], all[0])
				}
			}
		}
		return nil
	})
}

func TestMultipleRunsOnOneWorld(t *testing.T) {
	w := testWorld(t, 3)
	for i := 0; i < 3; i++ {
		if err := w.Run(func(c *Comm) error {
			return c.Barrier()
		}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestCommRankPanicsOutOfRange(t *testing.T) {
	w := testWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Comm(7) did not panic")
		}
	}()
	w.Comm(7)
}
