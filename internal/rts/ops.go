package rts

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file provides typed views over the []byte message payloads: slice
// codecs for the numeric types PARDIS arguments use, and elementwise
// ReduceFuncs built from them.

// Float64sToBytes encodes a []float64 as little-endian IEEE 754 bytes.
func Float64sToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// BytesToFloat64s decodes a payload produced by Float64sToBytes.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("rts: float64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Int64sToBytes encodes a []int64 as little-endian bytes.
func Int64sToBytes(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// BytesToInt64s decodes a payload produced by Int64sToBytes.
func BytesToInt64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("rts: int64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

func float64Elementwise(f func(a, b float64) float64) ReduceFunc {
	return func(a, b []byte) ([]byte, error) {
		if len(a) != len(b) {
			return nil, fmt.Errorf("%w: reduce operands %d vs %d bytes", ErrSizes, len(a), len(b))
		}
		av, err := BytesToFloat64s(a)
		if err != nil {
			return nil, err
		}
		bv, err := BytesToFloat64s(b)
		if err != nil {
			return nil, err
		}
		for i := range av {
			av[i] = f(av[i], bv[i])
		}
		return Float64sToBytes(av), nil
	}
}

func int64Elementwise(f func(a, b int64) int64) ReduceFunc {
	return func(a, b []byte) ([]byte, error) {
		if len(a) != len(b) {
			return nil, fmt.Errorf("%w: reduce operands %d vs %d bytes", ErrSizes, len(a), len(b))
		}
		av, err := BytesToInt64s(a)
		if err != nil {
			return nil, err
		}
		bv, err := BytesToInt64s(b)
		if err != nil {
			return nil, err
		}
		for i := range av {
			av[i] = f(av[i], bv[i])
		}
		return Int64sToBytes(av), nil
	}
}

// Prebuilt elementwise reduction operators over float64 and int64 vectors.
var (
	SumFloat64 = float64Elementwise(func(a, b float64) float64 { return a + b })
	MaxFloat64 = float64Elementwise(math.Max)
	MinFloat64 = float64Elementwise(math.Min)
	SumInt64   = int64Elementwise(func(a, b int64) int64 { return a + b })
	MaxInt64   = int64Elementwise(func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	MinInt64 = int64Elementwise(func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
	// Concat appends b to a; with Scan it yields rank-ordered prefixes.
	Concat ReduceFunc = func(a, b []byte) ([]byte, error) {
		out := make([]byte, 0, len(a)+len(b))
		return append(append(out, a...), b...), nil
	}
)
