package rts

import (
	"sync"
	"time"
)

// message is a single point-to-point message in flight.
type message struct {
	ctx  int // communication context (see Comm.Dup)
	src  int
	tag  int
	data []byte
}

// mailbox holds the messages destined for one rank. Receives match on
// (ctx, src, tag) with wildcard support; among messages matching a receive,
// delivery order equals send order (MPI non-overtaking rule), because the
// queue is scanned front to back and senders append under the same lock.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrWorldClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	return nil
}

// match reports whether msg satisfies a receive for (ctx, src, tag).
func match(m message, ctx, src, tag int) bool {
	if m.ctx != ctx {
		return false
	}
	if src != AnySource && m.src != src {
		return false
	}
	if tag != AnyTag && m.tag != tag {
		return false
	}
	return true
}

// take removes and returns the first message matching (ctx, src, tag),
// blocking until one is available or the mailbox is closed.
func (mb *mailbox) take(ctx, src, tag int) (message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i := range mb.queue {
			if match(mb.queue[i], ctx, src, tag) {
				m := mb.queue[i]
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m, nil
			}
		}
		if mb.closed {
			return message{}, ErrWorldClosed
		}
		mb.cond.Wait()
	}
}

// takeTimeout is take with a deadline; it returns ErrTimeout if no matching
// message arrives within d. A non-positive d means block indefinitely.
func (mb *mailbox) takeTimeout(ctx, src, tag int, d time.Duration) (message, error) {
	if d <= 0 {
		return mb.take(ctx, src, tag)
	}
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	})
	defer timer.Stop()

	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i := range mb.queue {
			if match(mb.queue[i], ctx, src, tag) {
				m := mb.queue[i]
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m, nil
			}
		}
		if mb.closed {
			return message{}, ErrWorldClosed
		}
		if !time.Now().Before(deadline) {
			return message{}, ErrTimeout
		}
		mb.cond.Wait()
	}
}

// probe reports whether a matching message is queued, without removing it.
// It never blocks.
func (mb *mailbox) probe(ctx, src, tag int) (Status, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i := range mb.queue {
		if match(mb.queue[i], ctx, src, tag) {
			return Status{Source: mb.queue[i].src, Tag: mb.queue[i].tag, Len: len(mb.queue[i].data)}, true
		}
	}
	return Status{}, false
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// pending returns the number of queued messages; used by tests and by
// World.Close leak checks.
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}
