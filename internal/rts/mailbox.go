package rts

import (
	"sync"
	"sync/atomic"
	"time"
)

// message is a single point-to-point message in flight.
type message struct {
	ctx  int // communication context (see Comm.Dup)
	src  int
	tag  int
	data []byte
}

// mailbox holds the messages destined for one rank. Receives match on
// (ctx, src, tag) with wildcard support; among messages matching a receive,
// delivery order equals send order (MPI non-overtaking rule), because the
// queue is scanned front to back and senders append under the same lock.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

// bcastTimer is a reusable takeTimeout deadline timer. The target mailbox is
// retargeted on every reuse; the timer func broadcasts whichever mailbox is
// current when it fires. A stale fire after a retarget is just a spurious
// wakeup for the new target, so Reset/Stop racing the func is benign.
type bcastTimer struct {
	t  *time.Timer
	mb atomic.Pointer[mailbox]
}

// timerPool is shared by all mailboxes of all worlds: pooling globally
// instead of per mailbox keeps the number of sync.Pool instances — each of
// which pins per-P slots on first use — independent of world size.
var timerPool sync.Pool

func armTimer(mb *mailbox, d time.Duration) *bcastTimer {
	if bt, ok := timerPool.Get().(*bcastTimer); ok {
		bt.mb.Store(mb)
		bt.t.Reset(d)
		return bt
	}
	bt := &bcastTimer{}
	bt.mb.Store(mb)
	bt.t = time.AfterFunc(d, func() {
		if target := bt.mb.Load(); target != nil {
			target.mu.Lock()
			target.cond.Broadcast()
			target.mu.Unlock()
		}
	})
	return bt
}

func (bt *bcastTimer) release() {
	if bt == nil {
		return
	}
	bt.t.Stop()
	bt.mb.Store(nil)
	timerPool.Put(bt)
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrWorldClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	return nil
}

// match reports whether msg satisfies a receive for (ctx, src, tag).
func match(m message, ctx, src, tag int) bool {
	if m.ctx != ctx {
		return false
	}
	if src != AnySource && m.src != src {
		return false
	}
	if tag != AnyTag && m.tag != tag {
		return false
	}
	return true
}

// take removes and returns the first message matching (ctx, src, tag),
// blocking until one is available or the mailbox is closed.
func (mb *mailbox) take(ctx, src, tag int) (message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i := range mb.queue {
			if match(mb.queue[i], ctx, src, tag) {
				m := mb.queue[i]
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m, nil
			}
		}
		if mb.closed {
			return message{}, ErrWorldClosed
		}
		mb.cond.Wait()
	}
}

// takeTimeout is take with a deadline; it returns ErrTimeout if no matching
// message arrives within d. A non-positive d means block indefinitely.
func (mb *mailbox) takeTimeout(ctx, src, tag int, d time.Duration) (message, error) {
	if d <= 0 {
		return mb.take(ctx, src, tag)
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var deadline time.Time
	var timer *bcastTimer
	for {
		for i := range mb.queue {
			if match(mb.queue[i], ctx, src, tag) {
				m := mb.queue[i]
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				timer.release()
				return m, nil
			}
		}
		if mb.closed {
			timer.release()
			return message{}, ErrWorldClosed
		}
		if timer == nil {
			// Arm the deadline only when the receive actually has to wait:
			// a receive satisfied straight from the queue never touches a
			// timer, and waiters reuse pooled ones.
			deadline = time.Now().Add(d)
			timer = armTimer(mb, d)
		} else if !time.Now().Before(deadline) {
			timer.release()
			return message{}, ErrTimeout
		}
		mb.cond.Wait()
	}
}

// probe reports whether a matching message is queued, without removing it.
// It never blocks.
func (mb *mailbox) probe(ctx, src, tag int) (Status, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i := range mb.queue {
		if match(mb.queue[i], ctx, src, tag) {
			return Status{Source: mb.queue[i].src, Tag: mb.queue[i].tag, Len: len(mb.queue[i].data)}, true
		}
	}
	return Status{}, false
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// pending returns the number of queued messages; used by tests and by
// World.Close leak checks.
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}
