package rts

import (
	"bytes"
	"fmt"
	"testing"
)

func TestWindowPutGet(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		local := make([]byte, 16)
		win, err := c.CreateWindow(local)
		if err != nil {
			return err
		}
		// Every rank puts its rank id into the next rank's region.
		next := (c.Rank() + 1) % c.Size()
		if err := win.Put(next, 0, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		if local[0] != byte(prev) {
			return fmt.Errorf("rank %d region has %d, want %d", c.Rank(), local[0], prev)
		}
		// Read it back remotely too.
		got := make([]byte, 1)
		if err := win.Get(next, 0, got); err != nil {
			return err
		}
		if got[0] != byte(c.Rank()) {
			return fmt.Errorf("remote get saw %d, want %d", got[0], c.Rank())
		}
		return win.Fence()
	})
}

func TestWindowAccumulate(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		local := Int64sToBytes([]int64{0})
		win, err := c.CreateWindow(local)
		if err != nil {
			return err
		}
		// All ranks accumulate their (rank+1) into rank 0's counter.
		if err := win.Accumulate(0, 0, Int64sToBytes([]int64{int64(c.Rank() + 1)}), SumInt64); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			v, err := BytesToInt64s(win.Local())
			if err != nil {
				return err
			}
			if v[0] != 15 { // 1+2+3+4+5
				return fmt.Errorf("accumulated %d, want 15", v[0])
			}
		}
		return nil
	})
}

func TestWindowBounds(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		defer win.Fence()
		if err := win.Put(0, 6, []byte{1, 2, 3}); err == nil {
			return fmt.Errorf("out-of-bounds Put accepted")
		}
		if err := win.Get(1, -1, make([]byte, 1)); err == nil {
			return fmt.Errorf("negative-offset Get accepted")
		}
		if err := win.Put(9, 0, nil); err == nil {
			return fmt.Errorf("bad-rank Put accepted")
		}
		return nil
	})
}

func TestWindowSharedVisibility(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		local := make([]byte, 4)
		win, err := c.CreateWindow(local)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.Put(1, 0, []byte("ping")); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if c.Rank() == 1 && !bytes.Equal(local, []byte("ping")) {
			return fmt.Errorf("rank 1 sees %q", local)
		}
		return nil
	})
}

func TestTwoWindowsIndependent(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		a, err := c.CreateWindow([]byte{0xAA})
		if err != nil {
			return err
		}
		b, err := c.CreateWindow([]byte{0xBB})
		if err != nil {
			return err
		}
		got := make([]byte, 1)
		if err := a.Get(1-c.Rank(), 0, got); err != nil {
			return err
		}
		if got[0] != 0xAA {
			return fmt.Errorf("window a returned %x", got[0])
		}
		if err := b.Get(1-c.Rank(), 0, got); err != nil {
			return err
		}
		if got[0] != 0xBB {
			return fmt.Errorf("window b returned %x", got[0])
		}
		if err := a.Fence(); err != nil {
			return err
		}
		return b.Fence()
	})
}
