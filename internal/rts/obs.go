package rts

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Collective timers. They stay nil — and the probes cost one atomic load
// plus a nil check — until EnableMetrics installs them, so barriers and
// broadcasts only pay for clock reads when metrics are on. The pointers are
// atomic so EnableMetrics may race with in-flight collectives.
var (
	barrierNS atomic.Pointer[obs.Histogram]
	bcastNS   atomic.Pointer[obs.Histogram]
)

// EnableMetrics publishes the collective timers ("rts.barrier_ns",
// "rts.bcast_ns") to reg. Passing nil disables them again.
func EnableMetrics(reg *obs.Registry) {
	barrierNS.Store(reg.Histogram("rts.barrier_ns"))
	bcastNS.Store(reg.Histogram("rts.bcast_ns"))
}
