package rts

import (
	"fmt"
	"sync"
)

// Window is the one-sided run-time system interface the paper lists as
// future work ("an alternative run-time system interface capturing the
// functionality of the more flexible one-sided run-time systems"). A window
// exposes a region of every rank's memory for remote Get/Put/Accumulate
// without the target's active participation, bracketed by Fence epochs.
//
// Creation and Fence are collective; Get/Put/Accumulate may target any rank
// between fences. Concurrent accesses to the same target are serialized by a
// per-target lock, mirroring MPI passive-target semantics closely enough for
// the PARDIS mapping experiments.
type Window struct {
	comm    *Comm
	shared  *windowShared
	local   []byte
	rank    int
	created bool
}

type windowShared struct {
	regions []windowRegion
}

type windowRegion struct {
	mu  sync.Mutex
	buf []byte
}

// windowRegistry coordinates the collective exchange of window state through
// an allgather of region identities. Since all ranks share one process, the
// registry simply ships pointers via the existing collective machinery.
var windowRegistry sync.Map // key: registryKey → *windowShared

type registryKey struct {
	world *World
	ctx   int
	seq   int
}

// CreateWindow collectively exposes local as this rank's region of a new
// window. Every rank must call it with its own (possibly differently sized)
// buffer. The buffer is shared, not copied: remote Puts become visible to
// the local rank directly, as with true one-sided hardware.
func (c *Comm) CreateWindow(local []byte) (*Window, error) {
	tag := collTag(opFence, c.nextSeq())
	// Rank 0 allocates the shared structure and publishes its identity;
	// everyone then installs their region and synchronizes.
	var key registryKey
	if c.rank == 0 {
		key = registryKey{world: c.world, ctx: c.ctx, seq: tag}
		shared := &windowShared{regions: make([]windowRegion, c.world.size)}
		windowRegistry.Store(key, shared)
	}
	if _, err := c.Bcast(0, nil); err != nil {
		return nil, err
	}
	key = registryKey{world: c.world, ctx: c.ctx, seq: tag}
	v, ok := windowRegistry.Load(key)
	if !ok {
		return nil, fmt.Errorf("rts: window registry desynchronized (ctx %d)", c.ctx)
	}
	shared := v.(*windowShared)
	shared.regions[c.rank].buf = local
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	if c.rank == 0 {
		windowRegistry.Delete(key)
	}
	return &Window{comm: c, shared: shared, local: local, rank: c.rank, created: true}, nil
}

func (w *Window) region(rank int) (*windowRegion, error) {
	if rank < 0 || rank >= len(w.shared.regions) {
		return nil, fmt.Errorf("%w: window target %d", ErrRank, rank)
	}
	return &w.shared.regions[rank], nil
}

// Get copies len(dst) bytes starting at off from rank's region into dst.
func (w *Window) Get(rank, off int, dst []byte) error {
	r, err := w.region(rank)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+len(dst) > len(r.buf) {
		return fmt.Errorf("rts: window Get [%d,%d) outside region of %d bytes on rank %d", off, off+len(dst), len(r.buf), rank)
	}
	copy(dst, r.buf[off:])
	return nil
}

// Put copies src into rank's region starting at off.
func (w *Window) Put(rank, off int, src []byte) error {
	r, err := w.region(rank)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+len(src) > len(r.buf) {
		return fmt.Errorf("rts: window Put [%d,%d) outside region of %d bytes on rank %d", off, off+len(src), len(r.buf), rank)
	}
	copy(r.buf[off:], src)
	return nil
}

// Accumulate applies op to rank's region at off with src as the right
// operand, storing the result in place: region = op(region, src). The
// element interpretation is the op's concern, as in the message-passing
// interface.
func (w *Window) Accumulate(rank, off int, src []byte, op ReduceFunc) error {
	r, err := w.region(rank)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+len(src) > len(r.buf) {
		return fmt.Errorf("rts: window Accumulate [%d,%d) outside region of %d bytes on rank %d", off, off+len(src), len(r.buf), rank)
	}
	cur := make([]byte, len(src))
	copy(cur, r.buf[off:off+len(src)])
	res, err := op(cur, src)
	if err != nil {
		return err
	}
	if len(res) != len(src) {
		return fmt.Errorf("%w: accumulate op changed length %d → %d", ErrSizes, len(src), len(res))
	}
	copy(r.buf[off:], res)
	return nil
}

// Fence collectively closes the current access epoch: after Fence returns,
// all Get/Put/Accumulate calls issued by any rank before its Fence are
// complete and visible everywhere.
func (w *Window) Fence() error {
	return w.comm.Barrier()
}

// Local returns this rank's own region.
func (w *Window) Local() []byte { return w.local }
