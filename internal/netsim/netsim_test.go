package netsim

import (
	"math"
	"testing"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestDelayAdvancesClock(t *testing.T) {
	s := NewSim()
	var at float64
	s.Spawn("p", nil, func(p *Proc) {
		p.Delay(1.5)
		at = p.Sim().Now()
		p.Delay(0.5)
	})
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(at, 1.5) || !almost(end, 2.0) {
		t.Fatalf("at=%v end=%v", at, end)
	}
}

func TestEventsFireInOrder(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 11) }) // same time: insertion order
	s.At(3, func() { order = append(order, 3) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := NewSim()
	s.Spawn("p", nil, func(p *Proc) { p.Delay(-5) })
	end, err := s.Run()
	if err != nil || end != 0 {
		t.Fatalf("end=%v err=%v", end, err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := NewSim()
	q := s.NewQueue(0)
	s.Spawn("starved", nil, func(p *Proc) { q.Get(p) })
	if _, err := s.Run(); err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestPanicPropagates(t *testing.T) {
	s := NewSim()
	s.Spawn("bad", nil, func(p *Proc) { panic("kaput") })
	if _, err := s.Run(); err == nil {
		t.Fatal("panic not reported")
	}
}

func TestComputeContention(t *testing.T) {
	// Two threads computing 1s each on a 1-CPU machine take ~2s; on a
	// 2-CPU machine, ~1s.
	for _, tc := range []struct {
		cpus int
		want float64
	}{{1, 2.0}, {2, 1.0}} {
		s := NewSim()
		m := &Machine{Name: "m", CPUs: tc.cpus}
		for i := 0; i < 2; i++ {
			s.Spawn("w", m, func(p *Proc) { p.Compute(1) })
		}
		end, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if end != tc.want {
			t.Fatalf("cpus=%d end=%v want %v", tc.cpus, end, tc.want)
		}
	}
}

func TestPackUnpackRates(t *testing.T) {
	s := NewSim()
	m := &Machine{Name: "m", CPUs: 4, PackRate: 100, UnpackRate: 50}
	s.Spawn("p", m, func(p *Proc) {
		p.Pack(200)   // 2s
		p.Unpack(100) // 2s
	})
	end, err := s.Run()
	if err != nil || !almost(end, 4) {
		t.Fatalf("end=%v err=%v", end, err)
	}
}

func TestMemCopy(t *testing.T) {
	s := NewSim()
	m := &Machine{Name: "m", CPUs: 4, MemRate: 1000, MemLatency: 0.25}
	s.Spawn("p", m, func(p *Proc) {
		p.MemCopy(500) // 0.25 + 0.5
	})
	end, err := s.Run()
	if err != nil || !almost(end, 0.75) {
		t.Fatalf("end=%v err=%v", end, err)
	}
}

func TestSyscallDelayGrowsWithThreads(t *testing.T) {
	m := &Machine{CPUs: 4, SyscallBase: 0.001, DescheduleCost: 0.002}
	m.threads = 1
	d1 := m.SyscallDelay()
	m.threads = 8
	d8 := m.SyscallDelay()
	if !almost(d1, 0.001) {
		t.Fatalf("d1 = %v", d1)
	}
	if !almost(d8, 0.001+7*0.002) {
		t.Fatalf("d8 = %v", d8)
	}
	if d8 <= d1 {
		t.Fatal("scheduler interference does not grow with threads")
	}
}

func TestLinkSerializesFIFO(t *testing.T) {
	// Two senders of 100 bytes each over a 100 B/s link: first finishes at
	// 1s, second at 2s; both deliveries offset by latency 0.1.
	s := NewSim()
	var doneA, doneB, arriveA, arriveB float64
	s.NewQueue(0) // unused; keep API covered
	l := &Link{Bandwidth: 100, Latency: 0.1}
	s.Spawn("a", nil, func(p *Proc) {
		p.Transmit(l, ClientToServer, 100, func() { arriveA = s.Now() })
		doneA = s.Now()
	})
	s.Spawn("b", nil, func(p *Proc) {
		p.Transmit(l, ClientToServer, 100, func() { arriveB = s.Now() })
		doneB = s.Now()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(doneA, doneB), math.Max(doneA, doneB)
	if !almost(lo, 1) || !almost(hi, 2) {
		t.Fatalf("senders done at %v and %v", doneA, doneB)
	}
	alo, ahi := math.Min(arriveA, arriveB), math.Max(arriveA, arriveB)
	if !almost(alo, 1.1) || !almost(ahi, 2.1) {
		t.Fatalf("arrivals at %v and %v", arriveA, arriveB)
	}
	if l.BytesSent(ClientToServer) != 200 {
		t.Fatalf("bytes sent %v", l.BytesSent(ClientToServer))
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	s := NewSim()
	l := &Link{Bandwidth: 100}
	var d1, d2 float64
	s.Spawn("fwd", nil, func(p *Proc) {
		p.Transmit(l, ClientToServer, 100, nil)
		d1 = s.Now()
	})
	s.Spawn("rev", nil, func(p *Proc) {
		p.Transmit(l, ServerToClient, 100, nil)
		d2 = s.Now()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(d1, 1) || !almost(d2, 1) {
		t.Fatalf("full duplex broken: %v %v", d1, d2)
	}
}

func TestChunkedSendersInterleave(t *testing.T) {
	// The §3.3 mechanism: two chunked senders share the link and finish at
	// nearly the same time, whereas a monolithic pair would finish 1s apart.
	s := NewSim()
	l := &Link{Bandwidth: 1000}
	var done [2]float64
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("sender", nil, func(p *Proc) {
			for c := 0; c < 10; c++ {
				p.Transmit(l, ClientToServer, 100, nil)
			}
			done[i] = s.Now()
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	gap := math.Abs(done[0] - done[1])
	if gap > 0.11 {
		t.Fatalf("chunked senders finished %v apart", gap)
	}
}

func TestQueueBlocksAndWindows(t *testing.T) {
	s := NewSim()
	q := s.NewQueue(2)
	var produced, consumed []float64
	s.Spawn("producer", nil, func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Put(p, i)
			produced = append(produced, s.Now())
		}
	})
	s.Spawn("consumer", nil, func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Delay(1)
			v := q.Get(p)
			if v.(int) != i {
				t.Errorf("got %v want %d", v, i)
			}
			consumed = append(consumed, s.Now())
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The window of 2 forces the producer to wait for consumption: items 2
	// and 3 cannot be enqueued before times 1 and 2.
	if produced[2] < 1 || produced[3] < 2 {
		t.Fatalf("window not enforced: %v", produced)
	}
}

func TestTryGetAndPutAsync(t *testing.T) {
	s := NewSim()
	q := s.NewQueue(0)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	got := make(chan int, 1)
	s.Spawn("g", nil, func(p *Proc) {
		got <- q.Get(p).(int)
	})
	s.At(1, func() { q.PutAsync(42) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 42 {
		t.Fatalf("got %d", v)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	s := NewSim()
	b := s.NewBarrier(3)
	var times []float64
	for i := 0; i < 3; i++ {
		d := float64(i)
		s.Spawn("w", nil, func(p *Proc) {
			p.Delay(d)
			b.Wait(p)
			times = append(times, s.Now())
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tm := range times {
		if !almost(tm, 2) {
			t.Fatalf("barrier released at %v", times)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	s := NewSim()
	wg := s.NewWaitGroup(2)
	var woke float64
	s.Spawn("waiter", nil, func(p *Proc) {
		wg.Wait(p)
		woke = s.Now()
	})
	s.At(1, func() { wg.Done() })
	s.At(3, func() { wg.Done() })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(woke, 3) {
		t.Fatalf("woke at %v", woke)
	}
	// Wait on a finished group returns immediately.
	s2 := NewSim()
	wg2 := s2.NewWaitGroup(0)
	s2.Spawn("w", nil, func(p *Proc) { wg2.Wait(p) })
	if _, err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		s := NewSim()
		m1 := &Machine{Name: "c", CPUs: 2, PackRate: 1e6, SyscallBase: 1e-4, DescheduleCost: 1e-4}
		m2 := &Machine{Name: "s", CPUs: 2, UnpackRate: 1e6}
		l := &Link{Bandwidth: 1e6, Latency: 1e-3}
		q := s.NewQueue(4)
		for i := 0; i < 3; i++ {
			s.Spawn("sender", m1, func(p *Proc) {
				for c := 0; c < 5; c++ {
					p.Pack(1000)
					p.Delay(p.Machine().SyscallDelay())
					p.Transmit(l, ClientToServer, 1000, func() { q.PutAsync(1000) })
				}
			})
		}
		s.Spawn("recv", m2, func(p *Proc) {
			for c := 0; c < 15; c++ {
				q.Get(p)
				p.Unpack(1000)
			}
		})
		end, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("trivial run: %v", a)
	}
}
