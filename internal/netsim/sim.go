// Package netsim is a deterministic discrete-event simulator of the paper's
// experimental platform: SPMD computing threads running on multiprocessor
// machines joined by a shared network link.
//
// The paper's measurements (Tables 1 and 2, Figure 4) were taken on a 4-CPU
// SGI Onyx client and a 10-CPU SGI Power Challenge server over a dedicated
// ATM link. Reproducing the *shape* of those results requires reproducing
// the mechanisms the paper identifies, not just end-to-end formulas:
//
//   - marshalling and memory-copy costs proportional to data volume,
//     parallelized across threads in the multi-port method;
//   - a single shared link whose capacity is serialized chunk by chunk, so
//     concurrent transfers interleave rather than queue whole messages
//     (§3.3's observation that "data transfer from two separate computing
//     threads of the client did not happen sequentially, but was
//     interleaved");
//   - operating-system scheduler interference: a thread that issues a
//     network operation is descheduled, and the more threads share the
//     machine the longer it waits to run again (§3.2's explanation for send
//     time growing with thread count);
//   - synchronous large sends: a sender cannot run ahead of its receiver by
//     more than a small window (the paper notes sends "are in practice
//     synchronous operations" under NexusLite).
//
// The engine is a conventional event-driven coroutine simulator: processes
// are goroutines that the single driver resumes one at a time, so all
// simulation state is data-race free and runs are bit-for-bit reproducible.
package netsim

import (
	"container/heap"
	"fmt"
)

// Sim is a discrete-event simulation. Create with NewSim, populate with
// Spawn, then Run.
type Sim struct {
	now    float64 // seconds
	events eventHeap
	seq    uint64
	yield  chan struct{}
	nProcs int
	err    error
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (s *Sim) push(at float64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t float64, fn func()) { s.push(t, fn) }

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.push(s.now+d, fn) }

// Proc is one simulated thread of control.
type Proc struct {
	sim     *Sim
	name    string
	machine *Machine
	resume  chan struct{}
	done    bool
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Machine returns the machine the process runs on.
func (p *Proc) Machine() *Machine { return p.machine }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Spawn creates a process on machine m executing fn, starting at the
// current virtual time.
func (s *Sim) Spawn(name string, m *Machine, fn func(*Proc)) *Proc {
	p := &Proc{sim: s, name: name, machine: m, resume: make(chan struct{})}
	s.nProcs++
	if m != nil {
		m.threads++
	}
	s.push(s.now, func() {
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					p.sim.err = fmt.Errorf("netsim: process %s panicked: %v", p.name, r)
				}
				p.done = true
				p.sim.nProcs--
				if p.machine != nil {
					p.machine.threads--
				}
				p.sim.yield <- struct{}{}
			}()
			fn(p)
		}()
		p.transfer()
	})
	return p
}

// transfer hands control to p and waits for it to block or finish.
// Driver-side only.
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.sim.yield
}

// block suspends the calling process until someone wakes it. Process-side
// only.
func (p *Proc) block() {
	p.sim.yield <- struct{}{}
	<-p.resume
}

// wake schedules p to resume at absolute time t. May be called from the
// driver or from another process (both run under the single-activity
// discipline, so no locking is needed).
func (p *Proc) wakeAt(t float64) {
	p.sim.push(t, func() { p.transfer() })
}

// Delay suspends the process for d virtual seconds.
func (p *Proc) Delay(d float64) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(p.sim.now + d)
	p.block()
}

// Run drives the simulation until no events remain, and reports the final
// virtual time. It fails if processes remain blocked with no pending events
// (deadlock) or if a process panicked.
func (s *Sim) Run() (float64, error) {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(event)
		s.now = ev.at
		ev.fn()
		if s.err != nil {
			return s.now, s.err
		}
	}
	if s.nProcs > 0 {
		return s.now, fmt.Errorf("netsim: deadlock: %d processes blocked with no pending events", s.nProcs)
	}
	return s.now, nil
}
