package netsim

import "fmt"

// Machine models one multiprocessor host: a fixed number of CPUs shared by
// its threads, characteristic memory and marshalling bandwidths, and the
// scheduler-interference behaviour the paper observed on IRIX.
type Machine struct {
	Name string
	// CPUs is the number of processors.
	CPUs int
	// PackRate is per-thread marshalling throughput, bytes/second.
	PackRate float64
	// UnpackRate is per-thread unmarshalling throughput, bytes/second.
	UnpackRate float64
	// MemRate is the intra-machine copy bandwidth used by the run-time
	// system's gather/scatter (the paper ran MPICH over shared memory).
	MemRate float64
	// MemLatency is the per-message latency of an intra-machine RTS
	// message.
	MemLatency float64
	// SyscallBase is the fixed cost of entering the kernel for a network
	// operation.
	SyscallBase float64
	// DescheduleCost models the paper's scheduler interference: a thread
	// issuing a system call is descheduled, and the expected delay before
	// it runs again grows with the number of threads competing for the
	// machine ("increasing the number of computing threads decreases the
	// probability that a particular thread will be scheduled at any
	// time"). The penalty charged per network operation is
	// DescheduleCost * max(0, threads-CPUs... see SyscallDelay.
	DescheduleCost float64

	threads   int // spawned processes
	computing int // processes currently inside Compute
}

// Threads returns the number of live processes on the machine.
func (m *Machine) Threads() int { return m.threads }

// SyscallDelay returns the scheduler cost of one network operation for the
// current machine population: the base kernel entry plus a descheduling
// penalty that grows linearly with the number of threads beyond the first.
func (m *Machine) SyscallDelay() float64 {
	extra := float64(m.threads - 1)
	if extra < 0 {
		extra = 0
	}
	return m.SyscallBase + m.DescheduleCost*extra
}

// Compute occupies the CPU for cpuSeconds of work, stretched by the
// processor-sharing factor when more threads compute than CPUs exist
// (the paper oversubscribes the 4-CPU Onyx with up to 8 client threads).
func (p *Proc) Compute(cpuSeconds float64) {
	if cpuSeconds <= 0 {
		return
	}
	m := p.machine
	if m == nil {
		p.Delay(cpuSeconds)
		return
	}
	m.computing++
	factor := 1.0
	if m.CPUs > 0 && m.computing > m.CPUs {
		factor = float64(m.computing) / float64(m.CPUs)
	}
	p.Delay(cpuSeconds * factor)
	m.computing--
}

// Pack charges the marshalling cost of n bytes.
func (p *Proc) Pack(bytes int) {
	if p.machine != nil && p.machine.PackRate > 0 {
		p.Compute(float64(bytes) / p.machine.PackRate)
	}
}

// Unpack charges the unmarshalling cost of n bytes.
func (p *Proc) Unpack(bytes int) {
	if p.machine != nil && p.machine.UnpackRate > 0 {
		p.Compute(float64(bytes) / p.machine.UnpackRate)
	}
}

// MemCopy charges an intra-machine RTS message of n bytes (one leg of a
// gather or scatter).
func (p *Proc) MemCopy(bytes int) {
	if p.machine == nil {
		return
	}
	d := p.machine.MemLatency
	if p.machine.MemRate > 0 {
		d += float64(bytes) / p.machine.MemRate
	}
	p.Delay(d)
}

// Link is a full-duplex shared network link. Each direction serializes
// transmissions FIFO at Bandwidth; chunked senders therefore interleave
// fairly, which is the mechanism behind the paper's multi-port observations.
type Link struct {
	Name      string
	Bandwidth float64 // bytes/second per direction
	Latency   float64 // propagation delay, seconds
	// PerMessage is the fixed protocol cost charged per transmission.
	PerMessage float64

	busyUntil [2]float64 // per direction
	// Busy accounting for utilization reports.
	bytesSent [2]float64
}

// Direction selects a link direction.
type Direction int

const (
	ClientToServer Direction = iota
	ServerToClient
)

// Transmit sends n bytes in the given direction: the caller waits for the
// link to serialize its transmission (FIFO after whatever is already
// queued) and regains control when the last byte has been put on the wire;
// arrival at the far end happens Latency later, when the simulator runs
// deliver (which may be nil).
func (p *Proc) Transmit(l *Link, dir Direction, n int, deliver func()) {
	s := p.sim
	start := s.now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	txTime := l.PerMessage
	if l.Bandwidth > 0 {
		txTime += float64(n) / l.Bandwidth
	}
	end := start + txTime
	l.busyUntil[dir] = end
	l.bytesSent[dir] += float64(n)
	if deliver != nil {
		s.At(end+l.Latency, deliver)
	}
	p.wakeAt(end)
	p.block()
}

// BytesSent reports the bytes carried in one direction so far.
func (l *Link) BytesSent(dir Direction) float64 { return l.bytesSent[dir] }

// Queue is a bounded FIFO between simulated processes: Put blocks while the
// queue is full, Get while it is empty. With capacity W it models the
// bounded send window that makes large sends effectively synchronous.
type Queue struct {
	sim   *Sim
	cap   int
	items []any
	// Waiters, in arrival order.
	getters []*Proc
	putters []*Proc
}

// NewQueue creates a queue with the given capacity (0 means unbounded).
func (s *Sim) NewQueue(capacity int) *Queue {
	return &Queue{sim: s, cap: capacity}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends v, blocking while the queue is at capacity.
func (q *Queue) Put(p *Proc, v any) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.putters = append(q.putters, p)
		p.block()
	}
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wakeAt(q.sim.now)
	}
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wakeAt(q.sim.now)
	}
	return v
}

// TryGet removes the head item if one is present.
func (q *Queue) TryGet() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wakeAt(q.sim.now)
	}
	return v, true
}

// PutAsync appends v from driver context (an event callback, not a
// process); it must only be used on unbounded queues.
func (q *Queue) PutAsync(v any) {
	if q.cap > 0 && len(q.items) >= q.cap {
		panic(fmt.Sprintf("netsim: PutAsync on full bounded queue (cap %d)", q.cap))
	}
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wakeAt(q.sim.now)
	}
}

// Barrier synchronizes n processes: the n-th arrival releases everyone.
type Barrier struct {
	sim     *Sim
	n       int
	waiting []*Proc
}

// NewBarrier creates a barrier for n processes.
func (s *Sim) NewBarrier(n int) *Barrier { return &Barrier{sim: s, n: n} }

// Wait blocks until n processes have arrived.
func (b *Barrier) Wait(p *Proc) {
	if len(b.waiting)+1 == b.n {
		for _, w := range b.waiting {
			w.wakeAt(b.sim.now)
		}
		b.waiting = b.waiting[:0]
		return
	}
	b.waiting = append(b.waiting, p)
	p.block()
}

// WaitGroup lets a process wait for a set of processes to finish a phase.
type WaitGroup struct {
	sim     *Sim
	count   int
	waiters []*Proc
}

// NewWaitGroup creates a wait group with an initial count.
func (s *Sim) NewWaitGroup(n int) *WaitGroup { return &WaitGroup{sim: s, count: n} }

// Done decrements the count, releasing waiters at zero. Driver- or
// process-context safe.
func (w *WaitGroup) Done() {
	w.count--
	if w.count == 0 {
		for _, p := range w.waiters {
			p.wakeAt(w.sim.now)
		}
		w.waiters = nil
	}
}

// Wait blocks until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count <= 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.block()
}
